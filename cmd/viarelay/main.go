// Command viarelay runs one managed-overlay relay node: a UDP forwarder
// that registers itself with the controller and forwards media frames along
// their source routes (bounce and transit paths, §3.1).
//
// Usage:
//
//	viarelay -id 3 -addr :9003 -controller http://ctrl:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/controller"
	"repro/internal/netsim"
	"repro/internal/relay"
)

func main() {
	id := flag.Int("id", 0, "relay id")
	addr := flag.String("addr", "127.0.0.1:0", "UDP listen address")
	ctrl := flag.String("controller", "", "controller base URL (optional)")
	advertise := flag.String("advertise", "", "address to register with the controller (default: bound address)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "re-registration interval (liveness)")
	flag.Parse()

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	node := relay.New(netsim.RelayID(*id), conn)
	fmt.Printf("relay %d forwarding on %s\n", *id, node.Addr())

	if *ctrl != "" {
		reg := *advertise
		if reg == "" {
			reg = node.Addr().String()
		}
		cc := controller.NewClient(*ctrl)
		if err := cc.RegisterRelay(netsim.RelayID(*id), reg); err != nil {
			log.Fatalf("register: %v", err)
		}
		fmt.Printf("registered with controller %s as %s\n", *ctrl, reg)
		// Heartbeat: re-registration keeps the relay in the directory; a
		// crashed relay silently ages out of it (controller RelayTTL).
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for range t.C {
				if err := cc.RegisterRelay(netsim.RelayID(*id), reg); err != nil {
					log.Printf("heartbeat: %v", err)
				}
			}
		}()
	}

	go func() {
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for range t.C {
			p, b, d := node.Stats()
			fmt.Printf("relay %d: %d packets, %d bytes, %d dropped, %d sessions\n",
				*id, p, b, d, node.Sessions())
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		node.Close()
	}()
	if err := node.Serve(); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
