// Command viarelay runs one managed-overlay relay node: a UDP forwarder
// that registers itself with the controller and forwards media frames along
// their source routes (bounce and transit paths, §3.1).
//
// Usage:
//
//	viarelay -id 3 -addr :9003 -controller http://ctrl:8080
//
// Maintenance drain (DESIGN.md §17): start with -drain to come up out of
// rotation, or send SIGTERM to a running relay to drain before exit — it
// stops accepting new sessions, advertises draining on its heartbeat so
// the controller excludes it from candidate enumeration, nudges active
// clients toward their backup relays, and exits once its sessions are
// gone (or after -drain-grace). SIGINT remains an immediate shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controller"
	"repro/internal/netsim"
	"repro/internal/relay"
)

func main() {
	id := flag.Int("id", 0, "relay id")
	addr := flag.String("addr", "127.0.0.1:0", "UDP listen address")
	ctrl := flag.String("controller", "", "controller base URL (optional)")
	advertise := flag.String("advertise", "", "address to register with the controller (default: bound address)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "re-registration interval (liveness)")
	drain := flag.Bool("drain", false, "start in drain mode: serve existing sessions, accept no new ones")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "on SIGTERM, wait this long for sessions to migrate before exiting")
	flag.Parse()

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	node := relay.New(netsim.RelayID(*id), conn)
	if *drain {
		node.SetDraining(true)
	}
	fmt.Printf("relay %d forwarding on %s (draining=%v)\n", *id, node.Addr(), node.Draining())

	var cc *controller.Client
	reg := *advertise
	if *ctrl != "" {
		if reg == "" {
			reg = node.Addr().String()
		}
		cc = controller.NewClient(*ctrl)
		if err := cc.HeartbeatRelay(netsim.RelayID(*id), reg, node.Draining()); err != nil {
			log.Fatalf("register: %v", err)
		}
		fmt.Printf("registered with controller %s as %s\n", *ctrl, reg)
		// Heartbeat: re-registration keeps the relay in the directory; a
		// crashed relay silently ages out of it (controller RelayTTL).
		// Each beat carries the current drain state, so flipping into
		// drain propagates within one interval.
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for range t.C {
				if err := cc.HeartbeatRelay(netsim.RelayID(*id), reg, node.Draining()); err != nil {
					log.Printf("heartbeat: %v", err)
				}
			}
		}()
	}

	go func() {
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for range t.C {
			p, b, d := node.Stats()
			fmt.Printf("relay %d: %d packets, %d bytes, %d dropped, %d sessions\n",
				*id, p, b, d, node.Sessions())
		}
	}()

	intC := make(chan os.Signal, 1)
	signal.Notify(intC, os.Interrupt)
	termC := make(chan os.Signal, 1)
	signal.Notify(termC, syscall.SIGTERM)
	go func() {
		for {
			select {
			case <-intC:
				node.Close()
				return
			case <-termC:
				fmt.Printf("relay %d: draining (grace %s)\n", *id, *drainGrace)
				node.SetDraining(true)
				if cc != nil {
					// Advertise immediately rather than waiting a beat.
					if err := cc.HeartbeatRelay(netsim.RelayID(*id), reg, true); err != nil {
						log.Printf("drain heartbeat: %v", err)
					}
				}
				go func() {
					deadline := time.Now().Add(*drainGrace)
					for time.Now().Before(deadline) && node.Sessions() > 0 {
						time.Sleep(500 * time.Millisecond)
					}
					fmt.Printf("relay %d: drain complete (%d sessions left)\n", *id, node.Sessions())
					node.Close()
				}()
			}
		}
	}()
	if err := node.Serve(); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
