// Command vialint is the multichecker for the repository's invariant
// analyzers (determinism, lockcheck, errwrap, ctxtimeout, deadstore — see
// internal/analysis). It runs two ways:
//
// Standalone, over package patterns:
//
//	go run ./cmd/vialint ./...
//	go run ./cmd/vialint -only determinism,lockcheck ./internal/...
//
// As a `go vet` tool, speaking cmd/go's vet config protocol:
//
//	go build -o /tmp/vialint ./cmd/vialint
//	go vet -vettool=/tmp/vialint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics found
// (matching x/tools' unitchecker convention so `go vet` integrates).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/vialint"
)

func main() {
	// cmd/go probes a vettool before use: `-V=full` asks for a version
	// fingerprint (cache key), `-flags` for the tool's supported flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		// The output is cmd/go's cache key for vet results, so it must
		// change whenever the tool's behavior does: fingerprint the binary.
		fmt.Printf("vialint version %s\n", selfFingerprint())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") {
			os.Exit(vetMode(arg))
		}
	}
	os.Exit(standalone())
}

// selfFingerprint hashes the running executable so rebuilt tools get fresh
// vet caches.
func selfFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

func standalone() int {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()
	analyzers := vialint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var unknown []string
		analyzers, unknown = vialint.Select(strings.Split(*only, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "vialint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			return 1
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	diags, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	// One shared FileSet across packages: resolve positions from any pkg.
	fset := pkgs[0].Fset
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "vialint: %d finding(s)\n", len(diags))
	return 2
}

// vetConfig is the JSON cmd/go writes for each package when driving a
// vettool (the x/tools unitchecker.Config shape; unknown fields ignored).
type vetConfig struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vialint: parsing vet config:", err)
		return 1
	}
	// Facts file: this suite exports none, but cmd/go requires the file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vialint:", err)
			return 1
		}
	}
	if cfg.VetxOnly || strings.HasSuffix(cfg.ID, ".test") {
		return 0
	}
	// Match standalone-mode policy: test files are not analyzed (they
	// legitimately use wall clocks and discard errors in teardown). When a
	// package has tests, cmd/go vets the test compilation ("p [p.test]")
	// instead of the base unit, so drop the _test.go files and analyze the
	// remaining production sources — a valid package on their own, since
	// in-package test files may reference base declarations but never the
	// reverse. External test units ("p_test") end up with no files; skip.
	prodFiles := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			prodFiles = append(prodFiles, f)
		}
	}
	cfg.GoFiles = prodFiles
	if len(cfg.GoFiles) == 0 {
		return 0
	}
	pkg, err := loadVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	diags, err := driver.Run([]*driver.Package{pkg}, vialint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// loadVetPackage type-checks one package from a vet config, resolving
// imports through the export files cmd/go listed.
func loadVetPackage(cfg *vetConfig) (*driver.Package, error) {
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	return driver.LoadSingle(cfg.ImportPath, cfg.GoFiles, exports)
}
