// Command vialint is the multichecker for the repository's invariant
// analyzers (determinism, dettaint, lockcheck, errwrap, ctxtimeout,
// deadstore, metricshygiene, noalloc, walcompat — see internal/analysis).
// It runs two ways:
//
// Standalone, over package patterns:
//
//	go run ./cmd/vialint ./...
//	go run ./cmd/vialint -only determinism,lockcheck ./internal/...
//	go run ./cmd/vialint -json ./...          # machine-readable findings
//	go run ./cmd/vialint -github ./...        # GitHub Actions annotations
//	go run ./cmd/vialint -timings ./...       # per-analyzer wall time
//	go run ./cmd/vialint -listcache .cache/vialint-list.json ./...
//	go run ./cmd/vialint -update-wal-schema ./...
//
// -listcache persists the `go list -export -deps` result keyed by a
// source stamp, skipping the list round-trip on warm runs (make lint uses
// it). -update-wal-schema regenerates the committed golden WAL schemas
// from source; review the diff. Narrowed patterns stay sound for the
// cross-package analyzers: module-local dependencies of the requested
// packages are loaded fact-only, so `vialint ./internal/rtp` sees the same
// facts a full run would.
//
// As a `go vet` tool, speaking cmd/go's vet config protocol:
//
//	go build -o /tmp/vialint ./cmd/vialint
//	go vet -vettool=/tmp/vialint ./...
//
// In vet mode, cross-package facts ride in cmd/go's .vetx files: each
// package invocation merges its dependencies' fact files (PackageVetx)
// and serializes its own exports to VetxOutput, so interprocedural
// results match the standalone driver's dependency-ordered run.
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics found
// (matching x/tools' unitchecker convention so `go vet` integrates).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/vialint"
)

// modulePrefix identifies this module's packages in vet mode, where the
// driver's module detection (via go list) is unavailable.
const modulePrefix = "repro"

func main() {
	// cmd/go probes a vettool before use: `-V=full` asks for a version
	// fingerprint (cache key), `-flags` for the tool's supported flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		// The output is cmd/go's cache key for vet results, so it must
		// change whenever the tool's behavior does: fingerprint the binary.
		fmt.Printf("vialint version %s\n", selfFingerprint())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") {
			os.Exit(vetMode(arg))
		}
	}
	os.Exit(standalone())
}

// selfFingerprint hashes the running executable so rebuilt tools get fresh
// vet caches.
func selfFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

func standalone() int {
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		github    = flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside findings")
		timings   = flag.Bool("timings", false, "report load and per-analyzer wall time on stderr")
		listcache = flag.String("listcache", "", "cache go-list units in this file, keyed by a source stamp")
		updateWAL = flag.Bool("update-wal-schema", false, "regenerate the committed golden WAL schemas from source and exit")
	)
	flag.Parse()
	analyzers := vialint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var unknown []string
		analyzers, unknown = vialint.Select(strings.Split(*only, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "vialint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			return 1
		}
	}
	if *updateWAL {
		analyzers = []*framework.Analyzer{vialint.WALSchemaUpdater()}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	var (
		pkgs    []*driver.Package
		cached  bool
		loadErr error
	)
	if *listcache != "" {
		pkgs, cached, loadErr = driver.LoadCached("", *listcache, patterns)
	} else {
		pkgs, loadErr = driver.Load("", patterns)
	}
	if loadErr != nil {
		fmt.Fprintln(os.Stderr, "vialint:", loadErr)
		return 1
	}
	loadTime := time.Since(start)

	perAnalyzer := map[string]float64{}
	diags, err := driver.RunWithFacts(pkgs, analyzers, framework.NewFacts(), perAnalyzer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	if *timings {
		reportTimings(loadTime, *listcache != "", cached, time.Since(start), perAnalyzer)
	}
	if *updateWAL {
		fmt.Fprintf(os.Stderr, "vialint: golden WAL schemas rewritten under %s\n", vialint.SchemaDir())
		return 0
	}
	if len(diags) == 0 {
		if *jsonOut {
			fmt.Println("[]")
		}
		return 0
	}

	// One shared FileSet across packages: resolve positions from any pkg.
	fset := pkgs[0].Fset
	if *jsonOut {
		printJSON(fset, diags)
	} else {
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			if *github {
				fmt.Printf("::error file=%s,line=%d,col=%d,title=vialint %s::%s\n",
					pos.Filename, pos.Line, pos.Column, d.Analyzer, githubEscape(d.Message))
			}
		}
	}
	fmt.Fprintf(os.Stderr, "vialint: %d finding(s)\n", len(diags))
	return 2
}

// jsonDiag is the -json output element.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(fset *token.FileSet, diags []framework.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	//vialint:ignore errwrap stdout encode of already-validated structs cannot fail meaningfully
	_ = enc.Encode(out)
}

// githubEscape encodes the characters the workflow-command parser treats
// specially in message data.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	return strings.ReplaceAll(s, "\n", "%0A")
}

// reportTimings summarizes where a lint run spent its time.
func reportTimings(load time.Duration, cacheEnabled, cacheHit bool, total time.Duration, perAnalyzer map[string]float64) {
	cacheNote := ""
	if cacheEnabled {
		if cacheHit {
			cacheNote = " (list cache hit)"
		} else {
			cacheNote = " (list cache miss)"
		}
	}
	fmt.Fprintf(os.Stderr, "vialint: load %.3fs%s, total %.3fs\n", load.Seconds(), cacheNote, total.Seconds())
	names := make([]string, 0, len(perAnalyzer))
	for name := range perAnalyzer {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return perAnalyzer[names[i]] > perAnalyzer[names[j]] })
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "vialint:   %-15s %.3fs\n", name, perAnalyzer[name])
	}
}

// vetConfig is the JSON cmd/go writes for each package when driving a
// vettool (the x/tools unitchecker.Config shape; unknown fields ignored).
type vetConfig struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// inModule reports whether an import path belongs to this module; only
// module packages carry facts worth computing (sinks in the stdlib are
// recognized syntactically, not through summaries).
func inModule(importPath string) bool {
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/")
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vialint: parsing vet config:", err)
		return 1
	}
	// Non-module packages (stdlib) and test binaries export no facts and
	// get no diagnostics: write an empty fact file to satisfy cmd/go and
	// move on.
	if strings.HasSuffix(cfg.ID, ".test") || !inModule(cfg.ImportPath) {
		return writeFacts(cfg.VetxOutput, framework.NewFacts())
	}
	// Match standalone-mode policy: test files are not analyzed (they
	// legitimately use wall clocks and discard errors in teardown). When a
	// package has tests, cmd/go vets the test compilation ("p [p.test]")
	// instead of the base unit, so drop the _test.go files and analyze the
	// remaining production sources — a valid package on their own, since
	// in-package test files may reference base declarations but never the
	// reverse. External test units ("p_test") end up with no files; skip.
	prodFiles := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			prodFiles = append(prodFiles, f)
		}
	}
	cfg.GoFiles = prodFiles
	if len(cfg.GoFiles) == 0 {
		return writeFacts(cfg.VetxOutput, framework.NewFacts())
	}
	pkg, err := loadVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	// A VetxOnly unit is a dependency of the requested patterns: analyze
	// it for facts alone, reporting nothing — the driver's FactsOnly flag
	// implements exactly that contract.
	pkg.FactsOnly = pkg.FactsOnly || cfg.VetxOnly

	// Seed this unit's fact store from its dependencies' fact files.
	facts := framework.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // empty or pruned fact file: nothing to merge
		}
		if err := facts.MergeJSON(data); err != nil {
			fmt.Fprintln(os.Stderr, "vialint:", err)
			return 1
		}
	}

	diags, err := driver.RunWithFacts([]*driver.Package{pkg}, vialint.All(), facts, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	if code := writeFacts(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// writeFacts serializes a fact store to cmd/go's .vetx slot.
func writeFacts(path string, facts *framework.Facts) int {
	if path == "" {
		return 0
	}
	data, err := facts.EncodeJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "vialint:", err)
		return 1
	}
	return 0
}

// loadVetPackage type-checks one package from a vet config, resolving
// imports through the export files cmd/go listed.
func loadVetPackage(cfg *vetConfig) (*driver.Package, error) {
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	// Test compilation units are named "p [p.test]"; the bracketed suffix
	// must not leak into type-checking or the compiler's -p flag.
	importPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	return driver.LoadSingle(importPath, cfg.GoFiles, exports)
}
