// Command viaclient runs a Via call agent. In serve mode it answers calls
// (measuring loss/jitter and feeding reports back); in call mode it places
// a call to a peer through a relaying option — chosen by the controller
// with -option auto — measures RTT/loss/jitter, and reports the result.
//
// Usage:
//
//	viaclient -group 7 serve
//	viaclient -group 7 -controller http://ctrl:8080 \
//	    call -peer 10.0.0.2:9000 -peer-group 12 -option auto -duration 5s
//
// Option syntax: auto | direct | bounce:R | transit:R1:R2.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/controller"
	"repro/internal/netsim"
	"repro/internal/rtp"
)

func main() {
	group := flag.Int("group", 0, "this client's group (AS) id")
	addr := flag.String("addr", "127.0.0.1:0", "UDP listen address")
	ctrl := flag.String("controller", "", "controller base URL")
	peer := flag.String("peer", "", "peer media address (call mode)")
	peerGroup := flag.Int("peer-group", 0, "peer's group id (call mode)")
	option := flag.String("option", "auto", "auto | direct | bounce:R | transit:R1:R2")
	repair := flag.String("repair", "none",
		"loss-repair scheme: none | nack | red | fec-K | auto (controller's bandit picks)")
	duration := flag.Duration("duration", 3*time.Second, "call length")
	pps := flag.Int("pps", 50, "media packets per second")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "agent seed")
	flag.Parse()

	mode := flag.Arg(0)
	if mode != "serve" && mode != "call" {
		log.Fatal("usage: viaclient [flags] serve|call")
	}

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	agent := client.New(int32(*group), conn, *seed)
	defer agent.Close()
	fmt.Printf("client group %d on %s\n", *group, agent.Addr())

	var cc *controller.Client
	if *ctrl != "" {
		cc = controller.NewClient(*ctrl)
		dir, err := cc.Relays()
		if err != nil {
			log.Fatalf("fetch relays: %v", err)
		}
		if err := agent.SetRelays(dir); err != nil {
			log.Fatalf("relay directory: %v", err)
		}
		fmt.Printf("loaded %d relays from %s\n", len(dir), *ctrl)
	}

	if mode == "serve" {
		fmt.Println("serving; ctrl-c to stop")
		select {}
	}

	// Call mode.
	if *peer == "" {
		log.Fatal("call mode requires -peer")
	}
	peerAddr, err := net.ResolveUDPAddr("udp", *peer)
	if err != nil {
		log.Fatalf("peer: %v", err)
	}
	opt, err := parseOption(*option, cc, int32(*group), int32(*peerGroup))
	if err != nil {
		log.Fatal(err)
	}
	// Repair scheme: explicit name, or let the controller's per-pair repair
	// bandit pick one for the chosen path.
	schemeName := *repair
	if schemeName == "auto" {
		if cc == nil {
			log.Fatal("-repair auto requires -controller")
		}
		opt, schemeName, err = cc.ChooseWithRepair(int32(*group), int32(*peerGroup),
			[]netsim.Option{opt}, []string{"none", "nack", "red", "fec-4"})
		if err != nil {
			log.Fatalf("choose repair: %v", err)
		}
	}
	scheme, err := rtp.ParseScheme(schemeName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calling %s via %v (repair %v) for %v...\n", *peer, opt, scheme, *duration)
	m, err := agent.Call(client.CallSpec{
		Peer:     peerAddr,
		Option:   opt,
		Duration: *duration,
		PPS:      *pps,
		Repair:   scheme,
	})
	if err != nil {
		log.Fatalf("call: %v", err)
	}
	fmt.Printf("measured: rtt=%.1fms loss=%.2f%% jitter=%.2fms\n",
		m.RTTMs, 100*m.LossRate, m.JitterMs)
	if agent.RepairDowngrades() > 0 {
		fmt.Println("peer did not confirm the repair scheme; ran plain forwarding")
	}
	if cc != nil {
		var rerr error
		if scheme == rtp.SchemeNone {
			rerr = cc.Report(int32(*group), int32(*peerGroup), opt, m)
		} else {
			rerr = cc.ReportRepair(int32(*group), int32(*peerGroup), opt,
				scheme.String(), duration.Seconds(), m)
		}
		if rerr != nil {
			log.Fatalf("report: %v", rerr)
		}
		fmt.Println("reported to controller")
	}
}

// parseOption resolves the -option flag, consulting the controller for
// "auto".
func parseOption(s string, cc *controller.Client, src, dst int32) (netsim.Option, error) {
	switch {
	case s == "direct":
		return netsim.DirectOption(), nil
	case s == "auto":
		if cc == nil {
			return netsim.DirectOption(), fmt.Errorf("-option auto requires -controller")
		}
		dir, err := cc.Relays()
		if err != nil {
			return netsim.DirectOption(), err
		}
		cands := []netsim.Option{netsim.DirectOption()}
		ids := make([]netsim.RelayID, 0, len(dir))
		for id := range dir {
			ids = append(ids, id)
		}
		for _, id := range ids {
			cands = append(cands, netsim.BounceOption(id))
		}
		for _, a := range ids {
			for _, b := range ids {
				if a != b {
					cands = append(cands, netsim.TransitOption(a, b))
				}
			}
		}
		return cc.Choose(src, dst, cands)
	case strings.HasPrefix(s, "bounce:"):
		r, err := strconv.Atoi(strings.TrimPrefix(s, "bounce:"))
		if err != nil {
			return netsim.DirectOption(), fmt.Errorf("bad bounce option %q", s)
		}
		return netsim.BounceOption(netsim.RelayID(r)), nil
	case strings.HasPrefix(s, "transit:"):
		parts := strings.Split(strings.TrimPrefix(s, "transit:"), ":")
		if len(parts) != 2 {
			return netsim.DirectOption(), fmt.Errorf("bad transit option %q", s)
		}
		r1, err1 := strconv.Atoi(parts[0])
		r2, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return netsim.DirectOption(), fmt.Errorf("bad transit option %q", s)
		}
		return netsim.TransitOption(netsim.RelayID(r1), netsim.RelayID(r2)), nil
	default:
		return netsim.DirectOption(), fmt.Errorf("unknown option %q", s)
	}
}
