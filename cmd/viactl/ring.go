package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/ring"
)

// loadRingMap reads and validates a shard-map JSON file (the format
// GET /v1/ring/map serves — ring.Map with epoch, vnodes, and shards).
func loadRingMap(path string) (*ring.Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ring.DecodeMap(data)
}

// routeCmd runs the stateless ring router: it serves the shard map to
// bootstrapping clients, proxies pair traffic for clients that don't carry
// a map, and runs the periodic cross-shard §4.6 budget aggregation — the
// only piece of fleet-global state in the sharded control plane.
func routeCmd(args []string) int {
	fs := flag.NewFlagSet("viactl route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8079", "HTTP listen address")
	mapFile := fs.String("ring-map", "", "shard-map JSON file (required; same format GET /v1/ring/map serves)")
	budgetEvery := fs.Duration("budget-every", 2*time.Second, "cross-shard budget aggregation period (0 = disabled)")
	fs.Parse(args) //vialint:ignore errwrap ExitOnError flag sets terminate on a parse failure
	if *mapFile == "" {
		fmt.Fprintln(os.Stderr, "viactl route: -ring-map is required")
		return 2
	}
	m, err := loadRingMap(*mapFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "viactl route: %v\n", err)
		return 1
	}

	reg := obs.NewRegistry()
	router := ring.NewRouter(m, reg)
	if *budgetEvery > 0 {
		router.StartBudgetLoop(*budgetEvery)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		router.Stop()
		hs.Close() //vialint:ignore errwrap final teardown; the listener is going away regardless
	}()

	fmt.Printf("via ring router listening on %s (epoch=%d shards=%d budget-every=%s)\n",
		*addr, m.MapEpoch, len(m.Shards), *budgetEvery)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	return 0
}
