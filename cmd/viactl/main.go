// Command viactl runs the Via controller: the central service that ingests
// per-call measurement reports from clients and answers relay-selection
// queries using prediction-guided exploration (§3.1, Figure 7).
//
// Usage:
//
//	viactl -addr :8080 -metric rtt
//
// Relays register with POST /v1/relays/register; clients call POST
// /v1/choose and POST /v1/report. GET /v1/stats reports counters, and
// GET /metrics serves the full registry (request latency histogram,
// decision outcomes, live relays, ...) in Prometheus text format — see
// the README "Observability" section for every exported series.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	metric := flag.String("metric", "rtt", "metric to optimize: rtt, loss, jitter")
	budget := flag.Float64("budget", 1.0, "max fraction of calls relayed (1 = unconstrained)")
	timescale := flag.Float64("timescale", 0, "virtual hours per wall second (0 = real time)")
	seed := flag.Uint64("seed", 1, "strategy seed")
	state := flag.String("state", "", "history snapshot file: loaded at start, saved on SIGINT")
	relayTTL := flag.Duration("relay-ttl", 0, "expire relays whose heartbeat lapsed this long (0 = never)")
	flag.Parse()

	var m quality.Metric
	switch *metric {
	case "rtt":
		m = quality.RTT
	case "loss":
		m = quality.Loss
	case "jitter":
		m = quality.Jitter
	default:
		log.Fatalf("unknown metric %q (want rtt, loss, or jitter)", *metric)
	}

	reg := obs.NewRegistry()
	cfg := core.DefaultViaConfig(m)
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Metrics = reg
	strat := core.NewVia(cfg, nil)

	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := strat.LoadHistory(f); err != nil {
				log.Fatalf("load state: %v", err)
			}
			f.Close()
			fmt.Printf("restored history from %s\n", *state)
		} else if !os.IsNotExist(err) {
			log.Fatalf("open state: %v", err)
		}
	}

	srv := controller.New(controller.Config{
		Strategy:  strat,
		TimeScale: *timescale,
		RelayTTL:  *relayTTL,
		Metrics:   reg,
	})

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Misbehaving or stalled clients must not pin handler goroutines:
		// every control RPC is a small JSON body, so generous-but-finite
		// read bounds cost nothing in the happy path.
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
	}

	// On SIGINT/SIGTERM: stop admitting requests, drain in-flight
	// choose/report calls (so no measurement is lost), persist history if
	// asked, then close the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if *state != "" {
			f, err := os.Create(*state)
			if err == nil {
				err = strat.SaveHistory(f)
				f.Close()
			}
			if err != nil {
				log.Printf("save state: %v", err)
			} else {
				fmt.Printf("\nsaved history to %s\n", *state)
			}
		}
		hs.Close()
	}()

	fmt.Printf("via controller listening on %s (metric=%s budget=%.2f)\n", *addr, m, *budget)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
