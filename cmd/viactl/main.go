// Command viactl runs and operates the Via controller: the central service
// that ingests per-call measurement reports from clients and answers
// relay-selection queries using prediction-guided exploration (§3.1,
// Figure 7).
//
// Usage:
//
//	viactl [serve] [flags]     run a controller (the default command)
//	viactl route -ring-map F   run the stateless ring router over a shard map
//	viactl snapshot -ctrl URL  force a durable snapshot on a running controller
//	viactl promote  -ctrl URL  promote a standby to primary
//	viactl wal-dump -dir DIR   print a WAL directory's snapshots and records
//
// Bare flags (viactl -addr :8080) keep their historical meaning: they run
// the serve command.
//
// serve runs in-memory by default; -wal DIR makes it durable (every
// choose/report hits a write-ahead log before the strategy, snapshots land
// in DIR/snapshots, and a restart replays its way back to the exact same
// decision state). Adding -standby URL instead tails the primary at URL as
// a warm replica that refuses decision traffic until promoted — by hand
// (viactl promote) or automatically when the lease lapses (-auto-promote).
// -max-concurrent enables admission control: excess choose/report load is
// shed with 503 + Retry-After instead of queueing without bound.
// -repair-schemes none,nack,red,fec-4 turns on per-pair repair-scheme
// selection: choose requests that offer repair candidates get a scheme
// picked by a bandit over (path, repair) arms, with -repair-budget capping
// the redundant-bandwidth fraction (§4.6 applied to redundancy).
//
// A sharded control plane runs one serve per shard with -ring-map FILE
// -ring-shard N (the server then redirects pairs it does not own to their
// owner, 307 + the map epoch) plus one route process fronting the fleet.
// The shard map file is the JSON GET /v1/ring/map serves; see DESIGN.md
// §16 for the ring topology, epoch protocol, and failure matrix.
//
// Relays register with POST /v1/relays/register; clients call POST
// /v1/choose and POST /v1/report. GET /v1/stats reports counters, GET
// /v1/livez and /v1/readyz split liveness from readiness, and GET /metrics
// serves the full registry in Prometheus text format — see the README
// "Observability" section for every exported series.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	cmd := "serve"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "serve":
		return serveCmd(args)
	case "route":
		return routeCmd(args)
	case "snapshot", "promote":
		return adminCmd(cmd, args)
	case "wal-dump":
		return walDumpCmd(args)
	case "help":
		usage(os.Stdout)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "viactl: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  viactl [serve] [flags]     run a controller (default command; serve -h for flags)
  viactl route -ring-map F   run the stateless ring router over a shard map
  viactl snapshot -ctrl URL  force a durable snapshot on a running controller
  viactl promote  -ctrl URL  promote a standby to primary
  viactl wal-dump -dir DIR   print a WAL directory's snapshots and records
`)
}

// serveCmd runs the controller until SIGINT/SIGTERM.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("viactl serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	metric := fs.String("metric", "rtt", "metric to optimize: rtt, loss, jitter")
	budget := fs.Float64("budget", 1.0, "max fraction of calls relayed (1 = unconstrained)")
	repairSchemes := fs.String("repair-schemes", "",
		"comma-separated repair arms offered to the per-pair bandit, e.g. none,nack,red,fec-4 (empty = repair selection off)")
	repairBudget := fs.Float64("repair-budget", 0,
		"cap on the talk-time fraction of redundant repair bandwidth per pair (0 = default 0.25, >= 1 = uncapped)")
	cacheTTL := fs.Float64("cache-ttl", 0,
		"decision-cache TTL in virtual hours (0 = no cache); incompatible with -wal, whose replay must re-execute every decision")
	timescale := fs.Float64("timescale", 0, "virtual hours per wall second (0 = real time)")
	seed := fs.Uint64("seed", 1, "strategy seed")
	state := fs.String("state", "", "history snapshot file: loaded at start, saved on SIGINT (in-memory mode only)")
	relayTTL := fs.Duration("relay-ttl", 0, "expire relays whose heartbeat lapsed this long (0 = never)")
	walDir := fs.String("wal", "", "durability: write-ahead log + snapshot directory (restart recovers exact state)")
	walSync := fs.Duration("wal-sync", 0, "WAL group-commit window (0 = default, negative = fsync every append)")
	snapEvery := fs.Int("snapshot-every", 0, "snapshot after this many applied records (0 = default 4096, negative = never)")
	standbyOf := fs.String("standby", "", "run as warm standby of this primary controller URL (requires -wal)")
	ringMapFile := fs.String("ring-map", "", "ring: shard-map JSON file; serve as one shard of this ring (requires -ring-shard)")
	ringShard := fs.Int("ring-shard", -1, "ring: this server's shard ID in the -ring-map file")
	lease := fs.Duration("lease", 0, "standby: primary silence tolerated before the lease lapses (0 = 2s)")
	autoPromote := fs.Bool("auto-promote", false, "standby: self-promote to primary when the lease lapses")
	maxConcurrent := fs.Int("max-concurrent", 0, "admission: concurrent choose/report requests per endpoint (0 = unlimited)")
	maxWaiting := fs.Int("max-waiting", 0, "admission: queue depth behind the concurrency slots (0 = 4x max-concurrent)")
	queueTimeout := fs.Duration("queue-timeout", 0, "admission: longest a queued request waits before being shed (0 = 100ms)")
	fs.Parse(args) //vialint:ignore errwrap ExitOnError flag sets terminate on a parse failure

	var m quality.Metric
	switch *metric {
	case "rtt":
		m = quality.RTT
	case "loss":
		m = quality.Loss
	case "jitter":
		m = quality.Jitter
	default:
		log.Fatalf("unknown metric %q (want rtt, loss, or jitter)", *metric)
	}
	if *standbyOf != "" && *walDir == "" {
		log.Fatal("-standby requires -wal (the standby replicates the primary's WAL into its own)")
	}
	if *state != "" && *walDir != "" {
		log.Fatal("-state and -wal are mutually exclusive (the WAL supersedes the history snapshot file)")
	}
	if (*ringMapFile == "") != (*ringShard < 0) {
		log.Fatal("-ring-map and -ring-shard go together (a shard needs both the map and its own ID)")
	}
	if *cacheTTL > 0 && *walDir != "" {
		// WAL replay reproduces state by re-executing every choose record
		// against the strategy; a cache in front would serve some of those
		// from cached decisions (the cache itself is not persisted), the
		// inner algorithm's RNG would advance differently live vs replay,
		// and recovery would diverge. Cache at the client tier instead.
		log.Fatal("-cache-ttl and -wal are mutually exclusive (cached decisions would break replay determinism)")
	}

	reg := obs.NewRegistry()
	cfg := core.DefaultViaConfig(m)
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Metrics = reg
	if *repairSchemes != "" {
		cfg.RepairSchemes = strings.Split(*repairSchemes, ",")
		cfg.RepairOverheadBudget = *repairBudget
	}
	strat := core.NewVia(cfg, nil)

	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := strat.LoadHistory(f); err != nil {
				log.Fatalf("load state: %v", err)
			}
			f.Close() //vialint:ignore errwrap read-only file
			fmt.Printf("restored history from %s\n", *state)
		} else if !os.IsNotExist(err) {
			log.Fatalf("open state: %v", err)
		}
	}

	var serveStrat core.Strategy = strat
	if *cacheTTL > 0 {
		cached := core.NewCached(strat, *cacheTTL)
		cached.RegisterMetrics(reg)
		serveStrat = cached
		fmt.Printf("decision cache enabled (ttl %.2gh, %d pairs max)\n", *cacheTTL, core.DefaultCacheMaxPairs)
	}

	ccfg := controller.Config{
		Strategy:        serveStrat,
		TimeScale:       *timescale,
		RelayTTL:        *relayTTL,
		Metrics:         reg,
		WALDir:          *walDir,
		WALSyncInterval: *walSync,
		SnapshotEvery:   *snapEvery,
		StandbyOf:       *standbyOf,
		LeaseTimeout:    *lease,
		AutoPromote:     *autoPromote,
		Admission: controller.AdmissionConfig{
			MaxConcurrent: *maxConcurrent,
			MaxWaiting:    *maxWaiting,
			QueueTimeout:  *queueTimeout,
		},
	}
	var srv *controller.Server
	if *walDir != "" {
		opened, err := controller.Open(ccfg)
		if err != nil {
			log.Fatalf("open durable controller: %v", err)
		}
		srv = opened
	} else {
		srv = controller.New(ccfg)
	}

	handler := srv.Handler()
	role := "standalone"
	if *ringMapFile != "" {
		m, err := loadRingMap(*ringMapFile)
		if err != nil {
			log.Fatalf("ring map: %v", err)
		}
		if _, ok := m.ShardByID(*ringShard); !ok {
			log.Fatalf("ring map %s has no shard %d", *ringMapFile, *ringShard)
		}
		// The gate answers 307 for pairs other shards own and accepts
		// newer-epoch map installs on POST /v1/ring/map.
		handler = ring.NewGate(*ringShard, handler, m, reg)
		role = fmt.Sprintf("ring shard %d (epoch %d, %d shards)", *ringShard, m.MapEpoch, len(m.Shards))
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Misbehaving or stalled clients must not pin handler goroutines:
		// every control RPC is a small JSON body, so generous-but-finite
		// read bounds cost nothing in the happy path.
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
	}

	// On SIGINT/SIGTERM: stop admitting requests, drain in-flight
	// choose/report calls (so no measurement is lost), persist history if
	// asked, flush the WAL, then close the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if *state != "" {
			f, err := os.Create(*state)
			if err == nil {
				err = strat.SaveHistory(f)
				f.Close() //vialint:ignore errwrap SaveHistory's error is the one that matters; a close failure surfaces on the next load
			}
			if err != nil {
				log.Printf("save state: %v", err)
			} else {
				fmt.Printf("\nsaved history to %s\n", *state)
			}
		}
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
		hs.Close() //vialint:ignore errwrap final teardown; the listener is going away regardless
	}()

	mode := "in-memory"
	if *walDir != "" {
		mode = "durable wal=" + *walDir
	}
	fmt.Printf("via controller listening on %s (metric=%s budget=%.2f role=%s state=%s mode=%s ring=%s)\n",
		*addr, m, *budget, srv.Role(), srv.State(), mode, role)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	return 0
}

// adminCmd drives the one-shot operator endpoints: snapshot (POST
// /v1/admin/snapshot) and promote (POST /v1/promote).
func adminCmd(kind string, args []string) int {
	fs := flag.NewFlagSet("viactl "+kind, flag.ExitOnError)
	ctrl := fs.String("ctrl", "http://127.0.0.1:8080", "controller base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	fs.Parse(args) //vialint:ignore errwrap ExitOnError flag sets terminate on a parse failure

	paths := map[string]string{
		"snapshot": "/v1/admin/snapshot",
		"promote":  "/v1/promote",
	}
	cl := &http.Client{Timeout: *timeout}
	resp, err := cl.Post(strings.TrimRight(*ctrl, "/")+paths[kind], "application/json", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "viactl %s: %v\n", kind, err)
		return 1
	}
	defer resp.Body.Close() //vialint:ignore errwrap response body fully read below; close is bookkeeping
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		fmt.Fprintf(os.Stderr, "viactl %s: read response: %v\n", kind, err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "viactl %s: %s: %s\n", kind, resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	switch kind {
	case "snapshot":
		var sr transport.SnapshotResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			fmt.Fprintf(os.Stderr, "viactl snapshot: decode response: %v\n", err)
			return 1
		}
		fmt.Printf("snapshot taken: lsn=%d bytes=%d\n", sr.LSN, sr.Bytes)
	case "promote":
		var pr transport.PromoteResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			fmt.Fprintf(os.Stderr, "viactl promote: decode response: %v\n", err)
			return 1
		}
		fmt.Printf("promoted: role=%s term=%d\n", pr.Role, pr.Term)
	}
	return 0
}

// walDumpCmd prints a WAL directory offline: snapshots first, then every
// record with its LSN and a human-readable rendering of the payload. It
// only reads — a torn tail is reported, not repaired.
func walDumpCmd(args []string) int {
	fs := flag.NewFlagSet("viactl wal-dump", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory (as given to viactl serve -wal)")
	from := fs.Uint64("from", 0, "first LSN to print (0 = everything on disk)")
	fs.Parse(args) //vialint:ignore errwrap ExitOnError flag sets terminate on a parse failure
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "viactl wal-dump: -dir is required")
		return 2
	}

	snaps, err := wal.ListSnapshots(filepath.Join(*dir, "snapshots"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "viactl wal-dump: %v\n", err)
		return 1
	}
	for _, s := range snaps {
		size := int64(-1)
		if fi, statErr := os.Stat(s.Path); statErr == nil {
			size = fi.Size()
		}
		fmt.Printf("snapshot  lsn=%d bytes=%d %s\n", s.LSN, size, s.Path)
	}

	segs, err := filepath.Glob(filepath.Join(*dir, "*.wal"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "viactl wal-dump: %v\n", err)
		return 1
	}
	sort.Strings(segs)
	if len(segs) == 0 && len(snaps) == 0 {
		fmt.Fprintf(os.Stderr, "viactl wal-dump: no segments or snapshots in %s\n", *dir)
		return 1
	}
	records := 0
	for _, seg := range segs {
		base, perr := strconv.ParseUint(strings.TrimSuffix(filepath.Base(seg), ".wal"), 16, 64)
		if perr != nil {
			continue // stray .wal file whose name is not an LSN; not ours
		}
		f, oerr := os.Open(seg)
		if oerr != nil {
			fmt.Fprintf(os.Stderr, "viactl wal-dump: %v\n", oerr)
			return 1
		}
		torn := dumpSegment(f, base, *from, &records)
		f.Close() //vialint:ignore errwrap read-only file
		if torn {
			break // everything past a torn frame is unreadable by construction
		}
	}
	fmt.Printf("%d records\n", records)
	return 0
}

// dumpSegment prints one segment's records, starting the LSN count at the
// segment's base. Reports whether it hit a torn/corrupt frame.
func dumpSegment(f *os.File, lsn, from uint64, n *int) bool {
	r := bufio.NewReader(f)
	for {
		rec, err := wal.ReadFrame(r)
		if errors.Is(err, io.EOF) {
			return false
		}
		if err != nil {
			fmt.Printf("%8d  (torn tail: %v)\n", lsn, err)
			return true
		}
		if lsn >= from {
			fmt.Printf("%8d  %s\n", lsn, controller.DescribeRecord(rec))
			*n++
		}
		lsn++
	}
}
