package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/ring"
)

// soakParams carries the soak subcommand's flag values into runSoakCmd.
type soakParams struct {
	seed       uint64
	shards     int
	calls      int
	pairs      int
	goroutines int
	relays     int
	walRoot    string
	soakOut    string
	metricsOut string
}

// runSoakCmd is the `viabench soak` mode: the shard-chaos soak e2e — a
// zipf load over a live multi-shard fleet while shard 0's primary is
// killed, its standby promoted, and the ring grown by one shard — with the
// CI gate's acceptance checks applied (zero drops, per-shard WAL replay
// identity, fault plan fully executed) and the machine-readable report
// written for artifact upload.
func runSoakCmd(p soakParams) int {
	var reg *obs.Registry
	if p.metricsOut != "" {
		reg = obs.NewRegistry()
	}
	start := time.Now()
	rep, err := ring.RunSoak(ring.SoakConfig{
		Seed:       p.seed,
		Shards:     p.shards,
		Calls:      p.calls,
		Pairs:      p.pairs,
		Goroutines: p.goroutines,
		Relays:     p.relays,
		WALRoot:    p.walRoot,
		Metrics:    reg,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return 1
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "soak: FAIL: "+format+"\n", args...)
	}
	if rep.Drops != 0 {
		fail("%d of %d decisions dropped", rep.Drops, rep.Calls)
	}
	if rep.FaultErrors != 0 {
		fail("%d fault-plan steps failed", rep.FaultErrors)
	}
	if rep.Promotions != 1 {
		fail("promotions = %d, want 1", rep.Promotions)
	}
	if rep.Rebalances != 1 {
		fail("rebalances = %d, want 1", rep.Rebalances)
	}
	for _, sr := range rep.ShardReports {
		if !sr.ReplayIdentical {
			fail("shard %d WAL replay diverged from live state (lsn %d)", sr.ID, sr.AppliedLSN)
		}
	}

	if p.soakOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "soakout: %v\n", err)
			return 1
		}
		if err := os.WriteFile(p.soakOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soakout: %v\n", err)
			return 1
		}
		fmt.Printf("[soak report written to %s]\n", p.soakOut)
	}
	if reg != nil {
		if err := writeMetricsSnapshot(reg, p.metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metricsout: %v\n", err)
			return 1
		}
		fmt.Printf("[metrics snapshot written to %s]\n", p.metricsOut)
	}

	verdict := "PASS"
	if failures > 0 {
		verdict = fmt.Sprintf("FAIL (%d checks)", failures)
	}
	perShard := make([]string, 0, len(rep.ShardReports))
	for _, sr := range rep.ShardReports {
		perShard = append(perShard, fmt.Sprintf("s%d=%.0f/s", sr.ID, sr.DecisionsPerSec))
	}
	line := fmt.Sprintf("soak: %s — calls %d, drops %d, redirects %d, retries %d, epoch %d, decisions [%s], merged budget (n=%d, th=%.4f) vs oracle (n=%d, th=%.4f), %s",
		verdict, rep.Calls, rep.Drops, rep.Redirects, rep.Retries, rep.MapEpoch,
		strings.Join(perShard, " "),
		rep.MergedN, rep.MergedThreshold, rep.OracleN, rep.OracleThreshold,
		time.Since(start).Round(time.Millisecond))
	fmt.Println(line)
	appendStepSummary(line)
	if failures > 0 {
		return 1
	}
	return 0
}
