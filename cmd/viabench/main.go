// Command viabench regenerates the paper's tables and figures from the
// synthetic substrate.
//
// Usage:
//
//	viabench [flags] all            run every trace-driven experiment
//	viabench [flags] <name>...      run specific experiments (see -list)
//	viabench [flags] fig18          run the loopback deployment (§5.5)
//	viabench [flags] chaos          run the fault-injection benchmark
//	viabench -list                  list experiment names
//
// Flags:
//
//	-seed N     master seed (default 1)
//	-calls N    trace size in calls (default 200000)
//	-csv        also emit CSV after each table
//	-quick      shrink fig18/chaos to smoke-test scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "master seed")
	calls := flag.Int("calls", 200000, "trace size in calls")
	csv := flag.Bool("csv", false, "also emit CSV")
	quick := flag.Bool("quick", false, "shrink fig18 to smoke scale")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		fmt.Printf("%-8s %s\n", "fig18", "real-networking deployment (§5.5)")
		fmt.Printf("%-8s %s\n", "chaos", "fault-injection benchmark (relay death + controller flap)")
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: viabench [flags] all | fig18 | <experiment>... (use -list)")
		os.Exit(2)
	}

	names := args
	if len(args) == 1 && args[0] == "all" {
		names = nil
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
		names = append(names, "fig18", "chaos")
	}

	var env *experiments.Env
	for _, name := range names {
		start := time.Now()
		if name == "fig18" {
			cfg := experiments.DefaultFig18Config()
			if *quick {
				cfg = experiments.QuickFig18Config()
			}
			cfg.Seed = *seed + 10
			tables, err := experiments.Fig18(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig18: %v\n", err)
				os.Exit(1)
			}
			emit(tables, *csv)
			fmt.Printf("[fig18 done in %s]\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		if name == "chaos" {
			cfg := experiments.DefaultChaosConfig()
			if *quick {
				cfg = experiments.QuickChaosConfig()
			}
			cfg.Seed = *seed + 16
			tables, err := experiments.Chaos(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			emit(tables, *csv)
			fmt.Printf("[chaos done in %s]\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		exp, err := experiments.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if env == nil {
			fmt.Printf("[building environment: seed=%d calls=%d]\n", *seed, *calls)
			env = experiments.NewEnv(*seed, *calls)
		}
		emit(exp.Run(env), *csv)
		fmt.Printf("[%s done in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func emit(tables []*stats.Table, csv bool) {
	for _, t := range tables {
		fmt.Println(t.String())
		if csv {
			fmt.Println(t.CSV())
		}
	}
}
