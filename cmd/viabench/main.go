// Command viabench regenerates the paper's tables and figures from the
// synthetic substrate.
//
// Usage:
//
//	viabench [flags] all            run every trace-driven experiment
//	viabench [flags] <name>...      run specific experiments (see -list)
//	viabench [flags] fig18          run the loopback deployment (§5.5)
//	viabench [flags] chaos          run the fault-injection benchmark
//	viabench [flags] bench          benchmark-regression harness (BENCH_<seed>.json)
//	viabench [flags] choose         Choose-throughput harness (BENCH_2.json)
//	viabench [flags] soak           shard-chaos soak (ring fleet under faults)
//	viabench -list                  list experiment names
//
// Flags:
//
//	-seed N          master seed (default 1)
//	-calls N         trace size in calls (default 200000)
//	-csv             also emit CSV after each table
//	-quick           shrink fig18/chaos to smoke-test scale
//	-jobs N          concurrent experiments (0 = GOMAXPROCS)
//	-workers N       simulator strategy-fan-out workers (0 = GOMAXPROCS, 1 = sequential)
//	-cpuprofile F    write a CPU profile to F
//	-memprofile F    write an allocation profile to F on exit
//	-benchout F      bench: output path (default BENCH_<seed>.json)
//	-baseline F      bench: compare against a committed baseline, exit 1 on regression
//	-tolerance T     bench: allowed fractional regression (default 0.25)
//	-modes M         bench: comma-separated passes, seq and/or par (default "seq,par")
//	-gomaxprocs N    bench/choose: override GOMAXPROCS for the measured run
//	-benchnote S     bench/choose: host caveat recorded verbatim in the JSON
//	-choose-ops N    choose: measured Choose calls (default 2000000)
//	-choose-pairs N  choose: distinct AS pairs (default 4096)
//	-choose-goroutines N  choose: concurrent callers (default 4)
//	-choose-zipf S   choose: pair-popularity skew (default 1.1)
//	-choose-observe-every N  choose: one Observe per N Chooses (default 200)
//	-metricsout F    fig18/chaos: write the final metrics snapshot as JSON to F
//	-waldir D        chaos: run the controller durably (WAL + snapshots in D;
//	                 the fault plan gains an abrupt crash + WAL-recovery restart)
//	-repair S        chaos: place every call with loss-repair scheme S
//	                 (none | nack | red | fec-K) and add burst loss to the plan
//	-soak-shards N   soak: initial ring shard count (default 3)
//	-soak-calls N    soak: minimum decisions across workers (default 2400)
//	-soak-pairs N    soak: zipf universe of group pairs (default 64)
//	-soak-goroutines N  soak: concurrent workers (default 4)
//	-soak-relays N   soak: bounce candidates per call beyond direct (default 5)
//	-soakout F       soak: write the machine-readable report JSON to F
//
// When GITHUB_STEP_SUMMARY is set (GitHub Actions), bench appends a
// one-line result to the job summary.
//
// Independent experiments under `all` run concurrently against the shared
// environment (its run cache has singleflight semantics), while output is
// streamed in registry order. fig18 and chaos pace themselves on real
// sockets and timers, so they always run sequentially at the end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/benchharness"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "master seed")
	calls := flag.Int("calls", 200000, "trace size in calls")
	csv := flag.Bool("csv", false, "also emit CSV")
	quick := flag.Bool("quick", false, "shrink fig18/chaos to smoke scale")
	list := flag.Bool("list", false, "list experiments")
	jobs := flag.Int("jobs", 0, "concurrent experiments (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "simulator strategy workers (0 = GOMAXPROCS, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write allocation profile to file on exit")
	benchOut := flag.String("benchout", "", "bench: output JSON path (default BENCH_<seed>.json)")
	baseline := flag.String("baseline", "", "bench: baseline JSON to compare against")
	tolerance := flag.Float64("tolerance", 0.25, "bench: allowed fractional regression")
	modes := flag.String("modes", "seq,par", "bench: comma-separated seq,par")
	metricsOut := flag.String("metricsout", "", "fig18/chaos: write final metrics snapshot JSON to file")
	gomaxprocs := flag.Int("gomaxprocs", 0, "bench/choose: override GOMAXPROCS for the measured run (0 = leave as-is)")
	benchNote := flag.String("benchnote", "", "bench/choose: host caveat recorded verbatim in the report JSON")
	chooseOps := flag.Int("choose-ops", 2_000_000, "choose: total measured Choose calls")
	choosePairs := flag.Int("choose-pairs", 4096, "choose: distinct AS pairs in the workload")
	chooseGoroutines := flag.Int("choose-goroutines", 4, "choose: concurrent callers")
	chooseZipf := flag.Float64("choose-zipf", 1.1, "choose: zipf skew of pair popularity")
	chooseObserve := flag.Int("choose-observe-every", 200, "choose: one Observe per N Chooses per caller (0 = none)")
	walDir := flag.String("waldir", "", "chaos: run the controller durably (WAL+snapshots here; adds crash/WAL-restart faults)")
	repair := flag.String("repair", "", "chaos: loss-repair scheme on every call (none|nack|red|fec-K; adds burst loss to the fault plan)")
	soakShards := flag.Int("soak-shards", 3, "soak: initial ring shard count")
	soakCalls := flag.Int("soak-calls", 2400, "soak: minimum decisions across workers")
	soakPairs := flag.Int("soak-pairs", 64, "soak: zipf universe of group pairs")
	soakGoroutines := flag.Int("soak-goroutines", 4, "soak: concurrent workers, one ring client each")
	soakRelays := flag.Int("soak-relays", 5, "soak: bounce candidates per call beyond direct")
	soakOut := flag.String("soakout", "", "soak: write the machine-readable soak report JSON to file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		fmt.Printf("%-8s %s\n", "fig18", "real-networking deployment (§5.5)")
		fmt.Printf("%-8s %s\n", "chaos", "fault-injection benchmark (relay death + controller flap)")
		fmt.Printf("%-8s %s\n", "bench", "benchmark-regression harness (writes BENCH_<seed>.json)")
		fmt.Printf("%-8s %s\n", "choose", "Choose-throughput + tail-latency harness (writes BENCH_2.json)")
		fmt.Printf("%-8s %s\n", "soak", "shard-chaos soak (ring fleet under kill/promote/rebalance)")
		return 0
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: viabench [flags] all | bench | choose | soak | fig18 | <experiment>... (use -list)")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close() //vialint:ignore errwrap best-effort close of profile file on exit
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	if len(args) == 1 && args[0] == "bench" {
		if *gomaxprocs > 0 {
			prev := runtime.GOMAXPROCS(*gomaxprocs)
			defer runtime.GOMAXPROCS(prev)
		}
		return runBench(*seed, *calls, *modes, *benchOut, *baseline, *tolerance, *benchNote)
	}
	if len(args) == 1 && args[0] == "soak" {
		return runSoakCmd(soakParams{
			seed:       *seed,
			shards:     *soakShards,
			calls:      *soakCalls,
			pairs:      *soakPairs,
			goroutines: *soakGoroutines,
			relays:     *soakRelays,
			walRoot:    *walDir,
			soakOut:    *soakOut,
			metricsOut: *metricsOut,
		})
	}
	if len(args) == 1 && args[0] == "choose" {
		cfg := benchharness.DefaultChooseConfig()
		cfg.Seed = *seed
		cfg.Ops = *chooseOps
		cfg.Pairs = *choosePairs
		cfg.Goroutines = *chooseGoroutines
		cfg.ZipfS = *chooseZipf
		cfg.ObserveEvery = *chooseObserve
		cfg.GOMAXPROCS = *gomaxprocs
		cfg.Note = *benchNote
		return runChoose(cfg, *benchOut, *baseline, *tolerance)
	}

	names := args
	if len(args) == 1 && args[0] == "all" {
		names = nil
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
		names = append(names, "fig18", "chaos")
	}

	// Split the env-driven experiments (safe to run concurrently) from the
	// real-time testbed modes, preserving the requested order within each.
	var envNames, liveNames []string
	for _, name := range names {
		if name == "fig18" || name == "chaos" {
			liveNames = append(liveNames, name)
		} else {
			envNames = append(envNames, name)
		}
	}

	if len(envNames) > 0 {
		for _, name := range envNames {
			if _, err := experiments.Lookup(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		fmt.Printf("[building environment: seed=%d calls=%d]\n", *seed, *calls)
		env := experiments.NewEnv(*seed, *calls)
		env.Runner.Cfg.Workers = *workers
		if err := runConcurrent(env, envNames, *jobs, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	// One registry spans every live mode in the invocation, so the dumped
	// snapshot reflects the whole run.
	var liveReg *obs.Registry
	if *metricsOut != "" && len(liveNames) > 0 {
		liveReg = obs.NewRegistry()
	}
	for _, name := range liveNames {
		start := time.Now()
		var tables []*stats.Table
		var err error
		switch name {
		case "fig18":
			cfg := experiments.DefaultFig18Config()
			if *quick {
				cfg = experiments.QuickFig18Config()
			}
			cfg.Seed = *seed + 10
			cfg.Metrics = liveReg
			tables, err = experiments.Fig18(cfg)
		case "chaos":
			cfg := experiments.DefaultChaosConfig()
			if *quick {
				cfg = experiments.QuickChaosConfig()
			}
			cfg.Seed = *seed + 16
			cfg.Metrics = liveReg
			cfg.WALDir = *walDir
			cfg.Repair = *repair
			tables, err = experiments.Chaos(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		emit(tables, *csv)
		fmt.Printf("[%s done in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if liveReg != nil {
		if err := writeMetricsSnapshot(liveReg, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metricsout: %v\n", err)
			return 1
		}
		fmt.Printf("[metrics snapshot written to %s]\n", *metricsOut)
	}
	return 0
}

// writeMetricsSnapshot dumps a registry's final state as JSON.
func writeMetricsSnapshot(reg *obs.Registry, path string) error {
	buf, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runConcurrent fans the named experiments across a bounded pool and
// streams their rendered tables to stdout in the requested order.
func runConcurrent(env *experiments.Env, names []string, jobs int, csv bool) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	type result struct {
		text string
		dur  time.Duration
		err  error
	}
	ready := make([]chan result, len(names))
	for i := range ready {
		ready[i] = make(chan result, 1)
	}
	sem := make(chan struct{}, jobs)
	for i, name := range names {
		go func(i int, name string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			exp, err := experiments.Lookup(name)
			if err != nil {
				ready[i] <- result{err: err}
				return
			}
			var sb strings.Builder
			for _, t := range exp.Run(env) {
				sb.WriteString(t.String())
				sb.WriteByte('\n')
				if csv {
					sb.WriteString(t.CSV())
					sb.WriteByte('\n')
				}
			}
			ready[i] <- result{text: sb.String(), dur: time.Since(start)}
		}(i, name)
	}
	var firstErr error
	for i, name := range names {
		r := <-ready[i]
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		fmt.Print(r.text)
		fmt.Printf("[%s done in %s]\n\n", name, r.dur.Round(time.Millisecond))
	}
	return firstErr
}

// runChoose drives the Choose-throughput mode against an optional
// committed baseline (BENCH_2.json).
func runChoose(cfg benchharness.ChooseConfig, out, baseline string, tolerance float64) int {
	cfg.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	rep, err := benchharness.RunChoose(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "choose: %v\n", err)
		return 1
	}
	if out == "" {
		out = "BENCH_2.json"
	}
	if err := benchharness.WriteChooseJSON(rep, out); err != nil {
		fmt.Fprintf(os.Stderr, "choose: %v\n", err)
		return 1
	}
	fmt.Printf("[choose report written to %s]\n", out)
	appendStepSummary(chooseSummaryLine(rep))
	if baseline == "" {
		return 0
	}
	base, err := benchharness.ReadChooseJSON(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "choose: %v\n", err)
		return 1
	}
	regressions, err := benchharness.ChooseCompare(rep, base, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "choose: %v\n", err)
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "choose: %d regression(s) vs %s:\n", len(regressions), baseline)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("[choose: no regressions vs %s at tolerance %.0f%%]\n", baseline, 100*tolerance)
	return 0
}

// chooseSummaryLine renders the one-line markdown result for the CI job
// summary: ops/s and tail latency per variant plus the cache speedup.
func chooseSummaryLine(rep *benchharness.ChooseReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**choose** pairs=%d goroutines=%d GOMAXPROCS=%d:", rep.Pairs, rep.Goroutines, rep.GOMAXPROCS)
	for _, v := range rep.Variants {
		fmt.Fprintf(&sb, " %s=%.2fM ops/s (p50=%s p99=%s p99.9=%s)", v.Variant, v.OpsPerSec/1e6,
			time.Duration(v.P50Ns), time.Duration(v.P99Ns), time.Duration(v.P999Ns))
	}
	fmt.Fprintf(&sb, " cache speedup %.1fx", rep.CacheSpeedup)
	return sb.String()
}

// runBench drives the benchmark-regression harness.
func runBench(seed uint64, calls int, modes, out, baseline string, tolerance float64, note string) int {
	var modeList []string
	for _, m := range strings.Split(modes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			modeList = append(modeList, m)
		}
	}
	rep, err := benchharness.Run(benchharness.Config{
		Seed:  seed,
		Calls: calls,
		Modes: modeList,
		Note:  note,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if out == "" {
		out = benchharness.DefaultPath(seed)
	}
	if err := benchharness.WriteJSON(rep, out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("[bench report written to %s]\n", out)
	if rep.SpeedupParOverSeq > 0 {
		fmt.Printf("[bench speedup par/seq: %.2fx at GOMAXPROCS=%d]\n", rep.SpeedupParOverSeq, rep.GOMAXPROCS)
	}
	appendStepSummary(benchSummaryLine(rep))
	if baseline == "" {
		return 0
	}
	base, err := benchharness.ReadJSON(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	regressions, err := benchharness.Compare(rep, base, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) vs %s:\n", len(regressions), baseline)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("[bench: no regressions vs %s at tolerance %.0f%%]\n", baseline, 100*tolerance)
	return 0
}

// benchSummaryLine renders the one-line markdown result for the CI job
// summary: per-mode wall times plus the parallel speedup when both ran.
func benchSummaryLine(rep *benchharness.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**bench** seed=%d calls=%d GOMAXPROCS=%d:", rep.Seed, rep.Calls, rep.GOMAXPROCS)
	for _, m := range rep.Modes {
		fmt.Fprintf(&sb, " %s=%s", m.Mode, time.Duration(m.WallNs).Round(time.Millisecond))
	}
	if rep.SpeedupParOverSeq > 0 {
		fmt.Fprintf(&sb, " (par/seq %.2fx)", rep.SpeedupParOverSeq)
	}
	return sb.String()
}

// appendStepSummary appends one markdown line to the GitHub Actions job
// summary when running under CI; a no-op elsewhere.
func appendStepSummary(line string) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "step summary: %v\n", err)
		return
	}
	defer f.Close() //vialint:ignore errwrap best-effort append to the CI job summary
	if _, err := fmt.Fprintln(f, line); err != nil {
		fmt.Fprintf(os.Stderr, "step summary: %v\n", err)
	}
}

func emit(tables []*stats.Table, csv bool) {
	for _, t := range tables {
		fmt.Println(t.String())
		if csv {
			fmt.Println(t.CSV())
		}
	}
}

func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close() //vialint:ignore errwrap best-effort close of profile file on exit
	runtime.GC()    // materialize up-to-date allocation stats
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}
