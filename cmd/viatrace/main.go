// Command viatrace generates, inspects, and summarizes synthetic call
// traces — the dataset artifacts the experiments consume.
//
// Usage:
//
//	viatrace generate -calls 200000 -o trace.csv     # freeze a workload
//	viatrace stats trace.csv                         # Table 1-style summary
//	viatrace head -n 5 trace.csv                     # peek at records
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: viatrace generate|stats|head [flags] [file]")
	}
	switch os.Args[1] {
	case "generate":
		generate(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "head":
		head(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func generate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "world seed (trace seed is seed+1)")
	calls := fs.Int("calls", 200000, "number of calls")
	days := fs.Int("days", 28, "trace length in days")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	w := netsim.New(netsim.DefaultConfig(*seed))
	cfg := trace.DefaultConfig(*seed+1, *calls)
	cfg.Days = *days
	recs := trace.NewGenerator(w, cfg).GenerateSlice()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := trace.WriteCSV(dst, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d calls (%d days, seed %d)\n", len(recs), *days, *seed)
}

func load(path string) []trace.CallRecord {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		log.Fatal(err)
	}
	return recs
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "world seed the trace was generated with")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: viatrace stats [-seed N] trace.csv")
	}
	recs := load(fs.Arg(0))
	w := netsim.New(netsim.DefaultConfig(*seed))
	s := trace.Summarize(w, recs)
	fmt.Printf("calls:          %d\n", s.Calls)
	fmt.Printf("users:          %d\n", s.Users)
	fmt.Printf("ases:           %d\n", s.ASes)
	fmt.Printf("countries:      %d\n", s.Countries)
	fmt.Printf("days:           %.1f\n", s.Days)
	fmt.Printf("international:  %.1f%%\n", 100*s.International)
	fmt.Printf("inter-as:       %.1f%%\n", 100*s.InterAS)
	fmt.Printf("rated:          %.1f%%\n", 100*s.Rated)
	var pnr quality.PNR
	for _, c := range recs {
		pnr.Add(c.Metrics)
	}
	fmt.Printf("PNR rtt/loss/jitter/any: %.1f%% / %.1f%% / %.1f%% / %.1f%%\n",
		100*pnr.Rate(quality.RTT), 100*pnr.Rate(quality.Loss),
		100*pnr.Rate(quality.Jitter), 100*pnr.AtLeastOneBadRate())
}

func head(args []string) {
	fs := flag.NewFlagSet("head", flag.ExitOnError)
	n := fs.Int("n", 10, "records to print")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: viatrace head [-n N] trace.csv")
	}
	recs := load(fs.Arg(0))
	if *n > len(recs) {
		*n = len(recs)
	}
	for _, c := range recs[:*n] {
		fmt.Printf("#%d t=%.2fh %d->%d via %v rtt=%.1fms loss=%.2f%% jitter=%.1fms dur=%.0fs rating=%d\n",
			c.ID, c.THours, c.Src, c.Dst, c.Option,
			c.Metrics.RTTMs, 100*c.Metrics.LossRate, c.Metrics.JitterMs, c.Duration, c.Rating)
	}
}
