// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the reproduced table (once) and measures the time
// to regenerate it. Strategy runs are cached in a shared environment, so a
// figure that reuses an earlier counterfactual (e.g. the oracle run) is
// cheap after its first computation — exactly how the viabench CLI behaves.
//
// Environment knobs:
//
//	VIABENCH_CALLS    trace size (default 120000)
//	VIABENCH_SEED     master seed (default 1)
//	VIABENCH_FIG18    quick | full | skip (default quick)
//	VIABENCH_WORKERS  simulator strategy workers (default GOMAXPROCS)
package repro

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	benchMu   sync.Mutex
	benchEnvV *experiments.Env
	printed   = map[string]bool{}
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchEnvV == nil {
		seed := envUint("VIABENCH_SEED", 1)
		calls := envInt("VIABENCH_CALLS", 120000)
		fmt.Printf("[bench env: seed=%d calls=%d]\n", seed, calls)
		benchEnvV = experiments.NewEnv(seed, calls)
		benchEnvV.Runner.Cfg.Workers = envInt("VIABENCH_WORKERS", 0)
	}
	return benchEnvV
}

func envInt(key string, def int) int {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envUint(key string, def uint64) uint64 {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// runExperiment executes one registered experiment, printing its tables the
// first time it runs in this process.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	env := benchEnv(b)
	exp, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(env)
		b.StopTimer()
		benchMu.Lock()
		if !printed[name] {
			printed[name] = true
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
		benchMu.Unlock()
		b.StartTimer()
	}
}

func BenchmarkTable1(b *testing.B)             { runExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)               { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)               { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)               { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)               { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)               { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)               { runExperiment(b, "fig6") }
func BenchmarkFig8(b *testing.B)               { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)               { runExperiment(b, "fig9") }
func BenchmarkFig12a(b *testing.B)             { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)             { runExperiment(b, "fig12b") }
func BenchmarkOptionMix(b *testing.B)          { runExperiment(b, "mix") }
func BenchmarkFig13(b *testing.B)              { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)              { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)              { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)              { runExperiment(b, "fig16") }
func BenchmarkFig17a(b *testing.B)             { runExperiment(b, "fig17a") }
func BenchmarkFig17b(b *testing.B)             { runExperiment(b, "fig17b") }
func BenchmarkFig17c(b *testing.B)             { runExperiment(b, "fig17c") }
func BenchmarkTomographyAccuracy(b *testing.B) { runExperiment(b, "tomo") }
func BenchmarkActiveProbes(b *testing.B)       { runExperiment(b, "probes") }
func BenchmarkMOSValidation(b *testing.B)      { runExperiment(b, "mos") }
func BenchmarkMOSImprovement(b *testing.B)     { runExperiment(b, "mosgain") }
func BenchmarkCoordinates(b *testing.B)        { runExperiment(b, "coords") }
func BenchmarkDecisionCaching(b *testing.B)    { runExperiment(b, "cache") }
func BenchmarkBudgetModels(b *testing.B)       { runExperiment(b, "budgetmodels") }

// BenchmarkAllExperiments regenerates the whole evaluation with
// independent experiments fanned out concurrently — the `viabench all`
// execution shape. The environment's singleflight run cache deduplicates
// shared counterfactuals across figures, so the first iteration pays for
// every distinct strategy run and later iterations measure the cached
// path.
func BenchmarkAllExperiments(b *testing.B) {
	env := benchEnv(b)
	reg := experiments.Registry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, exp := range reg {
			wg.Add(1)
			go func(exp experiments.Experiment) {
				defer wg.Done()
				exp.Run(env)
			}(exp)
		}
		wg.Wait()
	}
}

// BenchmarkFig18 runs the real-networking deployment (§5.5). It uses real
// sockets, timers, and wall-clock pacing, so its "time/op" is dominated by
// configured link delays, not CPU.
func BenchmarkFig18(b *testing.B) {
	mode := os.Getenv("VIABENCH_FIG18")
	if mode == "skip" {
		b.Skip("VIABENCH_FIG18=skip")
	}
	cfg := experiments.QuickFig18Config()
	if mode == "full" {
		cfg = experiments.DefaultFig18Config()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig18(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		benchMu.Lock()
		if !printed["fig18"] {
			printed["fig18"] = true
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
		benchMu.Unlock()
		b.StartTimer()
	}
}
