package via_test

import (
	"fmt"

	"repro/via"
)

// Classify a call's network performance against the paper's thresholds.
func ExampleMetrics_PoorOn() {
	m := via.Metrics{RTTMs: 350, LossRate: 0.004, JitterMs: 3}
	fmt.Println("poor on RTT:", m.PoorOn(via.RTT))
	fmt.Println("poor on loss:", m.PoorOn(via.Loss))
	fmt.Println("at least one bad:", m.AtLeastOneBad())
	// Output:
	// poor on RTT: true
	// poor on loss: false
	// at least one bad: true
}

// Relaying options are direct, bounce (one relay), or transit (a relay
// pair crossing the private backbone).
func ExampleTransitOption() {
	direct := via.DirectOption()
	bounce := via.BounceOption(3)
	transit := via.TransitOption(3, 7)
	fmt.Println(direct, direct.IsRelayed())
	fmt.Println(bounce, bounce.IsRelayed())
	fmt.Println(transit, transit.IsRelayed())
	// Output:
	// direct false
	// bounce(3) true
	// transit(3->7) true
}

// Reduction is the paper's relative-improvement statistic: a PNR going from
// 20% to 11% is a 45% reduction.
func ExampleReduction() {
	fmt.Printf("%.0f%%\n", via.Reduction(0.20, 0.11))
	// Output:
	// 45%
}

// The selector is driven per call: Choose picks an option, Observe feeds
// the measured outcome back. With no history and no exploration it stays on
// the default path.
func ExampleNewSelector() {
	cfg := via.DefaultSelectorConfig(via.RTT)
	cfg.Epsilon = 0 // deterministic for the example
	s := via.NewSelector(cfg, nil)

	call := via.Call{Src: 1, Dst: 2, THours: 0.5}
	cands := []via.Option{via.DirectOption(), via.BounceOption(0)}
	opt := s.Choose(call, cands)
	fmt.Println("cold start:", opt)

	s.Observe(call, opt, via.Metrics{RTTMs: 250, LossRate: 0.01, JitterMs: 8})
	// Output:
	// cold start: direct
}
