package via

import (
	"repro/internal/experiments"
	"repro/internal/stats"
)

// ExperimentEnv is a shared environment (world + trace + simulator + run
// cache) for regenerating the paper's tables and figures.
type ExperimentEnv = experiments.Env

// ResultTable is an aligned text table (with CSV rendering) holding one
// reproduced figure or table.
type ResultTable = stats.Table

// NewExperimentEnv builds an experiment environment at the given workload
// scale.
func NewExperimentEnv(seed uint64, calls int) *ExperimentEnv {
	return experiments.NewEnv(seed, calls)
}

// Experiments lists the available trace-driven experiment names in paper
// order (table1, fig1..fig17c, mix, tomo).
func Experiments() []string {
	var names []string
	for _, e := range experiments.Registry() {
		names = append(names, e.Name)
	}
	return names
}

// RunExperiment regenerates one table/figure by name against an
// environment. Fig 18 (the real-networking deployment) is run separately
// via RunDeploymentExperiment.
func RunExperiment(env *ExperimentEnv, name string) ([]*ResultTable, error) {
	exp, err := experiments.Lookup(name)
	if err != nil {
		return nil, err
	}
	return exp.Run(env), nil
}

// DeploymentScale selects the size of the §5.5 deployment experiment.
type DeploymentScale int

// Deployment scales.
const (
	// DeploymentQuick is a CI-friendly smoke scale.
	DeploymentQuick DeploymentScale = iota
	// DeploymentFull mirrors the paper's 18-pair deployment.
	DeploymentFull
)

// RunDeploymentExperiment runs the §5.5 controlled deployment (Fig. 18) on
// loopback with real sockets and returns its result table.
//
//vialint:ignore dettaint live-by-design: wraps experiments.Fig18, a real loopback deployment on the wall clock
func RunDeploymentExperiment(scale DeploymentScale) ([]*ResultTable, error) {
	cfg := experiments.QuickFig18Config()
	if scale == DeploymentFull {
		cfg = experiments.DefaultFig18Config()
	}
	return experiments.Fig18(cfg)
}
