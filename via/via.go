// Package via is the public API of the Via reproduction — the predictive
// relay selection system of "Via: Improving Internet Telephony Call Quality
// Using Predictive Relay Selection" (SIGCOMM 2016).
//
// The package exposes four layers:
//
//   - The world model and workload: a synthetic Internet (ASes, managed
//     relays, path dynamics) and a call-trace generator standing in for the
//     paper's Skype dataset. See NewWorld and GenerateTrace.
//
//   - Relay selection: the Via algorithm (tomography-expanded prediction,
//     confidence-interval top-k pruning, modified UCB1
//     exploration-exploitation, budgeted relaying) plus the paper's
//     baselines. See NewSelector, NewOracle, NewDefault, NewPredictOnly,
//     NewExploreOnly.
//
//   - Trace-driven simulation (§5.1): replay a trace against strategies and
//     account PNR, percentiles, and option mix. See NewSimulator.
//
//   - A real-networking testbed (§5.5): controller, relay nodes, and call
//     agents over UDP with WAN impairment on loopback. See the testbed
//     command binaries (cmd/viactl, cmd/viarelay, cmd/viaclient) and
//     internal/testbed for in-process orchestration.
//
// The experiment harness that regenerates every table and figure of the
// paper is available via RunExperiment and the cmd/viabench binary.
package via

import (
	"io"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Core data types, re-exported for API clients.
type (
	// World is the synthetic Internet model: ASes, relays, ground-truth
	// path performance with temporal dynamics.
	World = netsim.World
	// WorldConfig parameterizes world construction.
	WorldConfig = netsim.Config
	// ASID identifies an autonomous system.
	ASID = netsim.ASID
	// RelayID identifies a managed relay.
	RelayID = netsim.RelayID
	// Option is a relaying option: direct, bounce, or transit.
	Option = netsim.Option
	// Metrics is the per-call average (RTT, loss rate, jitter) triple.
	Metrics = quality.Metrics
	// Metric selects one of the three network metrics.
	Metric = quality.Metric
	// PNR accumulates the Poor Network Rate over calls.
	PNR = quality.PNR
	// CallRecord is one call in a workload trace.
	CallRecord = trace.CallRecord
	// TraceConfig parameterizes workload generation.
	TraceConfig = trace.Config
	// Strategy assigns relaying options to calls and learns from outcomes.
	Strategy = core.Strategy
	// Call is the per-call context passed to strategies.
	Call = core.Call
	// SelectorConfig tunes the Via strategy.
	SelectorConfig = core.ViaConfig
	// Selector is the full Via relay-selection strategy.
	Selector = core.Via
	// Prediction is a per-option performance estimate with confidence.
	Prediction = core.Prediction
	// SimulatorConfig tunes trace-driven simulation.
	SimulatorConfig = sim.Config
	// Simulator replays traces against strategies (§5.1 methodology).
	Simulator = sim.Runner
	// Result aggregates one strategy's simulated outcomes.
	Result = sim.Result
	// BackboneSource supplies inter-relay telemetry to the predictor.
	BackboneSource = core.BackboneSource
	// Cached is a strategy wrapper with a per-pair decision cache (§7).
	Cached = core.Cached
)

// Metric identifiers.
const (
	RTT    = quality.RTT
	Loss   = quality.Loss
	Jitter = quality.Jitter
)

// Poor-performance thresholds (§2.2).
const (
	PoorRTTMs    = quality.PoorRTTMs
	PoorLossRate = quality.PoorLossRate
	PoorJitterMs = quality.PoorJitterMs
)

// DirectOption returns the default-path option.
func DirectOption() Option { return netsim.DirectOption() }

// BounceOption returns a single-relay option.
func BounceOption(r RelayID) Option { return netsim.BounceOption(r) }

// TransitOption returns an ingress/egress relay-pair option.
func TransitOption(in, out RelayID) Option { return netsim.TransitOption(in, out) }

// NewWorld builds the standard synthetic Internet (150 ASes across 36
// countries, 24 relays) from a seed.
func NewWorld(seed uint64) *World {
	return netsim.New(netsim.DefaultConfig(seed))
}

// NewWorldWithConfig builds a world from an explicit configuration.
func NewWorldWithConfig(cfg WorldConfig) *World { return netsim.New(cfg) }

// DefaultWorldConfig returns the standard world configuration.
func DefaultWorldConfig(seed uint64) WorldConfig { return netsim.DefaultConfig(seed) }

// GenerateTrace produces a chronological synthetic call trace with the
// paper's workload composition (46.6% international, 80.7% inter-AS,
// Zipf-skewed pair volume) over 28 days.
func GenerateTrace(w *World, seed uint64, calls int) []CallRecord {
	return trace.NewGenerator(w, trace.DefaultConfig(seed, calls)).GenerateSlice()
}

// GenerateTraceWithConfig produces a trace from an explicit configuration.
func GenerateTraceWithConfig(w *World, cfg TraceConfig) []CallRecord {
	return trace.NewGenerator(w, cfg).GenerateSlice()
}

// DefaultTraceConfig returns the standard workload configuration.
func DefaultTraceConfig(seed uint64, calls int) TraceConfig {
	return trace.DefaultConfig(seed, calls)
}

// WriteTraceCSV freezes a trace as a CSV dataset artifact.
func WriteTraceCSV(w io.Writer, recs []CallRecord) error {
	return trace.WriteCSV(w, recs)
}

// ReadTraceCSV loads a trace written by WriteTraceCSV, validating record
// invariants.
func ReadTraceCSV(r io.Reader) ([]CallRecord, error) {
	return trace.ReadCSV(r)
}

// DefaultSelectorConfig returns the evaluated Via operating point for a
// target metric.
func DefaultSelectorConfig(m Metric) SelectorConfig { return core.DefaultViaConfig(m) }

// NewSelector builds the full Via strategy. bb supplies inter-relay
// telemetry (a *World works; nil makes backbone links tomography unknowns).
func NewSelector(cfg SelectorConfig, bb BackboneSource) *Selector {
	return core.NewVia(cfg, bb)
}

// NewDefault returns the always-direct baseline strategy.
func NewDefault() Strategy { return core.DefaultStrategy{} }

// NewOracle returns the benefit-of-foresight baseline (§3.2).
func NewOracle(w *World, m Metric) Strategy { return core.NewOracle(w, m) }

// NewBudgetedOracle returns an oracle limited to relaying a fraction of
// calls, preferring those with the largest true benefit.
func NewBudgetedOracle(w *World, m Metric, budget float64) Strategy {
	return core.NewBudgetedOracle(w, m, budget)
}

// NewPredictOnly returns Strawman I: pure history-based prediction.
func NewPredictOnly(m Metric, bb BackboneSource) Strategy {
	return core.NewPredictOnly(m, bb)
}

// NewExploreOnly returns Strawman II: ε-greedy exploration with no
// prediction or pruning.
func NewExploreOnly(m Metric, epsilon float64, seed uint64) Strategy {
	return core.NewExploreOnly(m, epsilon, seed)
}

// NewSharded partitions calls across n independent strategy instances by
// pair hash — the C3-style split-control scaling of §7. The factory is
// invoked once per shard.
func NewSharded(n int, factory func(shard int) Strategy) Strategy {
	return core.NewSharded(n, factory)
}

// NewCached wraps a strategy with a per-pair decision cache (TTL in hours):
// the §7 client-side caching that trades decision staleness for controller
// load. Entries are also invalidated early when a report for their pair is
// applied (epoch invalidation), so the cache is at most one report stale.
func NewCached(inner Strategy, ttlHours float64) *core.Cached {
	return core.NewCached(inner, ttlHours)
}

// NewCachedBounded is NewCached with an explicit bound on the number of
// cached pairs (full shards evict expired entries first, then the
// nearest-expiry decision).
func NewCachedBounded(inner Strategy, ttlHours float64, maxPairs int) *core.Cached {
	return core.NewCachedBounded(inner, ttlHours, maxPairs)
}

// NewSimulator builds the §5.1 trace-driven simulator for a world.
func NewSimulator(w *World, cfg SimulatorConfig) *Simulator {
	return sim.NewRunner(w, cfg)
}

// DefaultSimulatorConfig returns the evaluation methodology's parameters
// (eligibility filters, seeded connectivity-relay fraction).
func DefaultSimulatorConfig(seed uint64) SimulatorConfig {
	return sim.DefaultConfig(seed)
}

// Reduction returns the paper's relative improvement, 100·(b−a)/b.
func Reduction(baseline, treated float64) float64 {
	return quality.RelativeImprovement(baseline, treated)
}

// Quantile returns the q-th quantile of xs (q in [0,1]).
func Quantile(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }
