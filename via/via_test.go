package via_test

import (
	"testing"

	"repro/via"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build a world, generate a trace,
	// run Via against the default strategy, and confirm an improvement.
	w := via.NewWorld(1)
	recs := via.GenerateTrace(w, 2, 30000)
	simr := via.NewSimulator(w, via.DefaultSimulatorConfig(3))
	simr.Prepare(recs)

	def := simr.RunOne(via.NewDefault(), recs)
	sel := via.NewSelector(via.DefaultSelectorConfig(via.RTT), w)
	got := simr.RunOne(sel, recs)

	if def.Eligible == 0 || got.Eligible != def.Eligible {
		t.Fatalf("eligible mismatch: %d vs %d", def.Eligible, got.Eligible)
	}
	red := via.Reduction(def.PNR.AtLeastOneBadRate(), got.PNR.AtLeastOneBadRate())
	if red <= 0 {
		t.Errorf("via did not improve PNR (reduction %.1f%%)", red)
	}
}

func TestOptionConstructors(t *testing.T) {
	if via.DirectOption().IsRelayed() {
		t.Error("direct is relayed")
	}
	if !via.BounceOption(3).IsRelayed() || !via.TransitOption(1, 2).IsRelayed() {
		t.Error("relay options not relayed")
	}
}

func TestThresholdConstants(t *testing.T) {
	if via.PoorRTTMs != 320 || via.PoorLossRate != 0.012 || via.PoorJitterMs != 12 {
		t.Error("thresholds drifted from the paper")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := via.Metrics{RTTMs: 400, LossRate: 0.001, JitterMs: 1}
	if !m.PoorOn(via.RTT) || m.PoorOn(via.Loss) {
		t.Error("PoorOn broken through the facade")
	}
	if got := via.Quantile([]float64{1, 2, 3}, 0.5); got != 2 {
		t.Errorf("Quantile = %v", got)
	}
	if got := via.Reduction(0.2, 0.1); got != 50 {
		t.Errorf("Reduction = %v", got)
	}
}

func TestBaselineConstructors(t *testing.T) {
	w := via.NewWorld(1)
	for _, s := range []via.Strategy{
		via.NewDefault(),
		via.NewOracle(w, via.Loss),
		via.NewBudgetedOracle(w, via.Loss, 0.3),
		via.NewPredictOnly(via.Jitter, w),
		via.NewExploreOnly(via.RTT, 0.1, 4),
	} {
		if s.Name() == "" {
			t.Error("strategy without a name")
		}
		opt := s.Choose(via.Call{Src: 0, Dst: 10, THours: 1}, []via.Option{via.DirectOption()})
		if opt != via.DirectOption() {
			t.Errorf("%s chose %v from a direct-only candidate set", s.Name(), opt)
		}
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	names := via.Experiments()
	if len(names) < 15 {
		t.Fatalf("only %d experiments", len(names))
	}
	env := via.NewExperimentEnv(1, 20000)
	tables, err := via.RunExperiment(env, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].String() == "" {
		t.Error("empty experiment output")
	}
	if _, err := via.RunExperiment(env, "not-an-experiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScalingWrappersThroughFacade(t *testing.T) {
	s := via.NewSharded(4, func(shard int) via.Strategy {
		cfg := via.DefaultSelectorConfig(via.RTT)
		cfg.Seed = uint64(shard + 1)
		return via.NewSelector(cfg, nil)
	})
	cached := via.NewCached(s, 2)
	call := via.Call{Src: 1, Dst: 2, THours: 0.1}
	cands := []via.Option{via.DirectOption(), via.BounceOption(1)}
	opt1 := cached.Choose(call, cands)
	call.THours = 0.5
	opt2 := cached.Choose(call, cands)
	if opt1 != opt2 {
		t.Errorf("cached decision changed within TTL: %v vs %v", opt1, opt2)
	}
	if cached.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", cached.HitRate())
	}
	cached.Observe(call, opt2, via.Metrics{RTTMs: 100})
}
