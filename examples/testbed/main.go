// Testbed reproduces the §5.5 controlled deployment on loopback: a real
// controller (HTTP), real relay nodes and call agents (UDP), media streams
// with RFC 3550 measurement, and WAN impairment standing in for the
// Internet. It prints the Fig. 18 suboptimality summary.
package main

import (
	"flag"
	"fmt"

	"repro/via"
)

func main() {
	full := flag.Bool("full", false, "run the full 18-pair deployment (slower)")
	flag.Parse()

	scale := via.DeploymentQuick
	if *full {
		scale = via.DeploymentFull
		fmt.Println("Running the full 18-pair deployment; this takes a few minutes...")
	} else {
		fmt.Println("Running the quick deployment (use -full for the paper-scale run)...")
	}
	tables, err := via.RunDeploymentExperiment(scale)
	if err != nil {
		panic(err)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
}
