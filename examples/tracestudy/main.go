// Tracestudy reruns the paper's §2 measurement study on a synthetic trace:
// how network performance relates to user experience (Fig. 1), how much of
// the call population is beyond the poor-performance thresholds (Fig. 2),
// and how poor performance splits across call classes (Fig. 4).
package main

import (
	"flag"
	"fmt"

	"repro/via"
)

func main() {
	seed := flag.Uint64("seed", 1, "environment seed")
	calls := flag.Int("calls", 100000, "calls in the trace")
	flag.Parse()

	env := via.NewExperimentEnv(*seed, *calls)
	for _, name := range []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6"} {
		tables, err := via.RunExperiment(env, name)
		if err != nil {
			panic(err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}
