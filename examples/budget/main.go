// Budget demonstrates §4.6: relaying under a budget. Budget-aware Via
// relays a call only when its predicted benefit is within the top
// B-percentile of historical benefits; budget-unaware Via relays
// first-come-first-served until the cap. The aware variant gets most of the
// benefit at a fraction of the budget.
package main

import (
	"flag"
	"fmt"

	"repro/via"
)

func main() {
	seed := flag.Uint64("seed", 1, "environment seed")
	calls := flag.Int("calls", 80000, "calls in the trace")
	flag.Parse()

	world := via.NewWorld(*seed)
	trace := via.GenerateTrace(world, *seed+1, *calls)
	simr := via.NewSimulator(world, via.DefaultSimulatorConfig(*seed+2))
	simr.Prepare(trace)

	def := simr.RunOne(via.NewDefault(), trace)
	base := def.PNR.AtLeastOneBadRate()
	fmt.Printf("default: at-least-one-bad PNR %.2f%%\n\n", 100*base)

	fmt.Printf("%-8s %22s %22s\n", "budget", "budget-aware", "budget-unaware")
	fmt.Printf("%-8s %10s %11s %10s %11s\n", "", "PNR red.", "relayed", "PNR red.", "relayed")
	for _, b := range []float64{0.1, 0.2, 0.3, 0.5, 1.0} {
		row := fmt.Sprintf("%-8.0f%%", b*100)
		for _, aware := range []bool{true, false} {
			cfg := via.DefaultSelectorConfig(via.RTT)
			cfg.Budget = b
			cfg.BudgetAware = aware
			res := simr.RunOne(via.NewSelector(cfg, world), trace)
			row += fmt.Sprintf(" %9.1f%% %10.1f%%",
				via.Reduction(base, res.PNR.AtLeastOneBadRate()),
				100*res.RelayedFraction())
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe paper's Fig 16: budget-aware reaches about half the full benefit")
	fmt.Println("with only 30% of calls relayed, and dominates budget-unaware throughout.")
}
