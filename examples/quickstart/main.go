// Quickstart: build a synthetic Internet, generate a month of calls, and
// compare Via's predictive relay selection against always-direct routing
// and the oracle.
package main

import (
	"flag"
	"fmt"

	"repro/via"
)

func main() {
	seed := flag.Uint64("seed", 1, "world seed")
	calls := flag.Int("calls", 80000, "calls in the trace")
	flag.Parse()

	fmt.Println("Building world (150 ASes, 24 managed relays)...")
	world := via.NewWorld(*seed)
	trace := via.GenerateTrace(world, *seed+1, *calls)
	fmt.Printf("Generated %d calls over 28 days\n\n", len(trace))

	simr := via.NewSimulator(world, via.DefaultSimulatorConfig(*seed+2))
	simr.Prepare(trace)

	strategies := []via.Strategy{
		via.NewDefault(),
		via.NewSelector(via.DefaultSelectorConfig(via.RTT), world),
		via.NewOracle(world, via.RTT),
	}

	var baseline float64
	fmt.Printf("%-10s %10s %10s %10s %14s %10s\n",
		"strategy", "PNR(rtt)", "PNR(loss)", "PNR(jit)", "PNR(any-bad)", "relayed")
	for _, s := range strategies {
		res := simr.RunOne(s, trace)
		any := res.PNR.AtLeastOneBadRate()
		if s.Name() == "default" {
			baseline = any
		}
		fmt.Printf("%-10s %9.2f%% %9.2f%% %9.2f%% %13.2f%% %9.1f%%\n",
			s.Name(),
			100*res.PNR.Rate(via.RTT),
			100*res.PNR.Rate(via.Loss),
			100*res.PNR.Rate(via.Jitter),
			100*any,
			100*res.RelayedFraction())
		if s.Name() != "default" {
			fmt.Printf("%-10s reduces at-least-one-bad PNR by %.1f%% vs default\n",
				s.Name(), via.Reduction(baseline, any))
		}
	}
}
