# Verification entry points. `make verify` is the tier-1 gate: build,
# vet, full tests, and the race detector (the testbed is heavily
# concurrent — controller HTTP handlers, relay forwarders, shapers, and
# fault injection all share state).

GO ?= go

# Benchmark-regression knobs (see README "Benchmarking & profiling").
BENCH_SEED ?= 1
BENCH_CALLS ?= 120000
VIABENCH_CALLS ?= 20000

# Fuzz session length (CI uses a ~20s smoke; longer locally finds more).
FUZZTIME ?= 30s

# Coverage gate: `make cover` fails if total statement coverage over the
# internal packages drops below this floor (baseline at the gate's
# introduction: 77.7%).
COVER_FLOOR ?= 75.0

# Extra vialint flags (CI passes -github for inline PR annotations;
# -timings prints load + per-analyzer wall time to stderr).
VIALINT_FLAGS ?=

.PHONY: verify build vet lint lint-fast test race short fuzz chaos chaos-ha chaos-repair soak loss-sweep bench bench-json bench-choose bench-smoke choose-smoke cover

verify: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (cmd/vialint): determinism + dettaint (no
# wall clock / global rand / map-order output, intra- and inter-
# procedurally), lockcheck (`// guarded by <mu>` annotations), errwrap
# (%w + justified error discards), ctxtimeout (HTTP clients/dialers carry
# deadlines), deadstore, noalloc (`//via:noalloc` hot paths verified by
# escape analysis), walcompat (`//via:walrecord` schema evolution vs
# committed goldens), metricshygiene (metric naming/labels/registration).
# See DESIGN.md §9 and §14. The go-list result is cached under .cache/
# keyed on a source stamp, so a no-change rerun skips the load phase.
lint:
	$(GO) run ./cmd/vialint -listcache .cache/vialint-list.json $(VIALINT_FLAGS) ./...

# Changed-packages lint: only packages with Go files touched since HEAD
# (staged, unstaged, or untracked). Dependencies still load for facts, so
# interprocedural analyzers stay sound on the narrowed pattern set.
lint-fast:
	@changed=$$( (git diff --name-only HEAD -- '*.go'; git ls-files --others --exclude-standard -- '*.go') | grep -v '/testdata/' | sort -u ); \
	pkgs=$$(for f in $$changed; do [ -f "$$f" ] && dirname "$$f"; done | sort -u | sed 's|^|./|'); \
	if [ -z "$$pkgs" ]; then echo "lint-fast: no changed Go files"; \
	else echo "lint-fast: $$pkgs"; $(GO) run ./cmd/vialint -listcache .cache/vialint-list.json $(VIALINT_FLAGS) $$pkgs; fi

# Same analyzers through the go vet driver (exercises the vettool path).
lint-vet:
	$(GO) build -o bin/vialint ./cmd/vialint
	$(GO) vet -vettool=bin/vialint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast subset: skips the slow end-to-end deployment and chaos runs.
short:
	$(GO) test -short ./...

# Short fuzz sessions over the byte-level decoders fed by crash-recovery
# and the wire: the media frame, the WAL frame, and the loss-repair
# payloads (FEC parity packets and NACK requests).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFrameUnmarshal -fuzztime=$(FUZZTIME) ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzFrameV3Unmarshal -fuzztime=$(FUZZTIME) ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzPathChallengeParse -fuzztime=$(FUZZTIME) ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run=NONE -fuzz=FuzzFECDecode -fuzztime=$(FUZZTIME) ./internal/rtp/
	$(GO) test -run=NONE -fuzz=FuzzNACKParse -fuzztime=$(FUZZTIME) ./internal/rtp/

# Coverage with a floor: writes coverage.out (CI archives it) and fails
# below COVER_FLOOR percent total statement coverage.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

# Smoke-scale fault-injection benchmark.
chaos:
	$(GO) run ./cmd/viabench -quick chaos

# Durable-controller variant: same scenario plus an abrupt controller
# crash and a WAL-recovery restart mid-run.
chaos-ha:
	$(GO) run ./cmd/viabench -quick -waldir $$(mktemp -d) chaos

# Chaos with burst loss on every media segment and NACK repair on every
# call: the repair counters in the report must move.
chaos-repair:
	$(GO) run ./cmd/viabench -quick -repair nack chaos

# Shard-chaos soak: zipf load over a live multi-shard consistent-hash
# ring while shard 0's primary is killed, its warm standby promoted, and
# the ring grown by one shard mid-run (DESIGN.md §16). Gates on zero
# dropped decisions, the fault plan completing, and bit-identical
# per-shard WAL replay; writes the machine-readable report and the final
# metrics snapshot for CI artifact upload. SOAK_CALLS=24000 is the
# nightly 10× scale.
SOAK_CALLS ?= 2400
soak:
	$(GO) run ./cmd/viabench -soak-calls $(SOAK_CALLS) \
		-soakout soak-report.json -metricsout soak-metrics.json soak

# Loss-repair sweep: residual loss / MOS / overhead per (regime, scheme)
# plus the per-regime repair bandit's learned choices.
loss-sweep:
	$(GO) run ./cmd/viabench losssweep

# Go benchmark suite (per-figure testing.B benchmarks).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Benchmark-regression harness: replays the experiment suite sequentially
# (per-experiment ns/op + allocs/op) and in parallel (suite wall clock /
# speedup), then writes BENCH_$(BENCH_SEED).json. Commit the refreshed
# baseline when a perf change lands.
bench-json:
	$(GO) run ./cmd/viabench -seed $(BENCH_SEED) -calls $(BENCH_CALLS) bench

# Choose-throughput harness: zipf-skewed pair population hammering
# Choose at N goroutines, uncached and cache-wrapped, writing
# BENCH_2.json. Commit the refreshed baseline when the hot path changes.
bench-choose:
	$(GO) run ./cmd/viabench choose

# CI gate: small-scale sequential pass compared against the committed
# BENCH_ci.json baseline; fails on >25% regression in allocs/op or in an
# experiment's normalized share of suite wall time.
bench-smoke:
	$(GO) run ./cmd/viabench -seed 1 -calls $(VIABENCH_CALLS) -modes seq \
		-benchout bench-ci-current.json -baseline BENCH_ci.json -tolerance 0.25 bench

# CI gate for the decision hot path: a reduced choose run compared
# against the committed BENCH_2.json on the machine-independent
# invariants (cached allocs/op, hit rate, cached/uncached speedup).
choose-smoke:
	$(GO) run ./cmd/viabench -choose-ops 400000 \
		-benchout choose-ci-current.json -baseline BENCH_2.json -tolerance 0.25 choose
