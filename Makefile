# Verification entry points. `make verify` is the tier-1 gate: build,
# vet, full tests, and the race detector (the testbed is heavily
# concurrent — controller HTTP handlers, relay forwarders, shapers, and
# fault injection all share state).

GO ?= go

.PHONY: verify build vet lint test race short fuzz chaos

verify: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (cmd/vialint): determinism (no wall clock /
# global rand in simulation packages), lockcheck (`// guarded by <mu>`
# annotations), errwrap (%w + justified error discards), ctxtimeout
# (HTTP clients/dialers carry deadlines), deadstore. See DESIGN.md §9.
lint:
	$(GO) run ./cmd/vialint ./...

# Same analyzers through the go vet driver (exercises the vettool path).
lint-vet:
	$(GO) build -o bin/vialint ./cmd/vialint
	$(GO) vet -vettool=bin/vialint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast subset: skips the slow end-to-end deployment and chaos runs.
short:
	$(GO) test -short ./...

# Short fuzz session over the wire-format decoder.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFrameUnmarshal -fuzztime=30s ./internal/transport/

# Smoke-scale fault-injection benchmark.
chaos:
	$(GO) run ./cmd/viabench -quick chaos
