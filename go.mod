module repro

go 1.22

// cmd/vialint deliberately does NOT import golang.org/x/tools: the build
// image is offline, so internal/analysis ships a minimal stdlib-only
// driver (go list -export + go/importer) and speaks go vet's vettool
// protocol itself. The version below pins the x/tools release the
// analyzers are API-compatible with (framework.Analyzer/Pass mirror
// analysis.Analyzer/Pass), so a future migration is a mechanical swap.
// Nothing imports it, so the module is never fetched (pruned graph).
require golang.org/x/tools v0.24.0
