package quality

import "testing"

func TestResidualLearnerFallsBackToIdentity(t *testing.T) {
	rl := NewResidualLearner()
	if got := rl.Residual("nack", 0.08); got != 0.08 {
		t.Errorf("unlearned residual = %v, want identity 0.08", got)
	}
	if got := rl.Samples("nack", 0.08); got != 0 {
		t.Errorf("samples = %d, want 0", got)
	}
}

func TestResidualLearnerBinsBySchemeAndLoss(t *testing.T) {
	rl := NewResidualLearner()
	// nack at low loss repairs almost everything; at high loss it doesn't.
	for i := 0; i < 10; i++ {
		rl.Observe("nack", 0.01, 0.001)
		rl.Observe("nack", 0.30, 0.15)
		rl.Observe("none", 0.01, 0.01)
	}
	if got := rl.Residual("nack", 0.015); got > 0.005 {
		t.Errorf("nack low-loss residual = %v, want ~0.001", got)
	}
	if got := rl.Residual("nack", 0.25); got < 0.1 {
		t.Errorf("nack high-loss residual = %v, want ~0.15", got)
	}
	if got := rl.Residual("none", 0.015); got < 0.008 || got > 0.012 {
		t.Errorf("none residual = %v, want ~0.01", got)
	}
	// A bin with no samples for a known scheme still falls back.
	if got := rl.Residual("nack", 0.07); got != 0.07 {
		t.Errorf("empty-bin residual = %v, want identity", got)
	}
	if got := rl.Samples("nack", 0.01); got != 10 {
		t.Errorf("samples = %d, want 10", got)
	}
}

func TestMOSAfterRepairImproves(t *testing.T) {
	rl := NewResidualLearner()
	for i := 0; i < 5; i++ {
		rl.Observe("fec-4", 0.08, 0.005)
	}
	cfg := DefaultEModel()
	m := Metrics{RTTMs: 80, LossRate: 0.08, JitterMs: 4}
	raw := cfg.MOS(m)
	repaired := rl.MOSAfterRepair(cfg, "fec-4", m)
	if repaired <= raw {
		t.Errorf("post-repair MOS %v not better than raw %v", repaired, raw)
	}
	// Unlearned scheme scores exactly the raw MOS.
	if got := rl.MOSAfterRepair(cfg, "red", m); got != raw {
		t.Errorf("unlearned scheme MOS = %v, want raw %v", got, raw)
	}
}

func TestResidualLearnerClamps(t *testing.T) {
	rl := NewResidualLearner()
	rl.Observe("none", -0.5, 2.0)
	if got := rl.Residual("none", -1); got != 1 {
		t.Errorf("clamped residual = %v, want 1", got)
	}
}
