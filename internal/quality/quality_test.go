package quality

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThresholds(t *testing.T) {
	if Threshold(RTT) != 320 || Threshold(Loss) != 0.012 || Threshold(Jitter) != 12 {
		t.Error("thresholds do not match the paper (§2.2)")
	}
}

func TestMetricString(t *testing.T) {
	if RTT.String() != "rtt" || Loss.String() != "loss" || Jitter.String() != "jitter" {
		t.Error("metric names wrong")
	}
	if Metric(99).String() != "metric(99)" {
		t.Error("unknown metric string")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	var q Metrics
	for i, m := range AllMetrics() {
		v := float64(i+1) * 1.5
		q.Set(m, v)
		if q.Get(m) != v {
			t.Errorf("%v: get/set mismatch", m)
		}
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get(unknown) should panic")
		}
	}()
	Metrics{}.Get(NumMetrics)
}

func TestPoorOn(t *testing.T) {
	cases := []struct {
		q    Metrics
		m    Metric
		want bool
	}{
		{Metrics{RTTMs: 319.9}, RTT, false},
		{Metrics{RTTMs: 320}, RTT, true}, // threshold is inclusive
		{Metrics{LossRate: 0.0119}, Loss, false},
		{Metrics{LossRate: 0.012}, Loss, true},
		{Metrics{JitterMs: 11.9}, Jitter, false},
		{Metrics{JitterMs: 12}, Jitter, true},
	}
	for _, c := range cases {
		if got := c.q.PoorOn(c.m); got != c.want {
			t.Errorf("PoorOn(%+v, %v) = %v", c.q, c.m, got)
		}
	}
}

func TestAtLeastOneBad(t *testing.T) {
	if (Metrics{RTTMs: 100, LossRate: 0.001, JitterMs: 3}).AtLeastOneBad() {
		t.Error("good call flagged bad")
	}
	if !(Metrics{RTTMs: 100, LossRate: 0.02, JitterMs: 3}).AtLeastOneBad() {
		t.Error("lossy call not flagged")
	}
}

func TestValid(t *testing.T) {
	good := Metrics{RTTMs: 100, LossRate: 0.01, JitterMs: 5}
	if !good.Valid() {
		t.Error("valid metrics rejected")
	}
	bad := []Metrics{
		{RTTMs: -1},
		{LossRate: 1.5},
		{JitterMs: math.NaN()},
		{RTTMs: math.Inf(1)},
	}
	for _, q := range bad {
		if q.Valid() {
			t.Errorf("invalid metrics accepted: %+v", q)
		}
	}
}

func TestPNRAccounting(t *testing.T) {
	var p PNR
	p.Add(Metrics{RTTMs: 400, LossRate: 0.001, JitterMs: 1}) // poor rtt only
	p.Add(Metrics{RTTMs: 100, LossRate: 0.05, JitterMs: 20}) // poor loss+jitter
	p.Add(Metrics{RTTMs: 100, LossRate: 0.001, JitterMs: 1}) // good
	p.Add(Metrics{RTTMs: 100, LossRate: 0.001, JitterMs: 1}) // good
	if p.Total != 4 {
		t.Fatalf("total = %d", p.Total)
	}
	if got := p.Rate(RTT); got != 0.25 {
		t.Errorf("PNR(rtt) = %v", got)
	}
	if got := p.Rate(Loss); got != 0.25 {
		t.Errorf("PNR(loss) = %v", got)
	}
	if got := p.Rate(Jitter); got != 0.25 {
		t.Errorf("PNR(jitter) = %v", got)
	}
	if got := p.AtLeastOneBadRate(); got != 0.5 {
		t.Errorf("at-least-one-bad = %v", got)
	}
}

func TestPNRMerge(t *testing.T) {
	var a, b PNR
	a.Add(Metrics{RTTMs: 400})
	b.Add(Metrics{LossRate: 0.02})
	b.Add(Metrics{})
	a.Merge(b)
	if a.Total != 3 || a.Poor[RTT] != 1 || a.Poor[Loss] != 1 || a.AnyuB != 2 {
		t.Errorf("merged = %+v", a)
	}
}

func TestPNREmpty(t *testing.T) {
	var p PNR
	if p.Rate(RTT) != 0 || p.AtLeastOneBadRate() != 0 {
		t.Error("empty PNR should report 0")
	}
}

func TestRelativeImprovement(t *testing.T) {
	if got := RelativeImprovement(0.2, 0.1); !almostEq(got, 50, 1e-9) {
		t.Errorf("improvement = %v, want 50", got)
	}
	if got := RelativeImprovement(0.2, 0.2); got != 0 {
		t.Errorf("no change = %v", got)
	}
	if got := RelativeImprovement(0, 0.1); got != 0 {
		t.Errorf("zero baseline = %v", got)
	}
	if got := RelativeImprovement(0.1, 0.2); got >= 0 {
		t.Errorf("worsening should be negative: %v", got)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEModelPerfectNetwork(t *testing.T) {
	c := DefaultEModel()
	mos := c.MOS(Metrics{RTTMs: 20, LossRate: 0, JitterMs: 0})
	if mos < 3.8 {
		t.Errorf("perfect network MOS = %v, want near-toll quality", mos)
	}
}

func TestEModelDegradesWithEachMetric(t *testing.T) {
	c := DefaultEModel()
	base := Metrics{RTTMs: 100, LossRate: 0.002, JitterMs: 3}
	m0 := c.MOS(base)
	worse := []Metrics{
		{RTTMs: 500, LossRate: 0.002, JitterMs: 3},
		{RTTMs: 100, LossRate: 0.05, JitterMs: 3},
		{RTTMs: 100, LossRate: 0.002, JitterMs: 40},
	}
	for _, q := range worse {
		if got := c.MOS(q); got >= m0 {
			t.Errorf("MOS(%+v) = %v, not below baseline %v", q, got, m0)
		}
	}
}

func TestEModelMonotoneInRTT(t *testing.T) {
	c := DefaultEModel()
	prev := math.Inf(1)
	for rtt := 0.0; rtt <= 1000; rtt += 25 {
		mos := c.MOS(Metrics{RTTMs: rtt, LossRate: 0.005, JitterMs: 5})
		if mos > prev+1e-9 {
			t.Fatalf("MOS not monotone in RTT at %v ms", rtt)
		}
		prev = mos
	}
}

func TestEModelCodecDifference(t *testing.T) {
	q := Metrics{RTTMs: 150, LossRate: 0.02, JitterMs: 5}
	g711 := EModelConfig{Codec: G711, CodecDelayMs: 25, JitterBufferMs: 60}
	g729 := EModelConfig{Codec: G729a, CodecDelayMs: 25, JitterBufferMs: 60}
	// G.711 has no intrinsic impairment at zero loss; G.729a starts at 11.
	clean := Metrics{RTTMs: 50}
	if g711.MOS(clean) <= g729.MOS(clean) {
		t.Error("G.711 should beat G.729a on a clean network")
	}
	_ = q
}

func TestRToMOSBounds(t *testing.T) {
	if RToMOS(-10) != 1 {
		t.Error("R<=0 should give MOS 1")
	}
	if RToMOS(120) != 4.5 {
		t.Error("R>=100 should give MOS 4.5")
	}
	if m := RToMOS(93.2); m < 4.3 || m > 4.5 {
		t.Errorf("R=93.2 gives MOS %v, want ~4.4", m)
	}
	// Monotonicity across the valid range.
	prev := 0.0
	for r := 0.0; r <= 100; r += 2 {
		m := RToMOS(r)
		if m < prev {
			t.Fatalf("RToMOS not monotone at R=%v", r)
		}
		prev = m
	}
}

func TestRatingModelMonotone(t *testing.T) {
	rm := DefaultRatingModel()
	for _, m := range AllMetrics() {
		base := Metrics{RTTMs: 80, LossRate: 0.002, JitterMs: 2}
		prev := -1.0
		for f := 0.0; f <= 3; f += 0.25 {
			q := base
			q.Set(m, f*Threshold(m))
			p := rm.PoorProb(q)
			if p < prev {
				t.Fatalf("PoorProb not monotone in %v", m)
			}
			if p < 0 || p > 1 {
				t.Fatalf("PoorProb out of range: %v", p)
			}
			prev = p
		}
	}
}

func TestRatingModelSpread(t *testing.T) {
	rm := DefaultRatingModel()
	good := rm.PoorProb(Metrics{RTTMs: 50, LossRate: 0.001, JitterMs: 1})
	bad := rm.PoorProb(Metrics{RTTMs: 600, LossRate: 0.05, JitterMs: 30})
	if bad < 3*good {
		t.Errorf("poor-network PCR %v should be much larger than good-network %v", bad, good)
	}
	if good < rm.Base {
		t.Errorf("floor violated: %v < %v", good, rm.Base)
	}
}

func TestRateDistribution(t *testing.T) {
	rm := DefaultRatingModel()
	q := Metrics{RTTMs: 100, LossRate: 0.005, JitterMs: 4}
	var pcr PCR
	n := 20000
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		r := rm.Rate(q, u)
		if r < 1 || r > 5 {
			t.Fatalf("rating out of range: %d", r)
		}
		pcr.Add(r)
	}
	want := rm.PoorProb(q)
	if math.Abs(pcr.Rate()-want) > 0.02 {
		t.Errorf("empirical PCR %v vs model %v", pcr.Rate(), want)
	}
}

func TestPCRBasics(t *testing.T) {
	var p PCR
	if p.Rate() != 0 {
		t.Error("empty PCR should be 0")
	}
	for _, r := range []int{1, 2, 3, 4, 5} {
		p.Add(r)
	}
	if p.Rate() != 0.4 {
		t.Errorf("PCR = %v, want 0.4", p.Rate())
	}
}

// Property: MOS is always within [1, 4.5] for any valid metrics.
func TestMOSRangeProperty(t *testing.T) {
	c := DefaultEModel()
	f := func(r, l, j uint16) bool {
		q := Metrics{
			RTTMs:    float64(r % 2000),
			LossRate: float64(l%1000) / 1000,
			JitterMs: float64(j % 200),
		}
		m := c.MOS(q)
		return m >= 1 && m <= 4.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
