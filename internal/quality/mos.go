package quality

import "math"

// The E-model MOS calculator follows Cole & Rosenbluth, "Voice over IP
// Performance Monitoring" (ACM CCR 2001) — reference [17] of the paper —
// which reduces the ITU-T G.107 E-model to a function of one-way delay and
// loss for a given codec.

// Codec selects the impairment curve used by the E-model's equipment
// impairment factor.
type Codec int

const (
	// G711 is the 64 kb/s PCM codec: Ie = 0 + 30·ln(1 + 15e).
	G711 Codec = iota
	// G729a is the 8 kb/s CS-ACELP codec with VAD: Ie = 11 + 40·ln(1 + 10e).
	G729a
)

// EModelConfig parameterizes the MOS computation.
type EModelConfig struct {
	Codec Codec
	// CodecDelayMs is the fixed encoding+packetization delay added to the
	// network one-way delay (Cole–Rosenbluth use 25 ms).
	CodecDelayMs float64
	// JitterBufferMs is the de-jitter buffer depth added to the mouth-to-ear
	// delay. Packets delayed beyond the buffer are counted as late losses.
	JitterBufferMs float64
}

// DefaultEModel returns the configuration used in the paper era: G.729a with
// a 25 ms codec delay and a 60 ms jitter buffer.
func DefaultEModel() EModelConfig {
	return EModelConfig{Codec: G729a, CodecDelayMs: 25, JitterBufferMs: 60}
}

// RFactor computes the E-model transmission rating R from per-call average
// network metrics. Delay impairment uses the Cole–Rosenbluth piecewise
// linear approximation; loss impairment uses the codec's logarithmic curve.
// Jitter contributes in two ways: it inflates mouth-to-ear delay through the
// jitter buffer, and any jitter exceeding the buffer produces late-loss
// discards (approximated with an exponential tail).
func (c EModelConfig) RFactor(q Metrics) float64 {
	// Mouth-to-ear one-way delay.
	d := q.RTTMs/2 + c.CodecDelayMs + c.JitterBufferMs
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}

	// Effective loss: network loss plus late arrivals discarded by the
	// jitter buffer. Model interarrival deviations as exponential with mean
	// equal to the measured jitter; a packet is discarded when its deviation
	// exceeds the buffer depth.
	e := q.LossRate
	if q.JitterMs > 0 {
		late := math.Exp(-c.JitterBufferMs / q.JitterMs)
		e = e + (1-e)*late
	}
	if e > 1 {
		e = 1
	}

	var ie float64
	switch c.Codec {
	case G711:
		ie = 0 + 30*math.Log(1+15*e)
	case G729a:
		ie = 11 + 40*math.Log(1+10*e)
	default:
		panic("quality: unknown codec")
	}

	return 94.2 - id - ie
}

// MOS converts network metrics to a Mean Opinion Score on the 1–4.5 scale
// using the standard R→MOS mapping.
func (c EModelConfig) MOS(q Metrics) float64 {
	return RToMOS(c.RFactor(q))
}

// RToMOS maps an E-model R factor to MOS: 1 for R ≤ 0, 4.5 for R ≥ 100, and
// the cubic interpolation 1 + 0.035R + 7·10⁻⁶·R(R−60)(100−R) between.
func RToMOS(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	default:
		// The cubic dips fractionally below 1 for tiny positive R; clamp so
		// the MOS scale's bounds hold exactly.
		return math.Max(1, math.Min(4.5, 1+0.035*r+7e-6*r*(r-60)*(100-r)))
	}
}

// RatingModel generates synthetic 5-point user ratings from network metrics,
// standing in for Skype's user feedback. Its single behavioural requirement
// — the one Figure 1 depends on — is that the probability of a poor rating
// (1 or 2 stars) rises monotonically across the whole range of each metric.
// We use a logistic link over normalized metric exceedances, with a floor
// reflecting non-network causes of poor ratings.
type RatingModel struct {
	// Base is the probability of a poor rating on a perfect network
	// (audio-device problems, user error, ...).
	Base float64
	// WRTT, WLoss, WJitter weight the normalized metrics inside the link.
	WRTT, WLoss, WJitter float64
	// Bias shifts the logistic; more negative means fewer poor ratings at
	// moderate metric values.
	Bias float64
}

// DefaultRatingModel returns weights calibrated so that the synthetic PCR
// roughly doubles from the good to the poor region of each metric, matching
// the qualitative shape of Figure 1.
func DefaultRatingModel() RatingModel {
	return RatingModel{
		Base:    0.02,
		WRTT:    1.4,
		WLoss:   1.8,
		WJitter: 1.2,
		Bias:    -3.4,
	}
}

// PoorProb returns the probability that a user rates a call with these
// average metrics as poor (1 or 2 stars).
func (rm RatingModel) PoorProb(q Metrics) float64 {
	// Normalize each metric by its poor threshold; sublinear exponents keep
	// sensitivity across the whole range rather than only near thresholds.
	x := rm.Bias +
		rm.WRTT*math.Pow(q.RTTMs/PoorRTTMs, 0.8) +
		rm.WLoss*math.Pow(q.LossRate/PoorLossRate, 0.7) +
		rm.WJitter*math.Pow(q.JitterMs/PoorJitterMs, 0.7)
	p := 1 / (1 + math.Exp(-x))
	return rm.Base + (1-rm.Base)*p
}

// Rate draws a 1–5 star rating given metrics and a uniform random sample
// u ∈ [0,1). Ratings 1–2 are "poor"; the split among the remaining stars is
// cosmetic but deterministic in u.
func (rm RatingModel) Rate(q Metrics, u float64) int {
	p := rm.PoorProb(q)
	if u < p {
		if u < p/2 {
			return 1
		}
		return 2
	}
	// Spread the non-poor mass across 3..5, better networks earn more 5s.
	rest := (u - p) / (1 - p)
	mos := DefaultEModel().MOS(q)
	fiveShare := math.Max(0.2, math.Min(0.8, (mos-2)/2.5))
	switch {
	case rest < fiveShare:
		return 5
	case rest < fiveShare+(1-fiveShare)*0.6:
		return 4
	default:
		return 3
	}
}

// PCR accumulates the Poor Call Rate — the fraction of rated calls with a 1
// or 2 star rating.
type PCR struct {
	Total, Poor int64
}

// Add counts one rating.
func (p *PCR) Add(rating int) {
	p.Total++
	if rating <= 2 {
		p.Poor++
	}
}

// Rate returns the poor call rate, or 0 with no ratings.
func (p *PCR) Rate() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Poor) / float64(p.Total)
}
