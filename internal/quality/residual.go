package quality

import "sync"

// ResidualLearner learns the post-repair residual-loss mapping per repair
// scheme: given the raw network loss a call experienced and the scheme it
// ran, what fraction of packets were still missing at playout? The data
// plane reports (scheme, pre-repair loss, residual loss) samples; the
// learner bins them by pre-repair loss and keeps running means, so the
// control plane can score a (path, scheme) pair's expected MOS before
// committing a call to it.
//
// Schemes are identified by name ("none", "nack", "red", "fec-4") — this
// package stays below internal/rtp in the dependency order, so it cannot
// reference the rtp.Scheme type.

// residualBins are the pre-repair loss-rate bin upper bounds. Repair
// behavior is strongly regime-dependent (NACK repairs everything at 1%
// loss and little at 30%), so a single global mean would mislead.
var residualBins = [...]float64{0.02, 0.05, 0.10, 0.20, 1.0}

// NumResidualBins is the number of pre-repair loss bins.
const NumResidualBins = len(residualBins)

// residualBin maps a pre-repair loss rate to its bin index.
func residualBin(loss float64) int {
	for i, hi := range residualBins {
		if loss <= hi {
			return i
		}
	}
	return NumResidualBins - 1
}

type residualCell struct {
	n   float64
	sum float64
}

// ResidualLearner accumulates per-scheme, per-loss-bin residual samples.
// Safe for concurrent use.
type ResidualLearner struct {
	mu      sync.Mutex
	schemes map[string]*[NumResidualBins]residualCell
}

// NewResidualLearner builds an empty learner.
func NewResidualLearner() *ResidualLearner {
	return &ResidualLearner{schemes: make(map[string]*[NumResidualBins]residualCell)}
}

// Observe folds one call's (pre-repair loss, post-repair residual) sample
// for the given scheme. Out-of-range inputs are clamped to [0, 1].
func (rl *ResidualLearner) Observe(scheme string, preLoss, residual float64) {
	preLoss = clampUnit(preLoss)
	residual = clampUnit(residual)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	cells := rl.schemes[scheme]
	if cells == nil {
		cells = new([NumResidualBins]residualCell)
		rl.schemes[scheme] = cells
	}
	c := &cells[residualBin(preLoss)]
	c.n++
	c.sum += residual
}

// Residual predicts the post-repair residual loss for a scheme at the
// given pre-repair loss rate. With no samples in the bin it falls back to
// the identity (repair predicts nothing it has not seen), so an unlearned
// scheme is never scored optimistically.
func (rl *ResidualLearner) Residual(scheme string, preLoss float64) float64 {
	preLoss = clampUnit(preLoss)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	cells := rl.schemes[scheme]
	if cells == nil {
		return preLoss
	}
	c := cells[residualBin(preLoss)]
	if c.n == 0 {
		return preLoss
	}
	return c.sum / c.n
}

// Samples reports how many observations a scheme has in the bin covering
// the given pre-repair loss rate.
func (rl *ResidualLearner) Samples(scheme string, preLoss float64) int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	cells := rl.schemes[scheme]
	if cells == nil {
		return 0
	}
	return int(cells[residualBin(clampUnit(preLoss))].n)
}

// MOSAfterRepair scores a call's expected post-repair MOS: the network
// metrics with the loss component replaced by the learned residual for
// the scheme. RTT and jitter pass through — repair spends bandwidth, not
// latency (NACK recovery latency shows up in the residual itself when
// retransmits miss the playout deadline).
func (rl *ResidualLearner) MOSAfterRepair(cfg EModelConfig, scheme string, m Metrics) float64 {
	m.LossRate = rl.Residual(scheme, m.LossRate)
	return cfg.MOS(m)
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
