// Package quality defines the network-performance metric triple used
// throughout the Via reproduction (RTT, loss rate, jitter), the paper's
// thresholds for poor network performance, the Poor Network Rate (PNR) and
// Poor Call Rate (PCR) statistics, the Cole–Rosenbluth E-model MOS
// calculator the paper cites ([17]), and the synthetic user-rating model
// that stands in for Skype's 5-star call ratings.
package quality

import (
	"fmt"
	"math"
)

// Metric identifies one of the three network performance metrics.
type Metric int

const (
	RTT    Metric = iota // round-trip time, milliseconds
	Loss                 // packet loss rate, fraction in [0,1]
	Jitter               // interarrival jitter, milliseconds
	NumMetrics
)

// String returns the metric's short name.
func (m Metric) String() string {
	switch m {
	case RTT:
		return "rtt"
	case Loss:
		return "loss"
	case Jitter:
		return "jitter"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// AllMetrics lists the three metrics in canonical order.
func AllMetrics() []Metric { return []Metric{RTT, Loss, Jitter} }

// Thresholds for poor network performance (§2.2): a call is poor on a metric
// when the call-average value is at or beyond these.
const (
	PoorRTTMs    = 320.0 // ms
	PoorLossRate = 0.012 // 1.2%
	PoorJitterMs = 12.0  // ms
)

// Threshold returns the poor-performance threshold for m.
func Threshold(m Metric) float64 {
	switch m {
	case RTT:
		return PoorRTTMs
	case Loss:
		return PoorLossRate
	case Jitter:
		return PoorJitterMs
	default:
		panic("quality: unknown metric")
	}
}

// Metrics is the per-call average network performance triple.
type Metrics struct {
	RTTMs    float64 // round-trip time in milliseconds
	LossRate float64 // loss fraction in [0, 1]
	JitterMs float64 // RFC 3550-style interarrival jitter in milliseconds
}

// Get returns the value of metric m.
func (q Metrics) Get(m Metric) float64 {
	switch m {
	case RTT:
		return q.RTTMs
	case Loss:
		return q.LossRate
	case Jitter:
		return q.JitterMs
	default:
		panic("quality: unknown metric")
	}
}

// Set assigns the value of metric m.
func (q *Metrics) Set(m Metric, v float64) {
	switch m {
	case RTT:
		q.RTTMs = v
	case Loss:
		q.LossRate = v
	case Jitter:
		q.JitterMs = v
	default:
		panic("quality: unknown metric")
	}
}

// PoorOn reports whether the call is poor on metric m (value at or beyond
// the threshold).
func (q Metrics) PoorOn(m Metric) bool {
	return q.Get(m) >= Threshold(m)
}

// AtLeastOneBad reports whether any of the three metrics is poor — the
// paper's combined criterion.
func (q Metrics) AtLeastOneBad() bool {
	return q.PoorOn(RTT) || q.PoorOn(Loss) || q.PoorOn(Jitter)
}

// Valid reports whether the triple is physically sensible (non-negative,
// loss within [0,1], no NaN/Inf).
func (q Metrics) Valid() bool {
	for _, v := range []float64{q.RTTMs, q.LossRate, q.JitterMs} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return q.LossRate <= 1
}

// PNR accumulates Poor Network Rate counters over a stream of calls: the
// fraction of calls whose average performance is poor, per metric and on the
// "at least one bad" criterion.
type PNR struct {
	Total int64
	Poor  [NumMetrics]int64
	AnyuB int64 // count with at least one bad metric
}

// Add counts one call.
func (p *PNR) Add(q Metrics) {
	p.Total++
	any := false
	for _, m := range AllMetrics() {
		if q.PoorOn(m) {
			p.Poor[m]++
			any = true
		}
	}
	if any {
		p.AnyuB++
	}
}

// Rate returns the PNR for metric m, or 0 with no calls.
func (p *PNR) Rate(m Metric) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Poor[m]) / float64(p.Total)
}

// AtLeastOneBadRate returns the fraction of calls with any poor metric.
func (p *PNR) AtLeastOneBadRate() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.AnyuB) / float64(p.Total)
}

// Merge combines another accumulator into this one.
func (p *PNR) Merge(o PNR) {
	p.Total += o.Total
	p.AnyuB += o.AnyuB
	for i := range p.Poor {
		p.Poor[i] += o.Poor[i]
	}
}

// RelativeImprovement returns 100·(b−a)/b — the paper's definition of
// relative improvement when a statistic goes from b (baseline) to a
// (treatment). Positive means improvement; 0 when b is 0.
func RelativeImprovement(baseline, treatment float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - treatment) / baseline
}
