package trace

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/stats"
)

func testSetup(t testing.TB, calls int) (*netsim.World, []CallRecord) {
	t.Helper()
	w := netsim.New(netsim.DefaultConfig(1))
	g := NewGenerator(w, DefaultConfig(2, calls))
	return w, g.GenerateSlice()
}

func TestGenerateCountAndOrder(t *testing.T) {
	_, recs := testSetup(t, 20000)
	if len(recs) != 20000 {
		t.Fatalf("got %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].THours < recs[i-1].THours {
			t.Fatal("trace not chronological")
		}
	}
	if recs[0].ID != 0 || recs[len(recs)-1].ID != int64(len(recs)-1) {
		t.Error("IDs not sequential")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	a := NewGenerator(w, DefaultConfig(7, 5000)).GenerateSlice()
	b := NewGenerator(w, DefaultConfig(7, 5000)).GenerateSlice()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical generations", i)
		}
	}
}

func TestCompositionMatchesPaper(t *testing.T) {
	w, recs := testSetup(t, 60000)
	s := Summarize(w, recs)
	// Table 1 composition: 46.6% international, 80.7% inter-AS. The Zipf
	// weighting over pairs adds sampling noise, so allow a band.
	if math.Abs(s.International-0.466) > 0.12 {
		t.Errorf("international fraction = %v, want ~0.466", s.International)
	}
	if math.Abs(s.InterAS-0.807) > 0.12 {
		t.Errorf("inter-AS fraction = %v, want ~0.807", s.InterAS)
	}
	if math.Abs(s.Rated-0.30) > 0.03 {
		t.Errorf("rated fraction = %v, want ~0.30", s.Rated)
	}
	if s.Countries < 25 {
		t.Errorf("only %d countries touched", s.Countries)
	}
	if s.Days < 25 || s.Days > 28.01 {
		t.Errorf("trace spans %v days, want ~28", s.Days)
	}
}

func TestPairVolumeIsSkewed(t *testing.T) {
	_, recs := testSetup(t, 50000)
	counts := map[Pair]int{}
	for _, c := range recs {
		counts[Pair{c.Src, c.Dst}]++
	}
	// Zipf volume: the busiest pair should carry far more than the median
	// pair — the data-density skew of §4.2.
	var max, nonzero int
	for _, n := range counts {
		if n > max {
			max = n
		}
		nonzero++
	}
	avg := float64(len(recs)) / float64(nonzero)
	if float64(max) < 20*avg {
		t.Errorf("max pair volume %d vs mean %.1f; not skewed enough", max, avg)
	}
}

func TestMetricsValidAndDirect(t *testing.T) {
	_, recs := testSetup(t, 5000)
	for _, c := range recs {
		if !c.Metrics.Valid() {
			t.Fatalf("invalid metrics: %+v", c)
		}
		if c.Option != netsim.DirectOption() {
			t.Fatalf("baseline trace must be direct-routed, got %v", c.Option)
		}
		if c.Duration <= 0 {
			t.Fatalf("nonpositive duration")
		}
	}
}

func TestRatingsOnlyOnRatedCalls(t *testing.T) {
	_, recs := testSetup(t, 20000)
	rated := 0
	for _, c := range recs {
		if c.Rating < 0 || c.Rating > 5 {
			t.Fatalf("rating out of range: %d", c.Rating)
		}
		if c.Rating > 0 {
			rated++
		}
	}
	if rated == 0 || rated == len(recs) {
		t.Errorf("rated count = %d of %d; RatedFrac not applied", rated, len(recs))
	}
}

func TestRatingsCorrelateWithMetrics(t *testing.T) {
	// The PCR of calls with a poor network must exceed the PCR of good
	// calls — the precondition for reproducing Figure 1.
	_, recs := testSetup(t, 120000)
	var poorTot, poorBad, goodTot, goodBad int
	for _, c := range recs {
		if c.Rating == 0 {
			continue
		}
		isPoorRating := c.Rating <= 2
		if c.Metrics.AtLeastOneBad() {
			poorTot++
			if isPoorRating {
				poorBad++
			}
		} else {
			goodTot++
			if isPoorRating {
				goodBad++
			}
		}
	}
	if poorTot < 100 || goodTot < 100 {
		t.Fatalf("insufficient rated calls: %d poor, %d good", poorTot, goodTot)
	}
	pcrPoor := float64(poorBad) / float64(poorTot)
	pcrGood := float64(goodBad) / float64(goodTot)
	if pcrPoor < 1.5*pcrGood {
		t.Errorf("PCR on poor networks (%v) not clearly above good networks (%v)", pcrPoor, pcrGood)
	}
}

func TestWindowHelper(t *testing.T) {
	c := CallRecord{THours: 49.5}
	if c.Window() != 2 {
		t.Errorf("Window() = %d", c.Window())
	}
}

func TestPairCanonical(t *testing.T) {
	p := Pair{5, 2}
	if p.Canonical() != (Pair{2, 5}) {
		t.Error("canonical should order endpoints")
	}
	q := Pair{2, 5}
	if q.Canonical() != q {
		t.Error("already-canonical pair changed")
	}
	if p.String() != "5-2" {
		t.Errorf("String = %q", p.String())
	}
}

func TestSamplePairDegenerateWorldFallsBack(t *testing.T) {
	// A tiny world with few countries must not loop forever.
	w := netsim.New(netsim.Config{Seed: 3, NumASes: 4, NumRelays: 4, BounceCandidates: 2, TransitFan: 2})
	g := NewGenerator(w, DefaultConfig(3, 100))
	recs := g.GenerateSlice()
	if len(recs) != 100 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestWeightedPickerDistribution(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	p := newWeightedPicker(w)
	r := stats.NewRNG(5)
	counts := map[netsim.ASID]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.pick(r)]++
	}
	// Empirical frequency should track weight for the heaviest AS.
	var totalW float64
	heaviest := netsim.ASID(0)
	for i := 0; i < w.NumASes(); i++ {
		totalW += w.AS(netsim.ASID(i)).Weight
		if w.AS(netsim.ASID(i)).Weight > w.AS(heaviest).Weight {
			heaviest = netsim.ASID(i)
		}
	}
	want := w.AS(heaviest).Weight / totalW
	got := float64(counts[heaviest]) / n
	if math.Abs(got-want) > 0.01+want*0.2 {
		t.Errorf("heaviest AS frequency %v vs weight share %v", got, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	s := Summarize(w, nil)
	if s.Calls != 0 || s.International != 0 {
		t.Error("empty summary should be zero")
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := netsim.New(netsim.DefaultConfig(1))
	g := NewGenerator(w, DefaultConfig(2, b.N+1))
	b.ResetTimer()
	n := 0
	g.Generate(func(CallRecord) { n++ })
}
