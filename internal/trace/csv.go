package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// CSV persistence turns a generated workload into a shareable dataset
// artifact (and back), so experiments can run against a frozen trace
// instead of regenerating one — the closest analogue to the paper's fixed
// 430M-call sample.

var csvHeader = []string{
	"id", "t_hours", "src", "dst",
	"opt_kind", "r1", "r2",
	"rtt_ms", "loss_rate", "jitter_ms",
	"duration_sec", "rating", "user_src", "user_dst",
}

// WriteCSV streams records to w in the canonical column order.
func WriteCSV(w io.Writer, recs []CallRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, c := range recs {
		row[0] = strconv.FormatInt(c.ID, 10)
		row[1] = strconv.FormatFloat(c.THours, 'g', -1, 64)
		row[2] = strconv.Itoa(int(c.Src))
		row[3] = strconv.Itoa(int(c.Dst))
		row[4] = strconv.Itoa(int(c.Option.Kind))
		row[5] = strconv.Itoa(int(c.Option.R1))
		row[6] = strconv.Itoa(int(c.Option.R2))
		row[7] = strconv.FormatFloat(c.Metrics.RTTMs, 'g', -1, 64)
		row[8] = strconv.FormatFloat(c.Metrics.LossRate, 'g', -1, 64)
		row[9] = strconv.FormatFloat(c.Metrics.JitterMs, 'g', -1, 64)
		row[10] = strconv.FormatFloat(c.Duration, 'g', -1, 64)
		row[11] = strconv.Itoa(c.Rating)
		row[12] = strconv.FormatInt(c.UserSrc, 10)
		row[13] = strconv.FormatInt(c.UserDst, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, validating the header and
// every record's invariants (chronological order, valid metrics).
func ReadCSV(r io.Reader) ([]CallRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, h := range csvHeader {
		if head[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, head[i], h)
		}
	}
	var out []CallRecord
	lastT := -1.0
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.THours < lastT {
			return nil, fmt.Errorf("trace: line %d: timestamps not chronological", line)
		}
		lastT = rec.THours
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (CallRecord, error) {
	var c CallRecord
	var err error
	geti := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	c.ID = geti(row[0])
	c.THours = getf(row[1])
	c.Src = netsim.ASID(geti(row[2]))
	c.Dst = netsim.ASID(geti(row[3]))
	kind := netsim.OptionKind(geti(row[4]))
	r1 := netsim.RelayID(geti(row[5]))
	r2 := netsim.RelayID(geti(row[6]))
	switch kind {
	case netsim.Direct:
		c.Option = netsim.DirectOption()
	case netsim.Bounce:
		c.Option = netsim.BounceOption(r1)
	case netsim.Transit:
		c.Option = netsim.TransitOption(r1, r2)
	default:
		return c, fmt.Errorf("unknown option kind %d", kind)
	}
	c.Metrics = quality.Metrics{
		RTTMs:    getf(row[7]),
		LossRate: getf(row[8]),
		JitterMs: getf(row[9]),
	}
	c.Duration = getf(row[10])
	c.Rating = int(geti(row[11]))
	c.UserSrc = geti(row[12])
	c.UserDst = geti(row[13])
	if err != nil {
		return c, err
	}
	if !c.Metrics.Valid() {
		return c, fmt.Errorf("invalid metrics %+v", c.Metrics)
	}
	if c.Rating < 0 || c.Rating > 5 {
		return c, fmt.Errorf("invalid rating %d", c.Rating)
	}
	return c, nil
}
