package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
)

func TestCSVRoundTrip(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	recs := NewGenerator(w, DefaultConfig(2, 2000)).GenerateSlice()

	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d differs:\n  %+v\n  %+v", i, recs[i], back[i])
		}
	}
}

func TestCSVEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty trace read back %d records", len(back))
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "a,b,c\n",
		"bad kind": "id,t_hours,src,dst,opt_kind,r1,r2,rtt_ms,loss_rate,jitter_ms,duration_sec,rating,user_src,user_dst\n" +
			"0,1,1,2,9,0,0,100,0.01,5,60,0,1,2\n",
		"bad metrics": "id,t_hours,src,dst,opt_kind,r1,r2,rtt_ms,loss_rate,jitter_ms,duration_sec,rating,user_src,user_dst\n" +
			"0,1,1,2,0,-1,-1,-5,0.01,5,60,0,1,2\n",
		"bad rating": "id,t_hours,src,dst,opt_kind,r1,r2,rtt_ms,loss_rate,jitter_ms,duration_sec,rating,user_src,user_dst\n" +
			"0,1,1,2,0,-1,-1,100,0.01,5,60,9,1,2\n",
		"non-chronological": "id,t_hours,src,dst,opt_kind,r1,r2,rtt_ms,loss_rate,jitter_ms,duration_sec,rating,user_src,user_dst\n" +
			"0,5,1,2,0,-1,-1,100,0.01,5,60,0,1,2\n" +
			"1,4,1,2,0,-1,-1,100,0.01,5,60,0,1,2\n",
		"not a number": "id,t_hours,src,dst,opt_kind,r1,r2,rtt_ms,loss_rate,jitter_ms,duration_sec,rating,user_src,user_dst\n" +
			"x,1,1,2,0,-1,-1,100,0.01,5,60,0,1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSVPreservesOptions(t *testing.T) {
	recs := []CallRecord{
		{ID: 0, THours: 1, Option: netsim.DirectOption(), Metrics: q(100, 0.01, 5), Duration: 1},
		{ID: 1, THours: 2, Option: netsim.BounceOption(7), Metrics: q(100, 0.01, 5), Duration: 1},
		{ID: 2, THours: 3, Option: netsim.TransitOption(3, 9), Metrics: q(100, 0.01, 5), Duration: 1},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i].Option != recs[i].Option {
			t.Errorf("option %d: %v != %v", i, back[i].Option, recs[i].Option)
		}
	}
}

func q(rtt, loss, jit float64) quality.Metrics {
	return quality.Metrics{RTTMs: rtt, LossRate: loss, JitterMs: jit}
}
