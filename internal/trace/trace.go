// Package trace generates the synthetic call workload that stands in for the
// paper's sampled Skype dataset (Table 1). It produces a chronological
// stream of call records whose marginals match the published
// characteristics: ~46.6% international calls, ~80.7% inter-AS calls, a
// Zipf-skewed distribution of call volume over AS pairs (the data-density
// skew that motivates prediction-guided exploration, §4.2), lognormal call
// durations, and a small rated fraction with 5-star user ratings drawn from
// the quality model.
package trace

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

// CallRecord is one call as the controller's history would record it.
type CallRecord struct {
	ID       int64
	THours   float64 // call start, hours since the trace epoch
	Src, Dst netsim.ASID
	Option   netsim.Option   // routing used; Direct for the baseline trace
	Metrics  quality.Metrics // call-average network performance
	Duration float64         // seconds of talk time
	Rating   int             // 1-5 user rating, 0 if the call was not rated
	UserSrc  int64           // synthetic caller identity
	UserDst  int64           // synthetic callee identity
}

// Window returns the 24-hour window index of the call.
func (c CallRecord) Window() int { return netsim.WindowOf(c.THours) }

// Config parameterizes workload generation.
type Config struct {
	Seed  uint64
	Days  int // trace length in days
	Calls int // total calls to generate

	// PairPopulation is how many distinct (src, dst) AS pairs carry the
	// traffic; call volume over them is Zipf(PairZipfExponent).
	PairPopulation   int
	PairZipfExponent float64

	// InternationalFrac and IntraASFrac reproduce Table 1's composition:
	// the paper saw 46.6% international and 19.3% intra-AS calls.
	InternationalFrac float64
	IntraASFrac       float64

	// RatedFrac is the fraction of calls carrying a user rating.
	RatedFrac float64

	// UsersPerAS controls the synthetic user-population size.
	UsersPerAS int
}

// DefaultConfig matches the experiments' default workload: 28 days and a
// configurable call count.
func DefaultConfig(seed uint64, calls int) Config {
	return Config{
		Seed:              seed,
		Days:              28,
		Calls:             calls,
		PairPopulation:    6000,
		PairZipfExponent:  0.7,
		InternationalFrac: 0.466,
		IntraASFrac:       0.193,
		RatedFrac:         0.30,
		UsersPerAS:        900,
	}
}

// Pair is a directed AS pair.
type Pair struct {
	Src, Dst netsim.ASID
}

// Canonical returns the pair with endpoints ordered low-to-high, the
// granularity at which performance is symmetric.
func (p Pair) Canonical() Pair {
	if p.Src > p.Dst {
		return Pair{p.Dst, p.Src}
	}
	return p
}

func (p Pair) String() string { return fmt.Sprintf("%d-%d", p.Src, p.Dst) }

// Generator produces call records against a world.
type Generator struct {
	cfg   Config
	w     *netsim.World
	rng   *stats.RNG
	pairs []Pair
	zipf  *stats.Zipf
	rm    quality.RatingModel

	srcPick *weightedPicker
}

// NewGenerator builds a generator. Pair population construction is
// deterministic in cfg.Seed.
func NewGenerator(w *netsim.World, cfg Config) *Generator {
	if cfg.Days <= 0 || cfg.Calls <= 0 {
		panic("trace: Days and Calls must be positive")
	}
	if cfg.PairPopulation <= 0 {
		cfg.PairPopulation = 3000
	}
	if cfg.PairZipfExponent <= 0 {
		cfg.PairZipfExponent = 1.05
	}
	g := &Generator{
		cfg: cfg,
		w:   w,
		rng: stats.NewRNG(cfg.Seed).Split("trace"),
		rm:  quality.DefaultRatingModel(),
	}
	g.srcPick = newWeightedPicker(w)
	pr := stats.NewRNG(cfg.Seed).Split("pairs")
	g.pairs = make([]Pair, cfg.PairPopulation)
	for i := range g.pairs {
		g.pairs[i] = g.samplePair(pr)
	}
	g.zipf = stats.NewZipf(stats.NewRNG(cfg.Seed).Split("zipf"), len(g.pairs), cfg.PairZipfExponent)
	return g
}

// samplePair draws one (src, dst) pair honoring the configured
// international/intra-AS composition.
func (g *Generator) samplePair(r *stats.RNG) Pair {
	src := g.srcPick.pick(r)
	srcCountry := g.w.CountryOf(src)
	u := r.Float64()
	switch {
	case u < g.cfg.InternationalFrac:
		// International: pick weighted destinations until one is abroad.
		for tries := 0; tries < 64; tries++ {
			dst := g.srcPick.pick(r)
			if g.w.CountryOf(dst) != srcCountry {
				return Pair{src, dst}
			}
		}
		return Pair{src, src} // degenerate world; give up gracefully
	case u < g.cfg.InternationalFrac+g.cfg.IntraASFrac:
		return Pair{src, src}
	default:
		// Domestic inter-AS.
		local := g.w.ASesInCountry(srcCountry)
		if len(local) < 2 {
			return Pair{src, src}
		}
		for tries := 0; tries < 64; tries++ {
			dst := local[r.IntN(len(local))]
			if dst != src {
				return Pair{src, dst}
			}
		}
		return Pair{src, src}
	}
}

// Pairs returns the generator's pair population (shared slice; do not
// modify).
func (g *Generator) Pairs() []Pair { return g.pairs }

// Generate produces the full trace in chronological order, invoking emit for
// each record. Records are routed over the direct path, matching the
// passively collected dataset of §2 (relayed samples appear later, once a
// strategy explores).
func (g *Generator) Generate(emit func(CallRecord)) {
	horizon := float64(g.cfg.Days) * 24
	for i := 0; i < g.cfg.Calls; i++ {
		rec := g.genCall(int64(i), horizon)
		emit(rec)
	}
}

// GenerateSlice is a convenience wrapper returning the trace as a slice.
func (g *Generator) GenerateSlice() []CallRecord {
	out := make([]CallRecord, 0, g.cfg.Calls)
	g.Generate(func(c CallRecord) { out = append(out, c) })
	return out
}

func (g *Generator) genCall(id int64, horizon float64) CallRecord {
	// Strictly increasing timestamps keep the trace chronological.
	t := horizon * (float64(id) + g.rng.Float64()) / float64(g.cfg.Calls)
	p := g.pairs[g.zipf.Sample()]
	opt := netsim.DirectOption()
	m := g.w.SampleCall(p.Src, p.Dst, opt, t, g.rng)

	rec := CallRecord{
		ID:       id,
		THours:   t,
		Src:      p.Src,
		Dst:      p.Dst,
		Option:   opt,
		Metrics:  m,
		Duration: g.rng.LogNormal(math.Log(180), 1.0),
		UserSrc:  int64(p.Src)*int64(g.cfg.UsersPerAS) + int64(g.rng.IntN(maxI(g.cfg.UsersPerAS, 1))),
		UserDst:  int64(p.Dst)*int64(g.cfg.UsersPerAS) + int64(g.rng.IntN(maxI(g.cfg.UsersPerAS, 1))),
	}
	if g.rng.Float64() < g.cfg.RatedFrac {
		rec.Rating = g.rm.Rate(m, g.rng.Float64())
	}
	return rec
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary aggregates Table 1-style statistics over a trace.
type Summary struct {
	Calls         int64
	Users         int64
	ASes          int
	Countries     int
	International float64 // fraction
	InterAS       float64 // fraction
	Rated         float64 // fraction
	Days          float64
}

// Summarize computes a Summary in one pass.
func Summarize(w *netsim.World, recs []CallRecord) Summary {
	var s Summary
	users := map[int64]bool{}
	ases := map[netsim.ASID]bool{}
	countries := map[string]bool{}
	var intl, interAS, rated int64
	var maxT float64
	for _, c := range recs {
		s.Calls++
		users[c.UserSrc] = true
		users[c.UserDst] = true
		ases[c.Src] = true
		ases[c.Dst] = true
		countries[w.CountryOf(c.Src)] = true
		countries[w.CountryOf(c.Dst)] = true
		if w.International(c.Src, c.Dst) {
			intl++
		}
		if c.Src != c.Dst {
			interAS++
		}
		if c.Rating > 0 {
			rated++
		}
		if c.THours > maxT {
			maxT = c.THours
		}
	}
	s.Users = int64(len(users))
	s.ASes = len(ases)
	s.Countries = len(countries)
	if s.Calls > 0 {
		s.International = float64(intl) / float64(s.Calls)
		s.InterAS = float64(interAS) / float64(s.Calls)
		s.Rated = float64(rated) / float64(s.Calls)
	}
	s.Days = maxT / 24
	return s
}
