package trace

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// weightedPicker samples ASes proportionally to their traffic weight using a
// precomputed cumulative distribution and binary search.
type weightedPicker struct {
	ids []netsim.ASID
	cdf []float64
}

func newWeightedPicker(w *netsim.World) *weightedPicker {
	n := w.NumASes()
	p := &weightedPicker{
		ids: make([]netsim.ASID, n),
		cdf: make([]float64, n),
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		id := netsim.ASID(i)
		p.ids[i] = id
		sum += w.AS(id).Weight
		p.cdf[i] = sum
	}
	for i := range p.cdf {
		p.cdf[i] /= sum
	}
	return p
}

func (p *weightedPicker) pick(r *stats.RNG) netsim.ASID {
	u := r.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.ids) {
		i = len(p.ids) - 1
	}
	return p.ids[i]
}
