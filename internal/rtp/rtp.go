// Package rtp implements the media-plane wire format and measurement
// machinery the testbed clients use: RTP-style media packets (RFC 3550
// framing), receiver reports carrying the loss/jitter/RTT-echo fields of
// RTCP RR blocks, the standard interarrival jitter estimator (RFC 3550
// §6.4.1), and sequence-number-based loss accounting with wraparound.
//
// The encode/decode style follows gopacket's DecodingLayer idiom: fixed
// headers decoded in place from byte slices with explicit bounds checks, no
// reflection, no allocation beyond the payload reference.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP version encoded in every packet.
const Version = 2

// HeaderLen is the fixed RTP header size we use (no CSRC, no extensions).
const HeaderLen = 12

// Packet is an RTP media packet. Payload aliases the decode buffer.
type Packet struct {
	PayloadType uint8
	Marker      bool
	Seq         uint16
	Timestamp   uint32 // media clock units (we use 90 kHz)
	SSRC        uint32
	Payload     []byte
}

// ErrTruncated reports a buffer too short for the claimed structure.
var ErrTruncated = errors.New("rtp: truncated packet")

// ErrVersion reports a packet with an unexpected RTP version.
var ErrVersion = errors.New("rtp: bad version")

// Marshal appends the packet's wire form to dst and returns the result.
func (p *Packet) Marshal(dst []byte) []byte {
	var h [HeaderLen]byte
	h[0] = Version << 6
	h[1] = p.PayloadType & 0x7f
	if p.Marker {
		h[1] |= 0x80
	}
	binary.BigEndian.PutUint16(h[2:4], p.Seq)
	binary.BigEndian.PutUint32(h[4:8], p.Timestamp)
	binary.BigEndian.PutUint32(h[8:12], p.SSRC)
	dst = append(dst, h[:]...)
	return append(dst, p.Payload...)
}

// Unmarshal decodes a packet from buf. The payload aliases buf.
func (p *Packet) Unmarshal(buf []byte) error {
	if len(buf) < HeaderLen {
		return ErrTruncated
	}
	if buf[0]>>6 != Version {
		return ErrVersion
	}
	p.Marker = buf[1]&0x80 != 0
	p.PayloadType = buf[1] & 0x7f
	p.Seq = binary.BigEndian.Uint16(buf[2:4])
	p.Timestamp = binary.BigEndian.Uint32(buf[4:8])
	p.SSRC = binary.BigEndian.Uint32(buf[8:12])
	p.Payload = buf[HeaderLen:]
	return nil
}

func (p *Packet) String() string {
	return fmt.Sprintf("rtp{pt=%d seq=%d ts=%d ssrc=%x len=%d}",
		p.PayloadType, p.Seq, p.Timestamp, p.SSRC, len(p.Payload))
}

// ReceiverReport carries the feedback a callee sends about a media stream —
// the RTCP RR fields needed to compute sender-side RTT and to corroborate
// loss.
type ReceiverReport struct {
	SSRC         uint32 // stream being reported on
	CumLost      uint32 // cumulative packets lost
	HighestSeq   uint32 // extended highest sequence number received
	JitterMicros uint32 // interarrival jitter, microseconds
	// LastSendNanos echoes the SendNanos of the most recently received
	// media packet; DelayNanos is how long the reporter held it before
	// sending this report. RTT = now − LastSendNanos − DelayNanos.
	LastSendNanos int64
	DelayNanos    int64
}

// rrLen is the receiver report wire size.
const rrLen = 4 + 4 + 4 + 4 + 8 + 8

// RRLen is the receiver report wire size. Unmarshal ignores bytes past
// it, so peers may append trailer bytes (the client appends a one-byte
// repair-scheme echo for capability negotiation) without breaking old
// receivers.
const RRLen = rrLen

// Marshal appends the report's wire form to dst.
func (r *ReceiverReport) Marshal(dst []byte) []byte {
	var b [rrLen]byte
	binary.BigEndian.PutUint32(b[0:4], r.SSRC)
	binary.BigEndian.PutUint32(b[4:8], r.CumLost)
	binary.BigEndian.PutUint32(b[8:12], r.HighestSeq)
	binary.BigEndian.PutUint32(b[12:16], r.JitterMicros)
	binary.BigEndian.PutUint64(b[16:24], uint64(r.LastSendNanos))
	binary.BigEndian.PutUint64(b[24:32], uint64(r.DelayNanos))
	return append(dst, b[:]...)
}

// Unmarshal decodes a report.
func (r *ReceiverReport) Unmarshal(buf []byte) error {
	if len(buf) < rrLen {
		return ErrTruncated
	}
	r.SSRC = binary.BigEndian.Uint32(buf[0:4])
	r.CumLost = binary.BigEndian.Uint32(buf[4:8])
	r.HighestSeq = binary.BigEndian.Uint32(buf[8:12])
	r.JitterMicros = binary.BigEndian.Uint32(buf[12:16])
	r.LastSendNanos = int64(binary.BigEndian.Uint64(buf[16:24]))
	r.DelayNanos = int64(binary.BigEndian.Uint64(buf[24:32]))
	return nil
}
