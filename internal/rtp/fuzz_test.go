package rtp

import "testing"

// FuzzFECDecode throws arbitrary bytes at the parity decoder and, when
// they parse, drives a full incremental decode — the invariant under test
// is "no panic, no out-of-bounds" on hostile input.
func FuzzFECDecode(f *testing.F) {
	pkts := make([]*Packet, 4)
	enc := NewFECEncoder(4)
	var parity *FECPacket
	for i := range pkts {
		pkts[i] = &Packet{Seq: uint16(i), Timestamp: uint32(i), Payload: []byte{byte(i), 1, 2}}
		parity = enc.Add(pkts[i])
	}
	f.Add(parity.Marshal(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 4, 0, 3, 0, 0, 0, 1, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fp FECPacket
		if err := fp.Unmarshal(data); err != nil {
			return
		}
		// Re-marshal must round-trip the accepted input.
		var back FECPacket
		if err := back.Unmarshal(fp.Marshal(nil)); err != nil {
			t.Fatalf("re-unmarshal of accepted parity failed: %v", err)
		}
		// Offline recovery path with k−1 synthetic members.
		got := make([]*Packet, 0, int(fp.K)-1)
		for i := 0; i < int(fp.K)-1; i++ {
			got = append(got, &Packet{Seq: fp.BaseSeq + uint16(i), Payload: []byte{byte(i)}})
		}
		if rec, err := fp.Recover(got, nil); err == nil {
			if int(uint16(len(rec.Payload))) != len(rec.Payload) {
				t.Fatalf("recovered payload length %d out of range", len(rec.Payload))
			}
		}
		// Incremental path, parity-first then members.
		dec := NewFECDecoder(int(fp.K))
		dec.AddParity(&fp)
		for _, m := range got {
			dec.AddMedia(m)
		}
	})
}

// FuzzNACKParse exercises the NACK request parser and, when the input
// parses, feeds the sequences through the generator state machine.
func FuzzNACKParse(f *testing.F) {
	f.Add((&NACKRequest{SSRC: 1, Seqs: []uint16{1, 2, 3}}).Marshal(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req NACKRequest
		if err := req.Unmarshal(data); err != nil {
			return
		}
		if len(req.Seqs) > MaxNACKSeqs {
			t.Fatalf("parser admitted %d seqs", len(req.Seqs))
		}
		var back NACKRequest
		if err := back.Unmarshal(req.Marshal(nil)); err != nil {
			t.Fatalf("re-unmarshal of accepted request failed: %v", err)
		}
		if back.SSRC != req.SSRC || len(back.Seqs) != len(req.Seqs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, req)
		}
		gen := NewNACKGenerator(NACKConfig{MaxPending: 32})
		for i, s := range req.Seqs {
			gen.Missing(s, int64(i))
		}
		due, _ := gen.Due(int64(len(req.Seqs)), nil)
		for _, s := range due {
			gen.Recovered(s)
		}
	})
}
