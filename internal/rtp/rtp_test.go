package rtp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		PayloadType: 111,
		Marker:      true,
		Seq:         0xBEEF,
		Timestamp:   0xDEADBEEF,
		SSRC:        0x12345678,
		Payload:     []byte("hello voip"),
	}
	wire := p.Marshal(nil)
	if len(wire) != HeaderLen+len(p.Payload) {
		t.Fatalf("wire length %d", len(wire))
	}
	var q Packet
	if err := q.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if q.PayloadType != p.PayloadType || q.Marker != p.Marker || q.Seq != p.Seq ||
		q.Timestamp != p.Timestamp || q.SSRC != p.SSRC || string(q.Payload) != string(p.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(pt uint8, marker bool, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := Packet{PayloadType: pt & 0x7f, Marker: marker, Seq: seq, Timestamp: ts, SSRC: ssrc, Payload: payload}
		var q Packet
		if err := q.Unmarshal(p.Marshal(nil)); err != nil {
			return false
		}
		return q.PayloadType == p.PayloadType && q.Marker == p.Marker &&
			q.Seq == p.Seq && q.Timestamp == p.Timestamp && q.SSRC == p.SSRC &&
			string(q.Payload) == string(p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPacketUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.Unmarshal(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short buffer: %v", err)
	}
	bad := make([]byte, HeaderLen)
	bad[0] = 1 << 6 // version 1
	if err := p.Unmarshal(bad); err != ErrVersion {
		t.Errorf("bad version: %v", err)
	}
}

func TestPacketMarshalAppends(t *testing.T) {
	p := Packet{Seq: 1}
	prefix := []byte{9, 9}
	wire := p.Marshal(prefix)
	if wire[0] != 9 || wire[1] != 9 {
		t.Error("Marshal must append to dst")
	}
}

func TestReceiverReportRoundTrip(t *testing.T) {
	r := ReceiverReport{
		SSRC:          7,
		CumLost:       42,
		HighestSeq:    0x10002,
		JitterMicros:  1500,
		LastSendNanos: 123456789,
		DelayNanos:    555,
	}
	var q ReceiverReport
	if err := q.Unmarshal(r.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if q != r {
		t.Errorf("round trip mismatch: %+v vs %+v", q, r)
	}
	if err := q.Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short report: %v", err)
	}
}

func TestJitterConstantSpacing(t *testing.T) {
	// Perfectly paced packets → jitter converges to ~0.
	var j JitterEstimator
	const frame = ClockRate / 50 // 20ms at 90kHz
	for i := 0; i < 200; i++ {
		j.Observe(uint32(i*frame), int64(i)*20_000_000)
	}
	if j.Millis() > 0.01 {
		t.Errorf("constant spacing jitter = %v ms", j.Millis())
	}
}

func TestJitterDetectsVariance(t *testing.T) {
	var j JitterEstimator
	const frame = ClockRate / 50
	arrival := int64(0)
	for i := 0; i < 500; i++ {
		arrival += 20_000_000
		if i%2 == 0 {
			arrival += 8_000_000 // alternate +8ms delay
		} else {
			arrival -= 8_000_000
		}
		j.Observe(uint32(i*frame), arrival)
	}
	// Alternating ±8ms inter-arrival deviation: RFC jitter converges near
	// the mean absolute deviation (~16ms spacing delta).
	if j.Millis() < 5 || j.Millis() > 25 {
		t.Errorf("jitter = %v ms, want ~10-20", j.Millis())
	}
}

func TestJitterTimestampWraparound(t *testing.T) {
	var j JitterEstimator
	ts := uint32(math.MaxUint32 - 2*ClockRate/50)
	arrival := int64(0)
	for i := 0; i < 10; i++ {
		j.Observe(ts, arrival)
		ts += ClockRate / 50 // wraps through 0
		arrival += 20_000_000
	}
	if j.Millis() > 0.01 {
		t.Errorf("wraparound produced phantom jitter: %v ms", j.Millis())
	}
}

func TestLossTrackerNoLoss(t *testing.T) {
	var l LossTracker
	for s := uint16(100); s < 200; s++ {
		l.Observe(s)
	}
	if l.Lost() != 0 || l.LossRate() != 0 {
		t.Errorf("lost = %d on gapless stream", l.Lost())
	}
	if l.Expected() != 100 || l.Received() != 100 {
		t.Errorf("expected/received = %d/%d", l.Expected(), l.Received())
	}
}

func TestLossTrackerGaps(t *testing.T) {
	var l LossTracker
	for s := uint16(0); s < 100; s++ {
		if s%10 == 3 {
			continue // drop 10%
		}
		l.Observe(s)
	}
	if l.Lost() != 10 {
		t.Errorf("lost = %d, want 10", l.Lost())
	}
	if math.Abs(l.LossRate()-0.1) > 0.02 {
		t.Errorf("loss rate = %v", l.LossRate())
	}
}

func TestLossTrackerReordering(t *testing.T) {
	var l LossTracker
	for _, s := range []uint16{1, 2, 4, 3, 5, 7, 6, 8} {
		l.Observe(s)
	}
	if l.Lost() != 0 {
		t.Errorf("reordering counted as loss: %d", l.Lost())
	}
}

func TestLossTrackerWraparound(t *testing.T) {
	var l LossTracker
	start := uint16(65530)
	for i := 0; i < 20; i++ {
		l.Observe(start + uint16(i)) // wraps past 65535
	}
	if l.Lost() != 0 {
		t.Errorf("wraparound counted as loss: %d", l.Lost())
	}
	if l.Expected() != 20 {
		t.Errorf("expected = %d, want 20", l.Expected())
	}
	if l.HighestExt() != 1<<16|uint32(start+19)&0xffff {
		t.Errorf("highest ext = %#x", l.HighestExt())
	}
}

func TestLossTrackerEmpty(t *testing.T) {
	var l LossTracker
	if l.Expected() != 0 || l.Lost() != 0 || l.LossRate() != 0 {
		t.Error("empty tracker should report zeros")
	}
}

func TestFlowStats(t *testing.T) {
	var f FlowStats
	const frame = ClockRate / 50
	for i := 0; i < 100; i++ {
		p := Packet{Seq: uint16(i), Timestamp: uint32(i * frame)}
		f.ObservePacket(&p, int64(i)*20_000_000)
	}
	f.ObserveRTT(80_000_000)  // 80 ms
	f.ObserveRTT(120_000_000) // 120 ms
	f.ObserveRTT(-5)          // invalid, ignored
	m := f.Metrics()
	if m.RTTMs != 100 {
		t.Errorf("RTT = %v, want 100", m.RTTMs)
	}
	if f.RTTSamples() != 2 {
		t.Errorf("RTT samples = %d", f.RTTSamples())
	}
	if m.LossRate != 0 {
		t.Errorf("loss = %v", m.LossRate)
	}
	if !m.Valid() {
		t.Errorf("invalid metrics %+v", m)
	}
}

func TestFlowStatsNoRTT(t *testing.T) {
	var f FlowStats
	if m := f.Metrics(); m.RTTMs != 0 {
		t.Error("no samples should give zero RTT")
	}
}
