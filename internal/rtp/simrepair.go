package rtp

import "repro/internal/stats"

// This file is the repair layer's offline twin: a deterministic,
// virtual-time simulation of one media stream crossing a lossy channel
// under each repair scheme. The loss-sweep experiment uses it to map out
// where each scheme pays off (the DESIGN.md §13 selection matrix), and
// the repair bandit learns over its outputs.

// GEChannel is a two-state Gilbert-Elliott loss process: lossless in the
// good state, total loss in the bad state, with mean bad-state sojourn
// MeanBurstLen packets and stationary loss probability LossRate. With
// MeanBurstLen <= 1 it degenerates to independent (Bernoulli) loss.
type GEChannel struct {
	p   float64 // good→bad transition probability
	r   float64 // bad→good transition probability
	ind float64 // independent loss rate when not in burst mode (r == 0)
	bad bool
}

// NewGEChannel builds a channel with the given stationary loss rate and
// mean burst length.
func NewGEChannel(lossRate, meanBurstLen float64) *GEChannel {
	if lossRate <= 0 {
		return &GEChannel{}
	}
	if lossRate >= 1 {
		return &GEChannel{ind: 1}
	}
	if meanBurstLen <= 1 {
		return &GEChannel{ind: lossRate}
	}
	r := 1 / meanBurstLen
	return &GEChannel{p: r * lossRate / (1 - lossRate), r: r}
}

// Lost steps the channel one transmission and reports whether that
// transmission was lost.
func (c *GEChannel) Lost(rng *stats.RNG) bool {
	if c.r == 0 {
		return c.ind > 0 && rng.Float64() < c.ind
	}
	if c.bad {
		if rng.Float64() < c.r {
			c.bad = false
		}
	} else if rng.Float64() < c.p {
		c.bad = true
	}
	return c.bad
}

// SimParams configures one simulated stream.
type SimParams struct {
	Scheme        Scheme
	Packets       int     // media packets to send
	IntervalNanos int64   // media pacing (default 20ms)
	RTTNanos      int64   // path round-trip time (NACK repair latency)
	LossRate      float64 // stationary channel loss
	MeanBurstLen  float64 // mean loss-burst length (<=1 → independent)
	// PlayoutNanos is the playout buffer depth: a repair that lands later
	// than this after the loss is a deadline miss (default 150ms).
	PlayoutNanos int64
	// NACK bounds the retransmit machinery (zero fields take defaults;
	// the retry interval defaults to RTT + one packet interval).
	NACK NACKConfig
}

// RepairStats summarizes one simulated stream.
type RepairStats struct {
	Sent           int     // media packets sent
	Redundant      int     // parity packets / RED duplicates sent
	Lost           int     // media packets the channel ate
	Recovered      int     // losses repaired within the playout deadline
	Residual       int     // losses still unrepaired at playout
	NacksSent      int     // retransmit requests issued
	NacksHonored   int     // retransmits that arrived (in time or not)
	FECRecovered   int     // losses repaired by parity
	REDRecovered   int     // losses covered by the duplicate copy
	DeadlineMisses int64   // gaps abandoned past deadline/retry cap
	OverheadRatio  float64 // redundant bytes / media bytes actually sent
}

// ResidualLossRate returns the post-repair loss fraction.
func (s RepairStats) ResidualLossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Residual) / float64(s.Sent)
}

// LossRate returns the pre-repair channel loss fraction.
func (s RepairStats) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Sent)
}

// SimulateRepair runs one media stream through a Gilbert-Elliott channel
// under the given repair scheme, entirely in virtual time. The NACK path
// exercises the real NACKGenerator (retry cap, deadline, pacing);
// retransmit requests and retransmissions each re-cross the channel.
func SimulateRepair(p SimParams, rng *stats.RNG) RepairStats {
	if p.Packets <= 0 {
		return RepairStats{}
	}
	if p.IntervalNanos <= 0 {
		p.IntervalNanos = 20e6
	}
	if p.PlayoutNanos <= 0 {
		p.PlayoutNanos = 150e6
	}
	ch := NewGEChannel(p.LossRate, p.MeanBurstLen)
	out := RepairStats{Sent: p.Packets}

	switch {
	case p.Scheme == SchemeRED:
		simulateRED(p, ch, rng, &out)
	case p.Scheme.IsFEC():
		simulateFEC(p, ch, rng, &out)
	case p.Scheme == SchemeNACK:
		simulateNACK(p, ch, rng, &out)
	default:
		for i := 0; i < p.Packets; i++ {
			if ch.Lost(rng) {
				out.Lost++
			}
		}
	}
	out.Residual = out.Lost - out.Recovered
	if out.Sent > 0 {
		out.OverheadRatio = float64(out.Redundant) / float64(out.Sent)
	}
	return out
}

// simulateRED sends every packet twice back-to-back: the duplicate only
// helps when the burst that ate the original has already ended.
func simulateRED(p SimParams, ch *GEChannel, rng *stats.RNG, out *RepairStats) {
	for i := 0; i < p.Packets; i++ {
		lost := ch.Lost(rng)
		dupLost := ch.Lost(rng)
		out.Redundant++
		if lost {
			out.Lost++
			if !dupLost {
				out.REDRecovered++
				out.Recovered++
			}
		}
	}
}

// simulateFEC groups k packets plus one parity: a group with exactly one
// media loss and a surviving parity recovers, if the parity (sent at
// group end) still lands within the lost packet's playout window.
func simulateFEC(p SimParams, ch *GEChannel, rng *stats.RNG, out *RepairStats) {
	k := p.Scheme.FECGroup()
	groupLost := 0
	firstLossAt := int64(0)
	for i := 0; i < p.Packets; i++ {
		t := int64(i) * p.IntervalNanos
		if ch.Lost(rng) {
			out.Lost++
			if groupLost == 0 {
				firstLossAt = t
			}
			groupLost++
		}
		if (i+1)%k == 0 || i == p.Packets-1 {
			parityLost := ch.Lost(rng)
			out.Redundant++
			parityAt := t + p.IntervalNanos
			if groupLost == 1 && !parityLost && parityAt-firstLossAt <= p.PlayoutNanos {
				out.FECRecovered++
				out.Recovered++
			}
			groupLost = 0
		}
	}
}

// simulateNACK drives the real gap tracker and NACK generator: gaps are
// detected at the next successful arrival, requests re-cross the channel
// both ways, and only repairs inside the playout window count.
func simulateNACK(p SimParams, ch *GEChannel, rng *stats.RNG, out *RepairStats) {
	cfg := p.NACK
	if cfg.DeadlineNanos <= 0 {
		cfg.DeadlineNanos = p.PlayoutNanos
	}
	if cfg.IntervalNanos <= 0 {
		cfg.IntervalNanos = p.RTTNanos + p.IntervalNanos
	}
	gen := NewNACKGenerator(cfg)
	var gaps GapTracker
	lostAt := make(map[uint16]int64, 64)
	due := make([]uint16, 0, MaxNACKSeqs)

	for i := 0; i < p.Packets; i++ {
		t := int64(i) * p.IntervalNanos
		seq := uint16(i)
		if ch.Lost(rng) {
			out.Lost++
			lostAt[seq] = t
		} else {
			gaps.Observe(seq, func(s uint16) {
				gen.Missing(s, t)
			})
		}
		// Receiver tick: issue due requests; each request crosses the
		// channel twice (NACK up, retransmit down).
		due, _ = gen.Due(t, due[:0])
		for _, s := range due {
			out.NacksSent++
			nackLost := ch.Lost(rng)
			if nackLost {
				continue
			}
			out.NacksHonored++ // sender's ring always has it
			out.Redundant++    // the retransmitted copy is the overhead
			if ch.Lost(rng) {
				continue // retransmit itself lost
			}
			landAt := t + p.RTTNanos
			gen.Recovered(s)
			if first, ok := lostAt[s]; ok && landAt-first <= p.PlayoutNanos {
				out.Recovered++
				delete(lostAt, s)
			}
		}
	}
	out.DeadlineMisses = gen.DeadlineMisses()
}
