package rtp

import (
	"math"

	"repro/internal/quality"
)

// ClockRate is the media clock used for RTP timestamps (90 kHz, the
// conventional rate for timestamp arithmetic).
const ClockRate = 90000

// JitterEstimator implements the RFC 3550 §6.4.1 interarrival jitter
// estimator: J(i) = J(i−1) + (|D(i−1,i)| − J(i−1))/16, where D compares the
// spacing of arrival times against the spacing of RTP timestamps.
type JitterEstimator struct {
	init        bool
	lastTS      uint32  // RTP timestamp of previous packet (media clock)
	lastArrival int64   // arrival time of previous packet, nanoseconds
	jitter      float64 // in media clock units
}

// Observe folds one packet arrival into the estimate.
//
//via:noalloc
func (j *JitterEstimator) Observe(rtpTS uint32, arrivalNanos int64) {
	if !j.init {
		j.init = true
		j.lastTS = rtpTS
		j.lastArrival = arrivalNanos
		return
	}
	// Arrival delta in media clock units.
	arrDelta := float64(arrivalNanos-j.lastArrival) * ClockRate / 1e9
	tsDelta := float64(int32(rtpTS - j.lastTS)) // handles wraparound
	d := math.Abs(arrDelta - tsDelta)
	j.jitter += (d - j.jitter) / 16
	j.lastTS = rtpTS
	j.lastArrival = arrivalNanos
}

// Millis returns the current jitter estimate in milliseconds.
func (j *JitterEstimator) Millis() float64 {
	return j.jitter * 1000 / ClockRate
}

// Micros returns the current jitter estimate in microseconds.
func (j *JitterEstimator) Micros() uint32 {
	return uint32(j.jitter * 1e6 / ClockRate)
}

// Arrival classifies one packet arrival relative to the sequence stream.
type Arrival uint8

const (
	// ArrivalNew advances the stream: the next in-order packet, or a
	// forward jump past a gap.
	ArrivalNew Arrival = iota
	// ArrivalReordered is a packet that arrived late but had not been seen
	// before — delivered, not lost. Repair logic must treat it as filling
	// a gap, never as a fresh loss.
	ArrivalReordered
	// ArrivalDuplicate is a packet already delivered (RED's second copy, a
	// redundant retransmit, or network duplication). It is not counted as
	// received again, so duplicates can no longer mask real gaps.
	ArrivalDuplicate
)

// seenWindow is the dedup window in packets: late arrivals further than
// this behind the stream head cannot be distinguished from duplicates and
// are conservatively classified as reordered.
const seenWindow = 1024

const seenWords = seenWindow / 64

// LossTracker counts lost packets from RTP sequence numbers, tolerating
// reordering within a small window and 16-bit wraparound (RFC 3550
// Appendix A.1 style extended sequence numbers). A sliding bitmap over
// the last seenWindow sequence numbers distinguishes a late-but-delivered
// packet (reordering) from a second copy of one already delivered
// (duplicate), so reordering is not booked as loss and duplicates do not
// inflate the receive count.
type LossTracker struct {
	init      bool
	maxExt    uint32 // extended highest sequence number seen
	received  uint64
	baseExt   uint32
	cycles    uint32
	reordered uint64
	dups      uint64
	seen      [seenWords]uint64 // bitmap over ext % seenWindow
}

// Observe folds one received sequence number into the tracker.
func (l *LossTracker) Observe(seq uint16) {
	l.ObserveArrival(seq)
}

// ObserveArrival folds one received sequence number into the tracker and
// classifies the arrival.
//
//via:noalloc
func (l *LossTracker) ObserveArrival(seq uint16) Arrival {
	ext := l.extend(seq)
	if !l.init {
		l.init = true
		l.baseExt = ext
		l.maxExt = ext
		l.markSeen(ext)
		l.received++
		return ArrivalNew
	}
	if ext > l.maxExt {
		// Advance the window, clearing the bits the head slides over.
		if ext-l.maxExt >= seenWindow {
			l.seen = [seenWords]uint64{}
		} else {
			for s := l.maxExt + 1; s != ext; s++ {
				l.clearSeen(s)
			}
		}
		l.maxExt = ext
		l.markSeen(ext)
		l.received++
		return ArrivalNew
	}
	if l.maxExt-ext >= seenWindow {
		// Too far back to dedup; assume delivered-late rather than
		// double-counting it as a fresh in-order packet.
		l.reordered++
		l.received++
		return ArrivalReordered
	}
	if l.isSeen(ext) {
		l.dups++
		return ArrivalDuplicate
	}
	l.markSeen(ext)
	l.received++
	l.reordered++
	return ArrivalReordered
}

func (l *LossTracker) markSeen(ext uint32) {
	i := ext % seenWindow
	l.seen[i/64] |= 1 << (i % 64)
}

func (l *LossTracker) clearSeen(ext uint32) {
	i := ext % seenWindow
	l.seen[i/64] &^= 1 << (i % 64)
}

func (l *LossTracker) isSeen(ext uint32) bool {
	i := ext % seenWindow
	return l.seen[i/64]&(1<<(i%64)) != 0
}

// extend maps a 16-bit sequence number to the extended space.
func (l *LossTracker) extend(seq uint16) uint32 {
	if !l.init {
		return uint32(seq)
	}
	maxSeq := uint16(l.maxExt & 0xffff)
	// A jump "backwards" past half the space means the counter wrapped.
	if seq < maxSeq && maxSeq-seq > 0x8000 {
		l.cycles++
	}
	// A small backwards step (reordering) must not borrow a cycle.
	cycles := l.cycles
	if seq > maxSeq && seq-maxSeq > 0x8000 && cycles > 0 {
		cycles-- // late packet from before the wrap
	}
	return cycles<<16 | uint32(seq)
}

// Expected returns how many packets should have arrived so far.
func (l *LossTracker) Expected() uint64 {
	if !l.init {
		return 0
	}
	return uint64(l.maxExt-l.baseExt) + 1
}

// Received returns the distinct packets actually delivered (duplicates
// within the dedup window count once).
func (l *LossTracker) Received() uint64 { return l.received }

// Reordered returns how many packets arrived late but were delivered —
// filled gaps, distinct from losses.
func (l *LossTracker) Reordered() uint64 { return l.reordered }

// Duplicates returns how many already-delivered packets arrived again.
func (l *LossTracker) Duplicates() uint64 { return l.dups }

// Lost returns the cumulative loss count (clamped at zero when duplicates
// outnumber gaps).
func (l *LossTracker) Lost() uint64 {
	exp := l.Expected()
	if l.received >= exp {
		return 0
	}
	return exp - l.received
}

// LossRate returns the loss fraction in [0, 1].
func (l *LossTracker) LossRate() float64 {
	exp := l.Expected()
	if exp == 0 {
		return 0
	}
	return float64(l.Lost()) / float64(exp)
}

// HighestExt returns the extended highest sequence number received.
func (l *LossTracker) HighestExt() uint32 { return l.maxExt }

// FlowStats aggregates one media flow's receive-side measurements and the
// sender-side RTT samples, producing the call-average quality.Metrics the
// controller consumes.
type FlowStats struct {
	Jitter JitterEstimator
	Loss   LossTracker

	rttSum   float64
	rttCount int64
}

// ObservePacket records a media packet arrival and classifies it.
// Duplicates are excluded from the jitter estimate — a RED copy or
// redundant retransmit trails its original by an arbitrary gap that says
// nothing about path delay variation.
//
//via:noalloc
func (f *FlowStats) ObservePacket(p *Packet, arrivalNanos int64) Arrival {
	a := f.Loss.ObserveArrival(p.Seq)
	if a != ArrivalDuplicate {
		f.Jitter.Observe(p.Timestamp, arrivalNanos)
	}
	return a
}

// ObserveRecovered credits a repair-reconstructed packet (FEC recovery)
// to the loss ledger without feeding the jitter estimator — its "arrival
// time" is an artifact of when the parity landed, not of path delay.
func (f *FlowStats) ObserveRecovered(seq uint16) Arrival {
	return f.Loss.ObserveArrival(seq)
}

// ObserveRTT records one round-trip sample in nanoseconds.
func (f *FlowStats) ObserveRTT(nanos int64) {
	if nanos < 0 {
		return
	}
	f.rttSum += float64(nanos) / 1e6
	f.rttCount++
}

// RTTSamples returns how many RTT samples were recorded.
func (f *FlowStats) RTTSamples() int64 { return f.rttCount }

// Metrics returns the call-average metric triple.
func (f *FlowStats) Metrics() quality.Metrics {
	m := quality.Metrics{
		LossRate: f.Loss.LossRate(),
		JitterMs: f.Jitter.Millis(),
	}
	if f.rttCount > 0 {
		m.RTTMs = f.rttSum / float64(f.rttCount)
	}
	return m
}
