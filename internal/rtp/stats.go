package rtp

import (
	"math"

	"repro/internal/quality"
)

// ClockRate is the media clock used for RTP timestamps (90 kHz, the
// conventional rate for timestamp arithmetic).
const ClockRate = 90000

// JitterEstimator implements the RFC 3550 §6.4.1 interarrival jitter
// estimator: J(i) = J(i−1) + (|D(i−1,i)| − J(i−1))/16, where D compares the
// spacing of arrival times against the spacing of RTP timestamps.
type JitterEstimator struct {
	init        bool
	lastTS      uint32  // RTP timestamp of previous packet (media clock)
	lastArrival int64   // arrival time of previous packet, nanoseconds
	jitter      float64 // in media clock units
}

// Observe folds one packet arrival into the estimate.
func (j *JitterEstimator) Observe(rtpTS uint32, arrivalNanos int64) {
	if !j.init {
		j.init = true
		j.lastTS = rtpTS
		j.lastArrival = arrivalNanos
		return
	}
	// Arrival delta in media clock units.
	arrDelta := float64(arrivalNanos-j.lastArrival) * ClockRate / 1e9
	tsDelta := float64(int32(rtpTS - j.lastTS)) // handles wraparound
	d := math.Abs(arrDelta - tsDelta)
	j.jitter += (d - j.jitter) / 16
	j.lastTS = rtpTS
	j.lastArrival = arrivalNanos
}

// Millis returns the current jitter estimate in milliseconds.
func (j *JitterEstimator) Millis() float64 {
	return j.jitter * 1000 / ClockRate
}

// Micros returns the current jitter estimate in microseconds.
func (j *JitterEstimator) Micros() uint32 {
	return uint32(j.jitter * 1e6 / ClockRate)
}

// LossTracker counts lost packets from RTP sequence numbers, tolerating
// reordering within a small window and 16-bit wraparound (RFC 3550
// Appendix A.1 style extended sequence numbers).
type LossTracker struct {
	init     bool
	maxExt   uint32 // extended highest sequence number seen
	received uint64
	baseExt  uint32
	cycles   uint32
}

// Observe folds one received sequence number into the tracker.
func (l *LossTracker) Observe(seq uint16) {
	ext := l.extend(seq)
	if !l.init {
		l.init = true
		l.baseExt = ext
		l.maxExt = ext
	} else if ext > l.maxExt {
		l.maxExt = ext
	}
	l.received++
}

// extend maps a 16-bit sequence number to the extended space.
func (l *LossTracker) extend(seq uint16) uint32 {
	if !l.init {
		return uint32(seq)
	}
	maxSeq := uint16(l.maxExt & 0xffff)
	// A jump "backwards" past half the space means the counter wrapped.
	if seq < maxSeq && maxSeq-seq > 0x8000 {
		l.cycles++
	}
	// A small backwards step (reordering) must not borrow a cycle.
	cycles := l.cycles
	if seq > maxSeq && seq-maxSeq > 0x8000 && cycles > 0 {
		cycles-- // late packet from before the wrap
	}
	return cycles<<16 | uint32(seq)
}

// Expected returns how many packets should have arrived so far.
func (l *LossTracker) Expected() uint64 {
	if !l.init {
		return 0
	}
	return uint64(l.maxExt-l.baseExt) + 1
}

// Received returns the packets actually seen (duplicates count once each).
func (l *LossTracker) Received() uint64 { return l.received }

// Lost returns the cumulative loss count (clamped at zero when duplicates
// outnumber gaps).
func (l *LossTracker) Lost() uint64 {
	exp := l.Expected()
	if l.received >= exp {
		return 0
	}
	return exp - l.received
}

// LossRate returns the loss fraction in [0, 1].
func (l *LossTracker) LossRate() float64 {
	exp := l.Expected()
	if exp == 0 {
		return 0
	}
	return float64(l.Lost()) / float64(exp)
}

// HighestExt returns the extended highest sequence number received.
func (l *LossTracker) HighestExt() uint32 { return l.maxExt }

// FlowStats aggregates one media flow's receive-side measurements and the
// sender-side RTT samples, producing the call-average quality.Metrics the
// controller consumes.
type FlowStats struct {
	Jitter JitterEstimator
	Loss   LossTracker

	rttSum   float64
	rttCount int64
}

// ObservePacket records a media packet arrival.
func (f *FlowStats) ObservePacket(p *Packet, arrivalNanos int64) {
	f.Loss.Observe(p.Seq)
	f.Jitter.Observe(p.Timestamp, arrivalNanos)
}

// ObserveRTT records one round-trip sample in nanoseconds.
func (f *FlowStats) ObserveRTT(nanos int64) {
	if nanos < 0 {
		return
	}
	f.rttSum += float64(nanos) / 1e6
	f.rttCount++
}

// RTTSamples returns how many RTT samples were recorded.
func (f *FlowStats) RTTSamples() int64 { return f.rttCount }

// Metrics returns the call-average metric triple.
func (f *FlowStats) Metrics() quality.Metrics {
	m := quality.Metrics{
		LossRate: f.Loss.LossRate(),
		JitterMs: f.Jitter.Millis(),
	}
	if f.rttCount > 0 {
		m.RTTMs = f.rttSum / float64(f.rttCount)
	}
	return m
}
