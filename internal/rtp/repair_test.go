package rtp

import (
	"testing"

	"repro/internal/stats"
)

func TestSchemeCodec(t *testing.T) {
	cases := []struct {
		s    Scheme
		name string
	}{
		{SchemeNone, "none"},
		{SchemeNACK, "nack"},
		{SchemeRED, "red"},
		{SchemeFEC(2), "fec-2"},
		{SchemeFEC(4), "fec-4"},
		{SchemeFEC(15), "fec-15"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.name {
			t.Errorf("String(%d) = %q, want %q", c.s, got, c.name)
		}
		parsed, err := ParseScheme(c.name)
		if err != nil || parsed != c.s {
			t.Errorf("ParseScheme(%q) = %v, %v", c.name, parsed, err)
		}
		if got := SchemeFromByte(c.s.Byte()); got != c.s {
			t.Errorf("byte round trip %v → %v", c.s, got)
		}
	}
	for _, bad := range []string{"fec-1", "fec-16", "fec-x", "parity", "nack2"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		}
	}
	// Malformed bytes degrade to none, never error: old peers must keep
	// forwarding.
	for _, b := range []uint8{3, 0x7f, 0x80, 0x81} {
		if got := SchemeFromByte(b); got != SchemeNone {
			t.Errorf("SchemeFromByte(%#x) = %v, want none", b, got)
		}
	}
	if SchemeFEC(100) != SchemeFEC(15) || SchemeFEC(0) != SchemeFEC(2) {
		t.Error("SchemeFEC must clamp group size")
	}
}

func TestRedundancyOverhead(t *testing.T) {
	if RedundancyOverhead(SchemeNone) != 0 {
		t.Error("none must be free")
	}
	if RedundancyOverhead(SchemeRED) != 1 {
		t.Error("red doubles the stream")
	}
	if got := RedundancyOverhead(SchemeFEC(4)); got != 0.25 {
		t.Errorf("fec-4 overhead = %v, want 0.25", got)
	}
	if RedundancyOverhead(SchemeNACK) >= RedundancyOverhead(SchemeFEC(15)) {
		t.Error("nack must be the cheapest non-none scheme")
	}
}

// group builds k sequential packets with distinct payloads.
func group(t *testing.T, base uint16, k int, lens []int) []*Packet {
	t.Helper()
	out := make([]*Packet, k)
	for i := 0; i < k; i++ {
		n := 16 + i
		if lens != nil {
			n = lens[i]
		}
		pl := make([]byte, n)
		for j := range pl {
			pl[j] = byte(i*31 + j)
		}
		out[i] = &Packet{
			PayloadType: 111,
			Seq:         base + uint16(i),
			Timestamp:   uint32(base+uint16(i)) * 1800,
			SSRC:        0xCAFE,
			Payload:     pl,
		}
	}
	return out
}

func TestFECRecoverAnySingleLoss(t *testing.T) {
	cases := []struct {
		name string
		k    int
		base uint16
		lens []int
	}{
		{"k2", 2, 0, nil},
		{"k4", 4, 100, nil},
		{"k4-varied-lens", 4, 8, []int{8, 200, 1, 40}},
		{"k8", 8, 1000, nil},
		{"k4-wrap-adjacent", 4, 0xfffc, nil}, // group ends at seq 65535
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkts := group(t, c.base, c.k, c.lens)
			enc := NewFECEncoder(c.k)
			var parity *FECPacket
			for _, p := range pkts {
				parity = enc.Add(p)
			}
			if parity == nil {
				t.Fatal("encoder did not complete the group")
			}
			wire := parity.Marshal(nil)
			for miss := 0; miss < c.k; miss++ {
				var fp FECPacket
				if err := fp.Unmarshal(wire); err != nil {
					t.Fatal(err)
				}
				got := make([]*Packet, 0, c.k-1)
				for i, p := range pkts {
					if i != miss {
						got = append(got, p)
					}
				}
				rec, err := fp.Recover(got, nil)
				if err != nil {
					t.Fatalf("miss=%d: %v", miss, err)
				}
				want := pkts[miss]
				if rec.Seq != want.Seq || rec.Timestamp != want.Timestamp ||
					rec.SSRC != want.SSRC || string(rec.Payload) != string(want.Payload) {
					t.Errorf("miss=%d recovered %v, want %v", miss, &rec, want)
				}
			}
		})
	}
}

func TestFECDoubleLossUnrecoverable(t *testing.T) {
	pkts := group(t, 40, 4, nil)
	enc := NewFECEncoder(4)
	var parity *FECPacket
	for _, p := range pkts {
		parity = enc.Add(p)
	}
	if _, err := parity.Recover(pkts[:2], nil); err != ErrFECUnrecoverable {
		t.Errorf("double loss: %v, want ErrFECUnrecoverable", err)
	}
	// Duplicated member and out-of-group member must be rejected too.
	if _, err := parity.Recover([]*Packet{pkts[0], pkts[0], pkts[1]}, nil); err == nil {
		t.Error("duplicate member accepted")
	}
	foreign := *pkts[0]
	foreign.Seq = 999
	if _, err := parity.Recover([]*Packet{pkts[0], pkts[1], &foreign}, nil); err == nil {
		t.Error("out-of-group member accepted")
	}
}

func TestFECPacketUnmarshalErrors(t *testing.T) {
	var fp FECPacket
	if err := fp.Unmarshal(make([]byte, fecHdrLen-1)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := (&FECPacket{BaseSeq: 0, K: 1, Payload: []byte{1}}).Marshal(nil)
	if err := fp.Unmarshal(bad); err != ErrRepair {
		t.Errorf("k=1: %v", err)
	}
	bad = (&FECPacket{BaseSeq: 0, K: 16, Payload: []byte{1}}).Marshal(nil)
	if err := fp.Unmarshal(bad); err != ErrRepair {
		t.Errorf("k=16: %v", err)
	}
	// A recovered length exceeding the parity payload is detected at
	// recovery time.
	corrupt := FECPacket{K: 2, LenXor: 100, Payload: []byte{1, 2}}
	member := &Packet{Seq: 0, Payload: []byte{9}}
	if _, err := corrupt.Recover([]*Packet{member}, nil); err != ErrFECUnrecoverable {
		t.Errorf("oversized recovered length: %v", err)
	}
}

func TestFECDecoderIncremental(t *testing.T) {
	const k = 4
	pkts := group(t, 200, k, nil)
	enc := NewFECEncoder(k)
	var parity *FECPacket
	for _, p := range pkts {
		parity = enc.Add(p)
	}

	// Parity-last: drop pkts[2], feed the rest, then parity.
	dec := NewFECDecoder(k)
	for i, p := range pkts {
		if i == 2 {
			continue
		}
		if _, ok := dec.AddMedia(p); ok {
			t.Fatal("recovered before parity arrived")
		}
	}
	rec, ok := dec.AddParity(parity)
	if !ok || rec.Seq != pkts[2].Seq || string(rec.Payload) != string(pkts[2].Payload) {
		t.Fatalf("parity-last recovery: ok=%v rec=%v", ok, &rec)
	}

	// Parity-first: parity arrives before the last survivor.
	dec = NewFECDecoder(k)
	if _, ok := dec.AddMedia(pkts[0]); ok {
		t.Fatal("premature recovery")
	}
	if _, ok := dec.AddParity(parity); ok {
		t.Fatal("recovered with two members missing")
	}
	if _, ok := dec.AddMedia(pkts[1]); ok {
		t.Fatal("still two missing")
	}
	rec, ok = dec.AddMedia(pkts[3])
	if !ok || rec.Seq != pkts[2].Seq || string(rec.Payload) != string(pkts[2].Payload) {
		t.Fatalf("parity-first recovery: ok=%v rec=%v", ok, &rec)
	}

	// Complete group: parity must not "recover" anything.
	dec = NewFECDecoder(k)
	for _, p := range pkts {
		dec.AddMedia(p)
	}
	if _, ok := dec.AddParity(parity); ok {
		t.Fatal("recovery from a complete group")
	}
}

func TestNACKRequestRoundTrip(t *testing.T) {
	req := NACKRequest{SSRC: 0xABCD, Seqs: []uint16{1, 5, 65535}}
	var got NACKRequest
	if err := got.Unmarshal(req.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if got.SSRC != req.SSRC || len(got.Seqs) != 3 || got.Seqs[2] != 65535 {
		t.Errorf("round trip: %+v", got)
	}
	if err := got.Unmarshal([]byte{1, 2}); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	// Claimed count beyond the buffer.
	bad := req.Marshal(nil)
	bad[4] = 60
	if err := got.Unmarshal(bad); err != ErrTruncated {
		t.Errorf("overclaimed count: %v", err)
	}
	// Marshal caps at MaxNACKSeqs.
	big := NACKRequest{Seqs: make([]uint16, MaxNACKSeqs+10)}
	if err := got.Unmarshal(big.Marshal(nil)); err != nil || len(got.Seqs) != MaxNACKSeqs {
		t.Errorf("cap: %d seqs, err %v", len(got.Seqs), err)
	}
}

func TestNACKGeneratorRetryCap(t *testing.T) {
	const ms = int64(1e6)
	gen := NewNACKGenerator(NACKConfig{RetryCap: 2, DeadlineNanos: 1000 * ms, IntervalNanos: 10 * ms})
	gen.Missing(7, 0)
	var due []uint16
	requests := 0
	for now := int64(0); now < 500*ms; now += 5 * ms {
		due, _ = gen.Due(now, due[:0])
		requests += len(due)
	}
	if requests != 2 {
		t.Errorf("requests = %d, want retry cap 2", requests)
	}
	if gen.Pending() != 0 {
		t.Errorf("entry must expire after the cap: pending %d", gen.Pending())
	}
	if gen.DeadlineMisses() != 1 {
		t.Errorf("misses = %d, want 1", gen.DeadlineMisses())
	}
}

func TestNACKGeneratorDeadline(t *testing.T) {
	const ms = int64(1e6)
	gen := NewNACKGenerator(NACKConfig{RetryCap: 100, DeadlineNanos: 50 * ms, IntervalNanos: 20 * ms})
	gen.Missing(1, 0)
	due, expired := gen.Due(0, nil)
	if len(due) != 1 || expired != 0 {
		t.Fatalf("first Due: %v expired %d", due, expired)
	}
	due, expired = gen.Due(30*ms, due[:0])
	if len(due) != 1 || expired != 0 {
		t.Fatalf("second Due: %v expired %d", due, expired)
	}
	due, expired = gen.Due(60*ms, due[:0])
	if len(due) != 0 || expired != 1 {
		t.Fatalf("past deadline: %v expired %d", due, expired)
	}
	if gen.DeadlineMisses() != 1 || gen.Pending() != 0 {
		t.Errorf("misses %d pending %d", gen.DeadlineMisses(), gen.Pending())
	}
}

func TestNACKGeneratorRecovered(t *testing.T) {
	gen := NewNACKGenerator(NACKConfig{})
	gen.Missing(3, 0)
	gen.Missing(4, 0)
	gen.Missing(3, 5) // idempotent
	if gen.Pending() != 2 {
		t.Fatalf("pending = %d", gen.Pending())
	}
	gen.Recovered(3)
	if gen.Pending() != 1 {
		t.Fatalf("pending after recovery = %d", gen.Pending())
	}
	due, _ := gen.Due(0, nil)
	if len(due) != 1 || due[0] != 4 {
		t.Errorf("due = %v, want [4]", due)
	}
	if gen.DeadlineMisses() != 0 {
		t.Errorf("recovery must not count as a miss")
	}
}

func TestNACKGeneratorTableBound(t *testing.T) {
	gen := NewNACKGenerator(NACKConfig{MaxPending: 4})
	for s := uint16(0); s < 10; s++ {
		gen.Missing(s, 0)
	}
	if gen.Pending() != 4 {
		t.Errorf("pending = %d, want bound 4", gen.Pending())
	}
	if gen.DeadlineMisses() != 6 {
		t.Errorf("evictions must count as misses: %d", gen.DeadlineMisses())
	}
}

func TestGapTracker(t *testing.T) {
	var g GapTracker
	var missed []uint16
	miss := func(s uint16) { missed = append(missed, s) }
	for _, s := range []uint16{10, 11, 14, 12, 15} {
		g.Observe(s, miss)
	}
	// 14 after 11 reports 12,13; late 12 reports nothing; 15 is in order.
	if len(missed) != 2 || missed[0] != 12 || missed[1] != 13 {
		t.Errorf("missed = %v, want [12 13]", missed)
	}
	// A huge jump is a discontinuity, not thousands of losses.
	missed = missed[:0]
	g.Observe(10000, miss)
	if len(missed) != 0 {
		t.Errorf("stream jump reported %d losses", len(missed))
	}
	g.Observe(10001, miss)
	if len(missed) != 0 {
		t.Errorf("post-jump resync broken: %v", missed)
	}
}

func TestRtxRing(t *testing.T) {
	r := NewRtxRing(8)
	for seq := uint16(0); seq < 20; seq++ {
		r.Put(seq, []byte{byte(seq), 0xAA})
	}
	if _, ok := r.Get(3); ok {
		t.Error("seq 3 must have been overwritten (3+8=11, 3+16=19)")
	}
	wire, ok := r.Get(19)
	if !ok || wire[0] != 19 {
		t.Errorf("seq 19: ok=%v wire=%v", ok, wire)
	}
	if _, ok := r.Get(21); ok {
		t.Error("never-stored seq returned")
	}
}

func TestLossTrackerReorderedVsLost(t *testing.T) {
	var l LossTracker
	arrivals := []struct {
		seq  uint16
		want Arrival
	}{
		{0, ArrivalNew},
		{1, ArrivalNew},
		{3, ArrivalNew},       // gap: 2 missing
		{2, ArrivalReordered}, // late, fills the gap
		{2, ArrivalDuplicate}, // second copy
		{4, ArrivalNew},
		{4, ArrivalDuplicate},
	}
	for _, a := range arrivals {
		if got := l.ObserveArrival(a.seq); got != a.want {
			t.Errorf("seq %d: arrival %v, want %v", a.seq, got, a.want)
		}
	}
	if l.Lost() != 0 {
		t.Errorf("lost = %d: reordering double-penalized", l.Lost())
	}
	if l.Reordered() != 1 || l.Duplicates() != 2 {
		t.Errorf("reordered/dups = %d/%d, want 1/2", l.Reordered(), l.Duplicates())
	}
	if l.Received() != 5 {
		t.Errorf("received = %d, want 5 distinct", l.Received())
	}
}

func TestLossTrackerDuplicatesDontMaskLoss(t *testing.T) {
	// Historically every duplicate bumped the receive count, letting RED's
	// duplicates cancel out real gaps. Send 0..9 with 5 missing, then
	// duplicate 3 five times: loss must still be 1.
	var l LossTracker
	for s := uint16(0); s < 10; s++ {
		if s == 5 {
			continue
		}
		l.Observe(s)
	}
	for i := 0; i < 5; i++ {
		l.Observe(3)
	}
	if l.Lost() != 1 {
		t.Errorf("lost = %d, want 1 (duplicates masked the gap)", l.Lost())
	}
}

func TestFlowStatsArrivalClassification(t *testing.T) {
	var f FlowStats
	p := Packet{Seq: 0, Timestamp: 0}
	if a := f.ObservePacket(&p, 0); a != ArrivalNew {
		t.Errorf("first packet: %v", a)
	}
	if a := f.ObservePacket(&p, 40_000_000); a != ArrivalDuplicate {
		t.Errorf("dup: %v", a)
	}
	// The duplicate (40ms late) must not have polluted jitter.
	if f.Jitter.Millis() != 0 {
		t.Errorf("duplicate fed jitter: %v ms", f.Jitter.Millis())
	}
	p2 := Packet{Seq: 2, Timestamp: 2 * 1800}
	f.ObservePacket(&p2, 40_000_000)
	if f.Loss.Lost() != 1 {
		t.Fatalf("lost = %d, want 1", f.Loss.Lost())
	}
	if a := f.ObserveRecovered(1); a != ArrivalReordered {
		t.Errorf("recovery: %v", a)
	}
	if f.Loss.Lost() != 0 {
		t.Errorf("recovery must clear the loss: %d", f.Loss.Lost())
	}
}

func TestSimulateRepairSchemes(t *testing.T) {
	const ms = int64(1e6)
	base := SimParams{
		Packets:       20000,
		IntervalNanos: 20 * ms,
		PlayoutNanos:  150 * ms,
	}

	run := func(s Scheme, rtt int64, loss, burst float64) RepairStats {
		p := base
		p.Scheme = s
		p.RTTNanos = rtt
		p.LossRate = loss
		p.MeanBurstLen = burst
		return SimulateRepair(p, stats.NewRNG(7).Split(s.String()))
	}

	// Low RTT, light independent loss: NACK repairs nearly everything.
	none := run(SchemeNone, 40*ms, 0.02, 1)
	nack := run(SchemeNACK, 40*ms, 0.02, 1)
	if none.Residual == 0 {
		t.Fatal("baseline lost nothing; regime too gentle")
	}
	if nack.ResidualLossRate() > 0.2*none.ResidualLossRate() {
		t.Errorf("nack residual %v vs none %v on a clean path",
			nack.ResidualLossRate(), none.ResidualLossRate())
	}
	if nack.NacksSent == 0 || nack.NacksHonored == 0 {
		t.Error("nack path never exercised")
	}
	if nack.OverheadRatio > 0.15 {
		t.Errorf("nack overhead %v implausibly high", nack.OverheadRatio)
	}

	// High RTT kills NACK (repair outlives playout) but not FEC.
	nackFar := run(SchemeNACK, 400*ms, 0.05, 3)
	fecFar := run(SchemeFEC(4), 400*ms, 0.05, 3)
	noneFar := run(SchemeNone, 400*ms, 0.05, 3)
	if nackFar.Recovered != 0 {
		t.Errorf("nack recovered %d despite RTT > playout", nackFar.Recovered)
	}
	if nackFar.DeadlineMisses == 0 {
		t.Error("deadline misses must be counted when RTT > playout")
	}
	if fecFar.ResidualLossRate() >= 0.9*noneFar.ResidualLossRate() {
		t.Errorf("fec residual %v vs none %v under burst loss",
			fecFar.ResidualLossRate(), noneFar.ResidualLossRate())
	}
	if fecFar.FECRecovered == 0 {
		t.Error("fec never recovered")
	}

	// RED overhead is 1:1; FEC-4 is a quarter.
	red := run(SchemeRED, 400*ms, 0.05, 3)
	if red.OverheadRatio < 0.9 {
		t.Errorf("red overhead %v, want ~1", red.OverheadRatio)
	}
	if fecFar.OverheadRatio > 0.3 {
		t.Errorf("fec-4 overhead %v, want ~0.25", fecFar.OverheadRatio)
	}
	if red.REDRecovered == 0 {
		t.Error("red never recovered")
	}
}

func TestSimulateRepairDeterministic(t *testing.T) {
	p := SimParams{Scheme: SchemeNACK, Packets: 5000, RTTNanos: 60e6, LossRate: 0.05, MeanBurstLen: 2}
	a := SimulateRepair(p, stats.NewRNG(11).Split("x"))
	b := SimulateRepair(p, stats.NewRNG(11).Split("x"))
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}
