package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Loss repair (DESIGN.md §13): the in-band machinery that recovers media
// packets between a loss and the controller's next routing decision. Three
// schemes, per the SFU guidance the design follows — NACK retransmission
// when the path is reliable (cheap, needs a round trip), RED duplication
// and XOR-FEC when it is not (redundancy paid up front, no round trip):
//
//   - NACK: the receiver tracks sequence gaps and asks the sender to
//     retransmit, bounded by a per-packet retry cap and a deadline so
//     repair never outlives playout. The sender answers from a fixed-size
//     retransmit ring.
//   - RED: every media packet is sent twice; the receiver's duplicate
//     suppression makes the copy invisible unless the original was lost.
//   - FEC: packets are grouped k at a time and one XOR parity packet is
//     emitted per group; any single loss in a group is reconstructed from
//     the parity and the k−1 survivors. Double loss is detected as
//     unrecoverable.
//
// Everything here is deterministic and clock-free: callers thread
// timestamps in as nanosecond integers (virtual time in simulation, wall
// time in the live client), so the determinism analyzer holds for this
// package.

// Scheme identifies a loss-repair scheme. The zero value is SchemeNone.
// FEC schemes carry their group size k in the value (see SchemeFEC).
type Scheme uint8

const (
	// SchemeNone is plain forwarding: no repair.
	SchemeNone Scheme = 0
	// SchemeNACK is receiver-driven retransmission.
	SchemeNACK Scheme = 1
	// SchemeRED is send-twice duplication.
	SchemeRED Scheme = 2
)

// fecBit marks FEC schemes; the low nibble carries the group size.
const fecBit = 0x80

// MaxFECGroup bounds the FEC group size encodable in a scheme byte.
const MaxFECGroup = 15

// SchemeFEC returns the XOR-FEC scheme with group size k (clamped to
// [2, MaxFECGroup]).
func SchemeFEC(k int) Scheme {
	if k < 2 {
		k = 2
	}
	if k > MaxFECGroup {
		k = MaxFECGroup
	}
	return Scheme(fecBit | k)
}

// IsFEC reports whether the scheme is an XOR-FEC variant.
func (s Scheme) IsFEC() bool { return s&fecBit != 0 }

// FECGroup returns the FEC group size (0 for non-FEC schemes).
func (s Scheme) FECGroup() int {
	if !s.IsFEC() {
		return 0
	}
	return int(s &^ fecBit)
}

// Byte returns the wire form carried in the media frame header.
func (s Scheme) Byte() uint8 { return uint8(s) }

// SchemeFromByte decodes a frame-header scheme byte. Unknown or malformed
// values decode to SchemeNone — a forwarding node or an old peer must
// degrade to plain forwarding, never fail the call.
func SchemeFromByte(b uint8) Scheme {
	s := Scheme(b)
	switch {
	case s == SchemeNone || s == SchemeNACK || s == SchemeRED:
		return s
	case s.IsFEC() && s.FECGroup() >= 2:
		return s
	default:
		return SchemeNone
	}
}

// String renders the scheme ("none", "nack", "red", "fec-4").
func (s Scheme) String() string {
	switch {
	case s == SchemeNone:
		return "none"
	case s == SchemeNACK:
		return "nack"
	case s == SchemeRED:
		return "red"
	case s.IsFEC():
		return "fec-" + strconv.Itoa(s.FECGroup())
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ParseScheme parses a scheme name as rendered by String.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "none", "":
		return SchemeNone, nil
	case "nack":
		return SchemeNACK, nil
	case "red":
		return SchemeRED, nil
	}
	if k, ok := strings.CutPrefix(name, "fec-"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 2 || n > MaxFECGroup {
			return SchemeNone, fmt.Errorf("rtp: bad fec group in scheme %q", name)
		}
		return SchemeFEC(n), nil
	}
	return SchemeNone, fmt.Errorf("rtp: unknown repair scheme %q", name)
}

// RedundancyOverhead returns the scheme's nominal bandwidth overhead as a
// fraction of the media rate — what the §4.6-style budget charges a call
// for choosing it: RED doubles the stream, FEC-k adds one parity per k
// packets, NACK costs only occasional retransmits (a nominal 5%).
func RedundancyOverhead(s Scheme) float64 {
	switch {
	case s == SchemeNACK:
		return 0.05
	case s == SchemeRED:
		return 1.0
	case s.IsFEC():
		return 1.0 / float64(s.FECGroup())
	default:
		return 0
	}
}

// ErrRepair reports a malformed repair payload (FEC or NACK wire form).
var ErrRepair = errors.New("rtp: malformed repair payload")

// ErrFECUnrecoverable reports a FEC group that cannot be reconstructed —
// more than one member missing, or inconsistent member metadata.
var ErrFECUnrecoverable = errors.New("rtp: fec group unrecoverable")

// FECPacket is one XOR parity packet covering the K media packets
// [BaseSeq, BaseSeq+K). Payload is the XOR of the members' payloads
// (shorter payloads zero-padded); LenXor and TSXor are the XOR of the
// members' payload lengths and RTP timestamps, so a single missing
// member's length and timestamp are recoverable too.
type FECPacket struct {
	BaseSeq uint16
	K       uint8
	LenXor  uint16
	TSXor   uint32
	Payload []byte // aliases the decode buffer on Unmarshal
}

// fecHdrLen is the parity packet's fixed header size.
const fecHdrLen = 2 + 1 + 2 + 4

// Marshal appends the parity packet's wire form to dst.
func (p *FECPacket) Marshal(dst []byte) []byte {
	var h [fecHdrLen]byte
	binary.BigEndian.PutUint16(h[0:2], p.BaseSeq)
	h[2] = p.K
	binary.BigEndian.PutUint16(h[3:5], p.LenXor)
	binary.BigEndian.PutUint32(h[5:9], p.TSXor)
	dst = append(dst, h[:]...)
	return append(dst, p.Payload...)
}

// Unmarshal decodes a parity packet. Payload aliases buf.
func (p *FECPacket) Unmarshal(buf []byte) error {
	if len(buf) < fecHdrLen {
		return ErrTruncated
	}
	p.BaseSeq = binary.BigEndian.Uint16(buf[0:2])
	p.K = buf[2]
	if p.K < 2 || p.K > MaxFECGroup {
		return ErrRepair
	}
	p.LenXor = binary.BigEndian.Uint16(buf[3:5])
	p.TSXor = binary.BigEndian.Uint32(buf[5:9])
	p.Payload = buf[fecHdrLen:]
	return nil
}

// Recover reconstructs the single missing member of the group from the
// parity and the K−1 received members. Fewer survivors mean double loss
// (ErrFECUnrecoverable); members outside the group or duplicated are
// rejected. The returned packet's payload appends to dst (pass nil, or a
// reused buffer to avoid allocation).
func (p *FECPacket) Recover(got []*Packet, dst []byte) (Packet, error) {
	k := int(p.K)
	if len(got) != k-1 {
		return Packet{}, ErrFECUnrecoverable
	}
	var mask uint16
	lenXor := p.LenXor
	tsXor := p.TSXor
	for _, m := range got {
		off := int(m.Seq - p.BaseSeq) // mod-2^16 offset
		if off < 0 || off >= k || mask&(1<<off) != 0 {
			return Packet{}, ErrFECUnrecoverable
		}
		mask |= 1 << off
		lenXor ^= uint16(len(m.Payload))
		tsXor ^= m.Timestamp
	}
	missing := 0
	for mask&(1<<missing) != 0 {
		missing++
	}
	if int(lenXor) > len(p.Payload) {
		return Packet{}, ErrFECUnrecoverable
	}
	buf := append(dst[:0], p.Payload[:lenXor]...)
	for _, m := range got {
		n := int(lenXor)
		if len(m.Payload) < n {
			n = len(m.Payload)
		}
		for i := 0; i < n; i++ {
			buf[i] ^= m.Payload[i]
		}
	}
	out := Packet{
		PayloadType: got[0].PayloadType,
		Seq:         p.BaseSeq + uint16(missing),
		Timestamp:   tsXor,
		SSRC:        got[0].SSRC,
		Payload:     buf,
	}
	return out, nil
}

// FECEncoder accumulates sender-side XOR parity over groups of K media
// packets. Add folds packets in send order and returns the completed
// parity packet every K-th call; the returned packet (and its payload)
// are reused by the next group, so marshal it before the next Add.
// Steady-state operation allocates nothing.
type FECEncoder struct {
	k   int
	n   int
	pkt FECPacket
}

// NewFECEncoder builds an encoder for group size k (clamped to
// [2, MaxFECGroup]).
func NewFECEncoder(k int) *FECEncoder {
	return &FECEncoder{k: SchemeFEC(k).FECGroup()}
}

// K returns the group size.
func (e *FECEncoder) K() int { return e.k }

// Add folds one media packet into the current group.
//
//via:noalloc
func (e *FECEncoder) Add(p *Packet) *FECPacket {
	if e.n == 0 {
		e.pkt.BaseSeq = p.Seq
		e.pkt.K = uint8(e.k)
		e.pkt.LenXor = 0
		e.pkt.TSXor = 0
		e.pkt.Payload = e.pkt.Payload[:0]
	}
	for len(e.pkt.Payload) < len(p.Payload) {
		e.pkt.Payload = append(e.pkt.Payload, 0)
	}
	for i, b := range p.Payload {
		e.pkt.Payload[i] ^= b
	}
	e.pkt.LenXor ^= uint16(len(p.Payload))
	e.pkt.TSXor ^= p.Timestamp
	e.n++
	if e.n == e.k {
		e.n = 0
		return &e.pkt
	}
	return nil
}

// Reset abandons the in-progress group (e.g. after a mid-call downgrade).
func (e *FECEncoder) Reset() { e.n = 0 }

// fecGroupSlots bounds how many FEC groups the decoder tracks at once;
// reordering across more than this many groups abandons the oldest.
const fecGroupSlots = 4

// fecGroup is one in-flight group's running XOR — O(1) memory per group
// regardless of k: recovering a single loss needs only parity ⊕ (XOR of
// survivors), never the survivors individually.
type fecGroup struct {
	active     bool
	base       uint16
	mask       uint16 // member offsets folded in
	lenXor     uint16
	tsXor      uint32
	ptype      uint8
	ssrc       uint32
	acc        []byte // running XOR of member payloads (reused backing)
	accLen     int    // longest member payload folded so far
	haveParity bool
	parity     FECPacket
	done       bool // recovered or complete; ignore stragglers
}

// FECDecoder reassembles receiver-side FEC groups incrementally. Feed
// every media packet to AddMedia and every parity packet to AddParity;
// when a group with exactly one missing member gains its parity (in either
// order), the missing packet is returned. The returned packet's payload
// is owned by the decoder and valid until the next Add call.
type FECDecoder struct {
	k      int
	groups [fecGroupSlots]fecGroup
	out    []byte // recovery buffer, reused
}

// NewFECDecoder builds a decoder for group size k (clamped like the
// encoder).
func NewFECDecoder(k int) *FECDecoder {
	return &FECDecoder{k: SchemeFEC(k).FECGroup()}
}

// groupFor finds or claims the slot for the group with the given base,
// evicting the stalest group when all slots are busy.
func (d *FECDecoder) groupFor(base uint16) *fecGroup {
	evict := 0
	var evictDist uint16
	for i := range d.groups {
		g := &d.groups[i]
		if g.active && g.base == base {
			return g
		}
		if !g.active {
			evict = i
			evictDist = 0xffff
			continue
		}
		// Prefer evicting the group furthest behind the new one.
		if dist := base - g.base; dist > evictDist {
			evict, evictDist = i, dist
		}
	}
	g := &d.groups[evict]
	*g = fecGroup{active: true, base: base, acc: g.acc[:0]}
	return g
}

// AddMedia folds one received media packet into its group.
func (d *FECDecoder) AddMedia(p *Packet) (Packet, bool) {
	base := p.Seq / uint16(d.k) * uint16(d.k)
	g := d.groupFor(base)
	off := p.Seq - base
	if g.done || g.mask&(1<<off) != 0 {
		return Packet{}, false
	}
	g.mask |= 1 << off
	g.ptype = p.PayloadType
	g.ssrc = p.SSRC
	for len(g.acc) < len(p.Payload) {
		g.acc = append(g.acc, 0)
	}
	for i, b := range p.Payload {
		g.acc[i] ^= b
	}
	if len(p.Payload) > g.accLen {
		g.accLen = len(p.Payload)
	}
	g.lenXor ^= uint16(len(p.Payload))
	g.tsXor ^= p.Timestamp
	if bits.OnesCount16(g.mask) == d.k {
		g.done = true // nothing was lost; parity is moot
	}
	return d.tryRecover(g)
}

// AddParity folds one received parity packet into its group.
func (d *FECDecoder) AddParity(p *FECPacket) (Packet, bool) {
	if int(p.K) != d.k {
		return Packet{}, false // scheme mismatch; drop
	}
	g := d.groupFor(p.BaseSeq)
	if g.done || g.haveParity {
		return Packet{}, false
	}
	g.haveParity = true
	// Copy: the parity payload aliases the caller's receive buffer.
	g.parity.BaseSeq = p.BaseSeq
	g.parity.K = p.K
	g.parity.LenXor = p.LenXor
	g.parity.TSXor = p.TSXor
	g.parity.Payload = append(g.parity.Payload[:0], p.Payload...)
	return d.tryRecover(g)
}

// tryRecover reconstructs the one missing member once parity plus k−1
// members are in.
func (d *FECDecoder) tryRecover(g *fecGroup) (Packet, bool) {
	if g.done || !g.haveParity || bits.OnesCount16(g.mask) != d.k-1 {
		return Packet{}, false
	}
	g.done = true
	missLen := g.parity.LenXor ^ g.lenXor
	if int(missLen) > len(g.parity.Payload) {
		return Packet{}, false // corrupt parity; unrecoverable
	}
	missing := 0
	for g.mask&(1<<missing) != 0 {
		missing++
	}
	d.out = append(d.out[:0], g.parity.Payload[:missLen]...)
	n := int(missLen)
	if g.accLen < n {
		n = g.accLen
	}
	for i := 0; i < n; i++ {
		d.out[i] ^= g.acc[i]
	}
	return Packet{
		PayloadType: g.ptype,
		Seq:         g.base + uint16(missing),
		Timestamp:   g.parity.TSXor ^ g.tsXor,
		SSRC:        g.ssrc,
		Payload:     d.out,
	}, true
}

// MaxNACKSeqs bounds the sequence numbers one NACK request carries.
const MaxNACKSeqs = 64

// NACKRequest asks the sender to retransmit specific sequence numbers —
// the RTCP generic-NACK analogue, carried as its own frame kind.
type NACKRequest struct {
	SSRC uint32
	Seqs []uint16
}

// nackHdrLen is the request's fixed header size.
const nackHdrLen = 4 + 1

// Marshal appends the request's wire form to dst (at most MaxNACKSeqs
// sequence numbers are encoded).
func (n *NACKRequest) Marshal(dst []byte) []byte {
	count := len(n.Seqs)
	if count > MaxNACKSeqs {
		count = MaxNACKSeqs
	}
	var h [nackHdrLen]byte
	binary.BigEndian.PutUint32(h[0:4], n.SSRC)
	h[4] = byte(count)
	dst = append(dst, h[:]...)
	for _, s := range n.Seqs[:count] {
		dst = binary.BigEndian.AppendUint16(dst, s)
	}
	return dst
}

// Unmarshal decodes a request, reusing Seqs' capacity.
func (n *NACKRequest) Unmarshal(buf []byte) error {
	if len(buf) < nackHdrLen {
		return ErrTruncated
	}
	n.SSRC = binary.BigEndian.Uint32(buf[0:4])
	count := int(buf[4])
	if count > MaxNACKSeqs {
		return ErrRepair
	}
	if len(buf) < nackHdrLen+2*count {
		return ErrTruncated
	}
	n.Seqs = n.Seqs[:0]
	for i := 0; i < count; i++ {
		n.Seqs = append(n.Seqs, binary.BigEndian.Uint16(buf[nackHdrLen+2*i:]))
	}
	return nil
}

// NACKConfig bounds receiver-driven retransmission so repair never
// outlives playout.
type NACKConfig struct {
	// RetryCap is the maximum requests per missing packet (default 3).
	RetryCap int
	// DeadlineNanos abandons a missing packet this long after the gap was
	// first seen — the playout deadline (default 400ms).
	DeadlineNanos int64
	// IntervalNanos is the minimum spacing between requests for the same
	// packet — give a retransmit a round trip to land (default 40ms).
	IntervalNanos int64
	// MaxPending bounds the tracked-gap table; a burst beyond it expires
	// the oldest gaps as deadline misses (default 128).
	MaxPending int
}

// withDefaults fills zero fields.
func (c NACKConfig) withDefaults() NACKConfig {
	if c.RetryCap <= 0 {
		c.RetryCap = 3
	}
	if c.DeadlineNanos <= 0 {
		c.DeadlineNanos = 400e6
	}
	if c.IntervalNanos <= 0 {
		c.IntervalNanos = 40e6
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 128
	}
	return c
}

// nackEntry tracks one missing packet.
type nackEntry struct {
	seq     uint16
	first   int64 // when the gap was first seen
	lastReq int64 // when the last request went out
	tries   int
}

// NACKGenerator is the receiver-side gap bookkeeper: register gaps with
// Missing, clear them with Recovered when a retransmit (or late original)
// lands, and drain Due periodically to learn which sequence numbers to
// request. All times are caller-supplied nanoseconds — no clock inside.
type NACKGenerator struct {
	cfg     NACKConfig
	entries []nackEntry
	misses  int64
}

// NewNACKGenerator builds a generator (zero config fields take defaults).
func NewNACKGenerator(cfg NACKConfig) *NACKGenerator {
	c := cfg.withDefaults()
	return &NACKGenerator{cfg: c, entries: make([]nackEntry, 0, c.MaxPending)}
}

// Missing registers a gap first observed at nowNanos (idempotent). When
// the table is full the oldest gap is expired as a deadline miss — under
// that much loss the oldest gap was not going to make playout anyway.
func (g *NACKGenerator) Missing(seq uint16, nowNanos int64) {
	for i := range g.entries {
		if g.entries[i].seq == seq {
			return
		}
	}
	if len(g.entries) >= g.cfg.MaxPending {
		g.entries = g.entries[1:]
		g.misses++
	}
	// Backdate lastReq so the first Due after detection requests at once.
	g.entries = append(g.entries, nackEntry{
		seq:     seq,
		first:   nowNanos,
		lastReq: nowNanos - g.cfg.IntervalNanos,
	})
}

// Recovered clears a gap (the packet arrived, by retransmit or late).
func (g *NACKGenerator) Recovered(seq uint16) {
	for i := range g.entries {
		if g.entries[i].seq == seq {
			g.entries = append(g.entries[:i], g.entries[i+1:]...)
			return
		}
	}
}

// Due appends the sequence numbers that should be (re)requested now to
// dst and returns it, along with how many gaps expired this round
// (deadline passed or retry cap spent) — those are abandoned as
// unrepairable.
func (g *NACKGenerator) Due(nowNanos int64, dst []uint16) ([]uint16, int) {
	expired := 0
	kept := g.entries[:0]
	for _, e := range g.entries {
		switch {
		case nowNanos-e.first >= g.cfg.DeadlineNanos,
			e.tries >= g.cfg.RetryCap && nowNanos-e.lastReq >= g.cfg.IntervalNanos:
			expired++
			continue
		case e.tries < g.cfg.RetryCap && nowNanos-e.lastReq >= g.cfg.IntervalNanos:
			e.tries++
			e.lastReq = nowNanos
			dst = append(dst, e.seq)
		}
		kept = append(kept, e)
	}
	g.entries = kept
	g.misses += int64(expired)
	return dst, expired
}

// Pending returns how many gaps are currently tracked.
func (g *NACKGenerator) Pending() int { return len(g.entries) }

// DeadlineMisses returns how many gaps were abandoned unrepaired.
func (g *NACKGenerator) DeadlineMisses() int64 { return g.misses }

// GapTracker detects fresh sequence gaps in arrival order: every sequence
// number skipped over by a forward jump is reported exactly once. Late
// (reordered) arrivals create no gaps. Jumps wider than maxGapBurst are
// treated as a stream discontinuity, not as that many losses.
type GapTracker struct {
	init bool
	next uint16 // next expected sequence number
}

// maxGapBurst bounds how many misses one forward jump may report.
const maxGapBurst = 256

// Observe folds one arrival in, invoking miss for every newly-detected
// missing sequence number.
//
//via:noalloc
func (g *GapTracker) Observe(seq uint16, miss func(uint16)) {
	if !g.init {
		g.init = true
		g.next = seq + 1
		return
	}
	delta := seq - g.next // mod-2^16 forward distance
	if delta >= 0x8000 {
		return // at or behind the expected position: late arrival
	}
	if delta <= maxGapBurst {
		for s := g.next; s != seq; s++ {
			miss(s)
		}
	}
	g.next = seq + 1
}

// RtxRing is the sender-side retransmit buffer: a fixed ring of reusable
// byte slots indexed by sequence number, holding the wire form of the
// most recent packets. Put copies; Get returns the stored bytes when the
// slot still holds that sequence number. Steady-state operation allocates
// nothing.
type RtxRing struct {
	slots [][]byte
	seqs  []uint16
	used  []bool
}

// NewRtxRing builds a ring with the given capacity (default 128).
func NewRtxRing(size int) *RtxRing {
	if size <= 0 {
		size = 128
	}
	return &RtxRing{
		slots: make([][]byte, size),
		seqs:  make([]uint16, size),
		used:  make([]bool, size),
	}
}

// Put stores a packet's wire bytes for possible retransmission.
func (r *RtxRing) Put(seq uint16, wire []byte) {
	i := int(seq) % len(r.slots)
	r.slots[i] = append(r.slots[i][:0], wire...)
	r.seqs[i] = seq
	r.used[i] = true
}

// Get returns the stored wire bytes for seq, if the ring still holds
// them. The returned slice is owned by the ring — send it, don't keep it.
//
//via:noalloc
func (r *RtxRing) Get(seq uint16) ([]byte, bool) {
	i := int(seq) % len(r.slots)
	if !r.used[i] || r.seqs[i] != seq {
		return nil, false
	}
	return r.slots[i], true
}
