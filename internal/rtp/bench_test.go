package rtp

import "testing"

// The repair data plane runs per media packet at 50–100 pps per call, so
// its steady state must not touch the heap: the retransmit ring, the FEC
// encoder/decoder, and the NACK bookkeeping all reuse their backing
// storage. The benchmarks report allocs/op and the companion test pins
// them at zero so a regression fails loudly rather than showing up as GC
// pressure in a profile.

// repairWorkload drives one steady-state iteration of every repair
// structure: a packet is stored in the rtx ring, folded into an FEC
// group (with the decoder consuming parity when a group completes), and
// a NACK generator cycles a gap through Missing → Due → Recovered.
type repairWorkload struct {
	ring    *RtxRing
	enc     *FECEncoder
	dec     *FECDecoder
	nack    *NACKGenerator
	seq     uint16
	now     int64
	wire    []byte
	nackBuf []uint16
}

func newRepairWorkload() *repairWorkload {
	w := &repairWorkload{
		ring:    NewRtxRing(256),
		enc:     NewFECEncoder(4),
		dec:     NewFECDecoder(4),
		nack:    NewNACKGenerator(NACKConfig{}),
		wire:    make([]byte, 0, 256),
		nackBuf: make([]uint16, 0, MaxNACKSeqs),
	}
	return w
}

func (w *repairWorkload) step() {
	p := Packet{Seq: w.seq, Timestamp: uint32(w.seq) * 1800, SSRC: 7, Payload: payloadFor(w.seq)}
	w.wire = p.Marshal(w.wire[:0])
	w.ring.Put(p.Seq, w.wire)
	if _, ok := w.ring.Get(p.Seq); !ok {
		panic("rtx ring lost the packet it just stored")
	}
	if parity := w.enc.Add(&p); parity != nil {
		// Receiver path: the group's first member was "lost"; the three
		// survivors plus this parity must rebuild it without allocating.
		base := parity.BaseSeq
		for s := base + 1; s != base+4; s++ {
			sp := Packet{Seq: s, Timestamp: uint32(s) * 1800, SSRC: 7, Payload: payloadFor(s)}
			w.dec.AddMedia(&sp)
		}
		if _, ok := w.dec.AddParity(parity); !ok {
			panic("fec decoder failed to recover the missing member")
		}
	}
	// One gap per iteration: request it once, then have it recovered.
	w.nack.Missing(w.seq+1000, w.now)
	due, _ := w.nack.Due(w.now, w.nackBuf[:0])
	w.nackBuf = due[:0]
	w.nack.Recovered(w.seq + 1000)
	w.seq++
	w.now += 20e6
}

// payloadFor returns a fixed-backing payload whose length varies by
// sequence number, exercising the length-XOR recovery paths.
func payloadFor(seq uint16) []byte {
	n := 120 + int(seq%4)*8
	return benchPayload[:n]
}

var benchPayload = func() []byte {
	b := make([]byte, 160)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}()

// TestRepairPathZeroAllocs pins the per-packet heap cost of the repair
// data plane at zero once the structures are warm.
func TestRepairPathZeroAllocs(t *testing.T) {
	w := newRepairWorkload()
	for i := 0; i < 512; i++ {
		w.step() // warm every reused buffer to its high-water mark
	}
	if avg := testing.AllocsPerRun(1000, w.step); avg != 0 {
		t.Errorf("repair path allocates %.2f times per packet, want 0", avg)
	}
}

// BenchmarkRepairPath measures the steady-state per-packet cost of the
// full repair data plane (rtx ring + FEC encode/decode + NACK cycle).
func BenchmarkRepairPath(b *testing.B) {
	w := newRepairWorkload()
	for i := 0; i < 512; i++ {
		w.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.step()
	}
}
