package core

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

func cand(opt netsim.Option, mean, sem float64) Candidate {
	var p Prediction
	p.Mean[quality.RTT] = mean
	p.SEM[quality.RTT] = sem
	p.N = 10
	return Candidate{Option: opt, Pred: p}
}

func TestPredictionBounds(t *testing.T) {
	p := Prediction{}
	p.Mean[quality.RTT] = 100
	p.SEM[quality.RTT] = 10
	if lo := p.Lower(quality.RTT); lo != 100-19.6 {
		t.Errorf("Lower = %v", lo)
	}
	if up := p.Upper(quality.RTT); up != 100+19.6 {
		t.Errorf("Upper = %v", up)
	}
	p.Mean[quality.RTT] = 5
	p.SEM[quality.RTT] = 10
	if lo := p.Lower(quality.RTT); lo != 0 {
		t.Errorf("Lower should clamp at 0, got %v", lo)
	}
}

func TestTopKWellSeparated(t *testing.T) {
	// Three clearly separated options: only the best survives.
	cands := []Candidate{
		cand(netsim.BounceOption(1), 100, 2),
		cand(netsim.BounceOption(2), 200, 2),
		cand(netsim.BounceOption(3), 300, 2),
	}
	got := TopK(cands, quality.RTT)
	if len(got) != 1 || got[0].Option != netsim.BounceOption(1) {
		t.Errorf("TopK = %v", got)
	}
}

func TestTopKOverlapping(t *testing.T) {
	// Two overlapping, one clearly worse: top-2.
	cands := []Candidate{
		cand(netsim.BounceOption(1), 100, 10), // CI ~ [80, 120]
		cand(netsim.BounceOption(2), 110, 10), // CI ~ [90, 130] overlaps
		cand(netsim.BounceOption(3), 500, 5),  // far away
	}
	got := TopK(cands, quality.RTT)
	if len(got) != 2 {
		t.Fatalf("TopK size = %d, want 2 (%v)", len(got), got)
	}
	for _, c := range got {
		if c.Option == netsim.BounceOption(3) {
			t.Error("clearly-worse option included")
		}
	}
}

func TestTopKChainOverlap(t *testing.T) {
	// A overlaps B, B overlaps C, A does not overlap C directly — the
	// fixpoint must still pull in C because B's upper bound exceeds C's
	// lower bound.
	cands := []Candidate{
		cand(netsim.BounceOption(1), 100, 5), // [90.2, 109.8]
		cand(netsim.BounceOption(2), 112, 8), // [96.3, 127.7]
		cand(netsim.BounceOption(3), 125, 2), // [121.1, 128.9] — lower < B.upper
		cand(netsim.BounceOption(4), 300, 2), // clearly out
	}
	got := TopK(cands, quality.RTT)
	if len(got) != 3 {
		t.Fatalf("TopK size = %d, want 3: %v", len(got), got)
	}
}

func TestTopKAllIdentical(t *testing.T) {
	cands := []Candidate{
		cand(netsim.BounceOption(1), 100, 10),
		cand(netsim.BounceOption(2), 100, 10),
		cand(netsim.BounceOption(3), 100, 10),
	}
	if got := TopK(cands, quality.RTT); len(got) != 3 {
		t.Errorf("identical candidates should all survive, got %d", len(got))
	}
}

func TestTopKEmpty(t *testing.T) {
	if TopK(nil, quality.RTT) != nil {
		t.Error("empty input should give nil")
	}
}

func TestTopKDoesNotModifyInput(t *testing.T) {
	cands := []Candidate{
		cand(netsim.BounceOption(3), 300, 1),
		cand(netsim.BounceOption(1), 100, 1),
	}
	_ = TopK(cands, quality.RTT)
	if cands[0].Option != netsim.BounceOption(3) {
		t.Error("TopK reordered the caller's slice")
	}
}

// Property: the Algorithm 2 invariant holds on the output — every excluded
// option's lower bound exceeds every included option's upper bound — and
// the globally-best option (minimum mean) is always included.
func TestTopKInvariantProperty(t *testing.T) {
	rng := stats.NewRNG(7)
	f := func(seed uint32) bool {
		r := rng.SplitN("case", uint64(seed))
		n := 2 + r.IntN(15)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = cand(netsim.BounceOption(netsim.RelayID(i)), 50+400*r.Float64(), 1+30*r.Float64())
		}
		got := TopK(cands, quality.RTT)
		if len(got) == 0 {
			return false
		}
		in := map[netsim.Option]bool{}
		maxUpper := 0.0
		for _, c := range got {
			in[c.Option] = true
			if u := c.Pred.Upper(quality.RTT); u > maxUpper {
				maxUpper = u
			}
		}
		bestMean := cands[0]
		for _, c := range cands {
			if c.Pred.Mean[quality.RTT] < bestMean.Pred.Mean[quality.RTT] {
				bestMean = c
			}
			if !in[c.Option] && c.Pred.Lower(quality.RTT) <= maxUpper {
				return false // exclusion condition violated
			}
		}
		return in[bestMean.Option]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFixedTopK(t *testing.T) {
	cands := []Candidate{
		cand(netsim.BounceOption(2), 200, 50),
		cand(netsim.BounceOption(1), 100, 50),
		cand(netsim.BounceOption(3), 300, 50),
	}
	got := FixedTopK(cands, quality.RTT, 2)
	if len(got) != 2 {
		t.Fatalf("size = %d", len(got))
	}
	if got[0].Option != netsim.BounceOption(1) || got[1].Option != netsim.BounceOption(2) {
		t.Errorf("FixedTopK = %v", got)
	}
	if got := FixedTopK(cands, quality.RTT, 10); len(got) != 3 {
		t.Error("oversized k should clamp")
	}
	if FixedTopK(cands, quality.RTT, 0) != nil {
		t.Error("k=0 should give nil")
	}
}
