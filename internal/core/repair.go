package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

// Loss-repair scheme selection: the option space of §4 extended from paths
// to (path, repair) pairs. The path decision stays with Algorithm 1 — the
// repair scheme is a second, much smaller bandit layered per group pair,
// because the right scheme depends on the pair's loss character (NACK wins
// on low-RTT reliable paths, FEC/RED under bursty loss) while the reward
// signal (post-repair MOS) arrives through the same Observe stream.
//
// Redundancy is not free: RED doubles the media bitrate and FEC-k adds
// 1/k. The §4.6 budget treatment applies unchanged — a talk-time-weighted
// overhead ledger caps the fraction of call-seconds spent on redundant
// bytes, and schemes whose projected overhead would blow the budget are
// masked out of the bandit's candidate set for that call.

// RepairStrategy is the optional extension a Strategy may implement to
// co-select a loss-repair scheme with the path. Callers that hold a plain
// Strategy type-assert for it and fall back to no repair.
type RepairStrategy interface {
	// ChooseRepair picks one of the offered scheme names ("none", "nack",
	// "red", "fec-4", ...) for a call assigned to opt. An empty result
	// means no repair.
	ChooseRepair(c Call, opt netsim.Option, schemes []string) string
	// ObserveRepair reports the realized post-repair call quality for the
	// scheme that was actually used.
	ObserveRepair(c Call, opt netsim.Option, scheme string, m quality.Metrics)
}

// RepairOverhead returns the redundant-bandwidth fraction of a scheme by
// name: 0 for none, a nominal 5% for NACK (retransmits scale with loss,
// not with the stream), 100% for RED duplication, and 1/k for "fec-k".
// Unknown names are charged like RED — the conservative reading.
func RepairOverhead(scheme string) float64 {
	switch scheme {
	case "", "none":
		return 0
	case "nack":
		return 0.05
	case "red":
		return 1
	}
	if k, ok := fecGroup(scheme); ok {
		return 1 / float64(k)
	}
	return 1
}

// fecGroup parses "fec-k" names.
func fecGroup(scheme string) (int, bool) {
	rest, ok := strings.CutPrefix(scheme, "fec-")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 2 {
		return 0, false
	}
	return k, true
}

// repairArm is the running cost state of one scheme for one pair.
type repairArm struct {
	count float64
	sum   float64 // Σ cost; lower is better (4.5 − MOS)
}

// RepairBandit selects repair schemes for one group pair: ε-greedy
// exploration over a UCB1-min exploitation core, with a talk-time
// redundancy budget masking schemes the pair can no longer afford.
// Not safe for concurrent use; Via serializes access under its own lock.
type RepairBandit struct {
	eps    float64
	coef   float64
	budget float64 // max overheadSec/totalSec; >= 1 means unconstrained

	arms map[string]*repairArm
	t    float64

	overheadSec float64
	totalSec    float64
}

// NewRepairBandit builds a bandit with the given exploration fraction,
// UCB coefficient, and redundancy budget (fraction of talk-time-weighted
// bandwidth; >= 1 disables the budget).
func NewRepairBandit(eps, coef, budget float64) *RepairBandit {
	if coef <= 0 {
		coef = 0.1
	}
	if budget <= 0 {
		budget = 1
	}
	return &RepairBandit{
		eps:    eps,
		coef:   coef,
		budget: budget,
		arms:   make(map[string]*repairArm),
	}
}

// allowed reports whether charging the scheme's redundancy for durSec more
// seconds keeps the pair inside the budget. Cheap schemes (none, NACK)
// always pass — repair must never be starved down to nothing.
func (b *RepairBandit) allowed(scheme string, durSec float64) bool {
	ov := RepairOverhead(scheme)
	if ov <= 0.05 || b.budget >= 1 {
		return true
	}
	projected := b.overheadSec + ov*durSec
	return projected <= b.budget*(b.totalSec+durSec)
}

// Choose picks a scheme from the offered list (order matters for
// deterministic tie-breaks) and charges its redundancy against the budget.
// rng supplies the ε draw; durSec weights the budget charge (0 = average
// call).
func (b *RepairBandit) Choose(schemes []string, durSec float64, rng *stats.RNG) string {
	if durSec <= 0 {
		durSec = 180
	}
	eligible := make([]string, 0, len(schemes))
	for _, s := range schemes {
		if b.allowed(s, durSec) {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		eligible = append(eligible, "none")
	}

	var pick string
	if len(eligible) == 1 {
		pick = eligible[0]
	} else if rng.Float64() < b.eps {
		pick = eligible[rng.IntN(len(eligible))]
	} else {
		pick = b.exploit(eligible)
	}

	b.totalSec += durSec
	b.overheadSec += RepairOverhead(pick) * durSec
	return pick
}

// exploit is UCB1 over cost (lower is better): an untried arm is taken
// immediately, in offer order, so every scheme gets its init sample.
func (b *RepairBandit) exploit(eligible []string) string {
	for _, s := range eligible {
		if a := b.arms[s]; a == nil || a.count < 1 {
			return s
		}
	}
	t := b.t + 1
	best := eligible[0]
	bestUCB := 0.0
	for i, s := range eligible {
		a := b.arms[s]
		ucb := a.sum/a.count - math.Sqrt(b.coef*math.Log(t)/a.count)
		if i == 0 || ucb < bestUCB {
			best, bestUCB = s, ucb
		}
	}
	return best
}

// Observe folds one realized cost (lower is better) into the scheme's arm.
func (b *RepairBandit) Observe(scheme string, cost float64) {
	a := b.arms[scheme]
	if a == nil {
		a = &repairArm{}
		b.arms[scheme] = a
	}
	a.count++
	a.sum += cost
	b.t++
}

// OverheadFraction reports the talk-time-weighted redundancy spent so far.
func (b *RepairBandit) OverheadFraction() float64 {
	if b.totalSec == 0 {
		return 0
	}
	return b.overheadSec / b.totalSec
}

// Counts returns the per-scheme assignment counts (diagnostics, tests).
func (b *RepairBandit) Counts() map[string]float64 {
	out := make(map[string]float64, len(b.arms))
	for s, a := range b.arms {
		out[s] = a.count
	}
	return out
}

// MostChosen returns the scheme with the highest assignment count
// (deterministic tie-break by name).
func (b *RepairBandit) MostChosen() string {
	best, bestN := "", -1.0
	names := make([]string, 0, len(b.arms))
	for s := range b.arms {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		if n := b.arms[s].count; n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

// --- Via integration ---------------------------------------------------

// repairCost maps post-repair call quality to the bandit's cost signal:
// 4.5 − MOS, so a perfect call costs 0 and the scale stays comparable
// across pairs. A small overhead penalty keeps redundancy from being free
// when two schemes repair equally well.
func repairCost(scheme string, m quality.Metrics) float64 {
	mos := quality.DefaultEModel().MOS(m)
	return (4.5 - mos) + 0.05*RepairOverhead(scheme)
}

// repairBanditLocked returns (creating if needed) the pair's scheme
// bandit. Caller holds v.mu.
func (v *Via) repairBanditLocked(gp groupPair) *RepairBandit {
	if v.repairPairs == nil {
		v.repairPairs = make(map[groupPair]*RepairBandit)
	}
	b := v.repairPairs[gp]
	if b == nil {
		b = NewRepairBandit(v.cfg.Epsilon, v.cfg.UCBCoef, v.cfg.RepairOverheadBudget)
		v.repairPairs[gp] = b
	}
	return b
}

// ChooseRepair implements RepairStrategy: pick a repair scheme for the
// call from the offered names. The draw comes from a dedicated RNG stream
// ("via-repair") so enabling repair does not perturb the path-selection
// ε sequence — legacy WALs replay bit-identically.
func (v *Via) ChooseRepair(c Call, _ netsim.Option, schemes []string) string {
	if len(schemes) == 0 {
		return ""
	}
	// When the config pins an allowed set, offer only its intersection
	// with the caller's candidates (offer order preserved).
	if len(v.cfg.RepairSchemes) > 0 {
		filtered := make([]string, 0, len(schemes))
		for _, s := range schemes {
			for _, ok := range v.cfg.RepairSchemes {
				if s == ok {
					filtered = append(filtered, s)
					break
				}
			}
		}
		if len(filtered) == 0 {
			return "none"
		}
		schemes = filtered
	}
	g1, g2 := v.cfg.Groups(c)
	gp := groupPair{g1, g2}
	if g1 > g2 {
		gp = groupPair{g2, g1}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.repairBanditLocked(gp).Choose(schemes, c.DurationSec, v.repairRNG)
}

// ObserveRepair implements RepairStrategy: fold the realized post-repair
// quality into the pair's scheme bandit.
func (v *Via) ObserveRepair(c Call, _ netsim.Option, scheme string, m quality.Metrics) {
	if scheme == "" {
		return
	}
	g1, g2 := v.cfg.Groups(c)
	gp := groupPair{g1, g2}
	if g1 > g2 {
		gp = groupPair{g2, g1}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.repairBanditLocked(gp).Observe(scheme, repairCost(scheme, m))
}

// RepairBanditFor exposes the pair's bandit for diagnostics and tests
// (nil if the pair has never chosen a scheme).
func (v *Via) RepairBanditFor(c Call) *RepairBandit {
	g1, g2 := v.cfg.Groups(c)
	gp := groupPair{g1, g2}
	if g1 > g2 {
		gp = groupPair{g2, g1}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.repairPairs[gp]
}

var _ RepairStrategy = (*Via)(nil)

// validateRepairSchemes panics on malformed configured scheme names so a
// typo fails at construction, not mid-run.
func validateRepairSchemes(schemes []string) {
	for _, s := range schemes {
		switch s {
		case "none", "nack", "red":
			continue
		}
		if _, ok := fecGroup(s); !ok {
			panic(fmt.Sprintf("core: unknown repair scheme %q", s))
		}
	}
}
