package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/quality"
)

// TestBudgetDigestLifecycle walks the §4.6 digest through its states:
// absent without a budget, present-but-cold on a fresh budgeted strategy,
// and warm (threshold + P² sketch) after enough gated traffic.
func TestBudgetDigestLifecycle(t *testing.T) {
	// Budget 1 (unbudgeted) ⇒ no benefit estimator, nothing to digest.
	unbudgeted := NewVia(DefaultViaConfig(quality.RTT), nil)
	if _, _, ok := unbudgeted.BudgetDigest(); ok {
		t.Fatal("unbudgeted Via claims a budget digest")
	}
	if _, ok := unbudgeted.BudgetSketch(); ok {
		t.Fatal("unbudgeted Via claims a budget sketch")
	}

	cfg := DefaultViaConfig(quality.RTT)
	cfg.Budget = 0.8
	v := NewVia(cfg, nil)
	n, th, ok := v.BudgetDigest()
	if !ok || n != 0 || th != 0 {
		t.Fatalf("fresh budgeted digest = (%d, %v, %v), want (0, 0, true)", n, th, ok)
	}

	// Benefit samples only accrue once predictions exist, i.e. after the
	// first refresh epoch; drive across several.
	drive(v, newFakeEnv(1), 2000, 96)
	n, _, ok = v.BudgetDigest()
	if !ok || n < 20 {
		t.Fatalf("digest after 2000 calls = n=%d ok=%v; estimator never warmed", n, ok)
	}
	st, ok := v.BudgetSketch()
	if !ok {
		t.Fatal("warm Via has no sketch")
	}
	if math.Abs(st.P-0.2) > 1e-9 {
		t.Fatalf("sketch tracks quantile %v, want 0.2 (1 - budget)", st.P)
	}
	if int64(st.N) != n {
		t.Fatalf("sketch n=%d, digest n=%d", st.N, n)
	}
	if st.Pos[4] != float64(st.N) {
		t.Fatalf("sketch last marker position %v, want n=%d", st.Pos[4], st.N)
	}
	for i := 0; i < 4; i++ {
		if st.Q[i] > st.Q[i+1] {
			t.Fatalf("sketch marker heights not monotone: %v", st.Q)
		}
	}
}

// TestSharedBudgetThresholdGates: once a fleet-merged threshold is
// installed, the budget-aware gate compares against it instead of the
// local estimator — an unreachably high threshold forces every non-explore
// call direct, while the local estimator keeps accumulating for digests.
func TestSharedBudgetThresholdGates(t *testing.T) {
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Budget = 0.8
	cfg.Epsilon = 0 // no exploration, so gating is the only relay path
	v := NewVia(cfg, nil)
	e := newFakeEnv(3)
	drive(v, e, 1500, 72)

	nBefore, _, _ := v.BudgetDigest()
	v.SetSharedBudgetThreshold(100, 1e9)
	for i := 0; i < 100; i++ {
		c := Call{Src: 3, Dst: 9, THours: 72 + float64(i)*0.01}
		if opt := v.Choose(c, e.options()); opt.IsRelayed() {
			t.Fatalf("call %d relayed through an unreachable shared threshold: %v", i, opt)
		}
	}
	nAfter, _, ok := v.BudgetDigest()
	if !ok || nAfter <= nBefore {
		t.Fatalf("local digest stopped accumulating under a shared gate: %d -> %d", nBefore, nAfter)
	}
}

// TestSharedBudgetStateRoundTrip: the shared-gate install survives
// SaveState/LoadState — a standby or WAL replay that restored state
// without it would gate differently than the primary did.
func TestSharedBudgetStateRoundTrip(t *testing.T) {
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Budget = 0.8
	v := NewVia(cfg, nil)
	drive(v, newFakeEnv(5), 600, 48)
	v.SetSharedBudgetThreshold(4242, 0.125)

	var buf bytes.Buffer
	if err := v.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewVia(cfg, nil)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := restored.SaveState(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("save → load → save is not a fixed point with a shared budget threshold installed")
	}
}
