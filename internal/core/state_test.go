package core

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// stateTestConfigs exercises the distinct code paths state capture must
// cover: unbudgeted (no benefit estimator), budget-aware (P2 + percentile
// gate), and duration-weighted with per-relay caps.
func stateTestConfigs() map[string]ViaConfig {
	base := DefaultViaConfig(quality.RTT)
	budgeted := base
	budgeted.Budget = 0.3
	perRelay := base
	perRelay.Budget = 0.5
	perRelay.BudgetByDuration = true
	perRelay.PerRelayBudget = 0.4
	return map[string]ViaConfig{"plain": base, "budgeted": budgeted, "per-relay": perRelay}
}

// TestViaStateRoundTripBitIdentical is the crash-recovery determinism
// proof at the strategy layer: run N calls, snapshot, keep running the
// original while a restored copy replays the same remaining request
// sequence — every subsequent decision must match bit-for-bit.
func TestViaStateRoundTripBitIdentical(t *testing.T) {
	for name, cfg := range stateTestConfigs() {
		t.Run(name, func(t *testing.T) {
			const total, cut = 3000, 1700 // cut mid-epoch AND past several refreshes
			env := newFakeEnv(11)
			v := NewVia(cfg, nil)

			calls := make([]Call, total)
			for i := range calls {
				calls[i] = Call{Src: netsim.ASID(3 + i%5), Dst: netsim.ASID(9 + i%7),
					UserSrc: int64(i), UserDst: int64(i + 1),
					THours: 96 * float64(i) / total, DurationSec: float64(60 + i%300)}
			}

			// Phase 1: drive to the cut point, observing as we go.
			samples := make([]quality.Metrics, 0, total)
			for i := 0; i < cut; i++ {
				opt := v.Choose(calls[i], env.options())
				m := env.sample(opt)
				samples = append(samples, m)
				v.Observe(calls[i], opt, m)
			}

			var snap bytes.Buffer
			if err := v.SaveState(&snap); err != nil {
				t.Fatal(err)
			}
			restored := NewVia(cfg, nil)
			if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}

			// Phase 2: both instances see the identical remaining sequence.
			// The environment samples are generated once and fed to both, so
			// any divergence is the strategy's own.
			for i := cut; i < total; i++ {
				a := v.Choose(calls[i], env.options())
				b := restored.Choose(calls[i], env.options())
				if a != b {
					t.Fatalf("call %d: original chose %v, restored chose %v", i, a, b)
				}
				m := env.sample(a)
				v.Observe(calls[i], a, m)
				restored.Observe(calls[i], b, m)
			}
			if a, b := v.RelayedFraction(), restored.RelayedFraction(); a != b {
				t.Fatalf("relayed fraction diverged: %v vs %v", a, b)
			}
		})
	}
}

// TestViaStateSnapshotDeterministic: two captures of the same state are the
// same bytes, so snapshot content can be compared across replicas.
func TestViaStateSnapshotDeterministic(t *testing.T) {
	env := newFakeEnv(5)
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	drive(v, env, 800, 48)
	var a, b bytes.Buffer
	if err := v.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two captures of identical state differ")
	}
}

// TestViaStateFreshInstance: round-tripping a never-used strategy works and
// keeps it usable.
func TestViaStateFreshInstance(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	var buf bytes.Buffer
	if err := v.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewVia(DefaultViaConfig(quality.RTT), nil)
	if err := r.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	opt := r.Choose(Call{Src: 1, Dst: 2}, []netsim.Option{netsim.DirectOption()})
	if opt != netsim.DirectOption() {
		t.Fatalf("restored fresh instance chose %v", opt)
	}
}

// TestViaStateRejectsGarbage: corrupt input must error, not panic, and must
// not partially mutate the target.
func TestViaStateRejectsGarbage(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	if err := v.LoadState(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Still usable after the failed load.
	opt := v.Choose(Call{Src: 1, Dst: 2}, []netsim.Option{netsim.DirectOption()})
	if opt != netsim.DirectOption() {
		t.Fatalf("strategy broken after failed load: %v", opt)
	}
}
