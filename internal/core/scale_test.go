package core

import (
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
)

func TestShardedRouting(t *testing.T) {
	var mu sync.Mutex
	counts := make([]int, 4)
	s := NewSharded(4, func(shard int) Strategy {
		return &countingStrategy{onChoose: func() {
			mu.Lock()
			counts[shard]++
			mu.Unlock()
		}}
	})
	if s.NumShards() != 4 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Same pair (either direction) must always hit the same shard.
	for i := 0; i < 10; i++ {
		s.Choose(Call{Src: 3, Dst: 9}, nil)
		s.Choose(Call{Src: 9, Dst: 3}, nil)
	}
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("one pair spread across %d shards", nonzero)
	}

	// Many pairs should spread across all shards.
	for p := 0; p < 200; p++ {
		s.Choose(Call{Src: netsim.ASID(p), Dst: netsim.ASID(p + 1000)}, nil)
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received nothing", i)
		}
	}
}

type countingStrategy struct {
	onChoose func()
}

func (c *countingStrategy) Name() string { return "counting" }
func (c *countingStrategy) Choose(Call, []netsim.Option) netsim.Option {
	if c.onChoose != nil {
		c.onChoose()
	}
	return netsim.DirectOption()
}
func (c *countingStrategy) Observe(Call, netsim.Option, quality.Metrics) {}

func TestShardedObserveRoutesLikeChoose(t *testing.T) {
	recorders := make([]*recordingObserver, 3)
	s := NewSharded(3, func(shard int) Strategy {
		recorders[shard] = &recordingObserver{}
		return recorders[shard]
	})
	s.Observe(Call{Src: 5, Dst: 7}, netsim.DirectOption(), quality.Metrics{})
	s.Observe(Call{Src: 7, Dst: 5}, netsim.DirectOption(), quality.Metrics{})
	seen := 0
	for _, r := range recorders {
		if r.n == 2 {
			seen++
		} else if r.n != 0 {
			t.Errorf("shard saw %d observes; directions split across shards", r.n)
		}
	}
	if seen != 1 {
		t.Errorf("%d shards saw the pair", seen)
	}
}

type recordingObserver struct{ n int }

func (r *recordingObserver) Name() string                               { return "rec" }
func (r *recordingObserver) Choose(Call, []netsim.Option) netsim.Option { return netsim.DirectOption() }
func (r *recordingObserver) Observe(Call, netsim.Option, quality.Metrics) {
	r.n++
}

func TestShardedViaEquivalentQuality(t *testing.T) {
	// A sharded Via must behave like Via on each pair (pair state never
	// crosses shards). Drive one pair and confirm convergence as in the
	// unsharded test.
	s := NewSharded(8, func(shard int) Strategy {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.Seed = uint64(shard + 1)
		return NewVia(cfg, nil)
	})
	e := newFakeEnv(21)
	late := drive(s, e, 3000, 96)
	best := late[netsim.BounceOption(1)]
	total := 0
	for _, n := range late {
		total += n
	}
	if best*2 < total {
		t.Errorf("sharded via late best-arm share %d/%d", best, total)
	}
}

func TestCachedServesFromCache(t *testing.T) {
	calls := 0
	inner := &countingStrategy{onChoose: func() { calls++ }}
	c := NewCached(inner, 2) // 2-hour TTL
	cands := []netsim.Option{netsim.DirectOption()}

	c.Choose(Call{Src: 1, Dst: 2, THours: 0}, cands)   // miss
	c.Choose(Call{Src: 1, Dst: 2, THours: 1}, cands)   // hit
	c.Choose(Call{Src: 2, Dst: 1, THours: 1.5}, cands) // hit (reverse dir)
	c.Choose(Call{Src: 1, Dst: 2, THours: 2.5}, cands) // expired → miss
	if calls != 2 {
		t.Errorf("inner consulted %d times, want 2", calls)
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
	if c.Name() != "counting+cache" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCachedFlipsTransitForReverseDirection(t *testing.T) {
	inner := &fixedStrategy{opt: netsim.TransitOption(1, 2)}
	c := NewCached(inner, 10)
	cands := []netsim.Option{netsim.TransitOption(1, 2)}
	got1 := c.Choose(Call{Src: 1, Dst: 9, THours: 0}, cands)
	if got1 != netsim.TransitOption(1, 2) {
		t.Fatalf("first choice %v", got1)
	}
	// Reverse direction served from cache must flip the transit route.
	got2 := c.Choose(Call{Src: 9, Dst: 1, THours: 1}, cands)
	if got2 != netsim.TransitOption(2, 1) {
		t.Errorf("reverse cached choice = %v, want transit(2->1)", got2)
	}
}

type fixedStrategy struct{ opt netsim.Option }

func (f *fixedStrategy) Name() string { return "fixed" }
func (f *fixedStrategy) Choose(c Call, _ []netsim.Option) netsim.Option {
	return canonOpt(int32(c.Src), int32(c.Dst), f.opt)
}
func (f *fixedStrategy) Observe(Call, netsim.Option, quality.Metrics) {}

func TestCachedObservePassesThrough(t *testing.T) {
	rec := &recordingObserver{}
	c := NewCached(rec, 1)
	c.Observe(Call{Src: 1, Dst: 2}, netsim.DirectOption(), quality.Metrics{})
	if rec.n != 1 {
		t.Error("observe did not pass through")
	}
}

func BenchmarkShardedChooseParallel(b *testing.B) {
	s := NewSharded(8, func(shard int) Strategy {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.Seed = uint64(shard + 1)
		return NewVia(cfg, nil)
	})
	cands := []netsim.Option{
		netsim.DirectOption(), netsim.BounceOption(1), netsim.BounceOption(2),
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			c := Call{Src: netsim.ASID(i % 64), Dst: netsim.ASID(64 + i%64), THours: float64(i % 1000)}
			opt := s.Choose(c, cands)
			s.Observe(c, opt, quality.Metrics{RTTMs: 100})
		}
	})
}

func BenchmarkViaChoose(b *testing.B) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	cands := []netsim.Option{
		netsim.DirectOption(), netsim.BounceOption(1), netsim.BounceOption(2),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Call{Src: netsim.ASID(i % 64), Dst: netsim.ASID(64 + i%64), THours: float64(i % 1000)}
		opt := v.Choose(c, cands)
		v.Observe(c, opt, quality.Metrics{RTTMs: 100})
	}
}
