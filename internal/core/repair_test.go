package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

func TestRepairOverhead(t *testing.T) {
	cases := []struct {
		scheme string
		want   float64
	}{
		{"", 0}, {"none", 0}, {"nack", 0.05}, {"red", 1},
		{"fec-2", 0.5}, {"fec-4", 0.25}, {"fec-10", 0.1},
		{"garbage", 1}, {"fec-x", 1}, {"fec-1", 1},
	}
	for _, c := range cases {
		if got := RepairOverhead(c.scheme); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RepairOverhead(%q) = %v, want %v", c.scheme, got, c.want)
		}
	}
}

func TestRepairBanditConvergesToCheapestCost(t *testing.T) {
	rng := stats.NewRNG(7).Split("test")
	b := NewRepairBandit(0.05, 0.02, 1)
	schemes := []string{"none", "nack", "fec-4"}
	// nack has the lowest cost; the bandit must concentrate on it.
	cost := map[string]float64{"none": 1.2, "nack": 0.3, "fec-4": 0.6}
	for i := 0; i < 400; i++ {
		s := b.Choose(schemes, 60, rng)
		b.Observe(s, cost[s])
	}
	if got := b.MostChosen(); got != "nack" {
		t.Fatalf("most chosen = %q (counts %v), want nack", got, b.Counts())
	}
	if n := b.Counts()["nack"]; n < 250 {
		t.Errorf("nack chosen %v/400 times, want dominant", n)
	}
}

func TestRepairBanditBudgetMasksExpensiveSchemes(t *testing.T) {
	rng := stats.NewRNG(9).Split("test")
	// 10% redundancy budget: red (100%) and fec-2 (50%) must be masked
	// almost immediately; none and nack always stay eligible.
	b := NewRepairBandit(0.5, 0.02, 0.10)
	schemes := []string{"none", "nack", "red", "fec-2"}
	// Make the expensive schemes look best so only the budget stops them.
	cost := map[string]float64{"none": 2, "nack": 2, "red": 0.1, "fec-2": 0.1}
	for i := 0; i < 300; i++ {
		s := b.Choose(schemes, 60, rng)
		b.Observe(s, cost[s])
	}
	counts := b.Counts()
	// The budget is a rate: cheap calls bank headroom that occasionally
	// affords an expensive scheme. What must hold is the ledger itself —
	// the realized overhead fraction stays at the cap — and that cheap
	// schemes carry the bulk of the traffic despite looking worse.
	if got := b.OverheadFraction(); got > 0.11 {
		t.Errorf("overhead fraction %.3f blew the 0.10 budget (counts %v)", got, counts)
	}
	expensive := counts["red"] + counts["fec-2"]
	if expensive > 100 {
		t.Errorf("expensive schemes chosen %v/300 times under a 10%% budget (counts %v)", expensive, counts)
	}
	if counts["nack"]+counts["none"] < 200 {
		t.Errorf("cheap schemes starved: %v", counts)
	}
}

func TestRepairBanditUnbudgetedAllowsRED(t *testing.T) {
	rng := stats.NewRNG(11).Split("test")
	b := NewRepairBandit(0.1, 0.02, 1)
	schemes := []string{"none", "red"}
	for i := 0; i < 100; i++ {
		s := b.Choose(schemes, 60, rng)
		c := 1.0
		if s == "red" {
			c = 0.2
		}
		b.Observe(s, c)
	}
	if got := b.MostChosen(); got != "red" {
		t.Errorf("most chosen = %q, want red when unbudgeted and cheapest", got)
	}
}

func repairTestVia(schemes []string) *Via {
	cfg := DefaultViaConfig(quality.Loss)
	cfg.Seed = 42
	cfg.RepairSchemes = schemes
	return NewVia(cfg, nil)
}

func TestViaChooseRepairLearnsPerPair(t *testing.T) {
	v := repairTestVia([]string{"none", "nack", "fec-4"})
	call := Call{Src: 1, Dst: 2, DurationSec: 120}
	opt := netsim.DirectOption()

	// Pair (1,2): nack repairs perfectly, everything else is poor.
	for i := 0; i < 300; i++ {
		s := v.ChooseRepair(call, opt, []string{"none", "nack", "fec-4"})
		m := quality.Metrics{RTTMs: 60, LossRate: 0.08, JitterMs: 4}
		if s == "nack" {
			m.LossRate = 0.001
		}
		v.ObserveRepair(call, opt, s, m)
	}
	b := v.RepairBanditFor(call)
	if b == nil {
		t.Fatal("no bandit for pair")
	}
	if got := b.MostChosen(); got != "nack" {
		t.Errorf("pair (1,2) most chosen = %q (counts %v), want nack", got, b.Counts())
	}

	// A different pair starts from scratch.
	other := Call{Src: 3, Dst: 4}
	if b2 := v.RepairBanditFor(other); b2 != nil {
		t.Error("unvisited pair has a bandit")
	}
}

func TestViaChooseRepairFiltersToConfiguredSchemes(t *testing.T) {
	v := repairTestVia([]string{"none", "nack"})
	call := Call{Src: 1, Dst: 2}
	for i := 0; i < 50; i++ {
		s := v.ChooseRepair(call, netsim.DirectOption(), []string{"red", "fec-4", "nack"})
		if s != "nack" && s != "none" {
			t.Fatalf("chose unconfigured scheme %q", s)
		}
	}
	// No overlap at all degrades to none.
	if s := v.ChooseRepair(call, netsim.DirectOption(), []string{"red"}); s != "none" {
		t.Errorf("disjoint offer chose %q, want none", s)
	}
	// Empty offer means the caller does not support repair.
	if s := v.ChooseRepair(call, netsim.DirectOption(), nil); s != "" {
		t.Errorf("empty offer chose %q, want empty", s)
	}
}

func TestViaRepairDoesNotPerturbPathSelection(t *testing.T) {
	// The same seed with and without repair traffic must produce the same
	// path decision sequence: repair draws come from a separate RNG split.
	run := func(withRepair bool) []netsim.Option {
		cfg := DefaultViaConfig(quality.Loss)
		cfg.Seed = 99
		cfg.RepairSchemes = []string{"none", "nack", "red"}
		v := NewVia(cfg, nil)
		cands := []netsim.Option{
			netsim.DirectOption(),
			{Kind: netsim.Bounce, R1: 1},
			{Kind: netsim.Bounce, R1: 2},
		}
		var picks []netsim.Option
		for i := 0; i < 120; i++ {
			c := Call{Src: 1, Dst: 2, THours: float64(i) / 10}
			opt := v.Choose(c, cands)
			picks = append(picks, opt)
			if withRepair {
				s := v.ChooseRepair(c, opt, cfg.RepairSchemes)
				v.ObserveRepair(c, opt, s, quality.Metrics{RTTMs: 50, LossRate: 0.02, JitterMs: 3})
			}
			v.Observe(c, opt, quality.Metrics{RTTMs: 50, LossRate: 0.02, JitterMs: 3})
		}
		return picks
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path pick %d diverged with repair enabled: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestViaStateRoundTripWithRepair(t *testing.T) {
	cfg := DefaultViaConfig(quality.Loss)
	cfg.Seed = 5
	cfg.RepairSchemes = []string{"none", "nack", "fec-4"}
	v := NewVia(cfg, nil)
	cands := []netsim.Option{netsim.DirectOption(), {Kind: netsim.Bounce, R1: 1}}
	for i := 0; i < 80; i++ {
		c := Call{Src: 1, Dst: 2, THours: float64(i) / 20, DurationSec: 90}
		opt := v.Choose(c, cands)
		s := v.ChooseRepair(c, opt, cfg.RepairSchemes)
		m := quality.Metrics{RTTMs: 70, LossRate: 0.03, JitterMs: 5}
		v.Observe(c, opt, m)
		v.ObserveRepair(c, opt, s, m)
	}

	var snap bytes.Buffer
	if err := v.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	restored := NewVia(cfg, nil)
	if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Both must produce identical decision streams from here on.
	for i := 80; i < 140; i++ {
		c := Call{Src: 1, Dst: 2, THours: float64(i) / 20, DurationSec: 90}
		o1, o2 := v.Choose(c, cands), restored.Choose(c, cands)
		if o1 != o2 {
			t.Fatalf("call %d: path %v vs %v", i, o1, o2)
		}
		s1 := v.ChooseRepair(c, o1, cfg.RepairSchemes)
		s2 := restored.ChooseRepair(c, o2, cfg.RepairSchemes)
		if s1 != s2 {
			t.Fatalf("call %d: scheme %q vs %q", i, s1, s2)
		}
		m := quality.Metrics{RTTMs: 70, LossRate: 0.03, JitterMs: 5}
		v.Observe(c, o1, m)
		restored.Observe(c, o2, m)
		v.ObserveRepair(c, o1, s1, m)
		restored.ObserveRepair(c, o2, s2, m)
	}

	// And the two snapshots must be byte-identical.
	var s1, s2 bytes.Buffer
	if err := v.SaveState(&s1); err != nil {
		t.Fatal(err)
	}
	if err := restored.SaveState(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Error("post-divergence snapshots differ")
	}
}

func TestViaLoadStateToleratesPreRepairSnapshot(t *testing.T) {
	// A snapshot captured before any repair activity (zero repair arms;
	// repair RNG at its initial split position) must restore into a Via
	// that behaves exactly like a fresh one on the repair side.
	cfg := DefaultViaConfig(quality.Loss)
	cfg.Seed = 3
	v := NewVia(cfg, nil)
	cands := []netsim.Option{netsim.DirectOption(), {Kind: netsim.Bounce, R1: 1}}
	for i := 0; i < 40; i++ {
		c := Call{Src: 1, Dst: 2, THours: float64(i) / 20}
		v.Observe(c, v.Choose(c, cands), quality.Metrics{RTTMs: 50, LossRate: 0.01, JitterMs: 2})
	}
	var snap bytes.Buffer
	if err := v.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	restored := NewVia(cfg, nil)
	if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	c := Call{Src: 1, Dst: 2}
	s1 := v.ChooseRepair(c, netsim.DirectOption(), []string{"none", "nack"})
	s2 := restored.ChooseRepair(c, netsim.DirectOption(), []string{"none", "nack"})
	if s1 != s2 {
		t.Errorf("repair choice diverged after restore: %q vs %q", s1, s2)
	}
}

func TestValidateRepairSchemesPanicsOnTypo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on malformed scheme name")
		}
	}()
	cfg := DefaultViaConfig(quality.Loss)
	cfg.RepairSchemes = []string{"none", "fce-4"}
	NewVia(cfg, nil)
}
