package core

import (
	"repro/internal/netsim"
	"repro/internal/quality"
)

// Call carries the per-call context a strategy may use when deciding.
type Call struct {
	Src, Dst         netsim.ASID
	UserSrc, UserDst int64
	THours           float64 // absolute time, hours since trace epoch
	DurationSec      float64 // expected talk time; 0 = unknown
}

// Strategy assigns relaying options to calls and learns from realized
// performance. Implementations are driven chronologically: Choose is called
// when a call is placed, Observe when its measurements arrive. A strategy
// sees only its own observations — each strategy runs in its own
// counterfactual world.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Choose picks one of the candidate options for the call.
	Choose(c Call, cands []netsim.Option) netsim.Option
	// Observe reports the realized call-average performance of the option
	// that was actually used.
	Observe(c Call, opt netsim.Option, m quality.Metrics)
}

// GroupFunc maps a call to the (src, dst) decision-granularity groups —
// AS pair by default, country pair or sub-AS fragments for the granularity
// sensitivity analysis (Fig. 17a). Group ids must be stable across calls.
type GroupFunc func(c Call) (int32, int32)

// ASPairGroups is the paper's default granularity.
func ASPairGroups(c Call) (int32, int32) {
	return int32(c.Src), int32(c.Dst)
}

// CountryGroups aggregates decisions per country pair.
func CountryGroups(w *netsim.World) GroupFunc {
	// Map country codes to dense ids once.
	idx := map[string]int32{}
	n := int32(0)
	code := func(a netsim.ASID) int32 {
		c := w.CountryOf(a)
		if i, ok := idx[c]; ok {
			return i
		}
		idx[c] = n
		n++
		return idx[c]
	}
	return func(c Call) (int32, int32) {
		return code(c.Src), code(c.Dst)
	}
}

// SubASGroups splits every AS into fragments keyed by user identity,
// emulating decisions at a finer-than-AS granularity (e.g. /24 prefixes):
// the same network, but each fragment only sees 1/fragments of the data.
func SubASGroups(fragments int) GroupFunc {
	if fragments < 1 {
		fragments = 1
	}
	f := int64(fragments)
	return func(c Call) (int32, int32) {
		return int32(int64(c.Src)*f + (c.UserSrc%f+f)%f),
			int32(int64(c.Dst)*f + (c.UserDst%f+f)%f)
	}
}
