package core

// Report ingestion: decoupling measurement reports from decisions.
//
// Observe is called once per finished call, and in the synchronous
// (default) mode it applies the report inline: history bucket update,
// bandit arm update, cache invalidation hook — all on the caller's
// goroutine, serialized behind the strategy mutex. That is exactly right
// for the simulator, whose results must be a pure function of the seed:
// sim time only advances between events, so "apply before the next
// Choose" is both deterministic and semantically the paper's Algorithm 1.
//
// A live controller has the opposite shape: reports arrive in bursts
// (call teardowns cluster), each report costs a history append plus a
// bandit update behind v.mu, and every microsecond spent applying them is
// stolen from Choose latency. AsyncIngest moves application off the
// decision path: Observe enqueues into a bounded ring and returns; a
// single drainer goroutine applies reports in arrival order (the ring is
// multi-producer, single-consumer) and fires the report hook, which is
// what bumps decision-cache epochs — so with async ingestion a cached
// decision is invalidated when the new measurement is actually *visible*
// to the bandit, not merely received.
//
// The ring is deliberately a mutex+condvar structure, not a
// clock-driven batcher: the determinism analyzers (determinism, dettaint)
// keep this package free of time.Now, and bounding by count (with
// blocking backpressure, so reports are delayed, never dropped) needs no
// timer. Flush gives deterministic tests and state snapshots a
// synchronization point: it blocks until everything enqueued before the
// call has been applied.

import (
	"sync"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// ReportHooked is implemented by strategies that can announce report
// application. SetReportHook registers a callback invoked after each
// report has been folded into strategy state (synchronously from Observe,
// or from the drainer goroutine under AsyncIngest); it reports whether
// the hook is guaranteed to fire for every report. The decision cache
// uses this to invalidate by application, not receipt.
type ReportHooked interface {
	SetReportHook(func(Call)) bool
}

// defaultIngestBuffer bounds the pending-report ring when the config
// doesn't: deep enough to absorb a teardown burst, small enough that
// backpressure (not memory) handles a stalled drainer.
const defaultIngestBuffer = 4096

// pendingReport is one enqueued Observe call.
type pendingReport struct {
	call Call
	opt  netsim.Option
	m    quality.Metrics
}

// reportRing is a bounded multi-producer single-consumer queue. Producers
// block when the ring is full (backpressure; reports are never dropped),
// the drainer sleeps when it is empty, and flush waits for quiescence —
// all three on condvars over one mutex, so the structure is clock-free.
type reportRing struct {
	mu       sync.Mutex
	notEmpty sync.Cond // signaled on enqueue
	notFull  sync.Cond // signaled on drain
	idle     sync.Cond // broadcast when outstanding returns to 0

	buf  []pendingReport // guarded by mu; fixed-capacity ring storage
	head int             // guarded by mu
	n    int             // guarded by mu

	// outstanding counts reports enqueued but not yet applied — it stays
	// nonzero while the drainer works a batch outside the lock, which is
	// exactly the window flush must wait out.
	outstanding int  // guarded by mu
	closed      bool // guarded by mu
}

func newReportRing(capacity int) *reportRing {
	r := &reportRing{buf: make([]pendingReport, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	r.idle.L = &r.mu
	return r
}

// enqueue adds one report, blocking while the ring is full. It reports
// false (dropping the report) only after close.
func (r *reportRing) enqueue(p pendingReport) bool {
	r.mu.Lock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
	r.outstanding++
	r.mu.Unlock()
	r.notEmpty.Signal()
	return true
}

// drainInto waits for work, moves everything currently enqueued into
// batch (reusing its capacity), and reports whether the ring is still
// open. After close it keeps returning batches until the ring is empty.
func (r *reportRing) drainInto(batch []pendingReport) ([]pendingReport, bool) {
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	for r.n > 0 {
		batch = append(batch, r.buf[r.head])
		r.buf[r.head] = pendingReport{} // drop references for GC
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	open := !r.closed
	r.mu.Unlock()
	r.notFull.Broadcast()
	return batch, open
}

// markApplied retires k drained reports; at quiescence flush waiters wake.
func (r *reportRing) markApplied(k int) {
	r.mu.Lock()
	r.outstanding -= k
	if r.outstanding == 0 {
		r.idle.Broadcast()
	}
	r.mu.Unlock()
}

// flush blocks until every report enqueued before the call has been
// applied. Must not be called after close without a running drainer.
func (r *reportRing) flush() {
	r.mu.Lock()
	for r.outstanding > 0 {
		r.idle.Wait()
	}
	r.mu.Unlock()
}

// close stops the ring: the drainer finishes the backlog and exits,
// blocked producers unblock (their reports are dropped).
func (r *reportRing) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
}

// SetReportHook implements ReportHooked: hook fires after each report is
// applied to the history and bandit state. Always attached (returns
// true). Set it before concurrent use.
func (v *Via) SetReportHook(hook func(Call)) bool {
	v.mu.Lock()
	v.reportHook = hook
	v.mu.Unlock()
	return true
}

// Flush blocks until every report passed to Observe before the call has
// been applied. A no-op in synchronous mode, which is what makes it safe
// to call unconditionally before snapshots and assertions.
func (v *Via) Flush() {
	if v.ring != nil {
		v.ring.flush()
	}
}

// Close stops the async drainer after it finishes the backlog. A no-op in
// synchronous mode; Observe after Close drops the report.
func (v *Via) Close() {
	if v.ring == nil {
		return
	}
	v.ring.close()
	v.drainWG.Wait()
}

// drainLoop is the single consumer: apply reports in arrival order until
// the ring is closed and empty.
func (v *Via) drainLoop() {
	defer v.drainWG.Done()
	var batch []pendingReport
	for {
		var open bool
		batch, open = v.ring.drainInto(batch[:0])
		for i := range batch {
			v.applyReport(batch[i].call, batch[i].opt, batch[i].m)
		}
		v.ring.markApplied(len(batch))
		if !open && len(batch) == 0 {
			return
		}
	}
}
