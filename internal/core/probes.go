package core

import (
	"sort"

	"repro/internal/netsim"
)

// Active measurement support (§7, "Active Measurements"): the controller
// can orchestrate mock calls to fill holes in the passively collected
// measurements, making both tomography and the bandit better informed. The
// environment (simulator or testbed orchestrator) asks the strategy which
// probes it wants at each window boundary and realizes them; probe results
// flow back through Observe like any call.

// ProbeRequest asks for one mock call between a pair over an option.
type ProbeRequest struct {
	Src, Dst netsim.ASID
	Option   netsim.Option
}

// ProbeRequester is implemented by strategies that can direct active
// measurements.
type ProbeRequester interface {
	// ProbeRequests returns up to budget mock calls the strategy wants
	// placed around the given window. Only meaningful at AS-pair decision
	// granularity.
	ProbeRequests(window int, budget int) []ProbeRequest
}

// ProbeRequests implements ProbeRequester for Via: it walks the pairs it
// has served, finds candidate options with no samples in the most recent
// training bucket (the "holes" that force pure-tomography or no
// predictions), and spreads the probe budget across pairs round-robin.
func (v *Via) ProbeRequests(window int, budget int) []ProbeRequest {
	if budget <= 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()

	// Deterministic pair order.
	pairs := make([]groupPair, 0, len(v.pairs))
	for gp, ps := range v.pairs {
		if len(ps.cands) > 0 {
			pairs = append(pairs, gp)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	// Collect per-pair hole lists.
	holes := make([][]ProbeRequest, 0, len(pairs))
	for _, gp := range pairs {
		ps := v.pairs[gp]
		var hs []ProbeRequest
		for _, opt := range ps.cands {
			agg, ok := v.store.Get(netsim.ASID(gp.a), netsim.ASID(gp.b), opt, window-1)
			if !ok || agg.N() == 0 {
				hs = append(hs, ProbeRequest{
					Src:    netsim.ASID(gp.a),
					Dst:    netsim.ASID(gp.b),
					Option: opt,
				})
			}
		}
		if len(hs) > 0 {
			holes = append(holes, hs)
		}
	}

	// Round-robin across pairs so the budget spreads instead of exhausting
	// on the first pair's holes.
	var out []ProbeRequest
	for depth := 0; len(out) < budget; depth++ {
		progressed := false
		for _, hs := range holes {
			if depth < len(hs) {
				out = append(out, hs[depth])
				progressed = true
				if len(out) >= budget {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out
}
