package core

import (
	"sync"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

// DefaultStrategy always uses the default (BGP) path — the paper's
// "default strategy" baseline.
type DefaultStrategy struct{}

// Name implements Strategy.
func (DefaultStrategy) Name() string { return "default" }

// Choose implements Strategy.
func (DefaultStrategy) Choose(Call, []netsim.Option) netsim.Option {
	return netsim.DirectOption()
}

// Observe implements Strategy.
func (DefaultStrategy) Observe(Call, netsim.Option, quality.Metrics) {}

// Oracle picks the option with the best ground-truth window mean on the
// target metric — the benefit-of-foresight bound of §3.2. With a budget
// below 1 it gates on the true relative benefit percentile, giving the
// oracle curve of Fig. 16.
type Oracle struct {
	World  *netsim.World
	Metric quality.Metric
	Budget float64 // >= 1 disables

	mu      sync.Mutex
	benefit *stats.P2
	relayed int64
	total   int64
}

// NewOracle builds an unbudgeted oracle.
func NewOracle(w *netsim.World, m quality.Metric) *Oracle {
	return NewBudgetedOracle(w, m, 1)
}

// NewBudgetedOracle builds an oracle limited to relaying at most budget of
// calls, preferring the calls with the largest true benefit.
func NewBudgetedOracle(w *netsim.World, m quality.Metric, budget float64) *Oracle {
	o := &Oracle{World: w, Metric: m, Budget: budget}
	if budget > 0 && budget < 1 {
		o.benefit = stats.NewP2(clamp01(1-budget, 0.001, 0.999))
	}
	return o
}

// Name implements Strategy.
func (o *Oracle) Name() string {
	if o.Budget > 0 && o.Budget < 1 {
		return "oracle-budget"
	}
	return "oracle"
}

// Choose implements Strategy.
func (o *Oracle) Choose(c Call, cands []netsim.Option) netsim.Option {
	if len(cands) == 0 {
		return netsim.DirectOption()
	}
	window := netsim.WindowOf(c.THours)
	best, bestV := o.World.BestOption(c.Src, c.Dst, cands, window, o.Metric)
	if !best.IsRelayed() {
		return best
	}
	if o.benefit != nil {
		direct := o.World.WindowMean(c.Src, c.Dst, netsim.DirectOption(), window).Get(o.Metric)
		var b float64
		if direct > 0 {
			b = (direct - bestV) / direct
		}
		o.mu.Lock()
		defer o.mu.Unlock()
		o.total++
		o.benefit.Add(b)
		if float64(o.relayed) >= o.Budget*float64(o.total) {
			return netsim.DirectOption()
		}
		if o.benefit.N() >= 20 && b < o.benefit.Value() {
			return netsim.DirectOption()
		}
		o.relayed++
	}
	return best
}

// Observe implements Strategy.
func (o *Oracle) Observe(Call, netsim.Option, quality.Metrics) {}

// PredictOnly is Strawman I (§4.2): pick the option with the best predicted
// mean from the previous period's history; no exploration, no confidence
// intervals. Its history comes only from its own (greedy) assignments plus
// whatever seeded samples the environment provides, so its coverage decays —
// exactly the failure mode the paper describes.
type PredictOnly struct {
	Metric       quality.Metric
	RefreshHours float64
	PredCfg      PredictorConfig

	bb    BackboneSource
	store *history.Store

	mu       sync.Mutex
	curEpoch int
	pred     *Predictor
}

// NewPredictOnly builds Strawman I for a target metric. Per §4.2 the
// strawman predicts "based just on history": it gets no tomography-based
// coverage expansion (that is a Via contribution, stage 2 of Figure 10).
func NewPredictOnly(m quality.Metric, bb BackboneSource) *PredictOnly {
	cfg := DefaultPredictorConfig()
	cfg.DisableTomography = true
	return &PredictOnly{
		Metric:       m,
		RefreshHours: 24,
		PredCfg:      cfg,
		bb:           bb,
		store:        history.NewStore(),
		curEpoch:     -1,
	}
}

// Name implements Strategy.
func (p *PredictOnly) Name() string { return "predict-only" }

// Choose implements Strategy.
func (p *PredictOnly) Choose(c Call, cands []netsim.Option) netsim.Option {
	if len(cands) == 0 {
		return netsim.DirectOption()
	}
	epoch := int(c.THours / p.RefreshHours)
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch != p.curEpoch {
		p.curEpoch = epoch
		p.pred = BuildPredictor(p.store, epoch-1, p.bb, p.PredCfg)
		for _, w := range p.store.Windows() {
			if w < epoch-2 {
				p.store.Drop(w)
			}
		}
	}
	best := netsim.DirectOption()
	bestV := 0.0
	found := false
	for _, opt := range cands {
		copt := canonOpt(int32(c.Src), int32(c.Dst), opt)
		pred, ok := p.pred.Predict(int32(c.Src), int32(c.Dst), copt)
		if !ok {
			continue
		}
		if !found || pred.Mean[p.Metric] < bestV {
			best, bestV, found = opt, pred.Mean[p.Metric], true
		}
	}
	return best
}

// Observe implements Strategy.
func (p *PredictOnly) Observe(c Call, opt netsim.Option, m quality.Metrics) {
	bucket := int(c.THours / p.RefreshHours)
	p.store.Add(c.Src, c.Dst, opt, bucket, m)
}

// ExploreOnly is Strawman II (§4.2): ε-greedy over the full, unpruned
// option set using only empirical means — no prediction, no tomography, no
// confidence-based pruning. With ~20 options per pair and high variance it
// converges slowly, as the paper observes.
type ExploreOnly struct {
	Metric  quality.Metric
	Epsilon float64

	mu    sync.Mutex
	rng   *stats.RNG
	pairs map[groupPair]*ucbState
}

// NewExploreOnly builds Strawman II.
func NewExploreOnly(m quality.Metric, epsilon float64, seed uint64) *ExploreOnly {
	if epsilon <= 0 {
		epsilon = 0.10
	}
	return &ExploreOnly{
		Metric:  m,
		Epsilon: epsilon,
		rng:     stats.NewRNG(seed).Split("explore-only"),
		pairs:   make(map[groupPair]*ucbState),
	}
}

// Name implements Strategy.
func (e *ExploreOnly) Name() string { return "explore-only" }

func (e *ExploreOnly) state(src, dst netsim.ASID) *ucbState {
	gp := groupPair{int32(src), int32(dst)}
	if gp.a > gp.b {
		gp.a, gp.b = gp.b, gp.a
	}
	s := e.pairs[gp]
	if s == nil {
		s = newUCBState()
		e.pairs[gp] = s
	}
	return s
}

// Choose implements Strategy.
func (e *ExploreOnly) Choose(c Call, cands []netsim.Option) netsim.Option {
	if len(cands) == 0 {
		return netsim.DirectOption()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rng.Float64() < e.Epsilon {
		return cands[e.rng.IntN(len(cands))]
	}
	s := e.state(c.Src, c.Dst)
	best := netsim.DirectOption()
	bestV := 0.0
	found := false
	for _, opt := range cands {
		copt := canonOpt(int32(c.Src), int32(c.Dst), opt)
		v, ok := s.empiricalMean(copt)
		if !ok {
			continue
		}
		if !found || v < bestV {
			best, bestV, found = opt, v, true
		}
	}
	return best
}

// Observe implements Strategy.
func (e *ExploreOnly) Observe(c Call, opt netsim.Option, m quality.Metrics) {
	e.mu.Lock()
	e.state(c.Src, c.Dst).observe(canonOpt(int32(c.Src), int32(c.Dst), opt), m.Get(e.Metric))
	e.mu.Unlock()
}
