package core

import (
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
)

func TestCachedEpochInvalidationUnhookedInner(t *testing.T) {
	// An inner strategy with no report hook: Observe itself must bump the
	// pair epoch, so a report forces exactly one recompute.
	calls := 0
	inner := &countingStrategy{onChoose: func() { calls++ }}
	c := NewCached(inner, 100) // TTL far away; only epochs can miss
	cands := []netsim.Option{netsim.DirectOption()}

	c.Choose(Call{Src: 1, Dst: 2, THours: 0}, cands) // miss (cold)
	c.Choose(Call{Src: 1, Dst: 2, THours: 1}, cands) // hit
	if calls != 1 {
		t.Fatalf("inner consulted %d times before report, want 1", calls)
	}
	c.Observe(Call{Src: 1, Dst: 2, THours: 1}, netsim.DirectOption(), quality.Metrics{})
	c.Choose(Call{Src: 1, Dst: 2, THours: 2}, cands) // miss: epoch bumped
	c.Choose(Call{Src: 1, Dst: 2, THours: 3}, cands) // hit again
	if calls != 2 {
		t.Errorf("inner consulted %d times after report, want 2", calls)
	}
	if inv := c.Invalidations(); inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
	// A report from the reverse direction invalidates the same entry.
	c.Observe(Call{Src: 2, Dst: 1, THours: 3}, netsim.DirectOption(), quality.Metrics{})
	c.Choose(Call{Src: 1, Dst: 2, THours: 4}, cands) // miss again
	if calls != 3 {
		t.Errorf("inner consulted %d times after reverse report, want 3", calls)
	}
}

func TestCachedEpochInvalidationViaHook(t *testing.T) {
	// With a Via inner the cache attaches to the report hook: invalidation
	// fires when the report is *applied*, and a cached decision never
	// outlives a fresh measurement for its pair.
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Epsilon = 0 // no exploration noise; decisions are deterministic
	via := NewVia(cfg, nil)
	c := NewCached(via, 1000)
	if !c.hooked {
		t.Fatal("cache did not attach to Via's report hook")
	}
	cands := []netsim.Option{netsim.DirectOption(), netsim.BounceOption(1)}

	call := Call{Src: 1, Dst: 2, THours: 30}
	c.Choose(call, cands)
	before := c.Misses()
	c.Choose(call, cands)
	if c.Misses() != before {
		t.Fatal("second Choose should be a cache hit")
	}
	c.Observe(call, netsim.DirectOption(), quality.Metrics{RTTMs: 80})
	c.Choose(call, cands)
	if c.Misses() != before+1 {
		t.Error("Choose after an applied report must recompute")
	}
}

func TestCachedBoundedEviction(t *testing.T) {
	inner := &countingStrategy{}
	// maxPairs below the shard count clamps to one slot per shard.
	c := NewCachedBounded(inner, 5, 1)
	cands := []netsim.Option{netsim.DirectOption()}
	for p := 0; p < 500; p++ {
		c.Choose(Call{Src: netsim.ASID(2 * p), Dst: netsim.ASID(2*p + 1), THours: 0}, cands)
	}
	if n := c.Len(); n > cacheShardCount {
		t.Errorf("cache holds %d pairs, bound is %d", n, cacheShardCount)
	}
	if c.Evictions() == 0 {
		t.Error("filling past the bound must evict")
	}
}

func TestCachedSweepDropsExpired(t *testing.T) {
	inner := &countingStrategy{}
	c := NewCached(inner, 2)
	cands := []netsim.Option{netsim.DirectOption()}
	c.Choose(Call{Src: 1, Dst: 2, THours: 0}, cands) // expires at t=2
	c.Choose(Call{Src: 3, Dst: 4, THours: 3}, cands) // expires at t=5
	if n := c.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	c.Sweep(4)
	if n := c.Len(); n != 1 {
		t.Errorf("len after sweep = %d, want 1", n)
	}
}

func TestCachedRegisterMetrics(t *testing.T) {
	inner := &countingStrategy{}
	c := NewCached(inner, 10)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	cands := []netsim.Option{netsim.DirectOption()}
	c.Choose(Call{Src: 1, Dst: 2, THours: 0}, cands)
	c.Choose(Call{Src: 1, Dst: 2, THours: 1}, cands)
	snap := reg.Snapshot()
	if snap["via_decision_cache_hits_total"] != 1 {
		t.Errorf("hits metric = %v, want 1", snap["via_decision_cache_hits_total"])
	}
	if snap["via_decision_cache_misses_total"] != 1 {
		t.Errorf("misses metric = %v, want 1", snap["via_decision_cache_misses_total"])
	}
	if snap["via_decision_cache_entries"] != 1 {
		t.Errorf("entries metric = %v, want 1", snap["via_decision_cache_entries"])
	}
}

// transitEcho returns the transit route oriented src→dst: R1 is always
// the relay "near" the source. Any correctly oriented cache must
// preserve that property for both call directions.
type transitEcho struct{}

func (transitEcho) Name() string { return "transit-echo" }
func (transitEcho) Choose(c Call, _ []netsim.Option) netsim.Option {
	return netsim.TransitOption(netsim.RelayID(c.Src), netsim.RelayID(c.Dst))
}
func (transitEcho) Observe(Call, netsim.Option, quality.Metrics) {}

func TestCachedConcurrentOrientation(t *testing.T) {
	// Hammer one cache from both call directions across many pairs while
	// reports invalidate concurrently. Run under -race this doubles as the
	// memory-model check for the lock-free hit path; the assertion checks
	// that a decision is never served with the transit legs backwards.
	c := NewCached(transitEcho{}, 0.001) // tiny TTL: constant refill churn
	const (
		workers = 8
		pairs   = 64
		ops     = 4000
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				p := (i + w) % pairs
				src, dst := netsim.ASID(2*p+1), netsim.ASID(2*p+2)
				if i%2 == 1 {
					src, dst = dst, src
				}
				call := Call{Src: src, Dst: dst, THours: float64(i) * 1e-5}
				opt := c.Choose(call, nil)
				if opt.Kind != netsim.Transit ||
					opt.R1 != netsim.RelayID(src) || opt.R2 != netsim.RelayID(dst) {
					errs <- "misoriented transit from cache"
					return
				}
				if i%7 == 0 {
					c.Observe(call, opt, quality.Metrics{RTTMs: 50})
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func BenchmarkCachedHit(b *testing.B) {
	c := NewCached(&countingStrategy{}, 1000)
	cands := []netsim.Option{netsim.DirectOption()}
	call := Call{Src: 1, Dst: 2, THours: 0}
	c.Choose(call, cands) // fill
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Choose(call, cands)
	}
}

func BenchmarkCachedHitReverse(b *testing.B) {
	c := NewCached(&fixedStrategy{opt: netsim.TransitOption(1, 2)}, 1000)
	cands := []netsim.Option{netsim.TransitOption(1, 2)}
	c.Choose(Call{Src: 1, Dst: 9, THours: 0}, cands) // fill
	call := Call{Src: 9, Dst: 1, THours: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Choose(call, cands)
	}
}

func TestShardedReportHookAttachment(t *testing.T) {
	// A sharded inner attaches the hook only if every shard does: hook
	// delivery must be guaranteed, or the cache falls back to
	// Observe-side invalidation.
	viaShards := NewSharded(4, func(i int) Strategy {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.Seed = uint64(i + 1)
		return NewVia(cfg, nil)
	})
	if c := NewCached(viaShards, 10); !c.hooked {
		t.Error("all-Via sharded inner should attach the report hook")
	}
	plainShards := NewSharded(4, func(int) Strategy { return &countingStrategy{} })
	c := NewCached(plainShards, 100)
	if c.hooked {
		t.Fatal("unhookable shards must not claim hook attachment")
	}
	// Fallback path still invalidates: a report forces a recompute.
	cands := []netsim.Option{netsim.DirectOption()}
	c.Choose(Call{Src: 1, Dst: 2, THours: 0}, cands)
	c.Observe(Call{Src: 1, Dst: 2, THours: 1}, netsim.DirectOption(), quality.Metrics{})
	before := c.Misses()
	c.Choose(Call{Src: 1, Dst: 2, THours: 2}, cands)
	if c.Misses() != before+1 {
		t.Error("Observe on an unhooked sharded inner must invalidate the pair")
	}
}
