package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// Full-state persistence for Via — the controller's snapshot payload.
//
// SaveHistory/LoadHistory (persist.go-era API) only carry the call history,
// which is NOT enough for crash recovery with bit-identical behavior: the
// budget counters, the per-pair top-k caches, the UCB arm memory (which
// decays and reseeds — both history-dependent and order-dependent), the
// benefit percentile estimator, and the ε-draw RNG position all influence
// Choose. SaveState captures every one of those; LoadState restores them
// and deterministically rebuilds the predictor from the restored history,
// so a controller restored from a snapshot (plus WAL replay of the tail)
// continues the exact decision stream of an uninterrupted run.
//
// The config is deliberately NOT serialized: the operator's config is the
// source of truth, and restoring state under a changed config (say, a new
// Budget) must honor the new config, not resurrect the old one.

const viaStateVersion = 1

// viaArmRec is one UCB arm in exported, ordered form.
type viaArmRec struct {
	Opt   netsim.Option
	Count float64
	Sum   float64
}

// viaPairRec is one pair's decision state.
type viaPairRec struct {
	A, B      int32
	TopkEpoch int
	Topk      []Candidate
	Cands     []netsim.Option
	UCBT      float64
	UCBMaxQ   float64
	Arms      []viaArmRec
}

// viaRelayUseRec is one relay's budget-usage count. A slice (not a map)
// so the gob bytes are reproducible — gob serializes maps in iteration
// order, which would make two captures of identical state differ.
type viaRelayUseRec struct {
	Relay netsim.RelayID
	Count int64
}

// viaRepairArmRec is one repair scheme's cost state in exported form.
type viaRepairArmRec struct {
	Scheme string
	Count  float64
	Sum    float64
}

// viaRepairPairRec is one pair's repair-bandit state, arms sorted by
// scheme name for reproducible bytes.
type viaRepairPairRec struct {
	A, B        int32
	T           float64
	OverheadSec float64
	TotalSec    float64
	Arms        []viaRepairArmRec
}

// viaState is the full serialized form.
//
// The repair fields were added after version 1 shipped, without a bump:
// gob tolerates absent fields, so a pre-repair snapshot decodes with zero
// RepairRNG/RepairPairs and LoadState falls back to a fresh repair split —
// exactly the state a pre-repair run had, so replay stays bit-identical.
type viaState struct {
	Version     int
	History     []byte // history.Store.Save stream, embedded whole
	CurEpoch    int
	Pairs       []viaPairRec
	HasBenefit  bool
	Benefit     stats.P2State
	Relayed     int64
	Total       int64
	RelayedSec  float64
	TotalSec    float64
	RelayUse    []viaRelayUseRec // sorted by relay ID
	RelayCalls  int64
	RNG         stats.RNGState
	RepairRNG   stats.RNGState     // zero (empty PCG) = repair never used
	RepairPairs []viaRepairPairRec // sorted by (A, B)
	// Fleet-shared §4.6 gate, added after version 1 shipped (same
	// versioning-by-omission rule as the repair fields): pre-ring snapshots
	// decode with SharedBenefit false, which is exactly their state.
	SharedBenefit   bool
	SharedBenefitN  int64
	SharedBenefitTh float64
}

// SaveState writes the strategy's complete decision state. Safe to call
// concurrently with Choose/Observe; the captured state is a consistent
// point-in-time cut.
func (v *Via) SaveState(w io.Writer) error {
	var hist bytes.Buffer
	if err := v.store.Save(&hist); err != nil {
		return fmt.Errorf("core: save history: %w", err)
	}

	v.mu.Lock()
	st := viaState{
		Version:         viaStateVersion,
		History:         hist.Bytes(),
		CurEpoch:        v.curEpoch,
		HasBenefit:      v.benefit != nil,
		SharedBenefit:   v.sharedBenefit,
		SharedBenefitN:  v.sharedBenefitN,
		SharedBenefitTh: v.sharedBenefitTh,
		Relayed:         v.relayed,
		Total:           v.total,
		RelayedSec:      v.relayedSec,
		TotalSec:        v.totalSec,
		RelayUse:        make([]viaRelayUseRec, 0, len(v.relayUse)),
		RelayCalls:      v.relayCalls,
	}
	if v.benefit != nil {
		st.Benefit = v.benefit.State()
	}
	for r, n := range v.relayUse {
		st.RelayUse = append(st.RelayUse, viaRelayUseRec{Relay: r, Count: n})
	}
	sort.Slice(st.RelayUse, func(i, j int) bool { return st.RelayUse[i].Relay < st.RelayUse[j].Relay })
	rngState, err := v.rng.State()
	if err != nil {
		v.mu.Unlock()
		return fmt.Errorf("core: save rng: %w", err)
	}
	st.RNG = rngState
	repairRNGState, err := v.repairRNG.State()
	if err != nil {
		v.mu.Unlock()
		return fmt.Errorf("core: save repair rng: %w", err)
	}
	st.RepairRNG = repairRNGState
	for gp, b := range v.repairPairs {
		rec := viaRepairPairRec{
			A:           gp.a,
			B:           gp.b,
			T:           b.t,
			OverheadSec: b.overheadSec,
			TotalSec:    b.totalSec,
		}
		for s, a := range b.arms {
			rec.Arms = append(rec.Arms, viaRepairArmRec{Scheme: s, Count: a.count, Sum: a.sum})
		}
		sort.Slice(rec.Arms, func(i, j int) bool { return rec.Arms[i].Scheme < rec.Arms[j].Scheme })
		st.RepairPairs = append(st.RepairPairs, rec)
	}
	for gp, ps := range v.pairs {
		rec := viaPairRec{
			A:         gp.a,
			B:         gp.b,
			TopkEpoch: ps.topkEpoch,
			Topk:      append([]Candidate(nil), ps.topk...),
			Cands:     append([]netsim.Option(nil), ps.cands...),
			UCBT:      ps.ucb.t,
			UCBMaxQ:   ps.ucb.maxQ,
		}
		// Arms are kept sorted by optionLess, so the byte stream is
		// reproducible without re-sorting.
		for _, a := range ps.ucb.arms {
			rec.Arms = append(rec.Arms, viaArmRec{Opt: a.opt, Count: a.count, Sum: a.sum})
		}
		st.Pairs = append(st.Pairs, rec)
	}
	v.mu.Unlock()

	sort.Slice(st.Pairs, func(i, j int) bool {
		if st.Pairs[i].A != st.Pairs[j].A {
			return st.Pairs[i].A < st.Pairs[j].A
		}
		return st.Pairs[i].B < st.Pairs[j].B
	})
	sort.Slice(st.RepairPairs, func(i, j int) bool {
		if st.RepairPairs[i].A != st.RepairPairs[j].A {
			return st.RepairPairs[i].A < st.RepairPairs[j].A
		}
		return st.RepairPairs[i].B < st.RepairPairs[j].B
	})

	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: encode state: %w", err)
	}
	return nil
}

// LoadState restores a SaveState capture into a freshly constructed Via
// (same config). The predictor is rebuilt deterministically from the
// restored history — it is a pure function of (history, epoch, backbone,
// predictor config), so it is not serialized.
func (v *Via) LoadState(r io.Reader) error {
	var st viaState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decode state: %w", err)
	}
	if st.Version != viaStateVersion {
		return fmt.Errorf("core: state version %d, want %d", st.Version, viaStateVersion)
	}

	store := history.NewStore()
	if len(st.History) > 0 {
		if err := store.Load(bytes.NewReader(st.History)); err != nil {
			return fmt.Errorf("core: load history: %w", err)
		}
	}
	rng, err := stats.RestoreRNG(st.RNG)
	if err != nil {
		return fmt.Errorf("core: restore rng: %w", err)
	}
	var benefit *stats.P2
	if st.HasBenefit {
		benefit, err = stats.RestoreP2(st.Benefit)
		if err != nil {
			return fmt.Errorf("core: restore benefit estimator: %w", err)
		}
	}
	// Pre-repair snapshots carry no repair RNG: fall back to the same
	// fresh split NewVia would have made, which is exactly the state a
	// pre-repair run was in.
	repairRNG := stats.NewRNG(v.cfg.Seed).Split("via-repair")
	if len(st.RepairRNG.PCG) > 0 {
		repairRNG, err = stats.RestoreRNG(st.RepairRNG)
		if err != nil {
			return fmt.Errorf("core: restore repair rng: %w", err)
		}
	}
	var repairPairs map[groupPair]*RepairBandit
	if len(st.RepairPairs) > 0 {
		repairPairs = make(map[groupPair]*RepairBandit, len(st.RepairPairs))
		for _, rec := range st.RepairPairs {
			b := NewRepairBandit(v.cfg.Epsilon, v.cfg.UCBCoef, v.cfg.RepairOverheadBudget)
			b.t = rec.T
			b.overheadSec = rec.OverheadSec
			b.totalSec = rec.TotalSec
			for _, a := range rec.Arms {
				b.arms[a.Scheme] = &repairArm{count: a.Count, sum: a.Sum}
			}
			repairPairs[groupPair{rec.A, rec.B}] = b
		}
	}
	pairs := make(map[groupPair]*pairState, len(st.Pairs))
	for _, rec := range st.Pairs {
		ucb := newUCBState()
		ucb.t = rec.UCBT
		ucb.maxQ = rec.UCBMaxQ
		ucb.arms = make([]ucbArm, 0, len(rec.Arms))
		for _, a := range rec.Arms {
			ucb.arms = append(ucb.arms, ucbArm{opt: a.Opt, count: a.Count, sum: a.Sum})
		}
		// Snapshots write arms sorted, but the invariant is load-bearing
		// (find binary-searches), so don't trust the bytes.
		sort.Slice(ucb.arms, func(i, j int) bool { return optionLess(ucb.arms[i].opt, ucb.arms[j].opt) })
		pairs[groupPair{rec.A, rec.B}] = &pairState{
			topkEpoch: rec.TopkEpoch,
			topk:      rec.Topk,
			cands:     rec.Cands,
			ucb:       ucb,
		}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	v.store = store
	v.rng = rng
	v.repairRNG = repairRNG
	v.repairPairs = repairPairs
	v.benefit = benefit
	v.sharedBenefit = st.SharedBenefit
	v.sharedBenefitN = st.SharedBenefitN
	v.sharedBenefitTh = st.SharedBenefitTh
	v.curEpoch = st.CurEpoch
	v.pairs = pairs
	v.relayed = st.Relayed
	v.total = st.Total
	v.relayedSec = st.RelayedSec
	v.totalSec = st.TotalSec
	v.relayCalls = st.RelayCalls
	v.relayUse = make(map[netsim.RelayID]int64, len(st.RelayUse))
	for _, ru := range st.RelayUse {
		v.relayUse[ru.Relay] = ru.Count
	}
	// Rebuild the predictor exactly as ensureEpoch would have at this epoch.
	// The decay/reseed side effects of ensureEpoch are NOT re-run: their
	// results are already baked into the restored arms and top-k caches.
	if st.CurEpoch >= 0 {
		v.pred = BuildPredictor(v.store, st.CurEpoch-1, v.bb, v.cfg.Predictor)
	} else {
		v.pred = nil
	}
	return nil
}
