package core

import (
	"repro/internal/netsim"
	"repro/internal/quality"
)

// Candidate pairs a relaying option with its prediction.
type Candidate struct {
	Option netsim.Option
	Pred   Prediction
}

// TopK implements Algorithm 2: the adaptive, confidence-interval-based
// pruning of the candidate set. It returns the minimal set of options such
// that the 95% lower confidence bound of every excluded option exceeds the
// 95% upper confidence bound of every included option — i.e. we are
// statistically confident every excluded option is worse than every included
// one. Candidates without predictions must be filtered by the caller.
//
// The set is computed as a fixpoint: start from the option with the smallest
// upper bound (it can never be excluded), then repeatedly pull in any option
// whose lower bound does not clear the included set's maximum upper bound.
func TopK(cands []Candidate, m quality.Metric) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := make([]Candidate, len(cands))
	copy(sorted, cands)
	out, _ := topKInPlace(sorted, m, nil)
	return out
}

// topKInPlace is TopK over caller-owned storage: cands is sorted and
// compacted in place (the returned slice aliases it), and incl is a
// reusable inclusion-scratch whose grown form is returned for the caller
// to keep. The hot path (Via's per-epoch prune) passes per-strategy
// scratch through here so pruning allocates nothing at steady state.
func topKInPlace(cands []Candidate, m quality.Metric, incl []bool) ([]Candidate, []bool) {
	if len(cands) == 0 {
		return nil, incl
	}
	sortCandidates(cands, func(a, b *Candidate) bool {
		ua, ub := a.Pred.Upper(m), b.Pred.Upper(m)
		if ua != ub {
			return ua < ub
		}
		return optionLess(a.Option, b.Option)
	})

	// The option with the smallest upper bound can never satisfy the
	// exclusion condition (its lower bound cannot exceed its own upper
	// bound), so it seeds the set. Then iterate to a fixpoint: any excluded
	// option whose lower bound fails to clear the included set's maximum
	// upper bound must be pulled in, which may in turn raise that maximum.
	if cap(incl) < len(cands) {
		incl = make([]bool, len(cands))
	}
	incl = incl[:len(cands)]
	for i := range incl {
		incl[i] = false
	}
	incl[0] = true
	maxUpper := cands[0].Pred.Upper(m)
	for changed := true; changed; {
		changed = false
		for i := 1; i < len(cands); i++ {
			if incl[i] || cands[i].Pred.Lower(m) > maxUpper {
				continue
			}
			incl[i] = true
			changed = true
			if u := cands[i].Pred.Upper(m); u > maxUpper {
				maxUpper = u
			}
		}
	}
	out := cands[:0]
	for i, inc := range incl {
		if inc {
			out = append(out, cands[i])
		}
	}
	return out, incl
}

// sortCandidates is an allocation-free insertion sort. Candidate sets are
// the relays offered for one pair — tens at most — where insertion sort
// beats sort.Slice outright and, unlike it, neither boxes an interface
// nor heap-allocates a closure.
func sortCandidates(cands []Candidate, less func(a, b *Candidate) bool) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(&cands[j], &cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// FixedTopK is the ablation of Figure 15: keep exactly k options ranked by
// predicted mean, ignoring the confidence intervals.
func FixedTopK(cands []Candidate, m quality.Metric, k int) []Candidate {
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	sorted := make([]Candidate, len(cands))
	copy(sorted, cands)
	return fixedTopKInPlace(sorted, m, k)
}

// fixedTopKInPlace is FixedTopK over caller-owned storage.
func fixedTopKInPlace(cands []Candidate, m quality.Metric, k int) []Candidate {
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	sortCandidates(cands, func(a, b *Candidate) bool {
		ma, mb := a.Pred.Mean[m], b.Pred.Mean[m]
		if ma != mb {
			return ma < mb
		}
		return optionLess(a.Option, b.Option)
	})
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

func optionLess(a, b netsim.Option) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.R1 != b.R1 {
		return a.R1 < b.R1
	}
	return a.R2 < b.R2
}
