package core

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// Candidate pairs a relaying option with its prediction.
type Candidate struct {
	Option netsim.Option
	Pred   Prediction
}

// TopK implements Algorithm 2: the adaptive, confidence-interval-based
// pruning of the candidate set. It returns the minimal set of options such
// that the 95% lower confidence bound of every excluded option exceeds the
// 95% upper confidence bound of every included option — i.e. we are
// statistically confident every excluded option is worse than every included
// one. Candidates without predictions must be filtered by the caller.
//
// The set is computed as a fixpoint: start from the option with the smallest
// upper bound (it can never be excluded), then repeatedly pull in any option
// whose lower bound does not clear the included set's maximum upper bound.
func TopK(cands []Candidate, m quality.Metric) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := make([]Candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool {
		ui, uj := sorted[i].Pred.Upper(m), sorted[j].Pred.Upper(m)
		if ui != uj {
			return ui < uj
		}
		return optionLess(sorted[i].Option, sorted[j].Option)
	})

	// The option with the smallest upper bound can never satisfy the
	// exclusion condition (its lower bound cannot exceed its own upper
	// bound), so it seeds the set. Then iterate to a fixpoint: any excluded
	// option whose lower bound fails to clear the included set's maximum
	// upper bound must be pulled in, which may in turn raise that maximum.
	included := make([]bool, len(sorted))
	included[0] = true
	maxUpper := sorted[0].Pred.Upper(m)
	for changed := true; changed; {
		changed = false
		for i := 1; i < len(sorted); i++ {
			if included[i] || sorted[i].Pred.Lower(m) > maxUpper {
				continue
			}
			included[i] = true
			changed = true
			if u := sorted[i].Pred.Upper(m); u > maxUpper {
				maxUpper = u
			}
		}
	}
	out := sorted[:0]
	for i, inc := range included {
		if inc {
			out = append(out, sorted[i])
		}
	}
	return out
}

// FixedTopK is the ablation of Figure 15: keep exactly k options ranked by
// predicted mean, ignoring the confidence intervals.
func FixedTopK(cands []Candidate, m quality.Metric, k int) []Candidate {
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	sorted := make([]Candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool {
		mi, mj := sorted[i].Pred.Mean[m], sorted[j].Pred.Mean[m]
		if mi != mj {
			return mi < mj
		}
		return optionLess(sorted[i].Option, sorted[j].Option)
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

func optionLess(a, b netsim.Option) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.R1 != b.R1 {
		return a.R1 < b.R1
	}
	return a.R2 < b.R2
}
