package core

import (
	"math"
	"testing"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

func addSamples(h *history.Store, src, dst netsim.ASID, opt netsim.Option, bucket int, rtt float64, n int, rng *stats.RNG) {
	for i := 0; i < n; i++ {
		m := quality.Metrics{
			RTTMs:    rtt * rng.LogNormal(0, 0.05),
			LossRate: 0.005,
			JitterMs: 4,
		}
		h.Add(src, dst, opt, bucket, m)
	}
}

func TestPredictorFromHistory(t *testing.T) {
	h := history.NewStore()
	rng := stats.NewRNG(1)
	addSamples(h, 1, 2, netsim.DirectOption(), 0, 200, 30, rng)
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())
	pred, ok := p.Predict(1, 2, netsim.DirectOption())
	if !ok {
		t.Fatal("no prediction from 30 samples")
	}
	if math.Abs(pred.Mean[quality.RTT]-200) > 10 {
		t.Errorf("mean RTT = %v, want ~200", pred.Mean[quality.RTT])
	}
	if pred.Tomo {
		t.Error("history-backed prediction flagged as tomography")
	}
	if pred.N != 30 {
		t.Errorf("N = %d", pred.N)
	}
	if pred.SEM[quality.RTT] <= 0 {
		t.Error("SEM must be positive")
	}
	// Reverse direction resolves to the same aggregate.
	rev, ok := p.Predict(2, 1, netsim.DirectOption())
	if !ok || rev.Mean != pred.Mean {
		t.Error("reverse-direction prediction differs")
	}
}

func TestPredictorMissing(t *testing.T) {
	h := history.NewStore()
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())
	if _, ok := p.Predict(1, 2, netsim.DirectOption()); ok {
		t.Error("empty history should predict nothing")
	}
}

func TestPredictorTomographyFillsHoles(t *testing.T) {
	// ASes 1,2,3,4 and relay 0: observe 1↔r↔2, 1↔r↔3, 2↔r↔4, then predict
	// the unseen 3↔r↔4 bounce.
	h := history.NewStore()
	rng := stats.NewRNG(2)
	// Segment truths: acc(1)=30, acc(2)=50, acc(3)=70, acc(4)=90.
	addSamples(h, 1, 2, netsim.BounceOption(0), 0, 80, 25, rng)
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 100, 25, rng)
	addSamples(h, 2, 4, netsim.BounceOption(0), 0, 140, 25, rng)
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())

	pred, ok := p.Predict(3, 4, netsim.BounceOption(0))
	if !ok {
		t.Fatal("tomography did not cover the unseen pair")
	}
	if !pred.Tomo {
		t.Error("prediction should be flagged as tomography")
	}
	if math.Abs(pred.Mean[quality.RTT]-160) > 15 {
		t.Errorf("stitched RTT = %v, want ~160", pred.Mean[quality.RTT])
	}
}

type fakeBackbone struct{ m quality.Metrics }

func (f fakeBackbone) BackboneMetrics(r1, r2 netsim.RelayID, window int) quality.Metrics {
	if r1 == r2 {
		return quality.Metrics{}
	}
	return f.m
}

func TestPredictorTransitWithBackbone(t *testing.T) {
	h := history.NewStore()
	rng := stats.NewRNG(3)
	bb := fakeBackbone{quality.Metrics{RTTMs: 40, LossRate: 0.0001, JitterMs: 0.5}}
	// acc(1,r0)=30, acc(2,r1)=60: transit truth = 30+40+60 = 130.
	// Observed directly:
	addSamples(h, 1, 2, netsim.TransitOption(0, 1), 0, 130, 25, rng)
	// Also bounce observations to cover segments for stitching to (3):
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 80, 25, rng)  // acc(3,r0)=50
	addSamples(h, 2, 3, netsim.BounceOption(1), 0, 110, 25, rng) // acc(3,r1)=50
	p := BuildPredictor(h, 0, bb, DefaultPredictorConfig())

	// Unseen transit 3 -> (r0) -> (r1) -> 2: 50 + 40 + 60 = 150.
	pred, ok := p.Predict(3, 2, netsim.TransitOption(0, 1))
	if !ok {
		t.Fatal("unseen transit not predicted")
	}
	if math.Abs(pred.Mean[quality.RTT]-150) > 20 {
		t.Errorf("transit prediction = %v, want ~150", pred.Mean[quality.RTT])
	}
}

func TestPredictorTransitWithoutBackboneSource(t *testing.T) {
	// With bb == nil the backbone link becomes an unknown; predictions
	// still work once the link has been observed via some transit path.
	h := history.NewStore()
	rng := stats.NewRNG(4)
	addSamples(h, 1, 2, netsim.TransitOption(0, 1), 0, 130, 25, rng)
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 80, 25, rng)
	addSamples(h, 2, 3, netsim.BounceOption(1), 0, 110, 25, rng)
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())
	pred, ok := p.Predict(3, 2, netsim.TransitOption(0, 1))
	if !ok {
		t.Fatal("unseen transit not predicted without backbone source")
	}
	// Same structural answer as above (the solver splits the 40ms backbone
	// among segments differently, but the path sum is constrained).
	if pred.Mean[quality.RTT] < 100 || pred.Mean[quality.RTT] > 200 {
		t.Errorf("transit prediction = %v, want ~150 ± slack", pred.Mean[quality.RTT])
	}
}

func TestPredictorThinHistoryFallsBackToTomo(t *testing.T) {
	h := history.NewStore()
	rng := stats.NewRNG(5)
	// Dense bounce observations fix the segments near 80.
	addSamples(h, 1, 2, netsim.BounceOption(0), 0, 80, 40, rng)
	// A single wild sample for pair (1,2) via bounce(0) exists in a
	// *different* pair (3,2): give (3,2) one noisy sample; MinSamples=3
	// should prefer tomography for it.
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 90, 40, rng)
	h.Add(2, 3, netsim.BounceOption(0), 0, quality.Metrics{RTTMs: 500, LossRate: 0.2, JitterMs: 50})
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())
	pred, ok := p.Predict(2, 3, netsim.BounceOption(0))
	if !ok {
		t.Fatal("no prediction")
	}
	if !pred.Tomo {
		t.Error("1-sample history should defer to tomography")
	}
	// Tomography view: acc2 ≈ 80-acc1, acc3 ≈ 90-acc1 → path well under 500.
	if pred.Mean[quality.RTT] > 300 {
		t.Errorf("prediction %v follows the outlier sample", pred.Mean[quality.RTT])
	}
}

func TestPredictorDisableTomography(t *testing.T) {
	h := history.NewStore()
	rng := stats.NewRNG(6)
	addSamples(h, 1, 2, netsim.BounceOption(0), 0, 80, 25, rng)
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 100, 25, rng)
	cfg := DefaultPredictorConfig()
	cfg.DisableTomography = true
	p := BuildPredictor(h, 0, nil, cfg)
	if _, ok := p.Predict(2, 3, netsim.BounceOption(0)); ok {
		t.Error("tomography disabled but unseen pair predicted")
	}
	// Seen pairs still predict.
	if _, ok := p.Predict(1, 2, netsim.BounceOption(0)); !ok {
		t.Error("seen pair should still predict")
	}
}

func TestPredictorDirectPathNeverTomo(t *testing.T) {
	// Direct (BGP) paths cannot be stitched from relay segments.
	h := history.NewStore()
	rng := stats.NewRNG(7)
	addSamples(h, 1, 2, netsim.BounceOption(0), 0, 80, 25, rng)
	addSamples(h, 1, 3, netsim.BounceOption(0), 0, 100, 25, rng)
	p := BuildPredictor(h, 0, nil, DefaultPredictorConfig())
	if _, ok := p.Predict(2, 3, netsim.DirectOption()); ok {
		t.Error("direct path predicted without direct history")
	}
}

func TestPredictorAgainstWorldGroundTruth(t *testing.T) {
	// End-to-end accuracy check (the §5.3 property at small scale):
	// generate calls from the world model over one window, train, and
	// verify most predictions land within 35% of the ground-truth means.
	w := netsim.New(netsim.DefaultConfig(11))
	rng := stats.NewRNG(12)
	h := history.NewStore()
	pairs := [][2]netsim.ASID{{1, 140}, {5, 120}, {9, 77}, {20, 130}, {33, 99}}
	for _, pr := range pairs {
		for _, opt := range w.Options(pr[0], pr[1]) {
			for i := 0; i < 12; i++ {
				m := w.SampleCall(pr[0], pr[1], opt, 3.0, rng)
				h.Add(pr[0], pr[1], opt, 0, m)
			}
		}
	}
	p := BuildPredictor(h, 0, w, DefaultPredictorConfig())
	total, close := 0, 0
	for _, pr := range pairs {
		for _, opt := range w.Options(pr[0], pr[1]) {
			pred, ok := p.Predict(int32(pr[0]), int32(pr[1]), opt)
			if !ok {
				t.Errorf("no prediction for %v", opt)
				continue
			}
			truth := w.WindowMean(pr[0], pr[1], opt, 0).RTTMs
			total++
			if math.Abs(pred.Mean[quality.RTT]-truth)/truth < 0.35 {
				close++
			}
		}
	}
	if close*10 < total*7 {
		t.Errorf("only %d/%d predictions within 35%% of ground truth", close, total)
	}
}
