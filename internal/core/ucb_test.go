package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

func TestUCBPriorSeedsUntriedArms(t *testing.T) {
	// Untried arms are scored from their prediction as a single virtual
	// sample. With comparable predicted means, every arm must get pulled
	// within a modest horizon — the √(ln t / n) term guarantees it.
	s := newUCBState()
	topk := []Candidate{
		cand(netsim.BounceOption(1), 100, 5),
		cand(netsim.BounceOption(2), 105, 5),
		cand(netsim.BounceOption(3), 110, 5),
	}
	tried := map[netsim.Option]bool{}
	for i := 0; i < 40; i++ {
		opt := s.explore(topk, quality.RTT, 0.1, false)
		tried[opt] = true
		s.observe(opt, 100)
	}
	if len(tried) != 3 {
		t.Fatalf("only %d/3 arms ever tried", len(tried))
	}
}

func TestUCBPriorPrefersBetterPrediction(t *testing.T) {
	// With no observations at all, the first pull goes to the arm with the
	// best predicted mean.
	s := newUCBState()
	topk := []Candidate{
		cand(netsim.BounceOption(1), 200, 5),
		cand(netsim.BounceOption(2), 90, 5),
	}
	if got := s.explore(topk, quality.RTT, 0.1, false); got != netsim.BounceOption(2) {
		t.Errorf("first pull = %v, want the better-predicted arm", got)
	}
}

func TestUCBConvergesToBestArm(t *testing.T) {
	rng := stats.NewRNG(1)
	s := newUCBState()
	topk := []Candidate{
		cand(netsim.BounceOption(1), 100, 10),
		cand(netsim.BounceOption(2), 100, 10), // same prediction; truth differs
	}
	truth := map[netsim.Option]float64{
		netsim.BounceOption(1): 80,
		netsim.BounceOption(2): 140,
	}
	picks := map[netsim.Option]int{}
	for i := 0; i < 600; i++ {
		opt := s.explore(topk, quality.RTT, 0.1, false)
		picks[opt]++
		s.observe(opt, truth[opt]*rng.LogNormal(0, 0.1))
	}
	if picks[netsim.BounceOption(1)] < 400 {
		t.Errorf("best arm picked only %d/600 times", picks[netsim.BounceOption(1)])
	}
}

func TestUCBNaiveNormExploresMore(t *testing.T) {
	// With max-based normalization an early outlier stretches the scale so
	// the exploitation term shrinks; the suboptimal arm keeps being pulled
	// far longer than with upper-CI normalization. This is the Fig. 15
	// mechanism.
	root := stats.NewRNG(3)
	run := func(naive bool, trial uint64) int {
		rng := root.SplitN("trial", trial)
		s := newUCBState()
		topk := []Candidate{
			cand(netsim.BounceOption(1), 100, 10),
			cand(netsim.BounceOption(2), 100, 10),
		}
		truth := map[netsim.Option]float64{
			netsim.BounceOption(1): 80,
			netsim.BounceOption(2): 130,
		}
		badPulls := 0
		for i := 0; i < 400; i++ {
			opt := s.explore(topk, quality.RTT, 0.1, naive)
			if opt == netsim.BounceOption(2) {
				badPulls++
			}
			v := truth[opt] * rng.LogNormal(0, 0.3)
			if rng.Float64() < 0.02 {
				v += 300 + rng.Pareto(200, 1.8) // heavy-tailed RTT outlier
			}
			s.observe(opt, v)
		}
		return badPulls
	}
	var good, naive int
	const trials = 40
	for tr := uint64(0); tr < trials; tr++ {
		good += run(false, tr)
		naive += run(true, tr)
	}
	if naive <= good {
		t.Errorf("naive normalization should waste more pulls on average: naive=%d vs via=%d (over %d trials)", naive, good, trials)
	}
}

func TestUCBDecay(t *testing.T) {
	s := newUCBState()
	s.observe(netsim.BounceOption(1), 100)
	s.observe(netsim.BounceOption(1), 100)
	s.decay(0.5)
	a := s.arm(netsim.BounceOption(1))
	if a.count != 1 || a.sum != 100 {
		t.Errorf("decayed arm = %+v", a)
	}
	if s.t != 1 {
		t.Errorf("decayed t = %v", s.t)
	}
	s.decay(1) // no-op
	if a.count != 1 {
		t.Error("decay(1) should be a no-op")
	}
	s.decay(-1) // clamps to reset
	if a.count != 0 {
		t.Error("negative factor should reset")
	}
}

func TestUCBEmptyTopK(t *testing.T) {
	s := newUCBState()
	if got := s.explore(nil, quality.RTT, 0.1, false); got != netsim.DirectOption() {
		t.Errorf("empty top-k should fall back to direct, got %v", got)
	}
}

func TestEmpiricalMean(t *testing.T) {
	s := newUCBState()
	if _, ok := s.empiricalMean(netsim.BounceOption(1)); ok {
		t.Error("untried arm should report no mean")
	}
	s.observe(netsim.BounceOption(1), 10)
	s.observe(netsim.BounceOption(1), 20)
	if v, ok := s.empiricalMean(netsim.BounceOption(1)); !ok || v != 15 {
		t.Errorf("mean = %v, %v", v, ok)
	}
}

func TestReseedStale(t *testing.T) {
	s := newUCBState()
	opt := netsim.BounceOption(1)
	// 10 samples around 700: stale memory.
	for i := 0; i < 10; i++ {
		s.observe(opt, 700)
	}
	// Fresh prediction says ~60 with solid support: memory must reset.
	c := cand(opt, 60, 5)
	c.Pred.N = 10
	s.reseedStale([]Candidate{c}, quality.RTT)
	if v, ok := s.empiricalMean(opt); !ok || v != 60 {
		t.Errorf("reseeded mean = %v, want 60", v)
	}
	if s.arm(opt).count != 1 {
		t.Errorf("reseeded count = %v, want 1", s.arm(opt).count)
	}

	// Mild disagreement (within 2.5x) must NOT reset.
	s2 := newUCBState()
	for i := 0; i < 10; i++ {
		s2.observe(opt, 100)
	}
	c2 := cand(opt, 60, 5)
	c2.Pred.N = 10
	s2.reseedStale([]Candidate{c2}, quality.RTT)
	if s2.arm(opt).count != 10 {
		t.Error("mild disagreement should keep memory")
	}

	// Thin prediction support must NOT reset either.
	s3 := newUCBState()
	for i := 0; i < 10; i++ {
		s3.observe(opt, 700)
	}
	c3 := cand(opt, 60, 5)
	c3.Pred.N = 1
	s3.reseedStale([]Candidate{c3}, quality.RTT)
	if s3.arm(opt).count != 10 {
		t.Error("thin prediction should not reset memory")
	}
}
