package core

// The §7 client-side decision cache, rebuilt for call-floor rates.
//
// The first version (PR series "scale") guarded one map with one mutex:
// correct, but every Choose — hit or miss — serialized through a global
// lock, entries were never evicted, and a fresh measurement report could
// not invalidate a stale decision before its TTL ran out. This version is
// built around three ideas:
//
//   - Sharding: pairs hash across cacheShardCount independent shards, so
//     writers (fills, sweeps) on one shard never stall readers on another.
//
//   - Lock-free hits: each shard publishes an immutable open-addressed
//     probe table (pair → slot) through an atomic pointer. Writers mutate
//     the shard's authoritative map under its lock and republish the
//     table; topology changes stop once the pair population is seen. A
//     probe table is used instead of a Go map because the runtime map's
//     generic lookup machinery costs more than the rest of the hit path
//     combined; a ≤50%-loaded linear probe resolves in one or two cache
//     lines. A cache hit is a handful of loads and zero heap allocations —
//     enforced forever by the //via:noalloc annotation on the lookup,
//     which `make lint` verifies against the compiler's escape analysis.
//
//   - Epoch invalidation: every slot carries an epoch counter, bumped when
//     a measurement report for the pair is applied (via the strategy's
//     report hook when the inner strategy supports it, else directly in
//     Observe). A decision records the epoch it was computed under; a hit
//     requires the epochs to match, so one report forces one recompute
//     instead of waiting out the TTL — the cache is at most one report
//     stale, never a TTL stale.
//
// Orientation: decisions are stored in canonical (low endpoint first)
// form and flipped on the way out, so both call directions share one
// entry and a transit route read from the reverse direction traverses the
// relays in the correct order.

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
)

// cacheShardBits selects the shard from the low bits of the pair hash;
// the probe table indexes with the bits above them, so the two indices
// are decorrelated.
const cacheShardBits = 6

// cacheShardCount spreads pairs over independent shards.
const cacheShardCount = 1 << cacheShardBits

// DefaultCacheMaxPairs bounds the cache's total entry count. The old
// cache grew one entry per pair ever seen and never let go; at AS-pair
// granularity a long-lived deployment sees millions of pairs, most of
// them one-call wonders that would never be read again.
const DefaultCacheMaxPairs = 1 << 16

// cachedDecision is one immutable published decision. A new fill
// allocates a fresh one and swaps the slot pointer — readers either see
// the old complete value or the new complete value, never a torn write.
type cachedDecision struct {
	opt     netsim.Option // canonical orientation
	expires float64       // tHours
	epoch   uint64        // slot epoch the decision was computed under
}

// cacheSlot is one pair's stable cell: the slot survives refills, so
// Observe can bump the epoch without touching the shard index.
type cacheSlot struct {
	epoch atomic.Uint64
	dec   atomic.Pointer[cachedDecision]
}

type cacheSlotMap = map[groupPair]*cacheSlot

// cacheEntry is one probe cell; slot == nil marks the cell empty (and,
// since tables are at most half full, terminates every probe chain).
type cacheEntry struct {
	slot *cacheSlot
	key  groupPair
}

// cacheTable is a shard's published pair→slot index: immutable once
// stored, linear-probed, sized to at most 50% load.
type cacheTable struct {
	mask    uint64
	entries []cacheEntry
	n       int // live pairs
}

// buildCacheTable lays slots out into a fresh probe table. Map iteration
// order only permutes probe positions, never lookup results, so the
// table is deterministic where it matters.
func buildCacheTable(slots cacheSlotMap) *cacheTable {
	size := 8
	for size < 2*len(slots) {
		size *= 2
	}
	t := &cacheTable{mask: uint64(size - 1), entries: make([]cacheEntry, size), n: len(slots)}
	for k, v := range slots {
		i := (cacheHash(k) >> cacheShardBits) & t.mask
		for t.entries[i].slot != nil {
			i = (i + 1) & t.mask
		}
		t.entries[i] = cacheEntry{slot: v, key: k}
	}
	return t
}

// get resolves a pair's slot, nil if absent. Not the hit path — lookup
// inlines its own probe loop so the whole hit stays one frame.
func (t *cacheTable) get(gp groupPair, h uint64) *cacheSlot {
	i := (h >> cacheShardBits) & t.mask
	for {
		e := &t.entries[i]
		if e.slot == nil {
			return nil
		}
		if e.key == gp {
			return e.slot
		}
		i = (i + 1) & t.mask
	}
}

// cacheShard is one lock-free-read partition of the cache.
type cacheShard struct {
	// table is the shard's published pair→slot index. Mutations (new
	// pair, eviction, sweep) update slots under mu and republish;
	// readers load the table wait-free and never see slots.
	table atomic.Pointer[cacheTable]
	mu    sync.Mutex
	slots cacheSlotMap // authoritative; guarded by mu

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// Cached wraps a strategy with the decision cache: a pair's choice is
// reused until its TTL expires or a report for the pair invalidates it.
// Observations always pass through to the inner strategy.
type Cached struct {
	inner    Strategy
	ttlHours float64
	perShard int // max slots per shard (bounded memory)
	hooked   bool
	shards   [cacheShardCount]cacheShard
}

// NewCached wraps inner with a decision cache of the given TTL (hours)
// and the default size bound. If inner exposes a report hook
// (ReportHooked — core.Via and core.Sharded do), cache invalidation is
// driven by report *application*, so with async ingestion a decision is
// only recomputed once the new measurement is actually visible to the
// inner strategy; otherwise Observe invalidates directly.
func NewCached(inner Strategy, ttlHours float64) *Cached {
	return NewCachedBounded(inner, ttlHours, DefaultCacheMaxPairs)
}

// NewCachedBounded is NewCached with an explicit bound on the total
// number of cached pairs. When a shard is full, expired entries are swept
// first and the entry with the nearest expiry is evicted if needed.
func NewCachedBounded(inner Strategy, ttlHours float64, maxPairs int) *Cached {
	if ttlHours <= 0 {
		ttlHours = 1
	}
	if maxPairs < cacheShardCount {
		maxPairs = cacheShardCount
	}
	c := &Cached{
		inner:    inner,
		ttlHours: ttlHours,
		perShard: (maxPairs + cacheShardCount - 1) / cacheShardCount,
	}
	if h, ok := inner.(ReportHooked); ok {
		c.hooked = h.SetReportHook(c.invalidate)
	}
	return c
}

// Name implements Strategy.
func (c *Cached) Name() string { return c.inner.Name() + "+cache" }

// Inner exposes the wrapped strategy (controller diagnostics unwrap it).
func (c *Cached) Inner() Strategy { return c.inner }

// cacheHash mixes a canonical pair; the low bits pick the shard, the
// rest index the shard's probe table.
func cacheHash(gp groupPair) uint64 {
	h := uint64(uint32(gp.a))*0x9e3779b97f4a7c15 ^ uint64(uint32(gp.b))*0x2545f4914f6cdd1d
	h ^= h >> 33
	return h
}

// canonPair canonicalizes a call's endpoints and reports whether they
// were flipped.
func canonPair(call Call) (groupPair, bool) {
	gp := groupPair{int32(call.Src), int32(call.Dst)}
	if gp.a > gp.b {
		return groupPair{gp.b, gp.a}, true
	}
	return gp, false
}

// lookup is the cache-hit hot path: probe the published table, then a
// few atomic loads — no locks, no heap allocation (compiler-verified by
// the noalloc analyzer — keep it that way). A miss for any reason
// (unknown pair, no decision yet, expired, epoch mismatch) returns
// false.
//
//via:noalloc
func (s *cacheShard) lookup(gp groupPair, h uint64, tHours float64) (netsim.Option, bool) {
	t := s.table.Load()
	if t == nil {
		return netsim.Option{}, false
	}
	i := (h >> cacheShardBits) & t.mask
	for {
		e := &t.entries[i]
		if e.slot == nil {
			return netsim.Option{}, false
		}
		if e.key == gp {
			d := e.slot.dec.Load()
			if d == nil || tHours >= d.expires || d.epoch != e.slot.epoch.Load() {
				return netsim.Option{}, false
			}
			return d.opt, true
		}
		i = (i + 1) & t.mask
	}
}

// Choose implements Strategy: serve from the cache when the pair has a
// live, epoch-current decision; otherwise consult the inner strategy and
// publish the result.
func (c *Cached) Choose(call Call, cands []netsim.Option) netsim.Option {
	gp, flip := canonPair(call)
	h := cacheHash(gp)
	sh := &c.shards[h&(cacheShardCount-1)]
	if opt, ok := sh.lookup(gp, h, call.THours); ok {
		sh.hits.Add(1)
		if flip && opt.Kind == netsim.Transit {
			opt.R1, opt.R2 = opt.R2, opt.R1
		}
		return opt
	}
	sh.misses.Add(1)

	// The slot (and its epoch) is resolved before the inner strategy
	// runs: a report that lands while the decision is being computed
	// bumps the epoch and the fill below publishes an already-stale
	// decision, so the next Choose recomputes — the race costs one extra
	// miss, never a stale hit.
	slot := sh.ensureSlot(gp, h, c.perShard, call.THours)
	epoch := slot.epoch.Load()
	opt := c.inner.Choose(call, cands)
	canon := canonOpt(int32(call.Src), int32(call.Dst), opt)
	slot.dec.Store(&cachedDecision{opt: canon, expires: call.THours + c.ttlHours, epoch: epoch})
	return opt
}

// ensureSlot returns the pair's slot, building it under the shard writer
// lock and evicting first if the shard is at its bound.
func (s *cacheShard) ensureSlot(gp groupPair, h uint64, perShard int, nowHours float64) *cacheSlot {
	if t := s.table.Load(); t != nil {
		if slot := t.get(gp, h); slot != nil {
			return slot
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot := s.slots[gp]; slot != nil {
		return slot
	}
	if s.slots == nil {
		s.slots = make(cacheSlotMap)
	}
	if len(s.slots) >= perShard {
		s.evictDownLocked(perShard-1, nowHours)
	}
	slot := &cacheSlot{}
	s.slots[gp] = slot
	s.table.Store(buildCacheTable(s.slots))
	return slot
}

// evictDownLocked shrinks the shard to at most target entries: expired
// decisions go unconditionally, then nearest-expiry entries (ties broken
// by pair order, never map iteration order, so a deterministic call
// sequence evicts deterministically). Caller holds s.mu and republishes
// the table.
func (s *cacheShard) evictDownLocked(target int, nowHours float64) {
	next := s.slots
	for k, v := range next {
		if d := v.dec.Load(); d != nil && nowHours >= d.expires {
			delete(next, k)
			s.evictions.Add(1)
		}
	}
	for len(next) > target {
		var victim groupPair
		victimExp := 0.0
		found := false
		for k, v := range next {
			exp := 0.0 // slots with no published decision evict first
			if d := v.dec.Load(); d != nil {
				exp = d.expires
			}
			if !found || exp < victimExp ||
				(exp == victimExp && (k.a < victim.a || (k.a == victim.a && k.b < victim.b))) {
				victim, victimExp, found = k, exp, true
			}
		}
		if !found {
			return
		}
		delete(next, victim)
		s.evictions.Add(1)
	}
}

// Observe implements Strategy: reports pass through to the inner
// strategy, and (when the inner strategy exposes no report hook) the
// pair's cached decision is invalidated here instead.
func (c *Cached) Observe(call Call, opt netsim.Option, m quality.Metrics) {
	c.inner.Observe(call, opt, m)
	if !c.hooked {
		c.invalidate(call)
	}
}

// invalidate bumps the pair's epoch so the next Choose recomputes. Pairs
// with no cached decision are untouched (nothing to invalidate).
func (c *Cached) invalidate(call Call) {
	gp, _ := canonPair(call)
	h := cacheHash(gp)
	sh := &c.shards[h&(cacheShardCount-1)]
	t := sh.table.Load()
	if t == nil {
		return
	}
	slot := t.get(gp, h)
	if slot == nil {
		return
	}
	slot.epoch.Add(1)
	sh.invalidations.Add(1)
}

// Sweep drops entries whose decision has expired as of nowHours, and
// enforces the size bound. Call it periodically on long-lived processes;
// fills also enforce the bound, so skipping it costs memory precision,
// not correctness.
func (c *Cached) Sweep(nowHours float64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.slots) > 0 {
			sh.evictDownLocked(c.perShard, nowHours)
			sh.table.Store(buildCacheTable(sh.slots))
		}
		sh.mu.Unlock()
	}
}

// Len reports the number of cached pairs across all shards.
func (c *Cached) Len() int {
	n := 0
	for i := range c.shards {
		if t := c.shards[i].table.Load(); t != nil {
			n += t.n
		}
	}
	return n
}

// Hits reports cumulative cache hits.
func (c *Cached) Hits() int64 { return c.sum(func(s *cacheShard) int64 { return s.hits.Load() }) }

// Misses reports cumulative cache misses.
func (c *Cached) Misses() int64 { return c.sum(func(s *cacheShard) int64 { return s.misses.Load() }) }

// Evictions reports cumulative evictions (bound enforcement + sweeps).
func (c *Cached) Evictions() int64 {
	return c.sum(func(s *cacheShard) int64 { return s.evictions.Load() })
}

// Invalidations reports cumulative epoch bumps from applied reports.
func (c *Cached) Invalidations() int64 {
	return c.sum(func(s *cacheShard) int64 { return s.invalidations.Load() })
}

func (c *Cached) sum(f func(*cacheShard) int64) int64 {
	var n int64
	for i := range c.shards {
		n += f(&c.shards[i])
	}
	return n
}

// errNotStateful reports a state call on a cache whose inner strategy
// has no serializable state.
var errNotStateful = errors.New("core: cached inner strategy does not implement Save/LoadState")

// Reset drops every cached decision (all shards, all pairs). Counters
// are preserved — Reset is a state event, not a new cache.
func (c *Cached) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.slots = nil
		sh.table.Store(nil)
		sh.mu.Unlock()
	}
}

// Flush drains the inner strategy's pending reports (async ingestion);
// a no-op for synchronous inner strategies.
func (c *Cached) Flush() {
	if f, ok := c.inner.(interface{ Flush() }); ok {
		f.Flush()
	}
}

// Close shuts down the inner strategy's background machinery, if any.
func (c *Cached) Close() {
	if cl, ok := c.inner.(interface{ Close() }); ok {
		cl.Close()
	}
}

// SaveState passes through to the inner strategy, so a cache-wrapped Via
// still satisfies the controller's StatefulStrategy. The cache itself is
// deliberately not persisted: it is derivable state with a TTL.
func (c *Cached) SaveState(w io.Writer) error {
	st, ok := c.inner.(interface{ SaveState(io.Writer) error })
	if !ok {
		return errNotStateful
	}
	return st.SaveState(w)
}

// LoadState passes through to the inner strategy and drops every cached
// decision — whatever was cached was computed against the old state.
func (c *Cached) LoadState(r io.Reader) error {
	st, ok := c.inner.(interface{ LoadState(io.Reader) error })
	if !ok {
		return errNotStateful
	}
	if err := st.LoadState(r); err != nil {
		return err
	}
	c.Reset()
	return nil
}

// HitRate reports the fraction of decisions served from the cache — the
// controller-load reduction of §7.
func (c *Cached) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// RegisterMetrics exposes the cache's counters on a registry. The cache
// keeps its own per-shard atomics on the hot path; the registry reads
// them lazily at exposition time, so telemetry costs the hot path
// nothing.
func (c *Cached) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("via_decision_cache_hits_total", c.Hits)
	reg.CounterFunc("via_decision_cache_misses_total", c.Misses)
	reg.CounterFunc("via_decision_cache_evictions_total", c.Evictions)
	reg.CounterFunc("via_decision_cache_invalidations_total", c.Invalidations)
	reg.GaugeFunc("via_decision_cache_entries", func() float64 { return float64(c.Len()) })
}
