// Package core implements Via's relay selection — the paper's primary
// contribution (§4): a performance predictor built from passive call history
// expanded by network tomography, confidence-interval-based top-k pruning
// (Algorithm 2), a modified UCB1 exploration-exploitation step over the
// pruned candidates (Algorithm 3), ε general exploration to track drifting
// distributions, and a percentile-based budget gate (§4.6). It also provides
// the baselines the paper compares against: the oracle, pure prediction
// (Strawman I), pure exploration (Strawman II), and the always-direct
// default.
package core

import (
	"math"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/tomo"
)

// BackboneSource supplies inter-relay performance for a time bucket. The
// provider operates the backbone and has this telemetry (§3.2); in
// simulation netsim.World implements it, in the testbed the controller's
// own relay-to-relay probes do.
type BackboneSource interface {
	BackboneMetrics(r1, r2 netsim.RelayID, window int) quality.Metrics
}

// Prediction is the predictor's estimate for one (pair, option): per-metric
// mean and standard error, from which the 95% confidence bounds of
// Algorithm 2 derive.
type Prediction struct {
	Mean [quality.NumMetrics]float64
	SEM  [quality.NumMetrics]float64
	N    int64 // samples behind the estimate (0 for pure tomography)
	Tomo bool  // true when stitched from segment estimates
}

// Lower returns the 95% lower confidence bound on metric m, clamped at 0.
func (p Prediction) Lower(m quality.Metric) float64 {
	v := p.Mean[m] - 1.96*p.SEM[m]
	if v < 0 {
		return 0
	}
	return v
}

// Upper returns the 95% upper confidence bound on metric m.
func (p Prediction) Upper(m quality.Metric) float64 {
	return p.Mean[m] + 1.96*p.SEM[m]
}

type poKey struct {
	a, b int32 // canonical group pair (a <= b)
	opt  netsim.Option
}

func makePOKey(a, b int32, opt netsim.Option) poKey {
	if a > b {
		a, b = b, a
		if opt.Kind == netsim.Transit {
			opt.R1, opt.R2 = opt.R2, opt.R1
		}
	}
	return poKey{a, b, opt}
}

type segID struct {
	kind uint8 // 0 = access(group, relay), 1 = backbone(r1, r2)
	a, b int32
}

// PredictorConfig tunes predictor construction.
type PredictorConfig struct {
	// MinSamples is the sample count below which a seen (pair, option)
	// falls back to tomography instead of trusting its own noisy history.
	MinSamples int64
	// SEMFloorFrac keeps confidence intervals honest for tiny aggregates:
	// SEM is floored at Mean·SEMFloorFrac/√N.
	SEMFloorFrac float64
	// TomoIters bounds the Gauss–Seidel sweeps per metric.
	TomoIters int
	// DisableTomography turns off coverage expansion (ablation).
	DisableTomography bool
	// TrainBuckets is how many trailing buckets feed training (default 1:
	// just the previous period, as in the paper's 24-hour lookback).
	TrainBuckets int
}

// DefaultPredictorConfig returns the configuration used in the evaluation.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		MinSamples:   8,
		SEMFloorFrac: 0.25,
		TomoIters:    60,
		TrainBuckets: 3,
	}
}

// Predictor predicts per-option performance for a time bucket, trained on
// the previous bucket's history (stage 2-3 of Figure 10).
type Predictor struct {
	cfg     PredictorConfig
	seen    map[poKey]Prediction
	segIdx  map[segID]int
	nSegs   int
	tomoRes [quality.NumMetrics]*tomo.Result
	bb      BackboneSource
	bucket  int
}

// BuildPredictor trains a predictor from the given history bucket
// (Algorithm 1, line 1). bb may be nil, in which case backbone links become
// additional tomography unknowns.
func BuildPredictor(h *history.Store, bucket int, bb BackboneSource, cfg PredictorConfig) *Predictor {
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 3
	}
	if cfg.SEMFloorFrac <= 0 {
		cfg.SEMFloorFrac = 0.25
	}
	if cfg.TomoIters <= 0 {
		cfg.TomoIters = 60
	}
	p := &Predictor{
		cfg:    cfg,
		seen:   make(map[poKey]Prediction),
		segIdx: make(map[segID]int),
		bb:     bb,
		bucket: bucket,
	}

	if cfg.TrainBuckets <= 0 {
		cfg.TrainBuckets = 1
	}
	p.cfg = cfg

	type obs struct {
		segs  []int
		value [quality.NumMetrics]float64
		w     float64
	}
	var observations []obs

	// Merge the trailing training buckets into one aggregate per
	// (pair, option) before prediction.
	merged := make(map[poKey]*history.Agg)
	var order []poKey
	for b := bucket - cfg.TrainBuckets + 1; b <= bucket; b++ {
		h.EachOpt(b, func(pair history.PairKey, opt netsim.Option, a *history.Agg) {
			k := makePOKey(int32(pair.A), int32(pair.B), opt)
			m := merged[k]
			if m == nil {
				m = &history.Agg{}
				merged[k] = m
				order = append(order, k)
			}
			for _, met := range quality.AllMetrics() {
				m.Metrics[met].Merge(a.Metrics[met])
			}
			m.PNR.Merge(a.PNR)
		})
	}

	process := func(pair history.PairKey, opt netsim.Option, a *history.Agg) {
		pred := Prediction{N: a.N()}
		for _, m := range quality.AllMetrics() {
			mean := a.Metrics[m].Mean
			sem := a.Metrics[m].SEM()
			floor := mean * cfg.SEMFloorFrac / math.Sqrt(float64(a.N()))
			if sem < floor {
				sem = floor
			}
			pred.Mean[m] = mean
			pred.SEM[m] = sem
		}
		p.seen[makePOKey(int32(pair.A), int32(pair.B), opt)] = pred

		if cfg.DisableTomography || !opt.IsRelayed() {
			return
		}
		// Tomography observation: the relayed path decomposes into access
		// legs (and, for transit, the backbone link). When backbone
		// telemetry is available the known contribution is subtracted so
		// only access legs remain unknown.
		var o obs
		o.w = float64(a.N())
		o.value[quality.RTT] = a.Metrics[quality.RTT].Mean
		o.value[quality.Loss] = tomo.LinearizeLoss(a.Metrics[quality.Loss].Mean)
		o.value[quality.Jitter] = a.Metrics[quality.Jitter].Mean
		switch opt.Kind {
		case netsim.Bounce:
			o.segs = []int{
				p.seg(segID{0, int32(pair.A), int32(opt.R1)}),
				p.seg(segID{0, int32(pair.B), int32(opt.R1)}),
			}
		case netsim.Transit:
			o.segs = []int{
				p.seg(segID{0, int32(pair.A), int32(opt.R1)}),
				p.seg(segID{0, int32(pair.B), int32(opt.R2)}),
			}
			if bb != nil {
				bm := bb.BackboneMetrics(opt.R1, opt.R2, bucket)
				o.value[quality.RTT] = maxF(0, o.value[quality.RTT]-bm.RTTMs)
				o.value[quality.Loss] = maxF(0, o.value[quality.Loss]-tomo.LinearizeLoss(bm.LossRate))
				o.value[quality.Jitter] = maxF(0, o.value[quality.Jitter]-bm.JitterMs)
			} else {
				o.segs = append(o.segs, p.seg(backboneSegID(opt.R1, opt.R2)))
			}
		}
		observations = append(observations, o)
	}
	for _, k := range order {
		process(history.PairKey{A: netsim.ASID(k.a), B: netsim.ASID(k.b)}, k.opt, merged[k])
	}

	if !cfg.DisableTomography && len(observations) > 0 {
		for _, m := range quality.AllMetrics() {
			solver := tomo.NewSolver(p.nSegs)
			for _, o := range observations {
				solver.AddObservation(o.segs, o.value[m], o.w)
			}
			p.tomoRes[m] = solver.Solve(cfg.TomoIters, 1e-8)
		}
	}
	return p
}

func backboneSegID(r1, r2 netsim.RelayID) segID {
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return segID{1, int32(r1), int32(r2)}
}

// seg interns a segment id, assigning indices on first use.
func (p *Predictor) seg(id segID) int {
	if i, ok := p.segIdx[id]; ok {
		return i
	}
	i := p.nSegs
	p.segIdx[id] = i
	p.nSegs++
	return i
}

// Bucket returns the training bucket index.
func (p *Predictor) Bucket() int { return p.bucket }

// Predict estimates the performance of option opt for calls between groups
// a and b. When both the pair's own history and a tomography-stitched
// estimate exist they are combined by inverse-variance weighting — the
// pair-specific signal dominates once it has enough samples, while the
// segment estimates (pooled across every pair sharing the access legs)
// carry sparse options. Once the pair's history reaches MinSamples it is
// trusted alone.
func (p *Predictor) Predict(a, b int32, opt netsim.Option) (Prediction, bool) {
	k := makePOKey(a, b, opt)
	hist, okH := p.seen[k]
	tomoP, okT := p.predictTomo(k.a, k.b, k.opt)
	switch {
	case okH && !okT:
		return hist, true
	case !okH && okT:
		return tomoP, true
	case !okH && !okT:
		return Prediction{}, false
	}
	if hist.N >= p.cfg.MinSamples {
		return hist, true
	}
	return combine(hist, tomoP), true
}

// combine merges two independent estimates by precision weighting, per
// metric. The result keeps the history's sample count and is flagged as
// tomography-assisted.
func combine(a, b Prediction) Prediction {
	out := Prediction{N: a.N, Tomo: true}
	for _, m := range quality.AllMetrics() {
		va := a.SEM[m] * a.SEM[m]
		vb := b.SEM[m] * b.SEM[m]
		switch {
		case va <= 0 && vb <= 0:
			out.Mean[m] = (a.Mean[m] + b.Mean[m]) / 2
		case va <= 0:
			out.Mean[m], out.SEM[m] = a.Mean[m], a.SEM[m]
		case vb <= 0:
			out.Mean[m], out.SEM[m] = b.Mean[m], b.SEM[m]
		default:
			wa, wb := 1/va, 1/vb
			out.Mean[m] = (wa*a.Mean[m] + wb*b.Mean[m]) / (wa + wb)
			out.SEM[m] = math.Sqrt(1 / (wa + wb))
		}
	}
	return out
}

// predictTomo stitches segment estimates into a path prediction.
func (p *Predictor) predictTomo(a, b int32, opt netsim.Option) (Prediction, bool) {
	if p.tomoRes[quality.RTT] == nil || !opt.IsRelayed() {
		return Prediction{}, false
	}
	var segs []int
	var bbm quality.Metrics
	switch opt.Kind {
	case netsim.Bounce:
		s1, ok1 := p.segIdx[segID{0, a, int32(opt.R1)}]
		s2, ok2 := p.segIdx[segID{0, b, int32(opt.R1)}]
		if !ok1 || !ok2 {
			return Prediction{}, false
		}
		segs = []int{s1, s2}
	case netsim.Transit:
		s1, ok1 := p.segIdx[segID{0, a, int32(opt.R1)}]
		s2, ok2 := p.segIdx[segID{0, b, int32(opt.R2)}]
		if !ok1 || !ok2 {
			return Prediction{}, false
		}
		segs = []int{s1, s2}
		if p.bb != nil {
			bbm = p.bb.BackboneMetrics(opt.R1, opt.R2, p.bucket)
		} else {
			s3, ok3 := p.segIdx[backboneSegID(opt.R1, opt.R2)]
			if !ok3 {
				return Prediction{}, false
			}
			segs = append(segs, s3)
		}
	}

	var out Prediction
	out.Tomo = true
	for _, m := range quality.AllMetrics() {
		v, sem, ok := p.tomoRes[m].PredictPath(segs)
		if !ok {
			return Prediction{}, false
		}
		switch m {
		case quality.Loss:
			v += tomo.LinearizeLoss(bbm.LossRate)
			loss := tomo.DelinearizeLoss(v)
			out.Mean[m] = loss
			out.SEM[m] = (1 - loss) * sem // d/dx (1−e^(−x)) = e^(−x)
		case quality.RTT:
			out.Mean[m] = v + bbm.RTTMs
			out.SEM[m] = sem
		case quality.Jitter:
			out.Mean[m] = v + bbm.JitterMs
			out.SEM[m] = sem
		}
	}
	return out, true
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
