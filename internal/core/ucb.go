package core

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// Per-pair bandit state, stored flat.
//
// The first implementation kept `map[netsim.Option]*ucbArm`: one heap
// object per arm, a hash per lookup, and map iteration order to fight in
// every aggregate (incumbent had to carry an explicit tie-break). A
// pair's arm count is the top-k plus an ε-exploration tail — single
// digits, occasionally tens — which is exactly the regime where a sorted
// slice beats a map on every axis: binary search is two or three cache
// lines, insertion is a memmove, iteration is linear memory in a
// deterministic order, and there are zero per-arm allocations. Since
// Choose runs explore() behind the strategy mutex on every uncached
// decision, this is the single hottest data structure in the module.

// ucbArm is the running reward state of one relaying option for one pair.
type ucbArm struct {
	opt   netsim.Option
	count float64 // |C_r|: calls assigned to this option (decays on refresh)
	sum   float64 // Σ Q(c', r): raw observed metric values
}

// armStat is one candidate's resolved state in explore's scratch buffer:
// the effective sample count and sum after applying the prediction prior.
type armStat struct {
	n   float64
	sum float64
}

// ucbState is the per-pair exploration-exploitation state used by
// Algorithm 3.
type ucbState struct {
	arms []ucbArm // sorted by optionLess on opt; no duplicates
	t    float64  // total assignments for this pair (the T of Algorithm 3)
	maxQ float64  // largest value ever observed (naive-normalization ablation)

	// scratch is explore's per-candidate staging buffer, reused across
	// calls so a steady-state Choose allocates nothing.
	scratch []armStat
}

func newUCBState() *ucbState {
	return &ucbState{}
}

// find returns the index of opt in arms, or the index where it would be
// inserted; ok reports whether it is present.
func (s *ucbState) find(opt netsim.Option) (int, bool) {
	lo, hi := 0, len(s.arms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if optionLess(s.arms[mid].opt, opt) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.arms) && s.arms[lo].opt == opt
}

// arm returns the option's arm for in-place mutation, or nil.
func (s *ucbState) arm(opt netsim.Option) *ucbArm {
	if i, ok := s.find(opt); ok {
		return &s.arms[i]
	}
	return nil
}

// observe folds one realized metric value into the state.
func (s *ucbState) observe(opt netsim.Option, q float64) {
	i, ok := s.find(opt)
	if !ok {
		s.arms = append(s.arms, ucbArm{})
		copy(s.arms[i+1:], s.arms[i:])
		s.arms[i] = ucbArm{opt: opt}
	}
	s.arms[i].count++
	s.arms[i].sum += q
	s.t++
	if q > s.maxQ {
		s.maxQ = q
	}
}

// reseedStale resets arms whose accumulated memory grossly contradicts the
// fresh prediction: the prediction is built from recent observations, so a
// large disagreement means the option's reward distribution has shifted and
// the old samples are misleading (§4.5's drifting-distribution concern).
// The arm restarts from the prediction as a single virtual sample, so UCB
// re-explores it promptly.
func (s *ucbState) reseedStale(topk []Candidate, m quality.Metric) {
	for _, c := range topk {
		a := s.arm(c.Option)
		if a == nil || a.count < 1 {
			continue
		}
		pm := c.Pred.Mean[m]
		// Require real support behind the prediction and a gross (2.5x)
		// disagreement; reseeding on prediction noise would throw away
		// good memory in stationary regimes.
		if pm <= 0 || c.Pred.N < 3 {
			continue
		}
		emp := a.sum / a.count
		if emp > 2.5*pm || emp < pm/2.5 {
			s.t -= a.count - 1
			a.count = 1
			a.sum = pm
		}
	}
}

// decay ages the state when the candidate set is refreshed, so stale
// observations from previous prune epochs lose influence while still
// seeding the new epoch. factor 1 disables decay; 0 resets.
func (s *ucbState) decay(factor float64) {
	if factor >= 1 {
		return
	}
	if factor < 0 {
		factor = 0
	}
	s.t *= factor
	for i := range s.arms {
		s.arms[i].count *= factor
		s.arms[i].sum *= factor
	}
}

// explore implements Algorithm 3: the modified UCB1 over the top-k
// candidates. Rewards (metric values; lower is better) are normalized by w,
// the mean of the top-k options' 95% upper confidence bounds — not by the
// observed range, which outliers would stretch until common-case differences
// become indistinguishable (§4.5 modification 1). An option never tried in
// this epoch is chosen immediately (its confidence bound is unbounded).
// coef is the exploration coefficient (0.1 in the paper's pseudocode).
//
// The pass structure is allocation-free: candidate arm state is resolved
// into a reusable scratch buffer while the normalizer accumulates, then
// the confidence bounds are computed in one batched sweep over scratch.
func (s *ucbState) explore(topk []Candidate, m quality.Metric, coef float64, naiveNorm bool) netsim.Option {
	if len(topk) == 0 {
		return netsim.DirectOption()
	}
	if cap(s.scratch) < len(topk) {
		s.scratch = make([]armStat, len(topk))
	}
	scratch := s.scratch[:len(topk)]

	// Pass 1: resolve each candidate's effective (n, sum) and accumulate
	// the normalizer. An arm with no observations this epoch is scored as
	// if the prediction were a single sample — a prediction-guided prior
	// that spares each pair classic UCB1's mandatory init round (the
	// prediction already is a measurement of the arm, pooled by
	// tomography) while √(ln t / n) still drives it to be tried early.
	var w float64
	if naiveNorm {
		// Ablation (Fig. 15): normalize by the full observed value range,
		// the standard rescaling UCB1 would use to map rewards into [0,1].
		// Heavy-tailed outliers stretch it, so common-case differences
		// between options become indistinguishable next to the exploration
		// term (§4.5).
		w = s.maxQ
	}
	for i, c := range topk {
		scratch[i] = armStat{n: 1, sum: c.Pred.Mean[m]}
		if a := s.arm(c.Option); a != nil && a.count >= 1 {
			scratch[i] = armStat{n: a.count, sum: a.sum}
		}
		u := c.Pred.Upper(m)
		if naiveNorm {
			if u > w {
				w = u
			}
		} else {
			w += u
		}
	}
	if !naiveNorm {
		w /= float64(len(topk))
	}
	if w <= 0 {
		w = 1
	}

	// Pass 2: batched confidence bounds over the scratch; lowest wins.
	t := s.t + 1
	logT := math.Log(t)
	best := 0
	bestUCB := math.Inf(1)
	for i := range scratch {
		ucb := scratch[i].sum/(w*scratch[i].n) - math.Sqrt(coef*logT/scratch[i].n)
		if ucb < bestUCB {
			bestUCB = ucb
			best = i
		}
	}
	return topk[best].Option
}

// empiricalMean returns the option's observed mean, if it has any samples.
// Used by the pure exploration baseline and by budget benefit estimation.
func (s *ucbState) empiricalMean(opt netsim.Option) (float64, bool) {
	a := s.arm(opt)
	if a == nil || a.count < 1 {
		return 0, false
	}
	return a.sum / a.count, true
}

// incumbent returns the arm with the best (lowest) empirical mean among
// arms with at least minCount effective samples. The pruning step consults
// it so a proven arm is never evicted from the candidate set by one noisy
// prediction refresh. Arms are scanned in their sorted order, so ties
// resolve to the optionLess-least arm without an explicit tie-break.
func (s *ucbState) incumbent(minCount float64) (netsim.Option, float64, bool) {
	var best netsim.Option
	bestV := 0.0
	found := false
	for i := range s.arms {
		a := &s.arms[i]
		if a.count < minCount {
			continue
		}
		v := a.sum / a.count
		if !found || v < bestV {
			best, bestV, found = a.opt, v, true
		}
	}
	return best, bestV, found
}
