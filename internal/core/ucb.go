package core

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// ucbArm is the running reward state of one relaying option for one pair.
type ucbArm struct {
	count float64 // |C_r|: calls assigned to this option (decays on refresh)
	sum   float64 // Σ Q(c', r): raw observed metric values
}

// ucbState is the per-pair exploration-exploitation state used by
// Algorithm 3.
type ucbState struct {
	arms map[netsim.Option]*ucbArm
	t    float64 // total assignments for this pair (the T of Algorithm 3)
	maxQ float64 // largest value ever observed (naive-normalization ablation)
}

func newUCBState() *ucbState {
	return &ucbState{arms: make(map[netsim.Option]*ucbArm)}
}

// observe folds one realized metric value into the state.
func (s *ucbState) observe(opt netsim.Option, q float64) {
	a := s.arms[opt]
	if a == nil {
		a = &ucbArm{}
		s.arms[opt] = a
	}
	a.count++
	a.sum += q
	s.t++
	if q > s.maxQ {
		s.maxQ = q
	}
}

// reseedStale resets arms whose accumulated memory grossly contradicts the
// fresh prediction: the prediction is built from recent observations, so a
// large disagreement means the option's reward distribution has shifted and
// the old samples are misleading (§4.5's drifting-distribution concern).
// The arm restarts from the prediction as a single virtual sample, so UCB
// re-explores it promptly.
func (s *ucbState) reseedStale(topk []Candidate, m quality.Metric) {
	for _, c := range topk {
		a := s.arms[c.Option]
		if a == nil || a.count < 1 {
			continue
		}
		pm := c.Pred.Mean[m]
		// Require real support behind the prediction and a gross (2.5x)
		// disagreement; reseeding on prediction noise would throw away
		// good memory in stationary regimes.
		if pm <= 0 || c.Pred.N < 3 {
			continue
		}
		emp := a.sum / a.count
		if emp > 2.5*pm || emp < pm/2.5 {
			s.t -= a.count - 1
			a.count = 1
			a.sum = pm
		}
	}
}

// decay ages the state when the candidate set is refreshed, so stale
// observations from previous prune epochs lose influence while still
// seeding the new epoch. factor 1 disables decay; 0 resets.
func (s *ucbState) decay(factor float64) {
	if factor >= 1 {
		return
	}
	if factor < 0 {
		factor = 0
	}
	s.t *= factor
	for _, a := range s.arms {
		a.count *= factor
		a.sum *= factor
	}
}

// explore implements Algorithm 3: the modified UCB1 over the top-k
// candidates. Rewards (metric values; lower is better) are normalized by w,
// the mean of the top-k options' 95% upper confidence bounds — not by the
// observed range, which outliers would stretch until common-case differences
// become indistinguishable (§4.5 modification 1). An option never tried in
// this epoch is chosen immediately (its confidence bound is unbounded).
// coef is the exploration coefficient (0.1 in the paper's pseudocode).
func (s *ucbState) explore(topk []Candidate, m quality.Metric, coef float64, naiveNorm bool) netsim.Option {
	if len(topk) == 0 {
		return netsim.DirectOption()
	}
	// Normalizer: mean of upper confidence bounds of the top-k candidates.
	var w float64
	if naiveNorm {
		// Ablation (Fig. 15): normalize by the full observed value range,
		// the standard rescaling UCB1 would use to map rewards into [0,1].
		// Heavy-tailed outliers stretch it, so common-case differences
		// between options become indistinguishable next to the exploration
		// term (§4.5).
		w = s.maxQ
		for _, c := range topk {
			if u := c.Pred.Upper(m); u > w {
				w = u
			}
		}
	} else {
		for _, c := range topk {
			w += c.Pred.Upper(m)
		}
		w /= float64(len(topk))
	}
	if w <= 0 {
		w = 1
	}

	t := s.t + 1
	best := topk[0].Option
	bestUCB := math.Inf(1)
	for _, c := range topk {
		// Prediction-guided prior: an arm with no observations this epoch
		// is scored as if the prediction were a single sample. This keeps
		// the survey cost of classic UCB1's mandatory init round from being
		// paid per pair per epoch — the prediction already is a measurement
		// of the arm (from other calls, pooled by tomography) — while the
		// √(ln t / n) term still drives the arm to be tried early.
		n, sum := 1.0, c.Pred.Mean[m]
		if a := s.arms[c.Option]; a != nil && a.count >= 1 {
			n, sum = a.count, a.sum
		}
		ucb := sum/(w*n) - math.Sqrt(coef*math.Log(t)/n)
		if ucb < bestUCB {
			bestUCB = ucb
			best = c.Option
		}
	}
	return best
}

// empiricalMean returns the option's observed mean, if it has any samples.
// Used by the pure exploration baseline and by budget benefit estimation.
func (s *ucbState) empiricalMean(opt netsim.Option) (float64, bool) {
	a := s.arms[opt]
	if a == nil || a.count < 1 {
		return 0, false
	}
	return a.sum / a.count, true
}

// incumbent returns the arm with the best (lowest) empirical mean among
// arms with at least minCount effective samples. The pruning step consults
// it so a proven arm is never evicted from the candidate set by one noisy
// prediction refresh.
func (s *ucbState) incumbent(minCount float64) (netsim.Option, float64, bool) {
	var best netsim.Option
	bestV := 0.0
	found := false
	for opt, a := range s.arms {
		if a.count < minCount {
			continue
		}
		v := a.sum / a.count
		// Deterministic tie-break: map iteration order must not leak into
		// decisions.
		if !found || v < bestV || (v == bestV && optionLess(opt, best)) {
			best, bestV, found = opt, v, true
		}
	}
	return best, bestV, found
}
