package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
)

// totalReports counts every applied report across history windows.
func totalReports(v *Via) int64 {
	var n int64
	for _, w := range v.History().Windows() {
		v.History().EachOpt(w, func(_ history.PairKey, _ netsim.Option, a *history.Agg) {
			n += a.N()
		})
	}
	return n
}

// ingestCalls builds a deterministic interleaved Choose/Observe sequence.
func ingestCalls(n int) []Call {
	calls := make([]Call, n)
	for i := range calls {
		p := i % 37
		calls[i] = Call{
			Src: netsim.ASID(2*p + 1), Dst: netsim.ASID(2*p + 2),
			THours: float64(i) * 0.01, DurationSec: 120,
		}
	}
	return calls
}

func TestAsyncIngestMatchesSyncState(t *testing.T) {
	// Reports enqueued by one producer drain in arrival order, so after a
	// Flush the async strategy's full serialized state must be
	// bit-identical to a synchronous twin fed the same sequence.
	mk := func(async bool) *Via {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.AsyncIngest = async
		return NewVia(cfg, nil)
	}
	sync, async := mk(false), mk(true)
	defer async.Close()
	cands := []netsim.Option{
		netsim.DirectOption(), netsim.BounceOption(1), netsim.BounceOption(2),
	}
	for _, c := range ingestCalls(3000) {
		o1 := sync.Choose(c, cands)
		// Choose must see identical state at every step: drain fully
		// before each decision so the async path is merely deferred, not
		// reordered relative to decisions.
		async.Flush()
		o2 := async.Choose(c, cands)
		if o1 != o2 {
			t.Fatalf("decision diverged at t=%v: %v vs %v", c.THours, o1, o2)
		}
		m := quality.Metrics{RTTMs: 100 + float64(int(c.Src)%17)}
		sync.Observe(c, o1, m)
		async.Observe(c, o2, m)
	}
	async.Flush()

	var a, b bytes.Buffer
	if err := sync.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := async.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("async state diverged from sync state after flush")
	}
}

func TestAsyncIngestConcurrentProducers(t *testing.T) {
	// Many goroutines enqueue against the bounded ring; a small buffer
	// forces the backpressure path. Every report must be applied exactly
	// once — no drops, no duplicates.
	cfg := DefaultViaConfig(quality.RTT)
	cfg.AsyncIngest = true
	cfg.IngestBuffer = 8
	v := NewVia(cfg, nil)
	defer v.Close()

	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c := Call{Src: netsim.ASID(w + 1), Dst: netsim.ASID(100 + w), THours: float64(i) * 0.001}
				v.Observe(c, netsim.DirectOption(), quality.Metrics{RTTMs: 90})
			}
		}()
	}
	wg.Wait()
	v.Flush()
	if got := totalReports(v); got != int64(workers*per) {
		t.Errorf("applied %d reports, want %d", got, workers*per)
	}
}

func TestAsyncIngestCloseDrainsBacklog(t *testing.T) {
	cfg := DefaultViaConfig(quality.RTT)
	cfg.AsyncIngest = true
	v := NewVia(cfg, nil)
	for i := 0; i < 200; i++ {
		v.Observe(Call{Src: 1, Dst: 2, THours: float64(i)}, netsim.DirectOption(), quality.Metrics{RTTMs: 80})
	}
	v.Close() // must apply everything already enqueued before stopping
	if got := totalReports(v); got != 200 {
		t.Errorf("applied %d reports after close, want 200", got)
	}
	// Idempotent close; observes after close are dropped, not deadlocked.
	v.Close()
	v.Observe(Call{Src: 1, Dst: 2}, netsim.DirectOption(), quality.Metrics{})
}
