package core

import (
	"io"
	"sync"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
)

// ViaConfig parameterizes the full Via strategy.
type ViaConfig struct {
	// Metric is the network metric being optimized (the paper optimizes
	// each of RTT, loss and jitter individually).
	Metric quality.Metric
	// Epsilon is the fraction of calls sent to a uniformly random option
	// for general exploration outside the top-k (§4.5 modification 2).
	Epsilon float64
	// RefreshHours is T: the periodicity of stages 2-3 (tomography +
	// pruning). The paper's default is 24 hours.
	RefreshHours float64
	// UCBCoef is the exploration coefficient in Algorithm 3 (0.1).
	UCBCoef float64
	// FixedK, when positive, replaces adaptive CI-based pruning with a
	// fixed top-k by predicted mean (Fig. 15 ablation).
	FixedK int
	// NaiveNorm switches UCB reward normalization to the max-based scheme
	// (Fig. 15 ablation).
	NaiveNorm bool
	// DecayOnRefresh ages UCB state at every refresh so drifting reward
	// distributions are re-explored; 1 disables decay.
	DecayOnRefresh float64
	// MinBenefit is the minimum predicted relative benefit (on the target
	// metric) required before a call leaves the default path. §4.6's
	// premise — "relay a call only if the benefit of relaying is
	// sufficiently high" — applied even without a budget: it suppresses
	// winner's-curse relaying, where the minimum over many noisy
	// predictions looks better than the (well-estimated) direct path.
	MinBenefit float64
	// Budget caps the fraction of calls that may be relayed; >= 1 means
	// unconstrained (§4.6).
	Budget float64
	// BudgetByDuration switches the budget's unit from calls to talk-time:
	// the cap applies to the fraction of call-seconds relayed (§4.6 names
	// "bandwidth cap on call-related traffic" as an alternative model;
	// VoIP bandwidth is proportional to talk-time). Calls with unknown
	// duration count as one average call.
	BudgetByDuration bool
	// PerRelayBudget, when in (0, 1), additionally caps each relay's load
	// as a fraction of all calls seen (§4.6's "per-relay limits"): a relay
	// at its cap is pruned from the candidate set until traffic growth
	// gives it headroom again.
	PerRelayBudget float64
	// BudgetAware enables the percentile benefit gate: a call is relayed
	// only when its predicted benefit is within the top Budget-percentile
	// of historical benefits. When false, relaying is first-come
	// first-served until the cap is hit ("budget-unaware" in Fig. 16).
	BudgetAware bool
	// RepairSchemes, when non-empty, extends the option space to
	// (path, repair) pairs: ChooseRepair offers these scheme names
	// ("none", "nack", "red", "fec-k") to a per-pair bandit. Empty
	// disables repair selection (ChooseRepair then echoes from the
	// caller's candidates only).
	RepairSchemes []string
	// RepairOverheadBudget caps the talk-time-weighted fraction of
	// redundant repair bandwidth per pair (§4.6 applied to redundancy);
	// 0 defaults to 0.25 when RepairSchemes is set, >= 1 disables.
	RepairOverheadBudget float64
	// AsyncIngest decouples measurement reports from decisions: Observe
	// enqueues into a bounded ring and returns, and a drainer goroutine
	// applies reports in arrival order (see ingest.go). Off by default —
	// synchronous application is what keeps simulation results a pure
	// function of the seed, and WAL-replay durability requires reports to
	// be applied before the next record. Turn it on only for live
	// serving; call Close on shutdown and Flush before snapshots.
	AsyncIngest bool
	// IngestBuffer bounds the async ring (reports pending application);
	// 0 means defaultIngestBuffer. Producers block when it is full.
	IngestBuffer int
	// Groups sets the decision granularity (default: AS pair).
	Groups GroupFunc
	// Predictor tunes stage 2-3.
	Predictor PredictorConfig
	// Seed drives the strategy's own randomness (ε draws).
	Seed uint64
	// Metrics, when set, receives the strategy's decision telemetry:
	// per-outcome counters (via_decision_total{outcome=...}), the top-k
	// size distribution, and observation counts. Nil (the default, and
	// what every simulation experiment uses) makes instrumentation
	// zero-cost. The strategy never reads a clock through this — all
	// values are counts, so determinism is preserved.
	Metrics *obs.Registry
	// Spans, when set, receives one structured decision trace per Choose
	// call (predict → prune → budget gate → ε-explore/UCB pick), stamped
	// with the call's virtual time. Nil disables.
	Spans *obs.SpanSink
}

// DefaultViaConfig returns the paper's operating point for a target metric.
func DefaultViaConfig(m quality.Metric) ViaConfig {
	return ViaConfig{
		Metric:         m,
		Epsilon:        0.05,
		RefreshHours:   24,
		UCBCoef:        0.02,
		DecayOnRefresh: 0.9,
		MinBenefit:     0.05,
		Budget:         1,
		BudgetAware:    true,
		Groups:         ASPairGroups,
		Predictor:      DefaultPredictorConfig(),
		Seed:           1,
	}
}

// Decision outcomes — the label values of via_decision_total and the
// terminal `outcome` field of a via.choose span. One per return path of
// Choose, so the counters partition every decision made.
const (
	// OutcomeNoCandidates: the caller offered nothing to choose between.
	OutcomeNoCandidates = "no-candidates"
	// OutcomeBootstrapExplore: no usable predictions yet; the ε slice (or
	// the absence of a direct path) sent the call to a random option to
	// seed coverage.
	OutcomeBootstrapExplore = "bootstrap-explore"
	// OutcomeNoPredictions: no usable predictions and the ε draw kept the
	// call on the default path.
	OutcomeNoPredictions = "no-predictions"
	// OutcomeBudgetExhausted: the hard relaying cap (§4.6) is spent.
	OutcomeBudgetExhausted = "budget-exhausted"
	// OutcomeEpsilonExplore: the ε general-exploration slice fired.
	OutcomeEpsilonExplore = "epsilon-explore"
	// OutcomeBenefitGated: predicted benefit below the gate (percentile
	// under a budget, MinBenefit without one).
	OutcomeBenefitGated = "benefit-gated"
	// OutcomeRelayCapped: every top-k relay is at its per-relay cap.
	OutcomeRelayCapped = "relay-capped"
	// OutcomeUCBPick: the modified UCB1 exploited the top-k.
	OutcomeUCBPick = "ucb-pick"
)

// viaObs caches the strategy's metric handles so the per-decision cost
// when telemetry is on is an atomic add, and exactly zero when off.
type viaObs struct {
	enabled      bool
	spans        *obs.SpanSink
	reg          *obs.Registry
	topkSize     *obs.Histogram
	observations *obs.Counter
}

// count increments the outcome's decision counter. Registry lookups are a
// sharded RLock + map hit — fine at control-plane rates (the simulator
// runs with telemetry off).
func (o *viaObs) count(outcome string) {
	if !o.enabled {
		return
	}
	o.reg.Counter(obs.L("via_decision_total", "outcome", outcome)).Inc()
}

// decide stamps the span's terminal state, emits it, counts the outcome,
// and passes the option through — the single exit point of Choose.
func (o *viaObs) decide(trace *obs.Span, outcome string, opt netsim.Option) netsim.Option {
	o.count(outcome)
	if trace != nil {
		trace.Outcome = outcome
		trace.Option = opt.String()
		o.spans.Emit(trace)
	}
	return opt
}

type groupPair struct{ a, b int32 }

type pairState struct {
	topkEpoch int // epoch the cached top-k was computed for (-1 = none)
	topk      []Candidate
	ucb       *ucbState
	// cands remembers the pair's candidate set (canonical orientation) so
	// active probing can enumerate coverage holes.
	cands []netsim.Option
}

// Via is the full prediction-guided exploration strategy (Algorithm 1).
type Via struct {
	cfg   ViaConfig
	bb    BackboneSource
	store *history.Store
	rng   *stats.RNG
	obs   viaObs

	mu       sync.Mutex
	curEpoch int
	pred     *Predictor
	pairs    map[groupPair]*pairState

	benefit *stats.P2 // distribution of predicted relative benefit (§4.6)
	// Fleet-shared §4.6 gate (guarded by mu): when the control plane is
	// sharded, no single strategy sees the whole benefit population, so the
	// router periodically merges every shard's digest and installs the
	// fleet-wide threshold here. While installed it replaces the local
	// estimator in the gate; the local P2 keeps accumulating so the next
	// digest reflects this shard's traffic.
	sharedBenefit   bool
	sharedBenefitN  int64
	sharedBenefitTh float64

	relayed int64
	total   int64
	// Duration-weighted counters (BudgetByDuration).
	relayedSec float64
	totalSec   float64
	// Per-relay usage counters (PerRelayBudget); transit counts both ends.
	relayUse   map[netsim.RelayID]int64
	relayCalls int64

	// Repair-scheme selection (RepairStrategy). The RNG is a dedicated
	// split so repair draws never perturb the path ε sequence.
	repairRNG   *stats.RNG
	repairPairs map[groupPair]*RepairBandit

	// Reusable scratch (guarded by mu) so the uncached Choose path does
	// no per-candidate heap allocation: predictions staging for the
	// prune, the top-k inclusion fixpoint's bitmap, and the per-call
	// candidate/top-k filters.
	predScratch []Candidate
	inclScratch []bool
	candScratch []netsim.Option
	topkScratch []Candidate

	// reportHook (guarded by mu) fires after each report is applied; the
	// decision cache registers its epoch bump here (see ingest.go).
	reportHook func(Call)
	// ring, when non-nil, carries Observe calls to the drainer goroutine
	// (AsyncIngest). Nil means synchronous application.
	ring    *reportRing
	drainWG sync.WaitGroup
}

// NewVia builds the strategy. bb may be nil (backbone links then become
// tomography unknowns).
func NewVia(cfg ViaConfig, bb BackboneSource) *Via {
	if cfg.Metric < 0 || cfg.Metric >= quality.NumMetrics {
		panic("core: invalid target metric")
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= 1 {
		panic("core: epsilon must be in [0,1)")
	}
	if cfg.RefreshHours <= 0 {
		cfg.RefreshHours = 24
	}
	if cfg.UCBCoef <= 0 {
		cfg.UCBCoef = 0.1
	}
	if cfg.DecayOnRefresh <= 0 || cfg.DecayOnRefresh > 1 {
		cfg.DecayOnRefresh = 0.3
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 1
	}
	if cfg.Groups == nil {
		cfg.Groups = ASPairGroups
	}
	validateRepairSchemes(cfg.RepairSchemes)
	if len(cfg.RepairSchemes) > 0 && cfg.RepairOverheadBudget == 0 {
		cfg.RepairOverheadBudget = 0.25
	}
	v := &Via{
		cfg:       cfg,
		bb:        bb,
		store:     history.NewStore(),
		rng:       stats.NewRNG(cfg.Seed).Split("via"),
		repairRNG: stats.NewRNG(cfg.Seed).Split("via-repair"),
		curEpoch:  -1,
		pairs:     make(map[groupPair]*pairState),
		relayUse:  make(map[netsim.RelayID]int64),
	}
	if cfg.Budget < 1 {
		v.benefit = stats.NewP2(clamp01(1-cfg.Budget, 0.001, 0.999))
	}
	if cfg.AsyncIngest {
		buf := cfg.IngestBuffer
		if buf <= 0 {
			buf = defaultIngestBuffer
		}
		v.ring = newReportRing(buf)
		v.drainWG.Add(1)
		go v.drainLoop()
	}
	v.obs = viaObs{enabled: cfg.Metrics != nil, spans: cfg.Spans, reg: cfg.Metrics}
	if v.obs.enabled {
		name := v.Name()
		v.obs.topkSize = cfg.Metrics.Histogram(
			obs.L("via_topk_size", "strategy", name), obs.CountBuckets())
		v.obs.observations = cfg.Metrics.Counter(
			obs.L("via_observations_total", "strategy", name))
		// GaugeFunc so the live relayed fraction shows up on /metrics
		// without the strategy pushing anything; replace semantics let a
		// restarted strategy under the same name rebind cleanly.
		cfg.Metrics.GaugeFunc(
			obs.L("via_strategy_relayed_fraction", "strategy", name), v.RelayedFraction)
	}
	return v
}

func clamp01(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name implements Strategy.
func (v *Via) Name() string {
	switch {
	case v.cfg.FixedK > 0 && v.cfg.NaiveNorm:
		return "via-fixedk-naivenorm"
	case v.cfg.FixedK > 0:
		return "via-fixedk"
	case v.cfg.NaiveNorm:
		return "via-naivenorm"
	case v.cfg.Budget < 1:
		if v.cfg.BudgetAware {
			return "via-budget-aware"
		}
		return "via-budget-unaware"
	default:
		return "via"
	}
}

// Metric returns the network metric this instance optimizes.
func (v *Via) Metric() quality.Metric { return v.cfg.Metric }

// History exposes the strategy's accumulated call history (read-only use).
func (v *Via) History() *history.Store { return v.store }

// SaveHistory snapshots the call history (controller persistence, §7).
func (v *Via) SaveHistory(w io.Writer) error {
	return v.store.Save(w)
}

// LoadHistory restores a snapshot into the call history and forces the
// predictor to retrain on next use.
func (v *Via) LoadHistory(r io.Reader) error {
	if err := v.store.Load(r); err != nil {
		return err
	}
	v.mu.Lock()
	v.curEpoch = -1
	v.pred = nil
	for _, ps := range v.pairs {
		ps.topkEpoch = -1
	}
	v.mu.Unlock()
	return nil
}

// epochOf buckets absolute time into refresh epochs.
func (v *Via) epochOf(tHours float64) int {
	return int(tHours / v.cfg.RefreshHours)
}

// canonOpt orients an option for the canonical (a<=b) group direction.
func canonOpt(g1, g2 int32, opt netsim.Option) netsim.Option {
	if g1 > g2 && opt.Kind == netsim.Transit {
		opt.R1, opt.R2 = opt.R2, opt.R1
	}
	return opt
}

// ensureEpoch rebuilds the predictor when the refresh period rolls over
// (stages 2-3 of Figure 10). Callers hold v.mu.
func (v *Via) ensureEpoch(epoch int) {
	if epoch == v.curEpoch {
		return
	}
	v.curEpoch = epoch
	v.pred = BuildPredictor(v.store, epoch-1, v.bb, v.cfg.Predictor)
	for _, ps := range v.pairs {
		ps.ucb.decay(v.cfg.DecayOnRefresh)
	}
	// Old buckets are no longer consulted; cap memory on long runs.
	keep := v.cfg.Predictor.TrainBuckets
	if keep < 1 {
		keep = 1
	}
	for _, w := range v.store.Windows() {
		if w < epoch-keep-1 {
			v.store.Drop(w)
		}
	}
}

// Choose implements Algorithm 1 for one call.
func (v *Via) Choose(c Call, cands []netsim.Option) netsim.Option {
	if len(cands) == 0 {
		return v.obs.decide(nil, OutcomeNoCandidates, netsim.DirectOption())
	}
	g1, g2 := v.cfg.Groups(c)
	epoch := v.epochOf(c.THours)

	// Span construction is gated on the sink, never on the decision path:
	// with tracing off this allocates nothing and draws no randomness.
	var trace *obs.Span
	if v.cfg.Spans.Enabled() {
		trace = &obs.Span{Name: "via.choose", THours: c.THours, Src: g1, Dst: g2}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	v.ensureEpoch(epoch)

	gp := groupPair{g1, g2}
	if g1 > g2 {
		gp = groupPair{g2, g1}
	}
	ps := v.pairs[gp]
	if ps == nil {
		ps = &pairState{topkEpoch: -1, ucb: newUCBState()}
		v.pairs[gp] = ps
	}

	// Stage 3: refresh the pruned candidate set for this epoch. A proven
	// incumbent (best long-run empirical arm) is kept in the set even when
	// one refresh's noisy predictions would prune it.
	if ps.topkEpoch != epoch {
		if len(ps.cands) != len(cands) {
			ps.cands = make([]netsim.Option, len(cands))
			for i, o := range cands {
				ps.cands[i] = canonOpt(g1, g2, o)
			}
		}
		// pruneLocked returns scratch-backed storage; copy into the pair's
		// own top-k slice (reusing its capacity) before the scratch is
		// recycled for another pair.
		ps.topk = append(ps.topk[:0], v.pruneLocked(g1, g2, cands)...)
		ps.ucb.reseedStale(ps.topk, v.cfg.Metric)
		if inc, mean, ok := ps.ucb.incumbent(5); ok {
			present := false
			for _, c := range ps.topk {
				if c.Option == inc {
					present = true
					break
				}
			}
			if !present {
				var pred Prediction
				for _, met := range quality.AllMetrics() {
					pred.Mean[met] = mean // only the target metric is consulted
				}
				ps.topk = append(ps.topk, Candidate{Option: inc, Pred: pred})
			}
		}
		ps.topkEpoch = epoch
		if v.obs.topkSize != nil {
			v.obs.topkSize.Observe(float64(len(ps.topk)))
		}
	}
	if trace != nil {
		trace.AddStage("predict", map[string]float64{"candidates": float64(len(cands))}).
			AddStage("prune", map[string]float64{"topk": float64(len(ps.topk))})
	}

	v.total++
	sec := c.DurationSec
	if sec <= 0 {
		sec = 180 // an average call
	}
	v.totalSec += sec
	flip := g1 > g2

	// The benefit/budget gates compare relaying against the default path;
	// when the environment offers no direct option (the §5.5 deployment
	// omits it), there is nothing to fall back to and the gates are moot.
	hasDirect := false
	for _, o := range cands {
		if !o.IsRelayed() {
			hasDirect = true
			break
		}
	}

	// No usable predictions yet: stay on the default path except for the
	// ε general-exploration slice, which is what bootstraps coverage.
	if len(ps.topk) == 0 {
		if !hasDirect || v.rng.Float64() < v.cfg.Epsilon {
			return v.obs.decide(trace, OutcomeBootstrapExplore,
				v.accountLocked(v.pickRandomLocked(v.relayAllowedLocked(cands)), sec))
		}
		return v.obs.decide(trace, OutcomeNoPredictions, netsim.DirectOption())
	}

	if hasDirect {
		// Hard budget cap: once the relayed fraction (of calls, or of
		// talk-time under BudgetByDuration) reaches the budget, everything
		// (including exploration) goes direct.
		if v.cfg.Budget < 1 && v.budgetSpentLocked() {
			return v.obs.decide(trace, OutcomeBudgetExhausted, netsim.DirectOption())
		}
	}

	// Stage 4b: ε general exploration over all options (outside top-k
	// too). It runs ahead of the benefit gate — under a budget, part of
	// the budget is spent keeping the history fresh, without which the
	// gate would starve its own predictor.
	if v.rng.Float64() < v.cfg.Epsilon {
		return v.obs.decide(trace.AddStage("epsilon", nil), OutcomeEpsilonExplore,
			v.accountLocked(v.pickRandomLocked(v.relayAllowedLocked(cands)), sec))
	}

	// §4.6 budget gate: relay only when the predicted benefit is in the
	// top Budget-percentile of historical benefits. The budget-aware gate
	// ranks pairs across the whole population, so it uses the
	// uncertainty-penalized benefit; the per-pair filters use the mean.
	budgeted := v.cfg.Budget < 1
	conservative := budgeted && v.cfg.BudgetAware
	benefit := v.predictedBenefitLocked(g1, g2, ps, conservative)
	if v.benefit != nil {
		v.benefit.Add(benefit)
	}
	if trace != nil {
		trace.AddStage("budget-gate", map[string]float64{"benefit": benefit})
	}
	switch {
	case !hasDirect:
		// No default path to prefer: proceed straight to exploitation.
	case budgeted && v.cfg.BudgetAware:
		if n, th := v.budgetGateLocked(); n >= 20 && benefit < th {
			return v.obs.decide(trace, OutcomeBenefitGated, netsim.DirectOption())
		}
	case budgeted && !v.cfg.BudgetAware:
		// The paper's budget-unaware baseline: relay whenever there is any
		// potential benefit, first-come first-served — so the budget gets
		// used up by calls with only small benefit (§5.4).
		if benefit <= 0 {
			return v.obs.decide(trace, OutcomeBenefitGated, netsim.DirectOption())
		}
	default:
		// Unbudgeted: selective relaying — without a clear predicted
		// benefit, stay on the default path (ε exploration above still
		// samples relays, so the history keeps refreshing).
		if v.cfg.MinBenefit > 0 && benefit < v.cfg.MinBenefit {
			return v.obs.decide(trace, OutcomeBenefitGated, netsim.DirectOption())
		}
	}

	// Stage 4a: modified UCB1 over the top-k (Algorithm 3), skipping any
	// relay that has exhausted its per-relay share.
	topk := ps.topk
	if v.cfg.PerRelayBudget > 0 && v.cfg.PerRelayBudget < 1 {
		topk = v.filterTopKLocked(topk)
		if len(topk) == 0 {
			return v.obs.decide(trace, OutcomeRelayCapped, netsim.DirectOption())
		}
	}
	opt := ps.ucb.explore(topk, v.cfg.Metric, v.cfg.UCBCoef, v.cfg.NaiveNorm)
	if flip && opt.Kind == netsim.Transit {
		opt.R1, opt.R2 = opt.R2, opt.R1
	}
	return v.obs.decide(trace.AddStage("ucb-pick", nil), OutcomeUCBPick,
		v.accountLocked(opt, sec))
}

// pruneLocked builds predictions for the candidates and applies Algorithm 2
// (or the fixed-k ablation). Candidates and the returned set are in
// canonical orientation. The result aliases the strategy's reusable
// prediction scratch — valid only until the next pruneLocked call, so
// callers that retain it must copy (Choose copies into the pair's own
// top-k storage).
func (v *Via) pruneLocked(g1, g2 int32, cands []netsim.Option) []Candidate {
	preds := v.predScratch[:0]
	for _, opt := range cands {
		copt := canonOpt(g1, g2, opt)
		if p, ok := v.pred.Predict(g1, g2, copt); ok {
			preds = append(preds, Candidate{Option: copt, Pred: p})
		}
	}
	v.predScratch = preds[:0]
	if len(preds) == 0 {
		return nil
	}
	if v.cfg.FixedK > 0 {
		return fixedTopKInPlace(preds, v.cfg.Metric, v.cfg.FixedK)
	}
	var sel []Candidate
	sel, v.inclScratch = topKInPlace(preds, v.cfg.Metric, v.inclScratch)
	return sel
}

// predictedBenefitLocked estimates the relative gain of the best predicted
// relaying option over the direct path on the target metric. With
// conservative set, the relay side is scored by its 95% upper confidence
// bound instead of its mean: the budget gate ranks pairs across the whole
// population, and the minimum over many noisy relay predictions is biased
// low (winner's curse) — an uncertainty-penalized benefit selects pairs
// whose gain is confidently real.
func (v *Via) predictedBenefitLocked(g1, g2 int32, ps *pairState, conservative bool) float64 {
	m := v.cfg.Metric
	direct, okD := v.pred.Predict(g1, g2, netsim.DirectOption())
	best := 0.0
	okB := false
	for _, c := range ps.topk {
		if !c.Option.IsRelayed() {
			continue
		}
		score := c.Pred.Mean[m]
		if conservative {
			score = c.Pred.Upper(m)
		}
		if !okB || score < best {
			best = score
			okB = true
		}
	}
	if !okB {
		return 0 // nothing to relay through
	}
	directV := direct.Mean[m]
	if !okD || directV <= 0 {
		// No direct prediction in the training window — common for pairs
		// Via has been relaying consistently (their recent history is all
		// relayed). Fall back to the long-memory empirical estimate; if
		// even that is missing, relaying has no demonstrated benefit and
		// must not crowd out pairs with a known gain.
		if v2, ok := ps.ucb.empiricalMean(netsim.DirectOption()); ok && v2 > 0 {
			directV = v2
		} else {
			return 0
		}
	}
	return (directV - best) / directV
}

func (v *Via) pickRandomLocked(cands []netsim.Option) netsim.Option {
	return cands[v.rng.IntN(len(cands))]
}

// accountLocked tracks the relayed-call counters for budget enforcement.
func (v *Via) accountLocked(opt netsim.Option, sec float64) netsim.Option {
	if opt.IsRelayed() {
		v.relayed++
		v.relayedSec += sec
		v.relayCalls++
		switch opt.Kind {
		case netsim.Bounce:
			v.relayUse[opt.R1]++
		case netsim.Transit:
			v.relayUse[opt.R1]++
			v.relayUse[opt.R2]++
		}
	}
	return opt
}

// budgetSpentLocked reports whether the hard cap is exhausted in the
// configured unit.
func (v *Via) budgetSpentLocked() bool {
	if v.cfg.BudgetByDuration {
		return v.relayedSec >= v.cfg.Budget*v.totalSec
	}
	return float64(v.relayed) >= v.cfg.Budget*float64(v.total)
}

// relayOverCapLocked reports whether a relay has exceeded its per-relay
// load cap. The denominator is all calls seen, not relayed calls: a
// relayed-call denominator can deadlock (every relay over cap stops all
// relaying, freezing the denominator forever).
func (v *Via) relayOverCapLocked(r netsim.RelayID) bool {
	if v.cfg.PerRelayBudget <= 0 || v.cfg.PerRelayBudget >= 1 || v.total < 50 {
		return false
	}
	return float64(v.relayUse[r]) >= v.cfg.PerRelayBudget*float64(v.total)
}

// relayAllowedLocked filters a candidate list down to options whose relays
// have per-relay headroom (direct always passes).
func (v *Via) relayAllowedLocked(cands []netsim.Option) []netsim.Option {
	if v.cfg.PerRelayBudget <= 0 || v.cfg.PerRelayBudget >= 1 {
		return cands
	}
	out := v.candScratch[:0]
	for _, o := range cands {
		switch o.Kind {
		case netsim.Bounce:
			if v.relayOverCapLocked(o.R1) {
				continue
			}
		case netsim.Transit:
			if v.relayOverCapLocked(o.R1) || v.relayOverCapLocked(o.R2) {
				continue
			}
		}
		out = append(out, o)
	}
	v.candScratch = out[:0] // keep grown capacity for the next call
	if len(out) == 0 {
		return cands[:1] // degenerate: keep something choosable
	}
	return out
}

// filterTopKLocked drops top-k candidates whose relays are over their cap.
// The result aliases reusable scratch: consume it before releasing v.mu.
func (v *Via) filterTopKLocked(topk []Candidate) []Candidate {
	out := v.topkScratch[:0]
	for _, c := range topk {
		switch c.Option.Kind {
		case netsim.Bounce:
			if v.relayOverCapLocked(c.Option.R1) {
				continue
			}
		case netsim.Transit:
			if v.relayOverCapLocked(c.Option.R1) || v.relayOverCapLocked(c.Option.R2) {
				continue
			}
		}
		out = append(out, c)
	}
	v.topkScratch = out[:0] // keep grown capacity for the next call
	return out
}

// Observe implements Strategy: fold the realized performance into the call
// history (stage 1) and the per-pair UCB state — inline, or via the async
// ingestion ring when AsyncIngest is on.
func (v *Via) Observe(c Call, opt netsim.Option, m quality.Metrics) {
	if v.ring != nil {
		v.ring.enqueue(pendingReport{call: c, opt: opt, m: m})
		return
	}
	v.applyReport(c, opt, m)
}

// applyReport folds one measurement report into strategy state and fires
// the report hook. Called from Observe (sync mode) or the drainer.
func (v *Via) applyReport(c Call, opt netsim.Option, m quality.Metrics) {
	g1, g2 := v.cfg.Groups(c)
	bucket := v.epochOf(c.THours)
	v.store.Add(netsim.ASID(g1), netsim.ASID(g2), opt, bucket, m)

	gp := groupPair{g1, g2}
	copt := canonOpt(g1, g2, opt)
	if g1 > g2 {
		gp = groupPair{g2, g1}
	}
	v.mu.Lock()
	ps := v.pairs[gp]
	if ps == nil {
		ps = &pairState{topkEpoch: -1, ucb: newUCBState()}
		v.pairs[gp] = ps
	}
	ps.ucb.observe(copt, m.Get(v.cfg.Metric))
	hook := v.reportHook
	v.mu.Unlock()
	if v.obs.observations != nil {
		v.obs.observations.Inc()
	}
	if hook != nil {
		hook(c)
	}
}

// budgetGateLocked returns the (sample count, threshold) pair the §4.6
// budget-aware gate compares against: the fleet-merged values when a shard
// router has installed them, the local percentile estimator otherwise.
// Callers hold v.mu.
func (v *Via) budgetGateLocked() (int64, float64) {
	if v.sharedBenefit {
		return v.sharedBenefitN, v.sharedBenefitTh
	}
	if v.benefit == nil || v.benefit.N() < 20 {
		return int64(0), 0
	}
	return int64(v.benefit.N()), v.benefit.Value()
}

// BudgetDigest reports the local §4.6 benefit-percentile state for
// cross-shard aggregation: the sample count and (once the estimator has
// enough samples to be meaningful) the current threshold. ok is false when
// no budget is configured — there is nothing to aggregate.
func (v *Via) BudgetDigest() (n int64, threshold float64, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.benefit == nil {
		return 0, 0, false
	}
	n = int64(v.benefit.N())
	if n >= 20 {
		threshold = v.benefit.Value()
	}
	return n, threshold, true
}

// BudgetSketch exposes the local benefit estimator's full P² marker state.
// The five (height, position) markers are a piecewise-linear CDF sketch of
// the local benefit population, which a shard router can merge across the
// fleet by inverting the sample-weighted mixture CDF — unlike averaging
// per-shard quantiles, that merge stays faithful when shards see skewed
// slices of the pair population. ok is false when no budget is configured.
func (v *Via) BudgetSketch() (stats.P2State, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.benefit == nil {
		return stats.P2State{}, false
	}
	return v.benefit.State(), true
}

// SetSharedBudgetThreshold installs the fleet-merged §4.6 gate: from now on
// the budget-aware gate compares predicted benefit against this threshold
// (with n standing in for the warm-up sample count) instead of the local
// estimator. The local estimator keeps accumulating so future digests stay
// current. A durable controller logs the install as a WAL record before
// calling this, so replay reproduces the same gate decisions.
func (v *Via) SetSharedBudgetThreshold(n int64, threshold float64) {
	v.mu.Lock()
	v.sharedBenefit = true
	v.sharedBenefitN = n
	v.sharedBenefitTh = threshold
	v.mu.Unlock()
}

// RelayedFraction reports the fraction of calls this strategy sent through
// the overlay — the budget consumption of Fig. 16.
func (v *Via) RelayedFraction() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.total == 0 {
		return 0
	}
	return float64(v.relayed) / float64(v.total)
}

// TopKFor exposes the current pruned candidate set for a pair (diagnostics
// and the §5.3 prediction-accuracy experiment).
func (v *Via) TopKFor(c Call, cands []netsim.Option) []Candidate {
	g1, g2 := v.cfg.Groups(c)
	v.mu.Lock()
	defer v.mu.Unlock()
	v.ensureEpoch(v.epochOf(c.THours))
	// pruneLocked hands back scratch; the caller gets an owned copy.
	return append([]Candidate(nil), v.pruneLocked(g1, g2, cands)...)
}

// Predictor exposes the current trained predictor (nil before any call).
func (v *Via) Predictor() *Predictor {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.pred
}
