package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// This file implements the §7 scalability mechanisms:
//
//   - Sharded: a C3-style split-control wrapper that partitions the pair
//     space across independent strategy instances, so a logical controller
//     can scale across cores or machines ("partitioning techniques provide
//     a good starting point").
//
//   - Cached: a client-side decision cache ("each client could cache the
//     relaying decisions and refresh periodically"), trading decision
//     staleness for controller load.

// Sharded partitions calls across shards by canonical pair hash. Each
// shard is an independent strategy instance, so there is no cross-shard
// locking — and no cross-shard learning, which is safe because all of
// Via's state is keyed by pair.
type Sharded struct {
	shards []Strategy
	name   string
}

// NewSharded builds n shards using the factory (called once per shard with
// the shard index; use it to vary seeds).
func NewSharded(n int, factory func(shard int) Strategy) *Sharded {
	if n <= 0 {
		n = 1
	}
	s := &Sharded{shards: make([]Strategy, n)}
	for i := range s.shards {
		s.shards[i] = factory(i)
	}
	s.name = "sharded-" + s.shards[0].Name()
	return s
}

// shardOf routes a pair to its shard. Both call directions must land on
// the same shard, so the hash uses the canonical pair.
func (s *Sharded) shardOf(a, b netsim.ASID) int {
	if a > b {
		a, b = b, a
	}
	h := uint64(uint32(a))*0x9e3779b97f4a7c15 ^ uint64(uint32(b))*0x2545f4914f6cdd1d
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// Name implements Strategy.
func (s *Sharded) Name() string { return s.name }

// Choose implements Strategy.
func (s *Sharded) Choose(c Call, cands []netsim.Option) netsim.Option {
	return s.shards[s.shardOf(c.Src, c.Dst)].Choose(c, cands)
}

// Observe implements Strategy.
func (s *Sharded) Observe(c Call, opt netsim.Option, m quality.Metrics) {
	s.shards[s.shardOf(c.Src, c.Dst)].Observe(c, opt, m)
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes one shard (diagnostics).
func (s *Sharded) Shard(i int) Strategy { return s.shards[i] }

// Cached wraps a strategy with a per-pair decision cache: a pair's choice
// is reused for TTLHours before the inner strategy is consulted again.
// Observations always pass through (measurement reports are cheap and keep
// the history fresh); only the decision round-trips are saved.
type Cached struct {
	inner    Strategy
	ttlHours float64

	mu    sync.Mutex
	cache map[groupPair]cachedDecision

	hits, misses atomic.Int64
}

type cachedDecision struct {
	opt     netsim.Option // canonical orientation
	expires float64       // tHours
}

// NewCached wraps inner with a decision cache of the given TTL (hours).
func NewCached(inner Strategy, ttlHours float64) *Cached {
	if ttlHours <= 0 {
		ttlHours = 1
	}
	return &Cached{
		inner:    inner,
		ttlHours: ttlHours,
		cache:    make(map[groupPair]cachedDecision),
	}
}

// Name implements Strategy.
func (c *Cached) Name() string { return c.inner.Name() + "+cache" }

// Choose implements Strategy.
func (c *Cached) Choose(call Call, cands []netsim.Option) netsim.Option {
	gp := groupPair{int32(call.Src), int32(call.Dst)}
	flip := gp.a > gp.b
	if flip {
		gp.a, gp.b = gp.b, gp.a
	}
	c.mu.Lock()
	if d, ok := c.cache[gp]; ok && call.THours < d.expires {
		c.mu.Unlock()
		c.hits.Add(1)
		opt := d.opt
		if flip && opt.Kind == netsim.Transit {
			opt.R1, opt.R2 = opt.R2, opt.R1
		}
		return opt
	}
	c.mu.Unlock()

	c.misses.Add(1)
	opt := c.inner.Choose(call, cands)
	canon := canonOpt(int32(call.Src), int32(call.Dst), opt)
	c.mu.Lock()
	c.cache[gp] = cachedDecision{opt: canon, expires: call.THours + c.ttlHours}
	c.mu.Unlock()
	return opt
}

// Observe implements Strategy.
func (c *Cached) Observe(call Call, opt netsim.Option, m quality.Metrics) {
	c.inner.Observe(call, opt, m)
}

// HitRate reports the fraction of decisions served from the cache — the
// controller-load reduction of §7.
func (c *Cached) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
