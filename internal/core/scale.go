package core

import (
	"repro/internal/netsim"
	"repro/internal/quality"
)

// This file implements the §7 scalability mechanisms:
//
//   - Sharded: a C3-style split-control wrapper that partitions the pair
//     space across independent strategy instances, so a logical controller
//     can scale across cores or machines ("partitioning techniques provide
//     a good starting point").
//
// The companion mechanism — Cached, the client-side decision cache
// ("each client could cache the relaying decisions and refresh
// periodically") — lives in cache.go.

// Sharded partitions calls across shards by canonical pair hash. Each
// shard is an independent strategy instance, so there is no cross-shard
// locking — and no cross-shard learning, which is safe because all of
// Via's state is keyed by pair.
type Sharded struct {
	shards []Strategy
	name   string
}

// NewSharded builds n shards using the factory (called once per shard with
// the shard index; use it to vary seeds).
func NewSharded(n int, factory func(shard int) Strategy) *Sharded {
	if n <= 0 {
		n = 1
	}
	s := &Sharded{shards: make([]Strategy, n)}
	for i := range s.shards {
		s.shards[i] = factory(i)
	}
	s.name = "sharded-" + s.shards[0].Name()
	return s
}

// shardOf routes a pair to its shard. Both call directions must land on
// the same shard, so the hash uses the canonical pair.
func (s *Sharded) shardOf(a, b netsim.ASID) int {
	if a > b {
		a, b = b, a
	}
	h := uint64(uint32(a))*0x9e3779b97f4a7c15 ^ uint64(uint32(b))*0x2545f4914f6cdd1d
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// Name implements Strategy.
func (s *Sharded) Name() string { return s.name }

// Choose implements Strategy.
func (s *Sharded) Choose(c Call, cands []netsim.Option) netsim.Option {
	return s.shards[s.shardOf(c.Src, c.Dst)].Choose(c, cands)
}

// Observe implements Strategy.
func (s *Sharded) Observe(c Call, opt netsim.Option, m quality.Metrics) {
	s.shards[s.shardOf(c.Src, c.Dst)].Observe(c, opt, m)
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes one shard (diagnostics).
func (s *Sharded) Shard(i int) Strategy { return s.shards[i] }

// SetReportHook implements ReportHooked by forwarding the hook to every
// shard that supports it, so a decision cache wrapped around the sharded
// strategy still sees report-application events. It reports true only if
// every shard attached the hook; otherwise the caller must keep its
// fallback path, because some pairs' reports would never fire the hook.
func (s *Sharded) SetReportHook(hook func(Call)) bool {
	all := len(s.shards) > 0
	for _, sh := range s.shards {
		h, ok := sh.(ReportHooked)
		if !ok || !h.SetReportHook(hook) {
			all = false
		}
	}
	return all
}
