package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
)

// fakeEnv drives a strategy against a stationary two-option environment:
// direct is mediocre, bounce(1) is good, bounce(2) is bad.
type fakeEnv struct {
	rng   *stats.RNG
	truth map[netsim.Option]quality.Metrics
}

func newFakeEnv(seed uint64) *fakeEnv {
	return &fakeEnv{
		rng: stats.NewRNG(seed),
		truth: map[netsim.Option]quality.Metrics{
			netsim.DirectOption():      {RTTMs: 300, LossRate: 0.010, JitterMs: 10},
			netsim.BounceOption(1):     {RTTMs: 120, LossRate: 0.002, JitterMs: 3},
			netsim.BounceOption(2):     {RTTMs: 500, LossRate: 0.060, JitterMs: 40},
			netsim.TransitOption(1, 2): {RTTMs: 260, LossRate: 0.004, JitterMs: 5},
		},
	}
}

func (e *fakeEnv) options() []netsim.Option {
	return []netsim.Option{
		netsim.DirectOption(), netsim.BounceOption(1),
		netsim.BounceOption(2), netsim.TransitOption(1, 2),
	}
}

func (e *fakeEnv) sample(opt netsim.Option) quality.Metrics {
	m := e.truth[opt]
	f := e.rng.LogNormal(0, 0.15)
	return quality.Metrics{
		RTTMs:    m.RTTMs * f,
		LossRate: m.LossRate * e.rng.LogNormal(0, 0.3),
		JitterMs: m.JitterMs * e.rng.LogNormal(0, 0.3),
	}
}

// drive runs n calls of strategy s against the environment, returning how
// often each option was chosen in the final quarter (post-convergence).
func drive(s Strategy, e *fakeEnv, n int, hoursSpan float64) map[netsim.Option]int {
	late := map[netsim.Option]int{}
	for i := 0; i < n; i++ {
		c := Call{Src: 3, Dst: 9, UserSrc: int64(i), UserDst: int64(i + 1),
			THours: hoursSpan * float64(i) / float64(n)}
		opt := s.Choose(c, e.options())
		s.Observe(c, opt, e.sample(opt))
		if i >= 3*n/4 {
			late[opt]++
		}
	}
	return late
}

func TestViaConvergesToBestOption(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	e := newFakeEnv(1)
	late := drive(v, e, 4000, 96) // 4 refresh epochs
	best := late[netsim.BounceOption(1)]
	total := 0
	for _, n := range late {
		total += n
	}
	if best*10 < total*7 {
		t.Errorf("best option picked %d/%d of late calls; want >70%%", best, total)
	}
}

func TestViaName(t *testing.T) {
	mk := func(mod func(*ViaConfig)) string {
		cfg := DefaultViaConfig(quality.RTT)
		mod(&cfg)
		return NewVia(cfg, nil).Name()
	}
	if got := mk(func(*ViaConfig) {}); got != "via" {
		t.Errorf("name = %q", got)
	}
	if got := mk(func(c *ViaConfig) { c.FixedK = 2 }); got != "via-fixedk" {
		t.Errorf("name = %q", got)
	}
	if got := mk(func(c *ViaConfig) { c.NaiveNorm = true }); got != "via-naivenorm" {
		t.Errorf("name = %q", got)
	}
	if got := mk(func(c *ViaConfig) { c.Budget = 0.3 }); got != "via-budget-aware" {
		t.Errorf("name = %q", got)
	}
	if got := mk(func(c *ViaConfig) { c.Budget = 0.3; c.BudgetAware = false }); got != "via-budget-unaware" {
		t.Errorf("name = %q", got)
	}
}

func TestViaBudgetCapHonored(t *testing.T) {
	for _, aware := range []bool{true, false} {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.Budget = 0.25
		cfg.BudgetAware = aware
		v := NewVia(cfg, nil)
		e := newFakeEnv(2)
		drive(v, e, 3000, 96)
		if frac := v.RelayedFraction(); frac > 0.26 {
			t.Errorf("aware=%v: relayed fraction %v exceeds budget 0.25", aware, frac)
		}
	}
}

func TestViaUnbudgetedRelaysFreely(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	e := newFakeEnv(3)
	drive(v, e, 3000, 96)
	if frac := v.RelayedFraction(); frac < 0.5 {
		t.Errorf("relayed fraction %v; with a clearly better relay it should dominate", frac)
	}
}

func TestViaEmptyCandidates(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	if got := v.Choose(Call{THours: 1}, nil); got != netsim.DirectOption() {
		t.Errorf("empty candidates should yield direct, got %v", got)
	}
}

func TestViaColdStartIsDirectMostly(t *testing.T) {
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Epsilon = 0 // no exploration at all
	v := NewVia(cfg, nil)
	e := newFakeEnv(4)
	// With no history and no ε, every call must take the default path.
	for i := 0; i < 50; i++ {
		c := Call{Src: 1, Dst: 2, THours: float64(i) * 0.01}
		if got := v.Choose(c, e.options()); got != netsim.DirectOption() {
			t.Fatalf("cold start chose %v", got)
		}
	}
}

func TestViaEpsilonExplores(t *testing.T) {
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Epsilon = 0.5
	v := NewVia(cfg, nil)
	e := newFakeEnv(5)
	relayed := 0
	for i := 0; i < 400; i++ {
		c := Call{Src: 1, Dst: 2, THours: float64(i) * 0.01}
		opt := v.Choose(c, e.options())
		if opt.IsRelayed() {
			relayed++
		}
		v.Observe(c, opt, e.sample(opt))
	}
	// ~50% ε over 4 options → ~37% relayed draws even with no predictions.
	if relayed < 50 {
		t.Errorf("ε exploration produced only %d relayed calls", relayed)
	}
}

func TestViaDeterministicGivenSeed(t *testing.T) {
	run := func() []netsim.Option {
		v := NewVia(DefaultViaConfig(quality.RTT), nil)
		e := newFakeEnv(6)
		var picks []netsim.Option
		for i := 0; i < 500; i++ {
			c := Call{Src: 1, Dst: 2, THours: 96 * float64(i) / 500}
			opt := v.Choose(c, e.options())
			picks = append(picks, opt)
			v.Observe(c, opt, e.sample(opt))
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
	}
}

func TestViaDirectionSymmetry(t *testing.T) {
	// Observations from both call directions should pool: feed only d→s
	// samples, then ask for s→d and expect the learned option.
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Epsilon = 0
	v := NewVia(cfg, nil)
	e := newFakeEnv(7)
	for i := 0; i < 800; i++ {
		c := Call{Src: 9, Dst: 3, THours: 48 * float64(i) / 800}
		opt := v.Choose(c, e.options())
		v.Observe(c, opt, e.sample(opt))
	}
	// Seed explicit relay samples so the predictor knows bounce(1).
	for i := 0; i < 50; i++ {
		c := Call{Src: 9, Dst: 3, THours: 47.9}
		v.Observe(c, netsim.BounceOption(1), e.sample(netsim.BounceOption(1)))
	}
	c := Call{Src: 3, Dst: 9, THours: 49} // reverse direction, next epoch
	opt := v.Choose(c, e.options())
	if !opt.IsRelayed() {
		t.Errorf("reverse direction did not benefit from pooled history: %v", opt)
	}
}

func TestDefaultStrategy(t *testing.T) {
	var d DefaultStrategy
	if d.Name() != "default" {
		t.Error("name")
	}
	if d.Choose(Call{}, []netsim.Option{netsim.BounceOption(1)}) != netsim.DirectOption() {
		t.Error("default must always choose direct")
	}
	d.Observe(Call{}, netsim.DirectOption(), quality.Metrics{}) // must not panic
}

func TestOracleChoosesGroundTruthBest(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	o := NewOracle(w, quality.RTT)
	if o.Name() != "oracle" {
		t.Error("name")
	}
	src, dst := netsim.ASID(0), netsim.ASID(149)
	cands := w.Options(src, dst)
	got := o.Choose(Call{Src: src, Dst: dst, THours: 30}, cands)
	want, _ := w.BestOption(src, dst, cands, 1, quality.RTT)
	if got != want {
		t.Errorf("oracle chose %v, ground-truth best is %v", got, want)
	}
	if o.Choose(Call{Src: src, Dst: dst}, nil) != netsim.DirectOption() {
		t.Error("empty candidates should yield direct")
	}
}

func TestBudgetedOracleRespectsBudget(t *testing.T) {
	w := netsim.New(netsim.DefaultConfig(1))
	o := NewBudgetedOracle(w, quality.RTT, 0.2)
	if o.Name() != "oracle-budget" {
		t.Error("name")
	}
	relayed, total := 0, 0
	for i := 0; i < 2000; i++ {
		src := netsim.ASID(i % 50)
		dst := netsim.ASID(149 - i%50)
		cands := w.Options(src, dst)
		opt := o.Choose(Call{Src: src, Dst: dst, THours: float64(i) * 0.01}, cands)
		total++
		if opt.IsRelayed() {
			relayed++
		}
	}
	if frac := float64(relayed) / float64(total); frac > 0.22 {
		t.Errorf("budgeted oracle relayed %v of calls", frac)
	}
}

func TestPredictOnlyLearnsFromSeededHistory(t *testing.T) {
	p := NewPredictOnly(quality.RTT, nil)
	if p.Name() != "predict-only" {
		t.Error("name")
	}
	e := newFakeEnv(8)
	// Seed epoch 0 with samples of every option (the connectivity-relayed
	// calls of the real dataset).
	for i := 0; i < 20; i++ {
		for _, opt := range e.options() {
			p.Observe(Call{Src: 1, Dst: 2, THours: 0.5}, opt, e.sample(opt))
		}
	}
	// In epoch 1, it should pick the best predicted option.
	got := p.Choose(Call{Src: 1, Dst: 2, THours: 25}, e.options())
	if got != netsim.BounceOption(1) {
		t.Errorf("predict-only chose %v, want bounce(1)", got)
	}
}

func TestPredictOnlyColdStartDirect(t *testing.T) {
	p := NewPredictOnly(quality.RTT, nil)
	e := newFakeEnv(9)
	if got := p.Choose(Call{Src: 1, Dst: 2, THours: 1}, e.options()); got != netsim.DirectOption() {
		t.Errorf("cold start chose %v", got)
	}
}

func TestExploreOnlyEventuallyFindsGood(t *testing.T) {
	x := NewExploreOnly(quality.RTT, 0.2, 1)
	if x.Name() != "explore-only" {
		t.Error("name")
	}
	e := newFakeEnv(10)
	late := drive(x, e, 4000, 96)
	best := late[netsim.BounceOption(1)]
	total := 0
	for _, n := range late {
		total += n
	}
	// ε-greedy does find the good arm on a single stationary pair; its
	// weakness (exercised in the sim tests) is scale, not this toy case.
	if best*2 < total {
		t.Errorf("explore-only late best-arm share %d/%d", best, total)
	}
}

func TestExploreOnlyEmptyCandidates(t *testing.T) {
	x := NewExploreOnly(quality.RTT, 0.2, 1)
	if got := x.Choose(Call{}, nil); got != netsim.DirectOption() {
		t.Errorf("empty candidates gave %v", got)
	}
}

func TestGroupFuncs(t *testing.T) {
	c := Call{Src: 3, Dst: 9, UserSrc: 17, UserDst: -5}
	a, b := ASPairGroups(c)
	if a != 3 || b != 9 {
		t.Error("ASPairGroups")
	}
	sub := SubASGroups(4)
	a, b = sub(c)
	if a != 3*4+17%4 {
		t.Errorf("SubASGroups src = %d", a)
	}
	if b < 9*4 || b >= 10*4 {
		t.Errorf("SubASGroups negative user id mapped out of range: %d", b)
	}
	w := netsim.New(netsim.DefaultConfig(1))
	cg := CountryGroups(w)
	c1 := Call{Src: w.ASesInCountry("US")[0], Dst: w.ASesInCountry("US")[1]}
	g1, g2 := cg(c1)
	if g1 != g2 {
		t.Error("two US ASes should share a country group")
	}
	c2 := Call{Src: w.ASesInCountry("US")[0], Dst: w.ASesInCountry("IN")[0]}
	g1, g2 = cg(c2)
	if g1 == g2 {
		t.Error("US and IN should differ")
	}
}

func TestViaPanicsOnBadConfig(t *testing.T) {
	bad := []ViaConfig{
		func() ViaConfig { c := DefaultViaConfig(quality.RTT); c.Metric = quality.NumMetrics; return c }(),
		func() ViaConfig { c := DefaultViaConfig(quality.RTT); c.Epsilon = 1.5; return c }(),
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewVia(cfg, nil)
		}()
	}
}

func TestViaSaveLoadHistory(t *testing.T) {
	v := NewVia(DefaultViaConfig(quality.RTT), nil)
	e := newFakeEnv(30)
	for i := 0; i < 300; i++ {
		c := Call{Src: 1, Dst: 2, THours: 20 * float64(i) / 300}
		opt := v.Choose(c, e.options())
		v.Observe(c, opt, e.sample(opt))
	}
	var buf bytes.Buffer
	if err := v.SaveHistory(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh instance restored from the snapshot must have the same
	// aggregates and be able to predict immediately.
	v2 := NewVia(DefaultViaConfig(quality.RTT), nil)
	if err := v2.LoadHistory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	w1 := v.History().Windows()
	w2 := v2.History().Windows()
	if len(w1) != len(w2) {
		t.Fatalf("windows differ: %v vs %v", w1, w2)
	}
	a1, ok1 := v.History().Get(1, 2, netsim.DirectOption(), w1[0])
	a2, ok2 := v2.History().Get(1, 2, netsim.DirectOption(), w1[0])
	if ok1 != ok2 || a1.N() != a2.N() {
		t.Errorf("restored aggregate differs: %v/%v %d/%d", ok1, ok2, a1.N(), a2.N())
	}
	// Restored strategy must decide without panicking.
	_ = v2.Choose(Call{Src: 1, Dst: 2, THours: 21}, e.options())
}

func TestViaPerRelayBudget(t *testing.T) {
	// With a per-relay cap, no single relay may dominate the relayed mix.
	cfg := DefaultViaConfig(quality.RTT)
	cfg.PerRelayBudget = 0.4
	cfg.MinBenefit = 0
	v := NewVia(cfg, nil)
	e := newFakeEnv(31) // bounce(1) is by far the best option
	drive(v, e, 3000, 96)
	v.mu.Lock()
	use := make(map[netsim.RelayID]int64, len(v.relayUse))
	for r, n := range v.relayUse {
		use[r] = n
	}
	relayCalls := v.relayCalls
	total := v.total
	v.mu.Unlock()
	if relayCalls < 100 {
		t.Fatalf("only %d relayed calls", relayCalls)
	}
	for r, n := range use {
		share := float64(n) / float64(total)
		// The warmup window allows mild overshoot past the 40% cap.
		if share > 0.45 {
			t.Errorf("relay %d holds %.0f%% of all calls despite 40%% cap", r, share*100)
		}
	}
	// Without the cap, the dominant relay takes far more.
	cfgFree := DefaultViaConfig(quality.RTT)
	cfgFree.MinBenefit = 0
	vFree := NewVia(cfgFree, nil)
	drive(vFree, newFakeEnv(31), 3000, 96)
	vFree.mu.Lock()
	freeShare := float64(vFree.relayUse[1]) / float64(vFree.total)
	vFree.mu.Unlock()
	if freeShare < 0.5 {
		t.Errorf("uncapped dominant-relay share only %.2f; cap test not meaningful", freeShare)
	}
}

func TestViaDurationBudget(t *testing.T) {
	// Budget on talk-time: long calls consume more budget than short ones.
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Budget = 0.25
	cfg.BudgetByDuration = true
	v := NewVia(cfg, nil)
	e := newFakeEnv(32)
	for i := 0; i < 3000; i++ {
		dur := 60.0
		if i%2 == 0 {
			dur = 600 // alternating long calls
		}
		c := Call{Src: 3, Dst: 9, THours: 96 * float64(i) / 3000, DurationSec: dur}
		opt := v.Choose(c, e.options())
		v.Observe(c, opt, e.sample(opt))
	}
	v.mu.Lock()
	frac := v.relayedSec / v.totalSec
	v.mu.Unlock()
	if frac > 0.27 {
		t.Errorf("relayed talk-time fraction %.3f exceeds 0.25 budget", frac)
	}
}

func TestViaEpsilonTracksDrift(t *testing.T) {
	// §4.5 modification 2: without general exploration outside the top-k,
	// Via is blindsided when an option that looked bad becomes the best.
	// Build an environment where bounce(2) is terrible for the first half
	// of the run, then becomes clearly the best.
	run := func(eps float64) float64 {
		cfg := DefaultViaConfig(quality.RTT)
		cfg.Epsilon = eps
		cfg.MinBenefit = 0
		v := NewVia(cfg, nil)
		rng := stats.NewRNG(50)
		opts := []netsim.Option{
			netsim.DirectOption(), netsim.BounceOption(1), netsim.BounceOption(2),
		}
		truth := func(opt netsim.Option, i, n int) float64 {
			switch opt {
			case netsim.BounceOption(1):
				return 200
			case netsim.BounceOption(2):
				if i < n/2 {
					return 700
				}
				return 60 // the drifted-in winner
			default:
				return 300
			}
		}
		const n = 6000
		var lateSum float64
		var lateN int
		for i := 0; i < n; i++ {
			c := Call{Src: 1, Dst: 2, THours: 240 * float64(i) / n}
			opt := v.Choose(c, opts)
			val := truth(opt, i, n) * rng.LogNormal(0, 0.1)
			v.Observe(c, opt, quality.Metrics{RTTMs: val, LossRate: 0.001, JitterMs: 1})
			if i >= 9*n/10 {
				lateSum += val
				lateN++
			}
		}
		return lateSum / float64(lateN)
	}
	withEps := run(0.05)
	withoutEps := run(0)
	// With ε, the final-decile RTT should reflect discovery of the new
	// best option; without it, Via can stay stuck on the old one.
	if withEps >= withoutEps {
		t.Errorf("ε exploration did not help under drift: with=%.0f without=%.0f", withEps, withoutEps)
	}
	if withEps > 150 {
		t.Errorf("with ε, final-decile RTT %.0f; never found the drifted-in best", withEps)
	}
}

// TestViaMetricsAndSpans drives an instrumented Via and checks the
// telemetry contract: one via_decision_total increment and one JSONL span
// per Choose, outcome strings agreeing between the two, observations
// counted, and the gauge surfaced through the registry.
func TestViaMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	var spanBuf bytes.Buffer
	cfg := DefaultViaConfig(quality.RTT)
	cfg.Metrics = reg
	cfg.Spans = obs.NewSpanSink(&spanBuf)
	v := NewVia(cfg, nil)
	e := newFakeEnv(40)

	const n = 600
	for i := 0; i < n; i++ {
		c := Call{Src: 3, Dst: 9, THours: 48 * float64(i) / n}
		opt := v.Choose(c, e.options())
		v.Observe(c, opt, e.sample(opt))
	}

	snap := reg.Snapshot()
	var decisions float64
	for name, val := range snap {
		if strings.HasPrefix(name, "via_decision_total{") {
			decisions += val
		}
	}
	if decisions != n {
		t.Errorf("via_decision_total sums to %v, want %d", decisions, n)
	}
	if got := snap[obs.L("via_observations_total", "strategy", "via")]; got != n {
		t.Errorf("via_observations_total = %v, want %d", got, n)
	}
	if _, ok := snap[obs.L("via_strategy_relayed_fraction", "strategy", "via")]; !ok {
		t.Error("via_strategy_relayed_fraction gauge missing from snapshot")
	}
	if got := snap[obs.L("via_topk_size_count", "strategy", "via")]; got < 1 {
		t.Errorf("via_topk_size_count = %v, want >= 1 epoch refresh", got)
	}

	// Every span line decodes, names the decision, and its outcome matches
	// a counted outcome; spans and decisions tally 1:1.
	lines := strings.Split(strings.TrimSpace(spanBuf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("emitted %d spans, want %d", len(lines), n)
	}
	outcomes := map[string]int{}
	for i, line := range lines {
		var sp obs.Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("span line %d: %v", i, err)
		}
		if sp.Name != "via.choose" || sp.Outcome == "" || sp.Option == "" {
			t.Fatalf("span line %d malformed: %+v", i, sp)
		}
		outcomes[sp.Outcome]++
	}
	for outcome, count := range outcomes {
		if got := snap[obs.L("via_decision_total", "outcome", outcome)]; got != float64(count) {
			t.Errorf("outcome %q: %d spans vs counter %v", outcome, count, got)
		}
	}
	if got := cfg.Spans.Emitted(); got != n {
		t.Errorf("sink emitted %d, want %d", got, n)
	}
}

// TestViaInstrumentationIsInert asserts the zero-cost invariant behind the
// parallel runner's bit-identity: attaching metrics and spans must not
// change a single decision, because instrumentation draws no randomness
// and never feeds back into the algorithm.
func TestViaInstrumentationIsInert(t *testing.T) {
	run := func(instrument bool) []netsim.Option {
		cfg := DefaultViaConfig(quality.RTT)
		if instrument {
			cfg.Metrics = obs.NewRegistry()
			cfg.Spans = obs.NewSpanSink(&bytes.Buffer{})
		}
		v := NewVia(cfg, nil)
		e := newFakeEnv(41)
		picks := make([]netsim.Option, 0, 800)
		for i := 0; i < 800; i++ {
			c := Call{Src: 1, Dst: 2, THours: 96 * float64(i) / 800}
			opt := v.Choose(c, e.options())
			picks = append(picks, opt)
			v.Observe(c, opt, e.sample(opt))
		}
		return picks
	}
	plain, instrumented := run(false), run(true)
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("decision %d differs with instrumentation attached", i)
		}
	}
}
