package coords

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// syntheticMetric places n nodes on a plane with per-node access heights
// and returns the ground-truth RTT function.
func syntheticMetric(n int, seed uint64) ([][2]float64, []float64, func(i, j int) float64) {
	r := stats.NewRNG(seed)
	pos := make([][2]float64, n)
	height := make([]float64, n)
	for i := range pos {
		pos[i] = [2]float64{200 * r.Float64(), 200 * r.Float64()}
		height[i] = 2 + 10*r.Float64()
	}
	rtt := func(i, j int) float64 {
		dx := pos[i][0] - pos[j][0]
		dy := pos[i][1] - pos[j][1]
		return math.Hypot(dx, dy) + height[i] + height[j]
	}
	return pos, height, rtt
}

func trainSystem(t testing.TB, n, rounds int, noise float64, seed uint64) (*System, func(i, j int) float64) {
	t.Helper()
	_, _, rtt := syntheticMetric(n, seed)
	s := New(DefaultConfig(), seed)
	r := stats.NewRNG(seed + 1)
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			j := r.IntN(n)
			if i == j {
				continue
			}
			obs := rtt(i, j)
			if noise > 0 {
				obs *= r.LogNormal(0, noise)
			}
			s.Observe(int32(i), int32(j), obs)
		}
	}
	return s, rtt
}

func TestVivaldiConvergesOnEmbeddableMetric(t *testing.T) {
	const n = 30
	s, rtt := trainSystem(t, n, 400, 0, 1)
	var rel []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pred, ok := s.PredictRTT(int32(i), int32(j))
			if !ok {
				t.Fatalf("pair %d-%d not predictable", i, j)
			}
			truth := rtt(i, j)
			rel = append(rel, math.Abs(pred-truth)/truth)
		}
	}
	med := stats.Quantile(rel, 0.5)
	if med > 0.15 {
		t.Errorf("median relative error %v after convergence; want < 0.15", med)
	}
}

func TestVivaldiToleratesNoise(t *testing.T) {
	const n = 30
	s, rtt := trainSystem(t, n, 600, 0.15, 2)
	var rel []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pred, _ := s.PredictRTT(int32(i), int32(j))
			truth := rtt(i, j)
			rel = append(rel, math.Abs(pred-truth)/truth)
		}
	}
	if med := stats.Quantile(rel, 0.5); med > 0.30 {
		t.Errorf("median relative error %v with 15%% noise", med)
	}
}

func TestVivaldiPredictsUnseenPairs(t *testing.T) {
	// Train only on pairs (i, i+1) and (i, i+2) — a sparse ring — and
	// predict long-range pairs never observed.
	const n = 20
	_, _, rtt := syntheticMetric(n, 3)
	s := New(DefaultConfig(), 3)
	for round := 0; round < 800; round++ {
		for i := 0; i < n; i++ {
			s.Observe(int32(i), int32((i+1)%n), rtt(i, (i+1)%n))
			s.Observe(int32(i), int32((i+2)%n), rtt(i, (i+2)%n))
		}
	}
	var rel []float64
	for i := 0; i < n; i++ {
		j := (i + n/2) % n // farthest, never observed
		pred, ok := s.PredictRTT(int32(i), int32(j))
		if !ok {
			t.Fatal("unseen pair not predictable despite both nodes embedded")
		}
		rel = append(rel, math.Abs(pred-rtt(i, j))/rtt(i, j))
	}
	if med := stats.Quantile(rel, 0.5); med > 0.5 {
		t.Errorf("median unseen-pair error %v; embedding did not generalize", med)
	}
}

func TestVivaldiBasics(t *testing.T) {
	s := New(DefaultConfig(), 1)
	if _, ok := s.PredictRTT(1, 2); ok {
		t.Error("unknown nodes should not predict")
	}
	if v, ok := s.PredictRTT(5, 5); !ok || v != 0 {
		t.Error("self RTT should be 0")
	}
	s.Observe(1, 2, 50)
	if s.Nodes() != 2 {
		t.Errorf("nodes = %d", s.Nodes())
	}
	if _, ok := s.PredictRTT(1, 2); !ok {
		t.Error("observed pair should predict")
	}
	if e := s.ErrorEstimate(1); e <= 0 || e > 2 {
		t.Errorf("error estimate %v", e)
	}
	if e := s.ErrorEstimate(99); e != 1 {
		t.Errorf("unknown node error %v, want 1", e)
	}
}

func TestVivaldiIgnoresGarbage(t *testing.T) {
	s := New(DefaultConfig(), 1)
	s.Observe(1, 1, 50)          // self
	s.Observe(1, 2, -5)          // negative
	s.Observe(1, 2, math.NaN())  // NaN
	s.Observe(1, 2, math.Inf(1)) // Inf
	if s.Nodes() != 0 {
		t.Errorf("garbage observations created %d nodes", s.Nodes())
	}
}

func TestVivaldiHeightsStayPositive(t *testing.T) {
	s := New(DefaultConfig(), 4)
	r := stats.NewRNG(9)
	for i := 0; i < 2000; i++ {
		s.Observe(int32(r.IntN(10)), int32(r.IntN(10)), 1+200*r.Float64())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, nd := range s.nodes {
		if nd.height < s.cfg.MinHeight {
			t.Errorf("node %d height %v below floor", id, nd.height)
		}
		for _, v := range nd.vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("node %d has invalid coordinate", id)
			}
		}
	}
}

func BenchmarkVivaldiObserve(b *testing.B) {
	s := New(DefaultConfig(), 1)
	r := stats.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(int32(r.IntN(200)), int32(r.IntN(200)), 10+300*r.Float64())
	}
}
