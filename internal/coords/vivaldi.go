// Package coords implements Vivaldi network coordinates (Dabek et al.,
// SIGCOMM 2004) with the height model — the decentralized
// coordinate-embedding alternative to tomography that the paper's related
// work discusses (§6, "Internet performance prediction"). Nodes embed into
// a low-dimensional Euclidean space plus a height (modeling the access
// link); predicted RTT between two nodes is the coordinate distance.
//
// The repository uses it as a coverage-extension baseline for direct-path
// RTT prediction: trained on observed pairs, it predicts pairs never seen
// — something per-pair history fundamentally cannot do — and the "coords"
// experiment quantifies its accuracy against the ground truth.
package coords

import (
	"math"
	"sync"

	"repro/internal/stats"
)

// Config tunes the Vivaldi update rule.
type Config struct {
	// Dim is the Euclidean dimensionality (Vivaldi's evaluation used 2-5).
	Dim int
	// CC and CE are the coordinate and error tuning constants (the paper
	// recommends 0.25 each).
	CC, CE float64
	// MinHeight keeps heights positive (access links always cost > 0).
	MinHeight float64
}

// DefaultConfig returns the Vivaldi paper's recommended constants with a
// 3-dimensional space.
func DefaultConfig() Config {
	return Config{Dim: 3, CC: 0.25, CE: 0.25, MinHeight: 0.1}
}

type node struct {
	vec    []float64
	height float64
	err    float64 // relative error estimate in [0, 1+]
	n      int64
}

// System embeds nodes identified by int32 ids. Safe for concurrent use.
type System struct {
	cfg Config

	mu    sync.Mutex
	nodes map[int32]*node
	rng   *stats.RNG
}

// New creates an empty coordinate system.
func New(cfg Config, seed uint64) *System {
	if cfg.Dim <= 0 {
		cfg.Dim = 3
	}
	if cfg.CC <= 0 {
		cfg.CC = 0.25
	}
	if cfg.CE <= 0 {
		cfg.CE = 0.25
	}
	if cfg.MinHeight <= 0 {
		cfg.MinHeight = 0.1
	}
	return &System{
		cfg:   cfg,
		nodes: make(map[int32]*node),
		rng:   stats.NewRNG(seed).Split("vivaldi"),
	}
}

func (s *System) get(id int32) *node {
	nd := s.nodes[id]
	if nd == nil {
		// Start at a tiny random offset so co-located nodes can separate.
		vec := make([]float64, s.cfg.Dim)
		for i := range vec {
			vec[i] = s.rng.Normal(0, 0.01)
		}
		nd = &node{vec: vec, height: s.cfg.MinHeight, err: 1}
		s.nodes[id] = nd
	}
	return nd
}

// distance is the height-model distance between two nodes.
func distance(a, b *node) float64 {
	var sum float64
	for i := range a.vec {
		d := a.vec[i] - b.vec[i]
		sum += d * d
	}
	return math.Sqrt(sum) + a.height + b.height
}

// Observe feeds one RTT measurement (milliseconds) between nodes a and b,
// updating both ends symmetrically (we play both sides of the exchange).
func (s *System) Observe(a, b int32, rttMs float64) {
	if rttMs <= 0 || a == b || math.IsNaN(rttMs) || math.IsInf(rttMs, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	na, nb := s.get(a), s.get(b)
	s.updateOne(na, nb, rttMs)
	s.updateOne(nb, na, rttMs)
	na.n++
	nb.n++
}

// updateOne applies the Vivaldi force update to `self` against `other`.
func (s *System) updateOne(self, other *node, rtt float64) {
	dist := distance(self, other)

	// Sample weight balances local vs remote confidence.
	w := self.err / (self.err + other.err)

	// Update the relative error EWMA.
	es := math.Abs(dist-rtt) / rtt
	self.err = es*s.cfg.CE*w + self.err*(1-s.cfg.CE*w)
	if self.err > 2 {
		self.err = 2
	}

	// Move along the error gradient.
	delta := s.cfg.CC * w
	force := delta * (rtt - dist)

	// Unit vector from other to self; random direction when coincident.
	dir := make([]float64, len(self.vec))
	var norm float64
	for i := range dir {
		dir[i] = self.vec[i] - other.vec[i]
		norm += dir[i] * dir[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-9 {
		for i := range dir {
			dir[i] = s.rng.Normal(0, 1)
		}
		norm = 0
		for _, v := range dir {
			norm += v * v
		}
		norm = math.Sqrt(norm)
	}
	for i := range dir {
		self.vec[i] += force * dir[i] / norm
	}
	// Height absorbs the non-Euclidean (access) component.
	self.height += force * 0.5
	if self.height < s.cfg.MinHeight {
		self.height = s.cfg.MinHeight
	}
}

// PredictRTT returns the coordinate-distance RTT estimate between two
// nodes, and whether both have been embedded (observed at least once).
func (s *System) PredictRTT(a, b int32) (float64, bool) {
	if a == b {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	na, okA := s.nodes[a]
	nb, okB := s.nodes[b]
	if !okA || !okB || na.n == 0 || nb.n == 0 {
		return 0, false
	}
	return distance(na, nb), true
}

// ErrorEstimate returns a node's current relative-error EWMA, or 1 if the
// node is unknown.
func (s *System) ErrorEstimate(id int32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nd, ok := s.nodes[id]; ok {
		return nd.err
	}
	return 1
}

// Nodes returns how many nodes are embedded.
func (s *System) Nodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}
