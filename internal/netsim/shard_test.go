package netsim

import (
	"sync"
	"testing"
)

// TestWindowMeanConcurrentConsistent hammers the sharded path/segment
// caches from many goroutines and checks every observer sees the same
// value a cold single-threaded world computes: cache values are pure
// functions of their keys, so racing duplicate fills must be harmless.
func TestWindowMeanConcurrentConsistent(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.NumASes = 40
	hot := New(cfg)
	cold := New(cfg)

	type probe struct {
		src, dst ASID
		opt      Option
		window   int
	}
	var probes []probe
	for src := ASID(0); src < 8; src++ {
		for dst := ASID(8); dst < 12; dst++ {
			for _, opt := range hot.Options(src, dst) {
				for w := 0; w < 3; w++ {
					probes = append(probes, probe{src, dst, opt, w})
				}
			}
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the probes from a different offset so
			// shard fills race in different orders.
			for i := range probes {
				p := probes[(i+g*137)%len(probes)]
				hot.WindowMean(p.src, p.dst, p.opt, p.window)
			}
		}(g)
	}
	wg.Wait()

	for _, p := range probes {
		got := hot.WindowMean(p.src, p.dst, p.opt, p.window)
		want := cold.WindowMean(p.src, p.dst, p.opt, p.window)
		if got != want {
			t.Fatalf("WindowMean(%v,%v,%v,%d) = %v after concurrent fill, want %v",
				p.src, p.dst, p.opt, p.window, got, want)
		}
	}
}

// TestPathKeyHashSpreads sanity-checks the shard hash: realistic keys must
// not collapse onto a few shards, or the sharding buys nothing.
func TestPathKeyHashSpreads(t *testing.T) {
	counts := make(map[uint64]int)
	n := 0
	for src := ASID(0); src < 24; src++ {
		for dst := src + 1; dst < 24; dst++ {
			for _, kind := range []OptionKind{Direct, Bounce, Transit} {
				k := pathKey{src, dst, Option{Kind: kind, R1: RelayID(src % 5), R2: RelayID(dst % 5)}, int32(src+dst) % 28}
				counts[k.hash()&(pathShards-1)]++
				n++
			}
		}
	}
	if len(counts) < pathShards/2 {
		t.Errorf("only %d of %d shards used over %d keys", len(counts), pathShards, n)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 4*(n/pathShards+1) {
		t.Errorf("hot shard holds %d of %d keys; hash too skewed", max, n)
	}
}
