package netsim

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/quality"
	"repro/internal/stats"
)

// HoursPerWindow is the length of the model's ground-truth aggregation
// window — the paper evaluates relaying options at a one-day granularity
// (§3.2, §5.1).
const HoursPerWindow = 24

// WindowOf returns the 24-hour window index containing an absolute time in
// hours since the trace epoch.
func WindowOf(tHours float64) int {
	return int(math.Floor(tHours / HoursPerWindow))
}

type pathKey struct {
	src, dst ASID
	opt      Option
	window   int32
}

// hash mixes every key field into a well-distributed 64-bit value used to
// pick a cache shard. A cheap multiply-xorshift (splitmix-style finalizer)
// is enough: keys differ in low bits (AS ids, relay ids, window).
func (k pathKey) hash() uint64 {
	h := uint64(uint32(k.src))<<32 | uint64(uint32(k.dst))
	h ^= uint64(k.opt.Kind)<<58 ^ uint64(uint32(k.opt.R1))<<40 ^
		uint64(uint32(k.opt.R2))<<16 ^ uint64(uint32(k.window))
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}

// pathShards is the shard count of the path cache. Power of two so the
// shard index is a mask; 64 shards keep contention negligible even with
// GOMAXPROCS-many runners hammering SampleCall.
const pathShards = 64

type pathShard struct {
	mu sync.RWMutex
	m  map[pathKey]quality.Metrics // guarded by mu
}

// pathCache memoizes end-to-end window means. It is sharded by key hash so
// parallel strategy runs (sim.Runner.Run) don't serialize on one mutex:
// every SampleCall hits this cache. Values are pure functions of the key,
// so a racing duplicate compute stores an identical value — last write
// wins harmlessly. The hit/miss tallies are observability only (see
// World.CacheStats) and never feed back into the model.
type pathCache struct {
	shards [pathShards]pathShard
	hits   atomic.Int64
	misses atomic.Int64
}

func newPathCache() *pathCache { return &pathCache{} }

func (c *pathCache) shard(k pathKey) *pathShard {
	return &c.shards[k.hash()&(pathShards-1)]
}

func (s *pathShard) get(k pathKey) (quality.Metrics, bool) {
	s.mu.RLock()
	m, ok := s.m[k] // reads of a nil map are legal: miss
	s.mu.RUnlock()
	return m, ok
}

func (s *pathShard) put(k pathKey, m quality.Metrics) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[pathKey]quality.Metrics)
	}
	s.m[k] = m
	s.mu.Unlock()
}

// CanonicalPair maps (src, dst, opt) to a direction-independent form:
// performance is symmetric, so a call d→s over transit(b,a) sees the same
// path as s→d over transit(a,b). History aggregation uses this form so both
// call directions pool their samples.
func CanonicalPair(src, dst ASID, opt Option) (ASID, ASID, Option) {
	if src > dst {
		src, dst = dst, src
		if opt.Kind == Transit {
			opt.R1, opt.R2 = opt.R2, opt.R1
		}
	}
	return src, dst, opt
}

func canonicalPath(src, dst ASID, opt Option, window int) pathKey {
	src, dst, opt = CanonicalPair(src, dst, opt)
	return pathKey{src, dst, opt, int32(window)}
}

// WindowMean returns the ground-truth mean performance of a relaying option
// for calls between src and dst during the given 24-hour window. This is
// what the oracle consults; real strategies must estimate it from samples.
func (w *World) WindowMean(src, dst ASID, opt Option, window int) quality.Metrics {
	k := canonicalPath(src, dst, opt, window)
	s := w.paths.shard(k)
	if m, ok := s.get(k); ok {
		w.paths.hits.Add(1)
		return m
	}
	w.paths.misses.Add(1)
	m := w.composePath(ASID(k.src), ASID(k.dst), k.opt, window)
	s.put(k, m)
	return m
}

// composePath combines segment window-means into an end-to-end path mean.
// RTT adds; loss combines multiplicatively (independent segments); jitter
// adds (the linearization the paper's tomography assumes, §4.4).
func (w *World) composePath(src, dst ASID, opt Option, window int) quality.Metrics {
	var segs [3]segKey
	n := 0
	switch opt.Kind {
	case Direct:
		segs[0] = directSeg(src, dst)
		n = 1
	case Bounce:
		segs[0] = accessSeg(src, opt.R1)
		segs[1] = accessSeg(dst, opt.R1)
		n = 2
	case Transit:
		segs[0] = accessSeg(src, opt.R1)
		segs[1] = backboneSeg(opt.R1, opt.R2)
		segs[2] = accessSeg(dst, opt.R2)
		n = 3
	default:
		panic("netsim: unknown option kind")
	}
	var rtt, jit float64
	pass := 1.0
	for i := 0; i < n; i++ {
		m := w.segmentWindowMean(segs[i], window)
		rtt += m.RTTMs
		jit += m.JitterMs
		pass *= 1 - m.LossRate
	}
	return quality.Metrics{RTTMs: rtt, LossRate: 1 - pass, JitterMs: jit}
}

// BackboneMetrics returns the ground-truth inter-relay performance for a
// window. The paper's controller has this information from the provider's
// own backbone telemetry ("we also have information from Skype on the RTT,
// loss and jitter between their relay nodes", §3.2), so prediction code may
// consult it directly.
func (w *World) BackboneMetrics(r1, r2 RelayID, window int) quality.Metrics {
	if r1 == r2 {
		return quality.Metrics{}
	}
	return w.segmentWindowMean(backboneSeg(r1, r2), window)
}

// AccessMetrics returns the ground-truth mean performance of the access
// segment between an AS and a relay for a window. The loopback testbed uses
// it to derive per-link impairment parameters.
func (w *World) AccessMetrics(a ASID, r RelayID, window int) quality.Metrics {
	return w.segmentWindowMean(accessSeg(a, r), window)
}

// SampleCall draws the realized average metrics of one call placed at
// absolute time tHours between src and dst over the given option. The draw
// is the window's ground-truth mean perturbed by heavy-tailed per-call noise
// and a diurnal load factor; randomness comes from the caller's rng so
// different consumers (trace generation, simulation) stay independent.
func (w *World) SampleCall(src, dst ASID, opt Option, tHours float64, rng *stats.RNG) quality.Metrics {
	mean := w.WindowMean(src, dst, opt, WindowOf(tHours))

	// Diurnal load: loss and jitter swell in the local evening of the
	// endpoints. Use the midpoint longitude to estimate local time.
	lon := (w.ases[src].Loc.Lon + w.ases[dst].Loc.Lon) / 2
	localHour := math.Mod(tHours+lon/15+48*24, 24)
	diurnal := 1 + 0.25*math.Sin(2*math.Pi*(localHour-14)/24)

	rtt := mean.RTTMs * rng.LogNormal(0, 0.18)
	if rng.Float64() < 0.03 {
		rtt += minF(rng.Pareto(25, 1.6), 350) // transient routing/queueing spike
	}
	loss := mean.LossRate * diurnal * rng.LogNormal(0, 0.7)
	jit := mean.JitterMs * diurnal * rng.LogNormal(0, 0.55)

	return quality.Metrics{
		RTTMs:    rtt,
		LossRate: clampLoss(loss),
		JitterMs: minF(jit, 300),
	}
}

// BestOption returns the option among cands with the lowest ground-truth
// window mean on the given metric — the oracle's choice — along with its
// mean value. It panics on an empty candidate set.
func (w *World) BestOption(src, dst ASID, cands []Option, window int, m quality.Metric) (Option, float64) {
	if len(cands) == 0 {
		panic("netsim: no candidate options")
	}
	best := cands[0]
	bestV := w.WindowMean(src, dst, best, window).Get(m)
	for _, o := range cands[1:] {
		if v := w.WindowMean(src, dst, o, window).Get(m); v < bestV {
			best, bestV = o, v
		}
	}
	return best, bestV
}
