package netsim

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/quality"
	"repro/internal/stats"
)

// A segment is the unit of the ground-truth performance model: a direct
// AS↔AS path, an access leg between an AS and a relay, or a private
// backbone link between two relays. Direct and backbone segments are
// symmetric and stored under a canonical (low, high) key.
type segKind uint8

const (
	segDirect segKind = iota
	segAccess
	segBackbone
)

type segKey struct {
	kind segKind
	a, b int32 // direct: AS,AS (a<=b); access: AS,relay; backbone: relay,relay (a<=b)
}

// id packs the key into a uint64 for deterministic RNG splitting.
func (k segKey) id() uint64 {
	return uint64(k.kind)<<60 | uint64(uint32(k.a))<<30 | uint64(uint32(k.b))
}

func directSeg(a, b ASID) segKey {
	if a > b {
		a, b = b, a
	}
	return segKey{segDirect, int32(a), int32(b)}
}

func accessSeg(a ASID, r RelayID) segKey {
	return segKey{segAccess, int32(a), int32(r)}
}

func backboneSeg(r1, r2 RelayID) segKey {
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return segKey{segBackbone, int32(r1), int32(r2)}
}

// segParams are the static (time-invariant) characteristics of a segment.
type segParams struct {
	baseRTT    float64 // ms, calm window mean
	baseLoss   float64 // fraction
	baseJitter float64 // ms
	pBad       float64 // probability a persistence block is congested
	blockLen   int     // persistence block length in days (>=1)
	driftSigma float64 // week-scale lognormal drift on loss/jitter
}

// segShards is the shard count of both segment caches (static params and
// per-window means). Power of two so the shard index is a mask. Segment
// lookups sit on the pathCache miss path, which parallel strategy runs
// exercise concurrently during warmup.
const segShards = 32

type segStaticShard struct {
	mu sync.RWMutex
	m  map[segKey]segParams // guarded by mu
}

type segWindowShard struct {
	mu sync.RWMutex
	m  map[segWindowKey]quality.Metrics // guarded by mu
}

// segmentCache memoizes per-segment state, sharded by key hash so parallel
// runners don't contend. Both maps hold pure functions of their keys, so
// racing duplicate computes store identical values. Hit/miss tallies are
// observability only (World.CacheStats), covering the window-mean map (the
// hot one; static params converge to all-hits immediately).
type segmentCache struct {
	static  [segShards]segStaticShard
	windows [segShards]segWindowShard
	hits    atomic.Int64
	misses  atomic.Int64
}

type segWindowKey struct {
	seg    segKey
	window int32
}

// hash finalizes the packed segment/window identity into shard-index bits.
func (k segWindowKey) hash() uint64 {
	h := k.seg.id() ^ uint64(uint32(k.window))<<61 ^ uint64(uint32(k.window))
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}

func newSegmentCache() *segmentCache { return &segmentCache{} }

func (c *segmentCache) staticShard(k segKey) *segStaticShard {
	h := k.id() * 0x9e3779b97f4a7c15
	return &c.static[(h>>32)&(segShards-1)]
}

func (c *segmentCache) windowShard(k segWindowKey) *segWindowShard {
	return &c.windows[k.hash()&(segShards-1)]
}

func (s *segStaticShard) get(k segKey) (segParams, bool) {
	s.mu.RLock()
	p, ok := s.m[k] // reads of a nil map are legal: miss
	s.mu.RUnlock()
	return p, ok
}

func (s *segStaticShard) put(k segKey, p segParams) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[segKey]segParams)
	}
	s.m[k] = p
	s.mu.Unlock()
}

func (s *segWindowShard) get(k segWindowKey) (quality.Metrics, bool) {
	s.mu.RLock()
	m, ok := s.m[k] // reads of a nil map are legal: miss
	s.mu.RUnlock()
	return m, ok
}

func (s *segWindowShard) put(k segWindowKey, m quality.Metrics) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[segWindowKey]quality.Metrics)
	}
	s.m[k] = m
	s.mu.Unlock()
}

// staticParams returns (computing and caching on first use) the static
// characteristics of a segment.
func (w *World) staticParams(k segKey) segParams {
	sh := w.segs.staticShard(k)
	if p, ok := sh.get(k); ok {
		return p
	}
	p := w.computeStatic(k)
	sh.put(k, p)
	return p
}

func (w *World) computeStatic(k segKey) segParams {
	r := w.root.Split("seg-static").SplitN("seg", k.id())
	switch k.kind {
	case segDirect:
		a, b := w.ases[k.a], w.ases[k.b]
		dist := geo.DistanceKm(a.Loc, b.Loc)
		prop := geo.PropagationRTTMs(dist)
		// BGP route inflation: heavy-tailed, worse across borders. The tail
		// is what produces the ≥320ms RTT mass of Fig. 2.
		infl := 1.35 + r.Pareto(0.22, 1.6)
		if infl > 5.0 {
			infl = 5.0
		}
		if a.Country != b.Country {
			infl *= 1.18
		}
		// Pathological routing: a small fraction of BGP paths detour
		// through a far-away exchange regardless of endpoint distance —
		// this is what makes even domestic calls RTT-poor sometimes.
		patho := 0.0
		if r.Float64() < 0.04 {
			patho = 180 + minF(r.Pareto(100, 1.6), 700)
		}
		distKk := dist / 1000
		return segParams{
			baseRTT:    prop*infl + a.accessRTTMs + b.accessRTTMs + patho,
			baseLoss:   clampLoss(a.lossBase + b.lossBase + 0.0004*distKk*r.LogNormal(0, 0.8)),
			baseJitter: a.jitterBase + b.jitterBase + 0.35*distKk*r.LogNormal(0, 0.7),
			pBad:       pickPBad(r, true),
			blockLen:   1 + r.IntN(6),
			driftSigma: 0.30,
		}
	case segAccess:
		a, rl := w.ases[k.a], w.relays[k.b]
		dist := geo.DistanceKm(a.Loc, rl.Loc)
		prop := geo.PropagationRTTMs(dist)
		// Client-to-datacenter paths are usually less inflated than
		// arbitrary client-to-client BGP paths (cloud providers peer
		// widely), but they still traverse the public Internet and still
		// see heavy-tailed detours.
		infl := 1.25 + r.Pareto(0.12, 1.9)
		if infl > 3.2 {
			infl = 3.2
		}
		patho := 0.0
		if r.Float64() < 0.02 {
			patho = 80 + minF(r.Pareto(40, 1.8), 250)
		}
		distKk := dist / 1000
		return segParams{
			baseRTT:    prop*infl + a.accessRTTMs + 1 + patho, // +1ms relay processing
			baseLoss:   clampLoss(a.lossBase + 0.00015*distKk*r.LogNormal(0, 0.8)),
			baseJitter: a.jitterBase + 0.25*distKk*r.LogNormal(0, 0.7) + 0.2,
			pBad:       pickPBad(r, true),
			blockLen:   1 + r.IntN(6),
			driftSigma: 0.30,
		}
	case segBackbone:
		r1, r2 := w.relays[k.a], w.relays[k.b]
		dist := geo.DistanceKm(r1.Loc, r2.Loc)
		prop := geo.PropagationRTTMs(dist)
		infl := 1.10 + 0.08*r.Float64()
		return segParams{
			baseRTT:    prop*infl + 1,
			baseLoss:   0.0001 * r.LogNormal(0, 0.3),
			baseJitter: 0.3 + 0.1*dist/1000,
			pBad:       0.01,
			blockLen:   1,
			driftSigma: 0.05,
		}
	default:
		panic("netsim: unknown segment kind")
	}
}

// pickPBad draws a segment's congestion propensity. A small fraction of
// public segments are chronically bad (high-PNR "always" pairs in Fig. 6);
// the rest see intermittent episodes.
func pickPBad(r *stats.RNG, public bool) float64 {
	if !public {
		return 0.01
	}
	if r.Float64() < 0.06 {
		return 0.70 + 0.25*r.Float64() // chronic
	}
	return 0.04 + 0.10*r.Float64() // intermittent
}

func clampLoss(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.5 {
		return 0.5
	}
	return v
}

// segmentWindowMean returns the ground-truth mean metrics of a segment over
// a 24-hour window, including congestion state and slow drift.
func (w *World) segmentWindowMean(k segKey, window int) quality.Metrics {
	wk := segWindowKey{k, int32(window)}
	sh := w.segs.windowShard(wk)
	if m, ok := sh.get(wk); ok {
		w.segs.hits.Add(1)
		return m
	}
	w.segs.misses.Add(1)
	m := w.computeSegmentWindow(k, window)
	sh.put(wk, m)
	return m
}

func (w *World) computeSegmentWindow(k segKey, window int) quality.Metrics {
	p := w.staticParams(k)

	rtt, loss, jit := p.baseRTT, p.baseLoss, p.baseJitter

	// Week-scale drift: per-epoch Gaussian field, linearly interpolated
	// between epochs so consecutive windows are correlated. This is what
	// makes the best relaying option change on a timescale of days (Fig. 9).
	const epochDays = 7
	epoch := window / epochDays
	frac := float64(window%epochDays) / epochDays
	g0 := w.root.Split("drift").SplitN("seg", k.id()).SplitN("e", uint64(int64(epoch)+1<<20)).NormFloat64()
	g1 := w.root.Split("drift").SplitN("seg", k.id()).SplitN("e", uint64(int64(epoch)+1+1<<20)).NormFloat64()
	g := g0*(1-frac) + g1*frac
	loss *= math.Exp(p.driftSigma * g)
	jit *= math.Exp(p.driftSigma * g)
	rtt *= clampF(1+0.06*g, 0.85, 1.25)

	// Congestion: the time axis is divided into persistence blocks of the
	// segment's characteristic length; each block is independently
	// congested with probability pBad, with episode severity drawn per
	// block. Chronic segments (high pBad) are bad most days; others see
	// short episodes.
	block := window / p.blockLen
	br := w.root.Split("cong").SplitN("seg", k.id()).SplitN("b", uint64(int64(block)+1<<20))
	if br.Float64() < p.pBad {
		rtt += 15 + minF(br.Pareto(10, 1.7), 120)
		loss *= 2.5 + 3.5*br.Float64()
		jit *= 1.8 + 2.2*br.Float64()
	}

	return quality.Metrics{RTTMs: rtt, LossRate: clampLoss(loss), JitterMs: minF(jit, 300)}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
