// Package netsim is the ground-truth synthetic Internet model that stands in
// for the paper's 430M-call Skype dataset. It models:
//
//   - a set of ASes, each homed to a country with real coordinates and a
//     last-mile quality class (loss/jitter propensity);
//   - a managed overlay of datacenter relays, all in one AS, connected by a
//     clean private backbone (as in the paper, where all Skype relays live
//     in a single AS);
//   - per-segment path performance with a geodesic propagation base,
//     BGP-style route inflation, Markov-modulated congestion episodes with
//     per-segment persistence, slow week-scale drift, and heavy-tailed
//     per-call noise.
//
// All values derive deterministically from a master seed, so any (segment,
// 24h-window) ground-truth mean can be computed on demand in O(1) without
// storing O(N²) state, and experiments are exactly reproducible.
//
// The model's purpose is behavioural fidelity to §2 of the paper: poor
// performance is spread spatially (not a few bad AS pairs), temporally
// intermittent for most pairs but chronic for ~10-20%, worse for
// international/inter-AS calls, and the best relaying option drifts on a
// timescale of days.
package netsim

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/stats"
)

// ASID identifies an autonomous system in the synthetic world.
type ASID int32

// RelayID identifies a managed-overlay relay node.
type RelayID int32

// AS is an autonomous system: the unit at which Via aggregates history and
// makes decisions.
type AS struct {
	ID      ASID
	Country string    // ISO-style country code
	Loc     geo.Point // representative location (near the country center)
	Weight  float64   // relative share of call traffic originating here
	// accessRTTMs, lossBase, jitterBase characterize the last mile.
	accessRTTMs float64
	lossBase    float64
	jitterBase  float64
}

// Relay is a managed relay node hosted at a datacenter site.
type Relay struct {
	ID   RelayID
	Name string
	Loc  geo.Point
}

// Config parameterizes world construction.
type Config struct {
	Seed      uint64
	NumASes   int // total ASes, distributed over countries by weight (min 2/country)
	NumRelays int // relays used, drawn from the built-in site list (max 24)

	// BounceCandidates is how many relays nearest to each endpoint are
	// offered as bounce options; TransitFan is how many ingress (near the
	// caller) and egress (near the callee) relays are crossed to form
	// transit options. Together with the direct path these yield the
	// "9-20 relaying options" regime of the paper's evaluation (§5.5).
	BounceCandidates int
	TransitFan       int
}

// DefaultConfig returns the configuration used by the experiments: 150 ASes
// across 36 countries and 24 relays, ~20 relaying options per AS pair.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		NumASes:          150,
		NumRelays:        24,
		BounceCandidates: 3,
		TransitFan:       3,
	}
}

// World is the synthetic Internet. All methods are safe for concurrent use.
type World struct {
	cfg     Config
	ases    []AS
	relays  []Relay
	country map[string][]ASID // ASes per country

	root *stats.RNG // master stream (never consumed directly; only split)

	// nearRelays[as] caches relay indices sorted by distance from the AS.
	nearRelays [][]RelayID

	segs  *segmentCache
	paths *pathCache
}

// CacheStats reports the sharded memo caches' hit/miss tallies — the
// telemetry the experiment engine surfaces per run. Pure observation: the
// counts never influence what the caches return.
type CacheStats struct {
	PathHits, PathMisses       int64
	SegmentHits, SegmentMisses int64
}

// CacheStats returns a snapshot of the world's cache counters.
func (w *World) CacheStats() CacheStats {
	return CacheStats{
		PathHits:      w.paths.hits.Load(),
		PathMisses:    w.paths.misses.Load(),
		SegmentHits:   w.segs.hits.Load(),
		SegmentMisses: w.segs.misses.Load(),
	}
}

// New builds a world from cfg. Construction is deterministic in cfg.Seed.
func New(cfg Config) *World {
	if cfg.NumASes < 4 {
		panic("netsim: need at least 4 ASes")
	}
	countries := geo.Countries()
	sites := geo.DatacenterSites()
	if cfg.NumRelays <= 0 || cfg.NumRelays > len(sites) {
		cfg.NumRelays = len(sites)
	}
	if cfg.BounceCandidates <= 0 {
		cfg.BounceCandidates = 3
	}
	if cfg.TransitFan <= 0 {
		cfg.TransitFan = 3
	}

	w := &World{
		cfg:     cfg,
		country: make(map[string][]ASID),
		root:    stats.NewRNG(cfg.Seed),
		segs:    newSegmentCache(),
		paths:   newPathCache(),
	}

	// Allocate ASes to countries proportionally to weight, at least one per
	// country while the budget lasts.
	totalW := 0.0
	for _, c := range countries {
		totalW += c.Weight
	}
	type alloc struct {
		c geo.Country
		n int
	}
	allocs := make([]alloc, len(countries))
	assigned := 0
	for i, c := range countries {
		n := int(float64(cfg.NumASes) * c.Weight / totalW)
		if n < 1 {
			n = 1
		}
		allocs[i] = alloc{c, n}
		assigned += n
	}
	// Trim or pad to hit NumASes exactly, adjusting the largest buckets.
	for assigned > cfg.NumASes {
		maxI := 0
		for i := range allocs {
			if allocs[i].n > allocs[maxI].n {
				maxI = i
			}
		}
		if allocs[maxI].n <= 1 {
			break
		}
		allocs[maxI].n--
		assigned--
	}
	for assigned < cfg.NumASes {
		maxI := 0
		for i := range allocs {
			if allocs[i].c.Weight > allocs[maxI].c.Weight {
				maxI = i
			}
		}
		allocs[maxI].n++
		assigned++
	}

	asRNG := w.root.Split("as-params")
	for _, al := range allocs {
		for k := 0; k < al.n; k++ {
			id := ASID(len(w.ases))
			r := asRNG.SplitN("as", uint64(id))
			// Scatter the AS around the country center so distances differ.
			loc := geo.Point{
				Lat: clampLat(al.c.Center.Lat + r.Normal(0, 2.0)),
				Lon: al.c.Center.Lon + r.Normal(0, 2.0),
			}
			// Last-mile quality class: good/medium/bad eyeball networks.
			// Bad last miles are what no relaying strategy can fix (§2.2),
			// which is why the oracle's PNR reduction saturates near ~50%.
			classMul := 1.0
			switch u := r.Float64(); {
			case u < 0.62:
				classMul = 1.0
			case u < 0.90:
				classMul = 3.0
			default:
				classMul = 9.0
			}
			// A small slice of ASes sit behind high-latency access
			// (satellite, congested cellular): RTT-poor no matter the path.
			accessRTT := r.LogNormal(ln(8), 0.5)
			if r.Float64() < 0.05 {
				accessRTT += 120 + minF(r.Pareto(80, 1.8), 400)
			}
			a := AS{
				ID:          id,
				Country:     al.c.Code,
				Loc:         loc,
				Weight:      al.c.Weight / float64(al.n) * (0.5 + r.Float64()),
				accessRTTMs: accessRTT,
				lossBase:    classMul * r.LogNormal(ln(0.0006), 0.8),
				jitterBase:  classMul * r.LogNormal(ln(1.0), 0.6),
			}
			w.ases = append(w.ases, a)
			w.country[al.c.Code] = append(w.country[al.c.Code], id)
		}
	}

	for i := 0; i < cfg.NumRelays; i++ {
		w.relays = append(w.relays, Relay{
			ID:   RelayID(i),
			Name: sites[i].Name,
			Loc:  sites[i].Center,
		})
	}

	// Precompute relay proximity per AS.
	relaySites := make([]geo.DatacenterSite, len(w.relays))
	for i, r := range w.relays {
		relaySites[i] = geo.DatacenterSite{Name: r.Name, Center: r.Loc}
	}
	w.nearRelays = make([][]RelayID, len(w.ases))
	for i := range w.ases {
		order := geo.NearestK(w.ases[i].Loc, relaySites, len(relaySites))
		ids := make([]RelayID, len(order))
		for k, idx := range order {
			ids[k] = RelayID(idx)
		}
		w.nearRelays[i] = ids
	}

	return w
}

func clampLat(v float64) float64 {
	if v > 89 {
		return 89
	}
	if v < -89 {
		return -89
	}
	return v
}

// ln is a readability helper for lognormal medians: LogNormal(ln(m), σ) has
// median m.
func ln(x float64) float64 {
	if x <= 0 {
		panic("netsim: ln of non-positive")
	}
	return math.Log(x)
}

// Config returns the construction configuration.
func (w *World) Config() Config { return w.cfg }

// NumASes returns the AS count.
func (w *World) NumASes() int { return len(w.ases) }

// NumRelays returns the relay count.
func (w *World) NumRelays() int { return len(w.relays) }

// AS returns the AS with the given id.
func (w *World) AS(id ASID) AS {
	return w.ases[id]
}

// Relay returns the relay with the given id.
func (w *World) Relay(id RelayID) Relay {
	return w.relays[id]
}

// Relays returns all relay ids.
func (w *World) Relays() []RelayID {
	out := make([]RelayID, len(w.relays))
	for i := range w.relays {
		out[i] = RelayID(i)
	}
	return out
}

// ASesInCountry returns the AS ids homed in the given country code.
func (w *World) ASesInCountry(code string) []ASID {
	out := make([]ASID, len(w.country[code]))
	copy(out, w.country[code])
	return out
}

// CountryOf returns the country code of an AS.
func (w *World) CountryOf(id ASID) string { return w.ases[id].Country }

// International reports whether a call between the two ASes crosses a
// country border.
func (w *World) International(a, b ASID) bool {
	return w.ases[a].Country != w.ases[b].Country
}

// NearestRelays returns the k relays closest to the AS, nearest first.
func (w *World) NearestRelays(a ASID, k int) []RelayID {
	all := w.nearRelays[a]
	if k > len(all) {
		k = len(all)
	}
	out := make([]RelayID, k)
	copy(out, all[:k])
	return out
}

func (w *World) String() string {
	return fmt.Sprintf("netsim.World{ases: %d, relays: %d, seed: %d}",
		len(w.ases), len(w.relays), w.cfg.Seed)
}
