package netsim

import (
	"fmt"
	"sort"
)

// OptionKind distinguishes the three relaying-path shapes of §3.1.
type OptionKind uint8

const (
	// Direct is the default BGP-derived path between caller and callee.
	Direct OptionKind = iota
	// Bounce routes the call off a single relay node.
	Bounce
	// Transit routes the call through an ingress and an egress relay,
	// traversing the private backbone between them.
	Transit
)

// String returns the kind's name.
func (k OptionKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Bounce:
		return "bounce"
	case Transit:
		return "transit"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Option is a relaying option: the unit Via's selection algorithm chooses
// among. It is comparable and compact, usable as a map key.
type Option struct {
	Kind   OptionKind
	R1, R2 RelayID // Bounce: R1; Transit: R1=ingress, R2=egress; Direct: both -1
}

// DirectOption is the default-path option.
func DirectOption() Option { return Option{Kind: Direct, R1: -1, R2: -1} }

// BounceOption relays via a single node.
func BounceOption(r RelayID) Option { return Option{Kind: Bounce, R1: r, R2: -1} }

// TransitOption relays via an ingress/egress pair. A degenerate pair with
// ingress == egress is a bounce.
func TransitOption(in, out RelayID) Option {
	if in == out {
		return BounceOption(in)
	}
	return Option{Kind: Transit, R1: in, R2: out}
}

// IsRelayed reports whether the option uses the managed overlay.
func (o Option) IsRelayed() bool { return o.Kind != Direct }

// Uses reports whether the option routes through the given relay.
func (o Option) Uses(id RelayID) bool {
	switch o.Kind {
	case Bounce:
		return o.R1 == id
	case Transit:
		return o.R1 == id || o.R2 == id
	default:
		return false
	}
}

// String renders the option compactly, e.g. "direct", "bounce(3)",
// "transit(3->7)".
func (o Option) String() string {
	switch o.Kind {
	case Direct:
		return "direct"
	case Bounce:
		return fmt.Sprintf("bounce(%d)", o.R1)
	case Transit:
		return fmt.Sprintf("transit(%d->%d)", o.R1, o.R2)
	default:
		return fmt.Sprintf("option(%d,%d,%d)", o.Kind, o.R1, o.R2)
	}
}

// Options returns the candidate relaying options for a call from src to dst:
// the direct path, bounce options off relays near either endpoint, and
// transit options crossing the TransitFan relays nearest the caller with
// those nearest the callee. The slice is deterministic and sorted, and
// typically has ~15-25 entries with the default configuration — mirroring
// the paper's 9-20 option regime.
func (w *World) Options(src, dst ASID) []Option {
	seen := map[Option]bool{}
	var out []Option
	add := func(o Option) {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	add(DirectOption())
	for _, r := range w.NearestRelays(src, w.cfg.BounceCandidates) {
		add(BounceOption(r))
	}
	for _, r := range w.NearestRelays(dst, w.cfg.BounceCandidates) {
		add(BounceOption(r))
	}
	ins := w.NearestRelays(src, w.cfg.TransitFan)
	outs := w.NearestRelays(dst, w.cfg.TransitFan)
	for _, in := range ins {
		for _, eg := range outs {
			add(TransitOption(in, eg))
		}
	}
	sort.Slice(out, func(i, j int) bool { return optionLess(out[i], out[j]) })
	return out
}

func optionLess(a, b Option) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.R1 != b.R1 {
		return a.R1 < b.R1
	}
	return a.R2 < b.R2
}
