package netsim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/quality"
	"repro/internal/stats"
)

func testWorld(t testing.TB) *World {
	t.Helper()
	return New(DefaultConfig(1))
}

func TestWorldConstructionDeterministic(t *testing.T) {
	a := New(DefaultConfig(42))
	b := New(DefaultConfig(42))
	if a.NumASes() != b.NumASes() || a.NumRelays() != b.NumRelays() {
		t.Fatal("sizes differ across identical construction")
	}
	for i := 0; i < a.NumASes(); i++ {
		if a.AS(ASID(i)) != b.AS(ASID(i)) {
			t.Fatalf("AS %d differs", i)
		}
	}
}

func TestWorldSeedChangesParameters(t *testing.T) {
	a := New(DefaultConfig(1))
	b := New(DefaultConfig(2))
	same := 0
	for i := 0; i < a.NumASes(); i++ {
		if a.AS(ASID(i)).accessRTTMs == b.AS(ASID(i)).accessRTTMs {
			same++
		}
	}
	if same > a.NumASes()/10 {
		t.Errorf("%d/%d ASes identical across seeds", same, a.NumASes())
	}
}

func TestWorldShape(t *testing.T) {
	w := testWorld(t)
	if w.NumASes() != 150 {
		t.Errorf("NumASes = %d, want 150", w.NumASes())
	}
	if w.NumRelays() != 24 {
		t.Errorf("NumRelays = %d, want 24", w.NumRelays())
	}
	// Every AS belongs to a known country and every country got at least
	// one AS.
	byCountry := map[string]int{}
	for i := 0; i < w.NumASes(); i++ {
		byCountry[w.CountryOf(ASID(i))]++
	}
	if len(byCountry) < 30 {
		t.Errorf("only %d countries represented", len(byCountry))
	}
	for c, n := range byCountry {
		if got := len(w.ASesInCountry(c)); got != n {
			t.Errorf("ASesInCountry(%s) = %d, want %d", c, got, n)
		}
	}
}

func TestInternational(t *testing.T) {
	w := testWorld(t)
	us := w.ASesInCountry("US")
	in := w.ASesInCountry("IN")
	if len(us) < 2 || len(in) < 1 {
		t.Fatal("expected multiple US ASes and at least one IN AS")
	}
	if w.International(us[0], us[1]) {
		t.Error("two US ASes flagged international")
	}
	if !w.International(us[0], in[0]) {
		t.Error("US-IN not flagged international")
	}
}

func TestNearestRelaysOrdered(t *testing.T) {
	w := testWorld(t)
	for _, a := range []ASID{0, 10, ASID(w.NumASes() - 1)} {
		rs := w.NearestRelays(a, 5)
		if len(rs) != 5 {
			t.Fatalf("got %d relays", len(rs))
		}
		prev := -1.0
		for _, r := range rs {
			d := distKm(w, a, r)
			if d < prev {
				t.Error("NearestRelays not sorted by distance")
			}
			prev = d
		}
	}
}

func distKm(w *World, a ASID, r RelayID) float64 {
	return geo.DistanceKm(w.AS(a).Loc, w.Relay(r).Loc)
}

func TestOptionsStructure(t *testing.T) {
	w := testWorld(t)
	opts := w.Options(0, ASID(w.NumASes()-1))
	if len(opts) < 8 || len(opts) > 30 {
		t.Fatalf("got %d options, want the paper's 9-20 regime (±)", len(opts))
	}
	if opts[0] != DirectOption() {
		t.Error("direct option missing or not first")
	}
	seen := map[Option]bool{}
	var bounces, transits int
	for _, o := range opts {
		if seen[o] {
			t.Errorf("duplicate option %v", o)
		}
		seen[o] = true
		switch o.Kind {
		case Bounce:
			bounces++
			if o.R2 != -1 {
				t.Errorf("bounce with R2 set: %v", o)
			}
		case Transit:
			transits++
			if o.R1 == o.R2 {
				t.Errorf("degenerate transit: %v", o)
			}
		}
	}
	if bounces < 3 {
		t.Errorf("only %d bounce options", bounces)
	}
	if transits < 4 {
		t.Errorf("only %d transit options", transits)
	}
}

func TestOptionsDeterministic(t *testing.T) {
	w := testWorld(t)
	a := w.Options(3, 77)
	b := w.Options(3, 77)
	if len(a) != len(b) {
		t.Fatal("option count varies")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("option order varies")
		}
	}
}

func TestOptionString(t *testing.T) {
	if DirectOption().String() != "direct" {
		t.Error("direct string")
	}
	if BounceOption(3).String() != "bounce(3)" {
		t.Error("bounce string")
	}
	if TransitOption(3, 7).String() != "transit(3->7)" {
		t.Error("transit string")
	}
	if TransitOption(4, 4) != BounceOption(4) {
		t.Error("degenerate transit should collapse to bounce")
	}
}

func TestWindowMeanDeterministicAndSymmetric(t *testing.T) {
	w := testWorld(t)
	src, dst := ASID(5), ASID(120)
	opt := TransitOption(2, 9)
	m1 := w.WindowMean(src, dst, opt, 3)
	m2 := w.WindowMean(src, dst, opt, 3)
	if m1 != m2 {
		t.Error("WindowMean not deterministic")
	}
	// Reverse direction with flipped transit must see the same path.
	rev := w.WindowMean(dst, src, TransitOption(9, 2), 3)
	if m1 != rev {
		t.Errorf("path not symmetric: %+v vs %+v", m1, rev)
	}
}

func TestWindowMeanValid(t *testing.T) {
	w := testWorld(t)
	for _, window := range []int{0, 1, 7, 30} {
		for _, opt := range w.Options(1, 140) {
			m := w.WindowMean(1, 140, opt, window)
			if !m.Valid() {
				t.Fatalf("invalid metrics %+v for %v window %d", m, opt, window)
			}
			if m.RTTMs <= 0 {
				t.Fatalf("nonpositive RTT for %v", opt)
			}
		}
	}
}

func TestWindowMeanVariesOverTime(t *testing.T) {
	w := testWorld(t)
	changed := 0
	const pairs = 40
	for i := 0; i < pairs; i++ {
		src := ASID(i)
		dst := ASID(w.NumASes() - 1 - i)
		a := w.WindowMean(src, dst, DirectOption(), 0)
		b := w.WindowMean(src, dst, DirectOption(), 21)
		if math.Abs(a.LossRate-b.LossRate) > 1e-12 {
			changed++
		}
	}
	if changed < pairs/2 {
		t.Errorf("only %d/%d pairs changed over 3 weeks; dynamics too static", changed, pairs)
	}
}

func TestBackboneIsClean(t *testing.T) {
	w := testWorld(t)
	var worstLoss, worstJit float64
	for i := 0; i < w.NumRelays(); i++ {
		for j := i + 1; j < w.NumRelays(); j++ {
			m := w.BackboneMetrics(RelayID(i), RelayID(j), 2)
			worstLoss = math.Max(worstLoss, m.LossRate)
			worstJit = math.Max(worstJit, m.JitterMs)
		}
	}
	if worstLoss > 0.005 {
		t.Errorf("backbone loss up to %v; should be near zero", worstLoss)
	}
	if worstJit > 5 {
		t.Errorf("backbone jitter up to %v ms; should be small", worstJit)
	}
	if m := w.BackboneMetrics(3, 3, 0); m != (quality.Metrics{}) {
		t.Error("self backbone should be zero")
	}
}

func TestTransitRTTBeatsDirectOnBadIntlPaths(t *testing.T) {
	// Structural sanity: across many international pairs, relaying must
	// beat the direct path a substantial fraction of the time — this is the
	// premise of the whole paper (§3.2: oracle improves ~half of poor
	// calls). We check on ground-truth window means.
	w := testWorld(t)
	relayWins := 0
	total := 0
	for i := 0; i < 60; i++ {
		src := ASID(i)
		dst := ASID(w.NumASes() - 1 - i)
		if !w.International(src, dst) {
			continue
		}
		opts := w.Options(src, dst)
		best, bestV := w.BestOption(src, dst, opts, 1, quality.RTT)
		direct := w.WindowMean(src, dst, DirectOption(), 1).RTTMs
		total++
		if best.IsRelayed() && bestV < direct {
			relayWins++
		}
	}
	if total == 0 {
		t.Fatal("no international pairs sampled")
	}
	if frac := float64(relayWins) / float64(total); frac < 0.3 {
		t.Errorf("relaying wins on RTT for only %.0f%% of intl pairs", frac*100)
	}
}

func TestSampleCallNoiseAroundMean(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(9)
	src, dst := ASID(2), ASID(130)
	opt := DirectOption()
	mean := w.WindowMean(src, dst, opt, 0)
	var rtt stats.Welford
	for i := 0; i < 3000; i++ {
		m := w.SampleCall(src, dst, opt, 5.0, rng)
		if !m.Valid() {
			t.Fatalf("invalid sample %+v", m)
		}
		rtt.Add(m.RTTMs)
	}
	// Sampled mean should be near the ground-truth mean (within ~15%: the
	// occasional Pareto spike and diurnal factor shift it slightly).
	if math.Abs(rtt.Mean-mean.RTTMs) > 0.15*mean.RTTMs {
		t.Errorf("sampled RTT mean %v vs ground truth %v", rtt.Mean, mean.RTTMs)
	}
}

func TestSampleCallDiffersAcrossCalls(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(10)
	a := w.SampleCall(1, 100, DirectOption(), 2.0, rng)
	b := w.SampleCall(1, 100, DirectOption(), 2.0, rng)
	if a == b {
		t.Error("two calls drew identical metrics; noise missing")
	}
}

func TestWindowOf(t *testing.T) {
	cases := []struct {
		h    float64
		want int
	}{{0, 0}, {23.9, 0}, {24, 1}, {47.9, 1}, {48, 2}, {240, 10}}
	for _, c := range cases {
		if got := WindowOf(c.h); got != c.want {
			t.Errorf("WindowOf(%v) = %d, want %d", c.h, got, c.want)
		}
	}
}

func TestBestOptionPicksMinimum(t *testing.T) {
	w := testWorld(t)
	opts := w.Options(0, 149)
	best, bestV := w.BestOption(0, 149, opts, 4, quality.Loss)
	for _, o := range opts {
		if v := w.WindowMean(0, 149, o, 4).LossRate; v < bestV {
			t.Errorf("BestOption missed %v (%v < %v)", o, v, bestV)
		}
	}
	_ = best
}

func TestChronicAndIntermittentSegmentsExist(t *testing.T) {
	// Fig. 6 needs a mix: some AS pairs bad most days, many bad rarely.
	w := testWorld(t)
	chronic, intermittent := 0, 0
	for i := 0; i < 120; i += 2 {
		src, dst := ASID(i), ASID(i+1)
		badDays := 0
		const days = 30
		for d := 0; d < days; d++ {
			if w.WindowMean(src, dst, DirectOption(), d).AtLeastOneBad() {
				badDays++
			}
		}
		switch {
		case badDays >= days*3/4:
			chronic++
		case badDays > 0 && badDays <= days/3:
			intermittent++
		}
	}
	if chronic == 0 {
		t.Error("no chronically bad pairs; Fig. 6 skew will not reproduce")
	}
	if intermittent == 0 {
		t.Error("no intermittently bad pairs; Fig. 6 skew will not reproduce")
	}
}

func BenchmarkWindowMeanCold(b *testing.B) {
	w := New(DefaultConfig(3))
	opts := w.Options(0, 149)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts[i%len(opts)]
		_ = w.WindowMean(0, 149, o, i) // new window each time: cache miss
	}
}

func BenchmarkWindowMeanHot(b *testing.B) {
	w := New(DefaultConfig(3))
	opt := DirectOption()
	w.WindowMean(0, 149, opt, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.WindowMean(0, 149, opt, 0)
	}
}

func BenchmarkSampleCall(b *testing.B) {
	w := New(DefaultConfig(3))
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.SampleCall(0, 149, DirectOption(), 12.0, rng)
	}
}

// Property: path composition is conservative — a relayed path's RTT equals
// the sum of its segment RTTs, its loss never exceeds the sum of segment
// losses, and all metrics stay valid.
func TestComposePathProperties(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		src := ASID(rng.IntN(w.NumASes()))
		dst := ASID(rng.IntN(w.NumASes()))
		r1 := RelayID(rng.IntN(w.NumRelays()))
		r2 := RelayID(rng.IntN(w.NumRelays()))
		window := rng.IntN(30)
		if r1 == r2 {
			continue
		}
		transit := w.WindowMean(src, dst, TransitOption(r1, r2), window)
		if !transit.Valid() {
			t.Fatalf("invalid transit metrics %+v", transit)
		}
		accS := w.AccessMetrics(src, r1, window)
		accD := w.AccessMetrics(dst, r2, window)
		bb := w.BackboneMetrics(r1, r2, window)
		sumRTT := accS.RTTMs + bb.RTTMs + accD.RTTMs
		if math.Abs(transit.RTTMs-sumRTT) > 1e-6 {
			t.Fatalf("transit RTT %v != segment sum %v", transit.RTTMs, sumRTT)
		}
		lossSum := accS.LossRate + bb.LossRate + accD.LossRate
		if transit.LossRate > lossSum+1e-9 {
			t.Fatalf("composed loss %v exceeds union bound %v", transit.LossRate, lossSum)
		}
		jitSum := accS.JitterMs + bb.JitterMs + accD.JitterMs
		if math.Abs(transit.JitterMs-jitSum) > 1e-6 {
			t.Fatalf("composed jitter %v != segment sum %v", transit.JitterMs, jitSum)
		}
	}
}

// Property: window means are cached consistently — interleaved queries from
// multiple goroutines return identical values.
func TestWindowMeanConcurrentConsistency(t *testing.T) {
	w := testWorld(t)
	opt := TransitOption(1, 5)
	want := w.WindowMean(3, 99, opt, 7)
	done := make(chan quality.Metrics, 16)
	for g := 0; g < 16; g++ {
		go func() { done <- w.WindowMean(3, 99, opt, 7) }()
	}
	for g := 0; g < 16; g++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent WindowMean mismatch: %+v vs %+v", got, want)
		}
	}
}
