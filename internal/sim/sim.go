// Package sim is the trace-driven simulator of §5.1: it replays a call
// workload in chronological order against one or more relay-selection
// strategies, realizes each assigned call's performance from the
// ground-truth world model (the analogue of sampling a random call between
// the same AS pair over the same option in the same 24-hour window), feeds
// the measurements back to the strategy, and accounts PNR, metric
// distributions, option mix, and per-class/per-country breakdowns.
//
// Common random numbers: the realized performance of (call, option) is a
// deterministic function of the call id and option, so two strategies that
// make the same decision for a call observe the same outcome — the fair
// comparison the paper's pool-sampling methodology provides.
package sim

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	Seed uint64
	// MinCallsPerWindow is the §5.1 eligibility filter: only calls on AS
	// pairs with at least this many calls in the 24-hour window are
	// evaluated (strategies still see and learn from the rest).
	MinCallsPerWindow int
	// MinOptions is the second §5.1 filter: the pair must have at least
	// this many relaying options available.
	MinOptions int
	// SeedFraction diverts a small fraction of calls to a uniformly random
	// relaying option regardless of strategy — the stand-in for the real
	// dataset's connectivity-relayed calls (NAT/firewall traversal), which
	// give every approach baseline coverage of relay paths.
	SeedFraction float64
	// CollectValues keeps per-call metric values for percentile analyses
	// (Figs. 8a, 12b). Costs memory proportional to eligible calls.
	CollectValues bool
	// ExcludeRelays removes relays from every candidate set — the relay
	// deployment sensitivity analysis of Fig. 17c.
	ExcludeRelays map[netsim.RelayID]bool
	// ActiveProbesPerWindow lets strategies implementing
	// core.ProbeRequester place that many mock calls at each 24-hour
	// window boundary (§7's active-measurement extension). Probe results
	// feed the strategy's history but are not evaluated calls.
	ActiveProbesPerWindow int
	// Workers bounds how many strategies Run replays concurrently.
	// 0 means GOMAXPROCS; 1 forces the sequential path. Because every
	// realized outcome is a pure function of (call id, option) — the
	// common-random-numbers design — results are bit-identical at any
	// worker count.
	Workers int
	// Metrics, when set, receives per-run telemetry: per-strategy call
	// throughput counters (folded in once at the end of each RunOne, never
	// on the per-call path) and the world's cache hit/miss gauges. The
	// registry only counts — it draws no randomness and reads no clock —
	// so instrumented runs stay bit-identical to uninstrumented ones.
	Metrics *obs.Registry
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		MinCallsPerWindow: 10,
		MinOptions:        5,
		SeedFraction:      0.02,
		CollectValues:     true,
	}
}

// Result aggregates one strategy's outcomes over the eligible calls.
type Result struct {
	Name     string
	Eligible int64
	PNR      quality.PNR

	// Values[m] holds per-call realized values of metric m (eligible calls
	// only), present when Config.CollectValues is set.
	Values [quality.NumMetrics][]float64

	// Option mix over eligible calls.
	Direct, Bounce, Transit int64

	// Class breakdowns.
	International, Domestic quality.PNR
	// ByCountry accumulates PNR per country for calls with at least one
	// endpoint in that country (Figs. 4b, 14).
	ByCountry map[string]*quality.PNR
	// RelayUsage counts eligible calls touching each relay (transit calls
	// count both endpoints' relays) — Fig. 17c's usage ranking.
	RelayUsage map[netsim.RelayID]int64
	// Probes counts the active measurements placed on the strategy's
	// behalf (its §7 measurement cost).
	Probes int64
}

// RelayedFraction is the share of eligible calls sent through the overlay.
func (r *Result) RelayedFraction() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Bounce+r.Transit) / float64(r.Eligible)
}

// OptionShare returns the fraction of eligible calls using each kind.
func (r *Result) OptionShare() (direct, bounce, transit float64) {
	if r.Eligible == 0 {
		return 0, 0, 0
	}
	n := float64(r.Eligible)
	return float64(r.Direct) / n, float64(r.Bounce) / n, float64(r.Transit) / n
}

// pairWindowKey identifies one (AS pair, 24h window) cell of the §5.1
// eligibility filter. Keeping the pair and window in one flat key means
// the per-call IsEligible check costs a single map hash instead of the
// two chained lookups a nested map[pair]map[window] needs.
type pairWindowKey struct {
	pair   history.PairKey
	window int32
}

// Runner replays traces against strategies. After Prepare returns, all
// Runner state is read-only (the RNG root is split, never consumed), so
// any number of RunOne calls may proceed concurrently.
type Runner struct {
	World *netsim.World
	Cfg   Config

	root *stats.RNG

	// prepMu serializes Prepare against concurrent lazy preparation; the
	// fields below are written only under it and are immutable once
	// Prepare returns, so the per-call hot path reads them without locks.
	prepMu sync.Mutex
	// eligibleSet is the flat §5.1 filter: membership means the (pair,
	// window) cell is evaluated.
	eligibleSet map[pairWindowKey]struct{}
	// pairWindows lists each eligible pair's eligible windows in
	// ascending order — the iteration form the analyses consume.
	pairWindows map[history.PairKey][]int
	// eligibleCalls counts trace records that pass the filter, giving
	// RunOne the exact capacity for Result.Values.
	eligibleCalls int
}

// NewRunner builds a runner for a world.
func NewRunner(w *netsim.World, cfg Config) *Runner {
	if cfg.MinCallsPerWindow <= 0 {
		cfg.MinCallsPerWindow = 10
	}
	if cfg.MinOptions <= 0 {
		cfg.MinOptions = 5
	}
	r := &Runner{
		World: w,
		Cfg:   cfg,
		root:  stats.NewRNG(cfg.Seed).Split("sim"),
	}
	if cfg.Metrics != nil {
		// Cache telemetry is read lazily at scrape/snapshot time from the
		// world's atomics — registering costs the replay loop nothing.
		cfg.Metrics.GaugeFunc("via_netsim_path_cache_hits",
			func() float64 { return float64(w.CacheStats().PathHits) })
		cfg.Metrics.GaugeFunc("via_netsim_path_cache_misses",
			func() float64 { return float64(w.CacheStats().PathMisses) })
		cfg.Metrics.GaugeFunc("via_netsim_segment_cache_hits",
			func() float64 { return float64(w.CacheStats().SegmentHits) })
		cfg.Metrics.GaugeFunc("via_netsim_segment_cache_misses",
			func() float64 { return float64(w.CacheStats().SegmentMisses) })
	}
	return r
}

// Prepare precomputes the eligibility filter for a trace. It must be called
// (directly or via Run) before RunOne, and must not run concurrently with
// RunOne: it replaces the read-only state RunOne's hot path consumes.
func (r *Runner) Prepare(recs []trace.CallRecord) {
	r.prepMu.Lock()
	defer r.prepMu.Unlock()
	r.prepareLocked(recs)
}

func (r *Runner) prepareLocked(recs []trace.CallRecord) {
	counts := make(map[history.PairKey]map[int]int)
	for _, c := range recs {
		pk := history.MakePairKey(c.Src, c.Dst)
		byW := counts[pk]
		if byW == nil {
			byW = make(map[int]int)
			counts[pk] = byW
		}
		byW[c.Window()]++
	}
	set := make(map[pairWindowKey]struct{}, len(counts))
	pairWindows := make(map[history.PairKey][]int, len(counts))
	eligibleCalls := 0
	for pk, byW := range counts {
		opts := r.World.Options(pk.A, pk.B)
		if len(opts) < r.Cfg.MinOptions {
			continue
		}
		for w, n := range byW {
			if n >= r.Cfg.MinCallsPerWindow {
				set[pairWindowKey{pk, int32(w)}] = struct{}{}
				pairWindows[pk] = insertSorted(pairWindows[pk], w)
				eligibleCalls += n
			}
		}
	}
	r.eligibleSet = set
	r.pairWindows = pairWindows
	r.eligibleCalls = eligibleCalls
}

// ensurePrepared lazily prepares the runner for callers that skip Prepare.
// It always takes prepMu (once per run, not per call) so concurrent first
// uses synchronize; after it returns the eligibility state is immutable
// and the per-call hot path reads it without locks.
func (r *Runner) ensurePrepared(recs []trace.CallRecord) {
	r.prepMu.Lock()
	defer r.prepMu.Unlock()
	if r.eligibleSet == nil {
		r.prepareLocked(recs)
	}
}

// insertSorted inserts w into an ascending slice, keeping it sorted.
func insertSorted(ws []int, w int) []int {
	i := len(ws)
	for i > 0 && ws[i-1] > w {
		i--
	}
	ws = append(ws, 0)
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	return ws
}

// IsEligible reports whether a call participates in evaluation.
func (r *Runner) IsEligible(c trace.CallRecord) bool {
	_, ok := r.eligibleSet[pairWindowKey{history.MakePairKey(c.Src, c.Dst), int32(c.Window())}]
	return ok
}

// EligibleCalls returns the number of trace records passing the §5.1
// filter in the prepared trace.
func (r *Runner) EligibleCalls() int { return r.eligibleCalls }

// realize draws the realized performance of assigning option opt to call c.
// It is deterministic in (call id, option): common random numbers across
// strategies.
func (r *Runner) realize(c trace.CallRecord, opt netsim.Option) quality.Metrics {
	key := uint64(c.ID)*0x9e3779b97f4a7c15 ^
		uint64(opt.Kind)<<62 ^ uint64(uint32(opt.R1))<<31 ^ uint64(uint32(opt.R2))
	rng := r.root.SplitN("realize", key)
	return r.World.SampleCall(c.Src, c.Dst, opt, c.THours, rng)
}

// seedDecision returns, deterministically per call, whether this call is a
// connectivity-relayed (seeded) call and which candidate index it uses.
func (r *Runner) seedDecision(c trace.CallRecord, nCands int) (bool, int) {
	if r.Cfg.SeedFraction <= 0 || nCands == 0 {
		return false, 0
	}
	rng := r.root.SplitN("seed", uint64(c.ID))
	if rng.Float64() >= r.Cfg.SeedFraction {
		return false, 0
	}
	return true, rng.IntN(nCands)
}

// RunOne replays the trace against a single strategy. Prepare must have
// been called with the same trace.
func (r *Runner) RunOne(s core.Strategy, recs []trace.CallRecord) *Result {
	r.ensurePrepared(recs)
	res := &Result{
		Name:       s.Name(),
		ByCountry:  make(map[string]*quality.PNR),
		RelayUsage: make(map[netsim.RelayID]int64),
	}
	if r.Cfg.CollectValues {
		// Exact-capacity preallocation from the Prepare precount: the
		// values slices are the dominant per-run allocation and must
		// never regrow mid-replay.
		for _, met := range quality.AllMetrics() {
			res.Values[met] = make([]float64, 0, r.eligibleCalls)
		}
	}
	// scratch is reused across calls by filterOptions; strategies receive
	// it read-only for the duration of Choose and never retain it.
	var scratch []netsim.Option
	prober, _ := s.(core.ProbeRequester)
	lastWindow := -1
	for _, rec := range recs {
		// Active measurements fire at window boundaries, before the
		// window's calls (the controller schedules them off-peak).
		if w := rec.Window(); w != lastWindow {
			lastWindow = w
			if prober != nil && r.Cfg.ActiveProbesPerWindow > 0 {
				res.Probes += r.placeProbes(prober, s, w, rec.THours)
			}
		}
		cands := r.World.Options(rec.Src, rec.Dst)
		if len(r.Cfg.ExcludeRelays) > 0 {
			scratch = filterOptions(scratch[:0], cands, r.Cfg.ExcludeRelays)
			cands = scratch
		}
		call := core.Call{
			Src: rec.Src, Dst: rec.Dst,
			UserSrc: rec.UserSrc, UserDst: rec.UserDst,
			THours:      rec.THours,
			DurationSec: rec.Duration,
		}

		var opt netsim.Option
		if seeded, idx := r.seedDecision(rec, len(cands)); seeded {
			opt = cands[idx]
		} else {
			opt = s.Choose(call, cands)
		}
		m := r.realize(rec, opt)
		s.Observe(call, opt, m)

		if !r.IsEligible(rec) {
			continue
		}
		res.Eligible++
		res.PNR.Add(m)
		switch opt.Kind {
		case netsim.Direct:
			res.Direct++
		case netsim.Bounce:
			res.Bounce++
			res.RelayUsage[opt.R1]++
		case netsim.Transit:
			res.Transit++
			res.RelayUsage[opt.R1]++
			res.RelayUsage[opt.R2]++
		}
		if r.Cfg.CollectValues {
			for _, met := range quality.AllMetrics() {
				res.Values[met] = append(res.Values[met], m.Get(met))
			}
		}
		if r.World.International(rec.Src, rec.Dst) {
			res.International.Add(m)
		} else {
			res.Domestic.Add(m)
		}
		countries, nc := r.callCountries(rec)
		for _, country := range countries[:nc] {
			pnr := res.ByCountry[country]
			if pnr == nil {
				pnr = &quality.PNR{}
				res.ByCountry[country] = pnr
			}
			pnr.Add(m)
		}
	}
	if reg := r.Cfg.Metrics; reg != nil {
		// One fold-in per run keeps telemetry off the per-call path.
		reg.Counter(obs.L("via_sim_calls_total", "strategy", res.Name)).Add(int64(len(recs)))
		reg.Counter(obs.L("via_sim_eligible_total", "strategy", res.Name)).Add(res.Eligible)
		reg.Counter(obs.L("via_sim_relayed_total", "strategy", res.Name)).Add(res.Bounce + res.Transit)
		reg.Counter(obs.L("via_sim_probes_total", "strategy", res.Name)).Add(res.Probes)
	}
	return res
}

// callCountries returns the distinct endpoint countries of a call in a
// fixed-size array (allocation-free: this runs once per eligible call).
func (r *Runner) callCountries(c trace.CallRecord) ([2]string, int) {
	a := r.World.CountryOf(c.Src)
	b := r.World.CountryOf(c.Dst)
	if a == b {
		return [2]string{a}, 1
	}
	return [2]string{a, b}, 2
}

// placeProbes realizes a strategy's active-measurement requests for a
// window and feeds the results back through Observe.
func (r *Runner) placeProbes(p core.ProbeRequester, s core.Strategy, window int, tHours float64) int64 {
	reqs := p.ProbeRequests(window, r.Cfg.ActiveProbesPerWindow)
	for i, req := range reqs {
		key := uint64(window)<<32 ^ uint64(i)*0x9e3779b97f4a7c15 ^ 0xabcdef
		rng := r.root.SplitN("probe", key)
		m := r.World.SampleCall(req.Src, req.Dst, req.Option, tHours, rng)
		s.Observe(core.Call{Src: req.Src, Dst: req.Dst, THours: tHours}, req.Option, m)
	}
	return int64(len(reqs))
}

// filterOptions appends the options not touching excluded relays to dst
// (the direct path always survives) and returns the extended slice. dst is
// a caller-owned scratch buffer, reused across calls.
func filterOptions(dst, cands []netsim.Option, excluded map[netsim.RelayID]bool) []netsim.Option {
	for _, o := range cands {
		switch o.Kind {
		case netsim.Bounce:
			if excluded[o.R1] {
				continue
			}
		case netsim.Transit:
			if excluded[o.R1] || excluded[o.R2] {
				continue
			}
		}
		dst = append(dst, o)
	}
	return dst
}

// workers resolves the configured run parallelism.
func (r *Runner) workers() int {
	if r.Cfg.Workers > 0 {
		return r.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run replays the trace against each strategy and returns results in the
// same order. Independent strategies are dispatched across a bounded
// worker pool (Config.Workers, default GOMAXPROCS); because realized
// outcomes are pure functions of (call id, option) — common random
// numbers — and each strategy observes only its own counterfactual, the
// results are bit-identical to a sequential replay.
func (r *Runner) Run(strategies []core.Strategy, recs []trace.CallRecord) []*Result {
	r.ensurePrepared(recs)
	out := make([]*Result, len(strategies))
	workers := r.workers()
	if workers > len(strategies) {
		workers = len(strategies)
	}
	if workers <= 1 {
		for i, s := range strategies {
			out[i] = r.RunOne(s, recs)
		}
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = r.RunOne(strategies[i], recs)
			}
		}()
	}
	for i := range strategies {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
