// Package sim is the trace-driven simulator of §5.1: it replays a call
// workload in chronological order against one or more relay-selection
// strategies, realizes each assigned call's performance from the
// ground-truth world model (the analogue of sampling a random call between
// the same AS pair over the same option in the same 24-hour window), feeds
// the measurements back to the strategy, and accounts PNR, metric
// distributions, option mix, and per-class/per-country breakdowns.
//
// Common random numbers: the realized performance of (call, option) is a
// deterministic function of the call id and option, so two strategies that
// make the same decision for a call observe the same outcome — the fair
// comparison the paper's pool-sampling methodology provides.
package sim

import (
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	Seed uint64
	// MinCallsPerWindow is the §5.1 eligibility filter: only calls on AS
	// pairs with at least this many calls in the 24-hour window are
	// evaluated (strategies still see and learn from the rest).
	MinCallsPerWindow int
	// MinOptions is the second §5.1 filter: the pair must have at least
	// this many relaying options available.
	MinOptions int
	// SeedFraction diverts a small fraction of calls to a uniformly random
	// relaying option regardless of strategy — the stand-in for the real
	// dataset's connectivity-relayed calls (NAT/firewall traversal), which
	// give every approach baseline coverage of relay paths.
	SeedFraction float64
	// CollectValues keeps per-call metric values for percentile analyses
	// (Figs. 8a, 12b). Costs memory proportional to eligible calls.
	CollectValues bool
	// ExcludeRelays removes relays from every candidate set — the relay
	// deployment sensitivity analysis of Fig. 17c.
	ExcludeRelays map[netsim.RelayID]bool
	// ActiveProbesPerWindow lets strategies implementing
	// core.ProbeRequester place that many mock calls at each 24-hour
	// window boundary (§7's active-measurement extension). Probe results
	// feed the strategy's history but are not evaluated calls.
	ActiveProbesPerWindow int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		MinCallsPerWindow: 10,
		MinOptions:        5,
		SeedFraction:      0.02,
		CollectValues:     true,
	}
}

// Result aggregates one strategy's outcomes over the eligible calls.
type Result struct {
	Name     string
	Eligible int64
	PNR      quality.PNR

	// Values[m] holds per-call realized values of metric m (eligible calls
	// only), present when Config.CollectValues is set.
	Values [quality.NumMetrics][]float64

	// Option mix over eligible calls.
	Direct, Bounce, Transit int64

	// Class breakdowns.
	International, Domestic quality.PNR
	// ByCountry accumulates PNR per country for calls with at least one
	// endpoint in that country (Figs. 4b, 14).
	ByCountry map[string]*quality.PNR
	// RelayUsage counts eligible calls touching each relay (transit calls
	// count both endpoints' relays) — Fig. 17c's usage ranking.
	RelayUsage map[netsim.RelayID]int64
	// Probes counts the active measurements placed on the strategy's
	// behalf (its §7 measurement cost).
	Probes int64
}

// RelayedFraction is the share of eligible calls sent through the overlay.
func (r *Result) RelayedFraction() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Bounce+r.Transit) / float64(r.Eligible)
}

// OptionShare returns the fraction of eligible calls using each kind.
func (r *Result) OptionShare() (direct, bounce, transit float64) {
	if r.Eligible == 0 {
		return 0, 0, 0
	}
	n := float64(r.Eligible)
	return float64(r.Direct) / n, float64(r.Bounce) / n, float64(r.Transit) / n
}

// Runner replays traces against strategies.
type Runner struct {
	World *netsim.World
	Cfg   Config

	root *stats.RNG
	// eligible[pairKey][window] — precomputed §5.1 filter.
	eligible map[history.PairKey]map[int]bool
}

// NewRunner builds a runner for a world.
func NewRunner(w *netsim.World, cfg Config) *Runner {
	if cfg.MinCallsPerWindow <= 0 {
		cfg.MinCallsPerWindow = 10
	}
	if cfg.MinOptions <= 0 {
		cfg.MinOptions = 5
	}
	return &Runner{
		World: w,
		Cfg:   cfg,
		root:  stats.NewRNG(cfg.Seed).Split("sim"),
	}
}

// Prepare precomputes the eligibility filter for a trace. It must be called
// (directly or via Run) before RunOne.
func (r *Runner) Prepare(recs []trace.CallRecord) {
	counts := make(map[history.PairKey]map[int]int)
	for _, c := range recs {
		pk := history.MakePairKey(c.Src, c.Dst)
		byW := counts[pk]
		if byW == nil {
			byW = make(map[int]int)
			counts[pk] = byW
		}
		byW[c.Window()]++
	}
	r.eligible = make(map[history.PairKey]map[int]bool, len(counts))
	for pk, byW := range counts {
		opts := r.World.Options(pk.A, pk.B)
		if len(opts) < r.Cfg.MinOptions {
			continue
		}
		for w, n := range byW {
			if n >= r.Cfg.MinCallsPerWindow {
				m := r.eligible[pk]
				if m == nil {
					m = make(map[int]bool)
					r.eligible[pk] = m
				}
				m[w] = true
			}
		}
	}
}

// IsEligible reports whether a call participates in evaluation.
func (r *Runner) IsEligible(c trace.CallRecord) bool {
	byW := r.eligible[history.MakePairKey(c.Src, c.Dst)]
	return byW != nil && byW[c.Window()]
}

// realize draws the realized performance of assigning option opt to call c.
// It is deterministic in (call id, option): common random numbers across
// strategies.
func (r *Runner) realize(c trace.CallRecord, opt netsim.Option) quality.Metrics {
	key := uint64(c.ID)*0x9e3779b97f4a7c15 ^
		uint64(opt.Kind)<<62 ^ uint64(uint32(opt.R1))<<31 ^ uint64(uint32(opt.R2))
	rng := r.root.SplitN("realize", key)
	return r.World.SampleCall(c.Src, c.Dst, opt, c.THours, rng)
}

// seedDecision returns, deterministically per call, whether this call is a
// connectivity-relayed (seeded) call and which candidate index it uses.
func (r *Runner) seedDecision(c trace.CallRecord, nCands int) (bool, int) {
	if r.Cfg.SeedFraction <= 0 || nCands == 0 {
		return false, 0
	}
	rng := r.root.SplitN("seed", uint64(c.ID))
	if rng.Float64() >= r.Cfg.SeedFraction {
		return false, 0
	}
	return true, rng.IntN(nCands)
}

// RunOne replays the trace against a single strategy. Prepare must have
// been called with the same trace.
func (r *Runner) RunOne(s core.Strategy, recs []trace.CallRecord) *Result {
	if r.eligible == nil {
		r.Prepare(recs)
	}
	res := &Result{
		Name:       s.Name(),
		ByCountry:  make(map[string]*quality.PNR),
		RelayUsage: make(map[netsim.RelayID]int64),
	}
	prober, _ := s.(core.ProbeRequester)
	lastWindow := -1
	for _, rec := range recs {
		// Active measurements fire at window boundaries, before the
		// window's calls (the controller schedules them off-peak).
		if w := rec.Window(); w != lastWindow {
			lastWindow = w
			if prober != nil && r.Cfg.ActiveProbesPerWindow > 0 {
				res.Probes += r.placeProbes(prober, s, w, rec.THours)
			}
		}
		cands := r.World.Options(rec.Src, rec.Dst)
		if len(r.Cfg.ExcludeRelays) > 0 {
			cands = filterOptions(cands, r.Cfg.ExcludeRelays)
		}
		call := core.Call{
			Src: rec.Src, Dst: rec.Dst,
			UserSrc: rec.UserSrc, UserDst: rec.UserDst,
			THours:      rec.THours,
			DurationSec: rec.Duration,
		}

		var opt netsim.Option
		if seeded, idx := r.seedDecision(rec, len(cands)); seeded {
			opt = cands[idx]
		} else {
			opt = s.Choose(call, cands)
		}
		m := r.realize(rec, opt)
		s.Observe(call, opt, m)

		if !r.IsEligible(rec) {
			continue
		}
		res.Eligible++
		res.PNR.Add(m)
		switch opt.Kind {
		case netsim.Direct:
			res.Direct++
		case netsim.Bounce:
			res.Bounce++
			res.RelayUsage[opt.R1]++
		case netsim.Transit:
			res.Transit++
			res.RelayUsage[opt.R1]++
			res.RelayUsage[opt.R2]++
		}
		if r.Cfg.CollectValues {
			for _, met := range quality.AllMetrics() {
				res.Values[met] = append(res.Values[met], m.Get(met))
			}
		}
		if r.World.International(rec.Src, rec.Dst) {
			res.International.Add(m)
		} else {
			res.Domestic.Add(m)
		}
		for _, country := range r.callCountries(rec) {
			pnr := res.ByCountry[country]
			if pnr == nil {
				pnr = &quality.PNR{}
				res.ByCountry[country] = pnr
			}
			pnr.Add(m)
		}
	}
	return res
}

func (r *Runner) callCountries(c trace.CallRecord) []string {
	a := r.World.CountryOf(c.Src)
	b := r.World.CountryOf(c.Dst)
	if a == b {
		return []string{a}
	}
	return []string{a, b}
}

// placeProbes realizes a strategy's active-measurement requests for a
// window and feeds the results back through Observe.
func (r *Runner) placeProbes(p core.ProbeRequester, s core.Strategy, window int, tHours float64) int64 {
	reqs := p.ProbeRequests(window, r.Cfg.ActiveProbesPerWindow)
	for i, req := range reqs {
		key := uint64(window)<<32 ^ uint64(i)*0x9e3779b97f4a7c15 ^ 0xabcdef
		rng := r.root.SplitN("probe", key)
		m := r.World.SampleCall(req.Src, req.Dst, req.Option, tHours, rng)
		s.Observe(core.Call{Src: req.Src, Dst: req.Dst, THours: tHours}, req.Option, m)
	}
	return int64(len(reqs))
}

// filterOptions drops options touching excluded relays, always keeping the
// direct path.
func filterOptions(cands []netsim.Option, excluded map[netsim.RelayID]bool) []netsim.Option {
	out := make([]netsim.Option, 0, len(cands))
	for _, o := range cands {
		switch o.Kind {
		case netsim.Bounce:
			if excluded[o.R1] {
				continue
			}
		case netsim.Transit:
			if excluded[o.R1] || excluded[o.R2] {
				continue
			}
		}
		out = append(out, o)
	}
	return out
}

// Run replays the trace against each strategy in turn and returns results
// in the same order.
func (r *Runner) Run(strategies []core.Strategy, recs []trace.CallRecord) []*Result {
	r.Prepare(recs)
	out := make([]*Result, len(strategies))
	for i, s := range strategies {
		out[i] = r.RunOne(s, recs)
	}
	return out
}
