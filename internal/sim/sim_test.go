package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/trace"
)

func testWorldTrace(t testing.TB, calls int) (*netsim.World, []trace.CallRecord) {
	t.Helper()
	w := netsim.New(netsim.DefaultConfig(1))
	recs := trace.NewGenerator(w, trace.DefaultConfig(2, calls)).GenerateSlice()
	return w, recs
}

func TestPrepareEligibility(t *testing.T) {
	w, recs := testWorldTrace(t, 40000)
	r := NewRunner(w, DefaultConfig(3))
	r.Prepare(recs)

	pairs := r.EligiblePairs()
	if len(pairs) == 0 {
		t.Fatal("no eligible pairs")
	}
	// Every eligible (pair, window) must really have >= MinCallsPerWindow
	// calls in the trace.
	byKey := map[string]int{}
	for _, c := range recs {
		byKey[keyOf(c)]++
	}
	checked := 0
	for _, c := range recs {
		if r.IsEligible(c) {
			if byKey[keyOf(c)] < r.Cfg.MinCallsPerWindow {
				t.Fatalf("eligible call on sparse pair-window (%d calls)", byKey[keyOf(c)])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no eligible calls")
	}
	// There must also be ineligible calls (the long tail).
	if checked == len(recs) {
		t.Error("every call eligible; filter not active")
	}
}

func keyOf(c trace.CallRecord) string {
	a, b := c.Src, c.Dst
	if a > b {
		a, b = b, a
	}
	return string(rune(a)) + "|" + string(rune(b)) + "|" + string(rune(c.Window()))
}

func TestRealizeCommonRandomNumbers(t *testing.T) {
	w, recs := testWorldTrace(t, 100)
	r := NewRunner(w, DefaultConfig(3))
	c := recs[10]
	opt := netsim.BounceOption(2)
	a := r.realize(c, opt)
	b := r.realize(c, opt)
	if a != b {
		t.Error("realize not deterministic per (call, option)")
	}
	if r.realize(c, netsim.BounceOption(3)) == a {
		t.Error("different options should realize differently")
	}
	if r.realize(recs[11], opt) == a {
		t.Error("different calls should realize differently")
	}
}

func TestSeedFractionApplied(t *testing.T) {
	w, recs := testWorldTrace(t, 40000)
	cfg := DefaultConfig(3)
	cfg.SeedFraction = 0.10
	r := NewRunner(w, cfg)
	res := r.RunOne(core.DefaultStrategy{}, recs)
	// The default strategy never relays, so every relayed eligible call is
	// a seeded one. Expect roughly SeedFraction × (1 − 1/|options|).
	frac := res.RelayedFraction()
	if frac < 0.05 || frac > 0.13 {
		t.Errorf("seeded relay fraction = %v, want ~0.095", frac)
	}
	// Option mix counters add up.
	if res.Direct+res.Bounce+res.Transit != res.Eligible {
		t.Error("option mix does not sum to eligible calls")
	}
}

func TestNoSeedingWhenDisabled(t *testing.T) {
	w, recs := testWorldTrace(t, 20000)
	cfg := DefaultConfig(3)
	cfg.SeedFraction = 0
	r := NewRunner(w, cfg)
	res := r.RunOne(core.DefaultStrategy{}, recs)
	if res.RelayedFraction() != 0 {
		t.Errorf("default strategy relayed %v with seeding off", res.RelayedFraction())
	}
}

func TestCollectValues(t *testing.T) {
	w, recs := testWorldTrace(t, 20000)
	cfg := DefaultConfig(3)
	cfg.CollectValues = true
	r := NewRunner(w, cfg)
	res := r.RunOne(core.DefaultStrategy{}, recs)
	for _, m := range quality.AllMetrics() {
		if int64(len(res.Values[m])) != res.Eligible {
			t.Errorf("values[%v] length %d != eligible %d", m, len(res.Values[m]), res.Eligible)
		}
	}
	cfg.CollectValues = false
	r2 := NewRunner(w, cfg)
	res2 := r2.RunOne(core.DefaultStrategy{}, recs)
	if len(res2.Values[quality.RTT]) != 0 {
		t.Error("values collected despite CollectValues=false")
	}
}

func TestClassBreakdownsConsistent(t *testing.T) {
	w, recs := testWorldTrace(t, 30000)
	r := NewRunner(w, DefaultConfig(3))
	res := r.RunOne(core.DefaultStrategy{}, recs)
	if res.International.Total+res.Domestic.Total != res.Eligible {
		t.Error("intl+domestic != eligible")
	}
	var byCountry int64
	for _, pnr := range res.ByCountry {
		byCountry += pnr.Total
	}
	// Each international call counts in two countries, domestic in one.
	want := res.Domestic.Total + 2*res.International.Total
	if byCountry != want {
		t.Errorf("country totals %d, want %d", byCountry, want)
	}
}

func TestOracleImprovesEverything(t *testing.T) {
	w, recs := testWorldTrace(t, 60000)
	r := NewRunner(w, DefaultConfig(3))
	results := r.Run([]core.Strategy{
		core.DefaultStrategy{},
		core.NewOracle(w, quality.RTT),
	}, recs)
	def, orc := results[0], results[1]
	if orc.PNR.Rate(quality.RTT) >= def.PNR.Rate(quality.RTT)*0.5 {
		t.Errorf("oracle RTT PNR %v vs default %v; want large reduction",
			orc.PNR.Rate(quality.RTT), def.PNR.Rate(quality.RTT))
	}
	red := quality.RelativeImprovement(def.PNR.AtLeastOneBadRate(), orc.PNR.AtLeastOneBadRate())
	// §3.2: the oracle cuts at-least-one-bad PNR by over 30%.
	if red < 30 {
		t.Errorf("oracle at-least-one-bad reduction = %.1f%%, want > 30%%", red)
	}
}

func TestViaOrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy comparison is slow")
	}
	// Figure 12a's shape: default < strawmen < via <= oracle on PNR
	// reduction for the target metric.
	w, recs := testWorldTrace(t, 120000)
	m := quality.RTT
	r := NewRunner(w, DefaultConfig(3))
	results := r.Run([]core.Strategy{
		core.DefaultStrategy{},
		core.NewOracle(w, m),
		core.NewPredictOnly(m, w),
		core.NewExploreOnly(m, 0.1, 5),
		core.NewVia(core.DefaultViaConfig(m), w),
	}, recs)
	base := results[0].PNR.AtLeastOneBadRate()
	red := func(i int) float64 {
		return quality.RelativeImprovement(base, results[i].PNR.AtLeastOneBadRate())
	}
	oracle, predict, explore, via := red(1), red(2), red(3), red(4)
	if !(via > predict && via > explore) {
		t.Errorf("via (%.1f%%) must beat strawmen (predict %.1f%%, explore %.1f%%)", via, predict, explore)
	}
	if via < 0.6*oracle {
		t.Errorf("via (%.1f%%) should be close to oracle (%.1f%%)", via, oracle)
	}
	if oracle < 30 {
		t.Errorf("oracle reduction %.1f%% below the paper's >30%%", oracle)
	}
	// §5.2: Via sends most calls through relays, split across bounce and
	// transit, with a small direct remainder.
	_, bounce, transit := results[4].OptionShare()
	if bounce == 0 || transit == 0 {
		t.Error("via should use both bounce and transit relays")
	}
}

func TestBestOptionPersistence(t *testing.T) {
	w, recs := testWorldTrace(t, 60000)
	r := NewRunner(w, DefaultConfig(3))
	r.Prepare(recs)
	per := BestOptionPersistence(w, recs, r, quality.RTT)
	if len(per) == 0 {
		t.Fatal("no persistence data")
	}
	for _, v := range per {
		if v < 1 || math.IsNaN(v) {
			t.Fatalf("bad persistence value %v", v)
		}
	}
	// Fig. 9's point: the best option changes within days for a sizable
	// fraction of pairs — so not all medians can be huge.
	short := 0
	for _, v := range per {
		if v <= 2 {
			short++
		}
	}
	if short == 0 {
		t.Error("no pair has short-lived best options; dynamics missing")
	}
}

func TestEligibleWindowsSorted(t *testing.T) {
	w, recs := testWorldTrace(t, 40000)
	r := NewRunner(w, DefaultConfig(3))
	r.Prepare(recs)
	pairs := r.EligiblePairs()
	if len(pairs) == 0 {
		t.Skip("no eligible pairs at this scale")
	}
	ws := r.EligibleWindows(pairs[0])
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatal("windows not strictly ascending")
		}
	}
}

func TestRelayUsageAndExclusion(t *testing.T) {
	w, recs := testWorldTrace(t, 30000)
	cfg := DefaultConfig(3)
	cfg.SeedFraction = 0.2 // plenty of relayed calls even for default strategy
	r := NewRunner(w, cfg)
	res := r.RunOne(core.DefaultStrategy{}, recs)
	if len(res.RelayUsage) == 0 {
		t.Fatal("no relay usage recorded")
	}
	var used int64
	for _, n := range res.RelayUsage {
		used += n
	}
	if used < res.Bounce+res.Transit {
		t.Errorf("usage %d below relayed calls %d", used, res.Bounce+res.Transit)
	}

	// Exclude every relay that was used: no relayed eligible calls remain.
	cfg.ExcludeRelays = map[netsim.RelayID]bool{}
	for i := 0; i < w.NumRelays(); i++ {
		cfg.ExcludeRelays[netsim.RelayID(i)] = true
	}
	r2 := NewRunner(w, cfg)
	res2 := r2.RunOne(core.DefaultStrategy{}, recs)
	if res2.Bounce+res2.Transit != 0 {
		t.Errorf("excluded relays still used: %d", res2.Bounce+res2.Transit)
	}
}

func TestActiveProbesImproveVia(t *testing.T) {
	if testing.Short() {
		t.Skip("active-probe comparison is slow")
	}
	w, recs := testWorldTrace(t, 60000)
	m := quality.RTT

	run := func(probes int) *Result {
		cfg := DefaultConfig(3)
		cfg.ActiveProbesPerWindow = probes
		r := NewRunner(w, cfg)
		r.Prepare(recs)
		return r.RunOne(core.NewVia(core.DefaultViaConfig(m), w), recs)
	}
	without := run(0)
	with := run(400)
	if without.Probes != 0 {
		t.Errorf("probes placed with budget 0: %d", without.Probes)
	}
	if with.Probes == 0 {
		t.Fatal("no probes placed despite budget")
	}
	// Probes fill coverage holes; they must not hurt, and typically help.
	if with.PNR.Rate(m) > without.PNR.Rate(m)*1.08 {
		t.Errorf("probes degraded PNR: %.4f -> %.4f", without.PNR.Rate(m), with.PNR.Rate(m))
	}
	t.Logf("PNR(%s): without probes %.4f, with probes %.4f (%d probes)",
		m, without.PNR.Rate(m), with.PNR.Rate(m), with.Probes)
}
