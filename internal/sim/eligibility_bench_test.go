package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// benchFixture builds one shared world/trace/runner for the eligibility
// benchmarks (construction dominates otherwise).
var benchFix struct {
	w    *netsim.World
	recs []trace.CallRecord
	r    *Runner
}

func benchSetup(b *testing.B) {
	b.Helper()
	if benchFix.r == nil {
		benchFix.w = netsim.New(netsim.DefaultConfig(1))
		benchFix.recs = trace.NewGenerator(benchFix.w, trace.DefaultConfig(2, 60000)).GenerateSlice()
		benchFix.r = NewRunner(benchFix.w, DefaultConfig(3))
		benchFix.r.Prepare(benchFix.recs)
	}
}

// BenchmarkEligibilityFlat measures the production per-call filter check:
// one flat pairWindowKey map hash per lookup.
func BenchmarkEligibilityFlat(b *testing.B) {
	benchSetup(b)
	r, recs := benchFix.r, benchFix.recs
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if r.IsEligible(recs[i%len(recs)]) {
			hits++
		}
	}
	sinkInt = hits
}

// BenchmarkEligibilityNested measures the pre-optimization shape — nested
// map[pair]map[window] with two chained hashes per lookup — as the
// comparison baseline for the flat-key change.
func BenchmarkEligibilityNested(b *testing.B) {
	benchSetup(b)
	r, recs := benchFix.r, benchFix.recs
	nested := nestedEligibility(benchFix.w, r.Cfg, recs)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		c := recs[i%len(recs)]
		byW := nested[history.MakePairKey(c.Src, c.Dst)]
		if byW != nil && byW[c.Window()] {
			hits++
		}
	}
	sinkInt = hits
}

// BenchmarkRunOneDefault measures a full single-strategy replay (the unit
// the parallel fan-out distributes), including the per-call allocation
// profile RunOne's preallocation work targets.
func BenchmarkRunOneDefault(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchFix.r.RunOne(core.DefaultStrategy{}, benchFix.recs)
	}
}

// sinkInt defeats dead-code elimination in benchmarks.
var sinkInt int
