package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/trace"
)

// TestRunParallelMatchesSequential asserts the engine's central concurrency
// invariant: Runner.Run with a worker pool produces bit-identical Results
// to a forced-sequential replay, for multiple strategies at multiple
// seeds. Common random numbers make this possible — every realized outcome
// is a pure function of (call id, option) — and the race detector (this
// test runs under `make race`) covers the memory-safety half.
func TestRunParallelMatchesSequential(t *testing.T) {
	calls := 20000
	if testing.Short() {
		calls = 6000
	}
	m := quality.RTT
	for _, seed := range []uint64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := netsim.New(netsim.DefaultConfig(seed))
			recs := trace.NewGenerator(w, trace.DefaultConfig(seed+1, calls)).GenerateSlice()
			// Strategies are stateful (they learn from observations), so
			// each replay needs a fresh, identically-constructed set.
			mkStrategies := func() []core.Strategy {
				return []core.Strategy{
					core.DefaultStrategy{},
					core.NewOracle(w, m),
					core.NewExploreOnly(m, 0.1, seed+7),
					core.NewVia(core.DefaultViaConfig(m), w),
				}
			}
			seqCfg := DefaultConfig(seed + 2)
			seqCfg.Workers = 1
			seq := NewRunner(w, seqCfg).Run(mkStrategies(), recs)

			parCfg := DefaultConfig(seed + 2)
			parCfg.Workers = 4
			par := NewRunner(w, parCfg).Run(mkStrategies(), recs)

			if len(seq) != len(par) {
				t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
			}
			for i := range seq {
				if !reflect.DeepEqual(seq[i], par[i]) {
					t.Errorf("strategy %q: parallel result differs from sequential", seq[i].Name)
				}
			}
		})
	}
}

// TestEligibilityFlatMatchesNested rebuilds the §5.1 filter the way the
// pre-flat code did — nested map[pair]map[window] — and checks the flat
// pairWindowKey set agrees on every trace record.
func TestEligibilityFlatMatchesNested(t *testing.T) {
	w, recs := testWorldTrace(t, 40000)
	r := NewRunner(w, DefaultConfig(3))
	r.Prepare(recs)

	nested := nestedEligibility(w, r.Cfg, recs)
	for _, c := range recs {
		want := nested[history.MakePairKey(c.Src, c.Dst)][c.Window()]
		if got := r.IsEligible(c); got != want {
			t.Fatalf("IsEligible(%v) = %v, nested reference says %v", c.ID, got, want)
		}
	}

	// The precount must equal the number of records passing the filter.
	count := 0
	for _, c := range recs {
		if r.IsEligible(c) {
			count++
		}
	}
	if count != r.EligibleCalls() {
		t.Errorf("EligibleCalls() = %d, counted %d", r.EligibleCalls(), count)
	}
}

// nestedEligibility is the reference (pre-optimization) filter shape, used
// by tests and the comparison benchmark.
func nestedEligibility(w *netsim.World, cfg Config, recs []trace.CallRecord) map[history.PairKey]map[int]bool {
	counts := make(map[history.PairKey]map[int]int)
	for _, c := range recs {
		pk := history.MakePairKey(c.Src, c.Dst)
		byW := counts[pk]
		if byW == nil {
			byW = make(map[int]int)
			counts[pk] = byW
		}
		byW[c.Window()]++
	}
	eligible := make(map[history.PairKey]map[int]bool, len(counts))
	for pk, byW := range counts {
		if len(w.Options(pk.A, pk.B)) < cfg.MinOptions {
			continue
		}
		for win, n := range byW {
			if n >= cfg.MinCallsPerWindow {
				m := eligible[pk]
				if m == nil {
					m = make(map[int]bool)
					eligible[pk] = m
				}
				m[win] = true
			}
		}
	}
	return eligible
}
