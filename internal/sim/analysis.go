package sim

import (
	"sort"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/trace"
)

// BestOptionPersistence computes, for each eligible AS pair, the median
// number of consecutive windows during which the oracle's best relaying
// option stays the same (Figure 9). The returned slice has one entry per
// pair with at least two eligible windows.
func BestOptionPersistence(w *netsim.World, recs []trace.CallRecord, r *Runner, m quality.Metric) []float64 {
	if r.eligible == nil {
		r.Prepare(recs)
	}
	var out []float64
	for pk, byW := range r.eligible {
		windows := make([]int, 0, len(byW))
		for win, ok := range byW {
			if ok {
				windows = append(windows, win)
			}
		}
		if len(windows) < 2 {
			continue
		}
		sort.Ints(windows)
		cands := w.Options(pk.A, pk.B)
		var runs []float64
		run := 1
		prev, _ := w.BestOption(pk.A, pk.B, cands, windows[0], m)
		for i := 1; i < len(windows); i++ {
			best, _ := w.BestOption(pk.A, pk.B, cands, windows[i], m)
			if best == prev && windows[i] == windows[i-1]+1 {
				run++
			} else {
				runs = append(runs, float64(run))
				run = 1
				prev = best
			}
		}
		runs = append(runs, float64(run))
		sort.Float64s(runs)
		out = append(out, runs[len(runs)/2])
	}
	sort.Float64s(out)
	return out
}

// EligiblePairs returns the pairs passing the §5.1 filters in any window.
func (r *Runner) EligiblePairs() []history.PairKey {
	out := make([]history.PairKey, 0, len(r.eligible))
	for pk := range r.eligible {
		out = append(out, pk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// EligibleWindows returns the eligible windows for one pair, ascending.
func (r *Runner) EligibleWindows(pk history.PairKey) []int {
	byW := r.eligible[pk]
	out := make([]int, 0, len(byW))
	for w, ok := range byW {
		if ok {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}
