package sim

import (
	"sort"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/trace"
)

// BestOptionPersistence computes, for each eligible AS pair, the median
// number of consecutive windows during which the oracle's best relaying
// option stays the same (Figure 9). The returned slice has one entry per
// pair with at least two eligible windows.
func BestOptionPersistence(w *netsim.World, recs []trace.CallRecord, r *Runner, m quality.Metric) []float64 {
	r.ensurePrepared(recs)
	var out []float64
	for pk, windows := range r.pairWindows {
		if len(windows) < 2 {
			continue
		}
		cands := w.Options(pk.A, pk.B)
		var runs []float64
		run := 1
		prev, _ := w.BestOption(pk.A, pk.B, cands, windows[0], m)
		for i := 1; i < len(windows); i++ {
			best, _ := w.BestOption(pk.A, pk.B, cands, windows[i], m)
			if best == prev && windows[i] == windows[i-1]+1 {
				run++
			} else {
				runs = append(runs, float64(run))
				run = 1
				prev = best
			}
		}
		runs = append(runs, float64(run))
		sort.Float64s(runs)
		out = append(out, runs[len(runs)/2])
	}
	sort.Float64s(out)
	return out
}

// EligiblePairs returns the pairs passing the §5.1 filters in any window.
func (r *Runner) EligiblePairs() []history.PairKey {
	out := make([]history.PairKey, 0, len(r.pairWindows))
	for pk := range r.pairWindows {
		out = append(out, pk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// EligibleWindows returns the eligible windows for one pair, ascending.
func (r *Runner) EligibleWindows(pk history.PairKey) []int {
	ws := r.pairWindows[pk]
	out := make([]int, len(ws))
	copy(out, ws)
	return out
}
