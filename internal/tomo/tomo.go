// Package tomo implements the linear network tomography of §4.4: combining
// end-to-end measurements over partially overlapping relay paths to estimate
// the performance of the individual network segments (client-AS↔relay legs),
// then stitching segment estimates back together to predict the performance
// of relay paths that have no direct call history.
//
// Metrics must compose linearly over a path. RTT and (approximately) jitter
// already do; loss rate is linearized via x = −ln(1−p), which is additive
// under the independence assumption the paper makes ([12]).
//
// The estimator solves the weighted least-squares system
//
//	minimize Σᵢ wᵢ (Σ_{j∈Sᵢ} x_j − yᵢ)²  subject to x ≥ 0
//
// by projected coordinate descent (Gauss–Seidel), which converges quickly on
// these sparse, diagonally dominant systems and needs no matrix package.
package tomo

import (
	"math"
)

// LinearizeLoss maps a loss rate p∈[0,1) to its additive form −ln(1−p).
// Values ≥ 1 are clamped just below 1 to keep the result finite.
func LinearizeLoss(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 0.999999 {
		p = 0.999999
	}
	return -math.Log(1 - p)
}

// DelinearizeLoss inverts LinearizeLoss: p = 1 − e^(−x).
func DelinearizeLoss(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return 1 - math.Exp(-x)
}

// Observation is one end-to-end measurement of a path made of known
// segments: Value is the (linearized) path metric, Weight the confidence
// (typically the sample count behind the aggregate).
type Observation struct {
	Segments []int
	Value    float64
	Weight   float64
}

// Solver estimates per-segment values from path observations.
type Solver struct {
	n   int
	obs []Observation
	// bySeg[j] lists the indices of observations touching segment j.
	bySeg [][]int
}

// NewSolver creates a solver over n segments, indexed 0..n-1.
func NewSolver(n int) *Solver {
	if n <= 0 {
		panic("tomo: need at least one segment")
	}
	return &Solver{n: n, bySeg: make([][]int, n)}
}

// AddObservation records one path measurement. Segments outside [0, n) or
// non-positive weights panic: they indicate a caller bug, not data noise.
func (s *Solver) AddObservation(segments []int, value, weight float64) {
	if weight <= 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		panic("tomo: observation needs positive weight and finite value")
	}
	idx := len(s.obs)
	segs := make([]int, len(segments))
	copy(segs, segments)
	for _, j := range segs {
		if j < 0 || j >= s.n {
			panic("tomo: segment index out of range")
		}
		s.bySeg[j] = append(s.bySeg[j], idx)
	}
	s.obs = append(s.obs, Observation{Segments: segs, Value: value, Weight: weight})
}

// NumObservations returns the number of recorded observations.
func (s *Solver) NumObservations() int { return len(s.obs) }

// Result holds the solved segment estimates and quality information.
type Result struct {
	// Estimate[j] is the solved (linearized) value of segment j; segments
	// with no observations stay 0 and are flagged in Covered.
	Estimate []float64
	// Covered[j] reports whether any observation touched segment j.
	Covered []bool
	// SEM[j] approximates the standard error of segment j's estimate from
	// the weighted residuals of the observations touching it.
	SEM []float64
	// Iterations actually run and the final mean absolute residual.
	Iterations   int
	MeanAbsResid float64
}

// Solve runs projected coordinate descent for at most maxIters sweeps,
// stopping early when the largest coordinate update falls below tol.
func (s *Solver) Solve(maxIters int, tol float64) *Result {
	if maxIters <= 0 {
		maxIters = 50
	}
	if tol <= 0 {
		tol = 1e-9
	}
	x := make([]float64, s.n)

	// Initialize each segment with a proportional share of its
	// observations' values — a good warm start that also seeds
	// single-segment observations exactly.
	for j := 0; j < s.n; j++ {
		var sum, wsum float64
		for _, oi := range s.bySeg[j] {
			o := s.obs[oi]
			sum += o.Weight * o.Value / float64(len(o.Segments))
			wsum += o.Weight
		}
		if wsum > 0 {
			x[j] = sum / wsum
		}
	}

	iters := 0
	for ; iters < maxIters; iters++ {
		maxDelta := 0.0
		for j := 0; j < s.n; j++ {
			if len(s.bySeg[j]) == 0 {
				continue
			}
			var num, den float64
			for _, oi := range s.bySeg[j] {
				o := s.obs[oi]
				rest := 0.0
				for _, k := range o.Segments {
					if k != j {
						rest += x[k]
					}
				}
				num += o.Weight * (o.Value - rest)
				den += o.Weight
			}
			nv := num / den
			if nv < 0 {
				nv = 0
			}
			if d := math.Abs(nv - x[j]); d > maxDelta {
				maxDelta = d
			}
			x[j] = nv
		}
		if maxDelta < tol {
			iters++
			break
		}
	}

	res := &Result{
		Estimate:   x,
		Covered:    make([]bool, s.n),
		SEM:        make([]float64, s.n),
		Iterations: iters,
	}
	for j := 0; j < s.n; j++ {
		res.Covered[j] = len(s.bySeg[j]) > 0
	}

	// Residual diagnostics and per-segment SEM: attribute each
	// observation's squared residual to its segments, weighted, and divide
	// by the effective observation count.
	var absSum float64
	for _, o := range s.obs {
		pred := 0.0
		for _, k := range o.Segments {
			pred += x[k]
		}
		absSum += math.Abs(pred - o.Value)
	}
	if len(s.obs) > 0 {
		res.MeanAbsResid = absSum / float64(len(s.obs))
	}
	for j := 0; j < s.n; j++ {
		ois := s.bySeg[j]
		if len(ois) == 0 {
			continue
		}
		var rss, wsum float64
		for _, oi := range ois {
			o := s.obs[oi]
			pred := 0.0
			for _, k := range o.Segments {
				pred += x[k]
			}
			r := pred - o.Value
			rss += o.Weight * r * r
			wsum += o.Weight
		}
		if wsum > 0 && len(ois) > 1 {
			res.SEM[j] = math.Sqrt(rss/wsum) / math.Sqrt(float64(len(ois)))
		} else {
			// One observation gives no residual information; report the
			// estimate itself as the uncertainty so downstream confidence
			// intervals stay wide.
			res.SEM[j] = x[j]
		}
	}
	return res
}

// PredictPath sums segment estimates over a path and propagates SEM in
// quadrature. It returns ok=false if any segment is uncovered.
func (r *Result) PredictPath(segments []int) (value, sem float64, ok bool) {
	var v, s2 float64
	for _, j := range segments {
		if j < 0 || j >= len(r.Estimate) || !r.Covered[j] {
			return 0, 0, false
		}
		v += r.Estimate[j]
		s2 += r.SEM[j] * r.SEM[j]
	}
	return v, math.Sqrt(s2), true
}
