package tomo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestLinearizeLossRoundTrip(t *testing.T) {
	for _, p := range []float64{0, 0.001, 0.012, 0.1, 0.5, 0.9} {
		x := LinearizeLoss(p)
		back := DelinearizeLoss(x)
		if math.Abs(back-p) > 1e-12 {
			t.Errorf("round trip %v -> %v -> %v", p, x, back)
		}
	}
}

func TestLinearizeLossAdditive(t *testing.T) {
	// Two independent segments with losses p1, p2 compose to
	// 1-(1-p1)(1-p2); the linearized values must add exactly.
	p1, p2 := 0.02, 0.05
	composed := 1 - (1-p1)*(1-p2)
	if got := LinearizeLoss(p1) + LinearizeLoss(p2); math.Abs(got-LinearizeLoss(composed)) > 1e-12 {
		t.Errorf("linearized losses do not add: %v vs %v", got, LinearizeLoss(composed))
	}
}

func TestLinearizeLossClamps(t *testing.T) {
	if LinearizeLoss(-0.5) != 0 {
		t.Error("negative loss should clamp to 0")
	}
	if v := LinearizeLoss(1.5); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Error("loss >= 1 should stay finite")
	}
	if DelinearizeLoss(-3) != 0 {
		t.Error("negative linearized value should clamp")
	}
}

func TestSolverExactSystem(t *testing.T) {
	// Three segments, exact observations: x0+x1=5, x1+x2=7, x0+x2=6
	// → x = (2, 3, 4).
	s := NewSolver(3)
	s.AddObservation([]int{0, 1}, 5, 1)
	s.AddObservation([]int{1, 2}, 7, 1)
	s.AddObservation([]int{0, 2}, 6, 1)
	r := s.Solve(200, 1e-12)
	want := []float64{2, 3, 4}
	for j, w := range want {
		if math.Abs(r.Estimate[j]-w) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", j, r.Estimate[j], w)
		}
	}
	if r.MeanAbsResid > 1e-6 {
		t.Errorf("residual = %v on an exact system", r.MeanAbsResid)
	}
}

func TestSolverFigure11Stitching(t *testing.T) {
	// The paper's Figure 11: estimate RTT(AS3↔AS4) through relay RN having
	// seen AS1↔RN↔AS4, AS2↔RN↔AS3 and AS1↔RN↔AS2. Segments: AS1-RN=10,
	// AS2-RN=20, AS3-RN=30, AS4-RN=40.
	s := NewSolver(4)
	s.AddObservation([]int{0, 3}, 50, 5) // AS1↔RN↔AS4
	s.AddObservation([]int{1, 2}, 50, 5) // AS2↔RN↔AS3
	s.AddObservation([]int{0, 1}, 30, 5) // AS1↔RN↔AS2
	r := s.Solve(300, 1e-12)
	// The unseen path AS3↔RN↔AS4 should predict 30+40=70 = 50+50-30.
	v, _, ok := r.PredictPath([]int{2, 3})
	if !ok {
		t.Fatal("path should be covered")
	}
	if math.Abs(v-70) > 1e-6 {
		t.Errorf("stitched AS3↔AS4 = %v, want 70", v)
	}
}

func TestSolverNoisyOverdetermined(t *testing.T) {
	rng := stats.NewRNG(1)
	const n = 10
	truth := make([]float64, n)
	for j := range truth {
		truth[j] = 5 + 20*rng.Float64()
	}
	s := NewSolver(n)
	for i := 0; i < 600; i++ {
		a, b := rng.IntN(n), rng.IntN(n)
		if a == b {
			continue
		}
		v := truth[a] + truth[b] + rng.Normal(0, 0.5)
		s.AddObservation([]int{a, b}, v, 1)
	}
	r := s.Solve(300, 1e-10)
	for j := range truth {
		if math.Abs(r.Estimate[j]-truth[j]) > 0.5 {
			t.Errorf("x[%d] = %v, want ~%v", j, r.Estimate[j], truth[j])
		}
		if r.SEM[j] <= 0 || r.SEM[j] > 2 {
			t.Errorf("SEM[%d] = %v, unreasonable", j, r.SEM[j])
		}
	}
}

func TestSolverWeightsMatter(t *testing.T) {
	// Two contradictory single-segment observations: heavy weight wins.
	s := NewSolver(1)
	s.AddObservation([]int{0}, 10, 100)
	s.AddObservation([]int{0}, 20, 1)
	r := s.Solve(100, 1e-12)
	if math.Abs(r.Estimate[0]-10.1) > 0.05 {
		t.Errorf("weighted estimate = %v, want ~10.1", r.Estimate[0])
	}
}

func TestSolverNonNegativity(t *testing.T) {
	// Observations implying a negative segment must clamp to 0.
	s := NewSolver(2)
	s.AddObservation([]int{0}, 10, 1)
	s.AddObservation([]int{0, 1}, 8, 1) // implies x1 = -2
	r := s.Solve(200, 1e-12)
	if r.Estimate[1] < 0 {
		t.Errorf("negative estimate %v", r.Estimate[1])
	}
}

func TestSolverUncoveredSegments(t *testing.T) {
	s := NewSolver(3)
	s.AddObservation([]int{0}, 5, 1)
	r := s.Solve(10, 1e-9)
	if !r.Covered[0] || r.Covered[1] || r.Covered[2] {
		t.Errorf("coverage = %v", r.Covered)
	}
	if _, _, ok := r.PredictPath([]int{0, 1}); ok {
		t.Error("path with uncovered segment should not predict")
	}
	if _, _, ok := r.PredictPath([]int{0}); !ok {
		t.Error("covered path should predict")
	}
	if _, _, ok := r.PredictPath([]int{7}); ok {
		t.Error("out-of-range segment should not predict")
	}
}

func TestSolverSingleObservationSEM(t *testing.T) {
	s := NewSolver(1)
	s.AddObservation([]int{0}, 12, 3)
	r := s.Solve(10, 1e-9)
	// With one observation the SEM must be conservative (the estimate
	// itself), not zero.
	if r.SEM[0] != r.Estimate[0] {
		t.Errorf("single-observation SEM = %v, want %v", r.SEM[0], r.Estimate[0])
	}
}

func TestSolverPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewSolver(0) },
		func() { NewSolver(2).AddObservation([]int{5}, 1, 1) },
		func() { NewSolver(2).AddObservation([]int{0}, 1, 0) },
		func() { NewSolver(2).AddObservation([]int{0}, math.NaN(), 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSolverCopiesSegments(t *testing.T) {
	s := NewSolver(2)
	segs := []int{0, 1}
	s.AddObservation(segs, 5, 1)
	segs[0] = 1 // mutate caller slice
	r := s.Solve(100, 1e-12)
	if !r.Covered[0] {
		t.Error("solver aliased the caller's segment slice")
	}
}

func TestSolverEarlyStop(t *testing.T) {
	s := NewSolver(1)
	s.AddObservation([]int{0}, 5, 1)
	r := s.Solve(1000, 1e-6)
	if r.Iterations >= 1000 {
		t.Errorf("no early stop: %d iterations", r.Iterations)
	}
}

// Property: for any consistent two-segment system the solver recovers an
// exact solution with zero residual.
func TestSolverConsistencyProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x0, x1 := float64(a)+1, float64(b)+1
		s := NewSolver(2)
		s.AddObservation([]int{0}, x0, 2)
		s.AddObservation([]int{1}, x1, 2)
		s.AddObservation([]int{0, 1}, x0+x1, 2)
		r := s.Solve(300, 1e-12)
		return math.Abs(r.Estimate[0]-x0) < 1e-6 && math.Abs(r.Estimate[1]-x1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve(b *testing.B) {
	rng := stats.NewRNG(2)
	const n = 200
	truth := make([]float64, n)
	for j := range truth {
		truth[j] = 5 + 20*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSolver(n)
		for k := 0; k < 2000; k++ {
			a, c := rng.IntN(n), rng.IntN(n)
			if a == c {
				continue
			}
			s.AddObservation([]int{a, c}, truth[a]+truth[c]+rng.Normal(0, 0.5), 1)
		}
		b.StartTimer()
		s.Solve(100, 1e-8)
	}
}
