// Package wan emulates wide-area link characteristics in userspace: a
// net.PacketConn wrapper that applies configurable per-destination
// propagation delay, jitter, and random loss to outgoing datagrams. The
// testbed (§5.5) runs clients, relays, and the controller on loopback and
// uses this shaper in place of the real WAN, with link parameters derived
// from the same synthetic world model as the trace-driven experiments.
package wan

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// LinkParams describes one direction of a link.
type LinkParams struct {
	DelayMs  float64 // one-way base delay
	JitterMs float64 // mean absolute per-packet delay variation
	LossRate float64 // independent drop probability in [0, 1]
	// BurstLossRate adds Gilbert-Elliott correlated loss on top of the
	// independent loss: the stationary fraction of packets eaten while
	// the link sits in its bad state.
	BurstLossRate float64
	// MeanBurstLen is the mean bad-state sojourn in packets (<= 1 makes
	// the burst loss effectively independent).
	MeanBurstLen float64
}

// geState is the per-destination Gilbert-Elliott chain: lossless in the
// good state, total loss in bad, stepped once per datagram under s.mu.
type geState struct {
	bad bool
}

// step advances the chain one transmission and reports a burst drop.
func (g *geState) step(p LinkParams, rng *stats.RNG) bool {
	pi := p.BurstLossRate
	if pi <= 0 || pi >= 1 {
		return pi >= 1
	}
	l := p.MeanBurstLen
	if l <= 1 {
		return rng.Float64() < pi
	}
	r := 1 / l
	if g.bad {
		if rng.Float64() < r {
			g.bad = false
		}
	} else if rng.Float64() < r*pi/(1-pi) {
		g.bad = true
	}
	return g.bad
}

// Shaper wraps a PacketConn, impairing writes per destination address.
// Reads pass through untouched. It implements net.PacketConn.
//
// Beyond statistical impairment, a shaper supports fault injection: a
// blackholed destination silently eats every datagram (the packet-level
// failure a dead route produces), per destination or for all traffic.
type Shaper struct {
	conn net.PacketConn

	mu        sync.Mutex
	links     map[string]LinkParams // guarded by mu
	def       LinkParams            // guarded by mu
	blackhole map[string]bool       // guarded by mu
	blackAll  bool                  // guarded by mu
	bursts    map[string]*geState   // guarded by mu
	rng       *stats.RNG            // guarded by mu
	closed    bool                  // guarded by mu
	retired   bool                  // guarded by mu
	pending   sync.WaitGroup

	faultDrops atomic.Int64
	lossDrops  atomic.Int64
	delayed    atomic.Int64
}

// Wrap builds a shaper around conn. With no configured links, packets pass
// through unimpaired.
func Wrap(conn net.PacketConn, seed uint64) *Shaper {
	return &Shaper{
		conn:      conn,
		links:     make(map[string]LinkParams),
		blackhole: make(map[string]bool),
		bursts:    make(map[string]*geState),
		rng:       stats.NewRNG(seed).Split("wan"),
	}
}

// SetLink configures impairment for datagrams sent to dst (addr.String()
// form).
func (s *Shaper) SetLink(dst string, p LinkParams) {
	s.mu.Lock()
	s.links[dst] = p
	s.mu.Unlock()
}

// SetDefault configures impairment for destinations with no explicit link.
func (s *Shaper) SetDefault(p LinkParams) {
	s.mu.Lock()
	s.def = p
	s.mu.Unlock()
}

// SetBlackhole turns the fault-injection blackhole for dst on or off:
// while on, every datagram to dst is silently dropped.
func (s *Shaper) SetBlackhole(dst string, on bool) {
	s.mu.Lock()
	if on {
		s.blackhole[dst] = true
	} else {
		delete(s.blackhole, dst)
	}
	s.mu.Unlock()
}

// SetBlackholeAll blackholes every destination (a full partition of this
// node) until turned off.
func (s *Shaper) SetBlackholeAll(on bool) {
	s.mu.Lock()
	s.blackAll = on
	s.mu.Unlock()
}

// Blackholed reports whether dst is currently blackholed.
func (s *Shaper) Blackholed(dst string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blackAll || s.blackhole[dst]
}

// FaultDrops returns how many datagrams blackholes have eaten.
func (s *Shaper) FaultDrops() int64 { return s.faultDrops.Load() }

// LossDrops returns how many datagrams statistical loss has eaten
// (impairment, as opposed to injected blackholes).
func (s *Shaper) LossDrops() int64 { return s.lossDrops.Load() }

// Delayed returns how many datagrams were delivered late (delay/jitter).
func (s *Shaper) Delayed() int64 { return s.delayed.Load() }

// Link returns the impairment configured for dst (or the default).
func (s *Shaper) Link(dst string) LinkParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.links[dst]; ok {
		return p
	}
	return s.def
}

// WriteTo impairs and forwards one datagram. Dropped packets still report
// success — the network ate them, not the caller.
func (s *Shaper) WriteTo(b []byte, addr net.Addr) (int, error) {
	s.mu.Lock()
	if s.closed || s.retired {
		s.mu.Unlock()
		return 0, net.ErrClosed
	}
	if s.blackAll || s.blackhole[addr.String()] {
		s.mu.Unlock()
		s.faultDrops.Add(1)
		return len(b), nil // the network ate it; senders cannot tell
	}
	dst := addr.String()
	p, ok := s.links[dst]
	if !ok {
		p = s.def
	}
	drop := p.LossRate > 0 && s.rng.Float64() < p.LossRate
	if p.BurstLossRate > 0 {
		g := s.bursts[dst]
		if g == nil {
			g = &geState{}
			s.bursts[dst] = g
		}
		// Step the chain even on an independent drop so burst timing does
		// not depend on the independent-loss draw outcomes.
		if g.step(p, s.rng) {
			drop = true
		}
	}
	var delay time.Duration
	if !drop && (p.DelayMs > 0 || p.JitterMs > 0) {
		d := p.DelayMs
		if p.JitterMs > 0 {
			d += math.Abs(s.rng.Normal(0, p.JitterMs*math.Sqrt(math.Pi/2)))
		}
		delay = time.Duration(d * float64(time.Millisecond))
	}
	s.mu.Unlock()

	if drop {
		s.lossDrops.Add(1)
		return len(b), nil
	}
	if delay <= 0 {
		return s.conn.WriteTo(b, addr)
	}
	// Deliver later; the caller's buffer — and its addr, which hot paths
	// like the relay reuse across sends — may be rewritten before the
	// timer fires, so snapshot both.
	s.delayed.Add(1)
	buf := make([]byte, len(b))
	copy(buf, b)
	if u, ok := addr.(*net.UDPAddr); ok {
		cp := *u
		cp.IP = append(net.IP(nil), u.IP...)
		addr = &cp
	}
	s.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer s.pending.Done()
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			//vialint:ignore errwrap best-effort delayed delivery: the socket may close between the check and the send, which is exactly a dropped packet
			_, _ = s.conn.WriteTo(buf, addr)
		}
	})
	return len(b), nil
}

// ReadFrom passes through to the underlying conn. On a retired shaper it
// reports net.ErrClosed as soon as the underlying read unblocks, so a
// reader loop terminates cleanly even though the socket itself lingers
// until the delayed-delivery queue drains.
func (s *Shaper) ReadFrom(b []byte) (int, net.Addr, error) {
	n, addr, err := s.conn.ReadFrom(b)
	if err != nil {
		s.mu.Lock()
		retired := s.retired
		s.mu.Unlock()
		if retired {
			return 0, nil, net.ErrClosed
		}
	}
	return n, addr, err
}

// Retire begins the graceful teardown a NAT rebind calls for: new reads
// and writes fail immediately (the old binding is gone for the endpoint),
// but datagrams already delayed in flight still deliver — packets in the
// network do not vanish when an endpoint moves. The socket closes in the
// background once they drain. Use Close for abrupt teardown (a crash),
// which must also release the address at once.
func (s *Shaper) Retire() error {
	s.mu.Lock()
	if s.closed || s.retired {
		s.mu.Unlock()
		return nil
	}
	s.retired = true
	s.mu.Unlock()
	// Unblock any reader now; ReadFrom converts the timeout to ErrClosed.
	err := s.conn.SetReadDeadline(time.Now())
	go func() {
		s.pending.Wait()
		s.mu.Lock()
		closed := s.closed
		s.closed = true
		s.mu.Unlock()
		if !closed {
			s.conn.Close() //vialint:ignore errwrap background teardown of a retired socket; nothing is listening for the result
		}
	}()
	return err
}

// Close marks the shaper closed, waits for in-flight delayed packets to
// resolve, and closes the underlying conn.
func (s *Shaper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.pending.Wait()
	return err
}

// LocalAddr returns the underlying conn's address.
func (s *Shaper) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// SetDeadline passes through.
func (s *Shaper) SetDeadline(t time.Time) error { return s.conn.SetDeadline(t) }

// SetReadDeadline passes through.
func (s *Shaper) SetReadDeadline(t time.Time) error { return s.conn.SetReadDeadline(t) }

// SetWriteDeadline passes through.
func (s *Shaper) SetWriteDeadline(t time.Time) error { return s.conn.SetWriteDeadline(t) }
