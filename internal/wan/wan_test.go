package wan

import (
	"net"
	"testing"
	"time"
)

func udpPair(t *testing.T) (net.PacketConn, net.PacketConn) {
	t.Helper()
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestPassThroughNoImpairment(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 1)
	msg := []byte("hello")
	start := time.Now()
	if _, err := s.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Errorf("got %q", buf[:n])
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unimpaired delivery took too long")
	}
}

func TestDelayApplied(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 2)
	s.SetLink(b.LocalAddr().String(), LinkParams{DelayMs: 80})
	start := time.Now()
	if _, err := s.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 70*time.Millisecond {
		t.Errorf("packet arrived after %v, want >= ~80ms", got)
	}
}

func TestLossApplied(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 3)
	s.SetLink(b.LocalAddr().String(), LinkParams{LossRate: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := s.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 16)
	for {
		b.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		if _, _, err := b.ReadFrom(buf); err != nil {
			break
		}
		received++
	}
	if received < n/4 || received > 3*n/4 {
		t.Errorf("received %d/%d with 50%% loss", received, n)
	}
}

func TestBurstLossApplied(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 13)
	s.SetLink(b.LocalAddr().String(), LinkParams{BurstLossRate: 0.3, MeanBurstLen: 4})
	const n = 600
	for i := 0; i < n; i++ {
		if _, err := s.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	// The stationary loss rate must hold, and the drops must be counted as
	// statistical loss, not fault drops.
	drops := s.LossDrops()
	if drops < n/6 || drops > n/2 {
		t.Errorf("burst drops = %d/%d, want ~30%%", drops, n)
	}
	if s.FaultDrops() != 0 {
		t.Errorf("burst loss booked as fault drops: %d", s.FaultDrops())
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	// With mean burst length 5, consecutive drops must cluster: count the
	// loss runs and compare against what 600 independent drops would give.
	a, b := udpPair(t)
	s := Wrap(a, 14)
	dst := b.LocalAddr().String()
	s.SetLink(dst, LinkParams{BurstLossRate: 0.3, MeanBurstLen: 5})
	const n = 2000
	runs, dropped := 0, 0
	inRun := false
	for i := 0; i < n; i++ {
		before := s.LossDrops()
		if _, err := s.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		if s.LossDrops() > before {
			dropped++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if dropped == 0 || runs == 0 {
		t.Fatal("no burst drops observed")
	}
	meanRun := float64(dropped) / float64(runs)
	if meanRun < 2.5 {
		t.Errorf("mean loss run = %.2f packets, want bursty (~5)", meanRun)
	}
}

func TestFullLossDropsEverything(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 4)
	s.SetLink(b.LocalAddr().String(), LinkParams{LossRate: 1})
	for i := 0; i < 10; i++ {
		n, err := s.WriteTo([]byte("x"), b.LocalAddr())
		if err != nil || n != 1 {
			t.Fatal("drop should still report success")
		}
	}
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Error("packet leaked through 100% loss")
	}
}

func TestDefaultLink(t *testing.T) {
	a, _ := udpPair(t)
	s := Wrap(a, 5)
	s.SetDefault(LinkParams{DelayMs: 10})
	if got := s.Link("1.2.3.4:99"); got.DelayMs != 10 {
		t.Errorf("default link = %+v", got)
	}
	s.SetLink("1.2.3.4:99", LinkParams{DelayMs: 50})
	if got := s.Link("1.2.3.4:99"); got.DelayMs != 50 {
		t.Errorf("specific link = %+v", got)
	}
}

func TestJitterVariesDelay(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 6)
	s.SetLink(b.LocalAddr().String(), LinkParams{DelayMs: 5, JitterMs: 15})
	// Send paced packets; arrival spacing should vary noticeably.
	go func() {
		for i := 0; i < 40; i++ {
			s.WriteTo([]byte{byte(i)}, b.LocalAddr())
			time.Sleep(5 * time.Millisecond)
		}
	}()
	var arrivals []time.Time
	buf := make([]byte, 16)
	for i := 0; i < 40; i++ {
		b.SetReadDeadline(time.Now().Add(time.Second))
		if _, _, err := b.ReadFrom(buf); err != nil {
			break
		}
		arrivals = append(arrivals, time.Now())
	}
	if len(arrivals) < 30 {
		t.Fatalf("only %d arrivals", len(arrivals))
	}
	varied := 0
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		if gap < 2*time.Millisecond || gap > 8*time.Millisecond {
			varied++
		}
	}
	if varied < 5 {
		t.Errorf("arrival spacing too regular for 15ms jitter (%d varied gaps)", varied)
	}
}

func TestBlackholePerDestination(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 10)
	dst := b.LocalAddr().String()
	s.SetBlackhole(dst, true)
	if !s.Blackholed(dst) {
		t.Error("blackhole not reported")
	}
	for i := 0; i < 5; i++ {
		n, err := s.WriteTo([]byte("x"), b.LocalAddr())
		if err != nil || n != 1 {
			t.Fatal("blackholed write must still report success")
		}
	}
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Error("packet leaked through blackhole")
	}
	if s.FaultDrops() != 5 {
		t.Errorf("fault drops = %d, want 5", s.FaultDrops())
	}

	// Healing restores delivery.
	s.SetBlackhole(dst, false)
	if s.Blackholed(dst) {
		t.Error("blackhole still reported after heal")
	}
	if _, err := s.WriteTo([]byte("y"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Error("packet lost after heal:", err)
	}
}

func TestBlackholeAll(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 11)
	s.SetBlackholeAll(true)
	if !s.Blackholed("anything:1") {
		t.Error("blackhole-all not reported")
	}
	s.WriteTo([]byte("x"), b.LocalAddr())
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Error("packet leaked through full blackhole")
	}
	s.SetBlackholeAll(false)
	s.WriteTo([]byte("y"), b.LocalAddr())
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Error("packet lost after heal:", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo([]byte("x"), b.LocalAddr()); err == nil {
		t.Error("write after close should fail")
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestCloseWaitsForPending(t *testing.T) {
	a, b := udpPair(t)
	s := Wrap(a, 8)
	s.SetLink(b.LocalAddr().String(), LinkParams{DelayMs: 30})
	s.WriteTo([]byte("x"), b.LocalAddr())
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
}

func TestLocalAddrAndDeadlines(t *testing.T) {
	a, _ := udpPair(t)
	s := Wrap(a, 9)
	if s.LocalAddr() == nil {
		t.Error("nil local addr")
	}
	if err := s.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Error(err)
	}
	if err := s.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Error(err)
	}
	if err := s.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		t.Error(err)
	}
}
