package wan

// Named link profiles: canned LinkParams for recurring scenario shapes,
// so experiments and chaos tests describe links by intent rather than by
// raw numbers.

// ProfileTorLike models a hop through a high-latency anonymity overlay —
// the kind of backup path a privacy-conscious deployment might hold in
// reserve: usable for a call, but with multi-hundred-millisecond one-way
// delay, heavy jitter from circuit multiplexing, and mild queue-drop
// loss. Churn experiments use it as the pessimal fallback relay: even
// against a path this bad, migrating a live call in place should beat
// dropping and re-dialing it.
func ProfileTorLike() LinkParams {
	return LinkParams{DelayMs: 280, JitterMs: 70, LossRate: 0.015}
}

// ProfileIntercontinental models a clean long-haul path: high propagation
// delay, little else wrong with it.
func ProfileIntercontinental() LinkParams {
	return LinkParams{DelayMs: 90, JitterMs: 6, LossRate: 0.002}
}

// ProfileCongestedAccess models a loaded last-mile link: moderate delay,
// bufferbloat jitter, and bursty loss.
func ProfileCongestedAccess() LinkParams {
	return LinkParams{DelayMs: 25, JitterMs: 18, LossRate: 0.01, BurstLossRate: 0.02, MeanBurstLen: 4}
}
