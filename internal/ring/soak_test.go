package ring

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// TestSoakShardChaosZeroDrops is the PR-gate shard-chaos soak: a zipf
// call load over a 3-shard fleet while shard 0's primary is killed, its
// standby promoted, and the ring grown by one shard — asserting zero
// dropped decisions, per-shard WAL replay identity, and a merged budget
// percentile within tolerance of the single-controller oracle.
func TestSoakShardChaosZeroDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("shard-chaos soak is a multi-second e2e; skipped in -short")
	}
	reg := obs.NewRegistry()
	rep, err := RunSoak(SoakConfig{
		Seed:       42,
		Shards:     3,
		Calls:      2400,
		Pairs:      64,
		Goroutines: 4,
		Relays:     5,
		Metrics:    reg,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drops != 0 {
		t.Errorf("%d of %d decisions dropped; the retry/failover path must ride out shard churn", rep.Drops, rep.Calls)
	}
	if rep.FaultErrors != 0 {
		t.Errorf("%d fault-plan steps failed", rep.FaultErrors)
	}
	if rep.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", rep.Promotions)
	}
	if rep.Rebalances != 1 {
		t.Errorf("rebalances = %d, want 1", rep.Rebalances)
	}
	if rep.MapEpoch != 2 {
		t.Errorf("final map epoch = %d, want 2 (one AddShard)", rep.MapEpoch)
	}
	if len(rep.ShardReports) != 4 {
		t.Fatalf("shard reports = %d, want 4 (3 initial + 1 added)", len(rep.ShardReports))
	}
	for _, sr := range rep.ShardReports {
		if !sr.ReplayIdentical {
			t.Errorf("shard %d: WAL replay did not reproduce live state byte-for-byte (lsn %d)", sr.ID, sr.AppliedLSN)
		}
	}
	// The merged fleet threshold estimates the same population statistic
	// as the oracle's single estimator over the same call distribution;
	// partitioned estimation is an approximation, so the tolerance is
	// loose but must rule out nonsense (sign flips, off-by-10×).
	if rep.OracleN >= 20 && rep.MergedN >= 20 {
		diff := math.Abs(rep.MergedThreshold - rep.OracleThreshold)
		tol := 0.6*math.Abs(rep.OracleThreshold) + 0.05
		if diff > tol {
			t.Errorf("merged threshold %.4f vs oracle %.4f: |diff| %.4f exceeds tolerance %.4f",
				rep.MergedThreshold, rep.OracleThreshold, diff, tol)
		}
	} else {
		t.Logf("budget estimators not warmed (merged n=%d, oracle n=%d); tolerance check skipped", rep.MergedN, rep.OracleN)
	}
	// The chaos must actually have exercised the ring machinery.
	snap := reg.Snapshot()
	if rep.Redirects == 0 && snap[`via_ring_redirects_total{shard="3"}`] == 0 {
		t.Log("note: no epoch-stale redirect observed this run (clients refreshed before touching moved pairs)")
	}
}
