package ring

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// maxPairBody bounds how much of a choose/report body the gate will read
// to find the pair; matches the controller's own request-size posture.
const maxPairBody = 1 << 20

// pairHeader is the prefix of ChooseRequest/ReportRequest the gate needs:
// just the pair. json.Unmarshal ignores the rest of the body.
type pairHeader struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
}

// Gate is the per-shard ownership check: middleware wrapped around a
// controller.Server's handler. Pair-scoped requests (choose/report) for
// pairs this shard does not own are answered 307 with the owner's URL —
// the mechanism by which clients holding a stale (older-epoch) map
// self-correct. Everything else passes through to the controller.
//
// The gate also serves and accepts the shard map itself on /v1/ring/map,
// so a fleet operator (or the Fleet harness) can push a new epoch to
// every shard.
type Gate struct {
	shardID int
	inner   http.Handler
	cur     atomic.Pointer[Map]

	decisions atomic.Int64

	redirects  *obs.Counter
	installs   *obs.Counter
	mDecisions *obs.Counter
	epochG     *obs.Gauge
}

// NewGate wraps a shard's handler with ownership enforcement under the
// given starting map. reg may be nil to skip metrics.
func NewGate(shardID int, inner http.Handler, m *Map, reg *obs.Registry) *Gate {
	g := &Gate{shardID: shardID, inner: inner}
	g.cur.Store(m)
	if reg != nil {
		// Shard IDs are small and bounded, so the label stays legal.
		id := strconv.Itoa(shardID)
		g.redirects = reg.Counter(obs.L("via_ring_redirects_total", "shard", id))
		g.installs = reg.Counter(obs.L("via_ring_map_installs_total", "shard", id))
		g.mDecisions = reg.Counter(obs.L("via_ring_decisions_total", "shard", id))
		g.epochG = reg.Gauge(obs.L("via_ring_map_epoch", "shard", id))
		g.epochG.Set(float64(m.MapEpoch))
	}
	return g
}

// Current returns the map the gate is enforcing.
func (g *Gate) Current() *Map { return g.cur.Load() }

// Decisions counts the choose requests this gate owned and passed through
// to its shard — the per-shard denominator for decisions/s accounting.
func (g *Gate) Decisions() int64 { return g.decisions.Load() }

// Install adopts a newer-epoch map. Same or older epochs are rejected —
// the install protocol is strictly monotone, so replayed or reordered
// pushes cannot roll a shard back.
func (g *Gate) Install(m *Map) error {
	for {
		cur := g.cur.Load()
		if m.MapEpoch <= cur.MapEpoch {
			return errStaleEpoch(m.MapEpoch, cur.MapEpoch)
		}
		if g.cur.CompareAndSwap(cur, m) {
			if g.installs != nil {
				g.installs.Inc()
				g.epochG.Set(float64(m.MapEpoch))
			}
			return nil
		}
	}
}

type errStale struct{ got, cur uint64 }

func errStaleEpoch(got, cur uint64) error { return errStale{got, cur} }

func (e errStale) Error() string {
	return "ring: map epoch " + strconv.FormatUint(e.got, 10) +
		" not newer than installed " + strconv.FormatUint(e.cur, 10)
}

// ServeHTTP implements http.Handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/ring/map":
		g.serveMap(w, r)
	case r.Method == http.MethodPost && (r.URL.Path == "/v1/choose" || r.URL.Path == "/v1/report"):
		g.gatePair(w, r)
	default:
		g.inner.ServeHTTP(w, r)
	}
}

// serveMap answers GET with the current map and POST with an install.
func (g *Gate) serveMap(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		data, err := g.cur.Load().EncodeJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data) //vialint:ignore errwrap best-effort HTTP response write; the client observes any failure
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxPairBody))
		if err != nil {
			http.Error(w, "read map: "+err.Error(), http.StatusBadRequest)
			return
		}
		m, err := DecodeMap(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := g.Install(m); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// gatePair peeks at the request pair; owned pairs pass through with the
// body restored, foreign pairs get a 307 naming the owner.
func (g *Gate) gatePair(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPairBody))
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var hdr pairHeader
	if err := json.Unmarshal(body, &hdr); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return
	}
	m := g.cur.Load()
	owner := m.OwnerShard(hdr.Src, hdr.Dst)
	if owner.ID != g.shardID {
		if g.redirects != nil {
			g.redirects.Inc()
		}
		w.Header().Set("Location", owner.URL+r.URL.Path)
		w.Header().Set("X-Via-Ring-Epoch", strconv.FormatUint(m.MapEpoch, 10))
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	if r.URL.Path == "/v1/choose" {
		g.decisions.Add(1)
		if g.mDecisions != nil {
			g.mDecisions.Inc()
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	g.inner.ServeHTTP(w, r)
}
