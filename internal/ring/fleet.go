package ring

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/wal"
)

// FleetConfig parameterizes an in-process sharded control plane.
type FleetConfig struct {
	// Shards is the initial shard count (min 1).
	Shards int
	// VNodes per shard on the ring; 0 = DefaultVNodes.
	VNodes int
	// WALRoot is where shard WALs live (shard-<i>, shard-<i>-standby
	// subdirectories). Required: shard durability is the point.
	WALRoot string
	// NewStrategy builds a fresh strategy for each controller incarnation
	// (every shard primary and standby gets its own). Required; must
	// implement controller.StatefulStrategy.
	NewStrategy func() core.Strategy
	// TimeScale, LeaseTimeout, AutoPromote, Clock pass through to each
	// shard's controller.Config.
	TimeScale    float64
	LeaseTimeout time.Duration
	AutoPromote  bool
	Clock        func() time.Time
	// Metrics is shared across shards, gates, and the router. Optional.
	Metrics *obs.Registry
	// BudgetEvery starts the router's §4.6 aggregation loop at this
	// period; 0 leaves merging to explicit AggregateBudget calls.
	BudgetEvery time.Duration
}

// fleetShard is one shard's runtime: primary + warm standby controller,
// each behind its own ownership gate and HTTP listener.
type fleetShard struct {
	id   int
	url  string // primary base URL
	sURL string // standby base URL

	primary *controller.Server
	standby *controller.Server

	httpPrim *http.Server
	httpStby *http.Server

	gatePrim *Gate
	gateStby *Gate

	lnPrim net.Listener
	lnStby net.Listener

	walPrim string
	walStby string

	killed   bool // guarded by mu (the owning Fleet's)
	promoted bool // guarded by mu (the owning Fleet's)
}

// activeLocked returns the serving incarnation: the standby once the
// primary is dead or demoted, the primary otherwise. Caller holds the
// owning Fleet's mu.
func (sh *fleetShard) activeLocked() *controller.Server {
	if sh.killed || sh.promoted {
		return sh.standby
	}
	return sh.primary
}

// activeWALLocked returns the serving incarnation's WAL directory (for
// replay verification). Caller holds the owning Fleet's mu.
func (sh *fleetShard) activeWALLocked() string {
	if sh.killed || sh.promoted {
		return sh.walStby
	}
	return sh.walPrim
}

// Fleet runs a complete sharded control plane in-process: N shards (each
// a durable controller.Server with a warm standby, wrapped in an
// ownership Gate), plus a Router front. It implements faults.ShardTarget
// so fault plans can kill shards, promote standbys, and grow/shrink the
// ring mid-run; every other fault kind is rejected via the embedded
// UnsupportedTarget.
//
// Shards run with automatic snapshots disabled (SnapshotEvery < 0): the
// full WAL is what makes a shard rebalanceable — moving a pair to a new
// owner replays exactly that pair's records — and what the soak harness
// replays to prove per-shard determinism.
type Fleet struct {
	faults.UnsupportedTarget
	cfg FleetConfig

	router     *Router
	routerHTTP *http.Server
	routerURL  string

	mu         sync.Mutex
	shards     map[int]*fleetShard // guarded by mu
	cur        *Map                // guarded by mu — authoritative map copy
	nextID     int                 // guarded by mu
	promotions int                 // guarded by mu
	rebalances int                 // guarded by mu
	closed     bool                // guarded by mu
}

// NewFleet starts the shards, their standbys, and the router. Callers
// must Close the fleet to release listeners and WALs.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NewStrategy == nil {
		return nil, fmt.Errorf("ring: FleetConfig.NewStrategy is required")
	}
	if cfg.WALRoot == "" {
		return nil, fmt.Errorf("ring: FleetConfig.WALRoot is required")
	}
	f := &Fleet{cfg: cfg, shards: make(map[int]*fleetShard), nextID: cfg.Shards}

	// Listeners first, so every shard's URL is known before any map or
	// gate is built.
	shards := make([]*fleetShard, cfg.Shards)
	ringShards := make([]Shard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := f.listenShard(i)
		if err != nil {
			f.Close() //vialint:ignore errwrap error path; the listen failure is already being returned
			return nil, err
		}
		shards[i] = sh
		f.mu.Lock()
		f.shards[i] = sh
		f.mu.Unlock()
		ringShards[i] = Shard{ID: i, URL: sh.url, Standby: sh.sURL}
	}
	m, err := NewMap(cfg.VNodes, ringShards...)
	if err != nil {
		f.Close() //vialint:ignore errwrap error path; the map failure is already being returned
		return nil, err
	}
	f.mu.Lock()
	f.cur = m
	f.mu.Unlock()
	for _, sh := range shards {
		if err := f.openShard(sh, m); err != nil {
			f.Close() //vialint:ignore errwrap error path; the open failure is already being returned
			return nil, err
		}
	}

	f.router = NewRouter(m, cfg.Metrics)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close() //vialint:ignore errwrap error path; the listen failure is already being returned
		return nil, err
	}
	f.routerHTTP = &http.Server{Handler: f.router.Handler()}
	f.routerURL = "http://" + ln.Addr().String()
	go f.routerHTTP.Serve(ln) //vialint:ignore errwrap Serve returns ErrServerClosed on shutdown; nothing to handle
	if cfg.BudgetEvery > 0 {
		f.router.StartBudgetLoop(cfg.BudgetEvery)
	}
	return f, nil
}

// listenShard allocates a shard's listeners and WAL directories; the
// controllers come later (openShard), once the full map exists.
func (f *Fleet) listenShard(id int) (*fleetShard, error) {
	lnP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lnS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnP.Close() //vialint:ignore errwrap error path; the second listen failure is already being returned
		return nil, err
	}
	// A bound listener's URL is known before anything serves on it, so
	// the map can be built first and Serve starts only in openShard, once
	// the gate handler is final.
	sh := &fleetShard{
		id:      id,
		url:     "http://" + lnP.Addr().String(),
		sURL:    "http://" + lnS.Addr().String(),
		lnPrim:  lnP,
		lnStby:  lnS,
		walPrim: filepath.Join(f.cfg.WALRoot, "shard-"+strconv.Itoa(id)),
		walStby: filepath.Join(f.cfg.WALRoot, "shard-"+strconv.Itoa(id)+"-standby"),
	}
	return sh, nil
}

// openShard opens a shard's primary and standby controllers under the
// given map and routes traffic through their gates.
func (f *Fleet) openShard(sh *fleetShard, m *Map) error {
	if err := os.MkdirAll(sh.walPrim, 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(sh.walStby, 0o755); err != nil {
		return err
	}
	prim, err := controller.Open(f.shardConfig(sh.walPrim, ""))
	if err != nil {
		return err
	}
	sh.primary = prim
	sh.gatePrim = NewGate(sh.id, prim.Handler(), m, f.cfg.Metrics)
	sh.httpPrim = &http.Server{Handler: sh.gatePrim}
	go sh.httpPrim.Serve(sh.lnPrim) //vialint:ignore errwrap Serve returns ErrServerClosed on shutdown; nothing to handle

	// The standby starts tailing the (now serving) primary immediately.
	stby, err := controller.Open(f.shardConfig(sh.walStby, sh.url))
	if err != nil {
		return err
	}
	sh.standby = stby
	sh.gateStby = NewGate(sh.id, stby.Handler(), m, f.cfg.Metrics)
	sh.httpStby = &http.Server{Handler: sh.gateStby}
	go sh.httpStby.Serve(sh.lnStby) //vialint:ignore errwrap Serve returns ErrServerClosed on shutdown; nothing to handle
	return nil
}

// shardConfig is the controller.Config every shard incarnation runs
// with. SnapshotEvery is forced negative: the rebalance/replay design
// depends on the full log (see Fleet doc).
func (f *Fleet) shardConfig(walDir, standbyOf string) controller.Config {
	return controller.Config{
		Strategy:      f.cfg.NewStrategy(),
		TimeScale:     f.cfg.TimeScale,
		Metrics:       f.cfg.Metrics,
		WALDir:        walDir,
		SnapshotEvery: -1,
		StandbyOf:     standbyOf,
		LeaseTimeout:  f.cfg.LeaseTimeout,
		AutoPromote:   f.cfg.AutoPromote && standbyOf != "",
		Clock:         f.cfg.Clock,
	}
}

// RouterURL is the stateless front's base URL.
func (f *Fleet) RouterURL() string { return f.routerURL }

// Router exposes the fleet's router (budget aggregation, map installs).
func (f *Fleet) Router() *Router { return f.router }

// Map returns the fleet's current shard map.
func (f *Fleet) Map() *Map {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// Promotions and Rebalances count completed shard-fault operations.
func (f *Fleet) Promotions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promotions
}

// Rebalances counts completed add/remove rebalance operations.
func (f *Fleet) Rebalances() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rebalances
}

// ShardIDs lists the live shard IDs in ascending order.
func (f *Fleet) ShardIDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, 0, len(f.shards))
	for id := range f.shards {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// ShardDecisions returns the choose count each live shard's gates have
// passed through (primary plus standby, so a promoted incarnation's
// serving time is included). Keys are shard IDs.
func (f *Fleet) ShardDecisions() map[int]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int64, len(f.shards))
	for id, sh := range f.shards {
		var n int64
		if sh.gatePrim != nil {
			n += sh.gatePrim.Decisions()
		}
		if sh.gateStby != nil {
			n += sh.gateStby.Decisions()
		}
		out[id] = n
	}
	return out
}

// ShardState captures a shard's strategy state bytes from its serving
// incarnation, and the WAL directory + applied LSN that state is aligned
// with — everything a replay-identity check needs.
func (f *Fleet) ShardState(id int) (state []byte, walDir string, lsn uint64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, ok := f.shards[id]
	if !ok {
		return nil, "", 0, fmt.Errorf("ring: no shard %d", id)
	}
	srv := sh.activeLocked()
	state, err = srv.StrategyState()
	if err != nil {
		return nil, "", 0, err
	}
	return state, sh.activeWALLocked(), srv.AppliedLSN(), nil
}

// NewClient builds a ring-aware controller client: requests go shard-
// direct by the fleet's map, epoch-stale redirects re-fetch the map from
// the router, and anything unsharded falls back to the router.
func (f *Fleet) NewClient() *controller.Client {
	c := controller.NewClient(f.routerURL)
	c.RefreshShards = func() (controller.ShardMap, error) {
		return FetchMap(f.routerURL)
	}
	c.SetShards(f.Map())
	return c
}

// FetchMap bootstraps a shard map from a router or gate base URL.
func FetchMap(base string) (*Map, error) {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(base + "/v1/ring/map")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //vialint:ignore errwrap body fully consumed below; close failures have no recovery
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ring: map fetch returned %s", resp.Status)
	}
	data := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return DecodeMap(data)
}

// installMap publishes a new-epoch map to the router and every live
// gate (primary and standby, including killed shards' surviving
// standbys). Caller holds f.mu.
func (f *Fleet) installMapLocked(next *Map) {
	f.cur = next
	f.router.Install(next) //vialint:ignore errwrap monotone install; a same-epoch rejection means it is already current
	for _, sh := range f.shards {
		if sh.gatePrim != nil {
			sh.gatePrim.Install(next) //vialint:ignore errwrap monotone install; a same-epoch rejection means it is already current
		}
		if sh.gateStby != nil {
			sh.gateStby.Install(next) //vialint:ignore errwrap monotone install; a same-epoch rejection means it is already current
		}
	}
}

// KillShard implements faults.ShardTarget: the shard's primary dies
// abruptly — listener closed, WAL released, in-flight RPCs severed. The
// warm standby keeps tailing until promoted (or auto-promotes).
func (f *Fleet) KillShard(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, ok := f.shards[id]
	if !ok {
		return fmt.Errorf("ring: no shard %d", id)
	}
	if sh.killed {
		return fmt.Errorf("ring: shard %d already killed", id)
	}
	sh.killed = true
	sh.httpPrim.Close() //vialint:ignore errwrap abrupt kill; the close error is the fault being injected
	return sh.primary.Close()
}

// PromoteShardStandby implements faults.ShardTarget.
func (f *Fleet) PromoteShardStandby(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, ok := f.shards[id]
	if !ok {
		return fmt.Errorf("ring: no shard %d", id)
	}
	if sh.promoted {
		return nil
	}
	if _, err := sh.standby.Promote(); err != nil {
		return err
	}
	sh.promoted = true
	f.promotions++
	return nil
}

// AddShard implements faults.ShardTarget: grow the ring by one shard and
// rebalance. Order is the heart of the protocol — the epoch+1 map is
// installed on the router and every gate BEFORE the moved pairs' WAL
// records are exported, so from the install onward the old owners 307
// those pairs away and produce no new records for them; the export is
// therefore complete, not racing a moving tail.
func (f *Fleet) AddShard() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("ring: fleet closed")
	}
	id := f.nextID
	f.nextID++
	sh, err := f.listenShard(id)
	if err != nil {
		return err
	}
	next, err := f.cur.WithShardAdded(Shard{ID: id, URL: sh.url, Standby: sh.sURL})
	if err != nil {
		return err
	}
	old := f.cur
	if err := f.openShard(sh, next); err != nil {
		return err
	}
	f.shards[id] = sh
	f.installMapLocked(next)

	// Replay just the moved pairs into the new shard, oldest shard first.
	for _, src := range f.shards {
		if src.id == id {
			continue
		}
		var moved []wal.Record
		err := src.activeLocked().ExportRecords(func(a, b int32) bool {
			return old.OwnerShard(a, b).ID == src.id && next.OwnerShard(a, b).ID == id
		}, func(rec wal.Record) error {
			moved = append(moved, rec)
			return nil
		})
		if err != nil {
			return err
		}
		if len(moved) == 0 {
			continue
		}
		if err := sh.primary.ImportRecords(moved); err != nil {
			return err
		}
	}
	f.rebalances++
	return nil
}

// RemoveShard implements faults.ShardTarget: drain a shard — epoch+1 map
// first (its pairs redirect to their new owners immediately), then replay
// every pair it owned onto the new owner, then shut it down.
func (f *Fleet) RemoveShard(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, ok := f.shards[id]
	if !ok {
		return fmt.Errorf("ring: no shard %d", id)
	}
	next, err := f.cur.WithShardRemoved(id)
	if err != nil {
		return err
	}
	old := f.cur
	f.installMapLocked(next)

	// Group the drained shard's records by their new owner, preserving
	// LSN order within each group.
	byOwner := make(map[int][]wal.Record)
	err = sh.activeLocked().ExportRecords(func(a, b int32) bool {
		return old.OwnerShard(a, b).ID == id
	}, func(rec wal.Record) error {
		src, dst, _ := controller.RecordPair(rec)
		o := next.OwnerShard(src, dst).ID
		byOwner[o] = append(byOwner[o], rec)
		return nil
	})
	if err != nil {
		return err
	}
	for owner, recs := range byOwner {
		dst, ok := f.shards[owner]
		if !ok {
			return fmt.Errorf("ring: rebalance target shard %d missing", owner)
		}
		if err := dst.activeLocked().ImportRecords(recs); err != nil {
			return err
		}
	}
	f.closeShardLocked(sh)
	delete(f.shards, id)
	f.rebalances++
	return nil
}

// closeShardLocked tears one shard down, tolerating already-dead pieces.
func (f *Fleet) closeShardLocked(sh *fleetShard) {
	if sh.httpPrim == nil && sh.lnPrim != nil {
		sh.lnPrim.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	if sh.httpStby == nil && sh.lnStby != nil {
		sh.lnStby.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	if sh.httpPrim != nil {
		sh.httpPrim.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	if sh.httpStby != nil {
		sh.httpStby.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	if sh.primary != nil && !sh.killed {
		sh.primary.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	if sh.standby != nil {
		sh.standby.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
}

// Close tears the whole fleet down. Idempotent.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.router != nil {
		f.router.Stop()
	}
	if f.routerHTTP != nil {
		f.routerHTTP.Close() //vialint:ignore errwrap teardown close; nothing to recover
	}
	for _, sh := range f.shards {
		f.closeShardLocked(sh)
	}
	return nil
}
