package ring

import (
	"testing"
)

func testShards(n int) []Shard {
	out := make([]Shard, n)
	for i := range out {
		out[i] = Shard{ID: i, URL: "http://primary-" + string(rune('a'+i)), Standby: "http://standby-" + string(rune('a'+i))}
	}
	return out
}

func TestMapOwnershipIsCanonical(t *testing.T) {
	m, err := NewMap(0, testShards(5)...)
	if err != nil {
		t.Fatal(err)
	}
	for src := int32(0); src < 500; src++ {
		dst := src + 1000
		if a, b := m.OwnerShard(src, dst), m.OwnerShard(dst, src); a.ID != b.ID {
			t.Fatalf("pair (%d,%d): owner %d forward but %d reversed", src, dst, a.ID, b.ID)
		}
	}
}

func TestMapOwnershipDeterministicAcrossBuilders(t *testing.T) {
	// Two independently built maps over the same shard set (different
	// insertion order) must agree on every owner.
	a, err := NewMap(0, testShards(4)...)
	if err != nil {
		t.Fatal(err)
	}
	rev := testShards(4)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	b, err := NewMap(0, rev...)
	if err != nil {
		t.Fatal(err)
	}
	for src := int32(0); src < 1000; src++ {
		if x, y := a.OwnerShard(src, src+1), b.OwnerShard(src, src+1); x.ID != y.ID {
			t.Fatalf("pair (%d,%d): owner %d vs %d across builders", src, src+1, x.ID, y.ID)
		}
	}
}

func TestMapVNodeSkew(t *testing.T) {
	m, err := NewMap(DefaultVNodes, testShards(5)...)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const pairs = 100_000
	for i := 0; i < pairs; i++ {
		src := int32(2 * i)
		counts[m.OwnerShard(src, src+1).ID]++
	}
	mean := float64(pairs) / float64(len(m.Shards))
	for id, n := range counts {
		ratio := float64(n) / mean
		if ratio > 1.5 || ratio < 0.5 {
			t.Errorf("shard %d owns %d pairs (%.2f× mean); vnode distribution too skewed", id, n, ratio)
		}
	}
	if len(counts) != len(m.Shards) {
		t.Errorf("only %d of %d shards own any pairs", len(counts), len(m.Shards))
	}
}

func TestMapEpochDerivation(t *testing.T) {
	m, err := NewMap(0, testShards(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapEpoch != 1 {
		t.Fatalf("fresh map epoch = %d, want 1", m.MapEpoch)
	}
	grown, err := m.WithShardAdded(Shard{ID: 2, URL: "http://primary-c"})
	if err != nil {
		t.Fatal(err)
	}
	if grown.MapEpoch != 2 || len(grown.Shards) != 3 {
		t.Fatalf("grown map epoch=%d shards=%d, want 2/3", grown.MapEpoch, len(grown.Shards))
	}
	shrunk, err := grown.WithShardRemoved(0)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.MapEpoch != 3 || len(shrunk.Shards) != 2 {
		t.Fatalf("shrunk map epoch=%d shards=%d, want 3/2", shrunk.MapEpoch, len(shrunk.Shards))
	}
	if _, ok := shrunk.ShardByID(0); ok {
		t.Fatal("removed shard 0 still present")
	}
	if _, err := m.WithShardRemoved(99); err == nil {
		t.Fatal("removing unknown shard succeeded")
	}
	if _, err := m.WithShardAdded(Shard{ID: 1}); err == nil {
		t.Fatal("adding duplicate shard id succeeded")
	}
}

func TestMapGrowthMovesOnlyToNewShard(t *testing.T) {
	// Consistent hashing's contract: adding a shard only reassigns pairs
	// TO the new shard; no pair moves between surviving shards.
	m, err := NewMap(0, testShards(4)...)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := m.WithShardAdded(Shard{ID: 4, URL: "http://primary-e"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 10_000; i++ {
		src := int32(2 * i)
		before, after := m.OwnerShard(src, src+1).ID, grown.OwnerShard(src, src+1).ID
		if before != after {
			if after != 4 {
				t.Fatalf("pair (%d,%d) moved %d→%d, not to the new shard", src, src+1, before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no pair moved to the new shard")
	}
}

func TestMapJSONRoundTrip(t *testing.T) {
	m, err := NewMap(32, testShards(3)...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.MapEpoch != m.MapEpoch || got.VNodes != m.VNodes || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, m)
	}
	for i := 0; i < 5000; i++ {
		src := int32(3 * i)
		if a, b := m.OwnerShard(src, src+2).ID, got.OwnerShard(src, src+2).ID; a != b {
			t.Fatalf("pair (%d,%d): owner %d before, %d after round-trip", src, src+2, a, b)
		}
	}
	if _, err := DecodeMap([]byte("{}")); err == nil {
		t.Fatal("decoding an empty map succeeded")
	}
	if _, err := DecodeMap([]byte("not json")); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
}
