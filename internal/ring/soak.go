package ring

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
)

// SoakConfig parameterizes a shard-chaos soak: a sustained zipf call load
// against a live Fleet while a fault plan kills a shard, promotes its
// standby, and grows the ring mid-stream.
type SoakConfig struct {
	// Seed drives every random draw in the soak (workers, oracle, and the
	// strategies themselves).
	Seed uint64
	// Shards is the initial shard count (min 1); VNodes as in FleetConfig.
	Shards int
	VNodes int
	// Calls is the minimum total call count across workers; the soak runs
	// at least this many calls AND long enough for the fault plan to
	// finish, so faults always land mid-stream.
	Calls int
	// Pairs is the zipf universe of (src, dst) group pairs.
	Pairs int
	// ZipfS is the zipf skew exponent (default 1.1 — a few pairs carry
	// most of the load, as AS-pair call volume does in §5).
	ZipfS float64
	// Goroutines is the worker count, each with its own ring client.
	Goroutines int
	// Relays is how many bounce options each call offers beyond direct.
	Relays int
	// Budget < 1 enables the §4.6 budget gate (the datum the router
	// aggregates across shards). Default 0.8.
	Budget float64
	// TimeScale as in controller.Config.
	TimeScale float64
	// WALRoot holds the shard WALs; empty = a fresh temp dir, removed
	// after a successful run.
	WALRoot string
	// BudgetEvery is the router's aggregation period (default 150ms).
	BudgetEvery time.Duration
	// KillAt / PromoteAt / AddAt are the fault plan offsets: kill shard
	// 0's primary, promote its standby, grow the ring by one shard.
	// Defaults 300ms / 600ms / 900ms; negative disables that event.
	KillAt    time.Duration
	PromoteAt time.Duration
	AddAt     time.Duration
	// Metrics receives fleet + fault telemetry. Optional.
	Metrics *obs.Registry
	// Logf, when set, receives progress lines (testing.T.Logf shape).
	Logf func(format string, args ...any)
}

// ShardReport is one shard's post-run accounting.
type ShardReport struct {
	ID int `json:"id"`
	// AppliedLSN is how many WAL records the shard's serving incarnation
	// had applied at capture time.
	AppliedLSN uint64 `json:"applied_lsn"`
	// ReplayIdentical reports whether re-opening the shard's WAL from
	// scratch reproduced the live strategy state byte-for-byte.
	ReplayIdentical bool `json:"replay_identical"`
	// Decisions is how many choose requests this shard's gates owned and
	// served over the load window; DecisionsPerSec is that count over the
	// window's wall time — the per-shard throughput CI trends, and the
	// first place a hot or starved shard shows up.
	Decisions       int64   `json:"decisions"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
}

// SoakReport is the soak's machine-readable outcome (uploaded by CI).
type SoakReport struct {
	Seed       uint64 `json:"seed"`
	Shards     int    `json:"shards"` // initial count
	Calls      int64  `json:"calls"`  // decisions actually made
	Drops      int64  `json:"drops"`  // calls that got no decision after retries
	Redirects  int64  `json:"redirects"`
	Retries    int64  `json:"retries"`
	Promotions int    `json:"promotions"`
	Rebalances int    `json:"rebalances"`
	MapEpoch   uint64 `json:"map_epoch"`
	// MergedN / MergedThreshold are the final fleet-wide §4.6 aggregate;
	// OracleN / OracleThreshold come from a sequential single-strategy run
	// over the same call distribution and seed.
	MergedN         int64         `json:"merged_n"`
	MergedThreshold float64       `json:"merged_threshold"`
	OracleN         int64         `json:"oracle_n"`
	OracleThreshold float64       `json:"oracle_threshold"`
	WallSec         float64       `json:"wall_sec"`
	FaultErrors     int           `json:"fault_errors"`
	ShardReports    []ShardReport `json:"shard_reports"`
}

// soakWorkload is the deterministic call-mix shared by the fleet workers
// and the single-strategy oracle: a zipf over pair indices and a synthetic
// quality surface that makes relaying genuinely better for most pairs (so
// the budget gate has benefit mass to estimate).
type soakWorkload struct {
	cfg  SoakConfig
	cum  []float64 // zipf cumulative weights over pair indices
	tot  float64
	opts [][]netsim.Option // per-pair candidate sets (shared, read-only)
}

func newSoakWorkload(cfg SoakConfig) *soakWorkload {
	w := &soakWorkload{cfg: cfg}
	w.cum = make([]float64, cfg.Pairs)
	for i := 0; i < cfg.Pairs; i++ {
		w.tot += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		w.cum[i] = w.tot
	}
	w.opts = make([][]netsim.Option, cfg.Pairs)
	for i := range w.opts {
		opts := make([]netsim.Option, 0, cfg.Relays+1)
		opts = append(opts, netsim.DirectOption())
		for r := 1; r <= cfg.Relays; r++ {
			opts = append(opts, netsim.BounceOption(netsim.RelayID(r)))
		}
		w.opts[i] = opts
	}
	return w
}

// pairAt maps a uniform draw to a zipf-weighted pair index.
func (w *soakWorkload) pairAt(u float64) int {
	target := u * w.tot
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// groups returns the (src, dst) group IDs for a pair index.
func (w *soakWorkload) groups(pair int) (int32, int32) {
	src := int32(1000 + 2*pair)
	return src, src + 1
}

// measure is the synthetic quality surface: a pure function of (pair,
// option), so every incarnation — worker, oracle, WAL replay — sees the
// same world. Relayed paths beat direct for most pairs by a pair-varying
// margin, giving the §4.6 benefit estimator a nontrivial distribution.
func (w *soakWorkload) measure(pair int, opt netsim.Option) quality.Metrics {
	key := uint64(uint32(pair))<<32 | uint64(uint32(opt.R1))<<8 | uint64(uint8(opt.Kind))
	u := float64(mix64(key)>>11) / (1 << 53)
	if opt.IsRelayed() {
		return quality.Metrics{RTTMs: 80 + 80*u, LossRate: 0.005 + 0.01*u, JitterMs: 4 + 6*u}
	}
	// Direct: worse on average, with pair-dependent spread overlapping
	// the relayed range so some pairs have no benefit to find.
	return quality.Metrics{RTTMs: 120 + 160*u, LossRate: 0.01 + 0.04*u, JitterMs: 8 + 14*u}
}

// RunSoak drives the full scenario and returns the report. It fails only
// on harness-level errors; policy assertions (zero drops, replay
// identity, oracle tolerance) are the caller's to make on the report.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 3
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 2000
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 64
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = 4
	}
	if cfg.Relays <= 0 {
		cfg.Relays = 5
	}
	if cfg.Budget == 0 {
		cfg.Budget = 0.8
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 60 // one wall second = one algorithm minute
	}
	if cfg.BudgetEvery == 0 {
		cfg.BudgetEvery = 150 * time.Millisecond
	}
	if cfg.KillAt == 0 {
		cfg.KillAt = 300 * time.Millisecond
	}
	if cfg.PromoteAt == 0 {
		cfg.PromoteAt = 600 * time.Millisecond
	}
	if cfg.AddAt == 0 {
		cfg.AddAt = 900 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	walRoot := cfg.WALRoot
	cleanup := false
	if walRoot == "" {
		dir, err := os.MkdirTemp("", "via-soak-*")
		if err != nil {
			return nil, err
		}
		walRoot, cleanup = dir, true
	}

	viaCfg := core.DefaultViaConfig(quality.RTT)
	viaCfg.Budget = cfg.Budget
	viaCfg.Seed = cfg.Seed
	newStrategy := func() core.Strategy { return core.NewVia(viaCfg, nil) }

	fleet, err := NewFleet(FleetConfig{
		Shards:      cfg.Shards,
		VNodes:      cfg.VNodes,
		WALRoot:     walRoot,
		NewStrategy: newStrategy,
		TimeScale:   cfg.TimeScale,
		Metrics:     cfg.Metrics,
		BudgetEvery: cfg.BudgetEvery,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close() //vialint:ignore errwrap teardown close; explicit Close below handles the success path

	work := newSoakWorkload(cfg)
	rep := &SoakReport{Seed: cfg.Seed, Shards: cfg.Shards}
	start := time.Now()

	// The fault plan fires against the fleet in real time while workers
	// hammer it; workers keep going until the call floor is met AND the
	// plan has finished, so every fault lands under load.
	plan := faults.NewPlan(cfg.Seed)
	if cfg.KillAt > 0 {
		plan.KillShardAt(cfg.KillAt, 0)
	}
	if cfg.PromoteAt > 0 {
		plan.PromoteShardStandbyAt(cfg.PromoteAt, 0)
	}
	if cfg.AddAt > 0 {
		plan.AddShardAt(cfg.AddAt)
	}
	sched := faults.NewScheduler(plan, fleet)
	sched.SetMetrics(cfg.Metrics)
	planDone := make(chan struct{})
	sched.Start()
	go func() { sched.Wait(); close(planDone) }()

	var calls, drops, retries, redirects atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fleet.NewClient()
			// The retry budget must ride out the kill→promote window:
			// generous attempts, capped backoff.
			client.Retry = controller.RetryPolicy{
				MaxAttempts: 10,
				BaseDelay:   25 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
				Timeout:     2 * time.Second,
			}
			defer func() {
				retries.Add(client.Retries())
				redirects.Add(client.Redirects())
			}()
			rng := stats.NewRNG(cfg.Seed).Split("soak-w" + strconv.Itoa(g))
			for {
				n := calls.Add(1)
				if n > int64(cfg.Calls) {
					// Floor met: keep load on until the fault plan ends.
					select {
					case <-planDone:
						calls.Add(-1)
						return
					default:
					}
				}
				pair := work.pairAt(rng.Float64())
				src, dst := work.groups(pair)
				opt, err := client.Choose(src, dst, work.opts[pair])
				if err != nil {
					drops.Add(1)
					continue
				}
				if err := client.Report(src, dst, opt, work.measure(pair, opt)); err != nil {
					drops.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	// The workload window in virtual hours: the oracle below ramps its
	// clock over this same span so both sides cross the same prediction
	// epochs. Measured here, before teardown/replay inflate wall time.
	loadSec := time.Since(start).Seconds()
	workHours := loadSec * cfg.TimeScale
	// Per-shard throughput over the same window; captured now, while every
	// gate (including killed shards' survivors) is still addressable.
	shardDecisions := fleet.ShardDecisions()
	sched.Stop()
	rep.FaultErrors = len(sched.Errors())
	for _, e := range sched.Errors() {
		logf("soak: fault error: %v", e)
	}

	// Quiesce the budget loop, then run one final explicit merge so the
	// reported aggregate reflects every call.
	fleet.Router().Stop()
	agg, err := fleet.Router().AggregateBudget()
	if err != nil {
		return nil, fmt.Errorf("ring: final budget aggregation: %w", err)
	}
	rep.Calls = calls.Load()
	rep.Drops = drops.Load()
	rep.Retries = retries.Load()
	rep.Redirects = redirects.Load()
	rep.Promotions = fleet.Promotions()
	rep.Rebalances = fleet.Rebalances()
	rep.MapEpoch = fleet.Map().MapEpoch
	rep.MergedN = agg.N
	rep.MergedThreshold = agg.Threshold

	// Replay identity: capture each shard's live strategy state, close the
	// fleet, then re-open every shard's WAL from scratch and compare.
	type capture struct {
		id     int
		state  []byte
		walDir string
		lsn    uint64
	}
	var caps []capture
	for _, id := range fleet.ShardIDs() {
		state, walDir, lsn, err := fleet.ShardState(id)
		if err != nil {
			return nil, err
		}
		caps = append(caps, capture{id: id, state: state, walDir: walDir, lsn: lsn})
	}
	if err := fleet.Close(); err != nil {
		return nil, err
	}
	for _, c := range caps {
		replayed, err := replayState(c.walDir, newStrategy, cfg.TimeScale)
		if err != nil {
			return nil, fmt.Errorf("ring: replay shard %d: %w", c.id, err)
		}
		identical := string(replayed) == string(c.state)
		decs := shardDecisions[c.id]
		rep.ShardReports = append(rep.ShardReports, ShardReport{
			ID:              c.id,
			AppliedLSN:      c.lsn,
			ReplayIdentical: identical,
			Decisions:       decs,
			DecisionsPerSec: float64(decs) / loadSec,
		})
		logf("soak: shard %d lsn=%d replay_identical=%v decisions=%d (%.0f/s)",
			c.id, c.lsn, identical, decs, float64(decs)/loadSec)
	}

	// Oracle: the same call distribution fed sequentially to one
	// unsharded strategy — the reference the merged threshold must stay
	// within tolerance of. Its virtual clock ramps over the same span the
	// fleet's TimeScale covered, so both sides cross the same prediction
	// epochs and warm their benefit estimators comparably.
	rep.WallSec = time.Since(start).Seconds()
	rep.OracleN, rep.OracleThreshold = runOracle(cfg, work, rep.Calls, workHours)
	logf("soak: calls=%d drops=%d redirects=%d epoch=%d merged=(%d, %.4f) oracle=(%d, %.4f)",
		rep.Calls, rep.Drops, rep.Redirects, rep.MapEpoch,
		rep.MergedN, rep.MergedThreshold, rep.OracleN, rep.OracleThreshold)

	if cleanup {
		os.RemoveAll(walRoot) //vialint:ignore errwrap best-effort temp cleanup
	}
	return rep, nil
}

// replayState re-opens a shard's WAL with a fresh strategy and captures
// the state the replay reaches.
func replayState(walDir string, newStrategy func() core.Strategy, timeScale float64) ([]byte, error) {
	srv, err := controller.Open(controller.Config{
		Strategy:      newStrategy(),
		TimeScale:     timeScale,
		WALDir:        walDir,
		SnapshotEvery: -1,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close() //vialint:ignore errwrap read-only replay server; close failures have no recovery
	return srv.StrategyState()
}

// runOracle replays the soak's call distribution against one in-process
// Via — with virtual time ramping linearly over totalHours, mirroring the
// fleet's clock — and returns its final §4.6 digest.
func runOracle(cfg SoakConfig, work *soakWorkload, calls int64, totalHours float64) (int64, float64) {
	viaCfg := core.DefaultViaConfig(quality.RTT)
	viaCfg.Budget = cfg.Budget
	viaCfg.Seed = cfg.Seed
	via := core.NewVia(viaCfg, nil)
	rng := stats.NewRNG(cfg.Seed).Split("soak-oracle")
	for i := int64(0); i < calls; i++ {
		pair := work.pairAt(rng.Float64())
		src, dst := work.groups(pair)
		call := core.Call{
			Src:    netsim.ASID(src),
			Dst:    netsim.ASID(dst),
			THours: totalHours * float64(i) / float64(calls),
		}
		opt := via.Choose(call, work.opts[pair])
		via.Observe(call, opt, work.measure(pair, opt))
	}
	n, th, _ := via.BudgetDigest()
	return n, th
}
