// Package ring shards the Via control plane across N controller shards
// behind a consistent-hash ring. Each canonical (srcGroup, dstGroup) pair
// hashes to one shard, which runs an unmodified controller.Server — WAL,
// warm standby, admission and all. The ring layer adds:
//
//   - Map: the epoch-versioned shard map (virtual nodes over a 64-bit
//     hash ring) that every router, gate, and client agrees on
//   - Gate: per-shard middleware answering 307 for pairs the shard does
//     not own, so epoch-stale clients self-correct
//   - Router: a thin stateless proxy for clients that don't carry a map,
//     which also merges the one truly global datum — the §4.6 budget
//     percentile — from periodic per-shard digests
//   - Fleet: an in-process multi-shard harness used by the soak/chaos
//     tests and viabench, with kill/promote/add/remove fault hooks
//
// Decision *state* never spans shards: a pair's whole history, UCB arms
// and top-k cache live on its owning shard, so moving a pair during a
// rebalance is a replay of just that pair's WAL records.
package ring

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Shard is one controller shard's position in the map: its identity and
// where to reach it. The standby URL may be empty for shards run without
// a warm standby.
type Shard struct {
	ID      int    `json:"id"`
	URL     string `json:"url"`
	Standby string `json:"standby,omitempty"`
}

// Map is an immutable, epoch-versioned consistent-hash ring over shards.
// Build one with NewMap or DecodeMap; derive successors with
// WithShardAdded / WithShardRemoved (epoch+1). Immutability is what makes
// the epoch protocol sound: a Map pointer can be published atomically and
// read without locks, and two holders of the same epoch agree on every
// pair's owner.
type Map struct {
	MapEpoch uint64  `json:"epoch"`
	VNodes   int     `json:"vnodes"`
	Shards   []Shard `json:"shards"`

	points []ringPoint // sorted by (hash, shard); rebuilt on decode
}

// ringPoint is one virtual node on the 64-bit ring.
type ringPoint struct {
	hash  uint64
	shard int // index into Shards
}

// DefaultVNodes balances distribution skew (≲10% at 3–10 shards, see
// TestMapVNodeSkew) against map size; ownership lookup is a binary
// search, so the cost of more vnodes is only build time and bytes.
const DefaultVNodes = 64

// mix64 is the splitmix64 finalizer — a cheap full-avalanche bijection.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// PairHash places a canonical pair on the ring. Both call directions land
// on the same point: the pair is canonicalized (min, max) before hashing,
// the same orientation rule core.Sharded uses. The multiply-xor mix
// matches core's shardOf, with a finalizer on top so consecutive group
// IDs spread across the whole ring rather than clustering.
func PairHash(src, dst int32) uint64 {
	a, b := src, dst
	if a > b {
		a, b = b, a
	}
	h := uint64(uint32(a))*0x9e3779b97f4a7c15 ^ uint64(uint32(b))*0x2545f4914f6cdd1d
	return mix64(h)
}

// NewMap builds an epoch-1 map over the given shards. vnodes <= 0 means
// DefaultVNodes. Shard IDs must be unique; order does not matter (the
// ring depends only on IDs, so every builder of the same shard set gets
// the same ownership).
func NewMap(vnodes int, shards ...Shard) (*Map, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("ring: map needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &Map{
		MapEpoch: 1,
		VNodes:   vnodes,
		Shards:   append([]Shard(nil), shards...),
	}
	if err := m.build(); err != nil {
		return nil, err
	}
	return m, nil
}

// build populates the sorted vnode points from Shards/VNodes.
func (m *Map) build() error {
	seen := make(map[int]bool, len(m.Shards))
	for _, s := range m.Shards {
		if seen[s.ID] {
			return fmt.Errorf("ring: duplicate shard id %d", s.ID)
		}
		seen[s.ID] = true
	}
	if m.VNodes <= 0 {
		m.VNodes = DefaultVNodes
	}
	m.points = make([]ringPoint, 0, len(m.Shards)*m.VNodes)
	for i, s := range m.Shards {
		for v := 0; v < m.VNodes; v++ {
			// Vnode positions depend only on (shard ID, vnode index), so a
			// shard keeps its points across epochs and only the regions
			// between a changed shard's points move owners.
			h := mix64(uint64(uint32(s.ID))<<32 | uint64(uint32(v)))
			m.points = append(m.points, ringPoint{hash: h, shard: i})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so every
		// builder of the same map agrees on the owner.
		return m.points[i].shard < m.points[j].shard
	})
	return nil
}

// Epoch implements controller.ShardMap.
func (m *Map) Epoch() uint64 { return m.MapEpoch }

// OwnerShard returns the shard owning a pair: the first vnode at or after
// the pair's hash, wrapping at the top of the ring.
func (m *Map) OwnerShard(src, dst int32) Shard {
	h := PairHash(src, dst)
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.Shards[m.points[i].shard]
}

// Owner implements controller.ShardMap, returning the owning shard's
// primary and standby base URLs.
func (m *Map) Owner(src, dst int32) (primary, standby string) {
	s := m.OwnerShard(src, dst)
	return s.URL, s.Standby
}

// ShardByID looks a shard up by ID.
func (m *Map) ShardByID(id int) (Shard, bool) {
	for _, s := range m.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return Shard{}, false
}

// WithShardAdded derives the epoch+1 map including a new shard.
func (m *Map) WithShardAdded(s Shard) (*Map, error) {
	next := &Map{
		MapEpoch: m.MapEpoch + 1,
		VNodes:   m.VNodes,
		Shards:   append(append([]Shard(nil), m.Shards...), s),
	}
	if err := next.build(); err != nil {
		return nil, err
	}
	return next, nil
}

// WithShardRemoved derives the epoch+1 map without the given shard.
func (m *Map) WithShardRemoved(id int) (*Map, error) {
	next := &Map{MapEpoch: m.MapEpoch + 1, VNodes: m.VNodes}
	for _, s := range m.Shards {
		if s.ID != id {
			next.Shards = append(next.Shards, s)
		}
	}
	if len(next.Shards) == len(m.Shards) {
		return nil, fmt.Errorf("ring: no shard with id %d", id)
	}
	if len(next.Shards) == 0 {
		return nil, fmt.Errorf("ring: cannot remove the last shard")
	}
	if err := next.build(); err != nil {
		return nil, err
	}
	return next, nil
}

// EncodeJSON serializes the map for /v1/ring/map and map files.
func (m *Map) EncodeJSON() ([]byte, error) {
	return json.Marshal(m)
}

// DecodeMap parses an EncodeJSON payload and rebuilds the ring points.
func DecodeMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ring: decode map: %w", err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("ring: decoded map has no shards")
	}
	if err := m.build(); err != nil {
		return nil, err
	}
	return &m, nil
}
