package ring

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Router is the thin stateless front of a sharded control plane. Clients
// that don't carry a shard map send every request here; the router proxies
// pair-scoped requests to the owning shard (primary first, standby on
// failure), fans relay registrations out to all shards, and serves the
// current map so smart clients can bootstrap and go shard-direct.
//
// The router holds no decision state. Its one cross-shard responsibility
// is the §4.6 budget percentile, the single global datum in the design:
// AggregateBudget pulls each shard's digest, inverts the sample-weighted
// mixture of their CDF sketches, and pushes the fleet threshold back to
// every shard.
type Router struct {
	cur  atomic.Pointer[Map]
	http *http.Client
	reg  *obs.Registry

	proxied   *obs.Counter
	proxyErrs *obs.Counter
	merges    *obs.Counter

	mu       sync.Mutex
	stopCh   chan struct{} // guarded by mu
	loopDone chan struct{} // guarded by mu
}

// NewRouter builds a router over the given starting map. reg may be nil
// to skip metrics.
func NewRouter(m *Map, reg *obs.Registry) *Router {
	r := &Router{
		// Proxy legs are LAN/WAN control RPCs like the client's own; a
		// short hard timeout keeps a dead shard from pinning the router.
		http: &http.Client{
			Timeout: 5 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		reg: reg,
	}
	r.cur.Store(m)
	if reg != nil {
		r.proxied = reg.Counter(obs.L("via_ring_proxied_total", "role", "router"))
		r.proxyErrs = reg.Counter(obs.L("via_ring_proxy_errors_total", "role", "router"))
		r.merges = reg.Counter(obs.L("via_ring_budget_merges_total", "role", "router"))
		reg.GaugeFunc(obs.L("via_ring_router_map_epoch", "role", "router"), func() float64 {
			return float64(r.cur.Load().MapEpoch)
		})
	}
	return r
}

// Current returns the map the router is routing by.
func (r *Router) Current() *Map { return r.cur.Load() }

// Install adopts a newer-epoch map (same monotone rule as Gate.Install).
func (r *Router) Install(m *Map) error {
	for {
		cur := r.cur.Load()
		if m.MapEpoch <= cur.MapEpoch {
			return errStaleEpoch(m.MapEpoch, cur.MapEpoch)
		}
		if r.cur.CompareAndSwap(cur, m) {
			return nil
		}
	}
}

// Handler returns the router's HTTP surface.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/choose", r.proxyPair)
	mux.HandleFunc("POST /v1/report", r.proxyPair)
	mux.HandleFunc("POST /v1/relays/register", r.fanoutRegister)
	mux.HandleFunc("GET /v1/relays", r.proxyFirst)
	mux.HandleFunc("GET /v1/stats", r.sumStats)
	mux.HandleFunc("GET /v1/ring/map", r.serveMap)
	mux.HandleFunc("GET /v1/health", r.health)
	mux.HandleFunc("GET /metrics", r.metrics)
	return mux
}

// proxyPair forwards a choose/report to the pair's owning shard, standby
// on primary failure, and relays the shard's status and body verbatim.
func (r *Router) proxyPair(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxPairBody))
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var hdr pairHeader
	if err := json.Unmarshal(body, &hdr); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return
	}
	m := r.cur.Load()
	owner := m.OwnerShard(hdr.Src, hdr.Dst)
	if r.proxied != nil {
		r.proxied.Inc()
	}
	var lastErr error
	for _, base := range shardTargets(owner) {
		resp, err := r.http.Post(base+req.URL.Path, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		// 307 means the shard holds a newer map than the router: adopt it
		// lazily by following the shard's answer for this request.
		if resp.StatusCode == http.StatusTemporaryRedirect {
			loc := resp.Header.Get("Location")
			resp.Body.Close() //vialint:ignore errwrap redirect body is empty; the Location header is the payload
			if loc == "" {
				lastErr = fmt.Errorf("ring: shard %d redirected without a location", owner.ID)
				continue
			}
			resp, err = r.http.Post(loc, "application/json", bytes.NewReader(body))
			if err != nil {
				lastErr = err
				continue
			}
		}
		relayResponse(w, resp)
		return
	}
	if r.proxyErrs != nil {
		r.proxyErrs.Inc()
	}
	http.Error(w, "ring: no shard reachable for pair: "+lastErr.Error(), http.StatusBadGateway)
}

// fanoutRegister mirrors a relay registration to every shard — the relay
// directory is replicated, not partitioned, because any shard may pick
// any relay for its pairs.
func (r *Router) fanoutRegister(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxPairBody))
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	m := r.cur.Load()
	var firstErr error
	okCount := 0
	for _, s := range m.Shards {
		var sent bool
		for _, base := range shardTargets(s) {
			resp, err := r.http.Post(base+req.URL.Path, "application/json", bytes.NewReader(body))
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			io.Copy(io.Discard, resp.Body) //vialint:ignore errwrap drain for connection reuse; only the status matters
			resp.Body.Close()              //vialint:ignore errwrap drained body close has no recovery
			if resp.StatusCode == http.StatusOK {
				sent = true
				break
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("ring: shard %d register returned %s", s.ID, resp.Status)
			}
		}
		if sent {
			okCount++
		}
	}
	if okCount == 0 {
		if r.proxyErrs != nil {
			r.proxyErrs.Inc()
		}
		http.Error(w, "ring: registration reached no shard: "+firstErr.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, transport.RegisterRelayResponse{OK: true})
}

// proxyFirst forwards a read to the first shard that answers 200 — used
// for the relay directory, which fanoutRegister keeps replicated.
func (r *Router) proxyFirst(w http.ResponseWriter, req *http.Request) {
	m := r.cur.Load()
	var lastErr error
	for _, s := range m.Shards {
		for _, base := range shardTargets(s) {
			resp, err := r.http.Get(base + req.URL.Path)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body) //vialint:ignore errwrap drain for connection reuse on a non-200
				resp.Body.Close()              //vialint:ignore errwrap error-path close; the status is the failure
				lastErr = fmt.Errorf("ring: shard %d returned %s", s.ID, resp.Status)
				continue
			}
			relayResponse(w, resp)
			return
		}
	}
	http.Error(w, "ring: no shard reachable: "+lastErr.Error(), http.StatusBadGateway)
}

// sumStats merges every reachable shard's counters.
func (r *Router) sumStats(w http.ResponseWriter, _ *http.Request) {
	m := r.cur.Load()
	var sum transport.StatsResponse
	for _, s := range m.Shards {
		var st transport.StatsResponse
		if r.getJSON(s, "/v1/stats", &st) == nil {
			sum.Relays = max(sum.Relays, st.Relays)
			sum.Reports += st.Reports
			sum.Chooses += st.Chooses
			sum.Panics += st.Panics
		}
	}
	writeJSON(w, sum)
}

// serveMap hands the router's current map to bootstrapping clients.
func (r *Router) serveMap(w http.ResponseWriter, _ *http.Request) {
	data, err := r.cur.Load().EncodeJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //vialint:ignore errwrap best-effort HTTP response write; the client observes any failure
}

// health answers OK when every shard has a reachable primary or standby.
func (r *Router) health(w http.ResponseWriter, _ *http.Request) {
	m := r.cur.Load()
	ok := true
	relays := 0
	for _, s := range m.Shards {
		var h transport.HealthResponse
		if r.getJSON(s, "/v1/health", &h) != nil {
			ok = false
			continue
		}
		relays = max(relays, h.Relays)
	}
	writeJSON(w, transport.HealthResponse{OK: ok, Relays: relays})
}

// metrics serves the router's own registry (the shards serve their own).
func (r *Router) metrics(w http.ResponseWriter, _ *http.Request) {
	if r.reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.reg.WriteText(w) //vialint:ignore errwrap best-effort HTTP response write; the scraper observes any failure
}

// BudgetAggregate is one round of cross-shard §4.6 aggregation.
type BudgetAggregate struct {
	// Shards is how many shards answered the digest poll.
	Shards int `json:"shards"`
	// Warmed is how many of those had n >= 20 (a usable local threshold).
	Warmed int `json:"warmed"`
	// N is the fleet-wide benefit sample count (all answering shards).
	N int64 `json:"n"`
	// Threshold is the fleet-merged benefit percentile: the inverse of the
	// N-weighted mixture of warmed shards' CDF sketches; only meaningful
	// when Warmed > 0.
	Threshold float64 `json:"threshold"`
	// Installed is how many shards accepted the merged threshold.
	Installed int `json:"installed"`
}

// AggregateBudget runs one digest/merge/install round: poll every shard's
// local benefit percentile, merge the warmed ones, and push the fleet
// threshold back to all shards. The merge inverts the sample-weighted
// mixture of the shards' P² CDF sketches — the estimate an unsharded
// controller's single estimator would produce over the union stream.
// Averaging per-shard quantiles instead would be badly biased under zipf
// load, where each shard's distribution is dominated by its own hottest
// pairs; the mixture inverse keeps the global mass (e.g. the pile of
// zero-benefit samples from unwarmed pairs) in view.
func (r *Router) AggregateBudget() (BudgetAggregate, error) {
	m := r.cur.Load()
	var agg BudgetAggregate
	var warmed []transport.BudgetDigestResponse
	for _, s := range m.Shards {
		var d transport.BudgetDigestResponse
		if err := r.getJSON(s, "/v1/budget/digest", &d); err != nil || !d.OK {
			continue
		}
		agg.Shards++
		agg.N += d.N
		if d.N >= 20 {
			agg.Warmed++
			warmed = append(warmed, d)
		}
	}
	if agg.Shards == 0 {
		return agg, fmt.Errorf("ring: no shard answered the budget digest poll")
	}
	if agg.Warmed == 0 {
		return agg, nil // nothing to merge yet; shards keep their local gates
	}
	agg.Threshold = mergeThreshold(warmed)
	for _, s := range m.Shards {
		if r.postMerged(s, agg.N, agg.Threshold) == nil {
			agg.Installed++
		}
	}
	if r.merges != nil {
		r.merges.Inc()
	}
	return agg, nil
}

// StartBudgetLoop aggregates every interval until Stop. One loop per
// router; a second call replaces the first.
func (r *Router) StartBudgetLoop(interval time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stopCh, r.loopDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.AggregateBudget() //vialint:ignore errwrap periodic best-effort merge; a missed round is retried next tick
			}
		}
	}()
}

// Stop halts the budget loop (no-op if not running).
func (r *Router) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopLocked()
}

func (r *Router) stopLocked() {
	if r.stopCh != nil {
		close(r.stopCh)
		<-r.loopDone
		r.stopCh, r.loopDone = nil, nil
	}
}

// mergeThreshold computes the fleet benefit percentile from warmed shard
// digests. When every digest carries a P² marker sketch, it inverts the
// N-weighted mixture CDF at the target quantile by bisection; if any shard
// reports no sketch (older digest format), it falls back to the N-weighted
// mean of local thresholds.
func mergeThreshold(warmed []transport.BudgetDigestResponse) float64 {
	sketched := true
	for _, d := range warmed {
		if d.P <= 0 || d.Pos[4] < 5 {
			sketched = false
			break
		}
	}
	if !sketched {
		var weighted float64
		var n int64
		for _, d := range warmed {
			weighted += float64(d.N) * d.Threshold
			n += d.N
		}
		return weighted / float64(n)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var total float64
	for _, d := range warmed {
		lo = math.Min(lo, d.Q[0])
		hi = math.Max(hi, d.Q[4])
		total += float64(d.N)
	}
	if !(lo < hi) {
		return lo // the whole fleet's mass sits at one point
	}
	target := warmed[0].P * total
	for i := 0; i < 64; i++ {
		mid := lo + (hi-lo)/2
		var below float64
		for _, d := range warmed {
			below += float64(d.N) * sketchCDF(d, mid)
		}
		if below < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// sketchCDF evaluates one shard's piecewise-linear CDF at x, interpolating
// between the five P² markers: marker i sits at height Q[i] with 1-based
// rank Pos[i] out of Pos[4] samples. Equal-height markers (a point mass,
// e.g. many zero-benefit samples) read as a step, taking the upper rank so
// the CDF stays right-continuous.
func sketchCDF(d transport.BudgetDigestResponse, x float64) float64 {
	if x < d.Q[0] {
		return 0
	}
	if x >= d.Q[4] {
		return 1
	}
	n := d.Pos[4]
	if n <= 1 {
		return 1
	}
	rank := func(i int) float64 { return (d.Pos[i] - 1) / (n - 1) }
	for i := 3; i >= 0; i-- {
		if x >= d.Q[i] {
			if d.Q[i+1] <= d.Q[i] {
				return rank(i + 1)
			}
			return rank(i) + (rank(i+1)-rank(i))*(x-d.Q[i])/(d.Q[i+1]-d.Q[i])
		}
	}
	return 0
}

// getJSON fetches path from a shard (primary, then standby) into out.
func (r *Router) getJSON(s Shard, path string, out any) error {
	var lastErr error
	for _, base := range shardTargets(s) {
		resp, err := r.http.Get(base + path)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body) //vialint:ignore errwrap drain for connection reuse on a non-200
			resp.Body.Close()              //vialint:ignore errwrap error-path close; the status is the failure
			lastErr = fmt.Errorf("ring: shard %d %s returned %s", s.ID, path, resp.Status)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close() //vialint:ignore errwrap body fully consumed by the decoder
		if err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// postMerged pushes the merged threshold to a shard (primary, standby).
func (r *Router) postMerged(s Shard, n int64, threshold float64) error {
	body, err := json.Marshal(transport.BudgetMergedRequest{N: n, Threshold: threshold})
	if err != nil {
		return err
	}
	var lastErr error
	for _, base := range shardTargets(s) {
		resp, err := r.http.Post(base+"/v1/budget/merged", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body) //vialint:ignore errwrap drain for connection reuse; only the status matters
		resp.Body.Close()              //vialint:ignore errwrap drained body close has no recovery
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("ring: shard %d merged-install returned %s", s.ID, resp.Status)
	}
	return lastErr
}

// shardTargets lists a shard's endpoints in preference order.
func shardTargets(s Shard) []string {
	t := make([]string, 0, 2)
	if s.URL != "" {
		t = append(t, s.URL)
	}
	if s.Standby != "" {
		t = append(t, s.Standby)
	}
	return t
}

// relayResponse copies a proxied shard response to the client verbatim.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close() //vialint:ignore errwrap proxied body close has no recovery
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //vialint:ignore errwrap best-effort proxy copy; the client observes any truncation
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //vialint:ignore errwrap best-effort HTTP response write; the client observes any failure
}
