package ring

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/quality"
)

// constClock freezes algorithm time so a fleet shard and a reference
// controller make byte-identical decisions (nowHours stays 0 for both).
func constClock() func() time.Time {
	t0 := time.Date(2016, 8, 22, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func soakViaConfig(seed uint64) core.ViaConfig {
	cfg := core.DefaultViaConfig(quality.RTT)
	cfg.Budget = 0.8
	cfg.Seed = seed
	return cfg
}

// TestSingleShardDegeneratesByteIdentically drives the same sequential
// call stream through a 1-shard fleet and through a plain unsharded
// controller, then compares full strategy state bytes. A one-shard ring
// must be today's behavior exactly — same decisions, same RNG positions,
// same estimator states.
func TestSingleShardDegeneratesByteIdentically(t *testing.T) {
	work := newSoakWorkload(SoakConfig{Pairs: 24, ZipfS: 1.1, Relays: 4})

	fleet, err := NewFleet(FleetConfig{
		Shards:      1,
		WALRoot:     t.TempDir(),
		NewStrategy: func() core.Strategy { return core.NewVia(soakViaConfig(7), nil) },
		Clock:       constClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	plain := controller.New(controller.Config{
		Strategy: core.NewVia(soakViaConfig(7), nil),
		Clock:    constClock(),
	})
	ts := httptest.NewServer(plain.Handler())
	defer ts.Close()

	ringClient := fleet.NewClient()
	plainClient := controller.NewClient(ts.URL)

	// Same pair sequence on both sides, strictly sequential.
	seq := make([]int, 0, 300)
	for i := 0; i < 300; i++ {
		seq = append(seq, (i*37)%24)
	}
	for _, pair := range seq {
		src, dst := work.groups(pair)
		opt, err := ringClient.Choose(src, dst, work.opts[pair])
		if err != nil {
			t.Fatalf("ring choose: %v", err)
		}
		if err := ringClient.Report(src, dst, opt, work.measure(pair, opt)); err != nil {
			t.Fatalf("ring report: %v", err)
		}
		popt, err := plainClient.Choose(src, dst, work.opts[pair])
		if err != nil {
			t.Fatalf("plain choose: %v", err)
		}
		if popt != opt {
			t.Fatalf("pair %d: ring chose %+v, plain chose %+v", pair, opt, popt)
		}
		if err := plainClient.Report(src, dst, popt, work.measure(pair, popt)); err != nil {
			t.Fatalf("plain report: %v", err)
		}
	}

	ringState, _, _, err := fleet.ShardState(0)
	if err != nil {
		t.Fatal(err)
	}
	plainState, err := plain.StrategyState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ringState, plainState) {
		t.Fatalf("single-shard ring state (%d bytes) differs from plain controller state (%d bytes)", len(ringState), len(plainState))
	}
}

// TestEpochStaleClientRedirects grows the ring under a client still
// holding the old map; the client must follow 307s, re-fetch the map,
// and lose no requests.
func TestEpochStaleClientRedirects(t *testing.T) {
	work := newSoakWorkload(SoakConfig{Pairs: 64, ZipfS: 1.1, Relays: 3})
	fleet, err := NewFleet(FleetConfig{
		Shards:      2,
		WALRoot:     t.TempDir(),
		NewStrategy: func() core.Strategy { return core.NewVia(soakViaConfig(3), nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	client := fleet.NewClient() // snapshots the epoch-1 map
	if err := fleet.AddShard(); err != nil {
		t.Fatal(err)
	}
	if got := fleet.Map().MapEpoch; got != 2 {
		t.Fatalf("map epoch after AddShard = %d, want 2", got)
	}

	// Drive every pair once under the stale map: pairs that moved to the
	// new shard 307 on first touch; nothing may fail.
	for pair := 0; pair < 64; pair++ {
		src, dst := work.groups(pair)
		opt, err := client.Choose(src, dst, work.opts[pair])
		if err != nil {
			t.Fatalf("choose pair %d: %v", pair, err)
		}
		if err := client.Report(src, dst, opt, work.measure(pair, opt)); err != nil {
			t.Fatalf("report pair %d: %v", pair, err)
		}
	}
	if client.Redirects() == 0 {
		t.Fatal("stale client never hit a 307; the redirect path went unexercised")
	}
	// After the first redirect the client refreshed its map; it must now
	// agree with the fleet.
	if got := client.Redirects(); got > 130 {
		t.Fatalf("client took %d redirects for 128 requests; map refresh is not sticking", got)
	}
}

// TestRedirectReachesPromotedReplica pins the nastiest stale-map corner:
// a client holding the pre-growth map 307s toward a shard whose primary
// is already dead and whose standby is still mid-promotion. The redirect
// target refuses connections, the standby answers 503 until its
// promotion lands — and the client's retry budget must carry the request
// across that whole window to the promoted replica without losing it.
func TestRedirectReachesPromotedReplica(t *testing.T) {
	work := newSoakWorkload(SoakConfig{Pairs: 64, ZipfS: 1.1, Relays: 3})
	fleet, err := NewFleet(FleetConfig{
		Shards:      2,
		WALRoot:     t.TempDir(),
		NewStrategy: func() core.Strategy { return core.NewVia(soakViaConfig(13), nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	client := fleet.NewClient() // snapshots the epoch-1 map
	client.Retry = controller.RetryPolicy{
		MaxAttempts: 12,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		Timeout:     2 * time.Second,
	}
	if err := fleet.AddShard(); err != nil {
		t.Fatal(err)
	}
	const grown = 2
	m := fleet.Map()
	moved := -1
	for pair := 0; pair < 64; pair++ {
		src, dst := work.groups(pair)
		if m.OwnerShard(src, dst).ID == grown {
			moved = pair
			break
		}
	}
	if moved < 0 {
		t.Skip("no test pair moved to the new shard under this map (vnode layout)")
	}

	// Kill the new shard's primary now; promote its standby only after the
	// client has had time to chase the 307 into the dead primary and eat
	// the standby's pre-promotion 503s.
	if err := fleet.KillShard(grown); err != nil {
		t.Fatal(err)
	}
	promoted := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		promoted <- fleet.PromoteShardStandby(grown)
	}()

	src, dst := work.groups(moved)
	opt, err := client.Choose(src, dst, work.opts[moved])
	if err != nil {
		t.Fatalf("choose across kill+promote window: %v", err)
	}
	if err := client.Report(src, dst, opt, work.measure(moved, opt)); err != nil {
		t.Fatalf("report to promoted replica: %v", err)
	}
	if err := <-promoted; err != nil {
		t.Fatalf("promote: %v", err)
	}
	if client.Redirects() == 0 {
		t.Fatal("stale client never took a 307; the mid-promotion redirect path went unexercised")
	}

	// The decision must have been served by the promoted standby — the
	// primary died before the request and never came back.
	fleet.mu.Lock()
	sh := fleet.shards[grown]
	primN, stbyN := sh.gatePrim.Decisions(), sh.gateStby.Decisions()
	fleet.mu.Unlock()
	if primN != 0 {
		t.Fatalf("dead primary served %d decisions", primN)
	}
	if stbyN == 0 {
		t.Fatal("promoted standby served no decisions; the request landed somewhere else")
	}
}

// TestRebalanceDuringInflightChoose grows the ring while workers hammer
// it; zero request failures allowed, and the moved pairs' records must
// land on the new shard.
func TestRebalanceDuringInflightChoose(t *testing.T) {
	work := newSoakWorkload(SoakConfig{Pairs: 48, ZipfS: 1.0, Relays: 3})
	fleet, err := NewFleet(FleetConfig{
		Shards:      2,
		WALRoot:     t.TempDir(),
		NewStrategy: func() core.Strategy { return core.NewVia(soakViaConfig(11), nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fleet.NewClient()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				pair := i % 48
				i++
				src, dst := work.groups(pair)
				opt, err := client.Choose(src, dst, work.opts[pair])
				if err != nil {
					failures.Add(1)
					continue
				}
				if err := client.Report(src, dst, opt, work.measure(pair, opt)); err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	if err := fleet.AddShard(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the rebalance", n)
	}
	if fleet.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", fleet.Rebalances())
	}
	// The new shard must own pairs and hold their replayed history.
	m := fleet.Map()
	owned := 0
	for pair := 0; pair < 48; pair++ {
		src, dst := work.groups(pair)
		if m.OwnerShard(src, dst).ID == 2 {
			owned++
		}
	}
	if owned == 0 {
		t.Skip("no test pair moved to the new shard under this map (vnode layout); ownership exercised elsewhere")
	}
	state, _, lsn, err := fleet.ShardState(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 || lsn == 0 {
		t.Fatalf("new shard has state=%dB lsn=%d; rebalance import left it empty", len(state), lsn)
	}
}

// TestFleetRouterServesMapAndHealth covers the router surface the
// clients bootstrap from.
func TestFleetRouterServesMapAndHealth(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{
		Shards:      2,
		WALRoot:     t.TempDir(),
		NewStrategy: func() core.Strategy { return core.NewVia(soakViaConfig(5), nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	m, err := FetchMap(fleet.RouterURL())
	if err != nil {
		t.Fatal(err)
	}
	if m.MapEpoch != 1 || len(m.Shards) != 2 {
		t.Fatalf("router map epoch=%d shards=%d, want 1/2", m.MapEpoch, len(m.Shards))
	}
	resp, err := http.Get(fleet.RouterURL() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router health status %d", resp.StatusCode)
	}
}
