package ring

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// pairOwnedBy finds a (src, src+1) pair the given shard owns.
func pairOwnedBy(t *testing.T, m *Map, shardID int) (int32, int32) {
	t.Helper()
	for src := int32(0); src < 100_000; src += 2 {
		if m.OwnerShard(src, src+1).ID == shardID {
			return src, src + 1
		}
	}
	t.Fatalf("no pair owned by shard %d in probe range", shardID)
	return 0, 0
}

func chooseBody(src, dst int32) []byte {
	return []byte(fmt.Sprintf(`{"src":%d,"dst":%d,"candidates":[]}`, src, dst))
}

func TestGateRedirectsForeignPairs(t *testing.T) {
	m, err := NewMap(0, Shard{ID: 0, URL: "http://s0"}, Shard{ID: 1, URL: "http://s1"})
	if err != nil {
		t.Fatal(err)
	}
	var innerHits int
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		innerHits++
		if r.Method == http.MethodPost {
			// The gate must restore the body it peeked at.
			body, _ := io.ReadAll(r.Body)
			var hdr pairHeader
			if err := json.Unmarshal(body, &hdr); err != nil {
				t.Errorf("inner handler got unreadable body: %v", err)
			}
		}
		w.WriteHeader(http.StatusOK)
	})
	gate := NewGate(0, inner, m, nil)

	// Foreign pair → 307 with the owner's URL and the map epoch.
	src, dst := pairOwnedBy(t, m, 1)
	rec := httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/choose", bytes.NewReader(chooseBody(src, dst))))
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("foreign pair: status %d, want 307", rec.Code)
	}
	if loc := rec.Header().Get("Location"); loc != "http://s1/v1/choose" {
		t.Fatalf("Location = %q, want owner URL", loc)
	}
	if ep := rec.Header().Get("X-Via-Ring-Epoch"); ep != "1" {
		t.Fatalf("X-Via-Ring-Epoch = %q, want 1", ep)
	}
	if innerHits != 0 {
		t.Fatal("foreign pair reached the inner handler")
	}

	// Owned pair → passes through with a readable body.
	src, dst = pairOwnedBy(t, m, 0)
	rec = httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/report", bytes.NewReader(chooseBody(src, dst))))
	if rec.Code != http.StatusOK || innerHits != 1 {
		t.Fatalf("owned pair: status %d innerHits %d, want 200/1", rec.Code, innerHits)
	}

	// Non-pair routes pass through untouched.
	rec = httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if innerHits != 2 {
		t.Fatal("GET /v1/health did not reach the inner handler")
	}
}

func TestGateMapInstallProtocol(t *testing.T) {
	m, err := NewMap(0, Shard{ID: 0, URL: "http://s0"})
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate(0, http.NotFoundHandler(), m, nil)

	// GET serves the current map.
	rec := httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ring/map", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET map: status %d", rec.Code)
	}
	got, err := DecodeMap(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.MapEpoch != 1 {
		t.Fatalf("served epoch %d, want 1", got.MapEpoch)
	}

	// POST with a newer epoch installs.
	next, err := m.WithShardAdded(Shard{ID: 1, URL: "http://s1"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := next.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ring/map", bytes.NewReader(data)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("POST newer map: status %d, want 204", rec.Code)
	}
	if gate.Current().MapEpoch != 2 {
		t.Fatalf("installed epoch %d, want 2", gate.Current().MapEpoch)
	}

	// Re-POSTing the same epoch is a conflict: installs are monotone.
	rec = httptest.NewRecorder()
	gate.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ring/map", bytes.NewReader(data)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("POST stale map: status %d, want 409", rec.Code)
	}
}
