package obs

import (
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: cumulative counts per upper
// bound plus an implicit +Inf overflow bucket, a total count, and a sum.
// Observations are lock-free atomic adds, so GOMAXPROCS-many goroutines
// can feed one histogram without serializing; quantiles are estimated by
// linear interpolation inside the covering bucket.
//
// Bounds are immutable after construction and must be ascending. The
// package ships two standard layouts: LatencyBuckets (seconds, control
// RPC scale) and CountBuckets (small cardinalities like top-k sizes).
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge
}

// LatencyBuckets spans 1ms..10s exponentially — control RPC handling and
// call setup live comfortably inside it.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// CountBuckets suits small integer distributions (top-k sizes, candidate
// set sizes).
func CountBuckets() []float64 {
	return []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// Nil or empty bounds fall back to LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe folds one sample in.
//
//via:noalloc
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (shared; callers must not
// mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of per-bucket (non-cumulative) counts,
// the last entry being the +Inf overflow bucket. Concurrent observers may
// land between reads; the snapshot is approximate under load, exact at
// rest.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the covering bucket. It reports ok=false on an empty histogram.
// A sample in the overflow bucket pins the estimate to the largest finite
// bound (there is no upper edge to interpolate toward); a single sample
// yields its bucket's interpolated midpoint-by-rank, which for bucket 0
// interpolates from the bucket's lower edge (0 for the standard layouts —
// all exported metrics are nonnegative).
func (h *Histogram) Quantile(q float64) (float64, bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // the q-quantile of any sample set contains at least one sample
	}
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1], true
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (rank-cum)/n*(hi-lo), true
	}
	// Unreachable when count > 0, but keep a sane answer under racing
	// observers.
	return h.bounds[len(h.bounds)-1], true
}
