// Package obs is the repo's zero-dependency observability layer: a
// sharded metrics registry (counters, gauges, callback gauges, and
// fixed-bucket histograms with quantile summaries) plus a lightweight
// span sink that records per-call decision traces as structured JSONL.
//
// Two constraints shape the design, both enforced by vialint:
//
//   - Sim-time awareness (determinism): nothing in this package reads the
//     wall clock or ambient randomness. Every timestamp is supplied by the
//     caller — live-network packages (controller, relay, client) pass real
//     durations, simulation packages pass virtual hours — so the package
//     is a legal dependency of the deterministic simulation stack and is
//     itself listed in the determinism analyzer's targets.
//   - Safety under the parallel Runner (lockcheck): registry shards are
//     `// guarded by mu` annotated RWMutex maps, and every metric value is
//     a lock-free atomic, so GOMAXPROCS-many strategy replays can hammer
//     one counter without serializing.
//
// Naming scheme (see DESIGN.md §11): `via_<subsystem>_<noun>` with unit
// suffixes `_total` (monotonic counters), `_seconds`, `_bytes`, and an
// optional label set rendered into the name by L, e.g.
// `via_relay_forwarded_packets_total{relay="3"}`. Exposition (WriteText)
// is a Prometheus-compatible text format; histograms additionally export
// `_p50`/`_p95`/`_p99` gauge lines so a snapshot diff shows distribution
// drift directly.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates registered metric types so a name cannot silently
// change meaning between call sites.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gaugefunc"
	case kindHistogram:
		return "histogram"
	case kindCounterFunc:
		return "counterfunc"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// entry is one registered metric.
type entry struct {
	kind kind
	c    *Counter
	g    *Gauge
	f    func() float64
	cf   func() int64
	h    *Histogram
}

// shardCount shards the registry's name map. Registration is rare but
// lookups happen on hot paths (a lazily-fetched counter per decision), so
// shards keep readers uncontended. Power of two: the index is a mask.
const shardCount = 16

type registryShard struct {
	mu sync.RWMutex
	m  map[string]*entry // guarded by mu
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	shards [shardCount]registryShard
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// fnv1a hashes a metric name for shard selection.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (r *Registry) shard(name string) *registryShard {
	return &r.shards[fnv1a(name)&(shardCount-1)]
}

// lookup returns the entry for name if present.
func (s *registryShard) lookup(name string) (*entry, bool) {
	s.mu.RLock()
	e, ok := s.m[name] // reads of a nil map are legal: miss
	s.mu.RUnlock()
	return e, ok
}

// getOrCreate installs build()'s entry under name unless one already
// exists; a kind clash is a programming error and panics.
func (r *Registry) getOrCreate(name string, k kind, build func() *entry) *entry {
	s := r.shard(name)
	if e, ok := s.lookup(name); ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, k))
		}
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*entry)
	}
	if e, ok := s.m[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, k))
		}
		return e
	}
	e := build()
	s.m[name] = e
	return e
}

// Counter returns the named monotonic counter, creating it on first use.
// Nil-safe: a nil registry returns a detached counter, so instrumented
// code needs no "is observability on?" branches.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	e := r.getOrCreate(name, kindCounter, func() *entry {
		return &entry{kind: kindCounter, c: &Counter{}}
	})
	return e.c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe like
// Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	e := r.getOrCreate(name, kindGauge, func() *entry {
		return &entry{kind: kindGauge, g: &Gauge{}}
	})
	return e.g
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// the bridge for components that already keep their own atomics (relay
// packet counts, client failovers). Re-registering a name replaces the
// callback: a revived relay re-registers its node and the new process's
// counters take over. Nil registry: no-op.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if r == nil {
		return
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*entry)
	}
	if e, ok := s.m[name]; ok && e.kind != kindGaugeFunc {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as gaugefunc", name, e.kind))
	}
	if f == nil { // nil callback reads as zero, like every other instrument
		f = func() float64 { return 0 }
	}
	s.m[name] = &entry{kind: kindGaugeFunc, f: f}
}

// CounterFunc registers a callback counter evaluated at exposition time —
// the bridge for components that already keep their own monotonic atomics
// (the decision cache's hit/miss counts) and must not pay a second atomic
// add on the hot path to mirror them into a Counter. The callback must be
// monotonic. Replace semantics mirror GaugeFunc: re-registering a name
// swaps the callback, so a rebuilt component rebinds cleanly. Nil
// registry: no-op.
func (r *Registry) CounterFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*entry)
	}
	if e, ok := s.m[name]; ok && e.kind != kindCounterFunc {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as counterfunc", name, e.kind))
	}
	if f == nil { // nil callback reads as zero, like every other instrument
		f = func() int64 { return 0 }
	}
	s.m[name] = &entry{kind: kindCounterFunc, cf: f}
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given bucket upper bounds on first use (later calls may pass nil
// bounds to fetch the existing instance). Nil-safe like Counter.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	e := r.getOrCreate(name, kindHistogram, func() *entry {
		return &entry{kind: kindHistogram, h: NewHistogram(bounds)}
	})
	return e.h
}

// each calls fn for every registered metric, sorted by name — the
// deterministic iteration exposition and snapshots rely on.
func (r *Registry) each(fn func(name string, e *entry)) {
	type named struct {
		name string
		e    *entry
	}
	var all []named
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, e := range s.m {
			all = append(all, named{name, e})
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, n := range all {
		fn(n.name, n.e)
	}
}

// Snapshot flattens every metric to name → value: counters and gauges
// directly, histograms as `<name>_count`, `<name>_sum`, and
// `<name>_p50/..p95/..p99` entries. Tests assert on this map; the chaos
// harness diffs two of them.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.each(func(name string, e *entry) {
		switch e.kind {
		case kindCounter:
			out[name] = float64(e.c.Value())
		case kindGauge:
			out[name] = e.g.Value()
		case kindGaugeFunc:
			out[name] = e.f()
		case kindCounterFunc:
			out[name] = float64(e.cf())
		case kindHistogram:
			base, labels := splitLabels(name)
			out[joinLabels(base+"_count", labels)] = float64(e.h.Count())
			out[joinLabels(base+"_sum", labels)] = e.h.Sum()
			for _, q := range []struct {
				suffix string
				q      float64
			}{{"_p50", 0.5}, {"_p95", 0.95}, {"_p99", 0.99}} {
				if v, ok := e.h.Quantile(q.q); ok {
					out[joinLabels(base+q.suffix, labels)] = v
				}
			}
		}
	})
	return out
}

// Counter is a monotonic atomic counter. The zero value is ready to use
// (and is what a nil registry hands out: a detached, harmless sink).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//via:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error but not checked on
// the hot path).
//
//via:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//via:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop (gauges are low-rate; contention is not
// a concern).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// L renders a metric name with a label set: L("x_total", "relay", "3")
// → `x_total{relay="3"}`. Keys are emitted in the order given; callers
// pass them in a fixed order so the same series always maps to the same
// string. Values are escaped for quotes and backslashes.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: L requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `"\`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitLabels splits `base{labels}` into its parts; names without labels
// return an empty label string.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels re-attaches a label string produced by splitLabels.
func joinLabels(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}
