package obs

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("via_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("via_test_total"); again != c {
		t.Error("second Counter call returned a different instance")
	}

	g := r.Gauge("via_test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.GaugeFunc("z", func() float64 { return 1 })
	r.Histogram("h", nil).Observe(1)
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("via_conflict")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("via_conflict")
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("via_live", func() float64 { return 1 })
	r.GaugeFunc("via_live", func() float64 { return 2 }) // revived component re-registers
	if got := r.Snapshot()["via_live"]; got != 2 {
		t.Errorf("gaugefunc = %v, want the replacement's 2", got)
	}
}

func TestLabelRendering(t *testing.T) {
	if got, want := L("x_total", "relay", "3"), `x_total{relay="3"}`; got != want {
		t.Errorf("L = %q, want %q", got, want)
	}
	if got, want := L("x", "a", "1", "b", `q"u`), `x{a="1",b="q\"u"}`; got != want {
		t.Errorf("L = %q, want %q", got, want)
	}
	if got := L("bare"); got != "bare" {
		t.Errorf("L with no labels = %q, want bare name", got)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`via_pkts_total{relay="1"}`).Add(7)
	r.Counter(`via_pkts_total{relay="0"}`).Add(3)
	r.Gauge("via_sessions").Set(2)
	h := r.Histogram("via_lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE via_pkts_total counter",
		`via_pkts_total{relay="0"} 3`,
		`via_pkts_total{relay="1"} 7`,
		"# TYPE via_sessions gauge",
		"via_sessions 2",
		"# TYPE via_lat_seconds histogram",
		`via_lat_seconds_bucket{le="0.1"} 1`,
		`via_lat_seconds_bucket{le="1"} 2`,
		`via_lat_seconds_bucket{le="+Inf"} 3`,
		"via_lat_seconds_count 3",
		"via_lat_seconds_p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name, not one per labeled series.
	if n := strings.Count(out, "# TYPE via_pkts_total"); n != 1 {
		t.Errorf("TYPE lines for via_pkts_total = %d, want 1", n)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("two renders of identical state differ")
	}
	// Labeled series sort within the output.
	if i0, i1 := strings.Index(out, `{relay="0"}`), strings.Index(out, `{relay="1"}`); i0 > i1 {
		t.Error("labeled series not sorted")
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`via_lat{kind="a"}`, []float64{1, 2})
	h.Observe(1.5)
	snap := r.Snapshot()
	if got := snap[`via_lat_count{kind="a"}`]; got != 1 {
		t.Errorf("count = %v, want 1", got)
	}
	if v, ok := snap[`via_lat_p95{kind="a"}`]; !ok || v <= 1 || v > 2 {
		t.Errorf("p95 = %v ok=%v, want in (1, 2]", v, ok)
	}
}

// TestCounterRace hammers one counter from GOMAXPROCS goroutines; run
// under -race (make race) this is the lock-freedom proof, and in any mode
// it checks no increment is lost.
func TestCounterRace(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Fetch by name every iteration: the lookup path is the hot
			// path instrumented code uses.
			for i := 0; i < perWorker; i++ {
				r.Counter("via_race_total").Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := r.Counter("via_race_total").Value(), int64(workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

func TestHistogramRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("via_race_hist", []float64{1, 2, 4})
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%5) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestSpanSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSpanSink(&buf)
	sp := &Span{Name: "via.choose", THours: 1.5, Src: 3, Dst: 41, Outcome: "ucb-pick", Option: "bounce(7)"}
	sp.AddStage("predict", map[string]float64{"candidates": 12}).
		AddStage("prune", map[string]float64{"topk": 4})
	sink.Emit(sp)
	sink.Emit(&Span{Name: "via.choose", Outcome: "direct-default"})
	if sink.Emitted() != 2 {
		t.Errorf("emitted = %d, want 2", sink.Emitted())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (JSONL: one span per line)", len(lines))
	}
	for _, want := range []string{
		`"span":"via.choose"`, `"t_hours":1.5`, `"stage":"predict"`,
		`"candidates":12`, `"outcome":"ucb-pick"`, `"option":"bounce(7)"`,
	} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("span line missing %q: %s", want, lines[0])
		}
	}
}

func TestSpanSinkNilSafe(t *testing.T) {
	var sink *SpanSink
	if sink.Enabled() {
		t.Error("nil sink reports enabled")
	}
	sink.Emit(&Span{Name: "x"}) // must not panic
	var sp *Span
	if sp.AddStage("s", nil) != nil {
		t.Error("nil span AddStage did not stay nil")
	}
	if sink.Emitted() != 0 || sink.Errors() != 0 {
		t.Error("nil sink counters nonzero")
	}
}

func TestSpanSinkCountsWriteErrors(t *testing.T) {
	sink := NewSpanSink(failWriter{})
	sink.Emit(&Span{Name: "x"})
	if sink.Errors() != 1 || sink.Emitted() != 0 {
		t.Errorf("errors=%d emitted=%d, want 1/0", sink.Errors(), sink.Emitted())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "injected write failure" }

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("via_cb_total", func() int64 { return n })
	n = 7
	if got := r.Snapshot()["via_cb_total"]; got != 7 {
		t.Errorf("counterfunc snapshot = %v, want 7", got)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "# TYPE via_cb_total counter") ||
		!strings.Contains(sb.String(), "via_cb_total 7") {
		t.Errorf("counterfunc exposition missing, got:\n%s", sb.String())
	}
	// Revived component re-registers: replacement wins, like GaugeFunc.
	r.CounterFunc("via_cb_total", func() int64 { return 100 })
	if got := r.Snapshot()["via_cb_total"]; got != 100 {
		t.Errorf("counterfunc after replace = %v, want 100", got)
	}
	// Nil callback and nil registry are inert.
	r.CounterFunc("via_nilcb_total", nil)
	if got := r.Snapshot()["via_nilcb_total"]; got != 0 {
		t.Errorf("nil counterfunc = %v, want 0", got)
	}
	var nilReg *Registry
	nilReg.CounterFunc("via_x_total", func() int64 { return 1 })
}
