package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Span is one recorded decision trace: the controller's (or simulator's)
// full reasoning for a single call, from prediction through the final
// pick. Timestamps are virtual (THours — the same clock the selection
// algorithm runs on), so a span log replays identically under a seed;
// wall-clock context, when a live component wants it, goes in an attr.
//
// The JSONL schema (one span per line) is stable and documented in
// DESIGN.md §11:
//
//	{"span":"via.choose","t_hours":12.5,"src":3,"dst":41,
//	 "stages":[{"stage":"predict","attrs":{"candidates":12}},
//	           {"stage":"prune","attrs":{"topk":4}},
//	           {"stage":"budget-gate","attrs":{"benefit":0.21}},
//	           {"stage":"ucb-pick","attrs":{}}],
//	 "outcome":"ucb-pick","option":"bounce(7)"}
type Span struct {
	Name    string  `json:"span"`
	THours  float64 `json:"t_hours"`
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	Stages  []Stage `json:"stages,omitempty"`
	Outcome string  `json:"outcome"`
	Option  string  `json:"option,omitempty"`
}

// Stage is one step of a span. Attrs values are numeric so encoding/json
// renders them with sorted keys — span logs diff cleanly.
type Stage struct {
	Name  string             `json:"stage"`
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// AddStage appends a stage and returns the span for chaining. Nil-safe:
// instrumented code can thread a nil *Span through unconditionally.
func (s *Span) AddStage(name string, attrs map[string]float64) *Span {
	if s == nil {
		return nil
	}
	s.Stages = append(s.Stages, Stage{Name: name, Attrs: attrs})
	return s
}

// SpanSink serializes spans to an io.Writer as JSONL. A nil *SpanSink is
// a valid no-op sink, so callers guard with `if sink.Enabled()` only to
// skip building attr maps, never for correctness.
type SpanSink struct {
	mu  sync.Mutex
	w   io.Writer     // guarded by mu
	enc *json.Encoder // guarded by mu

	emitted atomic.Int64
	errs    atomic.Int64
}

// NewSpanSink builds a sink over w (typically an *os.File or a test
// buffer). The sink owns serialization, not the writer's lifetime; the
// caller closes w.
func NewSpanSink(w io.Writer) *SpanSink {
	return &SpanSink{w: w, enc: json.NewEncoder(w)}
}

// Enabled reports whether emitting to this sink does anything — the
// cheap guard around span construction on hot paths.
func (s *SpanSink) Enabled() bool { return s != nil }

// Emit writes one span as a JSON line. Write failures are counted, not
// returned: telemetry must never fail the call it observes.
func (s *SpanSink) Emit(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	s.mu.Lock()
	err := s.enc.Encode(sp)
	s.mu.Unlock()
	if err != nil {
		s.errs.Add(1)
		return
	}
	s.emitted.Add(1)
}

// Emitted returns how many spans have been written successfully.
func (s *SpanSink) Emitted() int64 {
	if s == nil {
		return 0
	}
	return s.emitted.Load()
}

// Errors returns how many spans were lost to write failures.
func (s *SpanSink) Errors() int64 {
	if s == nil {
		return 0
	}
	return s.errs.Load()
}
