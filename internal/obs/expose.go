package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText renders every registered metric in Prometheus-compatible
// text exposition format, sorted by name (deterministic output: two
// snapshots of identical state are byte-identical). Histograms expand to
// `_bucket{le=...}` cumulative series plus `_count`, `_sum`, and the
// non-standard but diff-friendly `_p50`/`_p95`/`_p99` quantile gauges.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	typed := make(map[string]bool) // bases with an emitted # TYPE line
	emit := func(format string, args ...any) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, format, args...)
	}
	typeLine := func(base, typ string) {
		if !typed[base] {
			typed[base] = true
			emit("# TYPE %s %s\n", base, typ)
		}
	}
	r.each(func(name string, e *entry) {
		base, labels := splitLabels(name)
		switch e.kind {
		case kindCounter:
			typeLine(base, "counter")
			emit("%s %d\n", name, e.c.Value())
		case kindGauge:
			typeLine(base, "gauge")
			emit("%s %s\n", name, formatFloat(e.g.Value()))
		case kindGaugeFunc:
			typeLine(base, "gauge")
			emit("%s %s\n", name, formatFloat(e.f()))
		case kindCounterFunc:
			typeLine(base, "counter")
			emit("%s %d\n", name, e.cf())
		case kindHistogram:
			typeLine(base, "histogram")
			writeHistogram(emit, base, labels, e.h)
		}
	})
	return err
}

// writeHistogram renders one histogram's series set.
func writeHistogram(emit func(string, ...any), base, labels string, h *Histogram) {
	counts := h.BucketCounts()
	var cum int64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		emit("%s %d\n", bucketSeries(base, labels, formatFloat(bound)), cum)
	}
	cum += counts[len(counts)-1]
	emit("%s %d\n", bucketSeries(base, labels, "+Inf"), cum)
	emit("%s %d\n", joinLabels(base+"_count", labels), h.Count())
	emit("%s %s\n", joinLabels(base+"_sum", labels), formatFloat(h.Sum()))
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"_p50", 0.5}, {"_p95", 0.95}, {"_p99", 0.99}} {
		if v, ok := h.Quantile(q.q); ok {
			emit("%s %s\n", joinLabels(base+q.suffix, labels), formatFloat(v))
		}
	}
}

// bucketSeries builds `base_bucket{<labels,>le="bound"}`.
func bucketSeries(base, labels, bound string) string {
	var b strings.Builder
	b.WriteString(base)
	b.WriteString("_bucket{")
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(bound)
	b.WriteString(`"}`)
	return b.String()
}

// formatFloat renders a float compactly: integers without a decimal
// point, everything else with minimal digits.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
