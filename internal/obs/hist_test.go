package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// On-boundary values land in the bucket whose upper bound equals them
	// (le semantics), overflow lands in the +Inf bucket.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 2, 2} // [<=1]=0.5,1 [<=2]=1.5,2 [<=4]=3.9,4 [+Inf]=4.1,100
	if len(got) != len(want) {
		t.Fatalf("bucket count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 3.9 + 4 + 4.1 + 100; math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if v, ok := h.Quantile(0.5); ok {
		t.Errorf("empty histogram returned quantile %v, want ok=false", v)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("q=%v: ok=false with one sample", q)
		}
		// The single sample sits in (1, 2]; every quantile must resolve
		// inside that bucket.
		if v <= 1 || v > 2 {
			t.Errorf("q=%v = %v, want in (1, 2]", q, v)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// 10 samples in (10, 20]: the median interpolates to the bucket middle.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	v, ok := h.Quantile(0.5)
	if !ok {
		t.Fatal("ok=false")
	}
	if want := 15.0; math.Abs(v-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v (rank 5 of 10 in bucket (10,20])", v, want)
	}
	// Skewed mass: 9 samples <= 10, 1 sample in (20, 30]. p99 must reach
	// the top bucket, p50 must stay in the bottom one.
	h2 := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 9; i++ {
		h2.Observe(5)
	}
	h2.Observe(25)
	if v, _ := h2.Quantile(0.5); v > 10 {
		t.Errorf("p50 = %v, want <= 10", v)
	}
	if v, _ := h2.Quantile(0.99); v <= 20 || v > 30 {
		t.Errorf("p99 = %v, want in (20, 30]", v)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	v, ok := h.Quantile(0.5)
	if !ok || v != 2 {
		t.Errorf("overflow quantile = %v ok=%v, want clamp to largest bound 2", v, ok)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	lo, _ := h.Quantile(-3)
	hi, _ := h.Quantile(7)
	if lo <= 0 || lo > 1 || hi <= 0 || hi > 1 {
		t.Errorf("out-of-range q: lo=%v hi=%v, want both in (0, 1]", lo, hi)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("descending bounds accepted")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestHistogramDefaultBounds(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.Bounds()) == 0 {
		t.Fatal("nil bounds produced no buckets")
	}
	h.Observe(0.003)
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
}
