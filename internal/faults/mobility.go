// Mobility faults (DESIGN.md §17): mid-call client rebinds, churn waves,
// and relay maintenance drains. These exercise the session-token data
// plane — the part of the system that must keep calls alive when the
// address a session was keyed by stops being true.
package faults

import (
	"time"

	"repro/internal/netsim"
)

// MobilityTarget is the extra surface a mobility-capable deployment
// exposes to fault plans. The testbed implements it alongside Target;
// Event.Apply type-asserts at firing time, so plans with mobility events
// fail cleanly (not silently) against a target that cannot serve them.
type MobilityTarget interface {
	// RebindClient swaps the named client's transport for a fresh socket
	// on a new address, mid-flight — a NAT rebinding or interface
	// handover. In-flight calls must be carried by the mobility layer,
	// not restarted.
	RebindClient(as netsim.ASID) error
	// SetRelayDraining toggles a relay's maintenance drain: no new
	// sessions, draining advertised on heartbeats, active calls nudged to
	// their backups. Lifting the drain returns the relay to service.
	SetRelayDraining(id netsim.RelayID, draining bool) error
}

// RebindClientAt schedules one client's NAT rebind.
func (p *Plan) RebindClientAt(at time.Duration, as netsim.ASID) *Plan {
	return p.add(Event{At: at, Kind: NATRebind, A: ClientEnd(as)})
}

// ChurnAt schedules one churn wave: every listed client rebinds, in
// order, at the same instant.
func (p *Plan) ChurnAt(at time.Duration, clients ...netsim.ASID) *Plan {
	return p.add(Event{At: at, Kind: Churn, Clients: append([]netsim.ASID(nil), clients...)})
}

// ChurnEvery schedules `waves` churn waves starting at `start`, one every
// `every` — sustained mobility, each wave rebinding all listed clients.
func (p *Plan) ChurnEvery(start, every time.Duration, waves int, clients ...netsim.ASID) *Plan {
	at := start
	for i := 0; i < waves; i++ {
		p.ChurnAt(at, clients...)
		at += every
	}
	return p
}

// DrainRelayAt schedules a relay's maintenance drain.
func (p *Plan) DrainRelayAt(at time.Duration, id netsim.RelayID) *Plan {
	return p.add(Event{At: at, Kind: DrainRelay, Relay: id})
}

// UndrainRelayAt schedules the drain's end: the relay re-enters the
// directory and accepts new sessions again.
func (p *Plan) UndrainRelayAt(at time.Duration, id netsim.RelayID) *Plan {
	return p.add(Event{At: at, Kind: DrainRelay, Relay: id, Off: true})
}
