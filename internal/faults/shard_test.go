package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeShardTarget is a fakeTarget that also serves shard faults.
type fakeShardTarget struct {
	fakeTarget
}

func (f *fakeShardTarget) KillShard(id int) error {
	f.record(fmt.Sprintf("kill-shard %d", id))
	return nil
}

func (f *fakeShardTarget) PromoteShardStandby(id int) error {
	f.record(fmt.Sprintf("promote-shard %d", id))
	return nil
}

func (f *fakeShardTarget) AddShard() error {
	f.record("add-shard")
	return nil
}

func (f *fakeShardTarget) RemoveShard(id int) error {
	f.record(fmt.Sprintf("remove-shard %d", id))
	return nil
}

func TestShardPlanBuildersAndApply(t *testing.T) {
	plan := NewPlan(1).
		KillShardAt(10*time.Millisecond, 0).
		PromoteShardStandbyAt(20*time.Millisecond, 0).
		AddShardAt(30*time.Millisecond).
		RemoveShardAt(40*time.Millisecond, 2)

	want := []struct {
		kind  Kind
		shard int
	}{
		{KillShard, 0},
		{PromoteShardStandby, 0},
		{AddShard, 0},
		{RemoveShard, 2},
	}
	if len(plan.Events) != len(want) {
		t.Fatalf("plan has %d events, want %d", len(plan.Events), len(want))
	}
	tgt := &fakeShardTarget{}
	for i, ev := range plan.Events {
		if ev.Kind != want[i].kind || ev.Shard != want[i].shard {
			t.Fatalf("event %d = kind %v shard %d, want %v/%d", i, ev.Kind, ev.Shard, want[i].kind, want[i].shard)
		}
		if err := ev.Apply(tgt); err != nil {
			t.Fatalf("apply %s: %v", ev, err)
		}
	}
	wantLog := []string{"kill-shard 0", "promote-shard 0", "add-shard", "remove-shard 2"}
	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if len(tgt.log) != len(wantLog) {
		t.Fatalf("target log %v, want %v", tgt.log, wantLog)
	}
	for i, l := range wantLog {
		if tgt.log[i] != l {
			t.Fatalf("target log %v, want %v", tgt.log, wantLog)
		}
	}
}

func TestShardEventAgainstNonShardTarget(t *testing.T) {
	// A target that implements only the base interface must refuse shard
	// faults with a clear error instead of panicking.
	ev := Event{Kind: KillShard, Shard: 1}
	err := ev.Apply(&fakeTarget{})
	if err == nil || !strings.Contains(err.Error(), "does not support shard faults") {
		t.Fatalf("apply against non-shard target: %v", err)
	}
}

func TestShardEventString(t *testing.T) {
	ev := Event{At: 300 * time.Millisecond, Kind: KillShard, Shard: 3}
	s := ev.String()
	if !strings.Contains(s, "kill-shard") || !strings.Contains(s, "shard=3") {
		t.Fatalf("event string %q missing kind or shard", s)
	}
	if got := AddShard.String(); got != "add-shard" {
		t.Fatalf("AddShard.String() = %q", got)
	}
	if got := RemoveShard.String(); got != "remove-shard" {
		t.Fatalf("RemoveShard.String() = %q", got)
	}
}

func TestUnsupportedTargetRefusesEverything(t *testing.T) {
	var u UnsupportedTarget
	for _, err := range []error{
		u.KillRelay(1),
		u.CrashController(),
		u.PromoteStandby(),
	} {
		if !errors.Is(err, ErrUnsupported) {
			t.Fatalf("UnsupportedTarget returned %v, want ErrUnsupported", err)
		}
	}
	// Shard faults against it fail the type assertion path by design when
	// embedded without overrides — the embedding struct is what adds
	// ShardTarget. Applying directly must error, not panic.
	if err := (Event{Kind: AddShard}).Apply(u); err == nil {
		t.Fatal("AddShard against bare UnsupportedTarget succeeded")
	}
}
