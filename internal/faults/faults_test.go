package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// fakeTarget records every action applied to it.
type fakeTarget struct {
	mu          sync.Mutex
	log         []string
	failKill    bool
	partitioned bool
	dropRate    float64
	delay       time.Duration
}

func (f *fakeTarget) record(s string) {
	f.mu.Lock()
	f.log = append(f.log, s)
	f.mu.Unlock()
}

func (f *fakeTarget) KillRelay(id netsim.RelayID) error {
	if f.failKill {
		return errors.New("boom")
	}
	f.record(fmt.Sprintf("kill %d", id))
	return nil
}
func (f *fakeTarget) ReviveRelay(id netsim.RelayID) error {
	f.record(fmt.Sprintf("revive %d", id))
	return nil
}
func (f *fakeTarget) Blackhole(a, b Endpoint) error {
	f.record(fmt.Sprintf("blackhole %s %s", a, b))
	return nil
}
func (f *fakeTarget) Heal(a, b Endpoint) error {
	f.record(fmt.Sprintf("heal %s %s", a, b))
	return nil
}
func (f *fakeTarget) SetControlPartitioned(on bool) {
	f.mu.Lock()
	f.partitioned = on
	f.mu.Unlock()
	f.record(fmt.Sprintf("partition %v", on))
}
func (f *fakeTarget) SetControlDropRate(rate float64) {
	f.mu.Lock()
	f.dropRate = rate
	f.mu.Unlock()
	f.record(fmt.Sprintf("drop %.2f", rate))
}
func (f *fakeTarget) SetControlDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
	f.record(fmt.Sprintf("delay %s", d))
}
func (f *fakeTarget) CrashController() error {
	f.record("crash-controller")
	return nil
}
func (f *fakeTarget) RestartController() error {
	f.record("restart-controller")
	return nil
}
func (f *fakeTarget) PromoteStandby() error {
	f.record("promote-standby")
	return nil
}
func (f *fakeTarget) SetBurstLoss(a, b Endpoint, rate, mean float64) error {
	f.record(fmt.Sprintf("burstloss %s %s %.2f %.1f", a, b, rate, mean))
	return nil
}

func (f *fakeTarget) events() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

func TestPlanApplyFiresInOrder(t *testing.T) {
	// Built out of order on purpose: Apply must sort by At.
	p := NewPlan(1).
		ReviveRelayAt(30*time.Millisecond, 3).
		KillRelayAt(10*time.Millisecond, 3).
		BlackholeAt(20*time.Millisecond, ClientEnd(7), RelayEnd(2))
	ft := &fakeTarget{}
	if errs := p.Apply(ft); len(errs) != 0 {
		t.Fatalf("apply errors: %v", errs)
	}
	want := []string{"kill 3", "blackhole as(7) relay(2)", "revive 3"}
	got := ft.events()
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPlanApplyCollectsErrors(t *testing.T) {
	p := NewPlan(1).KillRelayAt(0, 1).ReviveRelayAt(0, 1)
	ft := &fakeTarget{failKill: true}
	errs := p.Apply(ft)
	if len(errs) != 1 {
		t.Fatalf("errors = %v", errs)
	}
	// The revive after the failed kill must still have fired.
	if got := ft.events(); len(got) != 1 || got[0] != "revive 1" {
		t.Errorf("events = %v", got)
	}
}

func TestFlapController(t *testing.T) {
	p := NewPlan(1).FlapController(100*time.Millisecond, 50*time.Millisecond, 30*time.Millisecond, 2)
	if len(p.Events) != 4 {
		t.Fatalf("flap events = %d", len(p.Events))
	}
	wantAt := []time.Duration{100, 150, 180, 230}
	for i, e := range p.Events {
		if e.At != wantAt[i]*time.Millisecond {
			t.Errorf("event[%d] at %s, want %s", i, e.At, wantAt[i]*time.Millisecond)
		}
	}
	if p.Duration() != 230*time.Millisecond {
		t.Errorf("duration = %s", p.Duration())
	}
}

func TestSchedulerRealTime(t *testing.T) {
	p := NewPlan(1).
		KillRelayAt(10*time.Millisecond, 5).
		ReviveRelayAt(40*time.Millisecond, 5)
	ft := &fakeTarget{}
	s := NewScheduler(p, ft)
	s.Start()
	s.Wait()
	if s.Fired() != 2 {
		t.Fatalf("fired = %d", s.Fired())
	}
	got := ft.events()
	if len(got) != 2 || got[0] != "kill 5" || got[1] != "revive 5" {
		t.Errorf("events = %v", got)
	}
	if errs := s.Errors(); len(errs) != 0 {
		t.Errorf("errors = %v", errs)
	}
}

func TestSchedulerStopCancelsPending(t *testing.T) {
	p := NewPlan(1).
		KillRelayAt(0, 1).
		ReviveRelayAt(10*time.Second, 1) // far future; must be cancelled
	ft := &fakeTarget{}
	s := NewScheduler(p, ft)
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	if f := s.Fired(); f != 1 {
		t.Errorf("fired = %d, want 1", f)
	}
}

func TestEventStrings(t *testing.T) {
	cases := []Event{
		{Kind: KillRelay, Relay: 3},
		{Kind: Blackhole, A: ClientEnd(1), B: RelayEnd(2)},
		{Kind: PartitionController},
		{Kind: DropControl, Rate: 0.5},
		{Kind: DelayControl, Delay: time.Second},
		{Kind: CrashController},
		{Kind: RestartController},
		{Kind: PromoteStandby},
		{Kind: BurstLoss, A: ClientEnd(1), B: ClientEnd(2), Rate: 0.3, MeanBurst: 4},
	}
	for _, e := range cases {
		if e.String() == "" {
			t.Errorf("empty string for %v", e.Kind)
		}
	}
}

func TestBurstLossPlan(t *testing.T) {
	p := NewPlan(1).
		BurstLossAt(10*time.Millisecond, ClientEnd(1), ClientEnd(2), 0.25, 3).
		HealBurstLossAt(20*time.Millisecond, ClientEnd(1), ClientEnd(2))
	ft := &fakeTarget{}
	if errs := p.Apply(ft); len(errs) != 0 {
		t.Fatalf("apply errors: %v", errs)
	}
	want := []string{"burstloss as(1) as(2) 0.25 3.0", "burstloss as(1) as(2) 0.00 0.0"}
	got := ft.events()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestControllerLifecyclePlan(t *testing.T) {
	p := NewPlan(1).
		RestartControllerAt(30 * time.Millisecond).
		CrashControllerAt(10 * time.Millisecond).
		PromoteStandbyAt(20 * time.Millisecond)
	ft := &fakeTarget{}
	if errs := p.Apply(ft); len(errs) != 0 {
		t.Fatalf("apply errors: %v", errs)
	}
	want := []string{"crash-controller", "promote-standby", "restart-controller"}
	got := ft.events()
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFlakyTransportPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	ft := NewFlakyTransport(nil, 1)
	cl := &http.Client{Transport: ft}

	if _, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("healthy transport failed: %v", err)
	}

	ft.SetPartitioned(true)
	_, err := cl.Get(srv.URL)
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error = %v, want ErrInjected", err)
	}
	if ft.Injected() != 1 {
		t.Errorf("injected = %d", ft.Injected())
	}

	ft.SetPartitioned(false)
	if _, err := cl.Get(srv.URL); err != nil {
		t.Errorf("healed transport failed: %v", err)
	}
}

func TestFlakyTransportDropRateDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	count := func(seed uint64) int64 {
		ft := NewFlakyTransport(nil, seed)
		ft.SetDropRate(0.5)
		cl := &http.Client{Transport: ft}
		for i := 0; i < 60; i++ {
			resp, err := cl.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}
		return ft.Injected()
	}
	a, b := count(42), count(42)
	if a != b {
		t.Errorf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 60 {
		t.Errorf("drop rate 0.5 injected %d/60", a)
	}
}

func TestFlakyTransportDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	ft := NewFlakyTransport(nil, 1)
	ft.SetDelay(50 * time.Millisecond)
	cl := &http.Client{Transport: ft}
	start := time.Now()
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Errorf("request took %s with 50ms injected delay", el)
	}
}
