package faults

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrInjected marks a control RPC failed by fault injection, so retry
// logic and tests can distinguish injected faults from real ones.
var ErrInjected = errors.New("faults: injected control-plane failure")

// FlakyTransport is an http.RoundTripper that injects control-plane
// faults in front of a real transport: a full partition (every request
// fails fast), probabilistic request drops, and fixed added latency. It
// is the packet-level counterpart of wan.Shaper for the HTTP control
// plane, and the knob PartitionController / DropControl / DelayControl
// events turn. Drop decisions are driven by a seeded RNG, so a plan
// replays identically.
type FlakyTransport struct {
	base http.RoundTripper

	mu          sync.Mutex
	partitioned bool
	dropRate    float64
	delay       time.Duration
	rng         *stats.RNG

	injected atomic.Int64 // requests failed by injection
	delayed  atomic.Int64 // requests delayed by injection
}

// NewFlakyTransport wraps base (nil means http.DefaultTransport). With no
// faults configured it is transparent.
func NewFlakyTransport(base http.RoundTripper, seed uint64) *FlakyTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FlakyTransport{
		base: base,
		rng:  stats.NewRNG(seed).Split("faults-control"),
	}
}

// SetPartitioned turns the full partition on or off.
func (t *FlakyTransport) SetPartitioned(on bool) {
	t.mu.Lock()
	t.partitioned = on
	t.mu.Unlock()
}

// SetDropRate drops the given fraction of requests (0 disables).
func (t *FlakyTransport) SetDropRate(rate float64) {
	t.mu.Lock()
	t.dropRate = rate
	t.mu.Unlock()
}

// SetDelay adds fixed latency to every request (0 disables).
func (t *FlakyTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// Injected returns how many requests fault injection has failed.
func (t *FlakyTransport) Injected() int64 { return t.injected.Load() }

// RoundTrip applies the configured faults, then delegates.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	fail := t.partitioned
	if !fail && t.dropRate > 0 {
		fail = t.rng.Float64() < t.dropRate
	}
	delay := t.delay
	t.mu.Unlock()

	if fail {
		t.injected.Add(1)
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	if delay > 0 {
		t.delayed.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	return t.base.RoundTrip(req)
}
