package faults

import (
	"errors"
	"time"

	"repro/internal/netsim"
)

// ErrUnsupported is what UnsupportedTarget's methods return.
var ErrUnsupported = errors.New("faults: fault kind not supported by this target")

// UnsupportedTarget is an embeddable Target that rejects every fault.
// Targets that serve only a slice of the taxonomy (the ring Fleet serves
// only shard faults) embed it and override what they support, staying
// compilable as the Target interface grows.
type UnsupportedTarget struct{}

// KillRelay implements Target.
func (UnsupportedTarget) KillRelay(netsim.RelayID) error { return ErrUnsupported }

// ReviveRelay implements Target.
func (UnsupportedTarget) ReviveRelay(netsim.RelayID) error { return ErrUnsupported }

// Blackhole implements Target.
func (UnsupportedTarget) Blackhole(_, _ Endpoint) error { return ErrUnsupported }

// Heal implements Target.
func (UnsupportedTarget) Heal(_, _ Endpoint) error { return ErrUnsupported }

// SetControlPartitioned implements Target (no-op).
func (UnsupportedTarget) SetControlPartitioned(bool) {}

// SetControlDropRate implements Target (no-op).
func (UnsupportedTarget) SetControlDropRate(float64) {}

// SetControlDelay implements Target (no-op).
func (UnsupportedTarget) SetControlDelay(time.Duration) {}

// CrashController implements Target.
func (UnsupportedTarget) CrashController() error { return ErrUnsupported }

// RestartController implements Target.
func (UnsupportedTarget) RestartController() error { return ErrUnsupported }

// PromoteStandby implements Target.
func (UnsupportedTarget) PromoteStandby() error { return ErrUnsupported }

// SetBurstLoss implements Target.
func (UnsupportedTarget) SetBurstLoss(_, _ Endpoint, _, _ float64) error { return ErrUnsupported }
