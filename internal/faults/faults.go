// Package faults is the testbed's fault-injection subsystem: a
// deterministic, seeded scheduler that drives failures into a running
// deployment — relay death and revival (process-level), blackholed
// src↔relay segments (packet-level, via wan.Shaper), and control-plane
// impairment (dropped, delayed, or fully partitioned controller RPCs, via
// FlakyTransport).
//
// The paper's premise (§3.1, §4.4) is that paths fail and drift: relays
// die, heartbeats lapse, and the controller must keep learning from
// end-to-end measurements. This package turns those failure modes into
// first-class, replayable scenarios. A Plan is a small scenario DSL — an
// ordered list of timed events built fluently:
//
//	plan := faults.NewPlan(1).
//	    KillRelayAt(300*time.Millisecond, 3).
//	    PartitionControllerAt(500*time.Millisecond).
//	    HealControllerAt(900*time.Millisecond).
//	    ReviveRelayAt(2*time.Second, 3)
//
// A Scheduler fires the plan's events against any Target (the testbed
// implements it) in real time; tests that want virtual time can call
// Plan.Apply to fire every event synchronously, or Event.Apply one at a
// time. Everything probabilistic (control-RPC drop decisions) flows from
// the plan's seed, so a scenario replays identically.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Kind enumerates the fault taxonomy.
type Kind uint8

const (
	// KillRelay stops a relay process; its socket closes and its
	// heartbeats cease, so it ages out of the controller directory.
	KillRelay Kind = iota
	// ReviveRelay restarts a previously killed relay on its old address
	// and re-registers it.
	ReviveRelay
	// Blackhole silently drops every packet on a segment (both
	// directions) — the failure a dead middlebox or route withdrawal
	// produces, invisible to the sender.
	Blackhole
	// Heal removes a blackhole.
	Heal
	// PartitionController makes every control RPC fail fast — the agent
	// cannot reach the controller at all.
	PartitionController
	// HealController removes a partition.
	HealController
	// DropControl drops a fraction of control RPCs (lossy control path).
	DropControl
	// DelayControl adds fixed latency to every control RPC.
	DelayControl
	// CrashController kills the controller process abruptly — no drain, no
	// handover; in-flight RPCs die with their connections. Durable state
	// survives only through the WAL.
	CrashController
	// RestartController brings a crashed controller back on its original
	// address, recovering its state from snapshot + WAL replay.
	RestartController
	// PromoteStandby promotes the deployment's warm standby to primary.
	PromoteStandby
	// BurstLoss imposes Gilbert-Elliott correlated packet loss on a
	// segment (both directions) — the bursty congestion the loss-repair
	// layer exists to survive. Rate carries the stationary loss fraction
	// and MeanBurst the mean burst length; rate 0 heals the segment.
	BurstLoss
	// KillShard kills one ring shard's primary controller abruptly — the
	// sharded-control-plane analogue of CrashController. Targets must
	// implement ShardTarget.
	KillShard
	// PromoteShardStandby promotes a ring shard's warm standby to primary.
	PromoteShardStandby
	// AddShard grows the ring by one shard and rebalances the moved pairs
	// onto it (epoch+1 map install, then WAL replay of moved pairs).
	AddShard
	// RemoveShard drains a ring shard: epoch+1 map install, moved pairs
	// replayed onto their new owners, then the shard shuts down.
	RemoveShard
	// NATRebind swaps one client's transport for a fresh socket mid-call —
	// the NAT rebinding / interface handover of DESIGN.md §17. The client's
	// address changes; token-bearing calls must survive via relay path
	// validation and return-path re-pinning. Targets must implement
	// MobilityTarget.
	NATRebind
	// Churn fires one churn wave: every client listed on the event rebinds
	// in order — concentrated mobility, the worst case for address-keyed
	// session state. Targets must implement MobilityTarget.
	Churn
	// DrainRelay toggles a relay's maintenance drain: it stops accepting
	// new sessions, advertises draining on its heartbeat (the controller
	// excludes it from candidate enumeration), and nudges its active calls
	// toward backup relays. Event.Off lifts the drain. Targets must
	// implement MobilityTarget.
	DrainRelay
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KillRelay:
		return "kill-relay"
	case ReviveRelay:
		return "revive-relay"
	case Blackhole:
		return "blackhole"
	case Heal:
		return "heal"
	case PartitionController:
		return "partition-controller"
	case HealController:
		return "heal-controller"
	case DropControl:
		return "drop-control"
	case DelayControl:
		return "delay-control"
	case CrashController:
		return "crash-controller"
	case RestartController:
		return "restart-controller"
	case PromoteStandby:
		return "promote-standby"
	case BurstLoss:
		return "burst-loss"
	case KillShard:
		return "kill-shard"
	case PromoteShardStandby:
		return "promote-shard-standby"
	case AddShard:
		return "add-shard"
	case RemoveShard:
		return "remove-shard"
	case NATRebind:
		return "nat-rebind"
	case Churn:
		return "churn"
	case DrainRelay:
		return "drain-relay"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// EndpointKind distinguishes segment endpoints.
type EndpointKind uint8

const (
	// ClientEndpoint is a client agent, identified by its AS.
	ClientEndpoint EndpointKind = iota
	// RelayEndpoint is a relay node, identified by its RelayID.
	RelayEndpoint
)

// Endpoint names one end of a blackholed segment.
type Endpoint struct {
	Kind  EndpointKind
	AS    netsim.ASID    // when Kind == ClientEndpoint
	Relay netsim.RelayID // when Kind == RelayEndpoint
}

// ClientEnd names a client endpoint by AS.
func ClientEnd(as netsim.ASID) Endpoint { return Endpoint{Kind: ClientEndpoint, AS: as} }

// RelayEnd names a relay endpoint.
func RelayEnd(id netsim.RelayID) Endpoint { return Endpoint{Kind: RelayEndpoint, Relay: id} }

// String renders the endpoint compactly.
func (e Endpoint) String() string {
	if e.Kind == RelayEndpoint {
		return fmt.Sprintf("relay(%d)", e.Relay)
	}
	return fmt.Sprintf("as(%d)", e.AS)
}

// Event is one scheduled fault.
type Event struct {
	At    time.Duration // offset from scheduler start
	Kind  Kind
	Relay netsim.RelayID // KillRelay / ReviveRelay
	A, B  Endpoint       // Blackhole / Heal segment ends
	Rate  float64        // DropControl probability / BurstLoss stationary loss rate
	Delay time.Duration  // DelayControl added latency
	// MeanBurst is the BurstLoss mean burst length in packets.
	MeanBurst float64
	// Shard is the ring shard ID for KillShard / PromoteShardStandby /
	// RemoveShard (AddShard mints its own ID).
	Shard int
	// Clients lists the agents a Churn wave rebinds, in order. NATRebind
	// names its single client through A (ClientEnd).
	Clients []netsim.ASID
	// Off lifts a DrainRelay instead of setting it.
	Off bool
}

// String renders the event for logs and errors.
func (e Event) String() string {
	switch e.Kind {
	case KillRelay, ReviveRelay:
		return fmt.Sprintf("%s@%s relay=%d", e.Kind, e.At, e.Relay)
	case Blackhole, Heal:
		return fmt.Sprintf("%s@%s %s<->%s", e.Kind, e.At, e.A, e.B)
	case BurstLoss:
		return fmt.Sprintf("%s@%s %s<->%s rate=%.2f burst=%.1f", e.Kind, e.At, e.A, e.B, e.Rate, e.MeanBurst)
	case DropControl:
		return fmt.Sprintf("%s@%s rate=%.2f", e.Kind, e.At, e.Rate)
	case DelayControl:
		return fmt.Sprintf("%s@%s delay=%s", e.Kind, e.At, e.Delay)
	case KillShard, PromoteShardStandby, RemoveShard:
		return fmt.Sprintf("%s@%s shard=%d", e.Kind, e.At, e.Shard)
	case NATRebind:
		return fmt.Sprintf("%s@%s %s", e.Kind, e.At, e.A)
	case Churn:
		return fmt.Sprintf("%s@%s clients=%d", e.Kind, e.At, len(e.Clients))
	case DrainRelay:
		verb := "on"
		if e.Off {
			verb = "off"
		}
		return fmt.Sprintf("%s@%s relay=%d %s", e.Kind, e.At, e.Relay, verb)
	default:
		return fmt.Sprintf("%s@%s", e.Kind, e.At)
	}
}

// Target is what a fault plan acts on. The testbed implements it; unit
// tests use lightweight fakes.
type Target interface {
	// KillRelay stops the relay process.
	KillRelay(id netsim.RelayID) error
	// ReviveRelay restarts a killed relay on its original address.
	ReviveRelay(id netsim.RelayID) error
	// Blackhole drops all packets between the two endpoints (both
	// directions) until healed.
	Blackhole(a, b Endpoint) error
	// Heal removes a blackhole.
	Heal(a, b Endpoint) error
	// SetControlPartitioned makes all control RPCs fail fast while true.
	SetControlPartitioned(on bool)
	// SetControlDropRate drops the given fraction of control RPCs.
	SetControlDropRate(rate float64)
	// SetControlDelay adds fixed latency to control RPCs.
	SetControlDelay(d time.Duration)
	// CrashController kills the controller process abruptly (no drain).
	CrashController() error
	// RestartController restarts a crashed controller on its original
	// address, recovering from its durable state.
	RestartController() error
	// PromoteStandby promotes the warm standby controller to primary.
	PromoteStandby() error
	// SetBurstLoss imposes Gilbert-Elliott loss on a segment (both
	// directions); rate 0 heals it.
	SetBurstLoss(a, b Endpoint, rate, meanBurstLen float64) error
}

// ShardTarget is the extra surface a sharded control plane exposes to
// fault plans. Targets that also serve shard faults implement it
// alongside Target; Event.Apply type-asserts at firing time, so plans
// with shard events fail cleanly (not silently) against an unsharded
// target.
type ShardTarget interface {
	// KillShard kills one shard's primary controller abruptly.
	KillShard(id int) error
	// PromoteShardStandby promotes a shard's warm standby to primary.
	PromoteShardStandby(id int) error
	// AddShard grows the ring by one shard and rebalances onto it.
	AddShard() error
	// RemoveShard drains and removes a shard, rebalancing its pairs away.
	RemoveShard(id int) error
}

// Apply fires the event against the target.
func (e Event) Apply(t Target) error {
	switch e.Kind {
	case KillRelay:
		return t.KillRelay(e.Relay)
	case ReviveRelay:
		return t.ReviveRelay(e.Relay)
	case Blackhole:
		return t.Blackhole(e.A, e.B)
	case Heal:
		return t.Heal(e.A, e.B)
	case PartitionController:
		t.SetControlPartitioned(true)
	case HealController:
		t.SetControlPartitioned(false)
	case DropControl:
		t.SetControlDropRate(e.Rate)
	case DelayControl:
		t.SetControlDelay(e.Delay)
	case CrashController:
		return t.CrashController()
	case RestartController:
		return t.RestartController()
	case PromoteStandby:
		return t.PromoteStandby()
	case BurstLoss:
		return t.SetBurstLoss(e.A, e.B, e.Rate, e.MeanBurst)
	case KillShard, PromoteShardStandby, AddShard, RemoveShard:
		st, ok := t.(ShardTarget)
		if !ok {
			return fmt.Errorf("faults: target %T does not support shard faults", t)
		}
		switch e.Kind {
		case KillShard:
			return st.KillShard(e.Shard)
		case PromoteShardStandby:
			return st.PromoteShardStandby(e.Shard)
		case AddShard:
			return st.AddShard()
		default:
			return st.RemoveShard(e.Shard)
		}
	case NATRebind, Churn, DrainRelay:
		mt, ok := t.(MobilityTarget)
		if !ok {
			return fmt.Errorf("faults: target %T does not support mobility faults", t)
		}
		switch e.Kind {
		case NATRebind:
			return mt.RebindClient(e.A.AS)
		case Churn:
			for _, as := range e.Clients {
				if err := mt.RebindClient(as); err != nil {
					return err
				}
			}
			return nil
		default:
			return mt.SetRelayDraining(e.Relay, !e.Off)
		}
	default:
		return fmt.Errorf("faults: unknown event kind %v", e.Kind)
	}
	return nil
}

// Plan is a replayable fault scenario: a seed (consumed by probabilistic
// fault machinery such as FlakyTransport) and an ordered event list.
type Plan struct {
	Seed   uint64
	Events []Event
}

// NewPlan starts an empty plan.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// add appends and returns the plan for chaining.
func (p *Plan) add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// KillRelayAt schedules a relay death.
func (p *Plan) KillRelayAt(at time.Duration, id netsim.RelayID) *Plan {
	return p.add(Event{At: at, Kind: KillRelay, Relay: id})
}

// ReviveRelayAt schedules a relay revival.
func (p *Plan) ReviveRelayAt(at time.Duration, id netsim.RelayID) *Plan {
	return p.add(Event{At: at, Kind: ReviveRelay, Relay: id})
}

// BlackholeAt schedules a segment blackhole.
func (p *Plan) BlackholeAt(at time.Duration, a, b Endpoint) *Plan {
	return p.add(Event{At: at, Kind: Blackhole, A: a, B: b})
}

// HealAt schedules a segment heal.
func (p *Plan) HealAt(at time.Duration, a, b Endpoint) *Plan {
	return p.add(Event{At: at, Kind: Heal, A: a, B: b})
}

// PartitionControllerAt schedules a full control-plane partition.
func (p *Plan) PartitionControllerAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: PartitionController})
}

// HealControllerAt schedules the partition's end.
func (p *Plan) HealControllerAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: HealController})
}

// DropControlAt schedules probabilistic control-RPC loss.
func (p *Plan) DropControlAt(at time.Duration, rate float64) *Plan {
	return p.add(Event{At: at, Kind: DropControl, Rate: rate})
}

// DelayControlAt schedules fixed control-RPC latency.
func (p *Plan) DelayControlAt(at time.Duration, d time.Duration) *Plan {
	return p.add(Event{At: at, Kind: DelayControl, Delay: d})
}

// CrashControllerAt schedules an abrupt controller death (kill -9: no
// drain, no handover).
func (p *Plan) CrashControllerAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: CrashController})
}

// RestartControllerAt schedules a crashed controller's restart, recovering
// state from its WAL.
func (p *Plan) RestartControllerAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: RestartController})
}

// PromoteStandbyAt schedules the warm standby's promotion to primary.
func (p *Plan) PromoteStandbyAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: PromoteStandby})
}

// BurstLossAt schedules Gilbert-Elliott loss on a segment: stationary
// loss fraction rate with mean burst length meanBurstLen packets.
func (p *Plan) BurstLossAt(at time.Duration, a, b Endpoint, rate, meanBurstLen float64) *Plan {
	return p.add(Event{At: at, Kind: BurstLoss, A: a, B: b, Rate: rate, MeanBurst: meanBurstLen})
}

// HealBurstLossAt schedules the end of a segment's burst loss.
func (p *Plan) HealBurstLossAt(at time.Duration, a, b Endpoint) *Plan {
	return p.add(Event{At: at, Kind: BurstLoss, A: a, B: b})
}

// KillShardAt schedules a ring shard's primary death.
func (p *Plan) KillShardAt(at time.Duration, shard int) *Plan {
	return p.add(Event{At: at, Kind: KillShard, Shard: shard})
}

// PromoteShardStandbyAt schedules a ring shard's standby promotion.
func (p *Plan) PromoteShardStandbyAt(at time.Duration, shard int) *Plan {
	return p.add(Event{At: at, Kind: PromoteShardStandby, Shard: shard})
}

// AddShardAt schedules a ring grow-and-rebalance.
func (p *Plan) AddShardAt(at time.Duration) *Plan {
	return p.add(Event{At: at, Kind: AddShard})
}

// RemoveShardAt schedules a ring shard's drain-and-remove.
func (p *Plan) RemoveShardAt(at time.Duration, shard int) *Plan {
	return p.add(Event{At: at, Kind: RemoveShard, Shard: shard})
}

// FlapController schedules `times` partition/heal cycles starting at
// `start`: partitioned for `down`, healed for `up`, repeated.
func (p *Plan) FlapController(start, down, up time.Duration, times int) *Plan {
	at := start
	for i := 0; i < times; i++ {
		p.PartitionControllerAt(at)
		p.HealControllerAt(at + down)
		at += down + up
	}
	return p
}

// Sorted returns the events in firing order (stable by At, preserving
// insertion order for ties).
func (p *Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Duration returns the offset of the last event.
func (p *Plan) Duration() time.Duration {
	var d time.Duration
	for _, e := range p.Events {
		if e.At > d {
			d = e.At
		}
	}
	return d
}

// Apply fires every event in order immediately (virtual time), collecting
// per-event errors. Tests use this to exercise targets without waiting.
func (p *Plan) Apply(t Target) []error {
	var errs []error
	for _, e := range p.Sorted() {
		if err := e.Apply(t); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e, err))
		}
	}
	return errs
}

// Scheduler fires a plan against a target in real time.
type Scheduler struct {
	events  []Event
	target  Target
	metrics *obs.Registry // nil disables; set before Start

	mu    sync.Mutex
	fired int
	errs  []error

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// SetMetrics attaches a registry: every fired event increments
// via_faults_injected_total{kind=...} (and _errors_total on failure), so
// the chaos harness can assert injections happened from the same snapshot
// it asserts recovery from. Call before Start.
func (s *Scheduler) SetMetrics(reg *obs.Registry) { s.metrics = reg }

// NewScheduler builds a scheduler; call Start to begin firing.
func NewScheduler(p *Plan, t Target) *Scheduler {
	return &Scheduler{
		events: p.Sorted(),
		target: t,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the firing goroutine. Event times are offsets from the
// moment Start is called.
func (s *Scheduler) Start() {
	go func() {
		defer close(s.done)
		start := time.Now()
		for _, e := range s.events {
			wait := e.At - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-s.stop:
					return
				}
			} else {
				select {
				case <-s.stop:
					return
				default:
				}
			}
			err := e.Apply(s.target)
			s.mu.Lock()
			s.fired++
			if err != nil {
				s.errs = append(s.errs, fmt.Errorf("%s: %w", e, err))
			}
			s.mu.Unlock()
			if s.metrics != nil {
				s.metrics.Counter(obs.L("via_faults_injected_total", "kind", e.Kind.String())).Inc()
				if err != nil {
					s.metrics.Counter("via_faults_errors_total").Inc()
				}
			}
		}
	}()
}

// Wait blocks until every event has fired (or Stop was called).
func (s *Scheduler) Wait() { <-s.done }

// Stop cancels events that have not fired yet.
func (s *Scheduler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Fired returns how many events have fired so far.
func (s *Scheduler) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Errors returns the per-event errors collected so far.
func (s *Scheduler) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.errs...)
}
