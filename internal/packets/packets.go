// Package packets is a per-packet call simulator: given a call's average
// network conditions (the triple everything else operates on), it
// synthesizes the packet-level experience of that call — correlated delay
// (AR(1) jitter process around the path delay), bursty loss (a two-state
// Gilbert-Elliott channel), and transient spikes — and evaluates the
// perceptual outcome by emulating a receiver jitter buffer and scoring the
// result with the E-model.
//
// This reproduces the validation paragraph of §2.2: the paper checked, on
// 70K calls with full packet traces, that thresholds on call-average
// metrics agree with packet-trace-based MOS (80% of "non-poor" calls had a
// trace MOS above 75% of "poor" calls). The same check runs here against
// synthesized traces (see the "mos" experiment).
package packets

import (
	"math"

	"repro/internal/quality"
	"repro/internal/stats"
)

// TraceConfig shapes a synthesized packet trace.
type TraceConfig struct {
	// DurationSec and PPS give the packet count (default 30s at 50 pps).
	DurationSec float64
	PPS         int
	// JitterCorr is the AR(1) coefficient of the delay process; closer to
	// 1 means smoother, more correlated delay variation.
	JitterCorr float64
	// BurstFactor controls loss burstiness: the expected loss-burst length
	// in packets of the Gilbert-Elliott channel (1 = independent losses).
	BurstFactor float64
	// SpikeProb is the per-packet probability of entering a delay spike.
	SpikeProb float64
}

// DefaultTraceConfig returns a VoIP-typical trace shape: 30 s calls, 20 ms
// frames, moderately correlated jitter and 3-packet loss bursts.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		DurationSec: 30,
		PPS:         50,
		JitterCorr:  0.7,
		BurstFactor: 3,
		SpikeProb:   0.002,
	}
}

// Trace is a synthesized packet-level record of one call.
type Trace struct {
	// IntervalMs is the nominal packet spacing.
	IntervalMs float64
	// OneWayDelayMs[i] is packet i's network delay; Lost[i] marks network
	// drops (delay is meaningless for lost packets).
	OneWayDelayMs []float64
	Lost          []bool
}

// Packets returns the trace length.
func (t *Trace) Packets() int { return len(t.OneWayDelayMs) }

// NetworkLossRate returns the fraction of packets dropped by the network.
func (t *Trace) NetworkLossRate() float64 {
	if len(t.Lost) == 0 {
		return 0
	}
	lost := 0
	for _, l := range t.Lost {
		if l {
			lost++
		}
	}
	return float64(lost) / float64(len(t.Lost))
}

// Synthesize generates a packet trace whose long-run averages match the
// given call-average metrics:
//
//   - mean one-way delay = RTT/2;
//   - the delay deviation process is AR(1) scaled so the RFC 3550 jitter
//     estimator would converge near JitterMs;
//   - losses follow a Gilbert-Elliott channel with stationary loss rate
//     LossRate and mean burst length BurstFactor.
func Synthesize(m quality.Metrics, cfg TraceConfig, rng *stats.RNG) *Trace {
	if cfg.PPS <= 0 {
		cfg.PPS = 50
	}
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 30
	}
	if cfg.JitterCorr < 0 || cfg.JitterCorr >= 1 {
		cfg.JitterCorr = 0.7
	}
	if cfg.BurstFactor < 1 {
		cfg.BurstFactor = 1
	}
	n := int(cfg.DurationSec * float64(cfg.PPS))
	if n < 10 {
		n = 10
	}
	tr := &Trace{
		IntervalMs:    1000 / float64(cfg.PPS),
		OneWayDelayMs: make([]float64, n),
		Lost:          make([]bool, n),
	}

	base := m.RTTMs / 2

	// AR(1) deviation process: x_i = ρ x_{i-1} + ε. The RFC 3550 jitter is
	// a smoothed mean of |Δdelay| between consecutive packets;
	// E|Δx| = σ_x √(2(1−ρ)) · √(2/π) for Gaussian x, so we scale σ_ε to
	// land the estimator near the requested jitter.
	rho := cfg.JitterCorr
	sigmaX := 0.0
	if m.JitterMs > 0 {
		sigmaX = m.JitterMs / (math.Sqrt(2*(1-rho)) * math.Sqrt(2/math.Pi))
	}
	sigmaE := sigmaX * math.Sqrt(1-rho*rho)

	// Gilbert-Elliott: p(good→bad) and p(bad→good) from stationary loss
	// rate π_B = LossRate and mean burst length 1/pBG = BurstFactor.
	pBG := 1 / cfg.BurstFactor
	var pGB float64
	if m.LossRate > 0 && m.LossRate < 1 {
		pGB = pBG * m.LossRate / (1 - m.LossRate)
		if pGB > 1 {
			pGB = 1
		}
	}

	x := rng.Normal(0, sigmaX)
	bad := rng.Float64() < m.LossRate
	spikeLeft := 0
	for i := 0; i < n; i++ {
		x = rho*x + rng.Normal(0, sigmaE)
		d := base + x
		if spikeLeft > 0 {
			spikeLeft--
			d += 40 + rng.Exponential(60)
		} else if cfg.SpikeProb > 0 && rng.Float64() < cfg.SpikeProb {
			spikeLeft = 2 + rng.IntN(8)
		}
		if d < 0.1 {
			d = 0.1
		}
		tr.OneWayDelayMs[i] = d

		if bad {
			tr.Lost[i] = true
			if rng.Float64() < pBG {
				bad = false
			}
		} else if rng.Float64() < pGB {
			bad = true
			tr.Lost[i] = true
		}
	}
	return tr
}

// PlayoutResult is the outcome of emulating a receiver jitter buffer over a
// trace.
type PlayoutResult struct {
	// NetworkLoss, LateLoss are the fractions dropped by the network and
	// discarded for arriving past their deadline.
	NetworkLoss float64
	LateLoss    float64
	// MouthToEarMs is the average one-way latency experienced, including
	// the buffer.
	MouthToEarMs float64
	// MOS is the E-model score from the trace-level impairments.
	MOS float64
}

// EffectiveLoss is the total fraction of frames missing at playout.
func (p PlayoutResult) EffectiveLoss() float64 {
	return p.NetworkLoss + p.LateLoss
}

// Playout emulates a fixed jitter buffer of the given depth over a trace
// and scores the call: a packet is playable if its delay does not exceed
// the minimum observed delay plus the buffer depth.
func Playout(tr *Trace, bufferMs float64, codec quality.EModelConfig) PlayoutResult {
	n := tr.Packets()
	if n == 0 {
		return PlayoutResult{MOS: 1}
	}
	minDelay := math.Inf(1)
	for i, d := range tr.OneWayDelayMs {
		if !tr.Lost[i] && d < minDelay {
			minDelay = d
		}
	}
	if math.IsInf(minDelay, 1) {
		// Everything was lost.
		return PlayoutResult{NetworkLoss: 1, MOS: 1}
	}
	deadline := minDelay + bufferMs
	var netLost, late int
	var sumDelay float64
	var played int
	for i, d := range tr.OneWayDelayMs {
		switch {
		case tr.Lost[i]:
			netLost++
		case d > deadline:
			late++
		default:
			played++
			sumDelay += deadline // played at the buffer deadline
		}
	}
	res := PlayoutResult{
		NetworkLoss: float64(netLost) / float64(n),
		LateLoss:    float64(late) / float64(n),
	}
	if played > 0 {
		res.MouthToEarMs = sumDelay/float64(played) + codec.CodecDelayMs
	}

	// Score with the E-model directly from trace-level impairments: the
	// effective loss already includes late discards, so bypass the
	// metric-triple approximation.
	d := res.MouthToEarMs
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	e := res.EffectiveLoss()
	ie := 11 + 40*math.Log(1+10*e) // G.729a curve, as elsewhere
	res.MOS = quality.RToMOS(94.2 - id - ie)
	return res
}

// TraceMOS synthesizes a packet trace for the call-average metrics and
// returns its playout MOS with the default 60 ms buffer — the "proprietary
// MOS calculator on packet traces" stand-in of §2.2.
func TraceMOS(m quality.Metrics, cfg TraceConfig, rng *stats.RNG) float64 {
	tr := Synthesize(m, cfg, rng)
	return Playout(tr, 60, quality.DefaultEModel()).MOS
}
