package packets

import (
	"math"
	"testing"

	"repro/internal/quality"
	"repro/internal/rtp"
	"repro/internal/stats"
)

func rng() *stats.RNG { return stats.NewRNG(1) }

func TestSynthesizeShape(t *testing.T) {
	m := quality.Metrics{RTTMs: 200, LossRate: 0.02, JitterMs: 8}
	tr := Synthesize(m, DefaultTraceConfig(), rng())
	if tr.Packets() != 1500 {
		t.Fatalf("packets = %d, want 30s*50pps", tr.Packets())
	}
	if tr.IntervalMs != 20 {
		t.Errorf("interval = %v", tr.IntervalMs)
	}
	for i, d := range tr.OneWayDelayMs {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("packet %d has bad delay %v", i, d)
		}
	}
}

func TestSynthesizeMatchesAverages(t *testing.T) {
	m := quality.Metrics{RTTMs: 240, LossRate: 0.03, JitterMs: 10}
	cfg := DefaultTraceConfig()
	cfg.DurationSec = 600 // long trace for tight averages
	cfg.SpikeProb = 0     // spikes bias the mean; exclude for this check
	tr := Synthesize(m, cfg, rng())

	// Mean one-way delay ≈ RTT/2.
	var w stats.Welford
	for i, d := range tr.OneWayDelayMs {
		if !tr.Lost[i] {
			w.Add(d)
		}
	}
	if math.Abs(w.Mean-120) > 8 {
		t.Errorf("mean delay = %v, want ~120", w.Mean)
	}
	// Loss rate ≈ configured.
	if got := tr.NetworkLossRate(); math.Abs(got-0.03) > 0.012 {
		t.Errorf("loss rate = %v, want ~0.03", got)
	}
}

func TestSynthesizedJitterMatchesRFC3550(t *testing.T) {
	// Feeding the synthesized delays into the real RFC 3550 estimator must
	// land near the requested call-average jitter — the round trip that
	// ties the packet model to the metric triple.
	m := quality.Metrics{RTTMs: 100, LossRate: 0, JitterMs: 9}
	cfg := DefaultTraceConfig()
	cfg.DurationSec = 300
	cfg.SpikeProb = 0
	tr := Synthesize(m, cfg, rng())

	var est rtp.JitterEstimator
	for i, d := range tr.OneWayDelayMs {
		if tr.Lost[i] {
			continue
		}
		sendNs := int64(float64(i) * tr.IntervalMs * 1e6)
		arrivalNs := sendNs + int64(d*1e6)
		ts := uint32(i * rtp.ClockRate / cfg.PPS)
		est.Observe(ts, arrivalNs)
	}
	if got := est.Millis(); math.Abs(got-9) > 3 {
		t.Errorf("RFC 3550 jitter on synthesized trace = %v, want ~9", got)
	}
}

func TestLossBurstiness(t *testing.T) {
	m := quality.Metrics{RTTMs: 100, LossRate: 0.05, JitterMs: 2}
	mean := func(burst float64) float64 {
		cfg := DefaultTraceConfig()
		cfg.DurationSec = 600
		cfg.BurstFactor = burst
		tr := Synthesize(m, cfg, stats.NewRNG(7))
		// Mean run length of consecutive losses.
		var runs, cur, total int
		for _, l := range tr.Lost {
			if l {
				cur++
				total++
			} else if cur > 0 {
				runs++
				cur = 0
			}
		}
		if cur > 0 {
			runs++
		}
		if runs == 0 {
			return 0
		}
		return float64(total) / float64(runs)
	}
	independent := mean(1)
	bursty := mean(5)
	if bursty < independent+1 {
		t.Errorf("burst factor ignored: mean run %v (burst=5) vs %v (burst=1)", bursty, independent)
	}
}

func TestPlayoutCleanCall(t *testing.T) {
	m := quality.Metrics{RTTMs: 60, LossRate: 0, JitterMs: 1}
	tr := Synthesize(m, DefaultTraceConfig(), rng())
	res := Playout(tr, 60, quality.DefaultEModel())
	if res.NetworkLoss != 0 {
		t.Errorf("clean call network loss %v", res.NetworkLoss)
	}
	if res.LateLoss > 0.01 {
		t.Errorf("clean call late loss %v", res.LateLoss)
	}
	if res.MOS < 3.5 {
		t.Errorf("clean call MOS %v", res.MOS)
	}
}

func TestPlayoutLateLossFromJitter(t *testing.T) {
	// Huge jitter with a small buffer must produce late discards.
	m := quality.Metrics{RTTMs: 100, LossRate: 0, JitterMs: 40}
	tr := Synthesize(m, DefaultTraceConfig(), rng())
	small := Playout(tr, 20, quality.DefaultEModel())
	big := Playout(tr, 200, quality.DefaultEModel())
	if small.LateLoss <= big.LateLoss {
		t.Errorf("late loss should shrink with buffer: %v vs %v", small.LateLoss, big.LateLoss)
	}
	if small.LateLoss < 0.02 {
		t.Errorf("40ms jitter with 20ms buffer lost only %v late", small.LateLoss)
	}
	// But the big buffer pays in mouth-to-ear delay.
	if big.MouthToEarMs <= small.MouthToEarMs {
		t.Error("deeper buffer should increase mouth-to-ear delay")
	}
}

func TestPlayoutMOSOrdering(t *testing.T) {
	good := quality.Metrics{RTTMs: 80, LossRate: 0.001, JitterMs: 2}
	bad := quality.Metrics{RTTMs: 500, LossRate: 0.06, JitterMs: 30}
	g := TraceMOS(good, DefaultTraceConfig(), stats.NewRNG(2))
	b := TraceMOS(bad, DefaultTraceConfig(), stats.NewRNG(3))
	if g <= b {
		t.Errorf("MOS ordering violated: good %v <= bad %v", g, b)
	}
	if g < 1 || g > 4.5 || b < 1 || b > 4.5 {
		t.Errorf("MOS out of range: %v %v", g, b)
	}
}

func TestPlayoutAllLost(t *testing.T) {
	tr := &Trace{
		IntervalMs:    20,
		OneWayDelayMs: []float64{10, 10},
		Lost:          []bool{true, true},
	}
	res := Playout(tr, 60, quality.DefaultEModel())
	if res.NetworkLoss != 1 || res.MOS != 1 {
		t.Errorf("all-lost call: %+v", res)
	}
	empty := Playout(&Trace{}, 60, quality.DefaultEModel())
	if empty.MOS != 1 {
		t.Errorf("empty trace MOS %v", empty.MOS)
	}
}

// The §2.2 validation: calls rated non-poor by the average-metric
// thresholds should have trace-level MOS above most calls rated poor.
func TestThresholdsAgreeWithTraceMOS(t *testing.T) {
	r := stats.NewRNG(11)
	var poorMOS, nonPoorMOS []float64
	for i := 0; i < 600; i++ {
		m := quality.Metrics{
			RTTMs:    r.LogNormal(math.Log(150), 0.8),
			LossRate: math.Min(0.3, r.LogNormal(math.Log(0.004), 1.2)),
			JitterMs: r.LogNormal(math.Log(6), 0.9),
		}
		mos := TraceMOS(m, DefaultTraceConfig(), r)
		if m.AtLeastOneBad() {
			poorMOS = append(poorMOS, mos)
		} else {
			nonPoorMOS = append(nonPoorMOS, mos)
		}
	}
	if len(poorMOS) < 50 || len(nonPoorMOS) < 50 {
		t.Fatalf("unbalanced classes: %d poor, %d non-poor", len(poorMOS), len(nonPoorMOS))
	}
	p75 := stats.Quantile(poorMOS, 0.75)
	above := 0
	for _, v := range nonPoorMOS {
		if v > p75 {
			above++
		}
	}
	frac := float64(above) / float64(len(nonPoorMOS))
	// Paper: 80% of non-poor calls exceed the 75th percentile of poor
	// calls' MOS.
	if frac < 0.6 {
		t.Errorf("only %.0f%% of non-poor calls above poor p75 MOS; thresholds disagree with trace MOS", frac*100)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	m := quality.Metrics{RTTMs: 200, LossRate: 0.02, JitterMs: 8}
	r := stats.NewRNG(1)
	cfg := DefaultTraceConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(m, cfg, r)
	}
}

func BenchmarkTraceMOS(b *testing.B) {
	m := quality.Metrics{RTTMs: 200, LossRate: 0.02, JitterMs: 8}
	r := stats.NewRNG(1)
	cfg := DefaultTraceConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceMOS(m, cfg, r)
	}
}
