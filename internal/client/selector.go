package client

import (
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
)

// ControlPlane is the slice of the controller API the Selector needs —
// satisfied by *controller.Client (and by fakes in tests).
type ControlPlane interface {
	Choose(src, dst int32, cands []netsim.Option) (netsim.Option, error)
	Report(src, dst int32, opt netsim.Option, m quality.Metrics) error
}

// RepairControlPlane is the optional extension a control plane implements
// when it can pick a loss-repair scheme alongside the path (the (path,
// repair) arms of the bandit). *controller.Client implements it; a plane
// that doesn't is served by the plain ControlPlane methods and calls run
// without repair.
type RepairControlPlane interface {
	ChooseWithRepair(src, dst int32, cands []netsim.Option, schemes []string) (netsim.Option, string, error)
	ReportRepair(src, dst int32, opt netsim.Option, scheme string, durSec float64, m quality.Metrics) error
}

// Selector wraps a control plane with graceful degradation: every fresh
// controller decision is cached per src→dst pair, and when the controller
// is unreachable (network fault, drain, crash) the Selector serves the
// cached decision instead of failing the call — falling back to the
// direct path if nothing usable is cached. Reports that cannot be
// delivered are counted and dropped (one lost sample, not a lost call).
type Selector struct {
	cp ControlPlane

	mu     sync.Mutex
	cached map[[2]int32]netsim.Option

	stale       atomic.Int64 // decisions served from cache or defaulted
	lostReports atomic.Int64 // reports the controller never received
	deadPaths   atomic.Int64 // mid-call path deaths reported upstream
}

// NewSelector builds a Selector over a control plane.
func NewSelector(cp ControlPlane) *Selector {
	return &Selector{cp: cp, cached: make(map[[2]int32]netsim.Option)}
}

// Stale returns how many decisions were served without the controller —
// the degraded-mode counter the chaos harness asserts on.
func (s *Selector) Stale() int64 { return s.stale.Load() }

// LostReports returns how many measurement reports failed delivery.
func (s *Selector) LostReports() int64 { return s.lostReports.Load() }

// DeadPathReports returns how many mid-call path deaths this selector has
// pushed to the controller.
func (s *Selector) DeadPathReports() int64 { return s.deadPaths.Load() }

// RegisterMetrics publishes the selector's degradation counters on a
// shared registry, labeled per client. GaugeFunc replace semantics make a
// restarted client's re-registration under the same label safe.
func (s *Selector) RegisterMetrics(reg *obs.Registry, client string) {
	reg.GaugeFunc(obs.L("via_client_stale_decisions", "client", client),
		func() float64 { return float64(s.Stale()) })
	reg.GaugeFunc(obs.L("via_client_lost_reports", "client", client),
		func() float64 { return float64(s.LostReports()) })
	reg.GaugeFunc(obs.L("via_client_dead_path_reports", "client", client),
		func() float64 { return float64(s.DeadPathReports()) })
}

// Choose asks the controller for a decision; on failure it degrades to
// the last cached decision for the pair (if it is still a candidate) or
// the direct path. fresh reports whether the controller answered.
func (s *Selector) Choose(src, dst int32, cands []netsim.Option) (opt netsim.Option, fresh bool) {
	opt, err := s.cp.Choose(src, dst, cands)
	key := [2]int32{src, dst}
	if err == nil {
		s.mu.Lock()
		s.cached[key] = opt
		s.mu.Unlock()
		return opt, true
	}
	s.stale.Add(1)
	s.mu.Lock()
	cachedOpt, ok := s.cached[key]
	s.mu.Unlock()
	if ok && (len(cands) == 0 || optionIn(cachedOpt, cands)) {
		return cachedOpt, false
	}
	return netsim.DirectOption(), false
}

// ChooseWithRepair is Choose plus repair-scheme negotiation. When the
// control plane (or the controller behind it) predates repair, or the
// controller is unreachable, the scheme degrades to empty — the call runs
// with plain forwarding, it does not fail.
func (s *Selector) ChooseWithRepair(src, dst int32, cands []netsim.Option, schemes []string) (opt netsim.Option, scheme string, fresh bool) {
	rcp, ok := s.cp.(RepairControlPlane)
	if !ok || len(schemes) == 0 {
		opt, fresh = s.Choose(src, dst, cands)
		return opt, "", fresh
	}
	opt, scheme, err := rcp.ChooseWithRepair(src, dst, cands, schemes)
	key := [2]int32{src, dst}
	if err == nil {
		s.mu.Lock()
		s.cached[key] = opt
		s.mu.Unlock()
		return opt, scheme, true
	}
	// Degraded mode: cached path if still a candidate, no repair scheme
	// (there is no controller to charge the redundancy budget to).
	s.stale.Add(1)
	s.mu.Lock()
	cachedOpt, cok := s.cached[key]
	s.mu.Unlock()
	if cok && (len(cands) == 0 || optionIn(cachedOpt, cands)) {
		return cachedOpt, "", false
	}
	return netsim.DirectOption(), "", false
}

// ReportRepair pushes a measurement along with the scheme that ran and
// the call duration; like Report, failures are counted and absorbed. A
// plane without repair support gets the plain report (the scheme is then
// strategy-side unknown, which matches — it never chose one).
func (s *Selector) ReportRepair(src, dst int32, opt netsim.Option, scheme string, durSec float64, m quality.Metrics) {
	rcp, ok := s.cp.(RepairControlPlane)
	if !ok || scheme == "" {
		s.Report(src, dst, opt, m)
		return
	}
	if err := rcp.ReportRepair(src, dst, opt, scheme, durSec, m); err != nil {
		s.lostReports.Add(1)
	}
}

// Report pushes a measurement; delivery failures are absorbed (counted),
// never surfaced to the call path.
func (s *Selector) Report(src, dst int32, opt netsim.Option, m quality.Metrics) {
	if err := s.cp.Report(src, dst, opt, m); err != nil {
		s.lostReports.Add(1)
	}
}

// ReportFailure tells the controller an option died mid-call, pushing the
// punitive DeadPathMetrics so prediction learns to avoid it (§3.1: only
// end-to-end feedback reveals a dead path). It also drops the option from
// the pair's cache — degraded mode must not keep resurrecting a path that
// just killed a call.
func (s *Selector) ReportFailure(src, dst int32, opt netsim.Option) {
	s.deadPaths.Add(1)
	key := [2]int32{src, dst}
	s.mu.Lock()
	if s.cached[key] == opt {
		delete(s.cached, key)
	}
	s.mu.Unlock()
	s.Report(src, dst, opt, DeadPathMetrics())
}

func optionIn(opt netsim.Option, cands []netsim.Option) bool {
	for _, c := range cands {
		if c == opt {
			return true
		}
	}
	return false
}
