package client

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/quality"
)

// fakeControl is a scriptable ControlPlane: fail toggles controller
// reachability, and every accepted report is recorded.
type fakeControl struct {
	mu      sync.Mutex
	fail    bool
	answer  netsim.Option
	reports []netsim.Option
	metrics []quality.Metrics
}

var errCtrlDown = errors.New("controller unreachable")

func (f *fakeControl) setFail(on bool) {
	f.mu.Lock()
	f.fail = on
	f.mu.Unlock()
}

func (f *fakeControl) Choose(src, dst int32, cands []netsim.Option) (netsim.Option, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return netsim.DirectOption(), errCtrlDown
	}
	return f.answer, nil
}

func (f *fakeControl) Report(src, dst int32, opt netsim.Option, m quality.Metrics) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errCtrlDown
	}
	f.reports = append(f.reports, opt)
	f.metrics = append(f.metrics, m)
	return nil
}

func TestSelectorCachesFreshDecisions(t *testing.T) {
	fc := &fakeControl{answer: netsim.BounceOption(3)}
	s := NewSelector(fc)
	cands := []netsim.Option{netsim.DirectOption(), netsim.BounceOption(3)}

	opt, fresh := s.Choose(1, 2, cands)
	if !fresh || opt != netsim.BounceOption(3) {
		t.Fatalf("fresh choose = %v fresh=%v", opt, fresh)
	}
	if s.Stale() != 0 {
		t.Errorf("stale = %d after a fresh decision", s.Stale())
	}

	// Controller goes away: the cached decision keeps serving.
	fc.setFail(true)
	opt, fresh = s.Choose(1, 2, cands)
	if fresh {
		t.Error("degraded decision reported as fresh")
	}
	if opt != netsim.BounceOption(3) {
		t.Errorf("degraded choose = %v, want cached bounce 3", opt)
	}
	if s.Stale() != 1 {
		t.Errorf("stale = %d, want 1", s.Stale())
	}
}

func TestSelectorDegradesToDirectWithoutCache(t *testing.T) {
	fc := &fakeControl{answer: netsim.BounceOption(3), fail: true}
	s := NewSelector(fc)
	opt, fresh := s.Choose(1, 2, []netsim.Option{netsim.BounceOption(3)})
	if fresh || opt != netsim.DirectOption() {
		t.Errorf("cold degraded choose = %v fresh=%v, want direct", opt, fresh)
	}
	if s.Stale() != 1 {
		t.Errorf("stale = %d, want 1", s.Stale())
	}
}

func TestSelectorIgnoresCacheOutsideCandidates(t *testing.T) {
	fc := &fakeControl{answer: netsim.BounceOption(3)}
	s := NewSelector(fc)
	s.Choose(1, 2, []netsim.Option{netsim.BounceOption(3)})
	fc.setFail(true)
	// The cached bounce-3 is no longer a candidate (relay fell out of the
	// directory): degrade to direct, not to a route that cannot resolve.
	opt, _ := s.Choose(1, 2, []netsim.Option{netsim.DirectOption(), netsim.BounceOption(5)})
	if opt != netsim.DirectOption() {
		t.Errorf("degraded choose = %v, want direct", opt)
	}
}

func TestSelectorCountsLostReports(t *testing.T) {
	fc := &fakeControl{fail: true}
	s := NewSelector(fc)
	s.Report(1, 2, netsim.DirectOption(), quality.Metrics{RTTMs: 10})
	if s.LostReports() != 1 {
		t.Errorf("lost reports = %d, want 1", s.LostReports())
	}
}

func TestSelectorReportFailureEvictsAndReports(t *testing.T) {
	fc := &fakeControl{answer: netsim.BounceOption(7)}
	s := NewSelector(fc)
	cands := []netsim.Option{netsim.DirectOption(), netsim.BounceOption(7)}
	s.Choose(1, 2, cands)

	s.ReportFailure(1, 2, netsim.BounceOption(7))
	fc.mu.Lock()
	nReports := len(fc.reports)
	var reported netsim.Option
	var m quality.Metrics
	if nReports > 0 {
		reported = fc.reports[0]
		m = fc.metrics[0]
	}
	fc.mu.Unlock()
	if nReports != 1 || reported != netsim.BounceOption(7) {
		t.Fatalf("failure report = %v (n=%d), want bounce 7", reported, nReports)
	}
	if m != DeadPathMetrics() {
		t.Errorf("failure metrics = %+v, want DeadPathMetrics", m)
	}

	// The dead option must not be served from cache in degraded mode.
	fc.setFail(true)
	opt, _ := s.Choose(1, 2, cands)
	if opt != netsim.DirectOption() {
		t.Errorf("degraded choose after failure = %v, want direct", opt)
	}
}
