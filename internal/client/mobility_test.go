package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rtp"
)

// droppingConn deterministically drops every Nth outgoing packet —
// synthetic forward loss between the agent and its first hop, so NACK
// repair has work to do on a clean loopback.
type droppingConn struct {
	net.PacketConn
	n     int64
	every int64
}

func dropEvery(c net.PacketConn, every int64) *droppingConn {
	return &droppingConn{PacketConn: c, every: every}
}

func (d *droppingConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if atomic.AddInt64(&d.n, 1)%d.every == 0 {
		return len(b), nil // swallowed
	}
	return d.PacketConn.WriteTo(b, addr)
}

// TestRebindMidCallPreservesRepair is the client half of the tentpole:
// a mid-call NAT rebind (new socket, new source address) must not drop
// the call or reset its repair state. The relay re-validates the new
// source and re-pins the return path; receiver reports keep flowing and
// NACK retransmits keep being served across the handover — with forward
// loss injected on both sides of the rebind to prove the repair machinery
// itself survived, not just the media stream.
func TestRebindMidCallPreservesRepair(t *testing.T) {
	r := startRelay(t, 7)
	caller := New(1, dropEvery(udpConn(t), 9), 71)
	t.Cleanup(func() { caller.Close() })
	callee := newAgent(t, 2, 72)
	if err := caller.SetRelays(relayDir(r)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(700 * time.Millisecond)
		// The new transport drops too: repair must work after the move.
		if err := caller.Rebind(dropEvery(udpConn(t), 9)); err != nil {
			t.Errorf("rebind: %v", err)
		}
	}()

	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(7),
		Duration: 2 * time.Second,
		PPS:      50,
		Repair:   rtp.SchemeNACK,
	})
	<-done
	if err != nil {
		t.Fatalf("call died across rebind: %v", err)
	}
	if got := caller.Rebinds(); got != 1 {
		t.Errorf("rebinds = %d, want 1", got)
	}
	if got := caller.PathResponses(); got < 1 {
		t.Errorf("path responses = %d, want >=1 (relay never challenged?)", got)
	}
	if got := r.Migrations(); got < 1 {
		t.Errorf("relay migrations = %d, want >=1 (return path never re-pinned)", got)
	}
	// Repair continuity: the scheme stayed negotiated (no downgrade), the
	// token stayed on, and retransmits were actually served.
	if got := caller.RepairDowngrades(); got != 0 {
		t.Errorf("repair downgrades = %d, want 0", got)
	}
	if got := caller.TokenDowngrades(); got != 0 {
		t.Errorf("token downgrades = %d, want 0", got)
	}
	if got := caller.NacksHonored(); got == 0 {
		t.Error("no NACK retransmits served despite injected loss")
	}
	// Failover never fired: the rebind was absorbed, not treated as a
	// dead path.
	if len(out.Failed) != 0 {
		t.Errorf("failed options = %v, want none", out.Failed)
	}
	// With every 9th packet dropped and NACK repair running across the
	// rebind, residual loss should be well under the raw 1/9 drop rate.
	if out.Metrics.LossRate > 0.08 {
		t.Errorf("residual loss = %v, want < 0.08 (repair state reset?)", out.Metrics.LossRate)
	}
}

// TestDrainMigrationMidCall: a draining relay nudges its active calls to
// move; the caller repaths in place to its backup option without counting
// a failover or reporting the drained option as failed.
func TestDrainMigrationMidCall(t *testing.T) {
	r1 := startRelay(t, 1)
	r2 := startRelay(t, 2)
	caller := newAgent(t, 1, 81)
	callee := newAgent(t, 2, 82)
	if err := caller.SetRelays(relayDir(r1, r2)); err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(600 * time.Millisecond)
		r1.SetDraining(true)
	}()

	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(1),
		Failover: []netsim.Option{netsim.BounceOption(2)},
		Duration: 2 * time.Second,
		PPS:      50,
	})
	if err != nil {
		t.Fatalf("call died during drain: %v", err)
	}
	if out.Used != netsim.BounceOption(2) {
		t.Errorf("call finished on %v, want migration to bounce(2)", out.Used)
	}
	if len(out.Failed) != 0 {
		t.Errorf("failed options = %v; drain migration must not be punitive", out.Failed)
	}
	if got := caller.DrainMigrations(); got != 1 {
		t.Errorf("drain migrations = %d, want 1", got)
	}
	if got := caller.Failovers(); got != 0 {
		t.Errorf("failovers = %d, want 0 (drain is not a path death)", got)
	}
	if pkts, _, _ := r2.Stats(); pkts == 0 {
		t.Error("backup relay saw no traffic after the nudge")
	}
}

// TestLegacyPeerTokenDowngrade: a pre-token peer drops v3 frames
// wholesale. The caller detects the silence, sheds the token (downgrading
// its wire to v1), and completes the call instead of failing it.
func TestLegacyPeerTokenDowngrade(t *testing.T) {
	caller := newAgent(t, 1, 91)
	callee := newAgent(t, 2, 92)
	callee.SetLegacyV1(true)

	m, err := caller.Call(CallSpec{
		Peer:          callee.Addr(),
		Option:        netsim.DirectOption(),
		Duration:      1500 * time.Millisecond,
		PPS:           50,
		FailoverAfter: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("call to legacy peer failed: %v", err)
	}
	if got := caller.TokenDowngrades(); got != 1 {
		t.Errorf("token downgrades = %d, want 1", got)
	}
	if m.RTTMs <= 0 {
		t.Error("no RTT after token downgrade — reports never resumed")
	}
}

// TestMobilityOffSendsNoTokenTraffic: with mobility disabled the agent
// must emit zero keepalives (its wire is plain v1/v2 — byte-identical to
// a pre-token build, as asserted at the frame layer).
func TestMobilityOffSendsNoTokenTraffic(t *testing.T) {
	r := startRelay(t, 4)
	caller := newAgent(t, 1, 93)
	callee := newAgent(t, 2, 94)
	caller.SetMobility(false)
	if err := caller.SetRelays(relayDir(r)); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(4),
		Duration: 400 * time.Millisecond,
		PPS:      100,
	}); err != nil {
		t.Fatal(err)
	}
	if got := caller.KeepalivesSent(); got != 0 {
		t.Errorf("keepalives = %d, want 0 with mobility off", got)
	}
	if got := r.Keepalives(); got != 0 {
		t.Errorf("relay keepalives = %d, want 0 with mobility off", got)
	}
}
