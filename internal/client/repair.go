// Loss-repair data plane: the agent-side halves of NACK retransmit and
// XOR-FEC recovery. The caller keeps a ring of sent wire frames and
// serves retransmits on NACK; the callee tracks sequence gaps, requests
// overdue packets, and folds FEC parity into its decoder. RED needs no
// state here beyond duplicate detection in FlowStats. The scheme itself
// is negotiated in CallResilient (see client.go): it rides in every
// frame's repair byte, and the callee confirms it with an echo byte
// trailing each receiver report.
package client

import (
	"net"

	"repro/internal/rtp"
	"repro/internal/transport"
)

// setupRepairLocked lazily builds the callee-side repair state for the
// scheme announced by the session's first repair byte. SchemeFromByte has
// already degraded anything unknown to SchemeNone, so an agent never
// fails a call over a scheme it cannot run — it just measures plainly.
// Called with ic.mu held.
func (ic *inCall) setupRepairLocked(s rtp.Scheme) {
	ic.scheme = s
	switch {
	case s == rtp.SchemeNACK:
		ic.gap = &rtp.GapTracker{}
		ic.nack = rtp.NewNACKGenerator(rtp.NACKConfig{})
	case s.IsFEC():
		ic.fecDec = rtp.NewFECDecoder(s.FECGroup())
	}
}

// sendNack ships one bounded retransmit request back along the reply
// route. Best-effort: a lost NACK is re-requested at the next interval
// until the retry cap or playout deadline gives up on the gap.
func (a *Agent) sendNack(session uint64, ssrc uint32, seqs []uint16, reply []*net.UDPAddr, tok transport.Token) {
	if len(reply) == 0 {
		return
	}
	var f transport.Frame
	f.Session = session
	f.Kind = transport.KindNack
	f.Token = tok
	if err := f.SetRoute(reply[1:]); err != nil {
		return
	}
	req := rtp.NACKRequest{SSRC: ssrc, Seqs: seqs}
	f.Payload = req.Marshal(nil)
	if _, err := a.pc().WriteTo(f.Marshal(nil), reply[0]); err == nil {
		a.nacksSent.Add(int64(len(seqs)))
	}
}

// handleNack is the caller side of retransmission: look the requested
// sequence numbers up in the call's retransmit ring and re-send the
// stored wire frames verbatim. A seq that has already been overwritten
// in the ring (or a call that downgraded away its ring) is silently
// skipped — the receiver's retry/deadline machinery owns giving up.
func (a *Agent) handleNack(f *transport.Frame) {
	var req rtp.NACKRequest
	if err := req.Unmarshal(f.Payload); err != nil {
		return
	}
	a.mu.Lock()
	oc := a.outgoing[f.Session]
	a.mu.Unlock()
	if oc == nil {
		return
	}
	// Copy the frames out under the lock: the ring slots are rewritten in
	// place by the sender's Put.
	oc.mu.Lock()
	sendTo := oc.sendTo
	var wires [][]byte
	if oc.rtx != nil && sendTo != nil {
		for _, seq := range req.Seqs {
			if w, ok := oc.rtx.Get(seq); ok {
				wires = append(wires, append([]byte(nil), w...))
			}
		}
	}
	oc.mu.Unlock()
	for _, w := range wires {
		if _, err := a.pc().WriteTo(w, sendTo); err == nil {
			a.nacksHonored.Add(1)
		}
	}
}

// handleFEC is the callee side of XOR-FEC: feed the parity packet to the
// group decoder and credit any packet it completes. Parity may outrun the
// session's first media frame, so repair state is initialized here too.
func (a *Agent) handleFEC(f *transport.Frame) {
	var fp rtp.FECPacket
	if err := fp.Unmarshal(f.Payload); err != nil {
		return
	}
	a.mu.Lock()
	ic := a.incoming[f.Session]
	if ic == nil {
		ic = &inCall{}
		a.incoming[f.Session] = ic
	}
	a.mu.Unlock()
	ic.mu.Lock()
	if ic.scheme == rtp.SchemeNone && f.Repair != 0 {
		ic.setupRepairLocked(rtp.SchemeFromByte(f.Repair))
	}
	if ic.fecDec != nil {
		if rec, ok := ic.fecDec.AddParity(&fp); ok {
			ic.flow.ObserveRecovered(rec.Seq)
			a.fecRecovered.Add(1)
		}
	}
	ic.mu.Unlock()
}
