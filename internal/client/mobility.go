// Mid-call mobility, agent side (DESIGN.md §17): transport rebinding, the
// session-token plumbing, relay keepalives, and the endpoint half of path
// validation. The relay side lives in internal/relay/mobility.go.
//
// The agent's job in a NAT rebind is deliberately small: swap the socket,
// re-derive the routes that embed its own address, and answer the relay's
// path challenge from the new source. Everything stateful — which address
// reverse traffic goes to, whether the new source is genuine — is decided
// at the relay, keyed by the call's session token rather than the source
// address. The callee never learns the caller moved.
package client

import (
	"errors"
	"net"

	"repro/internal/transport"
)

// ErrClosed reports a Rebind against an agent that has been closed.
var ErrClosed = errors.New("client: agent closed")

// Rebind swaps the agent's transport for a new one mid-flight, simulating
// a NAT rebind or interface handover: the old conn is closed (its read
// loop retires), a fresh read loop starts on the new conn, and every
// in-flight call notices the generation bump and re-derives the routes
// that embed the agent's own address. Calls carrying a session token
// survive — their relays re-validate the new source and re-pin the
// return path; tokenless calls keep sending but lose reverse traffic,
// exactly like a real pre-token client behind a rebinding NAT.
func (a *Agent) Rebind(conn net.PacketConn) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close() //vialint:ignore errwrap refusing the rebind; the caller keeps the original error
		return ErrClosed
	}
	old := a.pc()
	a.connV.Store(connHolder{c: conn})
	a.mu.Unlock()
	a.rebindGen.Add(1)
	a.rebinds.Add(1)
	a.wg.Add(1)
	go a.readLoop(conn)
	// Closing the old conn retires its read loop; sends that raced the
	// swap surface a closed-conn error the call loops already tolerate.
	return old.Close()
}

// newToken mints a nonzero session token from the agent's RNG.
func (a *Agent) newToken() transport.Token {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.newTokenLocked()
}

// newTokenLocked is newToken with a.mu already held (the RNG is guarded
// by a.mu).
func (a *Agent) newTokenLocked() transport.Token {
	var t transport.Token
	for t.IsZero() {
		for i := 0; i < transport.TokenLen; i += 8 {
			v := a.rng.Uint64()
			for j := 0; j < 8; j++ {
				t[i+j] = byte(v >> (8 * j))
			}
		}
	}
	return t
}

// sendKeepalive refreshes the call's session at every relay on the path:
// a token-bearing frame routed along the relay chain only (the final peer
// hop is dropped, so the last relay consumes it — the peer never sees
// keepalives). Each relay on the chain resets the session's idle TTL and,
// after a rebind, sees the new source address on a token it knows, which
// triggers path validation immediately. Direct or tokenless calls have no
// relay session to refresh; this is a no-op for them.
func (a *Agent) sendKeepalive(session uint64, tok transport.Token, rs *routeSet) {
	if tok.IsZero() || len(rs.route) == 0 {
		return
	}
	var f transport.Frame
	f.Session = session
	f.Kind = transport.KindKeepalive
	f.Token = tok
	if err := f.SetRoute(rs.route[:len(rs.route)-1]); err != nil {
		return
	}
	//vialint:ignore errwrap best-effort keepalive: media traffic refreshes the same state; the next tick retries
	_, _ = a.pc().WriteTo(f.Marshal(nil), rs.sendTo)
	a.keepalivesSent.Add(1)
}

// handlePathChallenge answers a relay's path validation probe: echo the
// challenge payload bit-exactly, from our current source address, under
// the same token. Only the true owner of the new address receives the
// challenge (the relay sends it nowhere else), so the echo proves the
// migration is genuine (RFC 9000 §8.2 logic; see transport/path.go).
func (a *Agent) handlePathChallenge(f *transport.Frame, src net.Addr) {
	if len(f.Payload) != transport.PathChallengeLen || f.Token.IsZero() {
		return
	}
	var out transport.Frame
	out.Session = f.Session
	out.Kind = transport.KindPathResponse
	out.Token = f.Token
	out.Payload = append([]byte(nil), f.Payload...)
	//vialint:ignore errwrap best-effort response: the relay re-challenges on silence
	_, _ = a.pc().WriteTo(out.Marshal(nil), src)
	a.pathResponses.Add(1)
}

// handleDrain marks an outgoing call for in-place migration: a relay on
// its path is retiring and asked us to move to a backup. The media loop
// consumes the flag at its next tick. Nudges for sessions we do not
// originate (the callee side of a call) are ignored — the caller owns
// route selection, and its migrated media frames carry the new reply
// route to us.
func (a *Agent) handleDrain(f *transport.Frame) {
	a.mu.Lock()
	oc := a.outgoing[f.Session]
	a.mu.Unlock()
	if oc == nil {
		return
	}
	oc.mu.Lock()
	oc.drainNudge = true
	oc.mu.Unlock()
}
