package client

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/wan"
)

func udpConn(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newAgent(t *testing.T, group int32, seed uint64) *Agent {
	t.Helper()
	a := New(group, udpConn(t), seed)
	t.Cleanup(func() { a.Close() })
	return a
}

func newShapedAgent(t *testing.T, group int32, seed uint64) (*Agent, *wan.Shaper) {
	t.Helper()
	sh := wan.Wrap(udpConn(t), seed)
	a := New(group, sh, seed)
	t.Cleanup(func() { a.Close() })
	return a, sh
}

func startRelay(t *testing.T, id netsim.RelayID) *relay.Node {
	t.Helper()
	n := relay.New(id, udpConn(t))
	go n.Serve()
	t.Cleanup(func() { n.Close() })
	return n
}

func relayDir(nodes ...*relay.Node) map[netsim.RelayID]string {
	out := map[netsim.RelayID]string{}
	for _, n := range nodes {
		out[n.ID()] = n.Addr().String()
	}
	return out
}

func TestDirectCallCleanPath(t *testing.T) {
	caller := newAgent(t, 1, 1)
	callee := newAgent(t, 2, 2)
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 400 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LossRate > 0.02 {
		t.Errorf("loss on loopback = %v", m.LossRate)
	}
	if m.RTTMs <= 0 || m.RTTMs > 50 {
		t.Errorf("loopback RTT = %v ms", m.RTTMs)
	}
	if m.JitterMs > 10 {
		t.Errorf("loopback jitter = %v ms", m.JitterMs)
	}
}

func TestBounceCall(t *testing.T) {
	r := startRelay(t, 3)
	caller := newAgent(t, 1, 3)
	callee := newAgent(t, 2, 4)
	if err := caller.SetRelays(relayDir(r)); err != nil {
		t.Fatal(err)
	}
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(3),
		Duration: 400 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RTTMs <= 0 {
		t.Error("no RTT measured through bounce relay")
	}
	pkts, _, _ := r.Stats()
	if pkts == 0 {
		t.Error("relay saw no traffic for a bounce call")
	}
}

func TestTransitCall(t *testing.T) {
	r1 := startRelay(t, 1)
	r2 := startRelay(t, 2)
	caller := newAgent(t, 1, 5)
	callee := newAgent(t, 2, 6)
	if err := caller.SetRelays(relayDir(r1, r2)); err != nil {
		t.Fatal(err)
	}
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.TransitOption(1, 2),
		Duration: 400 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RTTMs <= 0 {
		t.Error("no RTT through transit pair")
	}
	p1, _, _ := r1.Stats()
	p2, _, _ := r2.Stats()
	if p1 == 0 || p2 == 0 {
		t.Errorf("transit relays saw %d/%d packets", p1, p2)
	}
}

func TestCallMeasuresImpairedRTT(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 7)
	callee := newAgent(t, 2, 8)
	// 40ms each way on the caller's outgoing link. The reply path is
	// unimpaired, so measured RTT ≈ 40ms+.
	sh.SetLink(callee.Addr().String(), wan.LinkParams{DelayMs: 40})
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 500 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RTTMs < 35 || m.RTTMs > 120 {
		t.Errorf("measured RTT = %v ms, want ~40-60", m.RTTMs)
	}
}

func TestCallMeasuresImpairedLoss(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 9)
	callee := newAgent(t, 2, 10)
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 0.3})
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 800 * time.Millisecond,
		PPS:      150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LossRate-0.3) > 0.15 {
		t.Errorf("measured loss = %v, want ~0.3", m.LossRate)
	}
}

func TestCallMeasuresImpairedJitter(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 11)
	callee := newAgent(t, 2, 12)
	sh.SetLink(callee.Addr().String(), wan.LinkParams{DelayMs: 5, JitterMs: 12})
	m, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 800 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.JitterMs < 2 {
		t.Errorf("measured jitter = %v ms with 12ms link jitter", m.JitterMs)
	}
}

func TestCallDeadPath(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 13)
	callee := newAgent(t, 2, 14)
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 1})
	_, err := caller.Call(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 200 * time.Millisecond,
		PPS:      50,
	})
	if err != ErrNoFeedback {
		t.Errorf("dead path error = %v, want ErrNoFeedback", err)
	}
}

func TestCallUnknownRelay(t *testing.T) {
	caller := newAgent(t, 1, 15)
	callee := newAgent(t, 2, 16)
	_, err := caller.Call(CallSpec{
		Peer:   callee.Addr(),
		Option: netsim.BounceOption(99),
	})
	if err == nil {
		t.Error("unknown relay accepted")
	}
}

func TestSetRelaysBadAddr(t *testing.T) {
	a := newAgent(t, 1, 17)
	if err := a.SetRelays(map[netsim.RelayID]string{1: "not-an-addr:xx"}); err == nil {
		t.Error("bad relay addr accepted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	r := startRelay(t, 1)
	caller := newAgent(t, 1, 18)
	c1 := newAgent(t, 2, 19)
	c2 := newAgent(t, 3, 20)
	caller.SetRelays(relayDir(r))

	type res struct {
		rtt float64
		err error
	}
	ch := make(chan res, 2)
	for _, peer := range []*Agent{c1, c2} {
		go func(p *Agent) {
			m, err := caller.Call(CallSpec{
				Peer: p.Addr(), Option: netsim.BounceOption(1),
				Duration: 300 * time.Millisecond, PPS: 100,
			})
			ch <- res{m.RTTMs, err}
		}(peer)
	}
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Errorf("concurrent call failed: %v", r.err)
		}
		if r.rtt <= 0 {
			t.Error("concurrent call measured no RTT")
		}
	}
}

func TestNanosRoundTrip(t *testing.T) {
	buf := make([]byte, 8)
	for _, v := range []int64{0, 1, -1, time.Now().UnixNano(), math.MaxInt64, math.MinInt64} {
		putNanos(buf, v)
		if got := getNanos(buf); got != v {
			t.Errorf("nanos round trip %d -> %d", v, got)
		}
	}
}

func TestAgentDoubleClose(t *testing.T) {
	a := New(1, udpConn(t), 21)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Error("double close errored:", err)
	}
}

func TestCallWithFallbackOnDeadRelay(t *testing.T) {
	// Route the call through a relay that is not running: no feedback over
	// the relayed path, so the agent must retry direct and succeed.
	caller := newAgent(t, 1, 40)
	callee := newAgent(t, 2, 41)
	dead, err := net.ResolveUDPAddr("udp", "127.0.0.1:1") // nothing listens
	if err != nil {
		t.Fatal(err)
	}
	caller.SetRelays(map[netsim.RelayID]string{7: dead.String()})
	m, used, err := caller.CallWithFallback(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(7),
		Duration: 200 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatalf("fallback call failed: %v", err)
	}
	if used != netsim.DirectOption() {
		t.Errorf("used option = %v, want direct fallback", used)
	}
	if m.RTTMs <= 0 {
		t.Error("fallback call measured no RTT")
	}
}

func TestCallWithFallbackKeepsWorkingOption(t *testing.T) {
	r := startRelay(t, 3)
	caller := newAgent(t, 1, 42)
	callee := newAgent(t, 2, 43)
	caller.SetRelays(relayDir(r))
	_, used, err := caller.CallWithFallback(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(3),
		Duration: 200 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if used != netsim.BounceOption(3) {
		t.Errorf("healthy relay replaced: used %v", used)
	}
}

func TestDuplexCall(t *testing.T) {
	r := startRelay(t, 5)
	caller := newAgent(t, 1, 50)
	callee := newAgent(t, 2, 51)
	caller.SetRelays(relayDir(r))
	fwd, rev, err := caller.CallDuplex(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(5),
		Duration: 500 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.RTTMs <= 0 {
		t.Error("forward direction measured no RTT")
	}
	// The reverse stream must have arrived and been measured: its loss on
	// clean loopback should be ~0 and some packets must have been seen.
	if rev.LossRate > 0.05 {
		t.Errorf("reverse loss = %v on clean loopback", rev.LossRate)
	}
	// Reverse jitter must be a real measurement (estimator engaged).
	if rev.JitterMs < 0 {
		t.Errorf("reverse jitter = %v", rev.JitterMs)
	}
}

func TestDuplexReverseStreamImpaired(t *testing.T) {
	// Impair the callee's outgoing link: the caller's reverse-direction
	// measurement must see the loss.
	caller := newAgent(t, 1, 52)
	calleeSh := wan.Wrap(udpConn(t), 53)
	callee := New(2, calleeSh, 53)
	t.Cleanup(func() { callee.Close() })
	calleeSh.SetLink(caller.Addr().String(), wan.LinkParams{LossRate: 0.35})

	fwd, rev, err := caller.CallDuplex(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 800 * time.Millisecond,
		PPS:      100,
	})
	// Forward reports traverse the impaired reverse link too; the call may
	// still complete because only 35% are lost.
	if err != nil {
		t.Fatal(err)
	}
	if fwd.LossRate > 0.1 {
		t.Errorf("forward loss = %v; forward path is clean", fwd.LossRate)
	}
	if rev.LossRate < 0.1 {
		t.Errorf("reverse loss = %v, want ~0.35", rev.LossRate)
	}
}

func TestCallResilientFailsOverMidCall(t *testing.T) {
	// Kill the relay path 300ms into a 1.5s call by blackholing the
	// caller→relay segment. Receiver reports stop; the agent must repath
	// to direct and finish the call.
	r := startRelay(t, 9)
	caller, sh := newShapedAgent(t, 1, 60)
	callee := newAgent(t, 2, 61)
	caller.SetRelays(relayDir(r))

	go func() {
		time.Sleep(300 * time.Millisecond)
		sh.SetBlackhole(r.Addr().String(), true)
	}()
	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(9),
		Failover: []netsim.Option{netsim.DirectOption()},
		Duration: 1500 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatalf("resilient call failed: %v", err)
	}
	if out.Used != netsim.DirectOption() {
		t.Errorf("finished on %v, want direct after failover", out.Used)
	}
	if out.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", out.Failovers())
	}
	if len(out.Failed) != 1 || out.Failed[0] != netsim.BounceOption(9) {
		t.Errorf("failed options = %v, want [bounce 9]", out.Failed)
	}
	if caller.Failovers() != 1 {
		t.Errorf("agent failover counter = %d, want 1", caller.Failovers())
	}
	// The dead window shows up as loss in the call's own metrics.
	if out.Metrics.LossRate <= 0 {
		t.Error("dead window left no loss in metrics")
	}
}

func TestCallResilientUnresolvablePrimary(t *testing.T) {
	// The primary option's relay is not in the directory at all: fail over
	// before any media flows, without waiting out a liveness deadline.
	caller := newAgent(t, 1, 62)
	callee := newAgent(t, 2, 63)
	start := time.Now()
	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(42),
		Failover: []netsim.Option{netsim.DirectOption()},
		Duration: 200 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatalf("resilient call failed: %v", err)
	}
	if out.Used != netsim.DirectOption() {
		t.Errorf("finished on %v, want direct", out.Used)
	}
	if out.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", out.Failovers())
	}
	if time.Since(start) > time.Second {
		t.Error("unresolvable primary waited out a liveness deadline")
	}
}

func TestCallResilientNoFailoverOnHealthyPath(t *testing.T) {
	r := startRelay(t, 11)
	caller := newAgent(t, 1, 64)
	callee := newAgent(t, 2, 65)
	caller.SetRelays(relayDir(r))
	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.BounceOption(11),
		Failover: []netsim.Option{netsim.DirectOption()},
		Duration: 600 * time.Millisecond,
		PPS:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Used != netsim.BounceOption(11) {
		t.Errorf("healthy path abandoned for %v", out.Used)
	}
	if out.Failovers() != 0 {
		t.Errorf("failovers = %d on a healthy path", out.Failovers())
	}
}

func TestCallResilientRidesOutWithNoCandidates(t *testing.T) {
	// No failover candidates: a dead path ends in ErrNoFeedback exactly as
	// a plain Call would, with the failed attempt visible in the outcome.
	caller, sh := newShapedAgent(t, 1, 66)
	callee := newAgent(t, 2, 67)
	sh.SetBlackhole(callee.Addr().String(), true)
	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: 300 * time.Millisecond,
		PPS:      50,
	})
	if err != ErrNoFeedback {
		t.Errorf("err = %v, want ErrNoFeedback", err)
	}
	if out.Failovers() != 0 {
		t.Errorf("failovers = %d with no candidates", out.Failovers())
	}
}

func TestDeadPathMetricsValidAndPunitive(t *testing.T) {
	m := DeadPathMetrics()
	if !m.Valid() {
		t.Fatal("DeadPathMetrics must pass controller validation")
	}
	if m.LossRate != 1 || m.RTTMs < 1000 {
		t.Errorf("DeadPathMetrics = %+v; want total loss and pessimal RTT", m)
	}
}
