// Package client implements the testbed call agent: the instrumented-Skype
// stand-in of §5.5. An agent plays both roles — caller (streams RTP-style
// media through the relaying option under test and collects RTT samples
// from echoed receiver reports) and callee (measures loss and RFC 3550
// jitter on arriving media and feeds them back through the reverse relay
// route). The resulting call-average metric triple is exactly what the
// production clients push to the controller.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/rtp"
	"repro/internal/stats"
	"repro/internal/transport"
)

// connHolder wraps the agent's PacketConn so atomic.Value always stores
// one concrete type. The conn is swapped wholesale by Rebind (NAT rebind
// / interface handover), so every send and the read loop must go through
// the holder rather than a plain field.
type connHolder struct{ c net.PacketConn }

// Agent is one endpoint.
type Agent struct {
	group int32        // the agent's AS-analogue group id
	connV atomic.Value // connHolder; swapped by Rebind

	// rebindGen increments on every Rebind; long-running loops (media,
	// reverse streams) notice the change and re-derive routes that embed
	// the agent's own address.
	rebindGen atomic.Int64

	mu       sync.Mutex
	relays   map[netsim.RelayID]*net.UDPAddr
	outgoing map[uint64]*outCall
	incoming map[uint64]*inCall
	closed   bool
	rng      *stats.RNG

	failovers atomic.Int64 // mid-call repaths across all calls

	// Mobility counters (DESIGN.md §17).
	rebinds         atomic.Int64 // Rebind calls performed
	keepalivesSent  atomic.Int64 // session keepalives emitted
	pathResponses   atomic.Int64 // relay path challenges answered
	drainMigrations atomic.Int64 // in-place migrations off draining relays
	tokenDowngrades atomic.Int64 // calls that dropped the token for a legacy peer

	// mobility gates the per-call session token (wire v3). On by default;
	// disabled agents produce byte-identical v1/v2 traffic.
	mobilityOff atomic.Bool

	// Loss-repair data-plane counters (see repair.go).
	nacksSent         atomic.Int64 // NACK seqs requested (receiver side)
	nacksHonored      atomic.Int64 // retransmits served (sender side)
	fecRecovered      atomic.Int64 // packets rebuilt from FEC parity
	redDuplicates     atomic.Int64 // redundant RED copies absorbed
	rtxDeadlineMisses atomic.Int64 // NACK entries expired unrepaired
	repairDowngrades  atomic.Int64 // calls that fell back to plain forwarding

	// legacyV1 simulates a pre-repair build: the agent drops any frame
	// carrying a repair byte (the v2 header an old Unmarshal would reject)
	// and never negotiates a scheme.
	legacyV1 atomic.Bool

	wg sync.WaitGroup
}

// Failovers returns how many mid-call repaths this agent has performed —
// nonzero means paths died under live calls and the agent recovered.
func (a *Agent) Failovers() int64 { return a.failovers.Load() }

// NacksSent returns how many sequence numbers this agent has NACKed.
func (a *Agent) NacksSent() int64 { return a.nacksSent.Load() }

// NacksHonored returns how many retransmit requests this agent served.
func (a *Agent) NacksHonored() int64 { return a.nacksHonored.Load() }

// FECRecovered returns how many packets were rebuilt from parity.
func (a *Agent) FECRecovered() int64 { return a.fecRecovered.Load() }

// REDDuplicates returns how many redundant RED copies were absorbed.
func (a *Agent) REDDuplicates() int64 { return a.redDuplicates.Load() }

// RtxDeadlineMisses returns how many NACK entries expired unrepaired.
func (a *Agent) RtxDeadlineMisses() int64 { return a.rtxDeadlineMisses.Load() }

// RepairDowngrades returns how many calls fell back to plain forwarding
// because the peer never confirmed the repair scheme.
func (a *Agent) RepairDowngrades() int64 { return a.repairDowngrades.Load() }

// SetLegacyV1 makes the agent behave like a pre-repair build: incoming
// frames with a repair byte are dropped (an old parser would reject the
// v2 magic) and no scheme is ever echoed, so a repair-requesting caller
// must detect the silence and downgrade. A legacy build also predates
// session tokens, so v3 frames are dropped and none are emitted.
func (a *Agent) SetLegacyV1(on bool) { a.legacyV1.Store(on) }

// SetMobility toggles session tokens (wire v3) for calls this agent
// originates. Off, the agent emits byte-identical v1/v2 traffic — the
// compat path for peers that never negotiate a token.
func (a *Agent) SetMobility(on bool) { a.mobilityOff.Store(!on) }

// Rebinds returns how many times the agent's transport was rebound.
func (a *Agent) Rebinds() int64 { return a.rebinds.Load() }

// KeepalivesSent returns how many session keepalives the agent has sent.
func (a *Agent) KeepalivesSent() int64 { return a.keepalivesSent.Load() }

// PathResponses returns how many relay path challenges were answered.
func (a *Agent) PathResponses() int64 { return a.pathResponses.Load() }

// DrainMigrations returns how many calls migrated off a draining relay
// in place (not counted as failovers: the path was healthy, just
// retiring).
func (a *Agent) DrainMigrations() int64 { return a.drainMigrations.Load() }

// TokenDowngrades returns how many calls dropped their session token
// mid-call to interoperate with a silent (pre-token) peer.
func (a *Agent) TokenDowngrades() int64 { return a.tokenDowngrades.Load() }

// RegisterMetrics publishes the agent's failover and loss-repair counters
// on a shared registry, labeled per client.
func (a *Agent) RegisterMetrics(reg *obs.Registry, client string) {
	reg.GaugeFunc(obs.L("via_client_failovers", "client", client),
		func() float64 { return float64(a.Failovers()) })
	reg.GaugeFunc(obs.L("via_client_nacks_sent", "client", client),
		func() float64 { return float64(a.NacksSent()) })
	reg.GaugeFunc(obs.L("via_client_nacks_honored", "client", client),
		func() float64 { return float64(a.NacksHonored()) })
	reg.GaugeFunc(obs.L("via_client_fec_recoveries", "client", client),
		func() float64 { return float64(a.FECRecovered()) })
	reg.GaugeFunc(obs.L("via_client_red_duplicates", "client", client),
		func() float64 { return float64(a.REDDuplicates()) })
	reg.GaugeFunc(obs.L("via_client_rtx_deadline_misses", "client", client),
		func() float64 { return float64(a.RtxDeadlineMisses()) })
	reg.GaugeFunc(obs.L("via_client_repair_downgrades", "client", client),
		func() float64 { return float64(a.RepairDowngrades()) })
	reg.CounterFunc(obs.L("via_client_rebinds_total", "client", client),
		func() int64 { return a.Rebinds() })
	reg.CounterFunc(obs.L("via_client_keepalives_total", "client", client),
		func() int64 { return a.KeepalivesSent() })
	reg.CounterFunc(obs.L("via_client_path_responses_total", "client", client),
		func() int64 { return a.PathResponses() })
	reg.CounterFunc(obs.L("via_client_drain_migrations_total", "client", client),
		func() int64 { return a.DrainMigrations() })
	reg.CounterFunc(obs.L("via_client_token_downgrades_total", "client", client),
		func() int64 { return a.TokenDowngrades() })
}

// outCall is caller-side per-call state.
type outCall struct {
	mu       sync.Mutex
	flow     rtp.FlowStats
	lastRR   *rtp.ReceiverReport
	lastRRAt time.Time // arrival time of lastRR (failover liveness signal)

	// Sender-side repair state (nil / zero when the call runs no repair).
	scheme   rtp.Scheme
	rtx      *rtp.RtxRing // sent wire frames, for NACK retransmits
	sendTo   *net.UDPAddr // current first hop (retransmit target)
	echoSeen bool         // a receiver report carried a scheme echo
	echo     rtp.Scheme   // the scheme the callee confirmed

	// drainNudge is set by the read loop when a relay on the path asks the
	// call to migrate (KindDrain); the media loop consumes it and repaths
	// in place to the next failover candidate.
	drainNudge bool
}

// inCall is callee-side per-call state.
type inCall struct {
	// token is the callee's own session token, minted when the first
	// frame of a token-bearing call arrives and immutable afterwards. It
	// rides every reverse frame (reports, NACKs, return media) so the
	// relays can re-pin the callee's path independently of the caller's.
	token transport.Token

	mu        sync.Mutex
	flow      rtp.FlowStats
	reply     []*net.UDPAddr
	pkts      int64
	lastSend  int64 // SendNanos of most recent media packet
	lastArrNs int64 // its arrival time
	streaming bool  // a duplex return stream is running

	// Receiver-side repair state, built lazily from the first repair byte
	// seen on the session's frames (see repair.go).
	scheme  rtp.Scheme
	gap     *rtp.GapTracker
	nack    *rtp.NACKGenerator
	fecDec  *rtp.FECDecoder
	nackBuf []uint16
}

// rrEvery is how often (in media packets) the callee emits a report.
const rrEvery = 5

// Media payload types: ptSimplex is ordinary one-way media; ptDuplex asks
// the callee to stream media back over the reverse route.
const (
	ptSimplex = 111
	ptDuplex  = 112
)

// New builds an agent on conn (typically a wan.Shaper) and starts its
// receive loop.
func New(group int32, conn net.PacketConn, seed uint64) *Agent {
	a := &Agent{
		group:    group,
		relays:   make(map[netsim.RelayID]*net.UDPAddr),
		outgoing: make(map[uint64]*outCall),
		incoming: make(map[uint64]*inCall),
		rng:      stats.NewRNG(seed).Split("agent"),
	}
	a.connV.Store(connHolder{c: conn})
	a.wg.Add(1)
	go a.readLoop(conn)
	return a
}

// pc returns the agent's current transport. Sends load it fresh so a
// concurrent Rebind redirects the very next datagram.
func (a *Agent) pc() net.PacketConn { return a.connV.Load().(connHolder).c }

// Group returns the agent's group id.
func (a *Agent) Group() int32 { return a.group }

// Addr returns the agent's media address.
func (a *Agent) Addr() *net.UDPAddr { return a.pc().LocalAddr().(*net.UDPAddr) }

// SetRelays installs the relay directory (from the controller).
func (a *Agent) SetRelays(dir map[netsim.RelayID]string) error {
	m := make(map[netsim.RelayID]*net.UDPAddr, len(dir))
	for id, addr := range dir {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("client: relay %d addr %q: %w", id, addr, err)
		}
		m[id] = ua
	}
	a.mu.Lock()
	a.relays = m
	a.mu.Unlock()
	return nil
}

// Close shuts the agent down.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.pc().Close()
	a.wg.Wait()
	return err
}

// CallSpec describes one call to place.
type CallSpec struct {
	Peer     *net.UDPAddr
	Option   netsim.Option
	Duration time.Duration
	// PPS is the media packet rate (default 50 — 20ms frames).
	PPS int
	// PayloadBytes is the media payload size (default 160, G.711 20ms).
	PayloadBytes int
	// Duplex asks the callee to stream media back over the reverse route
	// for the duration of the call, so both directions are measured (real
	// calls are two-way; the paper's metrics are round-trip/average).
	Duplex bool
	// Failover lists fallback options tried in order when the active path
	// goes dead mid-call: receiver reports stop arriving for FailoverAfter
	// (§3.1 — the relays send heartbeats, but only end-to-end feedback
	// proves a *path* alive). The caller repaths without tearing the call
	// down; the abandoned option is recorded so its failure can be
	// reported to the controller.
	Failover []netsim.Option
	// FailoverAfter is the no-feedback deadline before repathing. The
	// default is four receiver-report intervals (rrEvery packets each),
	// floored at 250ms — several consecutive missing reports, not one
	// late one.
	FailoverAfter time.Duration
	// Repair selects the in-band loss-repair scheme for the call's media
	// (negotiated at setup: the scheme rides in every frame's repair byte
	// and the callee echoes its acceptance on receiver reports). The zero
	// value (SchemeNone) sends plain v1 frames. If the peer never
	// confirms the scheme — a pre-repair build — the caller downgrades to
	// plain forwarding instead of failing the call.
	Repair rtp.Scheme
	// Keepalive is how often the caller refreshes its session state at the
	// relays on the path: a token-bearing frame addressed to the relay
	// chain (consumed before the peer) that resets the relay idle TTL and
	// keeps NAT bindings warm. Zero means the 10s default; negative
	// disables. Keepalives ride only relayed, token-bearing calls — direct
	// or tokenless calls have no relay session to refresh.
	Keepalive time.Duration
}

// CallOutcome is the result of a resilient call: the measured metrics,
// the option that was carrying media when the call ended, and every
// option abandoned mid-call. Failed options should be reported to the
// controller as dead (see DeadPathMetrics) so selection learns.
type CallOutcome struct {
	Metrics quality.Metrics
	Used    netsim.Option
	Failed  []netsim.Option
}

// Failovers reports how many times the call repathed.
func (o CallOutcome) Failovers() int { return len(o.Failed) }

// DeadPathMetrics is the punitive measurement reported for a path that
// died mid-call: total loss and a pessimal RTT/jitter, so every metric's
// predictor learns to avoid the path (a zero RTT would read as *good* to
// an RTT-optimizing strategy).
func DeadPathMetrics() quality.Metrics {
	return quality.Metrics{RTTMs: 2000, LossRate: 1, JitterMs: 100}
}

// ErrNoFeedback reports a call that received no receiver reports — the
// path was completely dead.
var ErrNoFeedback = errors.New("client: no receiver reports (path dead?)")

// Call streams media to the peer through the given relaying option for the
// spec's duration and returns the measured call-average metrics.
func (a *Agent) Call(spec CallSpec) (quality.Metrics, error) {
	out, err := a.CallResilient(spec)
	return out.Metrics, err
}

// CallResilient streams media like Call, and additionally survives the
// active path dying mid-call: when receiver reports stop arriving for
// FailoverAfter, the caller repaths in place to the next resolvable
// option from spec.Failover (the media session, sequence space, and
// measurement state continue — the loss burst during the dead window
// stays in the call's metrics, exactly what the controller should learn).
// The outcome records the option that finished the call and every
// abandoned one.
func (a *Agent) CallResilient(spec CallSpec) (CallOutcome, error) {
	if spec.PPS <= 0 {
		spec.PPS = 50
	}
	if spec.PayloadBytes < 8 {
		spec.PayloadBytes = 160
	}
	if spec.Duration <= 0 {
		spec.Duration = time.Second
	}
	interval := time.Second / time.Duration(spec.PPS)
	if spec.FailoverAfter <= 0 {
		spec.FailoverAfter = 4 * rrEvery * interval
		if spec.FailoverAfter < 250*time.Millisecond {
			spec.FailoverAfter = 250 * time.Millisecond
		}
	}

	out := CallOutcome{Used: spec.Option}
	pending := append([]netsim.Option(nil), spec.Failover...)

	// nextOption pops the first pending candidate that differs from the
	// current option and whose relays resolve in the directory.
	nextOption := func(cur netsim.Option) (netsim.Option, *routeSet, bool) {
		for len(pending) > 0 {
			cand := pending[0]
			pending = pending[1:]
			if cand == cur {
				continue
			}
			if rs, err := a.routeSet(cand, spec.Peer); err == nil {
				return cand, rs, true
			}
			// Unresolvable (relay gone from the directory): dead too.
			out.Failed = append(out.Failed, cand)
		}
		return netsim.Option{}, nil, false
	}

	cur := spec.Option
	rs, err := a.routeSet(cur, spec.Peer)
	if err != nil {
		// The primary option is unusable before any media flows (its
		// relay vanished from the directory); fail over immediately.
		out.Failed = append(out.Failed, cur)
		var ok bool
		if cur, rs, ok = nextOption(cur); !ok {
			out.Used = spec.Option
			return out, err
		}
		a.failovers.Add(1)
		out.Used = cur
	}

	session := a.newSession()
	// Repair setup: a legacy build cannot emit v2 frames at all.
	scheme := spec.Repair
	if a.legacyV1.Load() {
		scheme = rtp.SchemeNone
	}
	// Session token (wire v3): lets relays identify this call's frames by
	// token rather than source address, so the call survives a mid-call
	// NAT rebind (DESIGN.md §17). A legacy or mobility-off agent stays on
	// the v1/v2 wire.
	var tok transport.Token
	if !a.legacyV1.Load() && !a.mobilityOff.Load() {
		tok = a.newToken()
	}
	kaEvery := spec.Keepalive
	if kaEvery == 0 {
		kaEvery = 10 * time.Second
	}
	oc := &outCall{scheme: scheme, sendTo: rs.sendTo}
	if scheme != rtp.SchemeNone {
		oc.rtx = rtp.NewRtxRing(256)
	}
	var fecEnc *rtp.FECEncoder
	if scheme.IsFEC() {
		fecEnc = rtp.NewFECEncoder(scheme.FECGroup())
	}
	a.mu.Lock()
	a.outgoing[session] = oc
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.outgoing, session)
		a.mu.Unlock()
	}()

	var f transport.Frame
	f.Session = session
	f.Kind = transport.KindMedia
	f.Repair = scheme.Byte()
	f.Token = tok
	if err := f.SetRoute(rs.route); err != nil {
		return out, err
	}
	if err := f.SetReply(rs.reply); err != nil {
		return out, err
	}
	// Parity frames share the media frame's addressing but carry the XOR
	// payload under their own kind; relays forward both transparently.
	var pf transport.Frame
	setParityRoute := func(r *routeSet) error {
		pf.Session = session
		pf.Kind = transport.KindFEC
		pf.Repair = scheme.Byte()
		pf.Token = f.Token
		if err := pf.SetRoute(r.route); err != nil {
			return err
		}
		return pf.SetReply(r.reply)
	}
	if fecEnc != nil {
		if err := setParityRoute(rs); err != nil {
			return out, err
		}
	}
	// applyRoute swaps the call onto a new route set: media and parity
	// addressing, plus the retransmit target NACK service uses.
	applyRoute := func(r *routeSet) error {
		if err := f.SetRoute(r.route); err != nil {
			return err
		}
		if err := f.SetReply(r.reply); err != nil {
			return err
		}
		if fecEnc != nil {
			if err := setParityRoute(r); err != nil {
				return err
			}
		}
		oc.mu.Lock()
		oc.sendTo = r.sendTo
		oc.mu.Unlock()
		return nil
	}

	total := int(spec.Duration / interval)
	if total < 2 {
		total = 2
	}
	payload := make([]byte, spec.PayloadBytes)
	ssrc := uint32(session)
	buf := make([]byte, 0, 1500)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	tsStep := uint32(rtp.ClockRate / spec.PPS)
	activated := time.Now() // when the current path started carrying media
	gen := a.rebindGen.Load()
	lastKA := time.Now() // first keepalive only after one period
	if !tok.IsZero() {
		// Prime the relay chain before media flows so every relay on the
		// path binds the token to our source address from packet one.
		a.sendKeepalive(session, tok, rs)
	}
	for i := 0; i < total; i++ {
		pt := uint8(ptSimplex)
		if spec.Duplex {
			pt = ptDuplex
		}
		pkt := rtp.Packet{
			PayloadType: pt,
			Seq:         uint16(i),
			Timestamp:   uint32(i) * tsStep,
			SSRC:        ssrc,
			Payload:     payload,
		}
		putNanos(payload, time.Now().UnixNano())
		f.Payload = pkt.Marshal(buf[:0])
		// The frame wraps the RTP packet; reuse buffers to avoid churn.
		wire := f.Marshal(nil)
		if _, err := a.pc().WriteTo(wire, rs.sendTo); err != nil {
			// A rebind racing this send closes the old conn under us; the
			// packet is one more loss in the handover burst, not a dead
			// call. Any other send error is fatal as before.
			if a.rebindGen.Load() == gen {
				return out, err
			}
		}
		if oc.rtx != nil {
			oc.mu.Lock()
			oc.rtx.Put(pkt.Seq, wire)
			oc.mu.Unlock()
		}
		switch {
		case scheme == rtp.SchemeRED:
			//vialint:ignore errwrap the redundant copy is best-effort by construction
			_, _ = a.pc().WriteTo(wire, rs.sendTo)
		case fecEnc != nil:
			if parity := fecEnc.Add(&pkt); parity != nil {
				pf.Payload = parity.Marshal(nil)
				//vialint:ignore errwrap parity is repair data; losing it degrades to plain forwarding
				_, _ = a.pc().WriteTo(pf.Marshal(nil), rs.sendTo)
			}
		}
		if i < total-1 {
			<-ticker.C
		}

		// Mobility: after a Rebind the reply routes embedded in our frames
		// still name the old address — re-derive them, and announce the new
		// source to the relay chain right away (the keepalive triggers path
		// validation without waiting for the next media packet). The relays
		// keep delivering reverse traffic to the old address until the
		// challenge completes; the token is what keeps the session alive
		// across the gap.
		if g := a.rebindGen.Load(); g != gen {
			gen = g
			if nrs, err := a.routeSet(cur, spec.Peer); err == nil {
				rs = nrs
				if err := applyRoute(rs); err != nil {
					return out, err
				}
			}
			a.sendKeepalive(session, tok, rs)
			lastKA = time.Now()
		}

		// Keepalive cadence: refresh relay session/NAT state on quiet-but-
		// alive paths (media itself also refreshes; this is the floor).
		if !tok.IsZero() && kaEvery > 0 && time.Since(lastKA) >= kaEvery {
			a.sendKeepalive(session, tok, rs)
			lastKA = time.Now()
		}

		// Drain migration: a relay on the path asked us to move (it is
		// retiring, not dead). Repath in place to the first resolvable
		// failover candidate — unlike failover this is not punitive, so the
		// old option is not recorded as failed and the failover counter
		// stays untouched. No candidate? Keep riding the drain grace.
		oc.mu.Lock()
		nudged := oc.drainNudge
		oc.drainNudge = false
		oc.mu.Unlock()
		if nudged {
			if next, nrs, ok := nextOption(cur); ok {
				cur, rs = next, nrs
				out.Used = cur
				if err := applyRoute(rs); err != nil {
					return out, err
				}
				a.sendKeepalive(session, tok, rs)
				lastKA = time.Now()
				activated = time.Now()
				a.drainMigrations.Add(1)
			}
		}

		// Repair liveness: the callee confirms the scheme by echoing it on
		// its receiver reports. A peer that reports without the echo (or
		// with a different scheme) is a pre-repair build — downgrade to
		// plain forwarding immediately rather than failing the call. A peer
		// that stays silent for FailoverAfter gets one downgrade attempt
		// (maybe it dropped our v2/v3 frames wholesale) before path
		// failover; the session token is shed on the same silence signal,
		// since a pre-token build rejects the v3 magic just as a pre-repair
		// build rejects v2. An echoing peer keeps the token — it parsed our
		// frames fine.
		if scheme != rtp.SchemeNone || !tok.IsZero() {
			oc.mu.Lock()
			seenRR := oc.lastRR != nil
			confirmed := oc.echoSeen && oc.echo == scheme
			oc.mu.Unlock()
			silent := !seenRR && time.Since(activated) > spec.FailoverAfter
			if scheme != rtp.SchemeNone && ((seenRR && !confirmed) || silent) {
				scheme = rtp.SchemeNone
				f.Repair = 0
				fecEnc = nil
				oc.mu.Lock()
				oc.scheme = rtp.SchemeNone
				oc.rtx = nil
				oc.mu.Unlock()
				a.repairDowngrades.Add(1)
			}
			if silent && !tok.IsZero() {
				tok = transport.Token{}
				f.Token = tok
				pf.Token = tok
				a.tokenDowngrades.Add(1)
			}
			if silent {
				activated = time.Now() // fresh liveness window for the downgraded wire
			}
		}

		// Liveness: the path is alive while receiver reports keep coming.
		// No report for FailoverAfter after the path activated (several
		// consecutive reports missing, not one late one) means the path
		// is dead — repath in place if a candidate remains.
		oc.mu.Lock()
		lastRRAt := oc.lastRRAt
		oc.mu.Unlock()
		progress := activated
		if lastRRAt.After(progress) {
			progress = lastRRAt
		}
		if time.Since(progress) > spec.FailoverAfter {
			next, nrs, ok := nextOption(cur)
			if !ok {
				continue // nothing left; ride the dead path out
			}
			out.Failed = append(out.Failed, cur)
			cur, rs = next, nrs
			out.Used = cur
			if err := applyRoute(rs); err != nil {
				return out, err
			}
			a.sendKeepalive(session, tok, rs)
			lastKA = time.Now()
			activated = time.Now()
			a.failovers.Add(1)
		}
	}

	// Wait for the last reports to come home. The path may be slow (high
	// one-way delay) or lossy, so poll: finish early once a report covers
	// the final packet, or once reports stop making progress.
	deadline := time.Now().Add(4*interval + 2500*time.Millisecond)
	var lastSeen uint32
	lastProgress := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(40 * time.Millisecond)
		oc.mu.Lock()
		rr := oc.lastRR
		oc.mu.Unlock()
		if rr == nil {
			continue
		}
		if rr.HighestSeq >= uint32(total-1) {
			break
		}
		if rr.HighestSeq != lastSeen {
			lastSeen = rr.HighestSeq
			lastProgress = time.Now()
		} else if time.Since(lastProgress) > 500*time.Millisecond {
			break // tail packets lost; no more reports coming
		}
	}

	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.lastRR == nil {
		return out, ErrNoFeedback
	}
	m := quality.Metrics{
		JitterMs: float64(oc.lastRR.JitterMicros) / 1000,
	}
	expected := uint64(oc.lastRR.HighestSeq) + 1
	if expected > 0 {
		lost := float64(oc.lastRR.CumLost)
		// Packets sent after the highest one the receiver saw are unknown,
		// not lost; rate over the receiver's observed span.
		m.LossRate = lost / float64(expected)
	}
	if fm := oc.flow.Metrics(); fm.RTTMs > 0 {
		m.RTTMs = fm.RTTMs
	}
	if m.LossRate > 1 {
		m.LossRate = 1
	}
	out.Metrics = m
	return out, nil
}

// CallDuplex places a two-way call: the callee streams media back over the
// reverse relay route while the forward stream runs. It returns the forward
// direction's metrics (RTT, loss, jitter as measured by the callee and
// echoed back) and the reverse direction's receive-side metrics (loss and
// jitter measured locally; reverse RTT is measured at the callee).
func (a *Agent) CallDuplex(spec CallSpec) (forward, reverse quality.Metrics, err error) {
	spec.Duplex = true
	// Snapshot which sessions exist so the new reverse stream is findable.
	before := a.incomingSessions()
	forward, err = a.Call(spec)
	if err != nil {
		return forward, reverse, err
	}
	// The reverse stream arrived under the same session id the callee saw;
	// find the new incoming session created during this call.
	after := a.incomingSessions()
	for s := range after {
		if !before[s] {
			a.mu.Lock()
			ic := a.incoming[s]
			a.mu.Unlock()
			if ic != nil {
				ic.mu.Lock()
				reverse = ic.flow.Metrics()
				ic.mu.Unlock()
			}
			break
		}
	}
	return forward, reverse, nil
}

func (a *Agent) incomingSessions() map[uint64]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint64]bool, len(a.incoming))
	for s := range a.incoming {
		out[s] = true
	}
	return out
}

// CallWithFallback places a call like Call, but if a relayed path turns out
// to be completely dead (no receiver reports at all — a crashed relay, not
// mere degradation), it retries once over the direct path. It returns the
// metrics together with the option actually used; the caller should report
// that option to the controller so the dead path's failure is learned.
func (a *Agent) CallWithFallback(spec CallSpec) (quality.Metrics, netsim.Option, error) {
	m, err := a.Call(spec)
	if err == ErrNoFeedback && spec.Option.IsRelayed() {
		direct := spec
		direct.Option = netsim.DirectOption()
		m, err = a.Call(direct)
		return m, direct.Option, err
	}
	return m, spec.Option, err
}

func putNanos(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
}

func getNanos(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(b[i])
	}
	return v
}

func (a *Agent) newSession() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		s := a.rng.Uint64()
		if s == 0 {
			continue
		}
		if _, busy := a.outgoing[s]; !busy {
			return s
		}
	}
}

// routeSet bundles the resolved addressing for one option so a mid-call
// failover can swap the whole path atomically.
type routeSet struct {
	sendTo *net.UDPAddr
	route  []*net.UDPAddr
	reply  []*net.UDPAddr
}

// routeSet resolves an option into a routeSet (see routes).
func (a *Agent) routeSet(opt netsim.Option, peer *net.UDPAddr) (*routeSet, error) {
	sendTo, route, reply, err := a.routes(opt, peer)
	if err != nil {
		return nil, err
	}
	return &routeSet{sendTo: sendTo, route: route, reply: reply}, nil
}

// routes derives the datagram target, forward route, and reply route for an
// option. The reply route is from the callee's perspective: element 0 is
// where the callee sends its datagrams, the rest become the frame route.
func (a *Agent) routes(opt netsim.Option, peer *net.UDPAddr) (sendTo *net.UDPAddr, route, reply []*net.UDPAddr, err error) {
	self := a.Addr()
	a.mu.Lock()
	defer a.mu.Unlock()
	relay := func(id netsim.RelayID) (*net.UDPAddr, error) {
		ra, ok := a.relays[id]
		if !ok {
			return nil, fmt.Errorf("client: relay %d not in directory", id)
		}
		return ra, nil
	}
	switch opt.Kind {
	case netsim.Direct:
		return peer, nil, []*net.UDPAddr{self}, nil
	case netsim.Bounce:
		r, e := relay(opt.R1)
		if e != nil {
			return nil, nil, nil, e
		}
		return r, []*net.UDPAddr{peer}, []*net.UDPAddr{r, self}, nil
	case netsim.Transit:
		r1, e := relay(opt.R1)
		if e != nil {
			return nil, nil, nil, e
		}
		r2, e := relay(opt.R2)
		if e != nil {
			return nil, nil, nil, e
		}
		return r1, []*net.UDPAddr{r2, peer}, []*net.UDPAddr{r2, r1, self}, nil
	default:
		return nil, nil, nil, fmt.Errorf("client: unknown option kind %v", opt.Kind)
	}
}

// readLoop dispatches incoming frames until its conn closes. Each Rebind
// starts a fresh loop on the new conn; closing the old conn retires the
// old loop, so exactly one loop is live per transport generation.
func (a *Agent) readLoop(conn net.PacketConn) {
	defer a.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		var f transport.Frame
		if err := f.Unmarshal(buf[:n]); err != nil {
			continue
		}
		if f.NextHop() != nil {
			continue // not at its final destination; misdelivered
		}
		if a.legacyV1.Load() && (f.Repair != 0 || !f.Token.IsZero()) {
			continue // pre-repair build: the v2/v3 header reads as garbage
		}
		switch f.Kind {
		case transport.KindMedia:
			a.handleMedia(&f)
		case transport.KindReport:
			a.handleReport(&f)
		case transport.KindNack:
			a.handleNack(&f)
		case transport.KindFEC:
			a.handleFEC(&f)
		case transport.KindPathChallenge:
			a.handlePathChallenge(&f, src)
		case transport.KindDrain:
			a.handleDrain(&f)
		}
	}
}

// handleMedia is the callee side: measure, and periodically report back.
func (a *Agent) handleMedia(f *transport.Frame) {
	var pkt rtp.Packet
	if err := pkt.Unmarshal(f.Payload); err != nil || len(pkt.Payload) < 8 {
		return
	}
	now := time.Now().UnixNano()

	a.mu.Lock()
	ic := a.incoming[f.Session]
	if ic == nil {
		ic = &inCall{}
		// A token-bearing caller gets a token-bearing callee: the callee
		// mints its own token (each endpoint's relay-adjacent hop tracks
		// its own mobility), fixed for the life of the call.
		if !f.Token.IsZero() && !a.mobilityOff.Load() {
			ic.token = a.newTokenLocked()
		}
		a.incoming[f.Session] = ic
		// Bound state growth from abandoned sessions.
		if len(a.incoming) > 4096 {
			for k := range a.incoming {
				delete(a.incoming, k)
				break
			}
		}
	}
	a.mu.Unlock()

	ic.mu.Lock()
	if ic.scheme == rtp.SchemeNone && f.Repair != 0 {
		ic.setupRepairLocked(rtp.SchemeFromByte(f.Repair))
	}
	arrival := ic.flow.ObservePacket(&pkt, now)
	if arrival == rtp.ArrivalDuplicate {
		// RED's second copy (or a retransmit racing its original): already
		// delivered, so it must not advance packet counts or trigger RRs.
		if ic.scheme == rtp.SchemeRED {
			ic.mu.Unlock()
			a.redDuplicates.Add(1)
			return
		}
		ic.mu.Unlock()
		return
	}
	if ic.nack != nil {
		ic.gap.Observe(pkt.Seq, func(miss uint16) { ic.nack.Missing(miss, now) })
		if arrival == rtp.ArrivalReordered {
			ic.nack.Recovered(pkt.Seq) // late original or honored retransmit
		}
	}
	if ic.fecDec != nil {
		if rec, ok := ic.fecDec.AddMedia(&pkt); ok {
			ic.flow.ObserveRecovered(rec.Seq)
			a.fecRecovered.Add(1)
		}
	}
	ic.pkts++
	ic.lastSend = getNanos(pkt.Payload)
	ic.lastArrNs = now
	if reply := f.ReplyAddrs(); len(reply) > 0 {
		ic.reply = reply
	}
	// A duplex caller asks for a return media stream; start it once.
	startStream := pkt.PayloadType == ptDuplex && !ic.streaming && len(ic.reply) > 0
	if startStream {
		ic.streaming = true
	}
	sendRR := ic.pkts%rrEvery == 0
	var rr rtp.ReceiverReport
	var replyRoute []*net.UDPAddr
	echoScheme := rtp.SchemeNone
	if sendRR && len(ic.reply) > 0 {
		rr = rtp.ReceiverReport{
			SSRC:          pkt.SSRC,
			CumLost:       uint32(ic.flow.Loss.Lost()),
			HighestSeq:    ic.flow.Loss.HighestExt(),
			JitterMicros:  ic.flow.Jitter.Micros(),
			LastSendNanos: ic.lastSend,
			DelayNanos:    time.Now().UnixNano() - ic.lastArrNs,
		}
		replyRoute = ic.reply
		echoScheme = ic.scheme
	}
	// NACK pass: collect overdue gaps for (re)request while the lock is
	// held, send after release. Runs on every packet, not just RR ticks —
	// retransmit deadlines are tighter than the report interval.
	var nackSeqs []uint16
	if ic.nack != nil && len(ic.reply) > 0 {
		if ic.nackBuf == nil {
			ic.nackBuf = make([]uint16, 0, rtp.MaxNACKSeqs)
		}
		due, expired := ic.nack.Due(now, ic.nackBuf[:0])
		ic.nackBuf = due[:0]
		if expired > 0 {
			a.rtxDeadlineMisses.Add(int64(expired))
		}
		if len(due) > 0 {
			nackSeqs = append([]uint16(nil), due...)
			if replyRoute == nil {
				replyRoute = ic.reply
			}
		}
	}
	ic.mu.Unlock()

	if startStream {
		a.wg.Add(1)
		go a.streamBack(f.Session, ic)
	}
	if sendRR && replyRoute != nil {
		var out transport.Frame
		out.Session = f.Session
		out.Kind = transport.KindReport
		out.Token = ic.token
		if err := out.SetRoute(replyRoute[1:]); err != nil {
			return
		}
		out.Payload = rr.Marshal(nil)
		if echoScheme != rtp.SchemeNone {
			// Confirm the negotiated scheme: one echo byte after the fixed
			// report, ignored by pre-repair parsers.
			out.Payload = append(out.Payload, echoScheme.Byte())
		}
		//vialint:ignore errwrap best-effort receiver report: a lost RR is one missing sample, repaired by the next interval
		_, _ = a.pc().WriteTo(out.Marshal(nil), replyRoute[0])
	}
	if len(nackSeqs) > 0 {
		a.sendNack(f.Session, pkt.SSRC, nackSeqs, replyRoute, ic.token)
	}
}

// streamBack is the callee side of a duplex call: it streams media toward
// the caller along the reverse route until the forward stream goes quiet.
func (a *Agent) streamBack(session uint64, ic *inCall) {
	defer a.wg.Done()
	const pps = 50
	interval := time.Second / pps
	payload := make([]byte, 160)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	ic.mu.Lock()
	reply := append([]*net.UDPAddr(nil), ic.reply...)
	ic.mu.Unlock()
	if len(reply) == 0 {
		return
	}
	sendTo := reply[0]
	route := reply[1:]
	// The caller reaches us back by reversing the relay portion of our
	// reply route and finishing at our own address.
	back := make([]*net.UDPAddr, 0, len(reply))
	for i := len(reply) - 2; i >= 0; i-- {
		back = append(back, reply[i])
	}
	back = append(back, a.Addr())

	var f transport.Frame
	f.Session = session
	f.Kind = transport.KindMedia
	f.Token = ic.token
	if err := f.SetRoute(route); err != nil {
		return
	}
	if err := f.SetReply(back); err != nil {
		return
	}

	start := time.Now()
	gen := a.rebindGen.Load()
	for i := uint16(0); ; i++ {
		// Stop when the forward stream has gone quiet or after a cap.
		ic.mu.Lock()
		last := ic.lastArrNs
		ic.mu.Unlock()
		if time.Now().UnixNano()-last > int64(600*time.Millisecond) ||
			time.Since(start) > 60*time.Second {
			return
		}
		// After a rebind only the final hop of our reply route — our own
		// address — is stale; the relay chain still stands.
		if g := a.rebindGen.Load(); g != gen {
			gen = g
			back[len(back)-1] = a.Addr()
			if err := f.SetReply(back); err != nil {
				return
			}
		}
		pkt := rtp.Packet{
			PayloadType: ptSimplex,
			Seq:         i,
			Timestamp:   uint32(i) * (rtp.ClockRate / pps),
			SSRC:        uint32(session >> 32),
			Payload:     payload,
		}
		putNanos(payload, time.Now().UnixNano())
		f.Payload = pkt.Marshal(nil)
		if _, err := a.pc().WriteTo(f.Marshal(nil), sendTo); err != nil {
			// Tolerate the send that raced a rebind; the next loop
			// iteration picks up the new conn.
			if a.rebindGen.Load() == gen {
				return
			}
		}
		<-ticker.C
	}
}

// handleReport is the caller side: fold the report in, sample RTT.
func (a *Agent) handleReport(f *transport.Frame) {
	var rr rtp.ReceiverReport
	if err := rr.Unmarshal(f.Payload); err != nil {
		return
	}
	a.mu.Lock()
	oc := a.outgoing[f.Session]
	a.mu.Unlock()
	if oc == nil {
		return
	}
	rttNanos := time.Now().UnixNano() - rr.LastSendNanos - rr.DelayNanos
	oc.mu.Lock()
	oc.flow.ObserveRTT(rttNanos)
	cp := rr
	oc.lastRR = &cp
	oc.lastRRAt = time.Now()
	if len(f.Payload) > rtp.RRLen {
		// Trailing byte past the fixed report is the callee's scheme echo.
		oc.echoSeen = true
		oc.echo = rtp.SchemeFromByte(f.Payload[rtp.RRLen])
	}
	oc.mu.Unlock()
}
