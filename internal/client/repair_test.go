package client

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/rtp"
	"repro/internal/wan"
)

// repairCall places one call with the given scheme over the caller's
// shaped link and returns the outcome.
func repairCall(t *testing.T, caller *Agent, callee *Agent, scheme rtp.Scheme, dur time.Duration) CallOutcome {
	t.Helper()
	out, err := caller.CallResilient(CallSpec{
		Peer:     callee.Addr(),
		Option:   netsim.DirectOption(),
		Duration: dur,
		PPS:      100,
		Repair:   scheme,
	})
	if err != nil {
		t.Fatalf("repair call (%v): %v", scheme, err)
	}
	return out
}

func TestNACKRepairReducesResidualLoss(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 101)
	callee := newAgent(t, 2, 102)
	// Low RTT, random loss: NACK's home turf — retransmits land well
	// inside the playout deadline.
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 0.15})

	base := repairCall(t, caller, callee, rtp.SchemeNone, 900*time.Millisecond)
	rep := repairCall(t, caller, callee, rtp.SchemeNACK, 900*time.Millisecond)

	if caller.NacksHonored() == 0 || callee.NacksSent() == 0 {
		t.Fatalf("nack machinery idle: sent=%d honored=%d",
			callee.NacksSent(), caller.NacksHonored())
	}
	if rep.Metrics.LossRate >= base.Metrics.LossRate {
		t.Errorf("NACK residual loss %.3f, no-repair %.3f — repair did not help",
			rep.Metrics.LossRate, base.Metrics.LossRate)
	}
	if caller.RepairDowngrades() != 0 {
		t.Errorf("unexpected downgrade on a repair-capable peer")
	}
}

func TestREDRepairAbsorbsDuplicates(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 103)
	callee := newAgent(t, 2, 104)
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 0.2})

	base := repairCall(t, caller, callee, rtp.SchemeNone, 800*time.Millisecond)
	rep := repairCall(t, caller, callee, rtp.SchemeRED, 800*time.Millisecond)

	if callee.REDDuplicates() == 0 {
		t.Error("no RED duplicates absorbed — second copies not flowing")
	}
	// Independent 20% loss: duplication should collapse residual toward 4%.
	if rep.Metrics.LossRate >= base.Metrics.LossRate {
		t.Errorf("RED residual loss %.3f, no-repair %.3f", rep.Metrics.LossRate, base.Metrics.LossRate)
	}
}

func TestFECRepairRecoversSingleLosses(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 105)
	callee := newAgent(t, 2, 106)
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 0.1})

	rep := repairCall(t, caller, callee, rtp.SchemeFEC(4), 900*time.Millisecond)

	if callee.FECRecovered() == 0 {
		t.Error("no FEC recoveries — parity frames not decoding")
	}
	// 10% independent loss in groups of 4: most groups lose at most one
	// packet, so residual should land well under the raw rate.
	if rep.Metrics.LossRate > 0.08 {
		t.Errorf("FEC residual loss %.3f, want < raw 0.10 with margin", rep.Metrics.LossRate)
	}
	if caller.RepairDowngrades() != 0 {
		t.Errorf("unexpected downgrade on a repair-capable peer")
	}
}

// TestLegacyPeerDowngradesNotFails is the graceful-degradation contract:
// a callee that predates repair drops every v2 frame, so the caller must
// notice the silence, downgrade to plain v1 forwarding, and complete the
// call — never fail it.
func TestLegacyPeerDowngradesNotFails(t *testing.T) {
	caller := newAgent(t, 1, 107)
	callee := newAgent(t, 2, 108)
	callee.SetLegacyV1(true)

	out, err := caller.CallResilient(CallSpec{
		Peer:          callee.Addr(),
		Option:        netsim.DirectOption(),
		Duration:      1200 * time.Millisecond,
		PPS:           100,
		Repair:        rtp.SchemeNACK,
		FailoverAfter: 200 * time.Millisecond, // downgrade quickly
	})
	if err != nil {
		t.Fatalf("call against legacy peer failed instead of downgrading: %v", err)
	}
	if caller.RepairDowngrades() == 0 {
		t.Error("caller never recorded the downgrade")
	}
	if len(out.Failed) != 0 {
		t.Errorf("downgrade escalated to path failover: failed=%v", out.Failed)
	}
	// After the downgrade the media is plain v1 and the call measures.
	if out.Metrics.LossRate > 0.5 {
		t.Errorf("post-downgrade loss %.3f — media never flowed plain", out.Metrics.LossRate)
	}
}

// A legacy *caller* must also interoperate: it silently sends plain v1
// even when the spec asks for repair.
func TestLegacyCallerSendsPlain(t *testing.T) {
	caller := newAgent(t, 1, 109)
	callee := newAgent(t, 2, 110)
	caller.SetLegacyV1(true)

	out := repairCall(t, caller, callee, rtp.SchemeFEC(4), 500*time.Millisecond)
	if out.Metrics.LossRate > 0.02 {
		t.Errorf("legacy caller loss %.3f on loopback", out.Metrics.LossRate)
	}
	if callee.FECRecovered() != 0 {
		t.Error("legacy caller somehow shipped parity")
	}
}

func TestRtxDeadlineMissesCounted(t *testing.T) {
	caller, sh := newShapedAgent(t, 1, 111)
	callee := newAgent(t, 2, 112)
	// Heavy loss: many gaps never repair inside the retry cap/deadline.
	sh.SetLink(callee.Addr().String(), wan.LinkParams{LossRate: 0.5})

	repairCall(t, caller, callee, rtp.SchemeNACK, 1200*time.Millisecond)
	if callee.RtxDeadlineMisses() == 0 {
		t.Error("50% loss produced no expired NACK entries")
	}
}

// fakeRepairCP is a scriptable RepairControlPlane for Selector tests.
type fakeRepairCP struct {
	fakeControl // embeds plain Choose/Report and the fail toggle
	scheme      string
	gotDur      float64
}

func (f *fakeRepairCP) ChooseWithRepair(src, dst int32, cands []netsim.Option, schemes []string) (netsim.Option, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return netsim.DirectOption(), "", errCtrlDown
	}
	return cands[0], f.scheme, nil
}

func (f *fakeRepairCP) ReportRepair(src, dst int32, opt netsim.Option, scheme string, durSec float64, m quality.Metrics) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errCtrlDown
	}
	f.gotDur = durSec
	return nil
}

func TestSelectorChooseWithRepairPassesScheme(t *testing.T) {
	cp := &fakeRepairCP{scheme: "nack"}
	s := NewSelector(cp)
	cands := []netsim.Option{netsim.BounceOption(1)}
	opt, scheme, fresh := s.ChooseWithRepair(1, 2, cands, []string{"none", "nack"})
	if !fresh || scheme != "nack" || opt != cands[0] {
		t.Errorf("got (%v, %q, fresh=%v)", opt, scheme, fresh)
	}
	s.ReportRepair(1, 2, opt, scheme, 42, quality.Metrics{RTTMs: 10})
	if cp.gotDur != 42 {
		t.Errorf("duration not forwarded: %v", cp.gotDur)
	}
}

func TestSelectorChooseWithRepairDegradesScheme(t *testing.T) {
	cp := &fakeRepairCP{scheme: "red"}
	s := NewSelector(cp)
	cands := []netsim.Option{netsim.BounceOption(1)}
	if _, _, fresh := s.ChooseWithRepair(1, 2, cands, []string{"red"}); !fresh {
		t.Fatal("warmup choose not fresh")
	}
	cp.setFail(true)
	opt, scheme, fresh := s.ChooseWithRepair(1, 2, cands, []string{"red"})
	if fresh || scheme != "" {
		t.Errorf("degraded choose returned (%q, fresh=%v), want no scheme", scheme, fresh)
	}
	if opt != cands[0] {
		t.Errorf("degraded choose lost the cached path: %v", opt)
	}
	// Reports fall back to counting, never error.
	s.ReportRepair(1, 2, opt, "red", 10, quality.Metrics{})
	if s.LostReports() != 1 {
		t.Errorf("lost reports = %d, want 1", s.LostReports())
	}
}

// A plain ControlPlane (no repair methods) still works through the
// repair-aware entry points.
func TestSelectorChooseWithRepairPlainPlane(t *testing.T) {
	cp := &fakeControl{answer: netsim.BounceOption(2)}
	s := NewSelector(cp)
	opt, scheme, fresh := s.ChooseWithRepair(1, 2, []netsim.Option{netsim.BounceOption(2)}, []string{"nack"})
	if !fresh || scheme != "" {
		t.Errorf("plain plane gave (%q, fresh=%v), want empty scheme", scheme, fresh)
	}
	s.ReportRepair(1, 2, opt, "", 5, quality.Metrics{})
	if s.LostReports() != 0 {
		t.Errorf("plain report lost: %d", s.LostReports())
	}
}
