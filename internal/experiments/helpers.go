package experiments

import (
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
)

// filteredStrategy restricts the candidate set a strategy may choose from
// (e.g. bounce-only for the §5.2 transit-value comparison). The ~2% of
// seeded (connectivity-relayed) calls bypass the strategy and may still use
// filtered-out options; that bias is shared by every variant.
type filteredStrategy struct {
	inner  core.Strategy
	filter func([]netsim.Option) []netsim.Option
}

func (f *filteredStrategy) Name() string { return f.inner.Name() + "+filtered" }

func (f *filteredStrategy) Choose(c core.Call, cands []netsim.Option) netsim.Option {
	return f.inner.Choose(c, f.filter(cands))
}

func (f *filteredStrategy) Observe(c core.Call, o netsim.Option, m quality.Metrics) {
	f.inner.Observe(c, o, m)
}

// runWithFilter runs Via restricted to a filtered candidate set.
func (e *Env) runWithFilter(key string, m quality.Metric, filter func([]netsim.Option) []netsim.Option) *sim.Result {
	return e.run(key, func() core.Strategy {
		return &filteredStrategy{
			inner:  core.NewVia(core.DefaultViaConfig(m), e.World),
			filter: filter,
		}
	})
}

// runExcluding runs Via on a simulator whose candidate sets exclude the
// given relays (Fig. 17c).
func (e *Env) runExcluding(key string, m quality.Metric, excluded map[netsim.RelayID]bool) *sim.Result {
	return e.runCustom(key, func() *sim.Result {
		cfg := e.Runner.Cfg
		cfg.ExcludeRelays = excluded
		runner := sim.NewRunner(e.World, cfg)
		runner.Prepare(e.Trace)
		return runner.RunOne(core.NewVia(core.DefaultViaConfig(m), e.World), e.Trace)
	})
}

// historyFromSurvey builds a history bucket with k samples of every
// relaying option for every pair, drawn from the world at the given window
// — the dense-ground-truth regime used by tests.
func historyFromSurvey(e *Env, pairs []history.PairKey, window, k int) *history.Store {
	return historyFromSparseSurvey(e, pairs, window, k, 1.0)
}

// historyFromSparseSurvey is historyFromSurvey with per-option coverage
// probability: only that fraction of each pair's options get samples, the
// rest are "holes" that tomography must stitch — the operating regime of
// the §5.3 prediction-accuracy analysis.
func historyFromSparseSurvey(e *Env, pairs []history.PairKey, window, k int, coverage float64) *history.Store {
	h := history.NewStore()
	rng := stats.NewRNG(e.Seed).Split("survey")
	t := float64(window)*netsim.HoursPerWindow + 12
	for _, pk := range pairs {
		for _, opt := range e.World.Options(pk.A, pk.B) {
			if coverage < 1 && rng.Float64() >= coverage {
				continue
			}
			for i := 0; i < k; i++ {
				m := e.World.SampleCall(pk.A, pk.B, opt, t, rng)
				h.Add(pk.A, pk.B, opt, window, m)
			}
		}
	}
	return h
}
