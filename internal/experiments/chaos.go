package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/rtp"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// ChaosConfig sizes the fault-injection benchmark: a loopback deployment
// placing controller-routed calls while a seeded fault plan kills a relay
// mid-run, flaps the controller, and revives the relay near the end.
type ChaosConfig struct {
	Seed           uint64
	NumClients     int
	NumRelays      int
	Calls          int
	CallDuration   time.Duration
	PPS            int
	RelayTTL       time.Duration
	HeartbeatEvery time.Duration
	// Metrics optionally supplies the registry the whole deployment
	// (strategy, controller, relays, clients, fault scheduler) publishes
	// into, so the caller can snapshot it after the run. Nil: a private
	// registry is created and discarded with the testbed.
	Metrics *obs.Registry
	// WALDir non-empty runs the controller durably (WAL + snapshots in
	// this directory) and extends the fault plan with an abrupt crash and
	// a WAL-recovery restart of the controller mid-run.
	WALDir string
	// Repair places every call with this loss-repair scheme ("nack",
	// "red", "fec-K"; "" or "none" = plain forwarding) and layers
	// Gilbert-Elliott burst loss on every media segment so the repair
	// plane has losses to mend. The report gains the repair counters.
	Repair string
}

// DefaultChaosConfig is a one-minute-class chaos run.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:           17,
		NumClients:     6,
		NumRelays:      5,
		Calls:          40,
		CallDuration:   500 * time.Millisecond,
		PPS:            100,
		RelayTTL:       500 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
	}
}

// QuickChaosConfig is smoke-test scale.
func QuickChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:           17,
		NumClients:     3,
		NumRelays:      3,
		Calls:          10,
		CallDuration:   300 * time.Millisecond,
		PPS:            100,
		RelayTTL:       400 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
	}
}

// Chaos runs the resilience benchmark: every call must complete (possibly
// degraded to the direct path) while the fault plan runs, and the report
// shows how often the system leaned on each resilience mechanism —
// mid-call failover, cached decisions, retries, heartbeat-driven
// directory expiry.
//
//vialint:ignore dettaint live-by-design: Chaos drives a real loopback deployment (testbed.Start) whose controller legitimately runs on the wall clock
func Chaos(cfg ChaosConfig) ([]*stats.Table, error) {
	scheme, err := rtp.ParseScheme(cfg.Repair)
	if err != nil {
		return nil, err
	}
	wcfg := netsim.DefaultConfig(cfg.Seed)
	wcfg.NumASes = 60
	wcfg.NumRelays = cfg.NumRelays
	wcfg.BounceCandidates = 3
	wcfg.TransitFan = 2
	w := netsim.New(wcfg)

	var clients []netsim.ASID
	for i := 0; len(clients) < cfg.NumClients && i < w.NumASes(); i += w.NumASes() / cfg.NumClients {
		clients = append(clients, netsim.ASID(i))
	}
	var relays []netsim.RelayID
	for i := 0; i < cfg.NumRelays; i++ {
		relays = append(relays, netsim.RelayID(i))
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	viaCfg := core.DefaultViaConfig(quality.RTT)
	viaCfg.Seed = cfg.Seed
	viaCfg.Metrics = reg
	tbCfg := testbed.Config{
		Seed:       cfg.Seed,
		World:      w,
		ClientASes: clients,
		RelayIDs:   relays,
		Strategy:   core.NewVia(viaCfg, nil),
		TimeScale:  7200,
		RelayTTL:   cfg.RelayTTL,
		Metrics:    reg,
	}
	if cfg.WALDir != "" {
		tbCfg.WALDir = cfg.WALDir
		// Restart must rebuild the strategy from scratch and recover its
		// state purely from the WAL — a fresh instance per boot, exactly
		// like a real process restart.
		tbCfg.NewStrategy = func() core.Strategy { return core.NewVia(viaCfg, nil) }
	}
	tb, err := testbed.Start(tbCfg)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	tb.StartHeartbeats(cfg.HeartbeatEvery)
	sel := client.NewSelector(tb.Ctrl)
	sel.RegisterMetrics(reg, "chaos")

	// The fault plan, scheduled against the run's rough wall-clock length:
	// kill a relay a quarter in, flap the controller twice around the
	// middle, revive the relay at three quarters.
	victim := relays[0]
	est := time.Duration(cfg.Calls) * (cfg.CallDuration + 200*time.Millisecond)
	plan := faults.NewPlan(cfg.Seed).
		KillRelayAt(est/4, victim).
		FlapController(est/2, est/8, est/16, 2).
		ReviveRelayAt(3*est/4, victim)
	if cfg.WALDir != "" {
		// Durable mode adds the harsher controller lifecycle: an abrupt
		// crash (connection resets, no drain) followed by a cold restart
		// that must recover every decision from the WAL.
		plan.CrashControllerAt(3 * est / 8).RestartControllerAt(5 * est / 8)
	}
	if scheme != rtp.SchemeNone {
		// Calls pair adjacent clients (caller i, callee i+1), so impairing
		// every adjacent media segment puts burst loss on every call.
		for i, as := range clients {
			plan.BurstLossAt(0, faults.ClientEnd(as),
				faults.ClientEnd(clients[(i+1)%len(clients)]), 0.15, 3)
		}
	}
	sched := faults.NewScheduler(plan, tb)
	sched.SetMetrics(reg)
	sched.Start()

	// Candidate sets come from the directory; a fetch that fails under
	// partition reuses the previous set (the client's cached view).
	cands := []netsim.Option{netsim.DirectOption()}
	refresh := func() {
		dir, derr := tb.Ctrl.Relays()
		if derr != nil {
			return
		}
		// Stable candidate order: the selector's tie-breaks must not
		// depend on directory-map iteration order.
		ids := make([]netsim.RelayID, 0, len(dir))
		for id := range dir {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		next := []netsim.Option{netsim.DirectOption()}
		for _, id := range ids {
			next = append(next, netsim.BounceOption(id))
		}
		cands = next
	}
	refresh()

	completed, failed := 0, 0
	for i := 0; i < cfg.Calls; i++ {
		if i%5 == 0 {
			refresh()
		}
		caller := tb.Clients[i%len(tb.Clients)]
		callee := tb.Clients[(i+1)%len(tb.Clients)]
		src, dst := int32(caller.AS), int32(callee.AS)
		opt, _ := sel.Choose(src, dst, cands)
		out, cerr := caller.Agent.CallResilient(client.CallSpec{
			Peer:     callee.Agent.Addr(),
			Option:   opt,
			Failover: []netsim.Option{netsim.DirectOption()},
			Duration: cfg.CallDuration,
			PPS:      cfg.PPS,
			Repair:   scheme,
		})
		for _, dead := range out.Failed {
			sel.ReportFailure(src, dst, dead)
		}
		if cerr != nil {
			failed++
			continue
		}
		completed++
		sel.Report(src, dst, out.Used, out.Metrics)
	}
	sched.Stop()
	// Deterministic cleanup for the final accounting, whatever the plan
	// got through before the run ended.
	tb.SetControlPartitioned(false)
	if tb.ControllerDown() {
		if rerr := tb.RestartController(); rerr != nil {
			return nil, rerr
		}
	}
	if !tb.RelayAlive(victim) {
		if rerr := tb.ReviveRelay(victim); rerr != nil {
			return nil, rerr
		}
	}

	var failovers int64
	for _, c := range tb.Clients {
		failovers += c.Agent.Failovers()
	}
	st, err := tb.Ctrl.Stats()
	if err != nil {
		return nil, err
	}
	h, err := tb.Ctrl.Health()
	if err != nil {
		return nil, err
	}

	scenario := "relay death + controller flap"
	if cfg.WALDir != "" {
		scenario = "relay death + controller flap + crash/WAL-restart"
	}
	if scheme != rtp.SchemeNone {
		scenario += fmt.Sprintf(" + burst loss (repair=%v)", scheme)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Chaos: %d calls under %s (seed %d)", cfg.Calls, scenario, cfg.Seed),
		Headers: []string{"metric", "value", "note"},
	}
	t.AddRow("calls completed", completed, fmt.Sprintf("of %d placed", cfg.Calls))
	t.AddRow("calls failed", failed, "no path at all")
	t.AddRow("mid-call failovers", failovers, "repaths without dropping the call")
	t.AddRow("stale decisions", sel.Stale(), "served from cache/direct, controller down")
	t.AddRow("lost reports", sel.LostReports(), "absorbed, not fatal")
	t.AddRow("control retries", tb.Ctrl.Retries(), "extra attempts beyond the first")
	t.AddRow("fault events fired", sched.Fired(), fmt.Sprintf("of %d planned", len(plan.Events)))
	t.AddRow("controller panics", st.Panics, "must be 0")
	t.AddRow("live relays at end", h.Relays, fmt.Sprintf("of %d deployed", cfg.NumRelays))
	if cfg.WALDir != "" {
		t.AddRow("wal lsn applied", int64(tb.CtrlSrv.AppliedLSN()), "decision records durable and applied")
		t.AddRow("controller term", int64(tb.CtrlSrv.Term()), ">= 2: leadership re-acquired after crash")
	}
	snap := reg.Snapshot()
	t.AddRow("fault injections (metrics)", int64(sumPrefix(snap, "via_faults_injected_total")),
		"via_faults_injected_total across kinds")
	t.AddRow("dead-path reports (metrics)", int64(sumPrefix(snap, "via_client_dead_path_reports")),
		"clients flagging broken relays")
	t.AddRow("strategy decisions (metrics)", int64(sumPrefix(snap, "via_decision_total")),
		"via_decision_total across outcomes")
	if scheme != rtp.SchemeNone {
		t.AddRow("nacks sent (metrics)", int64(sumPrefix(snap, "via_client_nacks_sent")),
			"repair requests from callees")
		t.AddRow("nacks honored (metrics)", int64(sumPrefix(snap, "via_client_nacks_honored")),
			"retransmits served from the rtx ring")
		t.AddRow("fec recoveries (metrics)", int64(sumPrefix(snap, "via_client_fec_recoveries")),
			"packets rebuilt from parity")
		t.AddRow("red duplicates (metrics)", int64(sumPrefix(snap, "via_client_red_duplicates")),
			"duplicates absorbed at the receiver")
		t.AddRow("rtx deadline misses (metrics)", int64(sumPrefix(snap, "via_client_rtx_deadline_misses")),
			"gaps abandoned past retry cap/playout")
		t.AddRow("repair downgrades (metrics)", int64(sumPrefix(snap, "via_client_repair_downgrades")),
			"fell back to plain forwarding mid-call")
	}
	return []*stats.Table{t}, nil
}

// sumPrefix totals every series in a snapshot whose name is exactly base or
// base plus a label set ("base{...}").
func sumPrefix(snap map[string]float64, base string) float64 {
	var sum float64
	for name, v := range snap {
		if name == base || strings.HasPrefix(name, base+"{") {
			sum += v
		}
	}
	return sum
}
