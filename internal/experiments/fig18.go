package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Fig18Config sizes the real-networking deployment experiment.
type Fig18Config struct {
	Seed         uint64
	NumClients   int // client agents (the paper deployed 14 machines)
	NumRelays    int
	NumPairs     int // caller-callee pairs (the paper used 18)
	SurveyRounds int // back-to-back calls per option (the paper: 4-5)
	EvalCalls    int
	CallDuration time.Duration
	PPS          int
	Parallelism  int
	// Metrics optionally supplies the deployment-wide registry (see
	// ChaosConfig.Metrics). Nil: a private one is created and discarded.
	Metrics *obs.Registry
}

// DefaultFig18Config mirrors §5.5 at a runnable scale.
func DefaultFig18Config() Fig18Config {
	return Fig18Config{
		Seed:         11,
		NumClients:   10,
		NumRelays:    8,
		NumPairs:     18,
		SurveyRounds: 4,
		EvalCalls:    12,
		CallDuration: 400 * time.Millisecond,
		PPS:          100,
		Parallelism:  6,
	}
}

// QuickFig18Config is a fast smoke-scale configuration for tests and CI.
func QuickFig18Config() Fig18Config {
	return Fig18Config{
		Seed:         11,
		NumClients:   4,
		NumRelays:    5,
		NumPairs:     3,
		SurveyRounds: 2,
		EvalCalls:    4,
		CallDuration: 250 * time.Millisecond,
		PPS:          100,
		Parallelism:  3,
	}
}

// Fig18 runs the §5.5 controlled deployment on loopback: real controller,
// relays, clients and media, links shaped from the world model. It reports
// the CDF of Via's per-call suboptimality vs the measured-best option
// (paper: within 20% of the oracle for ~70% of calls, exact best picked for
// no more than ~30%).
//
//vialint:ignore dettaint live-by-design: Fig18 drives a real loopback deployment (testbed.Start) whose controller legitimately runs on the wall clock
func Fig18(cfg Fig18Config) ([]*stats.Table, error) {
	wcfg := netsim.DefaultConfig(cfg.Seed)
	wcfg.NumASes = 60
	wcfg.NumRelays = cfg.NumRelays
	wcfg.BounceCandidates = 3
	wcfg.TransitFan = 2
	w := netsim.New(wcfg)

	// Spread clients across distinct countries, as the deployment did.
	var clients []netsim.ASID
	seen := map[string]bool{}
	for i := 0; i < w.NumASes() && len(clients) < cfg.NumClients; i++ {
		id := netsim.ASID(i)
		c := w.CountryOf(id)
		if !seen[c] {
			seen[c] = true
			clients = append(clients, id)
		}
	}
	var relays []netsim.RelayID
	for i := 0; i < cfg.NumRelays; i++ {
		relays = append(relays, netsim.RelayID(i))
	}

	viaCfg := core.DefaultViaConfig(quality.RTT)
	viaCfg.Seed = cfg.Seed
	viaCfg.Metrics = cfg.Metrics
	tb, err := testbed.Start(testbed.Config{
		Seed:       cfg.Seed,
		World:      w,
		ClientASes: clients,
		RelayIDs:   relays,
		Strategy:   core.NewVia(viaCfg, nil),
		TimeScale:  7200,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	var pairs [][2]netsim.ASID
	for i := 0; len(pairs) < cfg.NumPairs; i++ {
		a := clients[i%len(clients)]
		b := clients[(i+1+i/len(clients))%len(clients)]
		if a == b {
			continue
		}
		pairs = append(pairs, [2]netsim.ASID{a, b})
		if i > cfg.NumPairs*len(clients) {
			break
		}
	}

	res, err := tb.RunDeployment(testbed.DeploymentConfig{
		Pairs:        pairs,
		SurveyRounds: cfg.SurveyRounds,
		EvalCalls:    cfg.EvalCalls,
		CallDuration: cfg.CallDuration,
		PPS:          cfg.PPS,
		Parallelism:  cfg.Parallelism,
		MaxOptions:   20,
	}, quality.RTT)
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 18: deployment suboptimality CDF (%d pairs, %d calls)", len(res.Pairs), res.TotalCalls),
		Headers: []string{"statistic", "value", "paper"},
	}
	cdf := stats.NewCDF(res.Suboptimality)
	if cdf.N() == 0 {
		t.AddRow("no eval calls", "", "")
		return []*stats.Table{t}, nil
	}
	t.AddRow("eval calls", cdf.N(), "~1000 total calls")
	t.AddRow("suboptimality = 0 (best picked)", fmtPct(res.BestPickedFrac), "<=30%")
	t.AddRow("within 20% of oracle", fmtPct(1-cdf.FractionAbove(0.20)), "~70%")
	t.AddRow("within 50% of oracle", fmtPct(1-cdf.FractionAbove(0.50)), "")
	t.AddRow("p50 suboptimality", cdf.Quantile(0.5), "")
	t.AddRow("p90 suboptimality", cdf.Quantile(0.9), "")
	return []*stats.Table{t}, nil
}
