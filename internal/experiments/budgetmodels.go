package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

// BudgetModels evaluates the alternative budget formulations §4.6 names but
// does not evaluate: a talk-time (bandwidth-proxy) budget instead of a
// call-count budget, and per-relay load caps.
func BudgetModels(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.AtLeastOneBadRate()

	t := &stats.Table{
		Title:   "§4.6 alternative budget models (B=0.15, RTT-optimized)",
		Headers: []string{"model", "PNR", "reduction", "relayed calls"},
	}
	variants := []struct {
		label string
		mod   func(*core.ViaConfig)
	}{
		{"call-count budget", func(c *core.ViaConfig) { c.Budget = 0.15 }},
		{"talk-time budget", func(c *core.ViaConfig) { c.Budget = 0.15; c.BudgetByDuration = true }},
		{"call-count + per-relay cap 2%", func(c *core.ViaConfig) {
			c.Budget = 0.15
			c.PerRelayBudget = 0.02
		}},
		{"unbudgeted", func(c *core.ViaConfig) {}},
	}
	for _, v := range variants {
		res := e.ViaVariant("bm-"+v.label, m, v.mod)
		t.AddRow(v.label, fmtPct(res.PNR.AtLeastOneBadRate()),
			fmt.Sprintf("%.1f%%", reduction(def, res.PNR.AtLeastOneBadRate())),
			fmtPct(res.RelayedFraction()))
	}

	// Relay-load concentration with and without the per-relay cap.
	t2 := &stats.Table{
		Title:   "per-relay load concentration (share of relayed-call relay touches)",
		Headers: []string{"model", "top relay", "top 3 relays"},
	}
	for _, label := range []string{"call-count budget", "call-count + per-relay cap 2%"} {
		res := e.ViaVariant("bm-"+label, m, nil) // cached from above
		if res == nil {
			continue
		}
		t2.AddRow(label, fmtPct(topRelayShare(res.RelayUsage, 1)), fmtPct(topRelayShare(res.RelayUsage, 3)))
	}
	return []*stats.Table{t, t2}
}

// topRelayShare returns the combined share of the k most-used relays.
func topRelayShare(usage map[netsim.RelayID]int64, k int) float64 {
	var total int64
	var tops []int64
	for _, n := range usage {
		total += n
		tops = append(tops, n)
	}
	if total == 0 {
		return 0
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i] > tops[j] })
	if k > len(tops) {
		k = len(tops)
	}
	var sum int64
	for i := 0; i < k; i++ {
		sum += tops[i]
	}
	return float64(sum) / float64(total)
}
