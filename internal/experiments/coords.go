package experiments

import (
	"repro/internal/coords"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// CoordinatesAccuracy evaluates the related-work alternative the paper
// discusses (§6): Vivaldi network coordinates as a coverage-extension
// predictor for direct-path RTT. Coordinates are trained on one window's
// direct-path observations over a training subset of pairs, then evaluated
// on (a) the same pairs (in-sample) and (b) held-out pairs never observed —
// the regime where per-pair history predicts nothing at all. Tomography
// cannot stitch default (BGP) paths, so coordinates are the only contender
// for that hole; this experiment quantifies what they buy and what they
// miss (pathological routes violate the metric-space assumption).
func CoordinatesAccuracy(e *Env) []*stats.Table {
	const window = 1
	pairs := e.Runner.EligiblePairs()
	if len(pairs) > 400 {
		pairs = pairs[:400]
	}
	sys := coords.New(coords.DefaultConfig(), e.Seed)
	rng := stats.NewRNG(e.Seed).Split("coords-exp")

	// 70/30 train/test split over pairs.
	var train, test []int
	for i := range pairs {
		if rng.Float64() < 0.7 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}

	// Train: several rounds of noisy direct-path samples per training pair.
	t0 := float64(window)*netsim.HoursPerWindow + 6
	for round := 0; round < 30; round++ {
		for _, i := range train {
			pk := pairs[i]
			m := e.World.SampleCall(pk.A, pk.B, netsim.DirectOption(), t0, rng)
			sys.Observe(int32(pk.A), int32(pk.B), m.RTTMs)
		}
	}

	eval := func(idx []int) (within20, within50 float64, n int) {
		var w20, w50 int
		for _, i := range idx {
			pk := pairs[i]
			pred, ok := sys.PredictRTT(int32(pk.A), int32(pk.B))
			if !ok {
				continue
			}
			truth := e.World.WindowMean(pk.A, pk.B, netsim.DirectOption(), window).RTTMs
			if truth <= 0 {
				continue
			}
			rel := abs(pred-truth) / truth
			n++
			if rel <= 0.20 {
				w20++
			}
			if rel <= 0.50 {
				w50++
			}
		}
		if n == 0 {
			return 0, 0, 0
		}
		return float64(w20) / float64(n), float64(w50) / float64(n), n
	}

	t := &stats.Table{
		Title:   "§6 alternative: Vivaldi coordinates for direct-path RTT prediction",
		Headers: []string{"evaluation set", "pairs", "within 20%", "within 50%"},
	}
	in20, in50, inN := eval(train)
	out20, out50, outN := eval(test)
	t.AddRow("observed pairs (in-sample)", inN, fmtPct(in20), fmtPct(in50))
	t.AddRow("held-out pairs (never observed)", outN, fmtPct(out20), fmtPct(out50))
	t.AddRow("history-only predictor on held-out", outN, "0% (no coverage)", "0% (no coverage)")
	return []*stats.Table{t}
}
