package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/quality"
)

// sharedEnv is built once: experiments cache strategy runs inside it, so
// tests stay fast.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment environment is slow")
	}
	if sharedEnv == nil {
		sharedEnv = NewEnv(1, 60000)
	}
	return sharedEnv
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
	}
	// Every figure/table in the paper's evaluation must be present.
	for _, want := range []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig12a", "fig12b", "mix", "fig13", "fig14",
		"fig15", "fig16", "fig17a", "fig17b", "fig17c", "tomo",
	} {
		if !names[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, err := Lookup("fig12a"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestEveryExperimentProducesTables(t *testing.T) {
	e := env(t)
	for _, exp := range Registry() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tables := exp.Run(e)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				s := tb.String()
				if !strings.Contains(s, "==") {
					t.Errorf("table missing title: %q", s[:min(len(s), 60)])
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if tb.CSV() == "" {
					t.Errorf("table %q has no CSV", tb.Title)
				}
			}
		})
	}
}

func TestFig1CorrelationShape(t *testing.T) {
	e := env(t)
	// Fig 1's claim: PCR correlates strongly with every metric.
	for _, tb := range Fig1(e) {
		last := tb.Rows[len(tb.Rows)-1]
		if last[0] != "corr" {
			t.Fatalf("missing correlation row in %q", tb.Title)
		}
		corr, err := strconv.ParseFloat(last[3], 64)
		if err != nil {
			t.Fatalf("bad corr cell %q", last[3])
		}
		if corr < 0.85 {
			t.Errorf("%s: correlation %v below the paper's ~0.9+", tb.Title, corr)
		}
	}
}

func TestFig8OracleShape(t *testing.T) {
	e := env(t)
	def := e.Default()
	for _, m := range quality.AllMetrics() {
		orc := e.OracleFor(m)
		red := reduction(def.PNR.Rate(m), orc.PNR.Rate(m))
		if red < 30 || red > 85 {
			t.Errorf("oracle %s PNR reduction %.1f%%, paper envelope is ~30-65%%", m, red)
		}
	}
}

func TestFig12aOrderingShape(t *testing.T) {
	e := env(t)
	def := e.Default()
	base := def.PNR.AtLeastOneBadRate()
	worstOf := func(get func(quality.Metric) float64) float64 {
		w := 0.0
		for _, m := range quality.AllMetrics() {
			if v := get(m); v > w {
				w = v
			}
		}
		return w
	}
	via := reduction(base, worstOf(func(m quality.Metric) float64 { return e.ViaFor(m).PNR.AtLeastOneBadRate() }))
	oracle := reduction(base, worstOf(func(m quality.Metric) float64 { return e.OracleFor(m).PNR.AtLeastOneBadRate() }))
	predict := reduction(base, worstOf(func(m quality.Metric) float64 { return e.PredictOnlyFor(m).PNR.AtLeastOneBadRate() }))
	if !(oracle > via && via > predict && predict > 0) {
		t.Errorf("ordering violated: oracle=%.1f via=%.1f strawmanI=%.1f", oracle, via, predict)
	}
	if via < 0.5*oracle {
		t.Errorf("via (%.1f%%) not close to oracle (%.1f%%)", via, oracle)
	}
}

func TestFig16BudgetShape(t *testing.T) {
	e := env(t)
	// At a 30% budget the aware variant must beat the unaware one (the
	// paper's Fig 16 core claim).
	m := quality.RTT
	aware := e.ViaVariant("t-aware-0.30", m, func(c *core.ViaConfig) { c.Budget = 0.3; c.BudgetAware = true })
	unaware := e.ViaVariant("t-unaware-0.30", m, func(c *core.ViaConfig) { c.Budget = 0.3; c.BudgetAware = false })
	if aware.PNR.AtLeastOneBadRate() >= unaware.PNR.AtLeastOneBadRate() {
		t.Errorf("budget-aware PNR %.4f not below budget-unaware %.4f at B=0.3",
			aware.PNR.AtLeastOneBadRate(), unaware.PNR.AtLeastOneBadRate())
	}
}

func TestHistoryFromSurveyCoversOptions(t *testing.T) {
	e := env(t)
	pairs := e.Runner.EligiblePairs()
	if len(pairs) == 0 {
		t.Skip("no eligible pairs at this scale")
	}
	h := historyFromSurvey(e, pairs[:1], 0, 2)
	opts := h.Options(pairs[0].A, pairs[0].B, 0)
	if len(opts) < 5 {
		t.Errorf("survey covered only %d options", len(opts))
	}
	for _, oc := range opts {
		if oc.N != 2 {
			t.Errorf("option %v has %d samples, want 2", oc.Option, oc.N)
		}
	}
}

func TestFig18Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment experiment is slow")
	}
	tables, err := Fig18(QuickFig18Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) < 3 {
		t.Fatalf("thin fig18 output: %+v", tables)
	}
}
