package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ActiveProbes evaluates the §7 "Active Measurements" extension: the
// controller orchestrates mock calls at window boundaries to fill coverage
// holes in the passive history, improving tomography and pruning. The paper
// leaves this as future work; this experiment quantifies it.
func ActiveProbes(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.Rate(m)
	t := &stats.Table{
		Title:   "§7 extension: active measurements to fill coverage holes (RTT)",
		Headers: []string{"probes/window", "probes placed", "PNR", "reduction vs default"},
	}
	for _, budget := range []int{0, 100, 400, 1000} {
		res := e.runProbes(fmt.Sprintf("probes-%d", budget), m, budget)
		t.AddRow(budget, res.Probes, fmtPct(res.PNR.Rate(m)),
			fmt.Sprintf("%.1f%%", reduction(def, res.PNR.Rate(m))))
	}
	return []*stats.Table{t}
}

// runProbes runs Via on a simulator with an active-probe budget.
func (e *Env) runProbes(key string, m quality.Metric, probesPerWindow int) *sim.Result {
	return e.runCustom(key, func() *sim.Result {
		cfg := e.Runner.Cfg
		cfg.ActiveProbesPerWindow = probesPerWindow
		runner := sim.NewRunner(e.World, cfg)
		runner.Prepare(e.Trace)
		return runner.RunOne(core.NewVia(core.DefaultViaConfig(m), e.World), e.Trace)
	})
}
