package experiments

import (
	"fmt"
	"math"

	"repro/internal/quality"
	"repro/internal/stats"
)

// Churn sweep (DESIGN.md §17): what mid-call mobility costs under each
// recovery policy, as endpoint churn (NAT rebinds, WiFi↔LTE handovers)
// rises. Three arms:
//
//   - migrate: token-based session migration. The client announces its new
//     address with a keepalive, the relay validates it with a path
//     challenge and re-pins the return path; the call never leaves its
//     predicted relay. The outage is one validation round trip, and NACK
//     retransmission recovers the gap packets whose repair still lands
//     inside the playout deadline.
//   - redial-via: the pre-mobility behavior — the call drops and the
//     client re-dials, with prediction-guided selection putting the new
//     call back on the best candidate. The user eats a dropped call plus
//     signaling/setup dead air per churn event.
//   - redial-random: drop and re-dial without prediction: the same dead
//     air, and the rest of the call rides whichever candidate the re-dial
//     happened to land on.
//
// The headline the gate cares about: migration degrades gracefully (MOS
// declines by validation gaps only) while both re-dial arms fall off a
// cliff in drops and dead air, and the unpredicted one also loses the
// relay-selection gains Via exists to provide.

// churnRatesPerMin are the swept churn intensities, in rebinds per minute
// of talk time. 0 is the no-churn control; 4/min is a subway commute.
func churnRatesPerMin() []float64 {
	return []float64{0, 0.5, 1, 2, 4}
}

const (
	// churnPlayoutMs is the playout buffer depth bounding useful NACK
	// repair, matching rtp.NACKConfig's default deadline.
	churnPlayoutMs = 400
	// churnRedialSetupMs is the fixed signaling cost of a re-dial before
	// path-dependent round trips: directory fetch, permission prompt
	// debounce, codec renegotiation.
	churnRedialSetupMs = 250
)

// churnSampleSize scales the sampled call population with -calls, clamped
// so the per-cell means stay stable without dominating the run.
func churnSampleSize(calls int) int {
	n := calls / 10
	if n < 1000 {
		n = 1000
	}
	if n > 8000 {
		n = 8000
	}
	return n
}

// churnCall is one sampled call: its pair, window, candidate set, and the
// per-option window means the policies price segments with.
type churnCall struct {
	durSec float64
	best   quality.Metrics
	cands  []quality.Metrics
}

// churnSample draws the call population from the trace workload: real AS
// pairs with Zipf volume, log-normal durations, and each pair's candidate
// options priced at the call's window.
func churnSample(e *Env) []churnCall {
	n := churnSampleSize(e.Calls)
	out := make([]churnCall, 0, n)
	for _, rec := range e.Trace {
		if len(out) >= n {
			break
		}
		if rec.Src == rec.Dst || rec.Duration <= 0 {
			continue
		}
		opts := e.World.Options(rec.Src, rec.Dst)
		if len(opts) == 0 {
			continue
		}
		cands := make([]quality.Metrics, len(opts))
		bestIdx, bestMOS := 0, -1.0
		em := quality.DefaultEModel()
		for i, o := range opts {
			cands[i] = e.World.WindowMean(rec.Src, rec.Dst, o, rec.Window())
			if mos := em.MOS(cands[i]); mos > bestMOS {
				bestIdx, bestMOS = i, mos
			}
		}
		out = append(out, churnCall{durSec: rec.Duration, best: cands[bestIdx], cands: cands})
	}
	return out
}

// churnPoisson draws the number of rebinds in a call of the given talk
// time (Knuth's method; means here are small).
func churnPoisson(rng *stats.RNG, ratePerMin, durSec float64) int {
	mean := ratePerMin * durSec / 60
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p < l {
			return k
		}
		k++
	}
}

// churnOutcome aggregates one (rate, policy) cell.
type churnOutcome struct {
	calls     int
	rebinds   int
	drops     int
	outageSec float64
	talkSec   float64
	mosSum    float64
}

// churnMigrate prices one call under token-based migration: per rebind,
// the endpoint is dark for one validation round trip on the serving path;
// retransmission then claws back the fraction of the gap that still fits
// the playout deadline.
func churnMigrate(c churnCall, rebinds int) (outageSec, mos float64) {
	gap := c.best.RTTMs / 1000
	outageSec = float64(rebinds) * gap
	repairable := 1 - c.best.RTTMs/churnPlayoutMs
	if repairable < 0 {
		repairable = 0
	}
	residual := c.best.LossRate + (outageSec*(1-repairable))/c.durSec
	mos = quality.DefaultEModel().MOS(quality.Metrics{
		RTTMs:    c.best.RTTMs,
		LossRate: clampRate(residual),
		JitterMs: c.best.JitterMs,
	})
	return outageSec, mos
}

// churnRedial prices one call under drop-and-re-dial. Each rebind kills
// the call for the signaling setup plus two path round trips; the next
// segment rides the predicted best option (predicted=true) or a uniform
// candidate. MOS is the talk-time-weighted mean over segments, with the
// dead air charged as loss against the whole call — dead air is time the
// network delivered nothing.
func churnRedial(rng *stats.RNG, c churnCall, rebinds int, predicted bool) (outageSec, mos float64) {
	segs := rebinds + 1
	seg := c.best
	mosSum := 0.0
	for i := 0; i < segs; i++ {
		if i > 0 {
			outageSec += (churnRedialSetupMs + 2*seg.RTTMs) / 1000
			if predicted {
				seg = c.best
			} else {
				seg = c.cands[rng.IntN(len(c.cands))]
			}
		}
		mosSum += quality.DefaultEModel().MOS(seg)
	}
	mos = mosSum / float64(segs)
	// Charge the dead air: scale MOS down by the fraction of the call the
	// user spent listening to silence and redial tones.
	deadFrac := outageSec / (c.durSec + outageSec)
	mos = mos - (mos-1)*clampRate(deadFrac)
	return outageSec, mos
}

// clampRate clamps a fraction into [0, 1].
func clampRate(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ChurnSweep sweeps endpoint churn rates across the three recovery
// policies over a trace-sampled call population.
func ChurnSweep(e *Env) []*stats.Table {
	rng := stats.NewRNG(e.Seed).Split("churnsweep")
	calls := churnSample(e)
	t := &stats.Table{
		Title: fmt.Sprintf("mid-call churn: migration vs drop-and-re-dial (%d calls/cell)", len(calls)),
		Headers: []string{"churn/min", "policy", "rebinds/call", "drops/call",
			"dead air ms/call", "mean MOS", "ΔMOS vs no churn"},
	}
	policies := []string{"migrate", "redial-via", "redial-random"}
	baseMOS := make(map[string]float64)
	for _, rate := range churnRatesPerMin() {
		for _, pol := range policies {
			cellRNG := rng.Split(fmt.Sprintf("%s/%.2f", pol, rate))
			var agg churnOutcome
			for _, c := range calls {
				n := churnPoisson(cellRNG, rate, c.durSec)
				var outage, mos float64
				switch pol {
				case "migrate":
					outage, mos = churnMigrate(c, n)
				case "redial-via":
					outage, mos = churnRedial(cellRNG, c, n, true)
					agg.drops += n
				default:
					outage, mos = churnRedial(cellRNG, c, n, false)
					agg.drops += n
				}
				agg.calls++
				agg.rebinds += n
				agg.outageSec += outage
				agg.talkSec += c.durSec
				agg.mosSum += mos
			}
			mean := agg.mosSum / float64(agg.calls)
			if rate == 0 {
				baseMOS[pol] = mean
			}
			t.AddRow(fmt.Sprintf("%.1f", rate), pol,
				fmt.Sprintf("%.2f", float64(agg.rebinds)/float64(agg.calls)),
				fmt.Sprintf("%.2f", float64(agg.drops)/float64(agg.calls)),
				fmt.Sprintf("%.0f", agg.outageSec/float64(agg.calls)*1000),
				fmt.Sprintf("%.3f", mean),
				fmt.Sprintf("%+.3f", mean-baseMOS[pol]))
		}
	}
	return []*stats.Table{t}
}
