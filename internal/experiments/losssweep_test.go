package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rtp"
	"repro/internal/stats"
)

// sweepCells runs the sweep's measurement grid directly (without an Env)
// so the assertions below are cheap and deterministic.
func sweepCells(seed uint64, packets int) map[string]map[string]rtp.RepairStats {
	rng := stats.NewRNG(seed).Split("losssweep")
	out := make(map[string]map[string]rtp.RepairStats)
	for _, reg := range lossRegimes() {
		out[reg.name] = make(map[string]rtp.RepairStats)
		for _, s := range lossSweepSchemes() {
			out[reg.name][s.String()] = sweepRepair(reg, s, packets, rng.Split(reg.name+"/"+s.String()))
		}
	}
	return out
}

// TestLossSweepRepairBeatsNoRepair is the ISSUE acceptance claim: in at
// least two regimes some repair scheme leaves residual loss (and MOS)
// strictly better than no-repair.
func TestLossSweepRepairBeatsNoRepair(t *testing.T) {
	cells := sweepCells(1, 20000)
	better := 0
	for _, reg := range lossRegimes() {
		base := cells[reg.name]["none"]
		baseMOS := sweepMOS(reg, base.ResidualLossRate())
		for _, s := range lossSweepSchemes() {
			if s == rtp.SchemeNone {
				continue
			}
			st := cells[reg.name][s.String()]
			if st.ResidualLossRate() < base.ResidualLossRate() &&
				sweepMOS(reg, st.ResidualLossRate()) > baseMOS {
				better++
				break
			}
		}
	}
	if better < 2 {
		t.Errorf("repair strictly better than none in %d regimes, want >= 2", better)
	}
}

// TestLossSweepSchemeTradeoff pins the scheme-selection matrix: NACK is
// the cheapest effective repair on low-RTT reliable paths (retransmits
// land inside playout at ~5%% overhead), while on bursty high-RTT paths
// redundancy (FEC/RED) must win because retransmits arrive too late.
func TestLossSweepSchemeTradeoff(t *testing.T) {
	cells := sweepCells(1, 20000)

	// Low RTT, light random loss: NACK repairs nearly everything.
	low := cells["clean-lowrtt"]
	if r := low["nack"].ResidualLossRate(); r > low["none"].ResidualLossRate()/2 {
		t.Errorf("clean-lowrtt: nack residual %.4f, want well under raw %.4f",
			r, low["none"].ResidualLossRate())
	}

	// Bursty loss at 400ms RTT: retransmits outlive the playout buffer,
	// so FEC or RED must leave less residual loss than NACK.
	hi := cells["bursty-highrtt"]
	nack := hi["nack"].ResidualLossRate()
	if hi["fec-4"].ResidualLossRate() >= nack && hi["red"].ResidualLossRate() >= nack {
		t.Errorf("bursty-highrtt: nack residual %.4f not beaten by fec-4 %.4f or red %.4f",
			nack, hi["fec-4"].ResidualLossRate(), hi["red"].ResidualLossRate())
	}
}

// TestLossSweepBanditPicksRegimeWinners reruns the experiment's bandit
// episodes and asserts the learned per-regime knob: NACK on the low-RTT
// low-loss arm, a redundancy scheme on the bursty high-RTT arm, and the
// §4.6 budget holding redundancy spend near its cap when enabled.
func TestLossSweepBanditPicksRegimeWinners(t *testing.T) {
	raw := sweepCells(1, 20000)
	rng := stats.NewRNG(1).Split("losssweep-test")
	names := []string{"none", "nack", "red", "fec-4"}

	learn := func(reg lossRegime, budget float64) *core.RepairBandit {
		cells := make(map[string]lossSweepCell)
		for name, st := range raw[reg.name] {
			cells[name] = lossSweepCell{
				residual: st.ResidualLossRate(),
				mos:      sweepMOS(reg, st.ResidualLossRate()),
				overhead: st.OverheadRatio,
			}
		}
		return lossSweepBandit(reg, cells, names, budget, rng.Split(reg.name))
	}

	var lowReg, hiReg lossRegime
	for _, reg := range lossRegimes() {
		switch reg.name {
		case "clean-lowrtt":
			lowReg = reg
		case "bursty-highrtt":
			hiReg = reg
		}
	}
	if got := learn(lowReg, 1).MostChosen(); got != "nack" {
		t.Errorf("clean-lowrtt bandit picked %q, want nack", got)
	}
	if got := learn(hiReg, 1).MostChosen(); got != "fec-4" && got != "red" {
		t.Errorf("bursty-highrtt bandit picked %q, want fec-4 or red", got)
	}
	// Budgeted run: whatever wins, the redundancy ledger must respect the
	// cap (small slack for the final charged call).
	if b := learn(hiReg, 0.25); b.OverheadFraction() > 0.26 {
		t.Errorf("budget 0.25 overspent: %.3f", b.OverheadFraction())
	}
}
