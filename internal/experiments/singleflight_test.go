package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/sim"
)

// TestRunSingleflight checks Env.run's concurrency contract: concurrent
// requests for one key invoke the strategy factory exactly once and all
// observe the same Result, while different keys run concurrently instead
// of serializing behind Env.mu.
func TestRunSingleflight(t *testing.T) {
	e := env(t)
	var made atomic.Int32
	const callers = 8
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.run("singleflight-probe", func() core.Strategy {
				made.Add(1)
				return core.DefaultStrategy{}
			})
		}(i)
	}
	wg.Wait()
	if got := made.Load(); got != 1 {
		t.Errorf("factory invoked %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different *Result pointer", i)
		}
	}
}

// TestConcurrentDistinctRuns exercises the parallel-figures path: several
// distinct cached counterfactuals requested at once, each computed once,
// and the outcome identical to requesting them one at a time (common
// random numbers make the replays order-independent).
func TestConcurrentDistinctRuns(t *testing.T) {
	e := env(t)
	metrics := quality.AllMetrics()
	var wg sync.WaitGroup
	got := make([]*sim.Result, len(metrics))
	for i, m := range metrics {
		wg.Add(1)
		go func(i int, m quality.Metric) {
			defer wg.Done()
			got[i] = e.OracleFor(m)
		}(i, m)
	}
	wg.Wait()
	for i, m := range metrics {
		if got[i] == nil || got[i].Eligible == 0 {
			t.Fatalf("oracle run for %v empty", m)
		}
		// A repeat request must hit the cache (same pointer).
		if e.OracleFor(m) != got[i] {
			t.Errorf("oracle run for %v not cached", m)
		}
	}
}
