package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/rtp"
	"repro/internal/stats"
)

// lossRegime is one point in the burst-loss sweep: a path RTT plus a
// Gilbert-Elliott channel parameterization.
type lossRegime struct {
	name     string
	lossRate float64
	burstLen float64 // mean bad-state sojourn in packets (1 = independent)
	rttMs    float64
}

// lossRegimes spans the operating points where the repair schemes trade
// places: NACK retransmits need the RTT to fit inside the playout buffer,
// while FEC/RED pay a constant redundancy tax but repair at zero latency.
func lossRegimes() []lossRegime {
	return []lossRegime{
		{"clean-lowrtt", 0.01, 1, 40},
		{"random-midrtt", 0.02, 1, 120},
		{"bursty-midrtt", 0.08, 3, 250},
		{"bursty-highrtt", 0.08, 3, 400},
	}
}

// lossSweepSchemes are the repair arms the sweep (and the bandit below)
// compares.
func lossSweepSchemes() []rtp.Scheme {
	return []rtp.Scheme{rtp.SchemeNone, rtp.SchemeNACK, rtp.SchemeRED, rtp.SchemeFEC(4)}
}

// sweepPackets scales the simulated stream length with the environment's
// call volume so -calls tunes runtime, clamped to keep the loss estimates
// statistically meaningful.
func sweepPackets(calls int) int {
	p := calls / 5
	if p < 4000 {
		p = 4000
	}
	if p > 40000 {
		p = 40000
	}
	return p
}

// sweepRepair runs one (regime, scheme) cell of the sweep.
func sweepRepair(reg lossRegime, s rtp.Scheme, packets int, rng *stats.RNG) rtp.RepairStats {
	return rtp.SimulateRepair(rtp.SimParams{
		Scheme:       s,
		Packets:      packets,
		RTTNanos:     int64(reg.rttMs * 1e6),
		LossRate:     reg.lossRate,
		MeanBurstLen: reg.burstLen,
	}, rng)
}

// sweepMOS scores a cell: E-model MOS at the regime's RTT with the
// post-repair residual loss.
func sweepMOS(reg lossRegime, residual float64) float64 {
	return quality.DefaultEModel().MOS(quality.Metrics{RTTMs: reg.rttMs, LossRate: residual})
}

// LossSweep sweeps the repair schemes across burst-loss regimes and lets
// the per-pair repair bandit loose on each one. The headline claims it
// backs: repair leaves residual loss (and thus MOS) strictly better than
// no-repair, NACK wins where the RTT is short enough to retransmit inside
// the playout deadline, and FEC/RED win under bursty loss on long paths
// — exactly the per-call knob the controller's (path, repair) arms learn.
func LossSweep(e *Env) []*stats.Table {
	rng := stats.NewRNG(e.Seed).Split("losssweep")
	packets := sweepPackets(e.Calls)
	schemes := lossSweepSchemes()

	t := &stats.Table{
		Title: fmt.Sprintf("repair scheme sweep across loss regimes (%d packets/cell)", packets),
		Headers: []string{"regime", "scheme", "channel loss", "residual loss",
			"MOS", "overhead", "recovered", "deadline misses"},
	}
	// cells[regime][scheme], for the bandit cost model below.
	cells := make(map[string]map[string]lossSweepCell)
	for _, reg := range lossRegimes() {
		cells[reg.name] = make(map[string]lossSweepCell)
		for _, s := range schemes {
			st := sweepRepair(reg, s, packets, rng.Split(reg.name+"/"+s.String()))
			residual := st.ResidualLossRate()
			mos := sweepMOS(reg, residual)
			cells[reg.name][s.String()] = lossSweepCell{residual, mos, st.OverheadRatio}
			t.AddRow(reg.name, s.String(), fmtPct(st.LossRate()), fmtPct(residual),
				fmt.Sprintf("%.2f", mos), fmtPct(st.OverheadRatio),
				fmt.Sprintf("%d", st.Recovered), fmt.Sprintf("%d", st.DeadlineMisses))
		}
	}

	// Per-regime bandit: the same RepairBandit the controller runs per
	// group pair, fed the sweep's own measurements. Cost mirrors
	// core.repairCost — MOS shortfall plus a small §4.6-style overhead
	// charge — with light measurement noise so exploration sees realistic
	// sample scatter.
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.String()
	}
	t2 := &stats.Table{
		Title:   "per-regime repair bandit (ε-greedy + UCB over cost)",
		Headers: []string{"regime", "budget", "chosen scheme", "pulls", "overhead spent"},
	}
	// Two budget points: unbudgeted shows the pure quality winner per
	// regime (NACK on short reliable paths, redundancy under bursty loss);
	// a 0.25 talk-time budget shows §4.6 charging masking the expensive
	// redundancy arms when their redundant seconds exceed the allowance.
	for _, budget := range []float64{1, 0.25} {
		label := "unbudgeted"
		if budget < 1 {
			label = fmtPct(budget)
		}
		for _, reg := range lossRegimes() {
			b := lossSweepBandit(reg, cells[reg.name], names, budget,
				rng.Split(fmt.Sprintf("bandit/%s/%s", label, reg.name)))
			counts := b.Counts()
			t2.AddRow(reg.name, label, b.MostChosen(),
				fmt.Sprintf("%.0f", counts[b.MostChosen()]),
				fmtPct(b.OverheadFraction()))
		}
	}
	return []*stats.Table{t, t2}
}

// lossSweepCell is one measured (regime, scheme) grid point.
type lossSweepCell struct {
	residual, mos, overhead float64
}

// lossSweepBandit replays one regime's measurements through the same
// RepairBandit the controller runs per group pair. Cost mirrors the
// controller's: MOS shortfall plus a small overhead charge, with light
// noise so exploration sees realistic sample scatter.
func lossSweepBandit(reg lossRegime, cells map[string]lossSweepCell, names []string, budget float64, rng *stats.RNG) *core.RepairBandit {
	const episodes = 600
	b := core.NewRepairBandit(0.1, 0.1, budget)
	for i := 0; i < episodes; i++ {
		pick := b.Choose(names, 180, rng)
		cost := (4.5 - cells[pick].mos) + 0.05*core.RepairOverhead(pick)
		cost += 0.02 * rng.NormFloat64()
		b.Observe(pick, cost)
	}
	return b
}
