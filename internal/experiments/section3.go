package experiments

import (
	"fmt"

	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig8 reproduces the oracle potential (§3.2): per-metric distribution
// improvements (30-60% at the median, 40-65% at the tail in the paper) and
// PNR reductions (up to 53% per metric, >30% on at-least-one-bad).
func Fig8(e *Env) []*stats.Table {
	def := e.Default()

	a := &stats.Table{
		Title:   "Fig 8a: oracle improvement on metric percentiles (vs default)",
		Headers: []string{"metric", "p50 impr", "p90 impr", "p99 impr", "paper p50", "paper tail"},
	}
	oracleRuns := map[quality.Metric]*sim.Result{}
	for _, m := range quality.AllMetrics() {
		orc := e.OracleFor(m)
		oracleRuns[m] = orc
		a.AddRow(m.String(),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, orc, m, 0.50)),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, orc, m, 0.90)),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, orc, m, 0.99)),
			"30-60%", "40-65%")
	}

	b := &stats.Table{
		Title:   "Fig 8b: oracle PNR reduction (vs default)",
		Headers: []string{"criterion", "default PNR", "oracle PNR", "reduction", "paper"},
	}
	for _, m := range quality.AllMetrics() {
		dv := def.PNR.Rate(m)
		ov := oracleRuns[m].PNR.Rate(m)
		b.AddRow(m.String(), fmtPct(dv), fmtPct(ov),
			fmt.Sprintf("%.1f%%", reduction(dv, ov)), "up to 53%")
	}
	dAll := def.PNR.AtLeastOneBadRate()
	oAll := atLeastOneConservative(oracleRuns)
	b.AddRow("at-least-one (conservative)", fmtPct(dAll), fmtPct(oAll),
		fmt.Sprintf("%.1f%%", reduction(dAll, oAll)), ">30%")
	return []*stats.Table{a, b}
}

// Fig9 reproduces the best-option persistence distribution: ~30% of AS
// pairs keep the same best option for under 2 days, only ~20% beyond 20
// days.
func Fig9(e *Env) []*stats.Table {
	per := sim.BestOptionPersistence(e.World, e.Trace, e.Runner, quality.RTT)
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 9: duration the oracle's best option lasts (n=%d pairs, RTT)", len(per)),
		Headers: []string{"statistic", "value", "paper"},
	}
	if len(per) == 0 {
		t.AddRow("no data", "", "")
		return []*stats.Table{t}
	}
	cdf := stats.NewCDF(per)
	t.AddRow("median best-option run <2 days", fmtPct(1-cdf.FractionAtOrAbove(2)), "~30%")
	t.AddRow("median best-option run <=3 days", fmtPct(1-cdf.FractionAbove(3)), "")
	t.AddRow(">20 days", fmtPct(cdf.FractionAbove(20)), "~20%")
	t.AddRow("p50 run length (days)", cdf.Quantile(0.5), "")
	t.AddRow("p90 run length (days)", cdf.Quantile(0.9), "")
	return []*stats.Table{t}
}
