package experiments

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/stats"
)

// Table1 reproduces the dataset summary.
func Table1(e *Env) []*stats.Table {
	// Import cycle avoidance: Summarize lives in trace.
	s := summarize(e)
	t := &stats.Table{
		Title:   "Table 1: dataset summary (synthetic stand-in for the Skype sample)",
		Headers: []string{"statistic", "value", "paper"},
	}
	t.AddRow("calls", fmt.Sprintf("%d", s.Calls), "430M")
	t.AddRow("users", fmt.Sprintf("%d", s.Users), "135M")
	t.AddRow("ASes", fmt.Sprintf("%d", s.ASes), "1.9K")
	t.AddRow("countries/regions", fmt.Sprintf("%d", s.Countries), "126")
	t.AddRow("days", fmt.Sprintf("%.0f", s.Days), "~197 (2015-11-15..2016-05-30)")
	t.AddRow("international calls", fmtPct(s.International), "46.6%")
	t.AddRow("inter-AS calls", fmtPct(s.InterAS), "80.7%")
	return []*stats.Table{t}
}

// Fig1 reproduces "network performance impacts user experience": PCR per
// metric bin (normalized to the max bin), with the metric-PCR correlation.
// The paper reports correlations of 0.97/0.95/0.91 and PCR rising across
// the entire metric range.
func Fig1(e *Env) []*stats.Table {
	var out []*stats.Table
	binsFor := map[quality.Metric][]float64{
		quality.RTT:    {0, 80, 160, 240, 320, 400, 480, 560, 640, 800},
		quality.Loss:   {0, 0.003, 0.006, 0.009, 0.012, 0.018, 0.024, 0.036, 0.05, 0.08},
		quality.Jitter: {0, 3, 6, 9, 12, 16, 20, 26, 34, 50},
	}
	const minBin = 1000 // the paper's statistical-significance floor
	for _, m := range quality.AllMetrics() {
		edges := binsFor[m]
		var pcr []quality.PCR
		pcr = make([]quality.PCR, len(edges))
		for _, c := range e.Trace {
			if c.Rating == 0 {
				continue
			}
			b := 0
			v := c.Metrics.Get(m)
			for i := len(edges) - 1; i >= 0; i-- {
				if v >= edges[i] {
					b = i
					break
				}
			}
			pcr[b].Add(c.Rating)
		}
		maxPCR := 0.0
		for i := range pcr {
			if pcr[i].Total >= minBin && pcr[i].Rate() > maxPCR {
				maxPCR = pcr[i].Rate()
			}
		}
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 1 (%s): normalized PCR per bin", m),
			Headers: []string{"bin>=", "calls", "PCR", "normalized"},
		}
		var xs, ys []float64
		for i := range pcr {
			if pcr[i].Total < minBin {
				continue
			}
			norm := 0.0
			if maxPCR > 0 {
				norm = pcr[i].Rate() / maxPCR
			}
			t.AddRow(edges[i], pcr[i].Total, pcr[i].Rate(), norm)
			xs = append(xs, edges[i])
			ys = append(ys, pcr[i].Rate())
		}
		t.AddRow("corr", "", "", stats.Pearson(xs, ys))
		out = append(out, t)
	}
	return out
}

// Fig2 reproduces the metric CDFs with the poor-performance thresholds:
// the paper reads off ≥15% of calls past each threshold.
func Fig2(e *Env) []*stats.Table {
	var values [quality.NumMetrics][]float64
	for _, c := range e.Trace {
		for _, m := range quality.AllMetrics() {
			values[m] = append(values[m], c.Metrics.Get(m))
		}
	}
	t := &stats.Table{
		Title:   "Fig 2: CDFs of direct-path network performance",
		Headers: []string{"metric", "p25", "p50", "p75", "p90", "p99", "frac>=threshold", "paper"},
	}
	for _, m := range quality.AllMetrics() {
		c := stats.NewCDF(values[m])
		t.AddRow(m.String(),
			c.Quantile(0.25), c.Quantile(0.5), c.Quantile(0.75),
			c.Quantile(0.90), c.Quantile(0.99),
			fmtPct(c.FractionAtOrAbove(quality.Threshold(m))),
			">=15%")
	}
	return []*stats.Table{t}
}

// Fig3 reproduces the pairwise metric correlations: the distribution
// (p10/p50/p90) of one metric conditioned on bins of another.
func Fig3(e *Env) []*stats.Table {
	pairs := [][2]quality.Metric{
		{quality.RTT, quality.Loss},
		{quality.RTT, quality.Jitter},
		{quality.Loss, quality.Jitter},
	}
	var out []*stats.Table
	for _, pr := range pairs {
		x, y := pr[0], pr[1]
		// Quintile bins of x.
		var xs []float64
		for _, c := range e.Trace {
			xs = append(xs, c.Metrics.Get(x))
		}
		cdf := stats.NewCDF(xs)
		edges := []float64{
			cdf.Quantile(0), cdf.Quantile(0.2), cdf.Quantile(0.4),
			cdf.Quantile(0.6), cdf.Quantile(0.8),
		}
		groups := make([][]float64, len(edges))
		for _, c := range e.Trace {
			v := c.Metrics.Get(x)
			b := 0
			for i := len(edges) - 1; i >= 0; i-- {
				if v >= edges[i] {
					b = i
					break
				}
			}
			groups[b] = append(groups[b], c.Metrics.Get(y))
		}
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 3: %s conditioned on %s", y, x),
			Headers: []string{x.String() + ">=", "n", y.String() + " p10", "p50", "p90"},
		}
		for i, g := range groups {
			if len(g) < 100 {
				continue
			}
			t.AddRow(edges[i], len(g),
				stats.Quantile(g, 0.10), stats.Quantile(g, 0.50), stats.Quantile(g, 0.90))
		}
		out = append(out, t)
	}
	return out
}

// Fig4 reproduces international-vs-domestic PNR (2-3× in the paper) and the
// per-country dissection of international calls.
func Fig4(e *Env) []*stats.Table {
	var intl, dom quality.PNR
	byCountry := map[string]*quality.PNR{}
	for _, c := range e.Trace {
		if e.World.International(c.Src, c.Dst) {
			intl.Add(c.Metrics)
			for _, country := range []string{e.World.CountryOf(c.Src), e.World.CountryOf(c.Dst)} {
				p := byCountry[country]
				if p == nil {
					p = &quality.PNR{}
					byCountry[country] = p
				}
				p.Add(c.Metrics)
			}
		} else {
			dom.Add(c.Metrics)
		}
	}

	a := &stats.Table{
		Title:   "Fig 4a: international vs domestic PNR",
		Headers: []string{"metric", "international", "domestic", "ratio", "paper"},
	}
	addClass := func(name string, iv, dv float64) {
		ratio := 0.0
		if dv > 0 {
			ratio = iv / dv
		}
		a.AddRow(name, fmtPct(iv), fmtPct(dv), ratio, "2-3x")
	}
	for _, m := range quality.AllMetrics() {
		addClass(m.String(), intl.Rate(m), dom.Rate(m))
	}
	addClass("at-least-one", intl.AtLeastOneBadRate(), dom.AtLeastOneBadRate())

	b := &stats.Table{
		Title:   "Fig 4b: international-call PNR by country (worst 12, any endpoint)",
		Headers: []string{"country", "calls", "rtt", "loss", "jitter", "at-least-one"},
	}
	type row struct {
		c   string
		pnr *quality.PNR
	}
	var rows []row
	for c, p := range byCountry {
		if p.Total >= 500 {
			rows = append(rows, row{c, p})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].pnr.AtLeastOneBadRate() > rows[j].pnr.AtLeastOneBadRate()
	})
	for i, r := range rows {
		if i >= 12 {
			break
		}
		b.AddRow(r.c, r.pnr.Total, fmtPct(r.pnr.Rate(quality.RTT)),
			fmtPct(r.pnr.Rate(quality.Loss)), fmtPct(r.pnr.Rate(quality.Jitter)),
			fmtPct(r.pnr.AtLeastOneBadRate()))
	}
	return []*stats.Table{a, b}
}

// Fig5 reproduces the worst-AS-pair contribution: even the worst 1000 pairs
// contribute a small share of all poor calls in the paper (<15%). With our
// smaller pair population the ranks scale down correspondingly.
func Fig5(e *Env) []*stats.Table {
	p := history.NewPairWindowPNR()
	for _, c := range e.Trace {
		p.AddObservation(history.MakePairKey(c.Src, c.Dst), c.Window(), c.Metrics)
	}
	ranks := []int{1, 10, 50, 100, 500, 1000, 2000}
	fr := p.WorstPairContribution(ranks)
	t := &stats.Table{
		Title:   "Fig 5: cumulative share of poor calls from the worst n AS pairs",
		Headers: []string{"worst n pairs", "share of poor calls"},
	}
	for i, n := range ranks {
		t.AddRow(n, fmtPct(fr[i]))
	}
	t.AddRow("total pairs", len(p.ByPair))

	// §2.3 also checked finer granularities (/24, /20 prefixes) and found
	// the same dispersion. Emulate a finer-than-AS granularity by splitting
	// each AS into fragments keyed by user identity and repeating the
	// ranking at fragment-pair granularity.
	const fragments = 4
	fp := history.NewPairWindowPNR()
	for _, c := range e.Trace {
		fa := netsim.ASID(int64(c.Src)*fragments + (c.UserSrc%fragments+fragments)%fragments)
		fb := netsim.ASID(int64(c.Dst)*fragments + (c.UserDst%fragments+fragments)%fragments)
		fp.AddObservation(history.MakePairKey(fa, fb), c.Window(), c.Metrics)
	}
	ffr := fp.WorstPairContribution(ranks)
	t2 := &stats.Table{
		Title:   "Fig 5 (finer granularity): worst sub-AS (/24-like) pairs",
		Headers: []string{"worst n pairs", "share of poor calls", "paper"},
	}
	for i, n := range ranks {
		paper := ""
		if i == 0 {
			paper = "similar dispersion at finer granularities"
		}
		t2.AddRow(n, fmtPct(ffr[i]), paper)
	}
	t2.AddRow("total pairs", len(fp.ByPair), "")
	return []*stats.Table{t, t2}
}

// Fig6 reproduces the persistence and prevalence of high-PNR AS pairs:
// 10-20% of pairs always bad, 60-70% bad less than 30% of the time.
func Fig6(e *Env) []*stats.Table {
	p := history.NewPairWindowPNR()
	for _, c := range e.Trace {
		p.AddObservation(history.MakePairKey(c.Src, c.Dst), c.Window(), c.Metrics)
	}
	var out []*stats.Table
	for _, m := range quality.AllMetrics() {
		st := p.HighPNR(m, 1.5, 7, 5)
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 6 (%s): persistence & prevalence of high-PNR pairs (n=%d)", m, len(st.Prevalence)),
			Headers: []string{"statistic", "value", "paper"},
		}
		if len(st.Prevalence) == 0 {
			t.AddRow("no qualifying pairs", "", "")
			out = append(out, t)
			continue
		}
		always := 0
		rare := 0
		for _, v := range st.Prevalence {
			if v >= 0.999 {
				always++
			}
			if v < 0.30 {
				rare++
			}
		}
		n := float64(len(st.Prevalence))
		t.AddRow("always high-PNR", fmtPct(float64(always)/n), "10-20%")
		t.AddRow("high-PNR <30% of time", fmtPct(float64(rare)/n), "60-70%")
		t.AddRow("median persistence (days)", stats.Quantile(st.Persistence, 0.5), "<=1 for most")
		t.AddRow("p90 persistence (days)", stats.Quantile(st.Persistence, 0.9), "")
		t.AddRow("median prevalence", stats.Quantile(st.Prevalence, 0.5), "")
		out = append(out, t)
	}
	return out
}

// summarize wraps trace.Summarize without importing it at every call site.
func summarize(e *Env) traceSummary {
	users := map[int64]bool{}
	ases := map[netsim.ASID]bool{}
	countries := map[string]bool{}
	var s traceSummary
	var intl, interAS int64
	var maxT float64
	for _, c := range e.Trace {
		s.Calls++
		users[c.UserSrc] = true
		users[c.UserDst] = true
		ases[c.Src] = true
		ases[c.Dst] = true
		countries[e.World.CountryOf(c.Src)] = true
		countries[e.World.CountryOf(c.Dst)] = true
		if e.World.International(c.Src, c.Dst) {
			intl++
		}
		if c.Src != c.Dst {
			interAS++
		}
		if c.THours > maxT {
			maxT = c.THours
		}
	}
	s.Users = int64(len(users))
	s.ASes = len(ases)
	s.Countries = len(countries)
	if s.Calls > 0 {
		s.International = float64(intl) / float64(s.Calls)
		s.InterAS = float64(interAS) / float64(s.Calls)
	}
	s.Days = maxT / 24
	return s
}

type traceSummary struct {
	Calls         int64
	Users         int64
	ASes          int
	Countries     int
	International float64
	InterAS       float64
	Days          float64
}
