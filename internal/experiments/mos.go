package experiments

import (
	"fmt"

	"repro/internal/packets"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MOSValidation reproduces the §2.2 validation paragraph: "80% of calls
// rated non-poor using the thresholds on average metrics have a
// packet-trace-based MOS score higher than 75% of calls rated poor" — i.e.
// thresholds on call-average metrics are a reasonable approximation of
// trace-level perceptual quality. The paper ran a proprietary MOS
// calculator on 70K packet traces; here, packet traces are synthesized from
// each call's average metrics (AR(1) delay, Gilbert-Elliott loss) and
// scored via jitter-buffer playout + the E-model.
func MOSValidation(e *Env) []*stats.Table {
	const sample = 4000 // calls to trace (the paper used 70K of 430M)
	rng := stats.NewRNG(e.Seed).Split("mos-validation")
	cfg := packets.DefaultTraceConfig()

	var poorMOS, nonPoorMOS []float64
	step := len(e.Trace) / sample
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(e.Trace); i += step {
		c := e.Trace[i]
		mos := packets.TraceMOS(c.Metrics, cfg, rng)
		if c.Metrics.AtLeastOneBad() {
			poorMOS = append(poorMOS, mos)
		} else {
			nonPoorMOS = append(nonPoorMOS, mos)
		}
	}

	t := &stats.Table{
		Title:   "§2.2 validation: average-metric thresholds vs packet-trace MOS",
		Headers: []string{"statistic", "value", "paper"},
	}
	if len(poorMOS) < 20 || len(nonPoorMOS) < 20 {
		t.AddRow("insufficient calls traced", "", "")
		return []*stats.Table{t}
	}
	p75 := stats.Quantile(poorMOS, 0.75)
	above := 0
	for _, v := range nonPoorMOS {
		if v > p75 {
			above++
		}
	}
	t.AddRow("calls traced", len(poorMOS)+len(nonPoorMOS), "70K")
	t.AddRow("poor (at-least-one-bad)", len(poorMOS), "")
	t.AddRow("non-poor above poor-p75 trace MOS",
		fmtPct(float64(above)/float64(len(nonPoorMOS))), "80%")
	t.AddRow("median trace MOS, poor calls", stats.Quantile(poorMOS, 0.5), "")
	t.AddRow("median trace MOS, non-poor calls", stats.Quantile(nonPoorMOS, 0.5), "")
	return []*stats.Table{t}
}

// MOSImprovement scores Via's improvement on the E-model MOS scale (the
// paper shows MOS falling with each metric in §2.2; this quantifies how
// much relay selection buys back).
func MOSImprovement(e *Env) []*stats.Table {
	em := quality.DefaultEModel()
	t := &stats.Table{
		Title:   "E-model MOS under each strategy (from per-call average metrics)",
		Headers: []string{"strategy", "mean MOS", "p10 MOS", "frac MOS<3.0"},
	}
	m := quality.RTT
	for _, res := range []struct {
		name string
		r    *sim.Result
	}{
		{"default", e.Default()},
		{"via", e.ViaFor(m)},
		{"oracle", e.OracleFor(m)},
	} {
		var w stats.Welford
		var mosses []float64
		n := len(res.r.Values[quality.RTT])
		for i := 0; i < n; i++ {
			mos := em.MOS(quality.Metrics{
				RTTMs:    res.r.Values[quality.RTT][i],
				LossRate: res.r.Values[quality.Loss][i],
				JitterMs: res.r.Values[quality.Jitter][i],
			})
			w.Add(mos)
			mosses = append(mosses, mos)
		}
		if len(mosses) == 0 {
			continue
		}
		cdf := stats.NewCDF(mosses)
		t.AddRow(res.name,
			fmt.Sprintf("%.3f", w.Mean),
			fmt.Sprintf("%.3f", cdf.Quantile(0.10)),
			fmtPct(1-cdf.FractionAtOrAbove(3.0)))
	}
	return []*stats.Table{t}
}
