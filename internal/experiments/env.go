// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic substrate: the §2 measurement study
// (Table 1, Figs. 1-6), the oracle potential analysis (§3.2, Figs. 8-9),
// and the full evaluation of Via (§5, Figs. 12-18 plus the in-text
// statistics). Each experiment returns aligned text tables whose rows/series
// correspond to what the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Env is the shared experimental environment: one world, one trace, one
// simulator, plus a cache of strategy runs so figures that need the same
// counterfactual (e.g. "via optimizing RTT") don't recompute it.
//
// The cache has singleflight semantics: concurrent requests for the same
// key block on one in-flight computation, while requests for different
// keys proceed in parallel. Env.mu only guards the entry map — never a
// strategy replay — so independent experiments overlap fully.
type Env struct {
	Seed  uint64
	Calls int

	World  *netsim.World
	Trace  []trace.CallRecord
	Runner *sim.Runner

	mu    sync.Mutex
	cache map[string]*cacheEntry // guarded by mu
}

// cacheEntry is one singleflight slot: the first requester runs the
// strategy inside once; later requesters block on the same Once and then
// read res, which Once's happens-before edge publishes.
type cacheEntry struct {
	once sync.Once
	res  *sim.Result
}

// NewEnv builds the default environment: the standard world (150 ASes, 24
// relays), a 28-day trace with the given call volume, and the §5.1
// simulator.
func NewEnv(seed uint64, calls int) *Env {
	w := netsim.New(netsim.DefaultConfig(seed))
	recs := trace.NewGenerator(w, trace.DefaultConfig(seed+1, calls)).GenerateSlice()
	r := sim.NewRunner(w, sim.DefaultConfig(seed+2))
	r.Prepare(recs)
	return &Env{
		Seed:   seed,
		Calls:  calls,
		World:  w,
		Trace:  recs,
		Runner: r,
		cache:  make(map[string]*cacheEntry),
	}
}

// runCustom executes (or returns the cached result of) an arbitrary
// computation labeled by key with singleflight semantics: compute is
// invoked exactly once per key, and concurrent callers of the same key
// wait on that single in-flight run instead of recomputing or serializing
// unrelated work behind Env.mu.
func (e *Env) runCustom(key string, compute func() *sim.Result) *sim.Result {
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &cacheEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.res = compute()
	})
	return ent.res
}

// run executes (or returns the cached result of) a strategy labeled by key.
// The factory is invoked exactly once per key — strategies are stateful and
// must be fresh per run.
func (e *Env) run(key string, mk func() core.Strategy) *sim.Result {
	return e.runCustom(key, func() *sim.Result {
		return e.Runner.RunOne(mk(), e.Trace)
	})
}

// Default returns the always-direct baseline run.
func (e *Env) Default() *sim.Result {
	return e.run("default", func() core.Strategy { return core.DefaultStrategy{} })
}

// OracleFor returns the oracle run optimizing metric m.
func (e *Env) OracleFor(m quality.Metric) *sim.Result {
	return e.run("oracle/"+m.String(), func() core.Strategy {
		return core.NewOracle(e.World, m)
	})
}

// ViaFor returns the full-Via run optimizing metric m.
func (e *Env) ViaFor(m quality.Metric) *sim.Result {
	return e.run("via/"+m.String(), func() core.Strategy {
		return core.NewVia(core.DefaultViaConfig(m), e.World)
	})
}

// PredictOnlyFor returns the Strawman I run.
func (e *Env) PredictOnlyFor(m quality.Metric) *sim.Result {
	return e.run("predict/"+m.String(), func() core.Strategy {
		return core.NewPredictOnly(m, e.World)
	})
}

// ExploreOnlyFor returns the Strawman II run.
func (e *Env) ExploreOnlyFor(m quality.Metric) *sim.Result {
	return e.run("explore/"+m.String(), func() core.Strategy {
		return core.NewExploreOnly(m, 0.10, e.Seed+77)
	})
}

// ViaVariant runs Via with a modified configuration, cached under label.
func (e *Env) ViaVariant(label string, m quality.Metric, mod func(*core.ViaConfig)) *sim.Result {
	return e.run("via-"+label+"/"+m.String(), func() core.Strategy {
		cfg := core.DefaultViaConfig(m)
		if mod != nil {
			mod(&cfg)
		}
		return core.NewVia(cfg, e.World)
	})
}

// reduction is the paper's relative improvement of a PNR statistic,
// treatment vs the default baseline, in percent.
func reduction(base, treated float64) float64 {
	return quality.RelativeImprovement(base, treated)
}

// atLeastOneConservative computes the paper's conservative "at least one
// bad" PNR for a family of per-metric runs: optimize each metric
// individually, and report the WORST of the three resulting
// at-least-one-bad rates (§3.2).
func atLeastOneConservative(runs map[quality.Metric]*sim.Result) float64 {
	worst := 0.0
	for _, r := range runs {
		if v := r.PNR.AtLeastOneBadRate(); v > worst {
			worst = v
		}
	}
	return worst
}

// fmtPct renders a fraction as a percentage string.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// quantileImprovement compares strategy percentiles against the baseline
// percentiles (percentile-vs-percentile, as §5.2 prescribes to avoid
// per-call bias).
func quantileImprovement(base, treated *sim.Result, m quality.Metric, q float64) float64 {
	b := stats.Quantile(base.Values[m], q)
	a := stats.Quantile(treated.Values[m], q)
	return quality.RelativeImprovement(b, a)
}
