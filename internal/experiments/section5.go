package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig12a reproduces the headline comparison: PNR reduction of Via vs the
// two strawmen and the oracle, per metric and on the conservative
// at-least-one-bad criterion. Paper: Via 39-45% per metric (oracle 53%),
// 23% at-least-one (oracle 30%), strawmen well below.
func Fig12a(e *Env) []*stats.Table {
	def := e.Default()
	t := &stats.Table{
		Title:   "Fig 12a: PNR reduction vs default",
		Headers: []string{"criterion", "strawman-I", "strawman-II", "via", "oracle", "paper via", "paper oracle"},
	}
	families := map[string]func(quality.Metric) *sim.Result{
		"strawman-I":  e.PredictOnlyFor,
		"strawman-II": e.ExploreOnlyFor,
		"via":         e.ViaFor,
		"oracle":      e.OracleFor,
	}
	perMetricPaper := map[quality.Metric]string{
		quality.RTT: "45%", quality.Loss: "39%", quality.Jitter: "45%",
	}
	for _, m := range quality.AllMetrics() {
		base := def.PNR.Rate(m)
		row := []any{m.String()}
		for _, name := range []string{"strawman-I", "strawman-II", "via", "oracle"} {
			r := families[name](m)
			row = append(row, fmt.Sprintf("%.1f%%", reduction(base, r.PNR.Rate(m))))
		}
		row = append(row, perMetricPaper[m], "up to 53%")
		t.AddRow(row...)
	}
	// Conservative at-least-one.
	base := def.PNR.AtLeastOneBadRate()
	row := []any{"at-least-one"}
	for _, name := range []string{"strawman-I", "strawman-II", "via", "oracle"} {
		runs := map[quality.Metric]*sim.Result{}
		for _, m := range quality.AllMetrics() {
			runs[m] = families[name](m)
		}
		row = append(row, fmt.Sprintf("%.1f%%", reduction(base, atLeastOneConservative(runs))))
	}
	row = append(row, "23%", "30%")
	t.AddRow(row...)
	return []*stats.Table{t}
}

// Fig12b reproduces the percentile-vs-percentile improvements of Via over
// the default strategy (paper: 20-58% at the median, 20-57% at p90).
func Fig12b(e *Env) []*stats.Table {
	def := e.Default()
	t := &stats.Table{
		Title:   "Fig 12b: via improvement on percentiles (vs default)",
		Headers: []string{"metric", "p50", "p75", "p90", "p99", "paper p50", "paper p90"},
	}
	for _, m := range quality.AllMetrics() {
		via := e.ViaFor(m)
		t.AddRow(m.String(),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, via, m, 0.50)),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, via, m, 0.75)),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, via, m, 0.90)),
			fmt.Sprintf("%.1f%%", quantileImprovement(def, via, m, 0.99)),
			"20-58%", "20-57%")
	}
	return []*stats.Table{t}
}

// OptionMix reproduces the §5.2 in-text statistics: Via's split across
// bounce/transit/direct (paper: ~54% bounce, 38% transit, 8% direct) and
// the benefit of having transit relays at all.
func OptionMix(e *Env) []*stats.Table {
	t := &stats.Table{
		Title:   "§5.2: via option mix over eligible calls",
		Headers: []string{"metric optimized", "direct", "bounce", "transit", "paper"},
	}
	for _, m := range quality.AllMetrics() {
		via := e.ViaFor(m)
		d, b, tr := via.OptionShare()
		t.AddRow(m.String(), fmtPct(d), fmtPct(b), fmtPct(tr), "8% / 54% / 38%")
	}

	// Transit-vs-bounce: re-run Via with transit options excluded.
	t2 := &stats.Table{
		Title:   "§5.2: value of transit relaying (at-least-one-bad PNR)",
		Headers: []string{"variant", "PNR", "reduction vs default", "paper"},
	}
	def := e.Default().PNR.AtLeastOneBadRate()
	full := e.ViaFor(quality.RTT).PNR.AtLeastOneBadRate()
	// Exclude transit at the simulator level for a faithful comparison.
	excl := e.runWithFilter("via-bounceonly/rtt", quality.RTT, func(cands []netsim.Option) []netsim.Option {
		out := cands[:0:0]
		for _, o := range cands {
			if o.Kind != netsim.Transit {
				out = append(out, o)
			}
		}
		return out
	})
	t2.AddRow("bounce+transit", fmtPct(full), fmt.Sprintf("%.1f%%", reduction(def, full)), "")
	t2.AddRow("bounce only", fmtPct(excl.PNR.AtLeastOneBadRate()),
		fmt.Sprintf("%.1f%%", reduction(def, excl.PNR.AtLeastOneBadRate())),
		"transit+bounce has ~50% lower PNR on pairs using both")
	return []*stats.Table{t, t2}
}

// Fig13 reproduces the international/domestic split under default, Via and
// oracle (Via helps international calls slightly more).
func Fig13(e *Env) []*stats.Table {
	m := quality.RTT
	def, via, orc := e.Default(), e.ViaFor(m), e.OracleFor(m)
	t := &stats.Table{
		Title:   "Fig 13: at-least-one-bad PNR by call class (RTT-optimized)",
		Headers: []string{"class", "default", "via", "oracle", "via reduction"},
	}
	add := func(name string, d, v, o float64) {
		t.AddRow(name, fmtPct(d), fmtPct(v), fmtPct(o), fmt.Sprintf("%.1f%%", reduction(d, v)))
	}
	add("international",
		def.International.AtLeastOneBadRate(),
		via.International.AtLeastOneBadRate(),
		orc.International.AtLeastOneBadRate())
	add("domestic",
		def.Domestic.AtLeastOneBadRate(),
		via.Domestic.AtLeastOneBadRate(),
		orc.Domestic.AtLeastOneBadRate())
	return []*stats.Table{t}
}

// Fig14 dissects PNR by the worst countries: the paper's point is that Via
// lands closer to the oracle than to the default for most of them.
func Fig14(e *Env) []*stats.Table {
	var out []*stats.Table
	for _, m := range quality.AllMetrics() {
		def, via, orc := e.Default(), e.ViaFor(m), e.OracleFor(m)
		type row struct {
			c       string
			d, v, o float64
			calls   int64
		}
		var rows []row
		for c, p := range def.ByCountry {
			if p.Total < 800 {
				continue
			}
			vp, op := via.ByCountry[c], orc.ByCountry[c]
			if vp == nil || op == nil {
				continue
			}
			rows = append(rows, row{c, p.Rate(m), vp.Rate(m), op.Rate(m), p.Total})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 14 (%s): worst countries, default vs via vs oracle PNR", m),
			Headers: []string{"country", "calls", "default", "via", "oracle", "via closer to"},
		}
		closerOracle := 0
		n := 0
		for i, r := range rows {
			if i >= 10 {
				break
			}
			closer := "default"
			if r.d-r.v > r.v-r.o {
				closer = "oracle"
				closerOracle++
			}
			n++
			t.AddRow(r.c, r.calls, fmtPct(r.d), fmtPct(r.v), fmtPct(r.o), closer)
		}
		if n > 0 {
			t.AddRow("closer-to-oracle", fmt.Sprintf("%d/%d", closerOracle, n), "", "", "", "paper: most")
		}
		out = append(out, t)
	}
	return out
}

// Fig15 reproduces the design-choice ablation: adaptive CI-based top-k and
// upper-CI reward normalization each contribute (paper: at-least-one 24% vs
// 15% with fixed top-2; loss 44% vs 26%).
func Fig15(e *Env) []*stats.Table {
	def := e.Default()
	t := &stats.Table{
		Title:   "Fig 15: guided-exploration ablation (PNR reduction vs default)",
		Headers: []string{"criterion", "fixed-k2+naive-norm", "fixed-k2", "naive-norm", "via (adaptive+normalized)"},
	}
	variants := []struct {
		label string
		mod   func(*core.ViaConfig)
	}{
		{"fixedk2-naivenorm", func(c *core.ViaConfig) { c.FixedK = 2; c.NaiveNorm = true }},
		{"fixedk2", func(c *core.ViaConfig) { c.FixedK = 2 }},
		{"naivenorm", func(c *core.ViaConfig) { c.NaiveNorm = true }},
		{"full", func(c *core.ViaConfig) {}},
	}
	for _, m := range quality.AllMetrics() {
		base := def.PNR.Rate(m)
		row := []any{m.String()}
		for _, v := range variants {
			r := e.ViaVariant("f15-"+v.label, m, v.mod)
			row = append(row, fmt.Sprintf("%.1f%%", reduction(base, r.PNR.Rate(m))))
		}
		t.AddRow(row...)
	}
	base := def.PNR.AtLeastOneBadRate()
	row := []any{"at-least-one"}
	for _, v := range variants {
		runs := map[quality.Metric]*sim.Result{}
		for _, m := range quality.AllMetrics() {
			runs[m] = e.ViaVariant("f15-"+v.label, m, v.mod)
		}
		row = append(row, fmt.Sprintf("%.1f%%", reduction(base, atLeastOneConservative(runs))))
	}
	t.AddRow(row...)
	return []*stats.Table{t}
}

// Fig16 reproduces the budget sweep: budget-aware Via uses the budget far
// more efficiently than budget-unaware, reaching about half the full
// benefit at a 30% budget.
func Fig16(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.AtLeastOneBadRate()
	orc := e.OracleFor(m).PNR.AtLeastOneBadRate()
	budgets := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}
	t := &stats.Table{
		Title:   "Fig 16: at-least-one-bad PNR vs relaying budget (RTT-optimized)",
		Headers: []string{"budget", "budget-aware PNR", "aware relayed", "budget-unaware PNR", "unaware relayed", "oracle PNR"},
	}
	for _, b := range budgets {
		bb := b
		aware := e.ViaVariant(fmt.Sprintf("f16-aware-%.2f", b), m, func(c *core.ViaConfig) {
			c.Budget = bb
			c.BudgetAware = true
		})
		unaware := e.ViaVariant(fmt.Sprintf("f16-unaware-%.2f", b), m, func(c *core.ViaConfig) {
			c.Budget = bb
			c.BudgetAware = false
		})
		t.AddRow(b,
			fmtPct(aware.PNR.AtLeastOneBadRate()), fmtPct(aware.RelayedFraction()),
			fmtPct(unaware.PNR.AtLeastOneBadRate()), fmtPct(unaware.RelayedFraction()),
			fmtPct(orc))
	}
	t.AddRow("default", fmtPct(def), "", fmtPct(def), "", fmtPct(orc))
	return []*stats.Table{t}
}

// Fig17a reproduces the spatial granularity sweep: coarser than AS pair
// loses benefit; finer than AS pair gains nothing (coverage shrinks).
func Fig17a(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.Rate(m)
	t := &stats.Table{
		Title:   "Fig 17a: impact of spatial decision granularity (RTT)",
		Headers: []string{"granularity", "PNR", "reduction"},
	}
	world := e.World
	levels := []struct {
		label  string
		groups core.GroupFunc
	}{
		{"country-pair", core.CountryGroups(world)},
		{"as-pair (paper default)", core.ASPairGroups},
		{"sub-as x4", core.SubASGroups(4)},
		{"sub-as x16", core.SubASGroups(16)},
	}
	for _, l := range levels {
		g := l.groups
		r := e.ViaVariant("f17a-"+l.label, m, func(c *core.ViaConfig) { c.Groups = g })
		t.AddRow(l.label, fmtPct(r.PNR.Rate(m)), fmt.Sprintf("%.1f%%", reduction(def, r.PNR.Rate(m))))
	}
	return []*stats.Table{t}
}

// Fig17b reproduces the temporal granularity sweep: T=24h is near-optimal;
// much longer refresh goes stale.
func Fig17b(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.Rate(m)
	t := &stats.Table{
		Title:   "Fig 17b: impact of refresh period T (RTT)",
		Headers: []string{"T (hours)", "PNR", "reduction"},
	}
	for _, T := range []float64{6, 12, 24, 72, 168} {
		tt := T
		r := e.ViaVariant(fmt.Sprintf("f17b-%v", T), m, func(c *core.ViaConfig) { c.RefreshHours = tt })
		t.AddRow(T, fmtPct(r.PNR.Rate(m)), fmt.Sprintf("%.1f%%", reduction(def, r.PNR.Rate(m))))
	}
	return []*stats.Table{t}
}

// Fig17c reproduces the relay deployment sweep: removing the least-used
// half of the relays barely dents the benefit.
func Fig17c(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.Rate(m)
	full := e.ViaFor(m)

	// Rank relays by usage in the full run.
	type usage struct {
		id netsim.RelayID
		n  int64
	}
	var ranked []usage
	for i := 0; i < e.World.NumRelays(); i++ {
		id := netsim.RelayID(i)
		ranked = append(ranked, usage{id, full.RelayUsage[id]})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n < ranked[j].n })

	t := &stats.Table{
		Title:   "Fig 17c: PNR when the least-used relays are removed (RTT)",
		Headers: []string{"relays removed", "PNR", "reduction", "paper"},
	}
	t.AddRow("0%", fmtPct(full.PNR.Rate(m)), fmt.Sprintf("%.1f%%", reduction(def, full.PNR.Rate(m))), "")
	for _, frac := range []float64{0.25, 0.50, 0.75} {
		k := int(frac * float64(len(ranked)))
		excl := map[netsim.RelayID]bool{}
		for i := 0; i < k; i++ {
			excl[ranked[i].id] = true
		}
		r := e.runExcluding(fmt.Sprintf("f17c-%.0f", frac*100), m, excl)
		paper := ""
		if frac == 0.50 {
			paper = "little drop"
		}
		t.AddRow(fmtPct(frac), fmtPct(r.PNR.Rate(m)), fmt.Sprintf("%.1f%%", reduction(def, r.PNR.Rate(m))), paper)
	}
	return []*stats.Table{t}
}

// TomographyAccuracy reproduces the §5.3 in-text statistic: ~71% of
// predictions within 20% of actual, ~14% off by ≥50%.
func TomographyAccuracy(e *Env) []*stats.Table {
	// Build one window of realistic (sparse, few-sample) history: only 40%
	// of each pair's options get 2 samples each, the rest are coverage
	// holes tomography must stitch. Train the predictor on it, and compare
	// its predictions against the NEXT window's ground truth (prediction
	// is always about the future, so drift contributes to error).
	pairs := e.Runner.EligiblePairs()
	if len(pairs) > 150 {
		pairs = pairs[:150]
	}
	h := historyFromSparseSurvey(e, pairs, 1, 2, 0.4)
	pcfg := core.DefaultPredictorConfig()
	pcfg.TrainBuckets = 1
	pred := core.BuildPredictor(h, 1, e.World, pcfg)

	t := &stats.Table{
		Title:   "§5.3: tomography-based prediction accuracy (next-day RTT)",
		Headers: []string{"statistic", "value", "paper"},
	}
	total, within20, off50 := 0, 0, 0
	for _, pk := range pairs {
		for _, opt := range e.World.Options(pk.A, pk.B) {
			p, ok := pred.Predict(int32(pk.A), int32(pk.B), opt)
			if !ok {
				continue
			}
			truth := e.World.WindowMean(pk.A, pk.B, opt, 2).RTTMs
			if truth <= 0 {
				continue
			}
			relErr := abs(p.Mean[quality.RTT]-truth) / truth
			total++
			if relErr <= 0.20 {
				within20++
			}
			if relErr >= 0.50 {
				off50++
			}
		}
	}
	if total == 0 {
		t.AddRow("no predictions", "", "")
		return []*stats.Table{t}
	}
	t.AddRow("predictions evaluated", total, "")
	t.AddRow("within 20% of actual", fmtPct(float64(within20)/float64(total)), "71%")
	t.AddRow("error >= 50%", fmtPct(float64(off50)/float64(total)), "14%")
	return []*stats.Table{t}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
