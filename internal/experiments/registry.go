package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Experiment is one reproducible table/figure generator.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(*Env) []*stats.Table
	Order int
}

// Registry lists every trace-driven experiment by name (Fig 18 is separate:
// it runs the real-networking testbed and does not consume an Env).
func Registry() []Experiment {
	exps := []Experiment{
		{"table1", "dataset summary (Table 1)", Table1, 1},
		{"fig1", "PCR vs network metrics (Fig 1)", Fig1, 2},
		{"fig2", "metric CDFs and thresholds (Fig 2)", Fig2, 3},
		{"fig3", "pairwise metric correlation (Fig 3)", Fig3, 4},
		{"fig4", "international vs domestic (Fig 4)", Fig4, 5},
		{"fig5", "worst AS-pair contribution (Fig 5)", Fig5, 6},
		{"fig6", "persistence & prevalence (Fig 6)", Fig6, 7},
		{"fig8", "oracle potential (Fig 8)", Fig8, 8},
		{"fig9", "best-option persistence (Fig 9)", Fig9, 9},
		{"fig12a", "via vs strawmen vs oracle (Fig 12a)", Fig12a, 10},
		{"fig12b", "percentile improvements (Fig 12b)", Fig12b, 11},
		{"mix", "option mix & transit value (§5.2)", OptionMix, 12},
		{"fig13", "intl vs domestic under via (Fig 13)", Fig13, 13},
		{"fig14", "per-country dissection (Fig 14)", Fig14, 14},
		{"fig15", "guided-exploration ablation (Fig 15)", Fig15, 15},
		{"fig16", "budget sweep (Fig 16)", Fig16, 16},
		{"fig17a", "spatial granularity (Fig 17a)", Fig17a, 17},
		{"fig17b", "temporal granularity (Fig 17b)", Fig17b, 18},
		{"fig17c", "relay deployment (Fig 17c)", Fig17c, 19},
		{"tomo", "tomography prediction accuracy (§5.3)", TomographyAccuracy, 20},
		{"probes", "active-measurement extension (§7)", ActiveProbes, 21},
		{"mos", "thresholds vs packet-trace MOS (§2.2)", MOSValidation, 22},
		{"mosgain", "E-model MOS improvement under via", MOSImprovement, 23},
		{"coords", "Vivaldi coordinates vs history coverage (§6)", CoordinatesAccuracy, 24},
		{"cache", "client-side decision caching (§7)", DecisionCaching, 25},
		{"budgetmodels", "alternative budget models (§4.6)", BudgetModels, 26},
		{"losssweep", "loss-repair scheme sweep & bandit (NACK/RED/FEC)", LossSweep, 27},
		{"churnsweep", "mid-call churn: migrate-in-place vs drop/re-dial (§17)", ChurnSweep, 28},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Order < exps[j].Order })
	return exps
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
