package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/stats"
)

// DecisionCaching evaluates the §7 client-side decision cache: clients
// reuse a pair's relaying decision for a TTL instead of asking the
// controller per call. The table shows the controller-load saving (cache
// hit rate) against the staleness cost (PNR), quantifying the paper's
// claim that caching can cut control traffic with modest quality impact —
// until the TTL outgrows the timescale on which the best option moves
// (Fig. 9).
func DecisionCaching(e *Env) []*stats.Table {
	m := quality.RTT
	def := e.Default().PNR.Rate(m)
	t := &stats.Table{
		Title:   "§7 extension: client-side decision caching (RTT)",
		Headers: []string{"cache TTL (h)", "controller-load saved", "PNR", "reduction vs default"},
	}
	base := e.ViaFor(m)
	t.AddRow("none", "0%", fmtPct(base.PNR.Rate(m)),
		fmt.Sprintf("%.1f%%", reduction(def, base.PNR.Rate(m))))
	for _, ttl := range []float64{1, 6, 24, 96} {
		ttl := ttl
		key := fmt.Sprintf("cache-%v", ttl)
		var cached *core.Cached
		res := e.run(key, func() core.Strategy {
			cached = core.NewCached(core.NewVia(core.DefaultViaConfig(m), e.World), ttl)
			return cached
		})
		saved := "cached"
		if cached != nil {
			saved = fmtPct(cached.HitRate())
		}
		t.AddRow(ttl, saved, fmtPct(res.PNR.Rate(m)),
			fmt.Sprintf("%.1f%%", reduction(def, res.PNR.Rate(m))))
	}
	return []*stats.Table{t}
}
