package geo

import (
	"math"
	"testing"
)

func TestDistanceKnownPairs(t *testing.T) {
	ny := Point{40.7, -74.0}
	london := Point{51.5, -0.1}
	// NYC-London great circle is about 5570 km.
	if d := DistanceKm(ny, london); math.Abs(d-5570) > 100 {
		t.Errorf("NYC-London = %v km, want ~5570", d)
	}
	sg := Point{1.35, 103.8}
	syd := Point{-33.9, 151.2}
	// Singapore-Sydney is about 6300 km.
	if d := DistanceKm(sg, syd); math.Abs(d-6300) > 150 {
		t.Errorf("SIN-SYD = %v km, want ~6300", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	a := Point{10, 20}
	b := Point{-30, 140}
	if d := DistanceKm(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if DistanceKm(a, b) != DistanceKm(b, a) {
		t.Error("distance not symmetric")
	}
	// Antipodal points: half the circumference, ~20015 km.
	if d := DistanceKm(Point{0, 0}, Point{0, 180}); math.Abs(d-20015) > 50 {
		t.Errorf("antipodal = %v", d)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	pts := []Point{{40.7, -74}, {51.5, -0.1}, {1.35, 103.8}, {-33.9, 151.2}, {35.7, 139.7}}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				if DistanceKm(a, c) > DistanceKm(a, b)+DistanceKm(b, c)+1e-6 {
					t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestPropagationRTT(t *testing.T) {
	// 5570 km (NYC-London) should give ~56 ms theoretical RTT.
	if rtt := PropagationRTTMs(5570); math.Abs(rtt-55.7) > 0.1 {
		t.Errorf("propagation RTT = %v", rtt)
	}
	if PropagationRTTMs(0) != 0 {
		t.Error("zero distance should give zero RTT")
	}
}

func TestCountriesWellFormed(t *testing.T) {
	cs := Countries()
	if len(cs) < 30 {
		t.Fatalf("only %d countries", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Weight <= 0 {
			t.Errorf("%s: nonpositive weight", c.Code)
		}
		if c.Center.Lat < -90 || c.Center.Lat > 90 || c.Center.Lon < -180 || c.Center.Lon > 180 {
			t.Errorf("%s: bad coordinates %+v", c.Code, c.Center)
		}
	}
}

func TestCountriesReturnsCopy(t *testing.T) {
	a := Countries()
	a[0].Code = "XX"
	b := Countries()
	if b[0].Code == "XX" {
		t.Error("Countries returned shared state")
	}
}

func TestDatacenterSitesWellFormed(t *testing.T) {
	sites := DatacenterSites()
	if len(sites) < 20 {
		t.Fatalf("only %d sites", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("bad/duplicate site name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestNearestKOrderingAndBounds(t *testing.T) {
	sites := DatacenterSites()
	p := Point{51.5, -0.1} // London
	got := NearestK(p, sites, 4)
	if len(got) != 4 {
		t.Fatalf("got %d results", len(got))
	}
	if sites[got[0]].Name != "uk-south" {
		t.Errorf("nearest to London = %s", sites[got[0]].Name)
	}
	for i := 1; i < len(got); i++ {
		d0 := DistanceKm(p, sites[got[i-1]].Center)
		d1 := DistanceKm(p, sites[got[i]].Center)
		if d1 < d0 {
			t.Error("NearestK not ordered by distance")
		}
	}
	all := NearestK(p, sites, 1000)
	if len(all) != len(sites) {
		t.Errorf("oversized k returned %d, want %d", len(all), len(sites))
	}
}

func TestNearestKSingapore(t *testing.T) {
	sites := DatacenterSites()
	got := NearestK(Point{1.35, 103.8}, sites, 1)
	if sites[got[0]].Name != "southeastasia" {
		t.Errorf("nearest to Singapore = %s", sites[got[0]].Name)
	}
}
