// Package geo provides the geographic substrate for the synthetic Internet
// model: a set of countries with representative coordinates, datacenter
// sites for the managed overlay's relays, great-circle distance, and
// nearest-K queries. Distances feed the propagation-delay component of the
// path performance model in internal/netsim.
package geo

import (
	"math"
	"sort"
)

// Point is a location on the globe in degrees.
type Point struct {
	Lat, Lon float64
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two points using the
// haversine formula.
func DistanceKm(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationRTTMs returns the theoretical round-trip time in milliseconds
// over a fiber path of the given great-circle length: light in fiber travels
// at roughly 2/3 c, i.e. ~200 km/ms one way, so RTT ≈ distance / 100 km/ms.
func PropagationRTTMs(distanceKm float64) float64 {
	return distanceKm / 100.0
}

// Country is a country or region participating in the synthetic world.
type Country struct {
	Code   string // ISO-like two-letter code
	Name   string
	Center Point
	// Weight biases how much call traffic originates here (relative units).
	Weight float64
}

// Countries returns the built-in country set, ordered by code. The set spans
// every inhabited continent so that international paths cover the full range
// of distances the paper's dataset saw (126 countries; we model a
// representative 36 — the algorithms only ever see AS identifiers, so the
// country count affects diversity, not correctness).
func Countries() []Country {
	out := make([]Country, len(builtinCountries))
	copy(out, builtinCountries)
	return out
}

var builtinCountries = []Country{
	{"AR", "Argentina", Point{-34.6, -58.4}, 1.0},
	{"AU", "Australia", Point{-33.9, 151.2}, 1.5},
	{"BR", "Brazil", Point{-23.5, -46.6}, 2.5},
	{"CA", "Canada", Point{43.7, -79.4}, 1.8},
	{"CL", "Chile", Point{-33.4, -70.7}, 0.6},
	{"CN", "China", Point{31.2, 121.5}, 3.0},
	{"DE", "Germany", Point{52.5, 13.4}, 3.0},
	{"EG", "Egypt", Point{30.0, 31.2}, 1.0},
	{"ES", "Spain", Point{40.4, -3.7}, 1.6},
	{"FR", "France", Point{48.9, 2.3}, 2.4},
	{"GB", "United Kingdom", Point{51.5, -0.1}, 3.0},
	{"ID", "Indonesia", Point{-6.2, 106.8}, 1.6},
	{"IN", "India", Point{19.1, 72.9}, 4.0},
	{"IT", "Italy", Point{41.9, 12.5}, 1.6},
	{"JP", "Japan", Point{35.7, 139.7}, 2.2},
	{"KE", "Kenya", Point{-1.3, 36.8}, 0.6},
	{"KR", "South Korea", Point{37.6, 127.0}, 1.4},
	{"LK", "Sri Lanka", Point{6.9, 79.9}, 0.5},
	{"MX", "Mexico", Point{19.4, -99.1}, 1.5},
	{"MY", "Malaysia", Point{3.1, 101.7}, 0.9},
	{"NG", "Nigeria", Point{6.5, 3.4}, 1.2},
	{"NL", "Netherlands", Point{52.4, 4.9}, 1.3},
	{"PH", "Philippines", Point{14.6, 121.0}, 1.4},
	{"PK", "Pakistan", Point{24.9, 67.0}, 1.4},
	{"PL", "Poland", Point{52.2, 21.0}, 1.1},
	{"RU", "Russia", Point{55.8, 37.6}, 2.0},
	{"SA", "Saudi Arabia", Point{24.7, 46.7}, 0.9},
	{"SE", "Sweden", Point{59.3, 18.1}, 0.8},
	{"SG", "Singapore", Point{1.35, 103.8}, 1.0},
	{"TH", "Thailand", Point{13.8, 100.5}, 1.1},
	{"TR", "Turkey", Point{41.0, 29.0}, 1.3},
	{"UA", "Ukraine", Point{50.5, 30.5}, 0.9},
	{"US", "United States", Point{40.7, -74.0}, 5.0},
	{"VN", "Vietnam", Point{10.8, 106.7}, 1.0},
	{"ZA", "South Africa", Point{-26.2, 28.0}, 0.9},
	{"AE", "United Arab Emirates", Point{25.2, 55.3}, 0.8},
}

// DatacenterSite is a location hosting a managed-overlay relay.
type DatacenterSite struct {
	Name   string
	Center Point
}

// DatacenterSites returns the built-in relay site set: two dozen locations
// mirroring where the large cloud providers operate regions, all treated as
// belonging to one AS connected by a private backbone (as in the paper,
// where all Skype relays live in a single AS).
func DatacenterSites() []DatacenterSite {
	out := make([]DatacenterSite, len(builtinSites))
	copy(out, builtinSites)
	return out
}

var builtinSites = []DatacenterSite{
	{"us-east", Point{38.9, -77.0}},
	{"us-west", Point{37.4, -122.1}},
	{"us-central", Point{41.9, -87.6}},
	{"us-south", Point{29.4, -98.5}},
	{"canada-central", Point{43.7, -79.4}},
	{"brazil-south", Point{-23.5, -46.6}},
	{"europe-west", Point{52.4, 4.9}},
	{"europe-north", Point{53.3, -6.3}},
	{"uk-south", Point{51.5, -0.1}},
	{"france-central", Point{48.9, 2.3}},
	{"germany-west", Point{50.1, 8.7}},
	{"sweden-central", Point{59.3, 18.1}},
	{"uae-north", Point{25.2, 55.3}},
	{"southafrica-north", Point{-26.2, 28.0}},
	{"india-west", Point{19.1, 72.9}},
	{"india-south", Point{13.1, 80.3}},
	{"southeastasia", Point{1.35, 103.8}},
	{"eastasia", Point{22.3, 114.2}},
	{"japan-east", Point{35.7, 139.7}},
	{"korea-central", Point{37.6, 127.0}},
	{"australia-east", Point{-33.9, 151.2}},
	{"australia-southeast", Point{-37.8, 145.0}},
	{"israel-central", Point{32.1, 34.8}},
	{"mexico-central", Point{19.4, -99.1}},
}

// NearestK returns the indices of the k sites closest to p, ordered from
// nearest to farthest. If k exceeds the site count, all indices are
// returned.
func NearestK(p Point, sites []DatacenterSite, k int) []int {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(sites))
	for i, s := range sites {
		cands[i] = cand{i, DistanceKm(p, s.Center)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
