package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameV3Unmarshal hammers the decoder with v3-shaped datagrams. The
// relay read loop feeds it raw UDP payloads from unauthenticated sources,
// so malformed tokens, truncated token fields, and magic/version
// confusion must all come back as ErrFrame, and anything accepted must
// round-trip with the token preserved exactly.
func FuzzFrameV3Unmarshal(f *testing.F) {
	var valid Frame
	valid.Session = 42
	valid.Kind = KindMedia
	valid.Repair = 3
	valid.Token = Token{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	valid.Payload = []byte("media")
	wire := valid.Marshal(nil)
	f.Add(wire)
	f.Add(wire[:12])            // magic+session+kind+repair, token cut off
	f.Add(wire[:12+TokenLen-1]) // token truncated by one byte
	f.Add(wire[:12+TokenLen])   // token complete, route count missing

	var keepalive Frame
	keepalive.Session = 7
	keepalive.Kind = KindKeepalive
	keepalive.Token = Token{0xff}
	f.Add(keepalive.Marshal(nil))

	// v3 magic glued onto a v1-length body.
	short := append([]byte(nil), wire...)
	short[1] = 0x41
	f.Add(short)
	long := append([]byte(nil), valid.Marshal(nil)...)
	long[1] = 0x43
	f.Add(long[:13])

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.Unmarshal(data); err != nil {
			if err != ErrFrame {
				t.Fatalf("non-ErrFrame error from Unmarshal: %v", err)
			}
			return
		}
		if len(fr.Route) > MaxHops || len(fr.Reply) > MaxHops {
			t.Fatalf("accepted %d/%d hops past MaxHops", len(fr.Route), len(fr.Reply))
		}
		re := fr.Marshal(nil)
		var fr2 Frame
		if err := fr2.Unmarshal(re); err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Session != fr.Session || fr2.Kind != fr.Kind ||
			fr2.Repair != fr.Repair || fr2.Token != fr.Token ||
			len(fr2.Route) != len(fr.Route) || len(fr2.Reply) != len(fr.Reply) ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v vs %+v", fr, fr2)
		}
	})
}

// FuzzPathChallengeParse exercises the path-challenge payload parser.
// Challenges arrive inside frames from arbitrary sources; the parser must
// reject every length but the fixed one with ErrPathChallenge and must
// preserve accepted payloads bit-exactly (the responder echoes them).
func FuzzPathChallengeParse(f *testing.F) {
	c := PathChallenge{Nonce: 0x0102030405060708, Token: Token{0xaa, 0xbb}}
	wire := c.Marshal(nil)
	f.Add(wire)
	f.Add(wire[:7])
	f.Add(append(bytes.Clone(wire), 0xcc))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var pc PathChallenge
		if err := pc.Unmarshal(data); err != nil {
			if err != ErrPathChallenge {
				t.Fatalf("non-ErrPathChallenge error: %v", err)
			}
			if len(data) == PathChallengeLen {
				t.Fatalf("rejected a fixed-size payload: %x", data)
			}
			return
		}
		if len(data) != PathChallengeLen {
			t.Fatalf("accepted %d-byte payload", len(data))
		}
		re := pc.Marshal(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("echo would mutate payload: %x vs %x", re, data)
		}
	})
}
