package transport

import (
	"repro/internal/netsim"
	"repro/internal/quality"
)

// The controller's HTTP API (JSON over POST unless noted):
//
//	POST /v1/relays/register — RegisterRelayRequest → RegisterRelayResponse
//	GET  /v1/relays          — RelayListResponse
//	POST /v1/choose          — ChooseRequest → ChooseResponse
//	POST /v1/report          — ReportRequest → ReportResponse
//	GET  /v1/stats           — StatsResponse
//	GET  /v1/health          — HealthResponse

// RegisterRelayRequest announces a relay's media address to the controller.
// Heartbeats re-send it periodically; Draining marks a relay in
// maintenance drain, which the controller excludes from candidate
// enumeration while existing calls migrate off it (DESIGN.md §17).
type RegisterRelayRequest struct {
	RelayID  netsim.RelayID `json:"relay_id"`
	Addr     string         `json:"addr"` // host:port of the relay's UDP socket
	Draining bool           `json:"draining,omitempty"`
}

// RegisterRelayResponse acknowledges registration.
type RegisterRelayResponse struct {
	OK bool `json:"ok"`
}

// RelayInfo describes one registered relay.
type RelayInfo struct {
	RelayID netsim.RelayID `json:"relay_id"`
	Addr    string         `json:"addr"`
}

// RelayListResponse lists registered relays.
type RelayListResponse struct {
	Relays []RelayInfo `json:"relays"`
}

// WireOption is netsim.Option in JSON-friendly form. It is embedded in
// durable WAL records, so its schema may evolve only by appending
// optional fields.
//
//via:walrecord
type WireOption struct {
	Kind string         `json:"kind"` // "direct" | "bounce" | "transit"
	R1   netsim.RelayID `json:"r1,omitempty"`
	R2   netsim.RelayID `json:"r2,omitempty"`
}

// ToWireOption converts an option for the wire.
func ToWireOption(o netsim.Option) WireOption {
	w := WireOption{Kind: o.Kind.String()}
	switch o.Kind {
	case netsim.Bounce:
		w.R1 = o.R1
	case netsim.Transit:
		w.R1, w.R2 = o.R1, o.R2
	}
	return w
}

// Option converts back from wire form. Unknown kinds map to direct.
func (w WireOption) Option() netsim.Option {
	switch w.Kind {
	case "bounce":
		return netsim.BounceOption(w.R1)
	case "transit":
		return netsim.TransitOption(w.R1, w.R2)
	default:
		return netsim.DirectOption()
	}
}

// ChooseRequest asks the controller to pick a relaying option for a call.
type ChooseRequest struct {
	Src        int32        `json:"src"` // caller's group (AS analogue)
	Dst        int32        `json:"dst"`
	Candidates []WireOption `json:"candidates"`
	// RepairCandidates lists the loss-repair schemes the caller supports
	// ("none", "nack", "red", "fec-4", ...). Empty means a repair-unaware
	// client; the controller then skips the repair bandit entirely, which
	// keeps legacy request streams replaying bit-identically.
	RepairCandidates []string `json:"repair_candidates,omitempty"`
}

// ChooseResponse carries the controller's decision.
type ChooseResponse struct {
	Option WireOption `json:"option"`
	// Repair is the loss-repair scheme the bandit picked for this call
	// (empty when the request offered no repair candidates).
	Repair string `json:"repair,omitempty"`
}

// WireMetrics is quality.Metrics for the wire. It is embedded in durable
// WAL records, so its schema may evolve only by appending optional
// fields.
//
//via:walrecord
type WireMetrics struct {
	RTTMs    float64 `json:"rtt_ms"`
	LossRate float64 `json:"loss_rate"`
	JitterMs float64 `json:"jitter_ms"`
}

// ToWireMetrics converts metrics for the wire.
func ToWireMetrics(m quality.Metrics) WireMetrics {
	return WireMetrics{RTTMs: m.RTTMs, LossRate: m.LossRate, JitterMs: m.JitterMs}
}

// Metrics converts back.
func (w WireMetrics) Metrics() quality.Metrics {
	return quality.Metrics{RTTMs: w.RTTMs, LossRate: w.LossRate, JitterMs: w.JitterMs}
}

// ReportRequest pushes one call's measured performance to the controller.
type ReportRequest struct {
	Src     int32       `json:"src"`
	Dst     int32       `json:"dst"`
	Option  WireOption  `json:"option"`
	Metrics WireMetrics `json:"metrics"`
	// Repair names the loss-repair scheme the call ran with (empty for
	// repair-unaware clients); the metrics are post-repair residuals.
	Repair string `json:"repair,omitempty"`
	// DurationSec is the call length used for redundancy-budget charging
	// (0 → controller default).
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	OK bool `json:"ok"`
}

// StatsResponse summarizes the controller's state (diagnostics).
type StatsResponse struct {
	Relays  int   `json:"relays"`
	Reports int64 `json:"reports"`
	Chooses int64 `json:"chooses"`
	Panics  int64 `json:"panics,omitempty"` // recovered handler panics
}

// HealthResponse is the controller's liveness probe (GET /v1/health and
// GET /v1/livez).
type HealthResponse struct {
	OK        bool    `json:"ok"`
	Relays    int     `json:"relays"` // live (heartbeat-fresh) relays
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
	State     string  `json:"state,omitempty"` // replaying | standby | ready
}

// ReadyResponse is the readiness probe (GET /v1/readyz). OK is true only in
// the "ready" state; a controller still replaying its WAL or running as a
// warm standby answers 503 with the state so load balancers and the testbed
// don't route decision traffic to it.
type ReadyResponse struct {
	OK         bool   `json:"ok"`
	State      string `json:"state"` // replaying | standby | ready
	Term       uint64 `json:"term"`
	AppliedLSN uint64 `json:"applied_lsn"`
}

// LeaseResponse describes the controller's leadership lease
// (GET /v1/lease): the current term, role, and WAL positions a standby
// needs to decide where to tail from.
type LeaseResponse struct {
	Term       uint64 `json:"term"`
	Role       string `json:"role"`  // primary | standby
	State      string `json:"state"` // replaying | standby | ready
	FirstLSN   uint64 `json:"first_lsn"`
	LastLSN    uint64 `json:"last_lsn"`
	DurableLSN uint64 `json:"durable_lsn"`
}

// SnapshotResponse acknowledges a forced snapshot (POST /v1/admin/snapshot).
type SnapshotResponse struct {
	OK    bool   `json:"ok"`
	LSN   uint64 `json:"lsn"` // applied LSN the snapshot covers
	Bytes int64  `json:"bytes"`
}

// PromoteResponse acknowledges a standby promotion (POST /v1/promote).
// Promoting a server that is already primary is a no-op and reports the
// unchanged term.
type PromoteResponse struct {
	OK   bool   `json:"ok"`
	Term uint64 `json:"term"`
	Role string `json:"role"`
}

// TopKEntry is one pruned candidate with its prediction (diagnostics).
type TopKEntry struct {
	Option  WireOption `json:"option"`
	Mean    float64    `json:"mean"`
	SEM     float64    `json:"sem"`
	Samples int64      `json:"samples"`
	Tomo    bool       `json:"tomography"`
}

// TopKResponse is the controller's current pruned candidate set for a pair
// (GET /v1/topk?src=..&dst=..&metric=..).
type TopKResponse struct {
	Src    int32       `json:"src"`
	Dst    int32       `json:"dst"`
	Metric string      `json:"metric"`
	TopK   []TopKEntry `json:"topk"`
}

// BudgetDigestResponse is one shard's §4.6 benefit-percentile digest (GET
// /v1/budget/digest): the local sample count, the local threshold once
// warmed up (n >= 20), and the P² marker sketch — five (height, position)
// points approximating the local benefit CDF — that lets the router merge
// shards by inverting the sample-weighted mixture CDF instead of averaging
// thresholds. OK is false when the strategy runs without a budget.
type BudgetDigestResponse struct {
	OK        bool    `json:"ok"`
	N         int64   `json:"n"`
	Threshold float64 `json:"threshold"`
	// P is the target quantile the estimator tracks (1 - Budget).
	P float64 `json:"p,omitempty"`
	// Q and Pos are the P² marker heights and 1-based marker positions;
	// meaningful once N >= 5 (before that the estimator buffers raw
	// samples and the sketch is sent zeroed, signalled by P == 0).
	Q   [5]float64 `json:"q"`
	Pos [5]float64 `json:"pos"`
}

// BudgetMergedRequest installs the fleet-merged §4.6 budget threshold on a
// shard (POST /v1/budget/merged). Durable shards log the install before
// applying it, so WAL replay reproduces the same gate decisions.
type BudgetMergedRequest struct {
	N         int64   `json:"n"`
	Threshold float64 `json:"threshold"`
}

// BudgetMergedResponse acknowledges a merged-threshold install.
type BudgetMergedResponse struct {
	OK bool `json:"ok"`
}
