package transport

import (
	"repro/internal/netsim"
	"repro/internal/quality"
)

// The controller's HTTP API (JSON over POST unless noted):
//
//	POST /v1/relays/register — RegisterRelayRequest → RegisterRelayResponse
//	GET  /v1/relays          — RelayListResponse
//	POST /v1/choose          — ChooseRequest → ChooseResponse
//	POST /v1/report          — ReportRequest → ReportResponse
//	GET  /v1/stats           — StatsResponse
//	GET  /v1/health          — HealthResponse

// RegisterRelayRequest announces a relay's media address to the controller.
type RegisterRelayRequest struct {
	RelayID netsim.RelayID `json:"relay_id"`
	Addr    string         `json:"addr"` // host:port of the relay's UDP socket
}

// RegisterRelayResponse acknowledges registration.
type RegisterRelayResponse struct {
	OK bool `json:"ok"`
}

// RelayInfo describes one registered relay.
type RelayInfo struct {
	RelayID netsim.RelayID `json:"relay_id"`
	Addr    string         `json:"addr"`
}

// RelayListResponse lists registered relays.
type RelayListResponse struct {
	Relays []RelayInfo `json:"relays"`
}

// WireOption is netsim.Option in JSON-friendly form.
type WireOption struct {
	Kind string         `json:"kind"` // "direct" | "bounce" | "transit"
	R1   netsim.RelayID `json:"r1,omitempty"`
	R2   netsim.RelayID `json:"r2,omitempty"`
}

// ToWireOption converts an option for the wire.
func ToWireOption(o netsim.Option) WireOption {
	w := WireOption{Kind: o.Kind.String()}
	switch o.Kind {
	case netsim.Bounce:
		w.R1 = o.R1
	case netsim.Transit:
		w.R1, w.R2 = o.R1, o.R2
	}
	return w
}

// Option converts back from wire form. Unknown kinds map to direct.
func (w WireOption) Option() netsim.Option {
	switch w.Kind {
	case "bounce":
		return netsim.BounceOption(w.R1)
	case "transit":
		return netsim.TransitOption(w.R1, w.R2)
	default:
		return netsim.DirectOption()
	}
}

// ChooseRequest asks the controller to pick a relaying option for a call.
type ChooseRequest struct {
	Src        int32        `json:"src"` // caller's group (AS analogue)
	Dst        int32        `json:"dst"`
	Candidates []WireOption `json:"candidates"`
}

// ChooseResponse carries the controller's decision.
type ChooseResponse struct {
	Option WireOption `json:"option"`
}

// WireMetrics is quality.Metrics for the wire.
type WireMetrics struct {
	RTTMs    float64 `json:"rtt_ms"`
	LossRate float64 `json:"loss_rate"`
	JitterMs float64 `json:"jitter_ms"`
}

// ToWireMetrics converts metrics for the wire.
func ToWireMetrics(m quality.Metrics) WireMetrics {
	return WireMetrics{RTTMs: m.RTTMs, LossRate: m.LossRate, JitterMs: m.JitterMs}
}

// Metrics converts back.
func (w WireMetrics) Metrics() quality.Metrics {
	return quality.Metrics{RTTMs: w.RTTMs, LossRate: w.LossRate, JitterMs: w.JitterMs}
}

// ReportRequest pushes one call's measured performance to the controller.
type ReportRequest struct {
	Src     int32       `json:"src"`
	Dst     int32       `json:"dst"`
	Option  WireOption  `json:"option"`
	Metrics WireMetrics `json:"metrics"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	OK bool `json:"ok"`
}

// StatsResponse summarizes the controller's state (diagnostics).
type StatsResponse struct {
	Relays  int   `json:"relays"`
	Reports int64 `json:"reports"`
	Chooses int64 `json:"chooses"`
	Panics  int64 `json:"panics,omitempty"` // recovered handler panics
}

// HealthResponse is the controller's liveness probe (GET /v1/health).
type HealthResponse struct {
	OK        bool    `json:"ok"`
	Relays    int     `json:"relays"` // live (heartbeat-fresh) relays
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
}

// TopKEntry is one pruned candidate with its prediction (diagnostics).
type TopKEntry struct {
	Option  WireOption `json:"option"`
	Mean    float64    `json:"mean"`
	SEM     float64    `json:"sem"`
	Samples int64      `json:"samples"`
	Tomo    bool       `json:"tomography"`
}

// TopKResponse is the controller's current pruned candidate set for a pair
// (GET /v1/topk?src=..&dst=..&metric=..).
type TopKResponse struct {
	Src    int32       `json:"src"`
	Dst    int32       `json:"dst"`
	Metric string      `json:"metric"`
	TopK   []TopKEntry `json:"topk"`
}
