// Package transport defines the wire formats shared by the testbed's media
// and control planes:
//
//   - Frame: the media-plane source-routing envelope. The caller writes the
//     full relay route (zero hops = direct, one = bounce, two = transit)
//     plus the reply route the callee should use; each relay pops the next
//     hop and forwards. This is how Via's clients reach a *specific*
//     relay (§3.1: "the caller can reach these relays by explicitly
//     addressing the particular relay(s)").
//
//   - The JSON request/response types of the controller's HTTP API
//     (measurement reports in, relay selections out — the two exchanges
//     §7 budgets per call).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// frameMagic guards against stray datagrams (wire v1: no repair byte).
const frameMagic = 0x5641 // "VA"

// frameMagicV2 marks wire v2, which inserts a repair-scheme byte after
// the kind. v1 frames are decoded unchanged (Repair = 0), and Marshal
// emits v1 whenever Repair is zero, so a repair-unaware build and this
// one produce byte-identical traffic for unrepaired calls.
const frameMagicV2 = 0x5642 // "VB"

// frameMagicV3 marks wire v3, which inserts the repair byte (as in v2)
// plus a TokenLen-byte opaque session token after it. The token lets
// relays identify a session independently of its source address, which
// is what makes mid-call NAT rebinding survivable (DESIGN.md §17).
// Marshal emits v3 only when the token is nonzero, so peers that never
// negotiate a token keep producing v1/v2 traffic byte-identically.
const frameMagicV3 = 0x5643 // "VC"

// TokenLen is the size of the opaque per-call session token carried by
// wire v3 frames. 128 bits: unguessable by an off-path attacker, cheap
// to compare.
const TokenLen = 16

// Token is the opaque per-call session token. The zero value means "no
// token" and keeps the frame on wire v1/v2.
type Token [TokenLen]byte

// IsZero reports whether the token is unset.
func (t Token) IsZero() bool { return t == Token{} }

// MaxHops bounds the route length (direct=0, bounce=1, transit=2).
const MaxHops = 4

// Frame is the media envelope: the remaining forward route, the route the
// peer should use to reply, and the opaque payload (an RTP packet or a
// receiver report).
//
// Unmarshal stores the routes in a fixed backing array inside the Frame,
// so decoding allocates nothing; consequently a Frame must not be copied
// by value after Unmarshal (the copy's slices alias the original).
type Frame struct {
	Session uint64
	Kind    uint8 // application-defined payload discriminator
	// Repair is the loss-repair scheme byte (rtp.Scheme wire form). Zero
	// means plain forwarding; nonzero values ride the v2 header. Relays
	// forward it opaquely.
	Repair uint8
	// Token is the opaque mobility token (wire v3). Zero means the call
	// did not negotiate one; relays then fall back to address-pinned
	// behavior and Marshal stays on v1/v2.
	Token Token
	// Route holds the remaining forwarding targets. The packet's next stop
	// is Route[0]; a relay pops it and sends the rest onward. Empty means
	// the packet is at its final destination.
	Route []netip
	// Reply is the route the receiver should use for traffic back to the
	// sender (already oriented from the receiver's perspective).
	Reply []netip
	// Payload aliases the decode buffer.
	Payload []byte

	// hopBuf backs Route (first MaxHops) and Reply (rest) after Unmarshal.
	hopBuf [2 * MaxHops]netip
}

// PayloadKind values used by the testbed clients.
const (
	KindMedia  = 1 // RTP media packet
	KindReport = 2 // receiver report
	KindNack   = 3 // rtp.NACKRequest: retransmit plea, receiver → sender
	KindFEC    = 4 // rtp.FECPacket: XOR parity over a media group

	// Mobility kinds (DESIGN.md §17). These travel with an empty forward
	// route when addressed to the relay itself: the relay consumes them
	// instead of forwarding.
	KindKeepalive     = 5 // empty payload; refreshes the relay's idle TTL
	KindPathChallenge = 6 // PathChallenge: relay → new source address
	KindPathResponse  = 7 // PathChallenge echoed: client → relay
	KindDrain         = 8 // relay → endpoints: migrate off this relay
)

// netip is a compact IPv4 address + port.
type netip struct {
	IP   [4]byte
	Port uint16
}

const netipLen = 6

// ErrFrame reports a malformed frame.
var ErrFrame = errors.New("transport: malformed frame")

// ToWireAddr converts a *net.UDPAddr (IPv4) into wire form.
func ToWireAddr(a *net.UDPAddr) ([6]byte, error) {
	var out [6]byte
	ip4 := a.IP.To4()
	if ip4 == nil {
		return out, fmt.Errorf("transport: %v is not IPv4", a.IP)
	}
	copy(out[:4], ip4)
	binary.BigEndian.PutUint16(out[4:], uint16(a.Port))
	return out, nil
}

// FromWireAddr converts wire form back into a UDP address.
func FromWireAddr(b [6]byte) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(b[0], b[1], b[2], b[3]),
		Port: int(binary.BigEndian.Uint16(b[4:])),
	}
}

// SetRoute assigns the forward route from UDP addresses.
func (f *Frame) SetRoute(addrs []*net.UDPAddr) error {
	return setHops(&f.Route, addrs)
}

// SetReply assigns the reply route from UDP addresses.
func (f *Frame) SetReply(addrs []*net.UDPAddr) error {
	return setHops(&f.Reply, addrs)
}

func setHops(dst *[]netip, addrs []*net.UDPAddr) error {
	if len(addrs) > MaxHops {
		return fmt.Errorf("transport: %d hops exceeds max %d", len(addrs), MaxHops)
	}
	out := make([]netip, len(addrs))
	for i, a := range addrs {
		w, err := ToWireAddr(a)
		if err != nil {
			return err
		}
		copy(out[i].IP[:], w[:4])
		out[i].Port = binary.BigEndian.Uint16(w[4:])
	}
	*dst = out
	return nil
}

// NextHop returns the next forwarding target, or nil if the frame is at its
// final destination.
func (f *Frame) NextHop() *net.UDPAddr {
	if len(f.Route) == 0 {
		return nil
	}
	h := f.Route[0]
	return &net.UDPAddr{IP: net.IPv4(h.IP[0], h.IP[1], h.IP[2], h.IP[3]), Port: int(h.Port)}
}

// NextHopInto fills a with the next forwarding target, reusing a's IP
// backing storage so the forwarding hot path allocates nothing. It
// reports false when the frame is at its final destination.
func (f *Frame) NextHopInto(a *net.UDPAddr) bool {
	if len(f.Route) == 0 {
		return false
	}
	h := f.Route[0]
	a.IP = append(a.IP[:0], h.IP[:]...)
	a.Port = int(h.Port)
	a.Zone = ""
	return true
}

// PopHop removes the next forwarding target (relay-side).
func (f *Frame) PopHop() {
	if len(f.Route) > 0 {
		f.Route = f.Route[1:]
	}
}

// ReplyAddrs returns the reply route as UDP addresses.
func (f *Frame) ReplyAddrs() []*net.UDPAddr {
	out := make([]*net.UDPAddr, len(f.Reply))
	for i, h := range f.Reply {
		out[i] = &net.UDPAddr{IP: net.IPv4(h.IP[0], h.IP[1], h.IP[2], h.IP[3]), Port: int(h.Port)}
	}
	return out
}

// Marshal appends the frame's wire form to dst.
// Layout v1: magic(2) session(8) kind(1) nRoute(1) route(6·n) nReply(1)
// reply(6·n) payload. Layout v2 inserts repair(1) after kind(1) and is
// emitted only when Repair is nonzero. Layout v3 inserts repair(1) and
// token(16) after kind(1) and is emitted only when Token is nonzero, so
// token-less calls stay byte-identical to a v2-era build.
func (f *Frame) Marshal(dst []byte) []byte {
	var h [13 + TokenLen]byte
	var n int
	switch {
	case !f.Token.IsZero():
		binary.BigEndian.PutUint16(h[0:2], frameMagicV3)
		binary.BigEndian.PutUint64(h[2:10], f.Session)
		h[10] = f.Kind
		h[11] = f.Repair
		copy(h[12:12+TokenLen], f.Token[:])
		h[12+TokenLen] = byte(len(f.Route))
		n = 13 + TokenLen
	case f.Repair != 0:
		binary.BigEndian.PutUint16(h[0:2], frameMagicV2)
		binary.BigEndian.PutUint64(h[2:10], f.Session)
		h[10] = f.Kind
		h[11] = f.Repair
		h[12] = byte(len(f.Route))
		n = 13
	default:
		binary.BigEndian.PutUint16(h[0:2], frameMagic)
		binary.BigEndian.PutUint64(h[2:10], f.Session)
		h[10] = f.Kind
		h[11] = byte(len(f.Route))
		n = 12
	}
	dst = append(dst, h[:n]...)
	for _, hop := range f.Route {
		dst = append(dst, hop.IP[:]...)
		dst = binary.BigEndian.AppendUint16(dst, hop.Port)
	}
	dst = append(dst, byte(len(f.Reply)))
	for _, hop := range f.Reply {
		dst = append(dst, hop.IP[:]...)
		dst = binary.BigEndian.AppendUint16(dst, hop.Port)
	}
	return append(dst, f.Payload...)
}

// Unmarshal decodes a frame (either wire version). Payload aliases buf;
// Route and Reply alias the frame's internal backing array, so decoding
// performs no heap allocation — see the Frame doc about copying.
func (f *Frame) Unmarshal(buf []byte) error {
	if len(buf) < 12 {
		return ErrFrame
	}
	f.Session = binary.BigEndian.Uint64(buf[2:10])
	f.Kind = buf[10]
	off := 11
	switch binary.BigEndian.Uint16(buf[0:2]) {
	case frameMagic:
		f.Repair = 0
		f.Token = Token{}
	case frameMagicV2:
		f.Repair = buf[11]
		f.Token = Token{}
		off = 12
	case frameMagicV3:
		if len(buf) < 12+TokenLen {
			return ErrFrame
		}
		f.Repair = buf[11]
		copy(f.Token[:], buf[12:12+TokenLen])
		off = 12 + TokenLen
	default:
		return ErrFrame
	}
	if off >= len(buf) {
		return ErrFrame
	}
	nRoute := int(buf[off])
	if nRoute > MaxHops {
		return ErrFrame
	}
	off++
	var err error
	f.Route, off, err = f.parseHops(buf, off, nRoute, 0)
	if err != nil {
		return err
	}
	if off >= len(buf) {
		return ErrFrame
	}
	nReply := int(buf[off])
	if nReply > MaxHops {
		return ErrFrame
	}
	off++
	f.Reply, off, err = f.parseHops(buf, off, nReply, MaxHops)
	if err != nil {
		return err
	}
	f.Payload = buf[off:]
	return nil
}

// parseHops decodes n hops into the frame's backing array at base.
func (f *Frame) parseHops(buf []byte, off, n, base int) ([]netip, int, error) {
	if off+n*netipLen > len(buf) {
		return nil, 0, ErrFrame
	}
	hops := f.hopBuf[base : base+n : base+n]
	for i := 0; i < n; i++ {
		copy(hops[i].IP[:], buf[off:off+4])
		hops[i].Port = binary.BigEndian.Uint16(buf[off+4 : off+6])
		off += netipLen
	}
	return hops, off, nil
}
