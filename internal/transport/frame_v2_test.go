package transport

import (
	"bytes"
	"net"
	"testing"
)

func v2Addrs(t *testing.T, n int) []*net.UDPAddr {
	t.Helper()
	out := make([]*net.UDPAddr, n)
	for i := range out {
		out[i] = &net.UDPAddr{IP: net.IPv4(10, 0, 0, byte(i+1)), Port: 7000 + i}
	}
	return out
}

func TestFrameV2RoundTrip(t *testing.T) {
	f := Frame{Session: 42, Kind: KindFEC, Repair: 0x84, Payload: []byte("parity")}
	if err := f.SetRoute(v2Addrs(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReply(v2Addrs(t, 3)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	var g Frame
	if err := g.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if g.Session != f.Session || g.Kind != f.Kind || g.Repair != f.Repair ||
		len(g.Route) != 2 || len(g.Reply) != 3 || string(g.Payload) != "parity" {
		t.Errorf("round trip mismatch: %+v", g)
	}
	if g.Route[1].Port != 7001 || g.Reply[2].Port != 7002 {
		t.Errorf("hop ports: %+v %+v", g.Route, g.Reply)
	}
}

func TestFrameV1WireUnchangedWhenNoRepair(t *testing.T) {
	// A zero Repair must emit exactly the v1 bytes a repair-unaware build
	// produces, so unrepaired calls interoperate byte-for-byte.
	f := Frame{Session: 7, Kind: KindMedia, Payload: []byte("x")}
	if err := f.SetRoute(v2Addrs(t, 1)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	if wire[0] != 0x56 || wire[1] != 0x41 {
		t.Fatalf("magic = %x %x, want v1", wire[0], wire[1])
	}
	// Hand-build the v1 header the old code emitted.
	want := []byte{0x56, 0x41, 0, 0, 0, 0, 0, 0, 0, 7, KindMedia, 1,
		10, 0, 0, 1, 0x1b, 0x58, // 10.0.0.1:7000
		0, 'x'}
	if !bytes.Equal(wire, want) {
		t.Errorf("v1 wire drifted:\n got %x\nwant %x", wire, want)
	}
	var g Frame
	if err := g.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if g.Repair != 0 {
		t.Errorf("v1 decode set Repair = %d", g.Repair)
	}
}

func TestFrameV2Truncated(t *testing.T) {
	f := Frame{Session: 1, Kind: KindNack, Repair: 1, Payload: []byte("nack")}
	wire := f.Marshal(nil)
	for n := 0; n < len(wire); n++ {
		var g Frame
		if err := g.Unmarshal(wire[:n]); err == nil && n < 14 {
			t.Errorf("truncated at %d decoded", n)
		}
	}
}

func TestFrameUnmarshalNoAlloc(t *testing.T) {
	f := Frame{Session: 9, Kind: KindMedia, Repair: 2, Payload: make([]byte, 160)}
	if err := f.SetRoute(v2Addrs(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReply(v2Addrs(t, 3)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	var g Frame
	allocs := testing.AllocsPerRun(200, func() {
		if err := g.Unmarshal(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Unmarshal allocates %v per frame", allocs)
	}
}
