package transport

import (
	"bytes"
	"net"
	"testing"
)

// FuzzFrameUnmarshal hammers the frame decoder with arbitrary datagrams —
// the relay and agent read loops feed it raw UDP payloads, so it must
// reject malformed input (truncated headers, absurd hop counts, short hop
// lists) with ErrFrame rather than panicking, and anything it accepts
// must re-encode to a decodable equivalent.
func FuzzFrameUnmarshal(f *testing.F) {
	// Seed corpus: a valid direct frame, a routed frame, and assorted
	// malformed prefixes of each.
	var valid Frame
	valid.Session = 42
	valid.Kind = KindMedia
	valid.Payload = []byte("media")
	f.Add(valid.Marshal(nil))

	hop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9000}
	var routed Frame
	routed.Session = 7
	routed.Kind = KindReport
	if err := routed.SetRoute([]*net.UDPAddr{hop, hop}); err != nil {
		f.Fatal(err)
	}
	if err := routed.SetReply([]*net.UDPAddr{hop}); err != nil {
		f.Fatal(err)
	}
	routed.Payload = []byte("rr")
	wire := routed.Marshal(nil)
	f.Add(wire)
	f.Add(wire[:11]) // truncated header
	f.Add(wire[:13]) // header but truncated route
	f.Add([]byte{})  // empty datagram
	f.Add([]byte("not a frame at all"))
	// Claimed route longer than the buffer, and over MaxHops.
	bad := append([]byte(nil), wire...)
	bad[11] = 200
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.Unmarshal(data); err != nil {
			if err != ErrFrame {
				t.Fatalf("non-ErrFrame error from Unmarshal: %v", err)
			}
			return
		}
		if len(fr.Route) > MaxHops || len(fr.Reply) > MaxHops {
			t.Fatalf("accepted %d/%d hops past MaxHops", len(fr.Route), len(fr.Reply))
		}
		// Accepted frames must survive a re-encode/re-decode round trip.
		re := fr.Marshal(nil)
		var fr2 Frame
		if err := fr2.Unmarshal(re); err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Session != fr.Session || fr2.Kind != fr.Kind ||
			len(fr2.Route) != len(fr.Route) || len(fr2.Reply) != len(fr.Reply) ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v vs %+v", fr, fr2)
		}
	})
}
