package transport

import (
	"bytes"
	"testing"
)

func testToken(b byte) Token {
	var t Token
	for i := range t {
		t[i] = b + byte(i)
	}
	return t
}

func TestFrameV3RoundTrip(t *testing.T) {
	f := Frame{Session: 42, Kind: KindMedia, Repair: 0x21, Token: testToken(0x40), Payload: []byte("media")}
	if err := f.SetRoute(v2Addrs(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReply(v2Addrs(t, 1)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	if wire[0] != 0x56 || wire[1] != 0x43 {
		t.Fatalf("magic = %x %x, want v3", wire[0], wire[1])
	}
	var g Frame
	if err := g.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if g.Session != f.Session || g.Kind != f.Kind || g.Repair != f.Repair ||
		g.Token != f.Token || len(g.Route) != 2 || len(g.Reply) != 1 ||
		string(g.Payload) != "media" {
		t.Errorf("round trip mismatch: %+v", g)
	}
}

func TestFrameV3RepairZeroStillV3(t *testing.T) {
	// A token without a repair scheme must still ride v3 (the repair byte
	// is carried as zero), not silently drop the token to stay on v1.
	f := Frame{Session: 3, Kind: KindKeepalive, Token: testToken(1)}
	wire := f.Marshal(nil)
	if wire[0] != 0x56 || wire[1] != 0x43 {
		t.Fatalf("magic = %x %x, want v3", wire[0], wire[1])
	}
	var g Frame
	if err := g.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if g.Repair != 0 || g.Token != f.Token {
		t.Errorf("decode: repair %d token %x", g.Repair, g.Token)
	}
}

func TestFrameWireUnchangedWhenNoToken(t *testing.T) {
	// Token-less frames must stay byte-identical to what a v2-era build
	// emits — both the v1 (no repair) and v2 (repair) shapes — so legacy
	// peers that never negotiate a token interoperate unchanged.
	for _, repair := range []uint8{0, 0x84} {
		f := Frame{Session: 7, Kind: KindMedia, Repair: repair, Payload: []byte("x")}
		if err := f.SetRoute(v2Addrs(t, 1)); err != nil {
			t.Fatal(err)
		}
		wire := f.Marshal(nil)
		wantMagic := byte(0x41)
		if repair != 0 {
			wantMagic = 0x42
		}
		if wire[0] != 0x56 || wire[1] != wantMagic {
			t.Fatalf("repair %d: magic = %x %x", repair, wire[0], wire[1])
		}
		var g Frame
		if err := g.Unmarshal(wire); err != nil {
			t.Fatal(err)
		}
		if !g.Token.IsZero() {
			t.Errorf("repair %d: decode invented token %x", repair, g.Token)
		}
	}
}

func TestFrameV3Truncated(t *testing.T) {
	f := Frame{Session: 1, Kind: KindMedia, Token: testToken(9), Payload: []byte("pay")}
	if err := f.SetRoute(v2Addrs(t, 1)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	// Header is 13+TokenLen bytes plus one route hop plus the reply count:
	// every strict prefix shorter than the full fixed part must be rejected.
	for n := 0; n < 13+TokenLen+netipLen+1; n++ {
		var g Frame
		if err := g.Unmarshal(wire[:n]); err == nil {
			t.Errorf("truncated at %d decoded", n)
		}
	}
}

func TestFrameV3UnmarshalNoAlloc(t *testing.T) {
	f := Frame{Session: 9, Kind: KindMedia, Repair: 2, Token: testToken(3), Payload: make([]byte, 160)}
	if err := f.SetRoute(v2Addrs(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReply(v2Addrs(t, 2)); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	var g Frame
	allocs := testing.AllocsPerRun(200, func() {
		if err := g.Unmarshal(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("v3 Unmarshal allocates %v per frame", allocs)
	}
}

func TestPathChallengeRoundTrip(t *testing.T) {
	c := PathChallenge{Nonce: 0xdeadbeefcafef00d, Token: testToken(0x10)}
	wire := c.Marshal(nil)
	if len(wire) != PathChallengeLen {
		t.Fatalf("wire len %d, want %d", len(wire), PathChallengeLen)
	}
	var d PathChallenge
	if err := d.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if d != c {
		t.Errorf("round trip mismatch: %+v vs %+v", d, c)
	}
	// Fixed-size payload: both truncation and trailing bytes are malformed.
	if err := d.Unmarshal(wire[:len(wire)-1]); err != ErrPathChallenge {
		t.Errorf("short payload: err = %v", err)
	}
	if err := d.Unmarshal(append(bytes.Clone(wire), 0)); err != ErrPathChallenge {
		t.Errorf("long payload: err = %v", err)
	}
}
