package transport

import (
	"encoding/binary"
	"errors"
)

// Path validation (DESIGN.md §17). When a relay sees a known session
// token arrive from a new source address it must not re-pin the return
// path on that evidence alone — an off-path attacker who guessed or
// observed the token could hijack the reverse stream. Instead the relay
// sends a PathChallenge to the *new* address and re-pins only after the
// owner echoes it back as a KindPathResponse. This mirrors QUIC's
// PATH_CHALLENGE/PATH_RESPONSE (RFC 9000 §8.2): the response proves the
// peer both receives at the new address and holds the session token.
//
// Amplification bound: a challenge is a fixed PathChallengeLen-byte
// payload in a route-less frame — smaller than any media frame that can
// trigger it — and relays cap outstanding challenges per session, so an
// attacker spraying spoofed sources cannot use the relay as an
// amplifier.

// PathChallengeLen is the fixed wire size of a PathChallenge payload.
const PathChallengeLen = 8 + TokenLen

// ErrPathChallenge reports a malformed path-challenge payload.
var ErrPathChallenge = errors.New("transport: malformed path challenge")

// PathChallenge is the payload of KindPathChallenge and KindPathResponse
// frames (the frame kind discriminates direction). The responder echoes
// the payload byte-for-byte.
type PathChallenge struct {
	// Nonce is unpredictable per challenge; the relay accepts a response
	// only while the (token, nonce, address) triple is outstanding.
	Nonce uint64
	// Token binds the exchange to one session, so a response captured
	// from one call cannot validate an address for another.
	Token Token
}

// Marshal appends the challenge's wire form to dst:
// nonce(8) token(16), both fixed-width.
func (c *PathChallenge) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, c.Nonce)
	return append(dst, c.Token[:]...)
}

// Unmarshal decodes a challenge payload. Trailing bytes are rejected:
// the payload is fixed-size, and tolerating padding would let a future
// extension silently change meaning under old parsers.
func (c *PathChallenge) Unmarshal(buf []byte) error {
	if len(buf) != PathChallengeLen {
		return ErrPathChallenge
	}
	c.Nonce = binary.BigEndian.Uint64(buf[0:8])
	copy(c.Token[:], buf[8:8+TokenLen])
	return nil
}
