package transport

import (
	"net"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/quality"
)

func udp(ip string, port int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.ParseIP(ip), Port: port}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Session: 0xCAFEBABE, Kind: KindMedia, Payload: []byte("media")}
	if err := f.SetRoute([]*net.UDPAddr{udp("127.0.0.1", 5000), udp("10.0.0.2", 6000)}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReply([]*net.UDPAddr{udp("192.168.1.1", 7000)}); err != nil {
		t.Fatal(err)
	}
	wire := f.Marshal(nil)
	var g Frame
	if err := g.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if g.Session != f.Session || g.Kind != f.Kind || string(g.Payload) != "media" {
		t.Errorf("mismatch: %+v", g)
	}
	if got := g.NextHop().String(); got != "127.0.0.1:5000" {
		t.Errorf("next hop = %s", got)
	}
	g.PopHop()
	if got := g.NextHop().String(); got != "10.0.0.2:6000" {
		t.Errorf("second hop = %s", got)
	}
	g.PopHop()
	if g.NextHop() != nil {
		t.Error("exhausted route should have nil next hop")
	}
	g.PopHop() // must not panic on empty route
	reply := g.ReplyAddrs()
	if len(reply) != 1 || reply[0].String() != "192.168.1.1:7000" {
		t.Errorf("reply route = %v", reply)
	}
}

func TestFrameDirectNoHops(t *testing.T) {
	f := Frame{Session: 1, Kind: KindReport, Payload: []byte{1, 2, 3}}
	var g Frame
	if err := g.Unmarshal(f.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if g.NextHop() != nil || len(g.ReplyAddrs()) != 0 {
		t.Error("direct frame should have empty routes")
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	var f Frame
	cases := [][]byte{
		nil,
		make([]byte, 5),
		[]byte("not a frame at all"),
		func() []byte { // bad hop count
			g := Frame{Session: 1}
			w := g.Marshal(nil)
			w[11] = 200
			return w
		}(),
		func() []byte { // truncated route
			g := Frame{Session: 1}
			g.SetRoute([]*net.UDPAddr{udp("1.2.3.4", 5)})
			return g.Marshal(nil)[:14]
		}(),
	}
	for i, c := range cases {
		if err := f.Unmarshal(c); err == nil {
			t.Errorf("case %d accepted garbage", i)
		}
	}
}

func TestFrameTooManyHops(t *testing.T) {
	var f Frame
	hops := make([]*net.UDPAddr, MaxHops+1)
	for i := range hops {
		hops[i] = udp("127.0.0.1", 1000+i)
	}
	if err := f.SetRoute(hops); err == nil {
		t.Error("oversized route accepted")
	}
}

func TestFrameIPv6Rejected(t *testing.T) {
	var f Frame
	if err := f.SetRoute([]*net.UDPAddr{udp("::1", 80)}); err == nil {
		t.Error("IPv6 hop accepted by IPv4 wire format")
	}
}

func TestWireAddrRoundTrip(t *testing.T) {
	a := udp("203.0.113.9", 12345)
	w, err := ToWireAddr(a)
	if err != nil {
		t.Fatal(err)
	}
	back := FromWireAddr(w)
	if back.String() != a.String() {
		t.Errorf("round trip: %s vs %s", back, a)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(session uint64, kind uint8, payload []byte) bool {
		in := Frame{Session: session, Kind: kind, Payload: payload}
		var out Frame
		if err := out.Unmarshal(in.Marshal(nil)); err != nil {
			return false
		}
		return out.Session == session && out.Kind == kind && string(out.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWireOptionRoundTrip(t *testing.T) {
	opts := []netsim.Option{
		netsim.DirectOption(),
		netsim.BounceOption(7),
		netsim.TransitOption(3, 9),
	}
	for _, o := range opts {
		if got := ToWireOption(o).Option(); got != o {
			t.Errorf("round trip %v -> %v", o, got)
		}
	}
	if (WireOption{Kind: "???"}).Option() != netsim.DirectOption() {
		t.Error("unknown kind should map to direct")
	}
}

func TestWireMetricsRoundTrip(t *testing.T) {
	m := quality.Metrics{RTTMs: 123.4, LossRate: 0.05, JitterMs: 9.1}
	if got := ToWireMetrics(m).Metrics(); got != m {
		t.Errorf("round trip %+v -> %+v", m, got)
	}
}
