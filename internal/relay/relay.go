// Package relay implements a managed-overlay relay node: a UDP forwarder
// that pops the next hop off each frame's source route and sends it onward
// (bounce = one relay, transit = ingress relay → backbone → egress relay).
// Relays keep per-session byte accounting — the managed network's operators
// need it for budgeting — but, as in the paper, have no measurement or
// selection intelligence of their own: all smarts live in the controller
// and clients (§4.4: "the relays in Skype were only designed to forward
// traffic").
package relay

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Session-table bounds: calls end silently (a relay never sees teardown),
// so entries are evicted once idle for sessionIdleTTL, swept opportunistically
// every sweepEvery handled packets. maxSessions is a hard cap — a flood of
// fresh session ids (bug or abuse) evicts the longest-idle entries rather
// than growing the map without bound.
const (
	sessionIdleTTL = 2 * time.Minute
	maxSessions    = 8192
	sweepEvery     = 1024
)

// Node is one relay.
type Node struct {
	id   netsim.RelayID
	conn net.PacketConn

	packets atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
	evicted atomic.Int64

	// Mobility counters (DESIGN.md §17): path validation, session
	// migration, keepalives, and drain progress.
	keepalives    atomic.Int64
	challenges    atomic.Int64
	pathOK        atomic.Int64
	pathFail      atomic.Int64
	migrations    atomic.Int64
	drainNudges   atomic.Int64
	drainRejected atomic.Int64

	// draining, once set, rejects frames for unknown sessions and nudges
	// active endpoints toward their backup relay. Checked lock-free on
	// the per-packet path.
	draining atomic.Bool

	mu         sync.Mutex
	sessions   map[uint64]*sessionEntry          // guarded by mu
	tokens     map[transport.Token]*tokenEntry   // guarded by mu
	remap      map[addrKey]remapEntry            // guarded by mu
	rng        *stats.RNG                        // guarded by mu
	sinceSweep int                               // guarded by mu
	idleTTL    time.Duration                     // guarded by mu
	maxSess    int                               // guarded by mu
	closed     bool                              // guarded by mu
}

// SessionStats is the per-session accounting a relay keeps.
type SessionStats struct {
	Packets int64
	Bytes   int64
}

// sessionEntry is SessionStats plus the liveness stamp eviction keys on.
type sessionEntry struct {
	SessionStats
	lastSeen time.Time
}

// New builds a relay node on an already-bound PacketConn (which may be a
// wan.Shaper for impaired testbeds).
func New(id netsim.RelayID, conn net.PacketConn) *Node {
	return &Node{
		id:       id,
		conn:     conn,
		sessions: make(map[uint64]*sessionEntry),
		tokens:   make(map[transport.Token]*tokenEntry),
		remap:    make(map[addrKey]remapEntry),
		// Challenge nonces only need to be unpredictable to an off-path
		// attacker (the 128-bit token is the real secret); a time-seeded
		// PRNG suffices and keeps the package dependency-free. Relay is a
		// live-network package, so reading the clock here is legal.
		rng:     stats.NewRNG(uint64(time.Now().UnixNano()) ^ uint64(id)<<32),
		idleTTL: sessionIdleTTL,
		maxSess: maxSessions,
	}
}

// SetSessionLimits overrides the session-table bounds (testing and tuning).
// Zero values keep the current setting.
func (n *Node) SetSessionLimits(idleTTL time.Duration, maxSess int) {
	n.mu.Lock()
	if idleTTL > 0 {
		n.idleTTL = idleTTL
	}
	if maxSess > 0 {
		n.maxSess = maxSess
	}
	n.mu.Unlock()
}

// ID returns the relay's identity.
func (n *Node) ID() netsim.RelayID { return n.id }

// Addr returns the relay's bound media address.
func (n *Node) Addr() net.Addr { return n.conn.LocalAddr() }

// Serve forwards frames until the connection is closed. It returns nil on
// orderly shutdown. The frame, output buffer, and next-hop address are
// hoisted out of the loop so the steady-state forwarding path — including
// repair traffic (v2 frames, NACK/FEC kinds, retransmits) — performs zero
// heap allocations per packet.
func (n *Node) Serve() error {
	buf := make([]byte, 64*1024)
	out := make([]byte, 0, 64*1024)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	for {
		sz, src, err := n.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		n.handle(buf[:sz], src, &out, &f, next)
	}
}

//via:noalloc
func (n *Node) handle(pkt []byte, src net.Addr, out *[]byte, f *transport.Frame, next *net.UDPAddr) {
	if err := f.Unmarshal(pkt); err != nil {
		n.dropped.Add(1)
		return
	}
	if !f.NextHopInto(next) {
		// An exhausted route at a relay is either a mobility frame
		// addressed to this relay itself (keepalive, path response) or a
		// misrouted data frame; consume sorts them out off the hot path.
		n.consume(f, src, len(pkt))
		return
	}
	f.PopHop()

	now := time.Now()
	draining := n.draining.Load()
	var act mobilityActions
	n.mu.Lock()
	ss := n.sessions[f.Session]
	if ss == nil {
		if draining {
			// Draining relays accept no new sessions: the controller has
			// stopped advertising us, so anything unknown is a straggler
			// that should land on another relay.
			n.mu.Unlock()
			n.drainRejected.Add(1)
			n.dropped.Add(1)
			return
		}
		ss = n.newSessionLocked(f.Session, now)
	}
	ss.Packets++
	ss.Bytes += int64(len(pkt))
	ss.lastSeen = now
	if !f.Token.IsZero() {
		act = n.observeTokenLocked(f.Session, f.Token, src, now, draining)
	}
	if len(f.Route) == 0 {
		// Final delivery hop: follow any validated migration so reverse
		// traffic reaches the endpoint's current address even before the
		// peer learns the new reply route.
		n.repinLocked(next)
	}
	n.sinceSweep++
	if n.sinceSweep >= sweepEvery {
		n.sinceSweep = 0
		n.sweepIdleLocked(now)
	}
	n.mu.Unlock()

	n.packets.Add(1)
	n.bytes.Add(int64(len(pkt)))
	*out = f.Marshal((*out)[:0])
	//vialint:ignore errwrap best-effort UDP forwarding: a failed send is equivalent to loss, which the media layer absorbs
	_, _ = n.conn.WriteTo(*out, next)

	if act.challenge || act.nudge {
		n.sendMobility(f.Session, f.Token, src, act)
	}
}

// newSessionLocked inserts a fresh session entry, evicting first at the
// hard cap. Kept out of handle so the once-per-session allocation does not
// sit on the per-packet path. Caller holds n.mu.
func (n *Node) newSessionLocked(id uint64, now time.Time) *sessionEntry {
	if len(n.sessions) >= n.maxSess {
		n.evictOldestLocked(now)
	}
	ss := &sessionEntry{}
	n.sessions[id] = ss
	return ss
}

// sweepIdleLocked drops sessions, token bindings, and migration remaps
// idle past the TTL. Caller holds n.mu.
func (n *Node) sweepIdleLocked(now time.Time) {
	for id, ss := range n.sessions {
		if now.Sub(ss.lastSeen) > n.idleTTL {
			delete(n.sessions, id)
			n.evicted.Add(1)
		}
	}
	for tok, te := range n.tokens {
		if now.Sub(te.lastSeen) > n.idleTTL {
			delete(n.tokens, tok)
		}
	}
	for old, re := range n.remap {
		if now.Sub(re.at) > n.idleTTL {
			delete(n.remap, old)
		}
	}
}

// evictOldestLocked makes room at the hard cap: first an idle sweep, then
// (if the table is full of live sessions) the longest-idle entry goes.
// Caller holds n.mu.
func (n *Node) evictOldestLocked(now time.Time) {
	n.sweepIdleLocked(now)
	if len(n.sessions) < n.maxSess {
		return
	}
	var oldest uint64
	var oldestSeen time.Time
	first := true
	for id, ss := range n.sessions {
		if first || ss.lastSeen.Before(oldestSeen) {
			oldest, oldestSeen, first = id, ss.lastSeen, false
		}
	}
	if !first {
		delete(n.sessions, oldest)
		n.evicted.Add(1)
	}
}

// Evicted returns how many session entries have been evicted (idle TTL or
// table cap) — accounting lost to churn, not forwarding failures.
func (n *Node) Evicted() int64 { return n.evicted.Load() }

// Close shuts the relay down; Serve returns after Close.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	return n.conn.Close()
}

// Stats returns totals since start.
func (n *Node) Stats() (packets, bytes, dropped int64) {
	return n.packets.Load(), n.bytes.Load(), n.dropped.Load()
}

// Session returns a copy of one session's accounting.
func (n *Node) Session(id uint64) (SessionStats, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ss := n.sessions[id]
	if ss == nil {
		return SessionStats{}, false
	}
	return ss.SessionStats, true
}

// Sessions returns the number of distinct sessions seen.
func (n *Node) Sessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sessions)
}

// RegisterMetrics publishes the relay's counters on a shared registry as
// per-relay labeled series, read lazily at scrape time. GaugeFunc replace
// semantics make re-registering a revived relay under the same id safe —
// the fresh node's closures displace the dead one's.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	id := strconv.Itoa(int(n.id))
	reg.GaugeFunc(obs.L("via_relay_forwarded_packets", "relay", id),
		func() float64 { return float64(n.packets.Load()) })
	reg.GaugeFunc(obs.L("via_relay_forwarded_bytes", "relay", id),
		func() float64 { return float64(n.bytes.Load()) })
	reg.GaugeFunc(obs.L("via_relay_dropped_packets", "relay", id),
		func() float64 { return float64(n.dropped.Load()) })
	reg.GaugeFunc(obs.L("via_relay_evicted_sessions", "relay", id),
		func() float64 { return float64(n.Evicted()) })
	reg.GaugeFunc(obs.L("via_relay_active_sessions", "relay", id),
		func() float64 { return float64(n.Sessions()) })
	reg.CounterFunc(obs.L("via_session_migrations_total", "relay", id),
		func() int64 { return n.migrations.Load() })
	reg.CounterFunc(obs.L("via_path_validation_challenges_total", "relay", id),
		func() int64 { return n.challenges.Load() })
	reg.CounterFunc(obs.L("via_path_validation_successes_total", "relay", id),
		func() int64 { return n.pathOK.Load() })
	reg.CounterFunc(obs.L("via_path_validation_failures_total", "relay", id),
		func() int64 { return n.pathFail.Load() })
	reg.CounterFunc(obs.L("via_relay_keepalives_total", "relay", id),
		func() int64 { return n.keepalives.Load() })
	reg.CounterFunc(obs.L("via_relay_drain_nudges_total", "relay", id),
		func() int64 { return n.drainNudges.Load() })
	reg.CounterFunc(obs.L("via_relay_drain_rejected_total", "relay", id),
		func() int64 { return n.drainRejected.Load() })
}
