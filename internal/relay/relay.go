// Package relay implements a managed-overlay relay node: a UDP forwarder
// that pops the next hop off each frame's source route and sends it onward
// (bounce = one relay, transit = ingress relay → backbone → egress relay).
// Relays keep per-session byte accounting — the managed network's operators
// need it for budgeting — but, as in the paper, have no measurement or
// selection intelligence of their own: all smarts live in the controller
// and clients (§4.4: "the relays in Skype were only designed to forward
// traffic").
package relay

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Session-table bounds: calls end silently (a relay never sees teardown),
// so entries are evicted once idle for sessionIdleTTL, swept opportunistically
// every sweepEvery handled packets. maxSessions is a hard cap — a flood of
// fresh session ids (bug or abuse) evicts the longest-idle entries rather
// than growing the map without bound.
const (
	sessionIdleTTL = 2 * time.Minute
	maxSessions    = 8192
	sweepEvery     = 1024
)

// Node is one relay.
type Node struct {
	id   netsim.RelayID
	conn net.PacketConn

	packets atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
	evicted atomic.Int64

	mu         sync.Mutex
	sessions   map[uint64]*sessionEntry // guarded by mu
	sinceSweep int                      // guarded by mu
	idleTTL    time.Duration            // guarded by mu
	maxSess    int                      // guarded by mu
	closed     bool                     // guarded by mu
}

// SessionStats is the per-session accounting a relay keeps.
type SessionStats struct {
	Packets int64
	Bytes   int64
}

// sessionEntry is SessionStats plus the liveness stamp eviction keys on.
type sessionEntry struct {
	SessionStats
	lastSeen time.Time
}

// New builds a relay node on an already-bound PacketConn (which may be a
// wan.Shaper for impaired testbeds).
func New(id netsim.RelayID, conn net.PacketConn) *Node {
	return &Node{
		id:       id,
		conn:     conn,
		sessions: make(map[uint64]*sessionEntry),
		idleTTL:  sessionIdleTTL,
		maxSess:  maxSessions,
	}
}

// SetSessionLimits overrides the session-table bounds (testing and tuning).
// Zero values keep the current setting.
func (n *Node) SetSessionLimits(idleTTL time.Duration, maxSess int) {
	n.mu.Lock()
	if idleTTL > 0 {
		n.idleTTL = idleTTL
	}
	if maxSess > 0 {
		n.maxSess = maxSess
	}
	n.mu.Unlock()
}

// ID returns the relay's identity.
func (n *Node) ID() netsim.RelayID { return n.id }

// Addr returns the relay's bound media address.
func (n *Node) Addr() net.Addr { return n.conn.LocalAddr() }

// Serve forwards frames until the connection is closed. It returns nil on
// orderly shutdown. The frame, output buffer, and next-hop address are
// hoisted out of the loop so the steady-state forwarding path — including
// repair traffic (v2 frames, NACK/FEC kinds, retransmits) — performs zero
// heap allocations per packet.
func (n *Node) Serve() error {
	buf := make([]byte, 64*1024)
	out := make([]byte, 0, 64*1024)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	for {
		sz, _, err := n.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		n.handle(buf[:sz], &out, &f, next)
	}
}

//via:noalloc
func (n *Node) handle(pkt []byte, out *[]byte, f *transport.Frame, next *net.UDPAddr) {
	if err := f.Unmarshal(pkt); err != nil {
		n.dropped.Add(1)
		return
	}
	if !f.NextHopInto(next) {
		// A frame with an exhausted route landed on a relay: misrouted.
		n.dropped.Add(1)
		return
	}
	f.PopHop()

	n.packets.Add(1)
	n.bytes.Add(int64(len(pkt)))
	now := time.Now()
	n.mu.Lock()
	ss := n.sessions[f.Session]
	if ss == nil {
		ss = n.newSessionLocked(f.Session, now)
	}
	ss.Packets++
	ss.Bytes += int64(len(pkt))
	ss.lastSeen = now
	n.sinceSweep++
	if n.sinceSweep >= sweepEvery {
		n.sinceSweep = 0
		n.sweepIdleLocked(now)
	}
	n.mu.Unlock()

	*out = f.Marshal((*out)[:0])
	//vialint:ignore errwrap best-effort UDP forwarding: a failed send is equivalent to loss, which the media layer absorbs
	_, _ = n.conn.WriteTo(*out, next)
}

// newSessionLocked inserts a fresh session entry, evicting first at the
// hard cap. Kept out of handle so the once-per-session allocation does not
// sit on the per-packet path. Caller holds n.mu.
func (n *Node) newSessionLocked(id uint64, now time.Time) *sessionEntry {
	if len(n.sessions) >= n.maxSess {
		n.evictOldestLocked(now)
	}
	ss := &sessionEntry{}
	n.sessions[id] = ss
	return ss
}

// sweepIdleLocked drops sessions idle past the TTL. Caller holds n.mu.
func (n *Node) sweepIdleLocked(now time.Time) {
	for id, ss := range n.sessions {
		if now.Sub(ss.lastSeen) > n.idleTTL {
			delete(n.sessions, id)
			n.evicted.Add(1)
		}
	}
}

// evictOldestLocked makes room at the hard cap: first an idle sweep, then
// (if the table is full of live sessions) the longest-idle entry goes.
// Caller holds n.mu.
func (n *Node) evictOldestLocked(now time.Time) {
	n.sweepIdleLocked(now)
	if len(n.sessions) < n.maxSess {
		return
	}
	var oldest uint64
	var oldestSeen time.Time
	first := true
	for id, ss := range n.sessions {
		if first || ss.lastSeen.Before(oldestSeen) {
			oldest, oldestSeen, first = id, ss.lastSeen, false
		}
	}
	if !first {
		delete(n.sessions, oldest)
		n.evicted.Add(1)
	}
}

// Evicted returns how many session entries have been evicted (idle TTL or
// table cap) — accounting lost to churn, not forwarding failures.
func (n *Node) Evicted() int64 { return n.evicted.Load() }

// Close shuts the relay down; Serve returns after Close.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	return n.conn.Close()
}

// Stats returns totals since start.
func (n *Node) Stats() (packets, bytes, dropped int64) {
	return n.packets.Load(), n.bytes.Load(), n.dropped.Load()
}

// Session returns a copy of one session's accounting.
func (n *Node) Session(id uint64) (SessionStats, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ss := n.sessions[id]
	if ss == nil {
		return SessionStats{}, false
	}
	return ss.SessionStats, true
}

// Sessions returns the number of distinct sessions seen.
func (n *Node) Sessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sessions)
}

// RegisterMetrics publishes the relay's counters on a shared registry as
// per-relay labeled series, read lazily at scrape time. GaugeFunc replace
// semantics make re-registering a revived relay under the same id safe —
// the fresh node's closures displace the dead one's.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	id := strconv.Itoa(int(n.id))
	reg.GaugeFunc(obs.L("via_relay_forwarded_packets", "relay", id),
		func() float64 { return float64(n.packets.Load()) })
	reg.GaugeFunc(obs.L("via_relay_forwarded_bytes", "relay", id),
		func() float64 { return float64(n.bytes.Load()) })
	reg.GaugeFunc(obs.L("via_relay_dropped_packets", "relay", id),
		func() float64 { return float64(n.dropped.Load()) })
	reg.GaugeFunc(obs.L("via_relay_evicted_sessions", "relay", id),
		func() float64 { return float64(n.Evicted()) })
	reg.GaugeFunc(obs.L("via_relay_active_sessions", "relay", id),
		func() float64 { return float64(n.Sessions()) })
}
