package relay

import (
	"encoding/binary"
	"net"
	"time"

	"repro/internal/transport"
)

// Mid-call mobility (DESIGN.md §17). Wire-v3 frames carry an opaque
// per-endpoint session token, so the relay can recognize "same call,
// new source address" when a NAT rebind or WiFi↔LTE handover changes an
// endpoint's 5-tuple mid-call. The first address a token appears from is
// trusted implicitly (it is the address the call was set up over, the
// moral equivalent of QUIC's handshake-validated path); every later
// address must answer a path challenge before the relay re-pins the
// return path to it. Until validation completes, traffic *from* the new
// address still forwards — sending media onward to a known destination
// amplifies nothing — but nothing is ever sent *to* an unvalidated
// address except the fixed-size challenge itself.
const (
	// pathChallengeResend spaces retransmits of an unanswered challenge.
	pathChallengeResend = 250 * time.Millisecond
	// pathChallengeMaxTries bounds one validation episode; exhausting it
	// counts a failure and the next frame from that address starts over.
	pathChallengeMaxTries = 5
	// drainNudgeEvery rate-limits per-endpoint drain nudges.
	drainNudgeEvery = time.Second
)

// addrKey is a comparable IPv4 addr+port, the session table's view of an
// endpoint address.
type addrKey [6]byte

// toAddrKey converts a UDP source address into table form. Non-UDP or
// non-IPv4 addresses (never produced by the testbed) report false.
func toAddrKey(a net.Addr) (addrKey, bool) {
	u, ok := a.(*net.UDPAddr)
	if !ok {
		return addrKey{}, false
	}
	ip4 := u.IP.To4()
	if ip4 == nil {
		return addrKey{}, false
	}
	var k addrKey
	copy(k[:4], ip4)
	binary.BigEndian.PutUint16(k[4:], uint16(u.Port))
	return k, true
}

// udpAddr converts a table key back into a sendable address.
func (k addrKey) udpAddr() *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(k[0], k[1], k[2], k[3]),
		Port: int(binary.BigEndian.Uint16(k[4:])),
	}
}

// tokenEntry is the relay's per-token mobility state: the endpoint's
// current validated address plus any in-flight validation of a new one.
type tokenEntry struct {
	session   uint64
	addr      addrKey // current validated source address
	bound     bool    // addr holds a binding (first frame seen)
	pending   *pathPending
	lastSeen  time.Time
	lastNudge time.Time
}

// pathPending is one outstanding challenge episode toward a new address.
type pathPending struct {
	nonce  uint64
	addr   addrKey
	sentAt time.Time
	tries  int
}

// remapEntry redirects final-hop delivery from a stale endpoint address
// to its validated successor, so reverse traffic addressed by a peer
// that has not yet learned the new reply route still arrives.
type remapEntry struct {
	to addrKey
	at time.Time
}

// mobilityActions is what the locked fast path asks the cold path to
// send after the lock is released.
type mobilityActions struct {
	challenge bool
	nonce     uint64
	nudge     bool
}

// observeTokenLocked updates the token table for a frame from src and
// decides whether a path challenge or drain nudge is owed. Caller holds
// n.mu. Allocation happens only on new-token and new-challenge events,
// never in the steady state, keeping handle's noalloc promise.
func (n *Node) observeTokenLocked(session uint64, tok transport.Token, src net.Addr, now time.Time, draining bool) mobilityActions {
	var act mobilityActions
	te := n.tokens[tok]
	if te == nil {
		te = n.newTokenLocked(session, tok, now)
	}
	te.lastSeen = now
	k, ok := toAddrKey(src)
	if !ok {
		return act
	}
	switch {
	case !te.bound:
		// First sighting: the call was set up over this path, trust it.
		te.bound, te.addr = true, k
	case te.addr != k:
		act = n.scheduleChallengeLocked(te, k, now)
	}
	if draining && now.Sub(te.lastNudge) >= drainNudgeEvery {
		te.lastNudge = now
		act.nudge = true
	}
	return act
}

// newTokenLocked inserts a token entry, bounding the table alongside the
// session cap. Caller holds n.mu.
func (n *Node) newTokenLocked(session uint64, tok transport.Token, now time.Time) *tokenEntry {
	if len(n.tokens) >= n.maxSess {
		n.sweepIdleLocked(now)
		if len(n.tokens) >= n.maxSess {
			var oldest transport.Token
			var oldestSeen time.Time
			first := true
			for t, te := range n.tokens {
				if first || te.lastSeen.Before(oldestSeen) {
					oldest, oldestSeen, first = t, te.lastSeen, false
				}
			}
			if !first {
				delete(n.tokens, oldest)
			}
		}
	}
	te := &tokenEntry{session: session}
	n.tokens[tok] = te
	return te
}

// scheduleChallengeLocked runs the challenge state machine for a frame
// arriving from unvalidated address k. Caller holds n.mu.
func (n *Node) scheduleChallengeLocked(te *tokenEntry, k addrKey, now time.Time) mobilityActions {
	var act mobilityActions
	p := te.pending
	if p == nil || p.addr != k {
		// New episode (or the endpoint moved again mid-validation: the
		// newest address wins, the stale episode is abandoned).
		p = &pathPending{nonce: n.rng.Uint64(), addr: k, sentAt: now, tries: 1}
		te.pending = p
		act.challenge, act.nonce = true, p.nonce
		return act
	}
	if now.Sub(p.sentAt) < pathChallengeResend {
		return act // recently challenged; wait for the response
	}
	if p.tries >= pathChallengeMaxTries {
		// Episode exhausted: count one failure, let the next frame from
		// this address open a fresh episode.
		n.pathFail.Add(1)
		te.pending = nil
		return act
	}
	p.sentAt = now
	p.tries++
	act.challenge, act.nonce = true, p.nonce
	return act
}

// repinLocked rewrites a final-delivery address that has a validated
// migration, in place and allocation-free. Caller holds n.mu.
func (n *Node) repinLocked(next *net.UDPAddr) {
	if len(n.remap) == 0 {
		return
	}
	k, ok := toAddrKey(next)
	if !ok {
		return
	}
	re, ok := n.remap[k]
	if !ok {
		return
	}
	next.IP = append(next.IP[:0], re.to[0], re.to[1], re.to[2], re.to[3])
	next.Port = int(binary.BigEndian.Uint16(re.to[4:]))
}

// consume handles frames addressed to the relay itself (empty forward
// route): keepalives and path responses. Anything else with an exhausted
// route is misrouted, as before.
func (n *Node) consume(f *transport.Frame, src net.Addr, size int) {
	switch f.Kind {
	case transport.KindKeepalive:
		n.handleKeepalive(f, src, size)
	case transport.KindPathResponse:
		n.handlePathResponse(f, src)
	default:
		n.dropped.Add(1)
	}
}

// handleKeepalive refreshes the session's idle deadline — a long silent
// but alive call must not be evicted — and runs the same token
// observation as data frames, so a keepalive from a rebound address
// starts path validation without waiting for media.
func (n *Node) handleKeepalive(f *transport.Frame, src net.Addr, size int) {
	now := time.Now()
	draining := n.draining.Load()
	var act mobilityActions
	n.mu.Lock()
	ss := n.sessions[f.Session]
	if ss == nil {
		if draining {
			n.mu.Unlock()
			n.drainRejected.Add(1)
			return
		}
		ss = n.newSessionLocked(f.Session, now)
	}
	ss.Bytes += int64(size)
	ss.lastSeen = now
	if !f.Token.IsZero() {
		act = n.observeTokenLocked(f.Session, f.Token, src, now, draining)
	}
	n.mu.Unlock()
	n.keepalives.Add(1)
	if act.challenge || act.nudge {
		n.sendMobility(f.Session, f.Token, src, act)
	}
}

// handlePathResponse validates an echoed challenge and, on success,
// re-pins the token's return path to the responding address.
func (n *Node) handlePathResponse(f *transport.Frame, src net.Addr) {
	var c transport.PathChallenge
	if err := c.Unmarshal(f.Payload); err != nil || c.Token != f.Token || f.Token.IsZero() {
		n.pathFail.Add(1)
		return
	}
	k, ok := toAddrKey(src)
	if !ok {
		n.pathFail.Add(1)
		return
	}
	now := time.Now()
	n.mu.Lock()
	te := n.tokens[f.Token]
	if te == nil || te.pending == nil || te.pending.addr != k || te.pending.nonce != c.Nonce {
		n.mu.Unlock()
		n.pathFail.Add(1)
		return
	}
	old, hadOld := te.addr, te.bound
	te.addr, te.bound = k, true
	te.pending = nil
	te.lastSeen = now
	if ss := n.sessions[te.session]; ss != nil {
		ss.lastSeen = now
	}
	if hadOld && old != k {
		// Collapse remap chains so multi-rebind sessions resolve in one
		// lookup: anything that pointed at the old address now points at
		// the new one, and the new address itself is never a stale key.
		for from, re := range n.remap {
			if re.to == old {
				n.remap[from] = remapEntry{to: k, at: now}
			}
		}
		n.remap[old] = remapEntry{to: k, at: now}
		delete(n.remap, k)
		n.migrations.Add(1)
	}
	n.mu.Unlock()
	n.pathOK.Add(1)
}

// sendMobility emits the challenge and/or drain nudge decided under the
// lock. Cold path: runs only on address change or during drain.
func (n *Node) sendMobility(session uint64, tok transport.Token, dst net.Addr, act mobilityActions) {
	if act.challenge {
		c := transport.PathChallenge{Nonce: act.nonce, Token: tok}
		f := transport.Frame{Session: session, Kind: transport.KindPathChallenge, Token: tok}
		f.Payload = c.Marshal(make([]byte, 0, transport.PathChallengeLen))
		//vialint:ignore errwrap best-effort UDP: a lost challenge is retransmitted by the next frame from the new address
		_, _ = n.conn.WriteTo(f.Marshal(nil), dst)
		n.challenges.Add(1)
	}
	if act.nudge {
		f := transport.Frame{Session: session, Kind: transport.KindDrain, Token: tok}
		//vialint:ignore errwrap best-effort UDP: drain nudges repeat once per drainNudgeEvery while traffic flows
		_, _ = n.conn.WriteTo(f.Marshal(nil), dst)
		n.drainNudges.Add(1)
	}
}

// SetDraining switches drain mode. Entering drain immediately nudges
// every known endpoint toward its backup relay; endpoints that miss the
// nudge (loss) are re-nudged as their traffic flows. New sessions are
// rejected while draining; existing ones keep forwarding until they
// migrate or end.
func (n *Node) SetDraining(d bool) {
	n.draining.Store(d)
	if !d {
		return
	}
	now := time.Now()
	type target struct {
		session uint64
		tok     transport.Token
		addr    addrKey
	}
	var targets []target
	n.mu.Lock()
	for tok, te := range n.tokens {
		if te.bound {
			te.lastNudge = now
			targets = append(targets, target{te.session, tok, te.addr})
		}
	}
	n.mu.Unlock()
	for _, t := range targets {
		n.sendMobility(t.session, t.tok, t.addr.udpAddr(), mobilityActions{nudge: true})
	}
}

// Draining reports whether the relay is in drain mode (advertised to the
// controller via heartbeats).
func (n *Node) Draining() bool { return n.draining.Load() }

// Migrations returns how many validated session migrations (address
// re-pins) this relay has performed.
func (n *Node) Migrations() int64 { return n.migrations.Load() }

// Keepalives returns how many session keepalives the relay has consumed.
func (n *Node) Keepalives() int64 { return n.keepalives.Load() }
