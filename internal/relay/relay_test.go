package relay

import (
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

func listen(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startRelay(t *testing.T, id int) *Node {
	t.Helper()
	n := New(netsim.RelayID(id), listen(t))
	go n.Serve()
	t.Cleanup(func() { n.Close() })
	return n
}

func udpAddr(a net.Addr) *net.UDPAddr { return a.(*net.UDPAddr) }

func recvFrame(t *testing.T, c net.PacketConn, timeout time.Duration) *transport.Frame {
	t.Helper()
	buf := make([]byte, 64*1024)
	c.SetReadDeadline(time.Now().Add(timeout))
	n, _, err := c.ReadFrom(buf)
	if err != nil {
		return nil
	}
	var f transport.Frame
	if err := f.Unmarshal(buf[:n]); err != nil {
		t.Fatalf("bad frame: %v", err)
	}
	return &f
}

func TestBounceForwarding(t *testing.T) {
	r := startRelay(t, 1)
	src, dst := listen(t), listen(t)
	defer src.Close()
	defer dst.Close()

	f := transport.Frame{Session: 42, Kind: transport.KindMedia, Payload: []byte("voice")}
	if err := f.SetRoute([]*net.UDPAddr{udpAddr(dst.LocalAddr())}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTo(f.Marshal(nil), r.Addr()); err != nil {
		t.Fatal(err)
	}
	got := recvFrame(t, dst, time.Second)
	if got == nil {
		t.Fatal("frame not forwarded")
	}
	if got.Session != 42 || string(got.Payload) != "voice" {
		t.Errorf("forwarded frame mangled: %+v", got)
	}
	if got.NextHop() != nil {
		t.Error("delivered frame should have an exhausted route")
	}
}

func TestTransitForwarding(t *testing.T) {
	r1 := startRelay(t, 1)
	r2 := startRelay(t, 2)
	src, dst := listen(t), listen(t)
	defer src.Close()
	defer dst.Close()

	f := transport.Frame{Session: 7, Kind: transport.KindMedia, Payload: []byte("x")}
	if err := f.SetRoute([]*net.UDPAddr{udpAddr(r2.Addr()), udpAddr(dst.LocalAddr())}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTo(f.Marshal(nil), r1.Addr()); err != nil {
		t.Fatal(err)
	}
	got := recvFrame(t, dst, time.Second)
	if got == nil {
		t.Fatal("transit frame not delivered")
	}
	// Both relays should have accounted the session.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, ok1 := r1.Session(7); ok1 {
			if _, ok2 := r2.Session(7); ok2 {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	s1, ok1 := r1.Session(7)
	s2, ok2 := r2.Session(7)
	if !ok1 || !ok2 || s1.Packets != 1 || s2.Packets != 1 {
		t.Errorf("session accounting: r1=%+v(%v) r2=%+v(%v)", s1, ok1, s2, ok2)
	}
}

func TestRelayDropsGarbageAndExhausted(t *testing.T) {
	r := startRelay(t, 1)
	src := listen(t)
	defer src.Close()

	// Garbage datagram.
	src.WriteTo([]byte("not a frame"), r.Addr())
	// Valid frame with empty route (misrouted).
	f := transport.Frame{Session: 1, Payload: []byte("x")}
	src.WriteTo(f.Marshal(nil), r.Addr())

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, _, d := r.Stats(); d >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	pkts, _, dropped := r.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if pkts != 0 {
		t.Errorf("forwarded %d packets, want 0", pkts)
	}
}

func TestRelayAccounting(t *testing.T) {
	r := startRelay(t, 1)
	src, dst := listen(t), listen(t)
	defer src.Close()
	defer dst.Close()

	var sentBytes int64
	for i := 0; i < 5; i++ {
		f := transport.Frame{Session: uint64(100 + i%2), Payload: make([]byte, 100)}
		f.SetRoute([]*net.UDPAddr{udpAddr(dst.LocalAddr())})
		wire := f.Marshal(nil)
		sentBytes += int64(len(wire))
		src.WriteTo(wire, r.Addr())
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if p, _, _ := r.Stats(); p == 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	pkts, bytes, _ := r.Stats()
	if pkts != 5 || bytes != sentBytes {
		t.Errorf("stats = %d pkts %d bytes, want 5/%d", pkts, bytes, sentBytes)
	}
	if r.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2", r.Sessions())
	}
	if _, ok := r.Session(999); ok {
		t.Error("unknown session reported present")
	}
}

func TestRelayCloseStopsServe(t *testing.T) {
	n := New(1, listen(t))
	done := make(chan error, 1)
	go func() { done <- n.Serve() }()
	time.Sleep(20 * time.Millisecond)
	n.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestSessionTableCapEvictsOldest(t *testing.T) {
	r := startRelay(t, 1)
	r.SetSessionLimits(time.Hour, 4) // TTL never fires; only the cap does
	src, dst := listen(t), listen(t)
	defer src.Close()
	defer dst.Close()

	send := func(session uint64) {
		f := transport.Frame{Session: session, Payload: []byte("x")}
		f.SetRoute([]*net.UDPAddr{udpAddr(dst.LocalAddr())})
		src.WriteTo(f.Marshal(nil), r.Addr())
	}
	for s := uint64(1); s <= 10; s++ {
		send(s)
		// Serialize arrivals so lastSeen ordering is deterministic.
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			if p, _, _ := r.Stats(); p >= int64(s) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if n := r.Sessions(); n > 4 {
		t.Errorf("session table = %d entries, cap is 4", n)
	}
	if r.Evicted() < 6 {
		t.Errorf("evicted = %d, want >= 6", r.Evicted())
	}
	// The most recent session survived; the earliest did not.
	if _, ok := r.Session(10); !ok {
		t.Error("newest session evicted")
	}
	if _, ok := r.Session(1); ok {
		t.Error("oldest session still present past the cap")
	}
}

func TestSessionIdleSweep(t *testing.T) {
	r := startRelay(t, 1)
	r.SetSessionLimits(30*time.Millisecond, 2) // tiny TTL, tiny cap
	src, dst := listen(t), listen(t)
	defer src.Close()
	defer dst.Close()

	send := func(session uint64) {
		f := transport.Frame{Session: session, Payload: []byte("x")}
		f.SetRoute([]*net.UDPAddr{udpAddr(dst.LocalAddr())})
		src.WriteTo(f.Marshal(nil), r.Addr())
	}
	send(1)
	send(2)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if r.Sessions() == 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(60 * time.Millisecond) // both sessions go idle past the TTL

	// A new session hits the cap, which sweeps the idle entries instead of
	// evicting anything live.
	send(3)
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, ok := r.Session(3); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := r.Session(3); !ok {
		t.Fatal("new session not accounted")
	}
	if _, ok := r.Session(1); ok {
		t.Error("idle session survived the sweep")
	}
	if r.Evicted() == 0 {
		t.Error("no evictions recorded after idle sweep")
	}
}
