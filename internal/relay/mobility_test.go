package relay

import (
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// sendMedia marshals and writes one media frame for session sess with
// token tok routed to dst, from conn src via relay r.
func sendMedia(t *testing.T, src net.PacketConn, r *Node, sess uint64, tok transport.Token, dst net.Addr, payload string) {
	t.Helper()
	f := transport.Frame{Session: sess, Kind: transport.KindMedia, Token: tok, Payload: []byte(payload)}
	if err := f.SetRoute([]*net.UDPAddr{udpAddr(dst)}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTo(f.Marshal(nil), r.Addr()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestKeepaliveRefreshesIdleTTL is the regression test for the
// idle-eviction fix: eviction used to count only data packets, so a long
// silent-but-alive call (voice activity detection, hold music muted)
// would be evicted mid-call. Keepalives must refresh the idle deadline.
func TestKeepaliveRefreshesIdleTTL(t *testing.T) {
	conn := &discardConn{}
	n := New(1, conn)
	n.SetSessionLimits(50*time.Millisecond, 0)

	out := make([]byte, 0, 4096)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	src := &net.UDPAddr{IP: net.IPv4(10, 9, 0, 1), Port: 4000}

	// Two sessions: 1 keeps sending keepalives, 2 goes silent.
	n.handle(repairWire(t), src, &out, &f, next) // session 0xFEED (the control)
	ka := transport.Frame{Session: 0xBEEF, Kind: transport.KindKeepalive}
	n.handle(ka.Marshal(nil), src, &out, &f, next) // creates session 0xBEEF

	// Stay silent for several TTLs on 0xFEED while 0xBEEF keepalives.
	kaWire := ka.Marshal(nil)
	for i := 0; i < 8; i++ {
		time.Sleep(20 * time.Millisecond)
		n.handle(kaWire, src, &out, &f, next)
	}

	n.mu.Lock()
	n.sweepIdleLocked(time.Now())
	n.mu.Unlock()

	if _, ok := n.Session(0xBEEF); !ok {
		t.Error("keepalive-refreshed session was evicted")
	}
	if _, ok := n.Session(0xFEED); ok {
		t.Error("silent session survived the idle sweep")
	}
	if n.Keepalives() != 9 {
		t.Errorf("keepalives = %d, want 9", n.Keepalives())
	}
	if n.Evicted() == 0 {
		t.Error("no eviction recorded for the silent session")
	}
}

// TestPathValidationAndRepin walks the full migration dance: bind a token
// to one address, rebind to a new address, answer the relay's challenge,
// and observe reverse traffic re-pinned to the new address before the
// peer has learned any new reply route.
func TestPathValidationAndRepin(t *testing.T) {
	r := startRelay(t, 1)
	c1, c2, peer := listen(t), listen(t), listen(t)
	defer c1.Close()
	defer c2.Close()
	defer peer.Close()

	tok := transport.Token{0xA, 0xB, 0xC}
	const sess = 99

	// Bind: first frame from c1 pins the token to c1's address.
	sendMedia(t, c1, r, sess, tok, peer.LocalAddr(), "m1")
	if got := recvFrame(t, peer, time.Second); got == nil || string(got.Payload) != "m1" {
		t.Fatal("initial media not forwarded")
	}

	// Rebind: same token from c2. The media must keep flowing (forwarding
	// toward a known destination amplifies nothing) and a challenge must
	// arrive at c2 — and only c2.
	sendMedia(t, c2, r, sess, tok, peer.LocalAddr(), "m2")
	if got := recvFrame(t, peer, time.Second); got == nil || string(got.Payload) != "m2" {
		t.Fatal("post-rebind media not forwarded")
	}
	ch := recvFrame(t, c2, time.Second)
	if ch == nil || ch.Kind != transport.KindPathChallenge {
		t.Fatalf("no path challenge at new address: %+v", ch)
	}
	if ch.Token != tok {
		t.Fatalf("challenge token = %x", ch.Token)
	}
	var pc transport.PathChallenge
	if err := pc.Unmarshal(ch.Payload); err != nil {
		t.Fatalf("challenge payload: %v", err)
	}

	// Before the response, reverse traffic still goes to the old address.
	rev := transport.Frame{Session: sess, Kind: transport.KindMedia, Payload: []byte("r0")}
	if err := rev.SetRoute([]*net.UDPAddr{udpAddr(c1.LocalAddr())}); err != nil {
		t.Fatal(err)
	}
	peer.WriteTo(rev.Marshal(nil), r.Addr())
	if got := recvFrame(t, c1, time.Second); got == nil || string(got.Payload) != "r0" {
		t.Fatal("pre-validation reverse media not delivered to old address")
	}

	// Echo the challenge from the new address: validated, re-pinned.
	resp := transport.Frame{Session: sess, Kind: transport.KindPathResponse, Token: tok, Payload: ch.Payload}
	if _, err := c2.WriteTo(resp.Marshal(nil), r.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "migration", func() bool { return r.Migrations() == 1 })

	// Reverse traffic addressed to the stale c1 now lands on c2.
	rev.Payload = []byte("r1")
	peer.WriteTo(rev.Marshal(nil), r.Addr())
	if got := recvFrame(t, c2, time.Second); got == nil || string(got.Payload) != "r1" {
		t.Fatal("post-validation reverse media not re-pinned to new address")
	}
	if got := recvFrame(t, c1, 100*time.Millisecond); got != nil {
		t.Error("stale address still receiving after migration")
	}
	if r.pathOK.Load() != 1 || r.challenges.Load() == 0 {
		t.Errorf("counters: ok=%d challenges=%d", r.pathOK.Load(), r.challenges.Load())
	}

	// Amplification bound: the challenge is no larger than the smallest
	// frame that can trigger it (a payload-less v3 media frame).
	trigger := transport.Frame{Session: sess, Kind: transport.KindMedia, Token: tok}
	if challengeLen := len(ch.Marshal(nil)); challengeLen > len(trigger.Marshal(nil))+transport.PathChallengeLen {
		t.Errorf("challenge (%dB) amplifies beyond its trigger", challengeLen)
	}
}

// TestUnansweredChallengeDoesNotRepin: without a valid response the relay
// must keep delivering to the validated address, and a forged response
// (wrong nonce) must be rejected.
func TestUnansweredChallengeDoesNotRepin(t *testing.T) {
	r := startRelay(t, 1)
	c1, c2, peer := listen(t), listen(t), listen(t)
	defer c1.Close()
	defer c2.Close()
	defer peer.Close()

	tok := transport.Token{7}
	const sess = 44
	sendMedia(t, c1, r, sess, tok, peer.LocalAddr(), "m1")
	recvFrame(t, peer, time.Second)
	sendMedia(t, c2, r, sess, tok, peer.LocalAddr(), "m2")
	recvFrame(t, peer, time.Second)
	ch := recvFrame(t, c2, time.Second)
	if ch == nil || ch.Kind != transport.KindPathChallenge {
		t.Fatalf("no challenge: %+v", ch)
	}

	// Forge a response with a flipped nonce byte.
	bad := append([]byte(nil), ch.Payload...)
	bad[0] ^= 0xFF
	resp := transport.Frame{Session: sess, Kind: transport.KindPathResponse, Token: tok, Payload: bad}
	c2.WriteTo(resp.Marshal(nil), r.Addr())
	waitFor(t, "failure count", func() bool { return r.pathFail.Load() >= 1 })

	rev := transport.Frame{Session: sess, Kind: transport.KindMedia, Payload: []byte("r")}
	if err := rev.SetRoute([]*net.UDPAddr{udpAddr(c1.LocalAddr())}); err != nil {
		t.Fatal(err)
	}
	peer.WriteTo(rev.Marshal(nil), r.Addr())
	if got := recvFrame(t, c1, time.Second); got == nil {
		t.Error("reverse media abandoned the validated address on a forged response")
	}
	if r.Migrations() != 0 {
		t.Errorf("migrations = %d after forged response", r.Migrations())
	}
}

// TestDrainMode: a draining relay nudges active endpoints, keeps serving
// their sessions, rejects new ones, and reports Draining for heartbeats.
func TestDrainMode(t *testing.T) {
	r := startRelay(t, 1)
	c1, c9, peer := listen(t), listen(t), listen(t)
	defer c1.Close()
	defer c9.Close()
	defer peer.Close()

	tok := transport.Token{1}
	sendMedia(t, c1, r, 5, tok, peer.LocalAddr(), "m1")
	if got := recvFrame(t, peer, time.Second); got == nil {
		t.Fatal("media not forwarded before drain")
	}

	r.SetDraining(true)
	if !r.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	nudge := recvFrame(t, c1, time.Second)
	if nudge == nil || nudge.Kind != transport.KindDrain || nudge.Session != 5 {
		t.Fatalf("no drain nudge at active endpoint: %+v", nudge)
	}

	// The existing session keeps forwarding while it migrates.
	sendMedia(t, c1, r, 5, tok, peer.LocalAddr(), "m2")
	if got := recvFrame(t, peer, time.Second); got == nil || string(got.Payload) != "m2" {
		t.Fatal("existing session stopped forwarding during drain")
	}

	// A brand-new session is refused.
	sendMedia(t, c9, r, 777, transport.Token{9}, peer.LocalAddr(), "new")
	if got := recvFrame(t, peer, 150*time.Millisecond); got != nil {
		t.Fatal("draining relay accepted a new session")
	}
	waitFor(t, "drain reject count", func() bool { return r.drainRejected.Load() >= 1 })

	r.SetDraining(false)
	sendMedia(t, c9, r, 778, transport.Token{9}, peer.LocalAddr(), "ok")
	if got := recvFrame(t, peer, time.Second); got == nil || string(got.Payload) != "ok" {
		t.Fatal("relay did not resume accepting sessions after drain off")
	}
}
