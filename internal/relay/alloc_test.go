package relay

import (
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// discardConn is a PacketConn that swallows writes — it isolates the
// relay's own forwarding cost from socket behavior.
type discardConn struct {
	writes int64
	bytes  int64
}

func (d *discardConn) ReadFrom(b []byte) (int, net.Addr, error) { select {} }
func (d *discardConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	d.writes++
	d.bytes += int64(len(b))
	return len(b), nil
}
func (d *discardConn) Close() error                       { return nil }
func (d *discardConn) LocalAddr() net.Addr                { return &net.UDPAddr{} }
func (d *discardConn) SetDeadline(t time.Time) error      { return nil }
func (d *discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (d *discardConn) SetWriteDeadline(t time.Time) error { return nil }

// repairWire builds one v2 media frame with a repair scheme, two forward
// hops, and a reply route — the most allocation-hostile shape the repair
// path produces.
func repairWire(tb testing.TB) []byte {
	tb.Helper()
	f := transport.Frame{Session: 0xFEED, Kind: transport.KindMedia, Repair: 0x84}
	addrs := []*net.UDPAddr{
		{IP: net.IPv4(10, 0, 0, 1), Port: 7001},
		{IP: net.IPv4(10, 0, 0, 2), Port: 7002},
	}
	if err := f.SetRoute(addrs); err != nil {
		tb.Fatal(err)
	}
	if err := f.SetReply(addrs); err != nil {
		tb.Fatal(err)
	}
	f.Payload = make([]byte, 172) // RTP header + 160B voice payload
	return f.Marshal(nil)
}

// TestForwardZeroAlloc asserts the steady-state forwarding path allocates
// nothing per packet, repair frames included (the satellite requirement:
// repair must not add per-packet garbage to relays).
func TestForwardZeroAlloc(t *testing.T) {
	conn := &discardConn{}
	n := New(1, conn)
	wire := repairWire(t)
	src := &net.UDPAddr{IP: net.IPv4(10, 9, 0, 1), Port: 4000}

	out := make([]byte, 0, 64*1024)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	// Warm up: create the session entry and size the buffers.
	n.handle(wire, src, &out, &f, next)

	allocs := testing.AllocsPerRun(500, func() {
		n.handle(wire, src, &out, &f, next)
	})
	if allocs != 0 {
		t.Errorf("forwarding allocates %v per packet, want 0", allocs)
	}
	if conn.writes == 0 {
		t.Fatal("nothing was forwarded")
	}
}

// TestForwardZeroAllocV3 repeats the zero-alloc assertion for wire-v3
// frames in their steady state: the token is already bound to the source
// address, so per-packet mobility work is one map lookup and a compare.
func TestForwardZeroAllocV3(t *testing.T) {
	conn := &discardConn{}
	n := New(1, conn)
	f3 := transport.Frame{Session: 0xFEED, Kind: transport.KindMedia, Repair: 0x84,
		Token: transport.Token{1, 2, 3, 4}}
	addrs := []*net.UDPAddr{
		{IP: net.IPv4(10, 0, 0, 1), Port: 7001},
		{IP: net.IPv4(10, 0, 0, 2), Port: 7002},
	}
	if err := f3.SetRoute(addrs); err != nil {
		t.Fatal(err)
	}
	if err := f3.SetReply(addrs); err != nil {
		t.Fatal(err)
	}
	f3.Payload = make([]byte, 172)
	wire := f3.Marshal(nil)
	src := &net.UDPAddr{IP: net.IPv4(10, 9, 0, 1), Port: 4000}

	out := make([]byte, 0, 64*1024)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	n.handle(wire, src, &out, &f, next) // warm up: session + token binding

	allocs := testing.AllocsPerRun(500, func() {
		n.handle(wire, src, &out, &f, next)
	})
	if allocs != 0 {
		t.Errorf("v3 forwarding allocates %v per packet, want 0", allocs)
	}
}

// BenchmarkForwardRepairFrame is the repair-path throughput entry for the
// bench-regression harness: one v2 repair frame through the full
// unmarshal → account → re-marshal → send pipeline.
func BenchmarkForwardRepairFrame(b *testing.B) {
	conn := &discardConn{}
	n := New(1, conn)
	wire := repairWire(b)
	src := &net.UDPAddr{IP: net.IPv4(10, 9, 0, 1), Port: 4000}
	out := make([]byte, 0, 64*1024)
	var f transport.Frame
	next := &net.UDPAddr{IP: make(net.IP, 4)}
	n.handle(wire, src, &out, &f, next)

	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.handle(wire, src, &out, &f, next)
	}
}
