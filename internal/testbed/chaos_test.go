package testbed

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/controller"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestChaosCallsSurviveFaults is the end-to-end resilience scenario: a
// relay is killed mid-call and the controller partitions, yet every call
// completes (possibly degraded to direct), the degraded-mode and failover
// counters move, and — once the dead relay's heartbeats lapse — the
// directory and the next choose exclude it. Finally the relay is revived
// and carries traffic again.
func TestChaosCallsSurviveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	w := smallWorld()
	tb, err := Start(Config{
		Seed:       7,
		World:      w,
		ClientASes: []netsim.ASID{0, 30},
		RelayIDs:   []netsim.RelayID{0, 1, 2},
		RelayTTL:   400 * time.Millisecond,
		ControlRetry: controller.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Timeout:     time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.StartHeartbeats(100 * time.Millisecond)

	caller := tb.Client(0)
	callee := tb.Client(30)
	sel := client.NewSelector(tb.Ctrl)
	sel.RegisterMetrics(tb.Metrics, "0")
	const victim = netsim.RelayID(0)
	liveCands := []netsim.Option{
		netsim.DirectOption(), netsim.BounceOption(1), netsim.BounceOption(2),
	}

	// Baseline: a controller-routed call on healthy paths, so the selector
	// has a cached decision to degrade to later.
	opt, fresh := sel.Choose(0, 30, liveCands)
	if !fresh {
		t.Fatalf("baseline choose was degraded (opt=%v)", opt)
	}
	base, err := caller.Agent.Call(client.CallSpec{
		Peer: callee.Agent.Addr(), Option: opt,
		Duration: 400 * time.Millisecond, PPS: 100,
	})
	if err != nil {
		t.Fatalf("baseline call over %v: %v", opt, err)
	}
	sel.Report(0, 30, opt, base)

	// Chaos: kill the victim relay 300ms into a call routed through it.
	// The real-time scheduler drives the plan against the live testbed.
	plan := faults.NewPlan(7).KillRelayAt(300*time.Millisecond, victim)
	sched := faults.NewScheduler(plan, tb)
	sched.SetMetrics(tb.Metrics)
	sched.Start()
	out, err := caller.Agent.CallResilient(client.CallSpec{
		Peer:     callee.Agent.Addr(),
		Option:   netsim.BounceOption(victim),
		Failover: []netsim.Option{netsim.DirectOption()},
		Duration: 1500 * time.Millisecond,
		PPS:      100,
	})
	sched.Wait()
	if errs := sched.Errors(); len(errs) > 0 {
		t.Fatalf("fault plan errors: %v", errs)
	}
	if err != nil {
		t.Fatalf("call through dying relay did not complete: %v", err)
	}
	if out.Used != netsim.DirectOption() {
		t.Errorf("call finished on %v, want direct after failover", out.Used)
	}
	if out.Failovers() < 1 || caller.Agent.Failovers() < 1 {
		t.Errorf("failover counters: call=%d agent=%d, want >= 1",
			out.Failovers(), caller.Agent.Failovers())
	}
	// Teach the controller: the failed option gets the punitive report,
	// the surviving one its real metrics.
	for _, failed := range out.Failed {
		sel.ReportFailure(0, 30, failed)
	}
	sel.Report(0, 30, out.Used, out.Metrics)

	// Controller partition: decisions degrade to cache/direct, calls still
	// complete, reports are absorbed.
	if errs := faults.NewPlan(7).PartitionControllerAt(0).Apply(tb); len(errs) > 0 {
		t.Fatalf("partition: %v", errs)
	}
	opt, fresh = sel.Choose(0, 30, liveCands)
	if fresh {
		t.Error("choose under partition reported fresh")
	}
	if opt.Uses(victim) {
		t.Errorf("degraded decision uses the dead relay: %v", opt)
	}
	m, err := caller.Agent.Call(client.CallSpec{
		Peer: callee.Agent.Addr(), Option: opt,
		Duration: 400 * time.Millisecond, PPS: 100,
	})
	if err != nil {
		t.Fatalf("degraded call over %v: %v", opt, err)
	}
	sel.Report(0, 30, opt, m) // lost: controller still partitioned
	if errs := faults.NewPlan(7).HealControllerAt(0).Apply(tb); len(errs) > 0 {
		t.Fatalf("heal: %v", errs)
	}
	if sel.Stale() < 1 {
		t.Errorf("stale decisions = %d, want >= 1", sel.Stale())
	}
	if sel.LostReports() < 1 {
		t.Errorf("lost reports = %d, want >= 1", sel.LostReports())
	}

	// The dead relay's heartbeats stopped at the kill; once its TTL lapses
	// the directory must exclude it.
	deadline := time.Now().Add(3 * time.Second)
	for {
		dir, derr := tb.Ctrl.Relays()
		if derr == nil {
			if _, present := dir[victim]; !present {
				if len(dir) != 2 {
					t.Errorf("directory = %v, want the 2 live relays", dir)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("dead relay never aged out of the directory")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The next controller decision for the pair excludes the dead relay:
	// candidates come from the fresh directory, and the strategy has the
	// punitive report besides.
	choice, err := tb.Ctrl.Choose(0, 30, liveCands)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Uses(victim) {
		t.Errorf("post-fault choose picked the dead relay: %v", choice)
	}

	// Health stayed green through it all, and panics stayed at zero.
	h, err := tb.Ctrl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Relays != 2 {
		t.Errorf("health = %+v, want OK with 2 live relays", h)
	}
	st, err := tb.Ctrl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Panics != 0 {
		t.Errorf("controller recovered %d panics during chaos", st.Panics)
	}

	// Revival: the relay comes back on its old address, re-registers, and
	// carries a call again.
	if errs := faults.NewPlan(7).ReviveRelayAt(0, victim).Apply(tb); len(errs) > 0 {
		t.Fatalf("revive: %v", errs)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		dir, derr := tb.Ctrl.Relays()
		if derr == nil {
			if _, present := dir[victim]; present {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("revived relay never reappeared in the directory")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := tb.RefreshDirectories(); err != nil {
		t.Fatal(err)
	}
	m, err = caller.Agent.Call(client.CallSpec{
		Peer: callee.Agent.Addr(), Option: netsim.BounceOption(victim),
		Duration: 400 * time.Millisecond, PPS: 100,
	})
	if err != nil {
		t.Fatalf("call through revived relay: %v", err)
	}
	if m.RTTMs <= 0 {
		t.Error("revived relay carried no measurable media")
	}

	// The deployment-wide registry saw it all: the mid-call failover, the
	// scheduler's injected kill, and the dead-path reports the selector
	// forwarded. These are the counters CI archives as an artifact.
	snap := tb.Metrics.Snapshot()
	if v := snap[obs.L("via_client_failovers", "client", "0")]; v < 1 {
		t.Errorf("via_client_failovers{client=0} = %v, want >= 1", v)
	}
	if v := sumSeries(snap, "via_faults_injected_total"); v < 1 {
		t.Errorf("via_faults_injected_total = %v, want >= 1 (scheduler kill)", v)
	}
	if v := sumSeries(snap, "via_client_dead_path_reports"); v < 1 {
		t.Errorf("via_client_dead_path_reports = %v, want >= 1", v)
	}
	if v := snap["via_controller_panics_total"]; v != 0 {
		t.Errorf("via_controller_panics_total = %v, want 0", v)
	}
	writeMetricsArtifact(t, snap)
}

// sumSeries totals every series whose name is base or base{labels}.
func sumSeries(snap map[string]float64, base string) float64 {
	var sum float64
	for name, v := range snap {
		if name == base || strings.HasPrefix(name, base+"{") {
			sum += v
		}
	}
	return sum
}

// writeMetricsArtifact dumps the final snapshot as JSON to the path named
// by CHAOS_METRICS_OUT, when set — CI uploads it as a workflow artifact so
// a failed chaos run leaves its telemetry behind.
func writeMetricsArtifact(t *testing.T, snap map[string]float64) {
	t.Helper()
	path := os.Getenv("CHAOS_METRICS_OUT")
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatalf("marshal metrics snapshot: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("write metrics snapshot: %v", err)
	}
	t.Logf("metrics snapshot (%d series) written to %s", len(snap), path)
}

// TestMetricsEndpointSpansSubsystems scrapes GET /metrics on a live
// deployment and checks the exposition covers the whole stack: at least a
// dozen distinct series, spanning controller, strategy, relay, client, and
// WAN namespaces, in Prometheus text format.
func TestMetricsEndpointSpansSubsystems(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed e2e is slow")
	}
	tb := startSmall(t, nil)
	caller := tb.Client(0)
	callee := tb.Client(10)

	// Drive one controller-routed call so request/decision counters move.
	cands := []netsim.Option{netsim.DirectOption(), netsim.BounceOption(0)}
	opt, err := tb.Ctrl.Choose(0, 10, cands)
	if err != nil {
		t.Fatal(err)
	}
	m, err := caller.Agent.Call(client.CallSpec{
		Peer: callee.Agent.Addr(), Option: opt,
		Duration: 300 * time.Millisecond, PPS: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Ctrl.Report(0, 10, opt, m); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(tb.CtrlURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	series := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line: %q", line)
		}
		series[name] = true
	}
	if len(series) < 12 {
		t.Errorf("/metrics exposed %d series, want >= 12:\n%s", len(series), body)
	}
	for _, prefix := range []string{
		"via_controller_", "via_decision_total", "via_relay_", "via_client_", "via_wan_",
	} {
		found := false
		for name := range series {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics has no series with prefix %q", prefix)
		}
	}
}

// TestBlackholeSegmentViaPlan checks the packet-level fault path end to
// end: blackholing the caller↔relay segment kills the relayed path while
// the relay process stays up, and healing restores it.
func TestBlackholeSegmentViaPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed e2e is slow")
	}
	tb := startSmall(t, nil)
	caller := tb.Client(0)
	callee := tb.Client(30)
	rid := tb.Relays[0].ID()

	spec := client.CallSpec{
		Peer: callee.Agent.Addr(), Option: netsim.BounceOption(rid),
		Duration: 300 * time.Millisecond, PPS: 100,
	}
	if _, err := caller.Agent.Call(spec); err != nil {
		t.Fatalf("pre-fault call: %v", err)
	}

	seg := faults.NewPlan(1).BlackholeAt(0, faults.ClientEnd(0), faults.RelayEnd(rid))
	if errs := seg.Apply(tb); len(errs) > 0 {
		t.Fatal(errs)
	}
	if _, err := caller.Agent.Call(spec); err != client.ErrNoFeedback {
		t.Errorf("blackholed segment: err = %v, want ErrNoFeedback", err)
	}

	heal := faults.NewPlan(1).HealAt(0, faults.ClientEnd(0), faults.RelayEnd(rid))
	if errs := heal.Apply(tb); len(errs) > 0 {
		t.Fatal(errs)
	}
	if _, err := caller.Agent.Call(spec); err != nil {
		t.Errorf("healed segment: %v", err)
	}
}

// TestKillRelayValidation covers the fault target's error paths.
func TestKillRelayValidation(t *testing.T) {
	tb := startSmall(t, nil)
	if err := tb.KillRelay(99); err == nil {
		t.Error("killing an unknown relay accepted")
	}
	if err := tb.ReviveRelay(0); err == nil {
		t.Error("reviving a live relay accepted")
	}
	if err := tb.KillRelay(0); err != nil {
		t.Fatal(err)
	}
	if tb.RelayAlive(0) {
		t.Error("killed relay reported alive")
	}
	if err := tb.KillRelay(0); err == nil {
		t.Error("double kill accepted")
	}
	if err := tb.ReviveRelay(0); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if !tb.RelayAlive(0) {
		t.Error("revived relay reported dead")
	}
}
